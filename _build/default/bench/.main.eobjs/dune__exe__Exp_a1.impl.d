bench/exp_a1.ml: Causalb_core Causalb_graph Causalb_net Causalb_sim Causalb_util Exp_common List Printf
