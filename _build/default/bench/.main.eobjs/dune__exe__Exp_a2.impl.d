bench/exp_a2.ml: Causalb_core Causalb_net Causalb_sim Causalb_util Exp_common Fun Hashtbl List
