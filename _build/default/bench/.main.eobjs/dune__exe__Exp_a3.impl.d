bench/exp_a3.ml: Causalb_core Causalb_graph Causalb_net Causalb_sim Causalb_util List
