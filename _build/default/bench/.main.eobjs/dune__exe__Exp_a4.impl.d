bench/exp_a4.ml: Causalb_core Causalb_graph Causalb_net Causalb_sim Causalb_util Exp_common Hashtbl List Option Printf
