bench/exp_common.ml: Causalb_harness
