bench/exp_figures.ml: Array Causalb_core Causalb_data Causalb_graph Causalb_net Causalb_protocols Causalb_sim Causalb_util Char Exp_common Format List Option Printf String
