bench/exp_t1.ml: Causalb_sim Causalb_util Exp_common List Printf
