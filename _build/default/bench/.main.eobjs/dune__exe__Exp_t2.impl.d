bench/exp_t2.ml: Causalb_util Exp_common Float List Printf
