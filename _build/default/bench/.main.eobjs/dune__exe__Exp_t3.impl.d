bench/exp_t3.ml: Causalb_util Exp_common List Printf
