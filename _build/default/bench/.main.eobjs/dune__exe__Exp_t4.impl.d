bench/exp_t4.ml: Causalb_protocols Causalb_sim Causalb_util Exp_common List Printf
