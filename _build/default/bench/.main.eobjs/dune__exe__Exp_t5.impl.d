bench/exp_t5.ml: Causalb_protocols Causalb_sim Causalb_util Exp_common List Printf
