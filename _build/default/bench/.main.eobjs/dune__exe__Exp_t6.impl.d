bench/exp_t6.ml: Array Causalb_core Causalb_graph Causalb_net Causalb_sim Causalb_util Exp_common Hashtbl List Printf
