bench/exp_t7.ml: Causalb_core Causalb_data Causalb_graph Causalb_net Causalb_sim Causalb_util Exp_common List Printf
