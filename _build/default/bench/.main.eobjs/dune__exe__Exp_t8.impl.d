bench/exp_t8.ml: Causalb_data Causalb_protocols Causalb_sim Causalb_util Exp_common List Printf
