bench/main.ml: Array Exp_a1 Exp_a2 Exp_a3 Exp_a4 Exp_figures Exp_t1 Exp_t2 Exp_t3 Exp_t4 Exp_t5 Exp_t6 Exp_t7 Exp_t8 List Micro Printf String Sys
