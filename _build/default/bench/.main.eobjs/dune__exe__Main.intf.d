bench/main.mli:
