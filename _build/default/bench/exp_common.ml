(* The experiment drivers live in the reusable (and unit-tested)
   causalb.harness library; the bench modules keep their historical
   [Exp_common.*] spelling through this alias. *)
include Causalb_harness.Drivers
