examples/card_game.ml: Causalb_protocols Causalb_sim Causalb_util Printf
