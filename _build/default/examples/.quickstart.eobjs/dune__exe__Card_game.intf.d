examples/card_game.mli:
