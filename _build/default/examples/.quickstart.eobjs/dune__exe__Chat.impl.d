examples/chat.ml: Array Causalb_data Causalb_sim List Printf
