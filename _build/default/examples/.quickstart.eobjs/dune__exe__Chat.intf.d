examples/chat.mli:
