examples/conference.ml: Causalb_data Causalb_protocols Causalb_sim List Printf
