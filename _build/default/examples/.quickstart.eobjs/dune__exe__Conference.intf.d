examples/conference.mli:
