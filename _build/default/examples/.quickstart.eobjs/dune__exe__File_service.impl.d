examples/file_service.ml: Array Causalb_core Causalb_net Causalb_sim List Map Printf String
