examples/locking.ml: Causalb_protocols Causalb_sim Causalb_util Char List Printf String
