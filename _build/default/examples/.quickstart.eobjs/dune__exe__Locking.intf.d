examples/locking.mli:
