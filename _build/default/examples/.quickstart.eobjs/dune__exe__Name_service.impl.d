examples/name_service.ml: Array Causalb_protocols Causalb_sim Causalb_util List Printf
