examples/quickstart.ml: Causalb_data Causalb_sim Causalb_util List Printf
