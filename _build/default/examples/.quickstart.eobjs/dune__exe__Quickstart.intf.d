examples/quickstart.mli:
