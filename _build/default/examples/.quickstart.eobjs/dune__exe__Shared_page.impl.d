examples/shared_page.ml: Causalb_protocols Causalb_sim Char List Printf
