examples/shared_page.mli:
