(* The multiplayer card game of §5.1: relaxed causal turn order vs strict
   turn-taking.

   In the relaxed game, player l waits only for the card of some earlier
   player k < l-1, so several players think concurrently; the paper's
   point is that the weaker ordering is "reflected in higher concurrency".
   We run both modes on the same seed and print the per-round timings.

   Run with:  dune exec examples/card_game.exe *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Cards = Causalb_protocols.Card_game
module Stats = Causalb_util.Stats
module Table = Causalb_util.Table

let play ~mode ~label =
  let engine = Engine.create ~seed:7 () in
  let game =
    Cards.create engine ~players:6 ~mode
      ~latency:(Latency.lognormal ~mu:0.3 ~sigma:0.6 ())
      ~think:(Latency.exponential ~mean:3.0 ())
      ()
  in
  Cards.start game ~rounds:5;
  Engine.run engine;
  assert (Cards.check_causal_order game);
  assert (Cards.check_tables_agree game);
  Printf.printf "%s: %d rounds, mean round %.2f ms, %d messages\n" label
    (Cards.rounds_completed game)
    (Stats.mean (Cards.round_durations game))
    (Cards.messages_sent game);
  Cards.round_durations game

let () =
  print_endline "six players, five rounds, same think times\n";
  let strict = play ~mode:Cards.Strict_turns ~label:"strict turns " in
  (* every non-opener depends only on the opener's card: maximal overlap *)
  let relaxed =
    play ~mode:(Cards.Relaxed (fun ~round:_ ~player:_ -> 0)) ~label:"relaxed (k=0)"
  in
  let half =
    play
      ~mode:(Cards.Relaxed (fun ~round:_ ~player -> player / 2))
      ~label:"relaxed (k=l/2)"
  in
  let t =
    Table.create ~title:"round duration (ms)"
      ~columns:[ "ordering"; "mean"; "p95" ]
  in
  let row name s =
    Table.add_row t
      [ name; Table.fmt_float (Stats.mean s); Table.fmt_float (Stats.percentile s 95.0) ]
  in
  row "strict turns" strict;
  row "relaxed k=l/2" half;
  row "relaxed k=0" relaxed;
  print_newline ();
  Table.print t;
  print_endline
    "The weaker the causal constraints, the shorter the rounds — the\n\
     paper's 'relaxed ordering = higher concurrency' claim."
