(* A replicated chat room on the shared Log datatype.

   Messages are commutative appends (the log is kept in canonical
   author/sequence order, so replicas agree regardless of arrival order);
   sealing the room — closing a discussion segment — is the
   non-commutative synchronization point at which every participant sees
   the identical transcript.

   Run with:  dune exec examples/chat.exe *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Dt = Causalb_data.Datatypes
module Service = Causalb_data.Service
module Replica = Causalb_data.Replica

let people = [| "ada"; "barbara"; "grace" |]

let () =
  let engine = Engine.create ~seed:17 () in
  let svc =
    Service.create engine ~replicas:3 ~machine:Dt.Log.machine
      ~latency:(Latency.lognormal ~mu:1.0 ~sigma:1.0 ())
      ~fifo:false ()
  in
  let seqs = Array.make 3 0 in
  let say ~who text =
    let seq = seqs.(who) in
    seqs.(who) <- seq + 1;
    ignore
      (Service.submit svc ~src:who
         (Dt.Log.Append (Dt.Log.entry ~author:who ~seq text)))
  in
  Engine.schedule_at engine ~time:0.0 (fun () -> say ~who:0 "shall we cut 4.2?");
  Engine.schedule_at engine ~time:0.2 (fun () -> say ~who:1 "keep it, trim 5");
  Engine.schedule_at engine ~time:0.3 (fun () -> say ~who:2 "agree with barbara");
  Engine.schedule_at engine ~time:0.6 (fun () -> say ~who:0 "ok, trimming 5");
  Engine.schedule_at engine ~time:5.0 (fun () ->
      ignore (Service.submit svc ~src:0 Dt.Log.Seal));
  Service.run svc;

  print_endline "--- sealed transcript, as stored at every replica ---";
  let stable = Replica.stable_state (Service.replica svc 1) in
  List.iter
    (fun segment ->
      List.iter
        (fun (e : Dt.Log.entry) ->
          Printf.printf "  <%s> %s\n" people.(e.Dt.Log.author) e.Dt.Log.text)
        segment)
    (List.rev stable.Dt.Log.sealed);

  print_endline "\nconsistency checks:";
  List.iter
    (fun (name, ok) ->
      Printf.printf "  %-32s %s\n" name (if ok then "ok" else "VIOLATED"))
    (Service.check svc);
  assert (List.for_all snd (Service.check svc));
  let all_equal =
    List.for_all
      (fun r ->
        Dt.Log.machine.Causalb_data.State_machine.equal
          (Replica.stable_state r) stable)
      (Service.replicas svc)
  in
  Printf.printf "transcripts identical at all replicas: %b\n" all_equal;
  assert all_equal
