(* Distributed conferencing (paper §1, §5.2): participants collaboratively
   annotate a shared design document; a moderator commits sections.

   Annotations are commutative, so workstations apply them in whatever
   order the network delivers; commits are synchronization points at which
   every workstation shows the identical document.

   Run with:  dune exec examples/conference.exe *)

module Engine = Causalb_sim.Engine
module Conf = Causalb_protocols.Conference
module Dt = Causalb_data.Datatypes
module Replica = Causalb_data.Replica
module Service = Causalb_data.Service

let () =
  let engine = Engine.create ~seed:11 () in
  let conf = Conf.create engine ~participants:4 ~sections:2 () in

  (* A small scripted session. *)
  Conf.annotate conf ~participant:1 ~section:0 "intro is unclear";
  Conf.annotate conf ~participant:2 ~section:0 "add a figure";
  Conf.annotate conf ~participant:3 ~section:1 "typo in eq. 3";
  Conf.request_view conf ~participant:2 (fun doc ->
      Printf.printf "[%.2f ms] participant 2's deferred view:\n%s\n"
        (Engine.now engine)
        (Dt.Document.render doc));
  Conf.commit conf ~moderator:0 ~section:0 ~body:"Intro, revised per notes";
  Conf.annotate conf ~participant:1 ~section:1 "also check refs";
  Conf.commit conf ~moderator:0 ~section:1 ~body:"Eq. 3 fixed";
  Engine.run engine;

  print_endline "--- final documents at each workstation ---";
  List.iter
    (fun r ->
      Printf.printf "workstation %d:\n%s\n" (Replica.id r)
        (Dt.Document.render (Replica.stable_state r)))
    (Service.replicas (Conf.service conf));

  print_endline "consistency checks:";
  List.iter
    (fun (name, ok) ->
      Printf.printf "  %-32s %s\n" name (if ok then "ok" else "VIOLATED"))
    (Conf.check conf);

  (* And a bigger randomized session to show it scales. *)
  print_endline "\n--- randomized session: 60 annotations, commit every 10 ---";
  let engine2 = Engine.create ~seed:12 () in
  let conf2 = Conf.create engine2 ~participants:5 ~sections:4 () in
  Conf.run_session conf2 ~annotations:60 ~commit_every:10 ();
  Printf.printf "annotations=%d commits=%d\n" (Conf.annotations_sent conf2)
    (Conf.commits_sent conf2);
  List.iter
    (fun (name, ok) ->
      Printf.printf "  %-32s %s\n" name (if ok then "ok" else "VIOLATED"))
    (Conf.check conf2)
