(* The paper's opening example (§1): "a distributed file service may be
   implemented by a group of servers, with each server maintaining a local
   copy of files and exchanging messages with other servers in the group
   to update the various file copies in response to client requests."

   This example adds the dynamic dimension: the service starts with two
   servers, a third joins mid-stream (virtually synchronous view change +
   state transfer), and a faulty one is removed.  Every surviving server
   holds the identical file store throughout.

   Run with:  dune exec examples/file_service.exe *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Message = Causalb_core.Message
module Vgroup = Causalb_core.Vgroup
module Smap = Map.Make (String)

type file_op = Write of string * string | Delete of string

let apply store = function
  | Write (name, contents) -> Smap.add name contents store
  | Delete name -> Smap.remove name store

let () =
  let engine = Engine.create ~seed:31 () in
  let net =
    Net.create engine ~nodes:4
      ~latency:Latency.lan
      ~fifo:false ()
  in
  let stores = Array.make 4 Smap.empty in
  let group =
    Vgroup.create net ~initial:[ 0; 1 ]
      ~on_deliver:(fun ~node ~vid:_ ~time:_ msg ->
        stores.(node) <- apply stores.(node) (Message.payload msg))
      ~on_view:(fun ~node v ->
        Printf.printf "[%6.2f ms] server %d installs view %d = {%s}\n"
          (Engine.now engine) node v.Vgroup.vid
          (String.concat "," (List.map string_of_int v.Vgroup.members)))
      ~get_state:(fun ~node -> stores.(node))
      ~set_state:(fun ~node s -> stores.(node) <- s)
      ()
  in

  (* clients write through server 0 and 1 *)
  Engine.schedule_at engine ~time:1.0 (fun () ->
      Vgroup.bcast group ~src:0 (Write ("/etc/motd", "hello")));
  Engine.schedule_at engine ~time:2.0 (fun () ->
      Vgroup.bcast group ~src:1 (Write ("/home/kr/paper.tex", "\\section{1}")));

  (* server 2 joins: gets the store by state transfer *)
  Engine.schedule_at engine ~time:10.0 (fun () -> Vgroup.join group ~node:2);

  (* more traffic after the join *)
  Engine.schedule_at engine ~time:40.0 (fun () ->
      Vgroup.bcast group ~src:2 (Write ("/tmp/scratch", "new server was here")));
  Engine.schedule_at engine ~time:41.0 (fun () ->
      Vgroup.bcast group ~src:0 (Delete ("/etc/motd")));

  (* server 1 is decommissioned *)
  Engine.schedule_at engine ~time:60.0 (fun () -> Vgroup.leave group ~node:1);
  Engine.schedule_at engine ~time:70.0 (fun () ->
      Vgroup.bcast group ~src:2 (Write ("/var/log/events", "post-leave write")));

  Engine.run engine;

  print_endline "\n--- final file stores ---";
  List.iter
    (fun server ->
      Printf.printf "server %d (%s):\n" server
        (if Vgroup.is_member group server then "member" else "not a member");
      Smap.iter (fun k v -> Printf.printf "   %-22s %S\n" k v) stores.(server))
    [ 0; 2 ];

  Printf.printf "\nviews agree everywhere: %b\n" (Vgroup.check_views_agree group);
  Printf.printf "virtual synchrony held: %b\n"
    (Vgroup.check_virtual_synchrony group);
  let same = Smap.equal String.equal stores.(0) stores.(2) in
  Printf.printf "surviving stores identical: %b\n" same;
  assert (Vgroup.check_views_agree group);
  assert (Vgroup.check_virtual_synchrony group);
  assert same
