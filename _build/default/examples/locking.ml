(* Decentralized lock arbitration (paper §6.2, Fig. 5).

   Members broadcast LOCK requests; the requests of one cycle are totally
   ordered through their causal dependencies on the previous cycle's TFR
   messages, and a deterministic arbiter picks the same holder sequence at
   every member — consensus with zero extra messages.

   Run with:  dune exec examples/locking.exe *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Lock = Causalb_protocols.Lock_service
module Stats = Causalb_util.Stats

let () =
  let engine = Engine.create ~seed:5 () in
  let lock =
    Lock.create engine ~members:3
      ~latency:(Latency.lognormal ~mu:0.4 ~sigma:0.8 ())
      ~hold:(Latency.exponential ~mean:2.0 ())
      ()
  in
  Lock.start lock ~cycles:3;
  Engine.run engine;

  print_endline "grants (cycle, holder, grant..release):";
  List.iter
    (fun g ->
      Printf.printf "  S=%d holder=%c  %7.2f .. %7.2f ms\n" g.Lock.cycle
        (Char.chr (Char.code 'A' + g.Lock.holder))
        g.Lock.grant_time g.Lock.release_time)
    (Lock.grants lock);

  Printf.printf "\ncycles completed: %d\n" (Lock.cycles_completed lock);
  Printf.printf "mean cycle duration: %.2f ms\n"
    (Stats.mean (Lock.cycle_durations lock));
  Printf.printf "mean wait for grant: %.2f ms\n"
    (Stats.mean (Lock.wait_times lock));
  Printf.printf "messages: %d\n" (Lock.messages_sent lock);

  Printf.printf "mutual exclusion: %s\n"
    (if Lock.check_mutual_exclusion lock then "ok" else "VIOLATED");
  Printf.printf "identical arbitration at all members: %s\n"
    (if Lock.check_agreement lock then "ok" else "VIOLATED");
  Printf.printf "liveness: %s\n"
    (if Lock.check_liveness lock ~expected_cycles:3 then "ok" else "VIOLATED");

  print_endline "\narbitration orders as computed locally by member A:";
  List.iter
    (fun (cycle, order) ->
      Printf.printf "  S=%d: %s\n" cycle
        (String.concat " -> "
           (List.map
              (fun m -> String.make 1 (Char.chr (Char.code 'A' + m)))
              order)))
    (Lock.arbitration_orders lock 0)
