(* Distributed name service (paper §5.2): spontaneous updates and queries.

   In App_check mode messages carry no ordering at all; queries carry
   context (the issuer's last-seen update) and servers discard answers
   that would be inconsistent.  In Total_order mode everything goes
   through the ASend sequencer.  The trade: discards vs latency.

   Run with:  dune exec examples/name_service.exe *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Ns = Causalb_protocols.Name_service
module Stats = Causalb_util.Stats
module Table = Causalb_util.Table
module Rng = Causalb_util.Rng

let drive mode ~updates ~queries =
  let engine = Engine.create ~seed:21 () in
  let ns =
    Ns.create engine ~servers:4 ~mode
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.0 ())
      ()
  in
  let rng = Engine.fork_rng engine in
  let keys = [| "printer"; "mailhost"; "gateway" |] in
  let total = updates + queries in
  let kinds =
    Array.init total (fun i -> if i < updates then `Upd else `Qry)
  in
  Rng.shuffle rng kinds;
  Array.iteri
    (fun i kind ->
      let src = i mod 4 in
      let key = Rng.pick rng keys in
      Engine.schedule_at engine ~time:(float_of_int i *. 0.9) (fun () ->
          match kind with
          | `Upd -> Ns.update ns ~src ~key (Printf.sprintf "host%d" i)
          | `Qry -> Ns.query ns ~src ~key))
    kinds;
  Engine.run engine;
  ns

let () =
  let t =
    Table.create ~title:"name service: app-check vs total order (40 upd, 80 qry)"
      ~columns:
        [ "mode"; "answers"; "discarded"; "discard%"; "mean answer ms"; "registries agree" ]
  in
  List.iter
    (fun (label, mode) ->
      let ns = drive mode ~updates:40 ~queries:80 in
      Table.add_row t
        [
          label;
          string_of_int (List.length (Ns.answers ns));
          string_of_int (Ns.answers_discarded ns);
          Table.fmt_pct (Ns.discard_fraction ns);
          Table.fmt_float (Stats.mean (Ns.answer_latency ns));
          string_of_bool (Ns.final_states_agree ns);
        ];
      assert (Ns.valid_answers_agree ns))
    [ ("app-check", Ns.App_check); ("total-order", Ns.Total_order) ];
  Table.print t;
  print_endline
    "App-check answers faster but discards some answers (and may leave\n\
     registries divergent); total order never discards but pays the\n\
     sequencer hop on every operation."
