(* Quickstart: a replicated integer shared by three entities (Fig. 1/2 of
   the paper).

   Three replicas hold a local copy of one integer.  Clients send
   commutative inc/dec operations and occasional non-commutative reads
   through the §6.1 front-end manager; the causal broadcast layer delivers
   them so that every read closes a cycle and returns the same value at
   every replica — with no agreement protocol anywhere.

   Run with:  dune exec examples/quickstart.exe *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Dt = Causalb_data.Datatypes
module Service = Causalb_data.Service
module Replica = Causalb_data.Replica
module Stats = Causalb_util.Stats

let () =
  let engine = Engine.create ~seed:2024 () in
  let service =
    Service.create engine ~replicas:3 ~machine:Dt.Int_register.machine
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.0 ())
      ~fifo:false ()
  in

  (* Two clients race increments; a third client reads.  The read is
     non-commutative, so the front-end orders it after the whole window
     and it lands on a stable point. *)
  Engine.schedule_at engine ~time:0.0 (fun () ->
      ignore (Service.submit service ~src:0 (Dt.Int_register.Inc 10)));
  Engine.schedule_at engine ~time:0.1 (fun () ->
      ignore (Service.submit service ~src:1 (Dt.Int_register.Inc 5)));
  Engine.schedule_at engine ~time:0.2 (fun () ->
      ignore (Service.submit service ~src:1 (Dt.Int_register.Dec 3)));
  Engine.schedule_at engine ~time:5.0 (fun () ->
      ignore (Service.submit service ~src:2 Dt.Int_register.Read));

  (* A deferred read: ask replica 0 for the value at the next stable
     point (no broadcast needed, §5.1). *)
  Engine.schedule_at engine ~time:0.3 (fun () ->
      Replica.read_deferred (Service.replica service 0) (fun v ->
          Printf.printf "[%.3f ms] deferred read at replica 0 -> %d\n"
            (Engine.now engine) v));

  Service.run service;

  print_endline "--- after the run ---";
  List.iter
    (fun r ->
      Printf.printf "replica %d: stable value = %d (cycles closed: %d)\n"
        (Replica.id r) (Replica.stable_state r) (Replica.cycles_closed r))
    (Service.replicas service);

  Printf.printf "mean delivery latency: %.3f ms\n"
    (Stats.mean (Service.delivery_latency service));
  print_endline "consistency checks:";
  List.iter
    (fun (name, ok) ->
      Printf.printf "  %-32s %s\n" name (if ok then "ok" else "VIOLATED"))
    (Service.check service)
