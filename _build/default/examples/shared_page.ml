(* Distributed shared-page access (§6.2's setting): the page travels with
   the lock.  Members take turns appending their edits; the TFR broadcast
   that releases the lock also carries the new page contents, so one
   message does both jobs and nobody ever reads a stale page when
   acquiring.

   Run with:  dune exec examples/shared_page.exe *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Page = Causalb_protocols.Page_service

let () =
  let engine = Engine.create ~seed:9 () in
  let mutate ~member ~page:(p : Page.page) =
    let stamp = Printf.sprintf "[edit by %c]" (Char.chr (Char.code 'A' + member)) in
    if p.Page.data = "" then stamp else p.Page.data ^ " " ^ stamp
  in
  let pages =
    Page.create engine ~members:3 ~mutate
      ~latency:(Latency.lognormal ~mu:0.4 ~sigma:0.8 ())
      ~hold:(Latency.exponential ~mean:2.0 ())
      ()
  in
  Page.start pages ~cycles:2;
  Engine.run engine;

  print_endline "write lineage (version, writer):";
  List.iter
    (fun (v, w) ->
      Printf.printf "  v%-2d written by %c\n" v (Char.chr (Char.code 'A' + w)))
    (Page.writes pages);

  let final = Page.page_at pages 0 in
  Printf.printf "\nfinal page (version %d):\n  %s\n" final.Page.version
    final.Page.data;

  Printf.printf "\nno lost updates: %b\n"
    (Page.check_no_lost_updates pages ~expected_writes:6);
  Printf.printf "copies converge: %b\n" (Page.check_copies_converge pages);
  Printf.printf "versions monotone at every member: %b\n"
    (Page.check_versions_monotone pages);
  Printf.printf "messages: %d\n" (Page.messages_sent pages);
  assert (Page.check_no_lost_updates pages ~expected_writes:6);
  assert (Page.check_copies_converge pages)
