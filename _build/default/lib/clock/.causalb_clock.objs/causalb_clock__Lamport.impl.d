lib/clock/lamport.ml: Format Int
