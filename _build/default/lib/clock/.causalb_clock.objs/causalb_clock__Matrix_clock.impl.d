lib/clock/matrix_clock.ml: Array Format Vector_clock
