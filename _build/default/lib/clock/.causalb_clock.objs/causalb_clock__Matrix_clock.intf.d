lib/clock/matrix_clock.mli: Format Vector_clock
