type t = int

let zero = 0

let of_int n =
  if n < 0 then invalid_arg "Lamport.of_int: negative";
  n

let to_int t = t

let tick t = t + 1

let receive ~local ~remote = max local remote + 1

let compare = Int.compare

let pp ppf t = Format.fprintf ppf "L%d" t
