(** Lamport scalar clocks (Lamport 1978, the paper's reference [6]).

    A scalar clock provides a total order consistent with causality but
    cannot detect concurrency; it is used here for tie-breaking inside the
    deterministic-merge total orderer ({!Causalb_core.Asend}) and as the
    weakest point on the "ordering information" spectrum measured by
    experiment T6. *)

type t = private int

val zero : t

val of_int : int -> t
(** @raise Invalid_argument on a negative value. *)

val to_int : t -> int

val tick : t -> t
(** Local event: advance by one. *)

val receive : local:t -> remote:t -> t
(** Merge on message receipt: [max local remote + 1]. *)

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
