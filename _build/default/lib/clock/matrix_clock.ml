type t = Vector_clock.t array (* row j = view of process j's vector clock *)

let create n =
  if n <= 0 then invalid_arg "Matrix_clock.create: size must be positive";
  Array.init n (fun _ -> Vector_clock.create n)

let size = Array.length

let check_index m j =
  if j < 0 || j >= Array.length m then
    invalid_arg "Matrix_clock: process index out of range"

let row m j =
  check_index m j;
  m.(j)

let update_row m j v =
  check_index m j;
  let m' = Array.copy m in
  m'.(j) <- Vector_clock.merge m'.(j) v;
  m'

let merge a b =
  if Array.length a <> Array.length b then
    invalid_arg "Matrix_clock.merge: size mismatch";
  Array.init (Array.length a) (fun j -> Vector_clock.merge a.(j) b.(j))

let min_vector m =
  let n = Array.length m in
  let mins =
    Array.init n (fun i ->
        Array.fold_left
          (fun acc rowv -> min acc (Vector_clock.get rowv i))
          max_int m)
  in
  Vector_clock.of_array mins

let stable m ~event_owner ~event_stamp =
  Array.for_all (fun rowv -> Vector_clock.get rowv event_owner >= event_stamp) m

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri (fun j v -> Format.fprintf ppf "%d: %a@," j Vector_clock.pp v) m;
  Format.fprintf ppf "@]"
