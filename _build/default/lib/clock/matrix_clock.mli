(** Matrix clocks: each process tracks its view of every other process's
    vector clock.

    Row [j] of process [i]'s matrix is [i]'s latest knowledge of [j]'s
    vector clock.  The componentwise minimum over all rows lower-bounds
    what *everyone* is known to have seen, which is exactly the stability
    test needed by the deterministic-merge total orderer: a message is
    stable once every member is known to have received it, at which point
    its relative order can be fixed identically everywhere without further
    communication. *)

type t

val create : int -> t
(** [create n] is the all-zero matrix for an [n]-process group. *)

val size : t -> int

val row : t -> int -> Vector_clock.t
(** [row m j] is the vector clock attributed to process [j]. *)

val update_row : t -> int -> Vector_clock.t -> t
(** Functional row replacement (used on message receipt when the sender
    piggybacks its vector clock). *)

val merge : t -> t -> t
(** Componentwise maximum of all rows. *)

val min_vector : t -> Vector_clock.t
(** Componentwise minimum across rows: events known to be seen by all. *)

val stable : t -> event_owner:int -> event_stamp:int -> bool
(** [stable m ~event_owner ~event_stamp] iff every row records at least
    [event_stamp] in component [event_owner] — i.e. the event is known to
    have reached every member. *)

val pp : Format.formatter -> t -> unit
