lib/core/asend.ml: Array Causalb_clock Causalb_graph Causalb_net Causalb_sim Causalb_util Group Int List Message
