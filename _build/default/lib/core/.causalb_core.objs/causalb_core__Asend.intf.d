lib/core/asend.mli: Causalb_graph Causalb_net Causalb_sim Group Message
