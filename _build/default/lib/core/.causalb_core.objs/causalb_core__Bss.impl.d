lib/core/bss.ml: Array Causalb_clock Causalb_net Causalb_sim List
