lib/core/bss.mli: Causalb_clock Causalb_net
