lib/core/checker.ml: Causalb_graph Format List
