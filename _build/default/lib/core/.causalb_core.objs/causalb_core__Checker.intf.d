lib/core/checker.mli: Causalb_graph Format
