lib/core/fifo.ml: Array Causalb_net Causalb_sim List
