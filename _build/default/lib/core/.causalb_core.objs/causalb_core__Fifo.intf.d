lib/core/fifo.mli: Causalb_net
