lib/core/group.mli: Causalb_graph Causalb_net Causalb_sim Message Osend
