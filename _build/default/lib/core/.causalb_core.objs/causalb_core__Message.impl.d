lib/core/message.ml: Causalb_graph Format
