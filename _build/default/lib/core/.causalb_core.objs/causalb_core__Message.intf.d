lib/core/message.mli: Causalb_graph Format
