lib/core/osend.ml: Causalb_graph List Message
