lib/core/osend.mli: Causalb_graph Message
