lib/core/psync.ml: Array Causalb_graph Causalb_net Causalb_sim List Message Osend
