lib/core/psync.mli: Causalb_graph Causalb_net Message Osend
