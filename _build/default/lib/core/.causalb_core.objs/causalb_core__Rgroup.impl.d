lib/core/rgroup.ml: Array Causalb_graph Causalb_net Causalb_sim Hashtbl List Message Option Osend
