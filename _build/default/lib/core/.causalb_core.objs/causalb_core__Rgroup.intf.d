lib/core/rgroup.mli: Causalb_graph Causalb_net Message Osend
