lib/core/stable_points.ml: Causalb_graph List Message
