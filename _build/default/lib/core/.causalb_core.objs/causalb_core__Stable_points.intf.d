lib/core/stable_points.mli: Causalb_graph Message
