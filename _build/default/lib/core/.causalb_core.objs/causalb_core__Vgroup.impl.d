lib/core/vgroup.ml: Array Causalb_graph Causalb_net Causalb_sim Hashtbl Int List Message Option Osend Printf
