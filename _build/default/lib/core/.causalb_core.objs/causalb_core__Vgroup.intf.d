lib/core/vgroup.mli: Causalb_graph Causalb_net Message
