module Vc = Causalb_clock.Vector_clock
module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine

type 'a envelope = { sender : int; stamp : Vc.t; tag : string; payload : 'a }

type 'a member = {
  id : int;
  n : int;
  deliver : 'a envelope -> unit;
  mutable delivered : int array; (* per-origin delivered count *)
  mutable own_sends : int;
  mutable pending : 'a envelope list; (* arrival order, reversed *)
  mutable tags_rev : string list;
  mutable delivered_n : int;
  mutable buffered_ever : int;
}

let member ~id ~group_size ?(deliver = fun _ -> ()) () =
  if group_size <= 0 then invalid_arg "Bss.member: group_size must be positive";
  {
    id;
    n = group_size;
    deliver;
    delivered = Array.make group_size 0;
    own_sends = 0;
    pending = [];
    tags_rev = [];
    delivered_n = 0;
    buffered_ever = 0;
  }

let deliverable t (e : 'a envelope) =
  let ok = ref (Vc.get e.stamp e.sender = t.delivered.(e.sender) + 1) in
  for k = 0 to t.n - 1 do
    if k <> e.sender && Vc.get e.stamp k > t.delivered.(k) then ok := false
  done;
  !ok

let do_deliver t e =
  t.delivered.(e.sender) <- t.delivered.(e.sender) + 1;
  t.tags_rev <- e.tag :: t.tags_rev;
  t.delivered_n <- t.delivered_n + 1;
  t.deliver e

let rec drain t =
  let pending = List.rev t.pending in
  let ready, blocked = List.partition (deliverable t) pending in
  if ready <> [] then begin
    t.pending <- List.rev blocked;
    List.iter (do_deliver t) ready;
    drain t
  end

let receive t e =
  (* Duplicate or stale copies (stamp component not above the delivered
     count) are discarded. *)
  if Vc.get e.stamp e.sender <= t.delivered.(e.sender) then ()
  else if deliverable t e then begin
    do_deliver t e;
    drain t
  end
  else begin
    t.buffered_ever <- t.buffered_ever + 1;
    t.pending <- e :: t.pending
  end

let delivered_tags t = List.rev t.tags_rev

let delivered_count t = t.delivered_n

let pending_count t = List.length t.pending

let buffered_ever t = t.buffered_ever

let clock t =
  (* Own component counts own sends (each send ticks it); the other
     components are the per-origin delivered counts — everything the
     member has potentially been influenced by. *)
  let v = Array.copy t.delivered in
  v.(t.id) <- t.own_sends;
  Vc.of_array v

module Group = struct
  type 'a t = { net : 'a envelope Net.t; members : 'a member array }

  let create net ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
    let n = Net.nodes net in
    let engine = Net.engine net in
    let make_member node =
      let deliver e = on_deliver ~node ~time:(Engine.now engine) e in
      member ~id:node ~group_size:n ~deliver ()
    in
    let members = Array.init n make_member in
    for node = 0 to n - 1 do
      Net.set_handler net node (fun ~src:_ e -> receive members.(node) e)
    done;
    { net; members }

  let size t = Array.length t.members

  let bcast t ~src ?(tag = "") payload =
    let m = t.members.(src) in
    m.own_sends <- m.own_sends + 1;
    (* Stamp: delivered counts with own component = own send count.  This
       is the classic BSS stamp — it encodes everything the sender has
       delivered (potential causes) plus its own send sequence. *)
    let stamp = clock m in
    let e = { sender = src; stamp; tag; payload } in
    Net.broadcast t.net ~src e

  let member t i = t.members.(i)

  let delivered_tags t i = delivered_tags t.members.(i)
end
