module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph

let causal_safety g order = Depgraph.verify_sequence g order

let causal_safety_all g orders = List.for_all (causal_safety g) orders

let same_set orders =
  match orders with
  | [] -> true
  | first :: rest ->
    let set_of o = Label.Set.of_list o in
    let s0 = set_of first in
    List.length first = Label.Set.cardinal s0
    && List.for_all
         (fun o ->
           List.length o = Label.Set.cardinal (set_of o)
           && Label.Set.equal s0 (set_of o))
         rest

let identical_orders orders =
  match orders with
  | [] -> true
  | first :: rest ->
    List.for_all
      (fun o ->
        List.length o = List.length first
        && List.for_all2 Label.equal first o)
      rest

let violations g order =
  let included = Label.Set.of_list order in
  let pos = Label.Tbl.create 64 in
  List.iteri (fun i l -> Label.Tbl.replace pos l i) order;
  List.concat_map
    (fun l ->
      if not (Depgraph.mem g l) then []
      else
        match Depgraph.dep_of g l with
        | Dep.After_any alts ->
          (* OR-dependency: violated only if no included alternative
             precedes the message. *)
          let rel = List.filter (fun a -> Label.Set.mem a included) alts in
          let ok =
            rel = []
            || List.exists
                 (fun a -> Label.Tbl.find pos a < Label.Tbl.find pos l)
                 rel
          in
          if ok then []
          else List.map (fun a -> (a, l)) rel
        | d ->
          List.filter_map
            (fun a ->
              if
                Label.Set.mem a included
                && Label.Tbl.find pos a > Label.Tbl.find pos l
              then Some (a, l)
              else None)
            (Dep.ancestors d))
    order

let windows_agree member_windows =
  match member_windows with
  | [] -> true
  | first :: rest ->
    let agree a b =
      let rec loop a b =
        match (a, b) with
        | [], _ | _, [] -> true
        | x :: xs, y :: ys -> Label.Set.equal x y && loop xs ys
      in
      loop a b
    in
    List.for_all (agree first) rest

let pp_violation ppf (a, b) =
  Format.fprintf ppf "%a delivered after its descendant %a" Label.pp a
    Label.pp b
