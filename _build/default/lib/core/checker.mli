(** Execution verifiers.

    Pure predicates over delivery sequences, used by the test suite and
    asserted (in debug runs) by the experiment harness.  Each corresponds
    to a guarantee the paper's model promises:

    - causal safety: every member's delivery order is a linear extension
      of the application's dependency graph (§3);
    - set agreement: all members deliver the same message set;
    - total-order agreement: all members deliver the identical sequence
      (the [ASend] guarantee, §5.2);
    - window agreement: all members partition the execution into the same
      cycle windows (the stable-point guarantee, §4). *)

val causal_safety :
  Causalb_graph.Depgraph.t -> Causalb_graph.Label.t list -> bool
(** The sequence never delivers a message before an ancestor its
    predicate names (ancestors outside the sequence are ignored). *)

val causal_safety_all :
  Causalb_graph.Depgraph.t -> Causalb_graph.Label.t list list -> bool

val same_set : Causalb_graph.Label.t list list -> bool
(** Every sequence contains the same labels (each exactly once). *)

val identical_orders : Causalb_graph.Label.t list list -> bool

val violations :
  Causalb_graph.Depgraph.t ->
  Causalb_graph.Label.t list ->
  (Causalb_graph.Label.t * Causalb_graph.Label.t) list
(** Pairs [(ancestor, descendant)] delivered in the wrong relative order —
    the diagnostic form of {!causal_safety}. *)

val windows_agree : Causalb_graph.Label.Set.t list list -> bool
(** Given each member's list of closed-window sets (see
    {!Stable_points.window_sets}), checks members agree cycle by cycle on
    the common prefix of closed cycles. *)

val pp_violation :
  Format.formatter -> Causalb_graph.Label.t * Causalb_graph.Label.t -> unit
