module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine

type 'a envelope = { sender : int; seq : int; tag : string; payload : 'a }

type 'a member = {
  id : int;
  deliver : 'a envelope -> unit;
  next_seq : int array; (* expected next per origin *)
  mutable pending : 'a envelope list;
  mutable tags_rev : string list;
  mutable delivered_n : int;
}

let member ~id ~group_size ?(deliver = fun _ -> ()) () =
  if group_size <= 0 then invalid_arg "Fifo.member: group_size must be positive";
  {
    id;
    deliver;
    next_seq = Array.make group_size 0;
    pending = [];
    tags_rev = [];
    delivered_n = 0;
  }

let deliverable t e = e.seq = t.next_seq.(e.sender)

let do_deliver t e =
  t.next_seq.(e.sender) <- e.seq + 1;
  t.tags_rev <- e.tag :: t.tags_rev;
  t.delivered_n <- t.delivered_n + 1;
  t.deliver e

let rec drain t =
  let pending = List.rev t.pending in
  let ready, blocked = List.partition (deliverable t) pending in
  if ready <> [] then begin
    t.pending <- List.rev blocked;
    List.iter (do_deliver t) ready;
    drain t
  end

let receive t e =
  if e.seq < t.next_seq.(e.sender) then () (* duplicate *)
  else if deliverable t e then begin
    do_deliver t e;
    drain t
  end
  else t.pending <- e :: t.pending

let delivered_tags t = List.rev t.tags_rev

let delivered_count t = t.delivered_n

let pending_count t = List.length t.pending

module Group = struct
  type 'a t = {
    net : 'a envelope Net.t;
    members : 'a member array;
    seqs : int array;
  }

  let create net ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
    let n = Net.nodes net in
    let engine = Net.engine net in
    let make_member node =
      let deliver e = on_deliver ~node ~time:(Engine.now engine) e in
      member ~id:node ~group_size:n ~deliver ()
    in
    let members = Array.init n make_member in
    for node = 0 to n - 1 do
      Net.set_handler net node (fun ~src:_ e -> receive members.(node) e)
    done;
    { net; members; seqs = Array.make n 0 }

  let size t = Array.length t.members

  let bcast t ~src ?(tag = "") payload =
    let seq = t.seqs.(src) in
    t.seqs.(src) <- seq + 1;
    Net.broadcast t.net ~src { sender = src; seq; tag; payload }

  let member t i = t.members.(i)

  let delivered_tags t i = delivered_tags t.members.(i)
end
