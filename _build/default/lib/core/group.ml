module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine
module Trace = Causalb_sim.Trace
module Label = Causalb_graph.Label

type 'a t = {
  net : 'a Message.t Net.t;
  members : 'a Osend.t array;
  seqs : int array; (* next per-origin sequence number *)
  trace : Trace.t option;
  mutable sent : int;
  mutable ancestors : int;
}

let create net ?trace ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
  let n = Net.nodes net in
  let engine = Net.engine net in
  let t =
    {
      net;
      members = [||];
      seqs = Array.make n 0;
      trace;
      sent = 0;
      ancestors = 0;
    }
  in
  let make_member node =
    let deliver msg =
      let time = Engine.now engine in
      (match trace with
      | Some tr ->
        Trace.record tr ~time ~node ~kind:Trace.Deliver
          ~tag:(Label.to_string (Message.label msg))
          ()
      | None -> ());
      on_deliver ~node ~time msg
    in
    Osend.create ~id:node ~deliver ()
  in
  let members = Array.init n make_member in
  let t = { t with members } in
  for node = 0 to n - 1 do
    Net.set_handler net node (fun ~src:_ msg -> Osend.receive members.(node) msg)
  done;
  t

let net t = t.net

let size t = Array.length t.members

let next_label t ~src ?name () =
  let seq = t.seqs.(src) in
  t.seqs.(src) <- seq + 1;
  Label.make ?name ~origin:src ~seq ()

let send_labelled t ~src ~label ~dep payload =
  let msg = Message.make ~label ~sender:src ~dep payload in
  t.sent <- t.sent + 1;
  t.ancestors <- t.ancestors + List.length (Causalb_graph.Dep.ancestors dep);
  (match t.trace with
  | Some tr ->
    Trace.record tr
      ~time:(Engine.now (Net.engine t.net))
      ~node:src ~kind:Trace.Send ~tag:(Label.to_string label) ()
  | None -> ());
  Net.broadcast t.net ~src msg

let osend t ~src ?name ~dep payload =
  let label = next_label t ~src ?name () in
  send_labelled t ~src ~label ~dep payload;
  label

let member t i = t.members.(i)

let delivered_order t i = Osend.delivered_order t.members.(i)

let all_delivered_orders t =
  Array.to_list (Array.map Osend.delivered_order t.members)

let sent_count t = t.sent

let ancestors_named t = t.ancestors
