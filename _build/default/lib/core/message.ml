module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep

type 'a t = { label : Label.t; sender : int; dep : Dep.t; payload : 'a }

let make ~label ~sender ~dep payload = { label; sender; dep; payload }

let label t = t.label

let sender t = t.sender

let dep t = t.dep

let payload t = t.payload

let map f t = { t with payload = f t.payload }

let pp pp_payload ppf t =
  Format.fprintf ppf "@[<h>%a@ %a@ from=%d@ payload=%a@]" Label.pp t.label
    Dep.pp t.dep t.sender pp_payload t.payload
