(** Wire envelope of the causal broadcast layer.

    An [OSend(Msg, G, Occurs_After(…))] call produces one envelope: the
    payload plus exactly the causality information the paper says must
    travel with it — the message's own label and its ordering predicate.
    Because every member receives every envelope, each member can rebuild
    the identical dependency graph (§3: the graph is stable information). *)

type 'a t = {
  label : Causalb_graph.Label.t;
  sender : int;
  dep : Causalb_graph.Dep.t;
  payload : 'a;
}

val make :
  label:Causalb_graph.Label.t ->
  sender:int ->
  dep:Causalb_graph.Dep.t ->
  'a ->
  'a t

val label : 'a t -> Causalb_graph.Label.t

val sender : 'a t -> int

val dep : 'a t -> Causalb_graph.Dep.t

val payload : 'a t -> 'a

val map : ('a -> 'b) -> 'a t -> 'b t

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
