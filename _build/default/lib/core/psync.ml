module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep

type 'a member = {
  id : int;
  engine_member : 'a Osend.t;
  mutable leaves : Label.Set.t;
      (* received messages that no received message depends on — the
         context the next send attaches *)
}

type 'a t = {
  net : 'a Message.t Net.t;
  members : 'a member array;
  seqs : int array;
  mutable context_total : int;
}

(* Track leaves from *received* (not merely delivered) messages: context
   is what the process has seen, and the graph keeps it consistent. *)
let note_received m (msg : 'a Message.t) =
  let ancestors = Dep.ancestors (Message.dep msg) in
  m.leaves <-
    Label.Set.add (Message.label msg)
      (List.fold_left (fun acc a -> Label.Set.remove a acc) m.leaves ancestors)

let create net ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
  let n = Net.nodes net in
  let engine = Net.engine net in
  let members =
    Array.init n (fun id ->
        let deliver msg = on_deliver ~node:id ~time:(Engine.now engine) msg in
        {
          id;
          engine_member = Osend.create ~id ~deliver ();
          leaves = Label.Set.empty;
        })
  in
  let t = { net; members; seqs = Array.make n 0; context_total = 0 } in
  for node = 0 to n - 1 do
    Net.set_handler net node (fun ~src:_ msg ->
        let m = members.(node) in
        note_received m msg;
        Osend.receive m.engine_member msg)
  done;
  t

let size t = Array.length t.members

let send t ~src ?name payload =
  let m = t.members.(src) in
  let seq = t.seqs.(src) in
  t.seqs.(src) <- seq + 1;
  let label = Label.make ?name ~origin:src ~seq () in
  let context = Label.Set.elements m.leaves in
  t.context_total <- t.context_total + List.length context;
  let msg =
    Message.make ~label ~sender:src ~dep:(Dep.after_all context) payload
  in
  (* local copy: the sender's own message immediately becomes its sole
     leaf *)
  note_received m msg;
  Osend.receive m.engine_member msg;
  Net.broadcast t.net ~src ~self:false msg;
  label

let member t i = t.members.(i).engine_member

let leaves_at t i = Label.Set.elements t.members.(i).leaves

let delivered_order t i = Osend.delivered_order (member t i)

let all_delivered_orders t =
  List.init (size t) (fun i -> delivered_order t i)

let buffered_ever t =
  Array.fold_left
    (fun acc m -> acc + Osend.buffered_ever m.engine_member)
    0 t.members

let context_size_total t = t.context_total
