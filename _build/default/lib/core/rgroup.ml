module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep

type 'a packet =
  | Data of 'a Message.t
  | Nack of { wanting : Label.t; requester : int }
  | Repair of 'a Message.t
  | Summary of { from : int; counts : (int * int * int) list }
      (* (origin, max seq seen, contiguous prefix received) *)

(* Per-member recovery state. *)
type 'a station = {
  id : int;
  engine_member : 'a Osend.t;
  stash : 'a Message.t Label.Tbl.t;      (* messages kept for repairs *)
  max_seq : (int, int) Hashtbl.t;        (* origin -> highest seq seen *)
  contig : (int, int) Hashtbl.t;         (* origin -> contiguous prefix *)
  peer_contig : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (* peer -> origin -> peer's contiguous prefix, from summaries *)
  delivered_set : unit Label.Tbl.t;      (* for contig/GC bookkeeping *)
  chasing : (Label.t, int) Hashtbl.t;    (* label -> retries so far *)
  mutable gave_up : int;
  mutable pruned : int;
  mutable stash_peak : int;
}

type 'a t = {
  net : 'a packet Net.t;
  engine : Engine.t;
  stations : 'a station array;
  seqs : int array;
  nack_timeout : float;
  max_retries : int;
  mutable nacks : int;
  mutable repairs : int;
  mutable summaries : int;
  mutable gc : bool;
}

let size t = Array.length t.stations

let member t i = t.stations.(i).engine_member

let delivered_order t i = Osend.delivered_order (member t i)

let all_delivered_orders t =
  List.init (size t) (fun i -> delivered_order t i)

let nacks_sent t = t.nacks

let repairs_sent t = t.repairs

let unrecoverable t =
  Array.fold_left (fun acc s -> acc + s.gave_up) 0 t.stations

(* "seen" must survive stash pruning: the label record is permanent even
   when the payload has been garbage-collected. *)
let has_seen st label = Label.Tbl.mem st.delivered_set label

(* Arm (or re-arm) a chase for a missing label at this station. *)
let rec chase t st label =
  if not (has_seen st label) then begin
    let retries =
      Option.value ~default:0 (Hashtbl.find_opt st.chasing label)
    in
    if retries >= t.max_retries then begin
      Hashtbl.remove st.chasing label;
      st.gave_up <- st.gave_up + 1
    end
    else begin
      Hashtbl.replace st.chasing label (retries + 1);
      t.nacks <- t.nacks + 1;
      Net.broadcast t.net ~src:st.id ~self:false
        (Nack { wanting = label; requester = st.id });
      let backoff = t.nack_timeout *. (2.0 ** float_of_int retries) in
      Engine.schedule t.engine ~delay:backoff (fun () -> chase t st label)
    end
  end
  else Hashtbl.remove st.chasing label

let start_chase t st label =
  if (not (has_seen st label)) && not (Hashtbl.mem st.chasing label) then begin
    Hashtbl.replace st.chasing label 0;
    (* first probe waits one timeout: the message may simply be in flight *)
    Engine.schedule t.engine ~delay:t.nack_timeout (fun () -> chase t st label)
  end

(* Gap detection from per-origin sequence numbers: labels below the
   highest seen sequence that were never received must exist. *)
let scan_gaps t st label =
  let origin = Label.origin label and seq = Label.seq label in
  let prev = Option.value ~default:(-1) (Hashtbl.find_opt st.max_seq origin) in
  if seq > prev then begin
    Hashtbl.replace st.max_seq origin seq;
    for missing = prev + 1 to seq - 1 do
      let l = Label.make ~origin ~seq:missing () in
      if not (has_seen st l) then start_chase t st l
    done
  end

let advance_contig st origin =
  let rec bump h =
    if Label.Tbl.mem st.delivered_set (Label.make ~origin ~seq:(h + 1) ())
    then bump (h + 1)
    else h
  in
  let prev = Option.value ~default:(-1) (Hashtbl.find_opt st.contig origin) in
  Hashtbl.replace st.contig origin (bump prev)

let accept_data t st msg =
  let label = Message.label msg in
  if not (has_seen st label) then begin
    Label.Tbl.replace st.delivered_set label ();
    Label.Tbl.replace st.stash label msg;
    st.stash_peak <- max st.stash_peak (Label.Tbl.length st.stash);
    Hashtbl.remove st.chasing label;
    Osend.receive st.engine_member msg;
    scan_gaps t st label;
    advance_contig st (Label.origin label);
    (* any ancestors the delivery engine is now blocked on are provably
       missing — chase them *)
    List.iter (start_chase t st) (Osend.blocked_on st.engine_member)
  end

(* A message is globally stable once every member's contiguous prefix for
   its origin covers it: nobody can ever NACK it, so its stash payload can
   go.  Requires a summary from every peer. *)
let collect_garbage t st =
  let n = Array.length t.stations in
  let frontier origin =
    let mine = Option.value ~default:(-1) (Hashtbl.find_opt st.contig origin) in
    let rec over_peers p acc =
      if p >= n then acc
      else if p = st.id then over_peers (p + 1) acc
      else
        match Hashtbl.find_opt st.peer_contig p with
        | None -> -1
        | Some tbl ->
          let c = Option.value ~default:(-1) (Hashtbl.find_opt tbl origin) in
          if c < 0 then -1 else over_peers (p + 1) (min acc c)
    in
    over_peers 0 mine
  in
  let doomed =
    Label.Tbl.fold
      (fun label _ acc ->
        if Label.seq label <= frontier (Label.origin label) then label :: acc
        else acc)
      st.stash []
  in
  List.iter
    (fun label ->
      Label.Tbl.remove st.stash label;
      st.pruned <- st.pruned + 1)
    doomed

let handle t node packet =
  let st = t.stations.(node) in
  match packet with
  | Data msg | Repair msg -> accept_data t st msg
  | Nack { wanting; requester } ->
    (match Label.Tbl.find_opt st.stash wanting with
    | Some msg ->
      t.repairs <- t.repairs + 1;
      Net.send t.net ~src:node ~dst:requester (Repair msg)
    | None -> ())
  | Summary { from; counts } ->
    let table =
      match Hashtbl.find_opt st.peer_contig from with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace st.peer_contig from tbl;
        tbl
    in
    List.iter
      (fun (origin, their_max, their_contig) ->
        Hashtbl.replace table origin their_contig;
        let mine =
          Option.value ~default:(-1) (Hashtbl.find_opt st.max_seq origin)
        in
        for missing = mine + 1 to their_max do
          let l = Label.make ~origin ~seq:missing () in
          if not (has_seen st l) then start_chase t st l
        done)
      counts;
    if t.gc then collect_garbage t st

let create net ?(nack_timeout = 10.0) ?(max_retries = 8)
    ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
  let n = Net.nodes net in
  let engine = Net.engine net in
  let stations =
    Array.init n (fun id ->
        let deliver msg = on_deliver ~node:id ~time:(Engine.now engine) msg in
        {
          id;
          engine_member = Osend.create ~id ~deliver ();
          stash = Label.Tbl.create 128;
          max_seq = Hashtbl.create 16;
          contig = Hashtbl.create 16;
          peer_contig = Hashtbl.create 8;
          delivered_set = Label.Tbl.create 128;
          chasing = Hashtbl.create 16;
          gave_up = 0;
          pruned = 0;
          stash_peak = 0;
        })
  in
  let t =
    {
      net;
      engine;
      stations;
      seqs = Array.make n 0;
      nack_timeout;
      max_retries;
      nacks = 0;
      repairs = 0;
      summaries = 0;
      gc = false;
    }
  in
  for node = 0 to n - 1 do
    Net.set_handler net node (fun ~src:_ packet -> handle t node packet)
  done;
  t

let osend t ~src ?name ~dep payload =
  let seq = t.seqs.(src) in
  t.seqs.(src) <- seq + 1;
  let label = Label.make ?name ~origin:src ~seq () in
  let msg = Message.make ~label ~sender:src ~dep payload in
  (* the sender keeps its own copy immediately: it is the repair source
     of last resort for its own messages *)
  accept_data t t.stations.(src) msg;
  Net.broadcast t.net ~src ~self:false (Data msg);
  label

let enable_heartbeat ?(gc = false) t ~period ~until =
  if period <= 0.0 then invalid_arg "Rgroup.enable_heartbeat: period <= 0";
  t.gc <- gc;
  Array.iter
    (fun st ->
      (* stagger members so summaries interleave rather than collide *)
      let offset = period *. float_of_int st.id /. float_of_int (size t) in
      Engine.schedule t.engine ~delay:offset (fun () ->
          Engine.every t.engine ~period ~until (fun () ->
              let counts =
                Hashtbl.fold
                  (fun o s acc ->
                    let c =
                      Option.value ~default:(-1)
                        (Hashtbl.find_opt st.contig o)
                    in
                    (o, s, c) :: acc)
                  st.max_seq []
              in
              if counts <> [] then begin
                t.summaries <- t.summaries + 1;
                Net.broadcast t.net ~src:st.id ~self:false
                  (Summary { from = st.id; counts })
              end)))
    t.stations

let summaries_sent t = t.summaries

let pruned t = Array.fold_left (fun acc st -> acc + st.pruned) 0 t.stations

let stash_peak t =
  Array.fold_left (fun acc st -> max acc st.stash_peak) 0 t.stations

let stash_size t =
  Array.fold_left (fun acc st -> max acc (Label.Tbl.length st.stash)) 0
    t.stations
