(** Reliable causal broadcast: {!Group} plus NACK-driven loss recovery.

    The paper assumes a reliable broadcast substrate (ISIS / Psync).  Over
    a lossy transport, a member discovers holes in two ways:

    {ul
    {- {b dependency-based}: a pending message names an ancestor that
       never arrived ({!Osend.blocked_on});}
    {- {b gap-based}: labels carry per-origin sequence numbers, so seeing
       [(o, 5)] without having seen [(o, 3)] proves [(o, 3)] exists and
       is missing.}}

    For each missing label the member arms a timer; if the message is
    still absent when it fires, the member broadcasts a [NACK] and any
    member holding a copy unicasts a repair.  Retries back off and give
    up after a bound (counted as unrecoverable).  Duplicate repairs are
    harmless — the delivery engine suppresses them.

    Inherent limit of pure NACKing (also true of Psync): a dropped message
    that no later message references and whose origin never sends again is
    invisible and cannot be NACKed.  {!enable_heartbeat} closes the hole:
    members periodically broadcast their per-origin sequence summaries, so
    any receiver lagging an origin's maximum discovers the tail gap and
    chases it. *)

type 'a packet

type 'a t

val create :
  'a packet Causalb_net.Net.t ->
  ?nack_timeout:float ->
  ?max_retries:int ->
  ?on_deliver:(node:int -> time:float -> 'a Message.t -> unit) ->
  unit ->
  'a t
(** [nack_timeout] (default 10 ms) is the wait before requesting a missing
    message, doubled on each retry; [max_retries] defaults to 8. *)

val size : 'a t -> int

val osend :
  'a t ->
  src:int ->
  ?name:string ->
  dep:Causalb_graph.Dep.t ->
  'a ->
  Causalb_graph.Label.t

val member : 'a t -> int -> 'a Osend.t

val delivered_order : 'a t -> int -> Causalb_graph.Label.t list

val all_delivered_orders : 'a t -> Causalb_graph.Label.t list list

val nacks_sent : 'a t -> int

val repairs_sent : 'a t -> int

val unrecoverable : 'a t -> int
(** Labels a member gave up on after [max_retries]. *)

val enable_heartbeat : ?gc:bool -> 'a t -> period:float -> until:float -> unit
(** Every member broadcasts its per-origin sequence summary every
    [period] ms (staggered per member) until virtual time [until];
    receivers chase any gap against the summary.  Bounded by [until] so
    simulations still terminate.

    With [gc:true] (default false) summaries double as a stability
    protocol: each carries the sender's contiguous-prefix watermark per
    origin, and a member prunes from its repair stash every message below
    the minimum watermark across the whole group — nobody can ever NACK
    those.  The label record survives pruning, so duplicate suppression
    is unaffected. *)

val summaries_sent : 'a t -> int

val pruned : 'a t -> int
(** Stash entries garbage-collected across all members. *)

val stash_peak : 'a t -> int
(** Largest repair-stash size any member reached. *)

val stash_size : 'a t -> int
(** Largest current stash size across members. *)
