module Label = Causalb_graph.Label

type class_ = Sync | Concurrent

type point = {
  cycle : int;
  window : Label.t list;
  closed_by : Label.t;
}

type 'a t = {
  classify : 'a Message.t -> class_;
  on_stable : point -> unit;
  mutable window_rev : Label.t list;
  mutable points_rev : point list;
  mutable deferred_rev : (point -> unit) list;
  mutable cycles : int;
}

let create ~classify ?(on_stable = fun _ -> ()) () =
  {
    classify;
    on_stable;
    window_rev = [];
    points_rev = [];
    deferred_rev = [];
    cycles = 0;
  }

let on_deliver t msg =
  match t.classify msg with
  | Concurrent -> t.window_rev <- Message.label msg :: t.window_rev
  | Sync ->
    let point =
      {
        cycle = t.cycles;
        window = List.rev t.window_rev;
        closed_by = Message.label msg;
      }
    in
    t.window_rev <- [];
    t.cycles <- t.cycles + 1;
    t.points_rev <- point :: t.points_rev;
    t.on_stable point;
    let actions = List.rev t.deferred_rev in
    t.deferred_rev <- [];
    List.iter (fun act -> act point) actions

let defer t act = t.deferred_rev <- act :: t.deferred_rev

let cycles_closed t = t.cycles

let points t = List.rev t.points_rev

let open_window t = List.rev t.window_rev

let deferred_count t = List.length t.deferred_rev

let window_sets t =
  List.map (fun p -> Label.Set.of_list p.window) (points t)
