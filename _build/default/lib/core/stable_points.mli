(** Stable-point detection (paper §4.1, §5.1, §6.1).

    The §6.1 access protocol processes messages in repetitive cycles
    [rqst_nc(r−1) → ‖{rqst_c(r,k)} → rqst_nc(r)]: a non-commutative
    message opens/closes a cycle and the interior is a set of concurrent
    commutative messages.  Each member runs one tracker over its causal
    delivery sequence; because the closing message causally depends on the
    whole interior set, every member closes each cycle on the same message
    set — a stable point detected {e locally}, with no agreement round.

    The tracker also hosts deferred actions (the paper's deferred reads,
    §5.1): an action registered mid-window runs at the next stable point,
    when the member's state is guaranteed to agree with every other
    member's. *)

type class_ =
  | Sync        (** non-commutative: closes the current window *)
  | Concurrent  (** commutative: joins the current window *)

type point = {
  cycle : int;                            (** 0-based cycle number *)
  window : Causalb_graph.Label.t list;    (** interior set, delivery order *)
  closed_by : Causalb_graph.Label.t;      (** the sync message *)
}

type 'a t

val create :
  classify:('a Message.t -> class_) ->
  ?on_stable:(point -> unit) ->
  unit ->
  'a t

val on_deliver : 'a t -> 'a Message.t -> unit
(** Feed each causally delivered message, in delivery order. *)

val defer : 'a t -> (point -> unit) -> unit
(** Run the action at the next stable point (after [on_stable]). *)

val cycles_closed : 'a t -> int

val points : 'a t -> point list
(** All stable points so far, oldest first. *)

val open_window : 'a t -> Causalb_graph.Label.t list
(** Interior messages of the currently open cycle. *)

val deferred_count : 'a t -> int

val window_sets : 'a t -> Causalb_graph.Label.Set.t list
(** The interior of each closed cycle as a set — the unit at which members
    must agree (order within a window may differ across members; the set
    may not). *)
