module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep

type view = { vid : int; members : int list }

(* Control traffic flows through the same per-view causal engine as
   application traffic, so flush ordering is enforced by causal delivery
   itself. *)
type 'a in_view =
  | App of 'a
  | Announce of { next : view; crashed : int list }
  | Flush of {
      vid : int;
      from : int;
      relayed : 'a in_view Message.t list;
          (* messages from crashed senders the flusher had received:
             stabilised so every survivor closes the view on the same set *)
    }

type ('a, 's) packet =
  | Viewed of { vid : int; msg : 'a in_view Message.t }
  | Join_req of int
  | Leave_req of int
  | Fail_req of int
  | State_xfer of { view : view; state : 's option }

(* Per-node, per-view delivery machinery and bookkeeping. *)
type 'a station = {
  id : int;
  engines : (int, 'a in_view Osend.t) Hashtbl.t; (* vid -> engine *)
  buffered : (int, 'a in_view Message.t list) Hashtbl.t; (* future views *)
  mutable current : view option;
  mutable installed : view list; (* newest first *)
  mutable sent_in_view : Label.t list; (* labels I broadcast in current view *)
  mutable my_seq : int;
  mutable changing : view option; (* announced next view, flushing *)
  mutable changing_crashed : int list; (* crashed set of the open change *)
  mutable flushes_seen : int list; (* members whose flush arrived (for changing) *)
  mutable flush_sent : bool;
  seen_app : (int, 'a in_view Message.t list) Hashtbl.t;
      (* every App envelope received per vid, for flush relaying *)
  banned : (int * int, unit) Hashtbl.t;
      (* (vid, crashed sender): direct copies refused after our flush *)
  mutable queued_sends : (string option * 'a) list; (* reversed *)
  delivered_per_view : (int, Label.t list) Hashtbl.t; (* reversed app labels *)
  member_vids : (int, bool) Hashtbl.t; (* vid -> was I a member of it *)
  mutable last_sent : Label.t option; (* sender FIFO chaining *)
}

type ('a, 's) t = {
  net : ('a, 's) packet Net.t;
  engine : Engine.t;
  stations : 'a station array;
  on_deliver : node:int -> vid:int -> time:float -> 'a Message.t -> unit;
  on_view : node:int -> view -> unit;
  get_state : (node:int -> 's) option;
  set_state : node:int -> 's -> unit;
  (* coordinator-side queue of pending membership changes *)
  mutable pending_changes : [ `Join of int | `Leave of int | `Crash of int ] list;
  mutable change_in_flight : bool;
  dead : bool array;
}

let sorted_members ms = List.sort_uniq Int.compare ms

let coordinator view = List.fold_left min max_int view.members

let view_of t node = t.stations.(node).current

let views_seen t node = List.rev t.stations.(node).installed

let is_member t node =
  (not t.dead.(node))
  &&
  match t.stations.(node).current with
  | Some v -> List.mem node v.members
  | None -> false

let delivered_in_view t node ~vid =
  List.rev
    (Option.value ~default:[]
       (Hashtbl.find_opt t.stations.(node).delivered_per_view vid))

(* --- forward declarations through a ref, as delivery triggers sends --- *)

let rec handle_delivery t st ~vid (msg : 'a in_view Message.t) =
  match Message.payload msg with
  | App payload ->
    let prev =
      Option.value ~default:[] (Hashtbl.find_opt st.delivered_per_view vid)
    in
    Hashtbl.replace st.delivered_per_view vid (Message.label msg :: prev);
    t.on_deliver ~node:st.id ~vid ~time:(Engine.now t.engine)
      (Message.make ~label:(Message.label msg) ~sender:(Message.sender msg)
         ~dep:(Message.dep msg) payload)
  | Announce { next; crashed } ->
    on_announce t st ~announce_label:(Message.label msg) ~crashed next
  | Flush { vid = fvid; from; relayed } -> on_flush t st ~fvid ~from ~relayed

and engine_for t st vid =
  match Hashtbl.find_opt st.engines vid with
  | Some e -> e
  | None ->
    let e =
      Osend.create ~id:st.id
        ~deliver:(fun msg -> handle_delivery t st ~vid msg)
        ()
    in
    Hashtbl.replace st.engines vid e;
    e

and raw_broadcast t st ~vid ?name ~dep payload =
  let seq = st.my_seq in
  st.my_seq <- seq + 1;
  let label = Label.make ?name ~origin:st.id ~seq () in
  let msg = Message.make ~label ~sender:st.id ~dep payload in
  Net.broadcast t.net ~src:st.id ~self:false (Viewed { vid; msg });
  (* local copy processed immediately *)
  Osend.receive (engine_for t st vid) msg;
  label

and app_broadcast t st ?name ?after payload =
  match st.current with
  | None -> invalid_arg "Vgroup.bcast: node has no view"
  | Some v ->
    let dep =
      match after with
      | Some ancestors -> Dep.after_all ancestors
      | None -> (
        match st.last_sent with None -> Dep.null | Some l -> Dep.after l)
    in
    let label = raw_broadcast t st ~vid:v.vid ?name ~dep (App payload) in
    st.last_sent <- Some label;
    st.sent_in_view <- label :: st.sent_in_view;
    label

and on_announce t st ~announce_label ~crashed next_view =
  (* Delivered within the old view's engine.  Start flushing.  Note:
     flushes_seen is NOT reset — another member's flush may have been
     delivered before the announce reached us. *)
  st.changing <- Some next_view;
  st.changing_crashed <- crashed;
  (match st.current with
  | Some v when List.mem st.id v.members && not st.flush_sent ->
    st.flush_sent <- true;
    (* stabilise crashed senders' traffic: relay every message of theirs
       we received in this view, and refuse further direct copies — a
       crashed message survives iff some flusher saw it, and then it
       reaches everyone through the flushes *)
    let relayed =
      if crashed = [] then []
      else
        List.filter
          (fun m -> List.mem (Message.sender m) crashed)
          (Option.value ~default:[] (Hashtbl.find_opt st.seen_app v.vid))
    in
    List.iter (fun c -> Hashtbl.replace st.banned (v.vid, c) ()) crashed;
    (* the flush causally follows the announce and everything I sent in
       this view, so by causal delivery every view-k message of mine
       precedes my flush at every member *)
    let dep = Dep.after_all (announce_label :: st.sent_in_view) in
    ignore
      (raw_broadcast t st ~vid:v.vid
         ~name:(Printf.sprintf "flush.%d.%d" v.vid st.id)
         ~dep
         (Flush { vid = v.vid; from = st.id; relayed }))
  | Some _ | None -> ());
  maybe_install t st

and on_flush t st ~fvid ~from ~relayed =
  (* relayed messages first: they are part of the closing view's set *)
  (match st.current with
  | Some v when v.vid = fvid ->
    List.iter (Osend.receive (engine_for t st fvid)) relayed;
    st.flushes_seen <- from :: st.flushes_seen
  | Some _ | None -> ());
  maybe_install t st

and maybe_install t st =
  match (st.changing, st.current) with
  | Some next, Some old ->
    let have = List.sort_uniq Int.compare st.flushes_seen in
    let expected =
      List.filter (fun m -> not (List.mem m st.changing_crashed)) old.members
    in
    if List.for_all (fun m -> List.mem m have) expected then
      install t st next
  | Some _, None | None, _ -> ()

and install t st next_view =
  st.current <- Some next_view;
  st.installed <- next_view :: st.installed;
  st.changing <- None;
  st.changing_crashed <- [];
  st.flushes_seen <- [];
  st.flush_sent <- false;
  st.sent_in_view <- [];
  st.last_sent <- None;
  let i_am_member = List.mem st.id next_view.members in
  Hashtbl.replace st.member_vids next_view.vid i_am_member;
  (* Coordinator: snapshot application state for joiners FIRST — at this
     instant the state reflects exactly the closed view (all its messages
     applied, none of the new view's), so the transfer plus the joiner's
     own new-view deliveries cover every operation exactly once. *)
  if st.id = coordinator next_view then send_state_transfers t st next_view;
  t.on_view ~node:st.id next_view;
  (* release messages that arrived for this view before we installed it —
     only if we belong to it (a leaver must go silent) *)
  (match Hashtbl.find_opt st.buffered next_view.vid with
  | Some msgs when i_am_member ->
    Hashtbl.remove st.buffered next_view.vid;
    List.iter (Osend.receive (engine_for t st next_view.vid)) (List.rev msgs)
  | Some _ | None -> ());
  (* coordinator responsibilities *)
  if st.id = coordinator next_view then begin
    t.change_in_flight <- false;
    schedule_next_change t
  end;
  (* drain queued sends into the new view *)
  let queued = List.rev st.queued_sends in
  st.queued_sends <- [];
  if List.mem st.id next_view.members then
    List.iter
      (fun (name, payload) -> ignore (app_broadcast t st ?name payload))
      queued

and send_state_transfers t st view =
  (* newly added members need the application state and the view *)
  let prev_members =
    match st.installed with
    | _ :: prev :: _ -> prev.members
    | [ _ ] | [] -> []
  in
  let joiners =
    List.filter (fun m -> not (List.mem m prev_members)) view.members
  in
  List.iter
    (fun j ->
      if j <> st.id then begin
        let state =
          match t.get_state with
          | Some f -> Some (f ~node:st.id)
          | None -> None
        in
        Net.send t.net ~src:st.id ~dst:j (State_xfer { view; state })
      end)
    joiners

and schedule_next_change t =
  if not t.change_in_flight then begin
    match t.pending_changes with
    | [] -> ()
    | change :: rest ->
      t.pending_changes <- rest;
      start_change t change
  end

and live_coordinator t =
  (* the smallest live member of the current membership announces; a dead
     node never qualifies *)
  Array.to_list t.stations
  |> List.filter_map (fun st ->
         match st.current with
         | Some v when
             List.mem st.id v.members
             && (not t.dead.(st.id))
             && st.id
                = List.fold_left
                    (fun acc m -> if t.dead.(m) then acc else min acc m)
                    max_int v.members ->
           Some (st, v)
         | Some _ | None -> None)
  |> function
  | [] -> None
  | hd :: _ -> Some hd

and start_change t change =
  match live_coordinator t with
  | None -> () (* no live coordinator; request stays dropped *)
  | Some (st, v) ->
    let crashed =
      match change with `Crash n -> [ n ] | `Join _ | `Leave _ -> []
    in
    let members =
      match change with
      | `Join n -> sorted_members (n :: v.members)
      | `Leave n | `Crash n -> List.filter (fun m -> m <> n) v.members
    in
    if members = [] then ()
    else if sorted_members members = sorted_members v.members then
      (* no-op change; move on *)
      schedule_next_change t
    else begin
      t.change_in_flight <- true;
      let next = { vid = v.vid + 1; members } in
      ignore
        (raw_broadcast t st ~vid:v.vid
           ~name:(Printf.sprintf "view.%d" next.vid)
           ~dep:(Dep.after_all st.sent_in_view)
           (Announce { next; crashed }))
    end

let handle_packet t node packet =
  let st = t.stations.(node) in
  if t.dead.(node) then ()
  else
    match packet with
    | Viewed { vid; msg } ->
      (* record App envelopes for possible flush relaying *)
      (match Message.payload msg with
      | App _ ->
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt st.seen_app vid)
        in
        Hashtbl.replace st.seen_app vid (msg :: prev)
      | Announce _ | Flush _ -> ());
      let banned =
        Hashtbl.mem st.banned (vid, Message.sender msg)
        &&
        match Message.payload msg with App _ -> true | _ -> false
      in
      if banned then ()
      else (
        match st.current with
        | Some v when vid <= v.vid ->
          (* only process traffic of views this node belonged to; a leaver
             still drains stragglers of its old views but ignores new ones *)
          if Option.value ~default:false (Hashtbl.find_opt st.member_vids vid)
          then Osend.receive (engine_for t st vid) msg
        | Some _ | None ->
          (* message from a view this node has not installed yet: buffer *)
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt st.buffered vid)
          in
          Hashtbl.replace st.buffered vid (msg :: prev))
    | Join_req n ->
      t.pending_changes <- t.pending_changes @ [ `Join n ];
      schedule_next_change t
    | Leave_req n ->
      t.pending_changes <- t.pending_changes @ [ `Leave n ];
      schedule_next_change t
    | Fail_req n ->
      t.pending_changes <- t.pending_changes @ [ `Crash n ];
      schedule_next_change t
  | State_xfer { view; state } ->
    let newer =
      match st.current with Some v -> v.vid < view.vid | None -> true
    in
    if newer then begin
      (match state with Some s -> t.set_state ~node:node s | None -> ());
      (* pre-join traffic is covered by the state snapshot: discard it *)
      Hashtbl.iter
        (fun vid _ -> if vid < view.vid then Hashtbl.replace st.member_vids vid false)
        st.buffered;
      List.iter (Hashtbl.remove st.buffered)
        (Hashtbl.fold
           (fun vid _ acc -> if vid < view.vid then vid :: acc else acc)
           st.buffered []);
      install t st view
    end

let create net ~initial ?(on_deliver = fun ~node:_ ~vid:_ ~time:_ _ -> ())
    ?(on_view = fun ~node:_ _ -> ()) ?get_state
    ?(set_state = fun ~node:_ _ -> ()) () =
  let n = Net.nodes net in
  let engine = Net.engine net in
  let initial = sorted_members initial in
  List.iter
    (fun m ->
      if m < 0 || m >= n then invalid_arg "Vgroup.create: member out of range")
    initial;
  if initial = [] then invalid_arg "Vgroup.create: empty initial membership";
  let stations =
    Array.init n (fun id ->
        {
          id;
          engines = Hashtbl.create 4;
          buffered = Hashtbl.create 4;
          current = None;
          installed = [];
          sent_in_view = [];
          my_seq = 0;
          changing = None;
          changing_crashed = [];
          flushes_seen = [];
          flush_sent = false;
          seen_app = Hashtbl.create 4;
          banned = Hashtbl.create 4;
          queued_sends = [];
          delivered_per_view = Hashtbl.create 4;
          member_vids = Hashtbl.create 4;
          last_sent = None;
        })
  in
  let t =
    {
      net;
      engine;
      stations;
      on_deliver;
      on_view;
      get_state;
      set_state;
      pending_changes = [];
      change_in_flight = false;
      dead = Array.make n false;
    }
  in
  for node = 0 to n - 1 do
    Net.set_handler net node (fun ~src:_ packet -> handle_packet t node packet)
  done;
  let view0 = { vid = 0; members = initial } in
  List.iter
    (fun m ->
      let st = stations.(m) in
      st.current <- Some view0;
      st.installed <- [ view0 ];
      Hashtbl.replace st.member_vids 0 true;
      on_view ~node:m view0)
    initial;
  t

let bcast t ~src ?name payload =
  let st = t.stations.(src) in
  if t.dead.(src) then invalid_arg "Vgroup.bcast: node has crashed";
  match st.current with
  | None -> invalid_arg "Vgroup.bcast: node is not a member"
  | Some v ->
    if not (List.mem src v.members) then
      invalid_arg "Vgroup.bcast: node is not a member"
    else if st.changing <> None then
      (* view change in progress: queue until the new view installs *)
      st.queued_sends <- (name, payload) :: st.queued_sends
    else ignore (app_broadcast t st ?name payload)

let send t ~src ?name ?after payload =
  let st = t.stations.(src) in
  if t.dead.(src) then invalid_arg "Vgroup.send: node has crashed";
  match st.current with
  | None -> invalid_arg "Vgroup.send: node is not a member"
  | Some v ->
    if not (List.mem src v.members) then
      invalid_arg "Vgroup.send: node is not a member"
    else if st.changing <> None then
      (* a view change is in flight: the stated ancestors would die with
         the old view — the caller must resubmit in the new view *)
      None
    else Some (app_broadcast t st ?name ?after payload)

let is_changing t node = t.stations.(node).changing <> None

let request t req =
  (* requests go to whichever station is currently a live coordinator;
     in a real deployment this is a unicast to the known coordinator —
     here the lookup is simulation convenience. *)
  match live_coordinator t with
  | Some (st, _) -> handle_packet t st.id req
  | None -> invalid_arg "Vgroup: no live coordinator"

let join t ~node = request t (Join_req node)

let leave t ~node = request t (Leave_req node)

let crash t ~node =
  if node < 0 || node >= Array.length t.stations then
    invalid_arg "Vgroup.crash: node out of range";
  t.dead.(node) <- true

let report_failure t ~node =
  if not t.dead.(node) then
    invalid_arg "Vgroup.report_failure: node is not crashed";
  request t (Fail_req node)

let is_crashed t node = t.dead.(node)

(* --- verifiers --- *)

let closed_views t =
  (* a view id is closed at a node if the node has installed a later one *)
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun st ->
      let installed = List.rev st.installed in
      let rec scan = function
        | a :: (b :: _ as rest) ->
          ignore b;
          let prev = Option.value ~default:[] (Hashtbl.find_opt tbl a.vid) in
          Hashtbl.replace tbl a.vid (st.id :: prev);
          scan rest
        | [ _ ] | [] -> ()
      in
      scan installed)
    t.stations;
  tbl

let check_virtual_synchrony t =
  let closed = closed_views t in
  Hashtbl.fold
    (fun vid nodes acc ->
      (* virtual synchrony constrains only the *members* of the view; a
         node that had installed the view as a non-member (a leaver, or a
         joiner's pre-history) delivers nothing in it by design *)
      let members =
        List.filter
          (fun node ->
            Option.value ~default:false
              (Hashtbl.find_opt t.stations.(node).member_vids vid))
          nodes
      in
      let sets =
        List.map
          (fun node -> Label.Set.of_list (delivered_in_view t node ~vid))
          members
      in
      let same =
        match sets with
        | [] -> true
        | first :: rest -> List.for_all (Label.Set.equal first) rest
      in
      acc && same)
    closed true

let check_views_agree t =
  (* collect each node's (vid -> members) and compare *)
  let ok = ref true in
  let reference = Hashtbl.create 8 in
  Array.iter
    (fun st ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt reference v.vid with
          | None -> Hashtbl.replace reference v.vid v.members
          | Some ms -> if ms <> v.members then ok := false)
        st.installed)
    t.stations;
  !ok
