(** Dynamic group membership with virtually synchronous view changes.

    The paper's model runs inside a process group (§3: "organizing various
    entities as members of a group") and leans on ISIS-style virtual
    synchrony [2] for the guarantee that members share the same message
    view.  This module supplies that substrate: processes join and leave,
    membership changes are delivered as totally ordered {e views}, and
    message delivery is {e virtually synchronous} — all members that
    survive from view [k] to view [k+1] deliver the identical set of
    view-[k] messages before installing view [k+1].

    Protocol (flush-based, reliable transport assumed):
    {ol
    {- the view coordinator (smallest member id) serialises membership
       requests and broadcasts an [Announce] for view [k+1] inside
       view [k];}
    {- on delivering the announce, each view-[k] member stops sending
       (sends are queued), and broadcasts a [Flush] that [Occurs_After]
       the announce and everything the member itself sent in view [k] —
       so by causal delivery, every view-[k] message precedes the last
       flush at every member;}
    {- a member installs view [k+1] once it has delivered every member's
       flush; queued sends then drain into the new view;}
    {- joiners receive the announce and a state snapshot from the
       coordinator (application-provided [get_state]/[set_state]), then
       start participating in view [k+1] directly.}}

    Each view runs its own causal delivery engine; application causal
    dependencies are per-view (a view boundary is already a global
    barrier, so cross-view dependencies are implied). *)

type view = { vid : int; members : int list }

type ('a, 's) packet
(** The wire packet type; create the network as
    [Net.create engine ~nodes () : (_, _) Vgroup.packet Net.t]. *)

type ('a, 's) t

val create :
  ('a, 's) packet Causalb_net.Net.t ->
  initial:int list ->
  ?on_deliver:(node:int -> vid:int -> time:float -> 'a Message.t -> unit) ->
  ?on_view:(node:int -> view -> unit) ->
  ?get_state:(node:int -> 's) ->
  ?set_state:(node:int -> 's -> unit) ->
  unit ->
  ('a, 's) t
(** [initial] members install view 0 immediately.  [get_state node] is
    called at the coordinator to snapshot application state for a joiner;
    [set_state node s] installs it at the joiner before its first view. *)

val bcast : ('a, 's) t -> src:int -> ?name:string -> 'a -> unit
(** Causal broadcast within the sender's current view (FIFO-chained per
    sender: each message [Occurs_After] the sender's previous one).
    Queued while a view change is in progress; @raise Invalid_argument if
    [src] is not a member and not joining. *)

val send :
  ('a, 's) t ->
  src:int ->
  ?name:string ->
  ?after:Causalb_graph.Label.t list ->
  'a ->
  Causalb_graph.Label.t option
(** Like {!bcast} but with an explicit [Occurs_After] set ([after] must
    name labels of the sender's current view).  Returns the assigned
    label, or [None] if the send was queued because a view change is in
    flight — queued sends are re-issued in the next view with plain
    sender-FIFO chaining, since their stated ancestors died with the old
    view. *)

val is_changing : ('a, 's) t -> int -> bool
(** Whether a view change is in progress at this node (sends would be
    queued). *)

val join : ('a, 's) t -> node:int -> unit
(** Ask the current coordinator to add [node] in the next view. *)

val leave : ('a, 's) t -> node:int -> unit
(** Ask the coordinator to remove [node]. *)

val crash : ('a, 's) t -> node:int -> unit
(** Crash-stop [node]: it instantly stops sending, receiving and
    processing.  Unlike {!leave}, no flush will come from it; call
    {!report_failure} (the failure-detector hook) to have the membership
    exclude it. *)

val report_failure : ('a, 's) t -> node:int -> unit
(** Failure-detector verdict delivered to the coordinator: announce a new
    view without [node].  The flush round then {e stabilises} the crashed
    member's traffic — each survivor's flush relays every message it
    received from the crashed sender in the closing view, and survivors
    stop accepting the crashed sender's direct copies once they have
    flushed, so a crashed message is in the view iff it reached some
    survivor before that survivor flushed, in which case it reaches all.
    The coordinator itself may be the crashed node; the next-smallest
    live member takes over. *)

val is_crashed : ('a, 's) t -> int -> bool

val view_of : ('a, 's) t -> int -> view option
(** The node's currently installed view, if any. *)

val views_seen : ('a, 's) t -> int -> view list
(** All views the node has installed, oldest first. *)

val delivered_in_view : ('a, 's) t -> int -> vid:int -> Causalb_graph.Label.t list

val is_member : ('a, 's) t -> int -> bool

val check_virtual_synchrony : ('a, 's) t -> bool
(** For every closed view and every pair of members that installed it,
    the delivered message sets are identical; and within each view every
    delivery order is causally safe. *)

val check_views_agree : ('a, 's) t -> bool
(** All nodes agree on the membership of every view id they installed. *)
