lib/data/consistency.ml: Causalb_graph List Replica State_machine
