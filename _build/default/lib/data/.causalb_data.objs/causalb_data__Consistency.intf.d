lib/data/consistency.mli: Replica State_machine
