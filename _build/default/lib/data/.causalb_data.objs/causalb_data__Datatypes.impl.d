lib/data/datatypes.ml: Array Buffer Format Int List Map Op Printf Set State_machine String
