lib/data/datatypes.mli: Format Map Set State_machine String
