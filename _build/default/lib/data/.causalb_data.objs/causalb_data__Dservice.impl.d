lib/data/dservice.ml: Array Causalb_core Causalb_graph Causalb_net Causalb_sim Fun List Op Option State_machine
