lib/data/dservice.mli: Causalb_sim State_machine
