lib/data/frontend.ml: Causalb_core Causalb_graph List Op
