lib/data/frontend.mli: Causalb_core Causalb_graph Op
