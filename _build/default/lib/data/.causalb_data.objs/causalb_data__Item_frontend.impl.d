lib/data/item_frontend.ml: Causalb_core Causalb_graph Hashtbl List Op
