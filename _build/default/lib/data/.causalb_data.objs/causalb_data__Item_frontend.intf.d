lib/data/item_frontend.mli: Causalb_core Causalb_graph Op
