lib/data/op.ml: Causalb_core Format
