lib/data/op.mli: Causalb_core Format
