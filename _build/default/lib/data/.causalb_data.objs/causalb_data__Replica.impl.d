lib/data/replica.ml: Causalb_core Causalb_graph List Op State_machine
