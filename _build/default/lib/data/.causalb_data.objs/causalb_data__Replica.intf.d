lib/data/replica.mli: Causalb_core Causalb_graph State_machine
