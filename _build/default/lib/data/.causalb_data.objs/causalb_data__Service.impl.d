lib/data/service.ml: Array Causalb_core Causalb_graph Causalb_net Causalb_sim Causalb_util Consistency Frontend Fun List Option Replica State_machine
