lib/data/service.mli: Causalb_core Causalb_graph Causalb_net Causalb_sim Causalb_util Frontend Replica State_machine
