lib/data/state_machine.ml: Format List Op
