lib/data/state_machine.mli: Format Op
