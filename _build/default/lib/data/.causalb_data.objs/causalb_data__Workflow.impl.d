lib/data/workflow.ml: Causalb_core Causalb_graph List Map Option Printf String
