lib/data/workflow.mli: Causalb_core Causalb_graph
