(** A dynamically replicated service: the §6.1 stable-point access
    protocol running over virtually synchronous group membership.

    Replicas can join (receiving the current state by transfer) and leave
    while clients keep submitting operations.  A view boundary is itself
    a stable point: the flush protocol guarantees every surviving member
    has applied the same operation set, and since open windows contain
    only commutative operations, the per-member states coincide at the
    install — so the §6.1 window bookkeeping can simply restart in the
    new view.

    Submissions race view changes safely: operations submitted while a
    change is in flight are parked and re-enter in the next view. *)

type ('op, 'state) t

val create :
  Causalb_sim.Engine.t ->
  nodes:int ->
  initial:int list ->
  machine:('op, 'state) State_machine.t ->
  ?latency:Causalb_sim.Latency.t ->
  unit ->
  ('op, 'state) t
(** [nodes] is the address space; [initial] the starting replica set. *)

val submit : ('op, 'state) t -> src:int -> 'op -> unit
(** Submit through the shared front-end manager (src must be a current
    member; operations submitted mid-view-change are parked and re-issued
    in the next view). @raise Invalid_argument if [src] is not a member. *)

val join : ('op, 'state) t -> node:int -> unit

val leave : ('op, 'state) t -> node:int -> unit

val is_member : ('op, 'state) t -> int -> bool

val state : ('op, 'state) t -> int -> 'state
(** The node's current local state. *)

val applied_count : ('op, 'state) t -> int -> int

val run : ?until:float -> ('op, 'state) t -> unit

val check : ('op, 'state) t -> (string * bool) list
(** Named verdicts: view agreement, virtual synchrony, stable-snapshot
    agreement per view, and survivor-state agreement. *)
