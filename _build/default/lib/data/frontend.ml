module Group = Causalb_core.Group
module Dep = Causalb_graph.Dep
module Label = Causalb_graph.Label

type 'op t = {
  group : 'op Group.t;
  kind : 'op -> Op.kind;
  mutable last_sync : Label.t option;
  mutable window : Label.t list; (* {Cid}, reversed *)
  mutable submitted : int;
  mutable cycles : int;
}

let create group ~kind () =
  { group; kind; last_sync = None; window = []; submitted = 0; cycles = 0 }

let after_last_sync t =
  match t.last_sync with None -> Dep.null | Some l -> Dep.after l

let submit t ~src ?name op =
  t.submitted <- t.submitted + 1;
  match t.kind op with
  | Op.Commutative ->
    let label = Group.osend t.group ~src ?name ~dep:(after_last_sync t) op in
    t.window <- label :: t.window;
    label
  | Op.Non_commutative ->
    let dep =
      if t.window = [] then after_last_sync t
      else Dep.after_all (List.rev t.window)
    in
    let label = Group.osend t.group ~src ?name ~dep op in
    t.last_sync <- Some label;
    t.window <- [];
    t.cycles <- t.cycles + 1;
    label

let submitted t = t.submitted

let cycles_opened t = t.cycles

let window_size t = List.length t.window

let last_sync t = t.last_sync
