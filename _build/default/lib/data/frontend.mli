(** Client front-end manager — the §6.1 code skeleton.

    The manager keeps track of the commutative / non-commutative
    operations generated so far and emits each request with the causal
    order the protocol prescribes:

    {ul
    {- a {e commutative} request is ordered after the last non-commutative
       message ([Occurs_After (Ncid_{r-1})]) and its label joins the
       current window set [{Cid}_r];}
    {- a {e non-commutative} request is ordered after the whole window
       ([Occurs_After (∧{Cid}_r)]), or directly after [Ncid_{r-1}] when
       the window is empty; it then becomes the new [Ncid_r] and the
       window resets.}}

    The resulting graph is exactly
    [Ncid_{r−1} → ‖{Cid}_r → Ncid_{r+1}] — reproducible at every member,
    so stable points need no agreement protocol.

    One manager produces one globally consistent cycle structure; it can
    be shared by any number of clients (pass their node id to [submit]).
    Creating several independent managers models the §5.2 situation of
    spontaneous, untracked sync messages — which is what the total-order
    layer is for. *)

type 'op t

val create :
  'op Causalb_core.Group.t -> kind:('op -> Op.kind) -> unit -> 'op t

val submit :
  'op t -> src:int -> ?name:string -> 'op -> Causalb_graph.Label.t
(** Broadcast one request from node [src] with the §6.1 ordering. *)

val submitted : 'op t -> int

val cycles_opened : 'op t -> int
(** Number of non-commutative requests emitted so far. *)

val window_size : 'op t -> int
(** Size of the currently open [{Cid}] set. *)

val last_sync : 'op t -> Causalb_graph.Label.t option
(** The current [Ncid_{r−1}] label. *)
