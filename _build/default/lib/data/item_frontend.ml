module Group = Causalb_core.Group
module Dep = Causalb_graph.Dep
module Label = Causalb_graph.Label

type scope = Item of int | Global

type item_state = {
  mutable last_sync : Label.t option;
  mutable window : Label.t list; (* reversed *)
}

type 'op t = {
  group : 'op Group.t;
  kind : 'op -> Op.kind;
  scope : 'op -> scope;
  items : (int, item_state) Hashtbl.t;
  mutable last_global : Label.t option;
  mutable submitted : int;
}

let create group ~kind ~scope () =
  {
    group;
    kind;
    scope;
    items = Hashtbl.create 8;
    last_global = None;
    submitted = 0;
  }

let item_state t i =
  match Hashtbl.find_opt t.items i with
  | Some s -> s
  | None ->
    let s = { last_sync = None; window = [] } in
    Hashtbl.replace t.items i s;
    s

(* The anchor of an item with no history of its own is the last global
   sync: everything after a whole-state operation must follow it. *)
let item_anchor t s =
  match s.last_sync with
  | Some l -> [ l ]
  | None -> ( match t.last_global with Some g -> [ g ] | None -> [])

let outstanding_of_item t s =
  match s.window with [] -> item_anchor t s | w -> List.rev w

let submit t ~src ?name op =
  t.submitted <- t.submitted + 1;
  match (t.scope op, t.kind op) with
  | Item i, Op.Commutative ->
    let s = item_state t i in
    let dep = Dep.after_all (item_anchor t s) in
    let label = Group.osend t.group ~src ?name ~dep op in
    s.window <- label :: s.window;
    label
  | Item i, Op.Non_commutative ->
    let s = item_state t i in
    let dep = Dep.after_all (outstanding_of_item t s) in
    let label = Group.osend t.group ~src ?name ~dep op in
    s.last_sync <- Some label;
    s.window <- [];
    label
  | Global, _ ->
    (* follows every item's outstanding traffic, then resets the world *)
    let ancestors =
      Hashtbl.fold
        (fun _ s acc -> outstanding_of_item t s @ acc)
        t.items
        (match t.last_global with Some g -> [ g ] | None -> [])
    in
    let dep = Dep.after_all ancestors in
    let label = Group.osend t.group ~src ?name ~dep op in
    Hashtbl.reset t.items;
    t.last_global <- Some label;
    label

let submitted t = t.submitted

let open_window t ~item =
  match Hashtbl.find_opt t.items item with
  | Some s -> List.length s.window
  | None -> 0

let items_tracked t = Hashtbl.length t.items
