(** Per-item window management — the §5.1 decomposition.

    The paper: "This condition relates to decomposition of the data X̄
    into distinct items and scoping out the effects of messages on these
    items"; operations on distinct items never need mutual ordering, so a
    non-commutative operation on item [x] should close {e only} item
    [x]'s window, not the whole data's.

    This front-end keeps one [{Cid}]/[Ncid] pair per item:

    {ul
    {- a commutative op on item [i] occurs after item [i]'s last sync;}
    {- a non-commutative op on item [i] occurs after item [i]'s open
       window (closing it) — item [j]'s traffic is untouched;}
    {- a {e global} operation (e.g. a whole-state read) occurs after
       every item's outstanding labels and resets them all.}}

    Compared to the single-window {!Frontend}, ordering constraints drop
    from "sync waits for everything" to "sync waits for its own item" —
    the concurrency gain measured by experiment T7.

    Consistency granularity follows the decomposition: at an item-[i]
    sync, replicas agree on item [i]'s value (not on the whole state);
    at a global sync they agree on everything.  The item-level agreement
    check lives in the tests, via per-sync-label projections. *)

type scope =
  | Item of int
  | Global

type 'op t

val create :
  'op Causalb_core.Group.t ->
  kind:('op -> Op.kind) ->
  scope:('op -> scope) ->
  unit ->
  'op t

val submit :
  'op t -> src:int -> ?name:string -> 'op -> Causalb_graph.Label.t

val submitted : 'op t -> int

val open_window : 'op t -> item:int -> int
(** Size of item [i]'s currently open window. *)

val items_tracked : 'op t -> int
