type kind = Commutative | Non_commutative

let to_string = function
  | Commutative -> "commutative"
  | Non_commutative -> "non-commutative"

let pp ppf k = Format.pp_print_string ppf (to_string k)

let is_commutative = function Commutative -> true | Non_commutative -> false

let class_of = function
  | Commutative -> Causalb_core.Stable_points.Concurrent
  | Non_commutative -> Causalb_core.Stable_points.Sync
