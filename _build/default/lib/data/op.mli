(** Operation classification (paper §6).

    The generic access protocol rests on one bit of application knowledge
    per operation: whether it commutes with the other operations of its
    window.  Commutative operations ([inc]/[dec], concurrent queries) may
    be processed in any order at different replicas; non-commutative ones
    ([read], [update]) are synchronization points and close a cycle.

    Note the paper's convention, which we follow: a [read] is classified
    non-commutative even though it does not change the state — its
    {e return value} depends on its position in the sequence, so it must
    sit at a stable point to return the same value at every member. *)

type kind =
  | Commutative
  | Non_commutative

val to_string : kind -> string

val pp : Format.formatter -> kind -> unit

val is_commutative : kind -> bool

val class_of : kind -> Causalb_core.Stable_points.class_
(** [Commutative ↦ Concurrent], [Non_commutative ↦ Sync]. *)
