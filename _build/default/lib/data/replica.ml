module Message = Causalb_core.Message
module Label = Causalb_graph.Label

type ('op, 'state) cycle = {
  index : int;
  start_state : 'state;
  window : (Label.t * 'op) list;
  closed_by : Label.t * 'op;
  end_state : 'state;
}

type ('op, 'state) t = {
  id : int;
  machine : ('op, 'state) State_machine.t;
  on_stable : ('op, 'state) cycle -> unit;
  mutable state : 'state;
  mutable stable : 'state;
  mutable window_start : 'state;
  mutable window_ops_rev : (Label.t * 'op) list;
  mutable cycles_rev : ('op, 'state) cycle list;
  mutable applied_rev : Label.t list;
  mutable applied_n : int;
  mutable reads_rev : ('state -> unit) list;
}

let create ~id ~machine ?(on_stable = fun _ -> ()) () =
  let t =
    {
      id;
      machine;
      on_stable;
      state = machine.State_machine.init;
      stable = machine.State_machine.init;
      window_start = machine.State_machine.init;
      window_ops_rev = [];
      cycles_rev = [];
      applied_rev = [];
      applied_n = 0;
      reads_rev = [];
    }
  in
  t

let id t = t.id

let state t = t.state

let stable_state t = t.stable

let close_cycle t ~closed_by_label ~closed_by_op =
  let cycle =
    {
      index = List.length t.cycles_rev;
      start_state = t.window_start;
      window = List.rev t.window_ops_rev;
      closed_by = (closed_by_label, closed_by_op);
      end_state = t.state;
    }
  in
  t.cycles_rev <- cycle :: t.cycles_rev;
  t.stable <- t.state;
  t.window_start <- t.state;
  t.window_ops_rev <- [];
  t.on_stable cycle;
  let reads = List.rev t.reads_rev in
  t.reads_rev <- [];
  List.iter (fun k -> k t.state) reads

let on_deliver t msg =
  let op = Message.payload msg in
  let label = Message.label msg in
  t.state <- t.machine.State_machine.apply t.state op;
  t.applied_rev <- label :: t.applied_rev;
  t.applied_n <- t.applied_n + 1;
  match t.machine.State_machine.kind op with
  | Op.Commutative -> t.window_ops_rev <- (label, op) :: t.window_ops_rev
  | Op.Non_commutative -> close_cycle t ~closed_by_label:label ~closed_by_op:op

let read_deferred t k = t.reads_rev <- k :: t.reads_rev

let cycles t = List.rev t.cycles_rev

let cycles_closed t = List.length t.cycles_rev

let applied t = List.rev t.applied_rev

let applied_count t = t.applied_n

let snapshots t = List.map (fun c -> c.end_state) (cycles t)

let pending_reads t = List.length t.reads_rev
