(** A data replica: a state machine driven by causally delivered
    operations, with stable-point detection and deferred reads
    (paper §4–6.1).

    Feed {!on_deliver} with each operation message released by the causal
    layer, in delivery order.  The replica applies the transition
    function, tracks the §6.1 processing cycles, snapshots its state at
    every stable point (the states that must agree across replicas) and
    records per-cycle histories for the consistency checker.

    Reads come in the two flavours the paper discusses:
    {ul
    {- a {e broadcast read} is an ordinary non-commutative operation — it
       closes the window and every replica answers it from the same
       agreed state;}
    {- a {e deferred read} ({!read_deferred}) is local: the value is taken
       at the next stable point, so the replica returns the same value as
       every other member without broadcasting anything (§5.1).}} *)

type ('op, 'state) t

(** Everything recorded about one closed processing cycle. *)
type ('op, 'state) cycle = {
  index : int;
  start_state : 'state;                      (** state at the opening stable point *)
  window : (Causalb_graph.Label.t * 'op) list;  (** interior ops, applied order *)
  closed_by : Causalb_graph.Label.t * 'op;   (** the sync operation *)
  end_state : 'state;                        (** the new stable state *)
}

val create :
  id:int ->
  machine:('op, 'state) State_machine.t ->
  ?on_stable:(('op, 'state) cycle -> unit) ->
  unit ->
  ('op, 'state) t
(** [on_stable] fires as each cycle closes, before deferred reads run. *)

val id : ('op, 'state) t -> int

val on_deliver : ('op, 'state) t -> 'op Causalb_core.Message.t -> unit

val state : ('op, 'state) t -> 'state
(** Current (possibly mid-window, unagreed) state. *)

val stable_state : ('op, 'state) t -> 'state
(** State at the last stable point (the last agreed value); [init] if no
    cycle has closed yet. *)

val read_deferred : ('op, 'state) t -> ('state -> unit) -> unit
(** Invoke the continuation with the state at the next stable point. *)

val cycles : ('op, 'state) t -> ('op, 'state) cycle list
(** Closed cycles, oldest first. *)

val cycles_closed : ('op, 'state) t -> int

val applied : ('op, 'state) t -> Causalb_graph.Label.t list
(** Labels in application order. *)

val applied_count : ('op, 'state) t -> int

val snapshots : ('op, 'state) t -> 'state list
(** [end_state] of each closed cycle, oldest first. *)

val pending_reads : ('op, 'state) t -> int
