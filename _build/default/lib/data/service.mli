(** A complete replicated service: [n] replicas of one state machine over
    a simulated network, driven through a §6.1 front-end manager, with
    built-in measurement.

    This is the assembly used by the examples and by experiments T1–T4:
    create a service, submit operations (the front-end adds the causal
    ordering), run the simulation, then read the metrics and consistency
    verdicts.

    Latency metrics are collected per (operation, replica) pair:
    {ul
    {- {e delivery latency} — submit time to causal delivery/application
       at a replica;}
    {- {e stability latency} — submit time to the close of the cycle that
       contains the operation, i.e. when its effect becomes part of an
       agreed value.}} *)

type ('op, 'state) t

val create :
  Causalb_sim.Engine.t ->
  replicas:int ->
  machine:('op, 'state) State_machine.t ->
  ?latency:Causalb_sim.Latency.t ->
  ?fifo:bool ->
  ?fault:Causalb_net.Fault.t ->
  ?trace:Causalb_sim.Trace.t ->
  unit ->
  ('op, 'state) t

val engine : ('op, 'state) t -> Causalb_sim.Engine.t

val group : ('op, 'state) t -> 'op Causalb_core.Group.t

val frontend : ('op, 'state) t -> 'op Frontend.t

val replica : ('op, 'state) t -> int -> ('op, 'state) Replica.t

val replicas : ('op, 'state) t -> ('op, 'state) Replica.t list

val size : ('op, 'state) t -> int

val submit :
  ('op, 'state) t -> src:int -> ?name:string -> ?primary:int -> 'op ->
  Causalb_graph.Label.t
(** Submit through the shared front-end manager at virtual-now.
    [primary] (§6.1: "designate a replica as primary in rqst message",
    default [src]) is the replica whose application of the operation
    counts as the client's response; its latency feeds
    {!response_latency}. *)

val run : ?until:float -> ('op, 'state) t -> unit
(** Drain the simulation. *)

val delivery_latency : ('op, 'state) t -> Causalb_util.Stats.t

val response_latency : ('op, 'state) t -> Causalb_util.Stats.t
(** Submit → application at the designated primary replica. *)

val stability_latency : ('op, 'state) t -> Causalb_util.Stats.t

val messages_sent : ('op, 'state) t -> int
(** Unicast copies the transport carried. *)

val check : ('op, 'state) t -> (string * bool) list
(** All consistency predicates of {!Consistency} plus causal safety of
    every replica's delivery order, as named booleans — the harness
    asserts they are all [true]. *)
