lib/graph/activity.ml: Dep Depgraph Format Label List
