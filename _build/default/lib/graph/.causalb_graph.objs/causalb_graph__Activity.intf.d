lib/graph/activity.mli: Depgraph Format Label
