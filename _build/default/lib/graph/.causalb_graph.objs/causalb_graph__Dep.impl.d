lib/graph/dep.ml: Format Label List
