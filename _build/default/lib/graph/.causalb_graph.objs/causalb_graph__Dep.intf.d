lib/graph/dep.mli: Format Label
