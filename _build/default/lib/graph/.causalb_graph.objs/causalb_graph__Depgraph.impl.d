lib/graph/depgraph.ml: Buffer Dep Format Label List Option Printf
