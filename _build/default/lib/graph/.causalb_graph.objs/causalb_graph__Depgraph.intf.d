lib/graph/depgraph.mli: Dep Format Label
