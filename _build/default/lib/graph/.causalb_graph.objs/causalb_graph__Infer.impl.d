lib/graph/infer.ml: Dep Depgraph Label List Printf
