lib/graph/infer.mli: Dep Depgraph Label
