lib/graph/label.ml: Format Hashtbl Int Map Printf Set
