lib/graph/label.mli: Format Hashtbl Map Set
