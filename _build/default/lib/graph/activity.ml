type t = {
  opening : Label.t option;
  body : Label.t list;
  closing : Label.t option;
}

let fan ?opening ?closing ~body () = { opening; body; closing }

let members t =
  (match t.opening with Some l -> [ l ] | None -> [])
  @ t.body
  @ (match t.closing with Some l -> [ l ] | None -> [])

let graph t =
  let g = Depgraph.create () in
  (match t.opening with Some l -> Depgraph.add g l ~dep:Dep.null | None -> ());
  let body_dep =
    match t.opening with Some l -> Dep.after l | None -> Dep.null
  in
  List.iter (fun l -> Depgraph.add g l ~dep:body_dep) t.body;
  (match t.closing with
  | Some l ->
    let dep =
      if t.body = [] then body_dep else Dep.after_all t.body
    in
    Depgraph.add g l ~dep
  | None -> ());
  g

let final_states ?(limit = 10_000) ~apply ~equal ~init g =
  let run seq = List.fold_left apply init seq in
  let seqs = Depgraph.linearizations ~limit g in
  List.fold_left
    (fun acc seq ->
      let s = run seq in
      if List.exists (fun (s', _) -> equal s s') acc then acc
      else (s, seq) :: acc)
    [] seqs
  |> List.rev

let transition_preserving ?limit ~apply ~equal ~init g =
  match final_states ?limit ~apply ~equal ~init g with
  | [] | [ _ ] -> true
  | _ :: _ :: _ -> false

let is_stable_point ?limit ~apply ~equal ~init t =
  transition_preserving ?limit ~apply ~equal ~init (graph t)

let pp ppf t =
  let pp_opt ppf = function
    | Some l -> Label.pp ppf l
    | None -> Format.pp_print_string ppf "-"
  in
  Format.fprintf ppf "%a -> ||{%a} -> %a" pp_opt t.opening
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Label.pp)
    t.body pp_opt t.closing
