(** Causal activities and stable points (paper §4.1, §5.1).

    A causal activity is a message set [K] with ordering relation [R(K)];
    the paper's canonical shape is the fan
    [m0 → ‖{m1 … mr} → m(r+1)] of §6.1, where the opening and closing
    messages are non-commutative operations and the body is a set of
    concurrent (commutative) ones.

    A state reached by [R(K)] is a {e stable point} when every allowed
    event sequence ([EvSeq_i], a linear extension of the graph) drives the
    state-transition function to the same final state — the sequences are
    {e transition-preserving}.  These checks are the executable form of
    the paper's definition and are used both by tests and by the
    consistency verifier. *)

type t = {
  opening : Label.t option;  (** [m0]; [None] for an initial activity *)
  body : Label.t list;       (** the concurrent interior messages *)
  closing : Label.t option;  (** [m(r+1)]; [None] while the cycle is open *)
}

val fan :
  ?opening:Label.t -> ?closing:Label.t -> body:Label.t list -> unit -> t

val members : t -> Label.t list
(** All labels of the activity, opening first, closing last. *)

val graph : t -> Depgraph.t
(** The dependency graph [R(K)]:
    [opening → each body message → closing] (AND-dependency on the whole
    body, relation (3) of the paper). *)

val transition_preserving :
  ?limit:int ->
  apply:('s -> Label.t -> 's) ->
  equal:('s -> 's -> bool) ->
  init:'s ->
  Depgraph.t ->
  bool
(** Whether every linear extension of the graph (up to [limit], default
    10_000 — activities in this codebase are small) reaches the same final
    state from [init]. *)

val final_states :
  ?limit:int ->
  apply:('s -> Label.t -> 's) ->
  equal:('s -> 's -> bool) ->
  init:'s ->
  Depgraph.t ->
  ('s * Label.t list) list
(** The distinct final states, each with one witness sequence.  A result
    of length 1 means the closing state is a stable point. *)

val is_stable_point :
  ?limit:int ->
  apply:('s -> Label.t -> 's) ->
  equal:('s -> 's -> bool) ->
  init:'s ->
  t ->
  bool
(** {!transition_preserving} applied to {!graph}. *)

val pp : Format.formatter -> t -> unit
