type t =
  | Null
  | After of Label.t
  | After_all of Label.t list
  | After_any of Label.t list

let null = Null

let after l = After l

let dedup labels =
  Label.Set.elements (Label.Set.of_list labels)

let after_all labels =
  match dedup labels with
  | [] -> Null
  | [ l ] -> After l
  | ls -> After_all ls

let after_any labels =
  match dedup labels with
  | [] -> Null
  | [ l ] -> After l
  | ls -> After_any ls

let ancestors = function
  | Null -> []
  | After l -> [ l ]
  | After_all ls | After_any ls -> ls

let satisfied ~delivered = function
  | Null -> true
  | After l -> delivered l
  | After_all ls -> List.for_all delivered ls
  | After_any ls -> List.exists delivered ls

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | After x, After y -> Label.equal x y
  | After_all xs, After_all ys | After_any xs, After_any ys ->
    List.length xs = List.length ys && List.for_all2 Label.equal xs ys
  | (Null | After _ | After_all _ | After_any _), _ -> false

let pp ppf = function
  | Null -> Format.pp_print_string ppf "after()"
  | After l -> Format.fprintf ppf "after(%a)" Label.pp l
  | After_all ls ->
    Format.fprintf ppf "after(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " /\\ ")
         Label.pp)
      ls
  | After_any ls ->
    Format.fprintf ppf "after(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " \\/ ")
         Label.pp)
      ls
