(** [Occurs_After] ordering predicates (paper §3.1–3.3).

    The [OSend] primitive names the messages a new message must occur
    after.  The paper's forms are [Null] (no constraint), a single
    ancestor, and the AND-conjunction of relation (3)
    [Occurs_After (Msg, m1 ∧ m2 ∧ …)].  [After_any] is our extension (an
    OR-dependency: deliverable once any named ancestor is processed); it
    is exercised by tests and one ablation but used by no paper protocol. *)

type t =
  | Null                          (** processable without constraint *)
  | After of Label.t              (** m → Msg *)
  | After_all of Label.t list     (** (m1 ∧ m2 ∧ …) → Msg *)
  | After_any of Label.t list     (** extension: any one ancestor suffices *)

val null : t

val after : Label.t -> t

val after_all : Label.t list -> t
(** Normalises: empty list ≡ [Null], singleton ≡ [After]. *)

val after_any : Label.t list -> t
(** Normalises like {!after_all}. *)

val ancestors : t -> Label.t list
(** Every label mentioned by the predicate. *)

val satisfied : delivered:(Label.t -> bool) -> t -> bool
(** Whether the predicate allows delivery given the set of already
    delivered messages. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
