let positions seq =
  let tbl = Label.Tbl.create (List.length seq) in
  List.iteri
    (fun i l ->
      if Label.Tbl.mem tbl l then
        invalid_arg
          (Printf.sprintf "Infer: duplicate label %s in observation"
             (Label.to_string l));
      Label.Tbl.replace tbl l i)
    seq;
  tbl

let precedence observations =
  let tables = List.map positions observations in
  let all_labels =
    List.fold_left
      (fun acc seq -> List.fold_left (fun acc l -> Label.Set.add l acc) acc seq)
      Label.Set.empty observations
    |> Label.Set.elements
  in
  let consistent a b =
    (* a before b in every observation containing both; co-occur once *)
    let co = ref false and ok = ref true in
    List.iter
      (fun tbl ->
        match (Label.Tbl.find_opt tbl a, Label.Tbl.find_opt tbl b) with
        | Some pa, Some pb ->
          co := true;
          if pa > pb then ok := false
        | Some _, None | None, Some _ | None, None -> ())
      tables;
    !co && !ok
  in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if (not (Label.equal a b)) && consistent a b then Some (a, b)
          else None)
        all_labels)
    all_labels

let graph_of_pairs labels pairs =
  (* nodes added in a topological-compatible order: sort by in-edge count
     won't do — instead add all nodes first with their full parent sets;
     Depgraph tolerates forward references via pending children. *)
  let parents = Label.Tbl.create 64 in
  List.iter (fun l -> Label.Tbl.replace parents l []) labels;
  List.iter
    (fun (a, b) ->
      Label.Tbl.replace parents b (a :: Label.Tbl.find parents b))
    pairs;
  let g = Depgraph.create () in
  List.iter
    (fun l -> Depgraph.add g l ~dep:(Dep.after_all (Label.Tbl.find parents l)))
    labels;
  g

let transitive_reduction g =
  let labels = Depgraph.labels g in
  let reduced = Depgraph.create () in
  List.iter
    (fun l ->
      let parents = Depgraph.parents g l in
      (* a parent is redundant if it is an ancestor of another parent *)
      let direct =
        List.filter
          (fun p ->
            not
              (List.exists
                 (fun q ->
                   (not (Label.equal p q)) && Depgraph.happens_before g p q)
                 parents))
          parents
      in
      Depgraph.add reduced l ~dep:(Dep.after_all direct))
    labels;
  reduced

let infer observations =
  let pairs = precedence observations in
  let labels =
    List.fold_left
      (fun acc seq -> List.fold_left (fun acc l -> Label.Set.add l acc) acc seq)
      Label.Set.empty observations
    |> Label.Set.elements
  in
  transitive_reduction (graph_of_pairs labels pairs)

let spec g =
  List.map (fun l -> (l, Depgraph.dep_of g l)) (Depgraph.topological g)

let closure_pairs g =
  let labels = Depgraph.labels g in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if Depgraph.happens_before g a b then Some (a, b) else None)
        labels)
    labels

let common_set a b =
  Label.Set.inter
    (Label.Set.of_list (Depgraph.labels a))
    (Label.Set.of_list (Depgraph.labels b))

let restrict_pairs common pairs =
  List.filter
    (fun (a, b) -> Label.Set.mem a common && Label.Set.mem b common)
    pairs
  |> List.sort compare

let exact ~truth inferred =
  let common = common_set truth inferred in
  restrict_pairs common (closure_pairs truth)
  = restrict_pairs common (closure_pairs inferred)

let over_approximation ~truth inferred =
  let common = common_set truth inferred in
  let true_pairs = restrict_pairs common (closure_pairs truth) in
  let inf_pairs = restrict_pairs common (closure_pairs inferred) in
  List.for_all (fun p -> List.mem p inf_pairs) true_pairs
