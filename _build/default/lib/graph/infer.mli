(** Extracting ordering specifications from observed executions (§3.2).

    The paper notes that "a stable form of the graph representing message
    dependencies in an application is extractable by observing its
    execution behaviour in terms of messages exchanged and generating
    therefrom a specification of the intended communication requirements".
    This module implements that observation step: given delivery sequences
    collected from members (possibly across several executions), it
    computes the precedence relation common to all of them and renders it
    as a dependency graph / [Occurs_After] specification.

    Because each observation is a linearization of the true partial order,
    the inferred relation always {e contains} the true one; every
    additional observation can only remove incidental orderings.  With all
    linearizations observed, inference is exact — the formal content of
    "causal relations are stable information". *)

val precedence : Label.t list list -> (Label.t * Label.t) list
(** [(a, b)] pairs such that [a] precedes [b] in {e every} observed
    sequence in which both appear, and they co-occur at least once.  The
    relation is a strict partial order (the intersection of the observed
    linear orders).  @raise Invalid_argument if a sequence contains a
    duplicate label. *)

val infer : Label.t list list -> Depgraph.t
(** The {!precedence} relation as a transitively reduced dependency graph
    over every observed label: each node's predicate names only its
    immediate ancestors, as an [OSend] specification would. *)

val spec : Depgraph.t -> (Label.t * Dep.t) list
(** Render a graph as the per-message [Occurs_After] specification, in
    topological order — the "non-procedural form" of §3.3. *)

val transitive_reduction : Depgraph.t -> Depgraph.t
(** Remove every edge implied by a longer path.  For a DAG the reduction
    is unique. *)

val exact : truth:Depgraph.t -> Depgraph.t -> bool
(** Whether an inferred graph has exactly the truth's happens-before
    relation (compares transitive closures over the common label set). *)

val over_approximation : truth:Depgraph.t -> Depgraph.t -> bool
(** Whether the inferred relation contains every true ordering — the
    soundness guarantee observation always provides. *)
