lib/harness/drivers.ml: Array Causalb_core Causalb_data Causalb_graph Causalb_net Causalb_sim Causalb_util Hashtbl List
