lib/harness/drivers.mli: Causalb_sim Causalb_util
