lib/net/fault.ml: Format Printf
