lib/net/net.ml: Array Causalb_sim Causalb_util Fault Float List Printf
