lib/net/net.mli: Causalb_sim Fault
