type t = { drop_prob : float; dup_prob : float; jitter : float }

let none = { drop_prob = 0.0; dup_prob = 0.0; jitter = 0.0 }

let check_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Fault.make: %s must be in [0,1]" name)

let make ?(drop_prob = 0.0) ?(dup_prob = 0.0) ?(jitter = 0.0) () =
  check_prob "drop_prob" drop_prob;
  check_prob "dup_prob" dup_prob;
  if jitter < 0.0 then invalid_arg "Fault.make: jitter must be >= 0";
  { drop_prob; dup_prob; jitter }

let pp ppf t =
  Format.fprintf ppf "faults(drop=%.2f,dup=%.2f,jitter=%.2gms)" t.drop_prob
    t.dup_prob t.jitter
