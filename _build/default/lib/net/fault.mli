(** Fault-injection policy for the simulated network.

    The 1994 model assumes a reliable broadcast substrate; faults are
    injected here to test that the ordering layers stay {e safe} (never
    deliver out of causal order) even when the transport misbehaves, and
    to measure how loss/duplication stall stable-point detection. *)

type t = {
  drop_prob : float;       (** probability a unicast copy is lost *)
  dup_prob : float;        (** probability a copy is delivered twice *)
  jitter : float;          (** extra delay, uniform in [0, jitter] ms *)
}

val none : t

val make : ?drop_prob:float -> ?dup_prob:float -> ?jitter:float -> unit -> t
(** @raise Invalid_argument if a probability is outside [0,1] or jitter is
    negative. *)

val pp : Format.formatter -> t -> unit
