lib/protocols/card_game.mli: Causalb_sim Causalb_util
