lib/protocols/causal_memory.ml: Array Causalb_clock Causalb_core Causalb_net Causalb_sim Hashtbl List Map Option Printf String
