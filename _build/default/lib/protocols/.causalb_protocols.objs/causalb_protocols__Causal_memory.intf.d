lib/protocols/causal_memory.mli: Causalb_sim
