lib/protocols/conference.ml: Array Causalb_data Causalb_sim Causalb_util Printf
