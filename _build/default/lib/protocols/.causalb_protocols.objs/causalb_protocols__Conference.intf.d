lib/protocols/conference.mli: Causalb_data Causalb_sim
