lib/protocols/lock_service.ml: Array Causalb_core Causalb_graph Causalb_net Causalb_sim Causalb_util Float Format Fun Hashtbl Int List Option Printf
