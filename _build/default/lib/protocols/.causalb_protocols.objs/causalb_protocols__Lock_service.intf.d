lib/protocols/lock_service.mli: Causalb_sim Causalb_util Format
