lib/protocols/name_service.ml: Array Causalb_core Causalb_graph Causalb_net Causalb_sim Causalb_util Hashtbl List Map Option String
