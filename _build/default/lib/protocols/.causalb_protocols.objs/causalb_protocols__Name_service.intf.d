lib/protocols/name_service.mli: Causalb_graph Causalb_sim Causalb_util
