lib/protocols/page_service.ml: Array Causalb_core Causalb_graph Causalb_net Causalb_sim Causalb_util Fun Hashtbl Int List Option Printf
