lib/protocols/page_service.mli: Causalb_sim
