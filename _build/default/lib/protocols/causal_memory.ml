module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Bss = Causalb_core.Bss
module Vc = Causalb_clock.Vector_clock
module Smap = Map.Make (String)

type write_op = { var : string; value : int; writer : int; wseq : int }

type node_state = {
  mutable store : int Smap.t;
  mutable applied_rev : (write_op * Vc.t) list;
      (* each applied write with the stamp it carried *)
}

type t = {
  engine : Engine.t;
  group : write_op Bss.envelope Net.t;
  bss : write_op Bss.Group.t;
  nodes : node_state array;
  wseqs : int array;
  n : int;
}

let create engine ~nodes:n ?(latency = Latency.lan) () =
  if n <= 0 then invalid_arg "Causal_memory.create: nodes <= 0";
  let net = Net.create engine ~nodes:n ~latency ~fifo:false () in
  let states =
    Array.init n (fun _ -> { store = Smap.empty; applied_rev = [] })
  in
  let bss =
    Bss.Group.create net
      ~on_deliver:(fun ~node ~time:_ (e : write_op Bss.envelope) ->
        let st = states.(node) in
        let w = e.Bss.payload in
        st.store <- Smap.add w.var w.value st.store;
        st.applied_rev <- (w, e.Bss.stamp) :: st.applied_rev)
      ()
  in
  { engine; group = net; bss; nodes = states; wseqs = Array.make n 0; n }

let write t ~node ~var value =
  let wseq = t.wseqs.(node) in
  t.wseqs.(node) <- wseq + 1;
  Bss.Group.bcast t.bss ~src:node
    ~tag:(Printf.sprintf "w%d.%d" node wseq)
    { var; value; writer = node; wseq }

let read t ~node ~var = Smap.find_opt var t.nodes.(node).store

let applied t node =
  List.rev_map (fun (w, _) -> (w.var, w.value)) t.nodes.(node).applied_rev

(* Recompute the causal-delivery condition from the recorded stamps: when
   a node applied write W carrying stamp V, it must already have applied,
   for every process k, at least V[k] writes from k (V[writer] - 1 for
   the writer itself). *)
let check_causal_application t =
  Array.for_all
    (fun st ->
      let counts = Array.make t.n 0 in
      List.for_all
        (fun ((w : write_op), stamp) ->
          let ok = ref true in
          for k = 0 to t.n - 1 do
            let needed =
              if k = w.writer then Vc.get stamp k - 1 else Vc.get stamp k
            in
            if counts.(k) < needed then ok := false
          done;
          counts.(w.writer) <- counts.(w.writer) + 1;
          !ok)
        (List.rev st.applied_rev))
    t.nodes

let check_per_writer_order t =
  Array.for_all
    (fun st ->
      let last = Hashtbl.create 8 in
      List.for_all
        (fun ((w : write_op), _) ->
          let prev = Option.value ~default:(-1) (Hashtbl.find_opt last w.writer) in
          Hashtbl.replace last w.writer w.wseq;
          w.wseq = prev + 1)
        (List.rev st.applied_rev))
    t.nodes

let nodes_agree_on t ~var =
  let values = Array.to_list (Array.map (fun st -> Smap.find_opt var st.store) t.nodes) in
  match values with
  | [] -> true
  | first :: rest -> List.for_all (( = ) first) rest

let divergent_vars t =
  let vars =
    Array.fold_left
      (fun acc st -> Smap.fold (fun k _ acc -> k :: acc) st.store acc)
      [] t.nodes
    |> List.sort_uniq String.compare
  in
  List.filter (fun var -> not (nodes_agree_on t ~var)) vars

let messages_sent t = Net.messages_sent t.group
