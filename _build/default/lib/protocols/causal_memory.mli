(** Causal distributed shared memory — the Ahamad–Hutto–John model
    (paper reference [5]), which §5.2 contrasts with this paper's
    approach: "somewhat different … in the way the shared data is
    realized and the application semantics is exploited".

    Writes are broadcast with vector-clock (inferred) causality and
    applied at each node in causal order; reads are purely local and
    return immediately.  Causal consistency is all you get: two nodes may
    hold different values of a variable forever after concurrent writes
    (last-causal-writer-wins locally, with no agreement point) — there
    are no stable points, no agreed values, and no way to ask "the"
    current value.  The tests and benches use it as the contrast class
    for the paper's stable-point model. *)

type t

val create :
  Causalb_sim.Engine.t ->
  nodes:int ->
  ?latency:Causalb_sim.Latency.t ->
  unit ->
  t

val write : t -> node:int -> var:string -> int -> unit

val read : t -> node:int -> var:string -> int option
(** Local, immediate; [None] if the node has not seen any write to the
    variable. *)

val applied : t -> int -> (string * int) list
(** Writes applied at a node, in application order. *)

val check_causal_application : t -> bool
(** Every node applied every write only after all its (vector-clock)
    causal predecessors — the causal-memory safety condition, recomputed
    from the recorded stamps rather than trusted from the engine. *)

val check_per_writer_order : t -> bool
(** Writes by one node appear in issue order at every node. *)

val nodes_agree_on : t -> var:string -> bool
(** Whether all nodes currently hold the same value of [var] — expected
    to be [false] sometimes after concurrent writes (the divergence the
    paper's stable points eliminate). *)

val divergent_vars : t -> string list
(** Variables on which at least two nodes currently disagree. *)

val messages_sent : t -> int
