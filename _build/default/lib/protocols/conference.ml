module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Rng = Causalb_util.Rng
module Service = Causalb_data.Service
module Replica = Causalb_data.Replica
module Document = Causalb_data.Datatypes.Document

type t = {
  engine : Engine.t;
  service : (Document.op, Document.state) Service.t;
  participants : int;
  sections : int;
  rng : Rng.t;
  mutable annotations : int;
  mutable commits : int;
}

let create engine ~participants ~sections ?latency () =
  if participants <= 0 then invalid_arg "Conference.create: participants <= 0";
  let machine = Document.machine ~sections in
  let service =
    Service.create engine ~replicas:participants ~machine ?latency ()
  in
  {
    engine;
    service;
    participants;
    sections;
    rng = Engine.fork_rng engine;
    annotations = 0;
    commits = 0;
  }

let service t = t.service

let check_participant t who p =
  if p < 0 || p >= t.participants then
    invalid_arg (Printf.sprintf "Conference.%s: participant %d out of range" who p)

let annotate t ~participant ~section text =
  check_participant t "annotate" participant;
  t.annotations <- t.annotations + 1;
  ignore
    (Service.submit t.service ~src:participant
       (Document.Annotate (section, text)))

let commit t ~moderator ~section ~body =
  check_participant t "commit" moderator;
  t.commits <- t.commits + 1;
  ignore
    (Service.submit t.service ~src:moderator (Document.Commit (section, body)))

let request_view t ~participant k =
  check_participant t "request_view" participant;
  Replica.read_deferred (Service.replica t.service participant) k

let run_session t ~annotations ~commit_every ?(spacing = 1.0) () =
  if commit_every <= 0 then
    invalid_arg "Conference.run_session: commit_every <= 0";
  let busiest = Array.make t.sections 0 in
  for i = 0 to annotations - 1 do
    let participant = i mod t.participants in
    let section = Rng.int t.rng t.sections in
    let when_ = float_of_int i *. spacing in
    Engine.schedule_at t.engine ~time:when_ (fun () ->
        busiest.(section) <- busiest.(section) + 1;
        annotate t ~participant ~section
          (Printf.sprintf "note-%d by p%d" i participant);
        if (i + 1) mod commit_every = 0 then begin
          let sec = ref 0 in
          Array.iteri (fun j c -> if c > busiest.(!sec) then sec := j) busiest;
          commit t ~moderator:0 ~section:!sec
            ~body:
              (Printf.sprintf "body v%d of s%d" ((i + 1) / commit_every) !sec)
        end)
  done;
  Service.run t.service

let annotations_sent t = t.annotations

let commits_sent t = t.commits

let check t = Service.check t.service
