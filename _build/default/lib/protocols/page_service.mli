(** Distributed shared-page access (paper §6.2's setting).

    The lock arbitration of §6.2 exists to serialise access to a shared
    {e page}: "the access permission on a data item is obtained by
    acquiring a lock associated with that item … when a current holder
    has completed page access, it broadcasts a TFR message".  This
    protocol completes the picture by moving the page with the lock:

    {ul
    {- [LOCK(i, S)] requests are totally ordered through their causal
       dependencies on the previous cycle's transfers (as in
       {!Lock_service});}
    {- the holder mutates its local page copy, then broadcasts
       [TFR(pos, S)] carrying the {e new page contents} — one broadcast
       both releases the lock and propagates the write, so every member's
       copy is current the moment it could next acquire;}
    {- the deterministic arbiter gives the same holder sequence at every
       member, so page versions form a single total order with no lost
       updates.}}

    Writers are application callbacks: [mutate ~member ~page] returns the
    member's new page contents. *)

type page = {
  version : int;
  data : string;
  writer : int;  (** member that produced this version *)
}

type t

val create :
  Causalb_sim.Engine.t ->
  members:int ->
  mutate:(member:int -> page:page -> string) ->
  ?latency:Causalb_sim.Latency.t ->
  ?hold:Causalb_sim.Latency.t ->
  ?requesters:(cycle:int -> int list) ->
  unit ->
  t
(** [hold] samples how long a holder works on the page before
    transferring (default constant 1 ms). *)

val start : t -> cycles:int -> unit

val page_at : t -> int -> page
(** A member's current local copy. *)

val versions_applied : t -> int -> int list
(** Version numbers a member saw, in arrival order. *)

val writes : t -> (int * int) list
(** [(version, writer)] pairs in version order, from the final page
    lineage at member 0. *)

val check_no_lost_updates : t -> expected_writes:int -> bool
(** Versions run 1..n with no gaps: every grant's write survived. *)

val check_copies_converge : t -> bool
(** All members end with the identical page. *)

val check_versions_monotone : t -> bool
(** No member ever applied a version lower than one it already had. *)

val messages_sent : t -> int
