lib/sim/engine.ml: Causalb_util Float Int Printf
