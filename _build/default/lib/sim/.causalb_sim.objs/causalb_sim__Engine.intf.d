lib/sim/engine.mli: Causalb_util
