lib/sim/latency.ml: Causalb_util Format
