lib/sim/latency.mli: Causalb_util Format
