module Heap = Causalb_util.Heap
module Rng = Causalb_util.Rng

type event = { time : float; seq : int; callback : unit -> unit }

type t = {
  queue : event Heap.t;
  root_rng : Rng.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
}

let compare_events a b =
  match Float.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let create ?(seed = 42) () =
  {
    queue = Heap.create ~cmp:compare_events ();
    root_rng = Rng.create seed;
    clock = 0.0;
    next_seq = 0;
    processed = 0;
  }

let now t = t.clock

let rng t = t.root_rng

let fork_rng t = Rng.split t.root_rng

let schedule_at t ~time callback =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %.3f is in the past (now %.3f)"
         time t.clock);
  Heap.push t.queue { time; seq = t.next_seq; callback };
  t.next_seq <- t.next_seq + 1

let schedule t ~delay callback =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) callback

let every t ~period ?until callback =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let rec tick () =
    let fire =
      match until with None -> true | Some stop -> t.clock <= stop
    in
    if fire then begin
      callback ();
      let next = t.clock +. period in
      let rearm =
        match until with None -> true | Some stop -> next <= stop
      in
      if rearm then schedule t ~delay:period tick
    end
  in
  schedule t ~delay:period tick

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    t.processed <- t.processed + 1;
    ev.callback ();
    true

let run ?until ?max_events t =
  let budget_ok () =
    match max_events with None -> true | Some m -> t.processed < m
  in
  let time_ok () =
    match (until, Heap.peek t.queue) with
    | None, _ -> true
    | Some _, None -> true
    | Some stop, Some ev -> ev.time <= stop
  in
  let rec loop () =
    if budget_ok () && time_ok () && step t then loop ()
  in
  loop ()

let pending t = Heap.length t.queue

let events_processed t = t.processed
