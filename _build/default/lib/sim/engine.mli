(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of pending
    events.  [run] repeatedly pops the earliest event and executes its
    callback, which may schedule further events.  Events with equal
    timestamps fire in scheduling order (a monotone tie-break), so a run
    is a pure function of the seed — the substrate property every
    experiment relies on for replay.

    Callbacks run on the caller's stack; re-entrancy is safe because the
    queue is only mutated through [schedule]. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh engine at virtual time 0.  [seed] (default 42) initialises the
    root RNG from which components should [split] their own streams. *)

val now : t -> float
(** Current virtual time in milliseconds. *)

val rng : t -> Causalb_util.Rng.t
(** The engine's root generator. *)

val fork_rng : t -> Causalb_util.Rng.t
(** An independent generator split off the root — one per component. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the callback [delay] ms from now.  @raise Invalid_argument on a
    negative delay. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run the callback at an absolute virtual time ≥ now. *)

val every : t -> period:float -> ?until:float -> (unit -> unit) -> unit
(** Periodic callback starting one period from now, optionally bounded. *)

val step : t -> bool
(** Execute the earliest pending event.  [false] iff the queue was empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the queue, stopping early when virtual time would exceed
    [until] or after [max_events] callbacks. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Callbacks executed since creation. *)
