module Rng = Causalb_util.Rng

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float; floor : float }
  | Lognormal of { mu : float; sigma : float; floor : float }
  | Pareto of { scale : float; shape : float }

let constant d =
  if d <= 0.0 then invalid_arg "Latency.constant: delay must be positive";
  Constant d

let uniform ~lo ~hi =
  if lo <= 0.0 || hi < lo then invalid_arg "Latency.uniform: need 0 < lo <= hi";
  Uniform { lo; hi }

let exponential ?(floor = 0.0) ~mean () =
  if mean <= 0.0 then invalid_arg "Latency.exponential: mean must be positive";
  Exponential { mean; floor }

let lognormal ?(floor = 0.0) ~mu ~sigma () =
  if sigma < 0.0 then invalid_arg "Latency.lognormal: sigma must be >= 0";
  Lognormal { mu; sigma; floor }

let pareto ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then
    invalid_arg "Latency.pareto: scale and shape must be positive";
  Pareto { scale; shape }

let sample rng = function
  | Constant d -> d
  | Uniform { lo; hi } -> lo +. Rng.float rng (hi -. lo)
  | Exponential { mean; floor } -> floor +. Rng.exponential rng ~mean
  | Lognormal { mu; sigma; floor } -> floor +. Rng.lognormal rng ~mu ~sigma
  | Pareto { scale; shape } -> Rng.pareto rng ~scale ~shape

let mean = function
  | Constant d -> d
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean; floor } -> floor +. mean
  | Lognormal { mu; sigma; floor } ->
    floor +. exp (mu +. (sigma *. sigma /. 2.0))
  | Pareto { scale; shape } ->
    if shape <= 1.0 then infinity else scale *. shape /. (shape -. 1.0)

let pp ppf = function
  | Constant d -> Format.fprintf ppf "constant(%.3gms)" d
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%.3g..%.3gms)" lo hi
  | Exponential { mean; floor } ->
    Format.fprintf ppf "exp(mean=%.3gms,floor=%.3g)" mean floor
  | Lognormal { mu; sigma; floor } ->
    Format.fprintf ppf "lognormal(mu=%.3g,sigma=%.3g,floor=%.3g)" mu sigma floor
  | Pareto { scale; shape } ->
    Format.fprintf ppf "pareto(scale=%.3g,shape=%.3g)" scale shape

let to_string t = Format.asprintf "%a" pp t

let lan = Lognormal { mu = 0.0; sigma = 0.5; floor = 0.1 }

let wan = Lognormal { mu = 3.0; sigma = 0.8; floor = 5.0 }
