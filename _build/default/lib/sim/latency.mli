(** Link-latency models for the simulated network.

    The 1994 paper ran on LAN workstations; we replace the testbed with
    parameterised delay distributions so experiments can sweep the
    variance that drives message reordering (the phenomenon causal
    delivery must mask).  All times are in simulated milliseconds. *)

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float; floor : float }
      (** [floor] is a minimum propagation delay added to the draw. *)
  | Lognormal of { mu : float; sigma : float; floor : float }
  | Pareto of { scale : float; shape : float }

val constant : float -> t

val uniform : lo:float -> hi:float -> t

val exponential : ?floor:float -> mean:float -> unit -> t

val lognormal : ?floor:float -> mu:float -> sigma:float -> unit -> t

val pareto : scale:float -> shape:float -> t

val sample : Causalb_util.Rng.t -> t -> float
(** A strictly positive delay drawn from the model. *)

val mean : t -> float
(** Analytic mean (for reporting; Pareto with shape ≤ 1 reports [infinity]). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val lan : t
(** Default used across experiments: lognormal with ~1 ms median and a
    heavy-ish tail, floor 0.1 ms — a plausible shared-segment LAN. *)

val wan : t
(** Higher-latency, higher-variance profile for stress experiments. *)
