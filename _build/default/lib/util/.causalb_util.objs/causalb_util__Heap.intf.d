lib/util/heap.mli:
