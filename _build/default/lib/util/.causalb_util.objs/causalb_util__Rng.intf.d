lib/util/rng.mli:
