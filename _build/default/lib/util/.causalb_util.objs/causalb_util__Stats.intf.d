lib/util/stats.mli:
