lib/util/table.mli:
