(** Imperative binary min-heap.

    The heap is ordered by a comparison function supplied at creation time;
    [pop] always returns a minimal element.  Used as the event queue of the
    discrete-event simulator, where stable behaviour for equal keys is
    obtained by composing the comparison with a tie-breaking sequence
    number (see {!Causalb_sim.Engine}). *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp].  [capacity] is an
    initial size hint (default 64); the heap grows as needed. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek h] is a minimal element of [h], without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns a minimal element of [h]. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}.  @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** [to_list h] is the elements of [h] in unspecified order.  [h] is not
    modified. *)

val drain : 'a t -> 'a list
(** [drain h] pops every element; the result is in ascending order and the
    heap is left empty. *)
