type t = { mutable state : int64 }

(* SplitMix64 (Steele, Lea & Flood 2014): tiny state, good statistical
   quality, and a principled [split] — exactly what deterministic
   simulation needs. *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next t }

let copy t = { state = t.state }

let int64 t = next t

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int without
     wrapping negative.  Rejection-free modulo is fine for simulation
     purposes: bias is < bound / 2^62, negligible for the bounds used
     here. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  (* 53 high bits -> uniform double in [0,1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (bits /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  (* Box–Muller; one draw discarded for simplicity. *)
  let u1 = 1.0 -. float t 1.0 and u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let pareto t ~scale ~shape =
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l = pick t (Array.of_list l)
