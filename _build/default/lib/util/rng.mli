(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    Every stochastic component of the simulator draws from an [Rng.t] so
    that a run is a pure function of its seed: re-running an experiment
    with the same seed replays the identical event sequence.  [split]
    derives an independent stream, letting each simulated node or workload
    own its generator without cross-talk when the composition of the
    system changes. *)

type t

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the
    same stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normally distributed: [exp (mu + sigma * N(0,1))]. *)

val gaussian : t -> mu:float -> sigma:float -> float

val pareto : t -> scale:float -> shape:float -> float
(** Pareto distributed with minimum [scale] and tail index [shape]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element.  @raise Invalid_argument on empty array. *)

val pick_list : t -> 'a list -> 'a
