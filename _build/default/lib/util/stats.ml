type t = {
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  mutable data : float array;
  mutable sorted : float array option; (* cache, invalidated on add *)
}

let create () =
  {
    n = 0;
    mean_acc = 0.0;
    m2 = 0.0;
    sum = 0.0;
    lo = nan;
    hi = nan;
    data = [||];
    sorted = None;
  }

let add t x =
  if t.n >= Array.length t.data then begin
    let cap = max 16 (2 * Array.length t.data) in
    let data = Array.make cap 0.0 in
    Array.blit t.data 0 data 0 t.n;
    t.data <- data
  end;
  t.data.(t.n) <- x;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if t.n = 1 then begin
    t.lo <- x;
    t.hi <- x
  end
  else begin
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x
  end;
  t.sorted <- None

let add_list t l = List.iter (add t) l

let count t = t.n

let total t = t.sum

let mean t = if t.n = 0 then nan else t.mean_acc

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min_value t = t.lo

let max_value t = t.hi

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
    let s = Array.sub t.data 0 t.n in
    Array.sort compare s;
    t.sorted <- Some s;
    s

let percentile t p =
  if t.n = 0 then nan
  else begin
    let s = sorted t in
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.n - 1) in
    let lo_idx = int_of_float (Float.floor rank) in
    let hi_idx = int_of_float (Float.ceil rank) in
    if lo_idx = hi_idx then s.(lo_idx)
    else begin
      let frac = rank -. float_of_int lo_idx in
      (s.(lo_idx) *. (1.0 -. frac)) +. (s.(hi_idx) *. frac)
    end
  end

let median t = percentile t 50.0

let samples t = Array.sub t.data 0 t.n

let merge a b =
  let t = create () in
  Array.iter (add t) (samples a);
  Array.iter (add t) (samples b);
  t

let summary t =
  if t.n = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" t.n (mean t)
      (percentile t 50.0) (percentile t 99.0) (max_value t)

module Histogram = struct
  type h = { lo : float; hi : float; bins : int array }

  let create ?(bins = 32) ~lo ~hi () =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if not (lo < hi) then invalid_arg "Histogram.create: need lo < hi";
    { lo; hi; bins = Array.make bins 0 }

  let add h x =
    let nb = Array.length h.bins in
    let idx =
      int_of_float (float_of_int nb *. ((x -. h.lo) /. (h.hi -. h.lo)))
    in
    let idx = max 0 (min (nb - 1) idx) in
    h.bins.(idx) <- h.bins.(idx) + 1

  let counts h = Array.copy h.bins

  let render ?(width = 50) h =
    let peak = Array.fold_left max 1 h.bins in
    let buf = Buffer.create 256 in
    let nb = Array.length h.bins in
    let bin_width = (h.hi -. h.lo) /. float_of_int nb in
    Array.iteri
      (fun i c ->
        let bar = c * width / peak in
        Buffer.add_string buf
          (Printf.sprintf "%10.3f | %s %d\n"
             (h.lo +. (bin_width *. float_of_int i))
             (String.make bar '#') c))
      h.bins;
    Buffer.contents buf
end
