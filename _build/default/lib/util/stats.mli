(** Online and batch statistics for experiment measurements.

    A {!t} accumulates floating-point samples (latencies, counts, …) and
    answers summary queries.  Mean and variance are maintained online
    (Welford); order statistics are computed on demand from the stored
    samples.  Storage is exact — experiments in this repository produce at
    most a few million samples, well within memory. *)

type t

val create : unit -> t

val add : t -> float -> unit

val add_list : t -> float list -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** Mean of the samples; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** Smallest sample; [nan] when empty. *)

val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], linear interpolation between
    closest ranks; [nan] when empty. *)

val median : t -> float

val samples : t -> float array
(** Copy of all samples in insertion order. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator holding the samples of both. *)

val summary : t -> string
(** One-line rendering: count, mean, p50, p99, max. *)

(** {1 Histograms} *)

module Histogram : sig
  type h

  val create : ?bins:int -> lo:float -> hi:float -> unit -> h
  (** Fixed-width bins over [\[lo, hi\]]; out-of-range samples are clamped
      into the first/last bin.  Default 32 bins. *)

  val add : h -> float -> unit

  val counts : h -> int array

  val render : ?width:int -> h -> string
  (** ASCII rendering, one line per bin. *)
end
