(** ASCII table rendering for the experiment harness.

    The benchmark binaries print paper-style tables to stdout; this module
    keeps the formatting in one place so every experiment renders rows the
    same way and the output stays diff-friendly across runs. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and named columns. *)

val add_row : t -> string list -> unit
(** Appends a row.  @raise Invalid_argument if the arity differs from the
    column count. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt …] formats a single tab-separated string and splits it
    into cells on ['\t']. *)

val render : t -> string
(** Aligned, boxed rendering including the title. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val to_csv : t -> string
(** Comma-separated rendering (header + rows) for machine consumption. *)

(** {1 Cell formatting helpers} *)

val fmt_float : ?digits:int -> float -> string
val fmt_int : int -> string
val fmt_pct : float -> string
(** Fraction [0..1] rendered as a percentage. *)
