test/test_clock.ml: Alcotest Causalb_clock
