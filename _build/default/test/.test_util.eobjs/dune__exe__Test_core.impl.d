test/test_core.ml: Alcotest Causalb_clock Causalb_core Causalb_graph Causalb_net Causalb_sim Fmt Format List Printf String
