test/test_data.ml: Alcotest Array Causalb_core Causalb_data Causalb_graph Causalb_net Causalb_sim Causalb_util Hashtbl Int List Option Printf String
