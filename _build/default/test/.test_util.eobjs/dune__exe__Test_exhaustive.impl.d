test/test_exhaustive.ml: Alcotest Array Causalb_core Causalb_graph Fun List Option Printf
