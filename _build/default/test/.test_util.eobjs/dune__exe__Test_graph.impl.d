test/test_graph.ml: Alcotest Causalb_graph Int List String
