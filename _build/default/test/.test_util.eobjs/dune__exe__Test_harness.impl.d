test/test_harness.ml: Alcotest Causalb_harness Causalb_util
