test/test_integration.ml: Alcotest Causalb_core Causalb_data Causalb_graph Causalb_net Causalb_sim Causalb_util Hashtbl List
