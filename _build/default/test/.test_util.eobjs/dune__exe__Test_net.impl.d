test/test_net.ml: Alcotest Array Causalb_net Causalb_sim Fun List Printf
