test/test_props.ml: Alcotest Array Causalb_clock Causalb_core Causalb_data Causalb_graph Causalb_net Causalb_sim Causalb_util Fun Int List Printf QCheck2 QCheck_alcotest
