test/test_protocols.ml: Alcotest Array Causalb_data Causalb_protocols Causalb_sim Causalb_util List Option Printf String
