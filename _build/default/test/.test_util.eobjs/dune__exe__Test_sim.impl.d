test/test_sim.ml: Alcotest Causalb_sim Causalb_util Format List String
