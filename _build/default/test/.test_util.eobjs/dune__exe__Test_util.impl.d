test/test_util.ml: Alcotest Array Causalb_util Float Fun Int List String
