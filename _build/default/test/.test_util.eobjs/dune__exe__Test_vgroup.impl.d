test/test_vgroup.ml: Alcotest Array Causalb_core Causalb_graph Causalb_net Causalb_sim List Printf
