test/test_vgroup.mli:
