(* Tests for the causal broadcast core: OSend delivery engine, groups over
   the simulated network, BSS and FIFO baselines, ASend total-order
   layers, stable points and the checkers. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Fault = Causalb_net.Fault
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Message = Causalb_core.Message
module Osend = Causalb_core.Osend
module Group = Causalb_core.Group
module Bss = Causalb_core.Bss
module Fifo = Causalb_core.Fifo
module Asend = Causalb_core.Asend
module Stable_points = Causalb_core.Stable_points
module Checker = Causalb_core.Checker

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let l ?name origin seq = Label.make ?name ~origin ~seq ()

let msg ?name ~origin ~seq ~dep payload =
  Message.make ~label:(l ?name origin seq) ~sender:origin ~dep payload

let labels_testable =
  Alcotest.testable (Fmt.Dump.list Label.pp) (List.equal Label.equal)

(* --- Osend member --- *)

let test_osend_null_immediate () =
  let m = Osend.create ~id:0 () in
  Osend.receive m (msg ~origin:0 ~seq:0 ~dep:Dep.null "a");
  check_int "delivered" 1 (Osend.delivered_count m);
  check_int "pending" 0 (Osend.pending_count m)

let test_osend_blocks_until_dep () =
  let m = Osend.create ~id:0 () in
  let a = l 0 0 in
  Osend.receive m (msg ~origin:1 ~seq:0 ~dep:(Dep.after a) "b");
  check_int "blocked" 0 (Osend.delivered_count m);
  check_int "pending" 1 (Osend.pending_count m);
  Alcotest.check labels_testable "blocked_on" [ a ] (Osend.blocked_on m);
  Osend.receive m (msg ~origin:0 ~seq:0 ~dep:Dep.null "a");
  check_int "cascade" 2 (Osend.delivered_count m);
  Alcotest.check labels_testable "order" [ a; l 1 0 ] (Osend.delivered_order m)

let test_osend_and_dependency () =
  let m = Osend.create ~id:0 () in
  let a = l 0 0 and b = l 1 0 in
  Osend.receive m (msg ~origin:2 ~seq:0 ~dep:(Dep.after_all [ a; b ]) "c");
  Osend.receive m (msg ~origin:0 ~seq:0 ~dep:Dep.null "a");
  check_int "still blocked" 1 (Osend.delivered_count m);
  Osend.receive m (msg ~origin:1 ~seq:0 ~dep:Dep.null "b");
  check_int "released" 3 (Osend.delivered_count m)

let test_osend_or_dependency () =
  let m = Osend.create ~id:0 () in
  let a = l 0 0 and b = l 1 0 in
  Osend.receive m (msg ~origin:2 ~seq:0 ~dep:(Dep.after_any [ a; b ]) "c");
  check_int "blocked" 0 (Osend.delivered_count m);
  Osend.receive m (msg ~origin:1 ~seq:0 ~dep:Dep.null "b");
  check_int "one alternative suffices" 2 (Osend.delivered_count m)

let test_osend_duplicate_suppression () =
  let m = Osend.create ~id:0 () in
  let e = msg ~origin:0 ~seq:0 ~dep:Dep.null "a" in
  Osend.receive m e;
  Osend.receive m e;
  check_int "once" 1 (Osend.delivered_count m)

let test_osend_deep_cascade () =
  (* Chain m0 <- m1 <- ... <- m9 received in reverse order: the arrival of
     m0 must release the whole chain in order. *)
  let m = Osend.create ~id:0 () in
  for i = 9 downto 1 do
    Osend.receive m (msg ~origin:0 ~seq:i ~dep:(Dep.after (l 0 (i - 1))) i)
  done;
  check_int "all parked" 9 (Osend.pending_count m);
  Osend.receive m (msg ~origin:0 ~seq:0 ~dep:Dep.null 0);
  check_int "all released" 10 (Osend.delivered_count m);
  Alcotest.check labels_testable "chain order"
    (List.init 10 (fun i -> l 0 i))
    (Osend.delivered_order m)

let test_osend_delivery_callback_order () =
  let seen = ref [] in
  let m =
    Osend.create ~id:0
      ~deliver:(fun e -> seen := Message.payload e :: !seen)
      ()
  in
  Osend.receive m (msg ~origin:0 ~seq:1 ~dep:(Dep.after (l 0 0)) "second");
  Osend.receive m (msg ~origin:0 ~seq:0 ~dep:Dep.null "first");
  Alcotest.(check (list string)) "callback order" [ "first"; "second" ]
    (List.rev !seen)

let test_osend_graph_extraction () =
  (* The extracted graph contains pending messages too, and equals what
     another member extracts from the same set (stable information). *)
  let m1 = Osend.create ~id:0 () and m2 = Osend.create ~id:1 () in
  let msgs =
    [
      msg ~origin:0 ~seq:0 ~dep:Dep.null "a";
      msg ~origin:1 ~seq:0 ~dep:(Dep.after (l 0 0)) "b";
      msg ~origin:2 ~seq:0 ~dep:(Dep.after_all [ l 0 0; l 1 0 ]) "c";
    ]
  in
  List.iter (Osend.receive m1) msgs;
  List.iter (Osend.receive m2) (List.rev msgs);
  let g1 = Osend.graph m1 and g2 = Osend.graph m2 in
  check "same nodes" true
    (Label.Set.equal
       (Label.Set.of_list (Depgraph.labels g1))
       (Label.Set.of_list (Depgraph.labels g2)));
  check "same edges" true
    (List.sort compare (Depgraph.edges g1)
    = List.sort compare (Depgraph.edges g2))

(* --- Group over the network --- *)

let make_group ?(nodes = 3) ?(latency = Latency.lan) ?fifo ?seed () =
  let e = Engine.create ?seed () in
  let net = Net.create e ~nodes ~latency ?fifo () in
  let group = Group.create net () in
  (e, group)

let test_group_broadcast_delivers_everywhere () =
  let e, g = make_group () in
  let lbl = Group.osend g ~src:0 ~dep:Dep.null "hello" in
  Engine.run e;
  for node = 0 to 2 do
    Alcotest.check labels_testable
      (Printf.sprintf "node %d" node)
      [ lbl ]
      (Group.delivered_order g node)
  done

let test_group_causal_chain_respected () =
  (* Non-FIFO network with heavy reordering; causal chains must still be
     delivered in order at every member. *)
  let e, g =
    make_group ~nodes:4
      ~latency:(Latency.lognormal ~mu:1.0 ~sigma:1.5 ())
      ~fifo:false ()
  in
  let prev = ref Dep.null in
  for i = 0 to 30 do
    let lbl = Group.osend g ~src:(i mod 4) ~dep:!prev i in
    prev := Dep.after lbl
  done;
  Engine.run e;
  let expected = Group.delivered_order g 0 in
  check_int "all delivered" 31 (List.length expected);
  List.iter
    (fun node ->
      Alcotest.check labels_testable
        (Printf.sprintf "chain order at %d" node)
        expected
        (Group.delivered_order g node))
    [ 1; 2; 3 ]

let test_group_concurrent_orders_may_differ_but_safe () =
  let e, g =
    make_group ~nodes:5
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.2 ())
      ~fifo:false ~seed:3 ()
  in
  for i = 0 to 24 do
    ignore (Group.osend g ~src:(i mod 5) ~dep:Dep.null i)
  done;
  Engine.run e;
  let orders = Group.all_delivered_orders g in
  check "same set" true (Checker.same_set orders);
  check "safety trivially holds" true
    (Checker.causal_safety_all (Osend.graph (Group.member g 0)) orders);
  (* with that much variance, at least two members should disagree *)
  check "orders differ somewhere" true (not (Checker.identical_orders orders))

let test_group_fig2_scenario () =
  (* Fig. 2: mk -> ||{mi, mi'}; then mj after both. At every member mk is
     first and mj last; mi/mi' float in between. *)
  let e, g = make_group ~nodes:3 ~fifo:false ~seed:11 () in
  let mk = Group.osend g ~src:2 ~name:"mk" ~dep:Dep.null "mk" in
  Engine.run e;
  let mi = Group.osend g ~src:0 ~name:"mi" ~dep:(Dep.after mk) "mi" in
  let mi' = Group.osend g ~src:1 ~name:"mi'" ~dep:(Dep.after mk) "mi'" in
  Engine.run e;
  let mj =
    Group.osend g ~src:0 ~name:"mj" ~dep:(Dep.after_all [ mi; mi' ]) "mj"
  in
  Engine.run e;
  List.iter
    (fun node ->
      match Group.delivered_order g node with
      | [ first; _; _; last ] ->
        check "mk first" true (Label.equal first mk);
        check "mj last" true (Label.equal last mj)
      | other -> Alcotest.failf "expected 4 messages, got %d" (List.length other))
    [ 0; 1; 2 ]

let test_group_under_message_loss_safety () =
  (* With loss, liveness is gone but safety must hold: no member delivers
     a message before its ancestors. *)
  let e = Engine.create ~seed:5 () in
  let net = Net.create e ~nodes:3 ~fault:(Fault.make ~drop_prob:0.3 ()) () in
  let g = Group.create net () in
  let prev = ref Dep.null in
  for i = 0 to 20 do
    let lbl = Group.osend g ~src:(i mod 3) ~dep:!prev i in
    prev := Dep.after lbl
  done;
  Engine.run e;
  List.iter
    (fun node ->
      let member = Group.member g node in
      check
        (Printf.sprintf "safety at %d" node)
        true
        (Checker.causal_safety (Osend.graph member)
           (Osend.delivered_order member)))
    [ 0; 1; 2 ]

let test_group_duplicates_are_harmless () =
  let e = Engine.create () in
  let net = Net.create e ~nodes:3 ~fault:(Fault.make ~dup_prob:0.5 ()) () in
  let g = Group.create net () in
  for i = 0 to 20 do
    ignore (Group.osend g ~src:(i mod 3) ~dep:Dep.null i)
  done;
  Engine.run e;
  List.iter
    (fun node ->
      check_int "each delivered once" 21
        (List.length (Group.delivered_order g node)))
    [ 0; 1; 2 ]

(* --- BSS baseline --- *)

let make_bss ?(nodes = 3) ?(latency = Latency.lan) ?(fifo = false) ?seed () =
  let e = Engine.create ?seed () in
  let net = Net.create e ~nodes ~latency ~fifo () in
  let g = Bss.Group.create net () in
  (e, g)

let test_bss_basic_delivery () =
  let e, g = make_bss () in
  Bss.Group.bcast g ~src:0 ~tag:"m1" ();
  Engine.run e;
  for node = 0 to 2 do
    Alcotest.(check (list string))
      "delivered" [ "m1" ]
      (Bss.Group.delivered_tags g node)
  done

let test_bss_causal_order_inferred () =
  (* p0 broadcasts a; p1 delivers a then broadcasts b.  Everyone must
     deliver a before b even on a reordering network. *)
  let e, g =
    make_bss ~latency:(Latency.lognormal ~mu:1.0 ~sigma:1.5 ()) ~seed:2 ()
  in
  Bss.Group.bcast g ~src:0 ~tag:"a" ();
  Engine.run e;
  Bss.Group.bcast g ~src:1 ~tag:"b" ();
  Engine.run e;
  for node = 0 to 2 do
    Alcotest.(check (list string))
      "a before b" [ "a"; "b" ]
      (Bss.Group.delivered_tags g node)
  done

let test_bss_fifo_per_sender () =
  let e, g =
    make_bss ~latency:(Latency.lognormal ~mu:1.0 ~sigma:2.0 ()) ~seed:4 ()
  in
  for i = 0 to 19 do
    Bss.Group.bcast g ~src:0 ~tag:(string_of_int i) ()
  done;
  Engine.run e;
  for node = 0 to 2 do
    Alcotest.(check (list string))
      "sender order kept"
      (List.init 20 string_of_int)
      (Bss.Group.delivered_tags g node)
  done

let test_bss_buffered_counter () =
  let e, g =
    make_bss ~latency:(Latency.lognormal ~mu:1.0 ~sigma:2.0 ()) ~seed:6 ()
  in
  for i = 0 to 29 do
    Bss.Group.bcast g ~src:(i mod 3) ~tag:(string_of_int i) ()
  done;
  Engine.run e;
  let total_buffered =
    List.fold_left
      (fun acc node -> acc + Bss.buffered_ever (Bss.Group.member g node))
      0 [ 0; 1; 2 ]
  in
  (* The whole point of the T6 counter: on a jittery non-FIFO network some
     arrivals must wait. *)
  check "some forced waits" true (total_buffered > 0);
  for node = 0 to 2 do
    check_int "all delivered" 30 (Bss.delivered_count (Bss.Group.member g node))
  done

let test_bss_same_set_everywhere () =
  let e, g = make_bss ~nodes:5 ~seed:8 () in
  for i = 0 to 49 do
    Bss.Group.bcast g ~src:(i mod 5) ~tag:(string_of_int i) ()
  done;
  Engine.run e;
  let sets =
    List.init 5 (fun n -> List.sort compare (Bss.Group.delivered_tags g n))
  in
  check "identical sets" true (List.for_all (fun s -> s = List.hd sets) sets)

(* --- FIFO baseline --- *)

let test_fifo_per_sender_order () =
  let e = Engine.create ~seed:9 () in
  let net =
    Net.create e ~nodes:3
      ~latency:(Latency.lognormal ~mu:1.0 ~sigma:2.0 ())
      ~fifo:false ()
  in
  let g = Fifo.Group.create net () in
  for i = 0 to 19 do
    Fifo.Group.bcast g ~src:0 ~tag:(string_of_int i) ()
  done;
  Engine.run e;
  for node = 0 to 2 do
    Alcotest.(check (list string))
      "per-sender order"
      (List.init 20 string_of_int)
      (Fifo.Group.delivered_tags g node)
  done

let test_fifo_no_cross_sender_constraint () =
  let e = Engine.create ~seed:13 () in
  let net =
    Net.create e ~nodes:4
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.5 ())
      ~fifo:false ()
  in
  let g = Fifo.Group.create net () in
  for i = 0 to 19 do
    Fifo.Group.bcast g ~src:(i mod 4) ~tag:(string_of_int i) ()
  done;
  Engine.run e;
  let orders = List.init 4 (Fifo.Group.delivered_tags g) in
  check "some disagreement" true
    (List.exists (fun o -> o <> List.hd orders) orders)

(* --- ASend layers --- *)

let test_asend_merge_identical_batches () =
  (* Spontaneous messages closed by a sync that AND-depends on them: every
     member releases the identical total order. *)
  let merges =
    List.init 3 (fun _ ->
        Asend.Merge.create ~is_sync:(fun m -> Message.payload m = "sync") ())
  in
  let e = Engine.create ~seed:21 () in
  let net =
    Net.create e ~nodes:3
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.2 ())
      ~fifo:false ()
  in
  let g =
    Group.create net
      ~on_deliver:(fun ~node ~time:_ m ->
        Asend.Merge.on_causal_deliver (List.nth merges node) m)
      ()
  in
  let spont =
    List.init 6 (fun i -> Group.osend g ~src:(i mod 3) ~dep:Dep.null "spont")
  in
  ignore (Group.osend g ~src:0 ~name:"sync" ~dep:(Dep.after_all spont) "sync");
  Engine.run e;
  let orders = List.map Asend.Merge.total_order merges in
  check_int "seven released" 7 (List.length (List.hd orders));
  check "identical total order" true (Checker.identical_orders orders);
  List.iter (fun m -> check_int "one batch" 1 (Asend.Merge.batches m)) merges

let test_asend_merge_buffers_without_sync () =
  let m = Asend.Merge.create ~is_sync:(fun _ -> false) () in
  Asend.Merge.on_causal_deliver m (msg ~origin:0 ~seq:0 ~dep:Dep.null "x");
  check_int "buffered" 1 (Asend.Merge.buffered m);
  check_int "nothing released" 0 (List.length (Asend.Merge.total_order m))

let test_asend_counted_batches () =
  let released = ref [] in
  let c =
    Asend.Counted.create ~batch_size:3
      ~deliver:(fun m -> released := Message.payload m :: !released)
      ()
  in
  (* Arrival order differs from label order; release must be sorted. *)
  Asend.Counted.on_causal_deliver c (msg ~origin:2 ~seq:0 ~dep:Dep.null "c");
  Asend.Counted.on_causal_deliver c (msg ~origin:0 ~seq:0 ~dep:Dep.null "a");
  check_int "waiting" 0 (List.length !released);
  Asend.Counted.on_causal_deliver c (msg ~origin:1 ~seq:0 ~dep:Dep.null "b");
  Alcotest.(check (list string))
    "sorted release" [ "a"; "b"; "c" ]
    (List.rev !released);
  check_int "one batch" 1 (Asend.Counted.batches c)

let test_asend_counted_multiple_batches () =
  let c = Asend.Counted.create ~batch_size:2 () in
  for i = 0 to 5 do
    Asend.Counted.on_causal_deliver c (msg ~origin:0 ~seq:i ~dep:Dep.null i)
  done;
  check_int "three batches" 3 (Asend.Counted.batches c);
  check_int "all released" 6 (List.length (Asend.Counted.total_order c))

let test_asend_sequencer_total_order () =
  let e = Engine.create ~seed:31 () in
  let net =
    Net.create e ~nodes:4
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.0 ())
      ~fifo:false ()
  in
  let g = Group.create net () in
  let seq = Asend.Sequencer.create g () in
  for i = 0 to 19 do
    Asend.Sequencer.asend seq ~src:(i mod 4) i
  done;
  Engine.run e;
  check_int "all sequenced" 20 (Asend.Sequencer.sequenced seq);
  let orders = Group.all_delivered_orders g in
  check_int "all delivered" 20 (List.length (List.hd orders));
  check "identical orders" true (Checker.identical_orders orders)

let test_asend_timestamp_total_order () =
  (* Decentralised Lamport-timestamp order: all members deliver the
     identical sequence with no sequencer, on a FIFO network. *)
  let e = Engine.create ~seed:33 () in
  let net =
    Net.create e ~nodes:4
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.0 ())
      ~fifo:true ()
  in
  let ts = Asend.Timestamp.create net () in
  for i = 0 to 29 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.7) (fun () ->
        Asend.Timestamp.bcast ts ~src:(i mod 4) ~tag:(string_of_int i) ())
  done;
  Engine.run e;
  let orders = List.init 4 (Asend.Timestamp.delivered_tags ts) in
  check_int "all delivered" 30 (List.length (List.hd orders));
  check "identical sequences" true
    (List.for_all (fun o -> o = List.hd orders) orders);
  check "acks flowed" true (Asend.Timestamp.acks_sent ts > 0);
  List.iter
    (fun n -> check_int "no stragglers" 0 (Asend.Timestamp.pending ts n))
    [ 0; 1; 2; 3 ]

let test_asend_timestamp_causality_consistent () =
  (* One node sends a, another sends b after delivering a: every member
     must order a before b (the Lamport clock condition). *)
  let e = Engine.create ~seed:34 () in
  let net = Net.create e ~nodes:3 ~fifo:true () in
  let ts_ref = ref None in
  let ts =
    Asend.Timestamp.create net
      ~on_deliver:(fun ~node ~time:_ ~tag _ ->
        if node = 1 && tag = "a" then
          match !ts_ref with
          | Some ts -> Asend.Timestamp.bcast ts ~src:1 ~tag:"b" ()
          | None -> ())
      ()
  in
  ts_ref := Some ts;
  Asend.Timestamp.bcast ts ~src:0 ~tag:"a" ();
  Engine.run e;
  List.iter
    (fun n ->
      Alcotest.(check (list string))
        "a then b" [ "a"; "b" ]
        (Asend.Timestamp.delivered_tags ts n))
    [ 0; 1; 2 ]

let test_asend_timestamp_two_nodes () =
  let e = Engine.create ~seed:35 () in
  let net = Net.create e ~nodes:2 ~fifo:true () in
  let ts = Asend.Timestamp.create net () in
  Asend.Timestamp.bcast ts ~src:0 ~tag:"x" ();
  Asend.Timestamp.bcast ts ~src:1 ~tag:"y" ();
  Engine.run e;
  check "same order both nodes" true
    (Asend.Timestamp.delivered_tags ts 0 = Asend.Timestamp.delivered_tags ts 1);
  check_int "both delivered" 2
    (List.length (Asend.Timestamp.delivered_tags ts 0))

(* --- Rgroup: reliable causal broadcast over lossy links --- *)

module Rgroup = Causalb_core.Rgroup

let run_lossy_chain ?(heartbeat = false) ~drop ~seed ~ops ~nodes () =
  let e = Engine.create ~seed () in
  let net =
    Net.create e ~nodes ~fault:(Fault.make ~drop_prob:drop ())
      ~latency:(Latency.lognormal ~mu:0.3 ~sigma:0.8 ())
      ()
  in
  let g = Rgroup.create net () in
  if heartbeat then
    Rgroup.enable_heartbeat g ~period:15.0
      ~until:((float_of_int ops *. 0.5) +. 500.0);
  let prev = ref Dep.null in
  for i = 0 to ops - 1 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.5) (fun () ->
        let lbl = Rgroup.osend g ~src:(i mod nodes) ~dep:!prev i in
        prev := Dep.after lbl)
  done;
  Engine.run e;
  (e, g)

let test_rgroup_no_loss_no_nacks () =
  let _, g = run_lossy_chain ~drop:0.0 ~seed:41 ~ops:30 ~nodes:3 () in
  check_int "no nacks" 0 (Rgroup.nacks_sent g);
  check_int "no repairs" 0 (Rgroup.repairs_sent g);
  List.iter
    (fun o -> check_int "all delivered" 30 (List.length o))
    (Rgroup.all_delivered_orders g)

let test_rgroup_recovers_chain_under_loss () =
  let _, g = run_lossy_chain ~heartbeat:true ~drop:0.3 ~seed:42 ~ops:50 ~nodes:4 () in
  check "nacks happened" true (Rgroup.nacks_sent g > 0);
  check "repairs happened" true (Rgroup.repairs_sent g > 0);
  check_int "nothing unrecoverable" 0 (Rgroup.unrecoverable g);
  List.iter
    (fun o -> check_int "every member got everything" 50 (List.length o))
    (Rgroup.all_delivered_orders g);
  (* a chain admits exactly one causal order: all members identical *)
  check "identical orders" true
    (Checker.identical_orders (Rgroup.all_delivered_orders g))

let test_rgroup_recovers_concurrent_traffic () =
  (* Independent messages: gap detection must find drops that no
     dependency references — as long as each origin sends again. *)
  let e = Engine.create ~seed:43 () in
  let net =
    Net.create e ~nodes:3 ~fault:(Fault.make ~drop_prob:0.25 ()) ()
  in
  let g = Rgroup.create net () in
  Rgroup.enable_heartbeat g ~period:15.0 ~until:300.0;
  for i = 0 to 59 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.5) (fun () ->
        ignore (Rgroup.osend g ~src:(i mod 3) ~dep:Dep.null i))
  done;
  Engine.run e;
  let orders = Rgroup.all_delivered_orders g in
  (* with summary heartbeats even tail drops are discovered *)
  List.iter
    (fun o -> check_int "all 60 delivered" 60 (List.length o))
    orders;
  check "safety under recovery" true
    (Checker.causal_safety_all
       (Osend.graph (Rgroup.member g 0))
       (List.map
          (fun o ->
            List.filter
              (fun l -> Causalb_graph.Depgraph.mem (Osend.graph (Rgroup.member g 0)) l)
              o)
          orders))

let test_rgroup_heavy_loss_eventual_delivery () =
  let _, g =
    run_lossy_chain ~heartbeat:true ~drop:0.5 ~seed:44 ~ops:40 ~nodes:3 ()
  in
  check "heartbeats flowed" true (Rgroup.summaries_sent g > 0);
  List.iter
    (fun o -> check_int "all delivered" 40 (List.length o))
    (Rgroup.all_delivered_orders g)

let test_rgroup_duplicates_and_loss () =
  let e = Engine.create ~seed:45 () in
  let net =
    Net.create e ~nodes:3
      ~fault:(Fault.make ~drop_prob:0.2 ~dup_prob:0.3 ())
      ()
  in
  let g = Rgroup.create net () in
  Rgroup.enable_heartbeat g ~period:15.0 ~until:300.0;
  let prev = ref Dep.null in
  for i = 0 to 29 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.5) (fun () ->
        let lbl = Rgroup.osend g ~src:(i mod 3) ~dep:!prev i in
        prev := Dep.after lbl)
  done;
  Engine.run e;
  List.iter
    (fun o -> check_int "exactly once" 30 (List.length o))
    (Rgroup.all_delivered_orders g)

let test_rgroup_heals_after_partition () =
  (* A partition drops all cross-cell traffic; after healing, summary
     heartbeats discover and repair the holes. *)
  let e = Engine.create ~seed:48 () in
  let net = Net.create e ~nodes:4 ~latency:Latency.lan () in
  let g = Rgroup.create net () in
  Rgroup.enable_heartbeat g ~period:10.0 ~until:600.0;
  Engine.schedule_at e ~time:10.0 (fun () ->
      Net.partition net [ [ 0; 1 ]; [ 2; 3 ] ]);
  Engine.schedule_at e ~time:60.0 (fun () -> Net.heal net);
  for i = 0 to 49 do
    (* traffic before, during and after the partition *)
    Engine.schedule_at e ~time:(float_of_int i *. 1.5) (fun () ->
        ignore (Rgroup.osend g ~src:(i mod 4) ~dep:Dep.null i))
  done;
  Engine.run e;
  List.iter
    (fun o -> check_int "everyone has everything post-heal" 50 (List.length o))
    (Rgroup.all_delivered_orders g);
  check "repairs happened" true (Rgroup.repairs_sent g > 0)

let test_rgroup_gc_prunes_stash () =
  let e = Engine.create ~seed:46 () in
  let net = Net.create e ~nodes:3 ~latency:Latency.lan () in
  let g = Rgroup.create net () in
  Rgroup.enable_heartbeat ~gc:true g ~period:10.0 ~until:400.0;
  for i = 0 to 99 do
    Engine.schedule_at e ~time:(float_of_int i *. 1.0) (fun () ->
        ignore (Rgroup.osend g ~src:(i mod 3) ~dep:Dep.null i))
  done;
  Engine.run e;
  check "stash was pruned" true (Rgroup.pruned g > 0);
  check "stash ends small" true (Rgroup.stash_size g < Rgroup.stash_peak g);
  List.iter
    (fun o -> check_int "all delivered" 100 (List.length o))
    (Rgroup.all_delivered_orders g)

let test_rgroup_gc_safe_under_loss () =
  (* Pruning must never break recovery: only globally stable messages go. *)
  let e = Engine.create ~seed:47 () in
  let net =
    Net.create e ~nodes:3 ~fault:(Fault.make ~drop_prob:0.25 ()) ()
  in
  let g = Rgroup.create net () in
  Rgroup.enable_heartbeat ~gc:true g ~period:10.0 ~until:1_000.0;
  let prev = ref Dep.null in
  for i = 0 to 59 do
    Engine.schedule_at e ~time:(float_of_int i *. 1.0) (fun () ->
        let lbl = Rgroup.osend g ~src:(i mod 3) ~dep:!prev i in
        prev := Dep.after lbl)
  done;
  Engine.run e;
  List.iter
    (fun o -> check_int "complete despite gc + loss" 60 (List.length o))
    (Rgroup.all_delivered_orders g);
  check "some pruning happened" true (Rgroup.pruned g > 0)

(* --- Psync conversations --- *)

module Psync = Causalb_core.Psync

let make_psync ?(nodes = 3) ?(sigma = 1.0) ?seed () =
  let e = Engine.create ?seed () in
  let net =
    Net.create e ~nodes ~latency:(Latency.lognormal ~mu:0.5 ~sigma ())
      ~fifo:false ()
  in
  (e, Psync.create net ())

let test_psync_context_chain () =
  (* two sends from one node: the second's context is the first *)
  let e, p = make_psync ~seed:91 () in
  let a = Psync.send p ~src:0 ~name:"a" "a" in
  check "a is the leaf" true (Psync.leaves_at p 0 = [ a ]);
  let b = Psync.send p ~src:0 ~name:"b" "b" in
  check "b replaced a as leaf" true (Psync.leaves_at p 0 = [ b ]);
  Engine.run e;
  List.iter
    (fun node ->
      Alcotest.check labels_testable "context order" [ a; b ]
        (Psync.delivered_order p node))
    [ 0; 1; 2 ]

let test_psync_cross_node_context () =
  (* node 1 sends after receiving node 0's message: automatic dependency
     even though the application stated none *)
  let e, p = make_psync ~seed:92 () in
  let a = Psync.send p ~src:0 "a" in
  Engine.run e;
  let b = Psync.send p ~src:1 "b" in
  Engine.run e;
  List.iter
    (fun node ->
      Alcotest.check labels_testable "a then b" [ a; b ]
        (Psync.delivered_order p node))
    [ 0; 1; 2 ];
  (* the graph records the inferred edge *)
  let g = Osend.graph (Psync.member p 2) in
  check "edge a->b" true (Causalb_graph.Depgraph.happens_before g a b)

let test_psync_concurrent_sends_merge () =
  (* concurrent sends become multiple leaves; the next send joins them *)
  let e, p = make_psync ~seed:93 () in
  let a = Psync.send p ~src:0 "a" in
  let b = Psync.send p ~src:1 "b" in
  Engine.run e;
  check_int "two leaves" 2 (List.length (Psync.leaves_at p 2));
  let c = Psync.send p ~src:2 "c" in
  Engine.run e;
  let g = Osend.graph (Psync.member p 0) in
  check "c after a" true (Causalb_graph.Depgraph.happens_before g a c);
  check "c after b" true (Causalb_graph.Depgraph.happens_before g b c);
  check "a || b" true (Causalb_graph.Depgraph.concurrent g a b)

let test_psync_same_set_and_safety () =
  let e, p = make_psync ~nodes:4 ~sigma:1.3 ~seed:94 () in
  for i = 0 to 39 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.4) (fun () ->
        ignore (Psync.send p ~src:(i mod 4) i))
  done;
  Engine.run e;
  let orders = Psync.all_delivered_orders p in
  check "same set" true (Checker.same_set orders);
  check "safety" true
    (Checker.causal_safety_all (Osend.graph (Psync.member p 0)) orders);
  check "context bytes counted" true (Psync.context_size_total p > 0)

let test_psync_inherits_potential_causality_waits () =
  (* independent app messages still wait on each other under Psync —
     same pathology as BSS, unlike OSend with Dep.null *)
  let e, p = make_psync ~nodes:4 ~sigma:1.5 ~seed:95 () in
  for i = 0 to 59 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.4) (fun () ->
        ignore (Psync.send p ~src:(i mod 4) i))
  done;
  Engine.run e;
  check "forced waits under jitter" true (Psync.buffered_ever p > 0)

(* --- Stable points --- *)

let classify m =
  if String.length (Message.payload m) > 0 && (Message.payload m).[0] = 's'
  then Stable_points.Sync
  else Stable_points.Concurrent

let test_stable_points_windows () =
  let points = ref [] in
  let t =
    Stable_points.create ~classify
      ~on_stable:(fun p -> points := p :: !points)
      ()
  in
  Stable_points.on_deliver t (msg ~origin:0 ~seq:0 ~dep:Dep.null "c1");
  Stable_points.on_deliver t (msg ~origin:1 ~seq:0 ~dep:Dep.null "c2");
  Stable_points.on_deliver t (msg ~origin:2 ~seq:0 ~dep:Dep.null "s1");
  Stable_points.on_deliver t (msg ~origin:0 ~seq:1 ~dep:Dep.null "s2");
  check_int "two cycles" 2 (Stable_points.cycles_closed t);
  let p1 = List.nth (Stable_points.points t) 0 in
  check_int "window size" 2 (List.length p1.Stable_points.window);
  let p2 = List.nth (Stable_points.points t) 1 in
  check_int "empty window" 0 (List.length p2.Stable_points.window);
  check_int "callback count" 2 (List.length !points)

let test_stable_points_deferred () =
  let t = Stable_points.create ~classify () in
  let got = ref None in
  Stable_points.on_deliver t (msg ~origin:0 ~seq:0 ~dep:Dep.null "c1");
  Stable_points.defer t (fun p -> got := Some p.Stable_points.cycle);
  check_int "queued" 1 (Stable_points.deferred_count t);
  Stable_points.on_deliver t (msg ~origin:0 ~seq:1 ~dep:Dep.null "c2");
  check "not yet" true (!got = None);
  Stable_points.on_deliver t (msg ~origin:0 ~seq:2 ~dep:Dep.null "s");
  check "fired at cycle 0" true (!got = Some 0);
  check_int "drained" 0 (Stable_points.deferred_count t)

let test_stable_points_open_window () =
  let t = Stable_points.create ~classify () in
  Stable_points.on_deliver t (msg ~origin:0 ~seq:0 ~dep:Dep.null "c1");
  check_int "open" 1 (List.length (Stable_points.open_window t));
  Stable_points.on_deliver t (msg ~origin:0 ~seq:1 ~dep:Dep.null "s");
  check_int "closed" 0 (List.length (Stable_points.open_window t))

(* --- odds and ends --- *)

let test_message_map_and_pp () =
  let m = msg ~origin:0 ~seq:0 ~dep:Dep.null 21 in
  let doubled = Message.map (fun x -> x * 2) m in
  check_int "payload mapped" 42 (Message.payload doubled);
  check "label preserved" true
    (Label.equal (Message.label doubled) (Message.label m));
  let rendered = Format.asprintf "%a" (Message.pp Format.pp_print_int) doubled in
  check "pp mentions payload" true (String.length rendered > 0)

let test_osend_blocked_on_any () =
  let m = Osend.create ~id:0 () in
  Osend.receive m (msg ~origin:2 ~seq:0 ~dep:(Dep.after_any [ l 0 0; l 1 0 ]) "c");
  (* both alternatives are missing and reported *)
  check_int "two missing alternatives" 2 (List.length (Osend.blocked_on m))

let test_bss_clock_exposed () =
  let m = Bss.member ~id:1 ~group_size:3 () in
  let v = Bss.clock m in
  check_int "fresh clock zero" 0 (Causalb_clock.Vector_clock.get v 1)

let test_merge_custom_compare () =
  (* reverse label order as the arbitrary-but-deterministic comparator *)
  let released = ref [] in
  let cmp a b = Label.compare (Message.label b) (Message.label a) in
  let m =
    Asend.Merge.create
      ~is_sync:(fun e -> Message.payload e = "sync")
      ~compare:cmp
      ~deliver:(fun e -> released := Message.payload e :: !released)
      ()
  in
  Asend.Merge.on_causal_deliver m (msg ~origin:0 ~seq:0 ~dep:Dep.null "a");
  Asend.Merge.on_causal_deliver m (msg ~origin:1 ~seq:0 ~dep:Dep.null "b");
  Asend.Merge.on_causal_deliver m (msg ~origin:2 ~seq:0 ~dep:Dep.null "sync");
  Alcotest.(check (list string)) "reverse order then sync"
    [ "b"; "a"; "sync" ]
    (List.rev !released)

let test_rgroup_gives_up_without_retries () =
  (* max_retries:0 means the first failed probe abandons the label *)
  let e = Engine.create ~seed:49 () in
  let net = Net.create e ~nodes:3 ~fault:(Fault.make ~drop_prob:1.0 ()) () in
  let g = Rgroup.create net ~max_retries:0 () in
  (* b names a; a's copies are all dropped, so b blocks and the chase
     gives up immediately *)
  let a = Rgroup.osend g ~src:0 ~dep:Dep.null "a" in
  Net.set_fault net Fault.none;
  ignore (Rgroup.osend g ~src:0 ~dep:(Dep.after a) "b");
  Engine.run e;
  check "gave up somewhere" true (Rgroup.unrecoverable g > 0)

let test_group_sent_count () =
  let e, g = make_group () in
  ignore (Group.osend g ~src:0 ~dep:Dep.null "x");
  ignore (Group.osend g ~src:1 ~dep:Dep.null "y");
  Engine.run e;
  check_int "sent" 2 (Group.sent_count g);
  check_int "no ancestors named" 0 (Group.ancestors_named g)

let test_stable_points_window_sets () =
  let t = Stable_points.create ~classify () in
  Stable_points.on_deliver t (msg ~origin:0 ~seq:0 ~dep:Dep.null "c1");
  Stable_points.on_deliver t (msg ~origin:1 ~seq:0 ~dep:Dep.null "s");
  Stable_points.on_deliver t (msg ~origin:0 ~seq:1 ~dep:Dep.null "c2");
  Stable_points.on_deliver t (msg ~origin:1 ~seq:1 ~dep:Dep.null "s2");
  let sets = Stable_points.window_sets t in
  check_int "two closed windows" 2 (List.length sets);
  check "first window = {c1}" true
    (Label.Set.equal (List.hd sets) (Label.Set.singleton (l 0 0)))

(* --- Checker --- *)

let test_checker_same_set () =
  let a = [ l 0 0; l 1 0 ] and b = [ l 1 0; l 0 0 ] in
  check "permuted ok" true (Checker.same_set [ a; b ]);
  check "missing detected" false (Checker.same_set [ a; [ l 0 0 ] ]);
  check "duplicate detected" false (Checker.same_set [ a; [ l 0 0; l 0 0 ] ])

let test_checker_identical () =
  let a = [ l 0 0; l 1 0 ] in
  check "same" true (Checker.identical_orders [ a; a ]);
  check "permuted not identical" false
    (Checker.identical_orders [ a; List.rev a ])

let test_checker_violations () =
  let g = Depgraph.create () in
  let a = l 0 0 and b = l 1 0 in
  Depgraph.add g a ~dep:Dep.null;
  Depgraph.add g b ~dep:(Dep.after a);
  check_int "clean" 0 (List.length (Checker.violations g [ a; b ]));
  let v = Checker.violations g [ b; a ] in
  check_int "one violation" 1 (List.length v);
  check "pair" true
    (match v with
    | [ (x, y) ] -> Label.equal x a && Label.equal y b
    | _ -> false)

let test_checker_windows_agree () =
  let s1 = Label.Set.of_list [ l 0 0 ] and s2 = Label.Set.of_list [ l 1 0 ] in
  check "prefix ok" true (Checker.windows_agree [ [ s1; s2 ]; [ s1 ] ]);
  check "mismatch" false (Checker.windows_agree [ [ s1 ]; [ s2 ] ])

let () =
  Alcotest.run "core"
    [
      ( "osend",
        [
          Alcotest.test_case "null immediate" `Quick test_osend_null_immediate;
          Alcotest.test_case "blocks until dep" `Quick test_osend_blocks_until_dep;
          Alcotest.test_case "AND dependency" `Quick test_osend_and_dependency;
          Alcotest.test_case "OR dependency" `Quick test_osend_or_dependency;
          Alcotest.test_case "duplicate suppression" `Quick
            test_osend_duplicate_suppression;
          Alcotest.test_case "deep cascade" `Quick test_osend_deep_cascade;
          Alcotest.test_case "callback order" `Quick
            test_osend_delivery_callback_order;
          Alcotest.test_case "graph extraction" `Quick test_osend_graph_extraction;
        ] );
      ( "group",
        [
          Alcotest.test_case "broadcast everywhere" `Quick
            test_group_broadcast_delivers_everywhere;
          Alcotest.test_case "causal chain" `Quick test_group_causal_chain_respected;
          Alcotest.test_case "concurrent orders differ safely" `Quick
            test_group_concurrent_orders_may_differ_but_safe;
          Alcotest.test_case "fig2 scenario" `Quick test_group_fig2_scenario;
          Alcotest.test_case "loss: safety" `Quick
            test_group_under_message_loss_safety;
          Alcotest.test_case "duplicates harmless" `Quick
            test_group_duplicates_are_harmless;
        ] );
      ( "bss",
        [
          Alcotest.test_case "basic delivery" `Quick test_bss_basic_delivery;
          Alcotest.test_case "inferred causal order" `Quick
            test_bss_causal_order_inferred;
          Alcotest.test_case "fifo per sender" `Quick test_bss_fifo_per_sender;
          Alcotest.test_case "buffered counter" `Quick test_bss_buffered_counter;
          Alcotest.test_case "same set" `Quick test_bss_same_set_everywhere;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "per-sender order" `Quick test_fifo_per_sender_order;
          Alcotest.test_case "no cross-sender constraint" `Quick
            test_fifo_no_cross_sender_constraint;
        ] );
      ( "asend",
        [
          Alcotest.test_case "merge identical batches" `Quick
            test_asend_merge_identical_batches;
          Alcotest.test_case "merge buffers" `Quick
            test_asend_merge_buffers_without_sync;
          Alcotest.test_case "counted batches" `Quick test_asend_counted_batches;
          Alcotest.test_case "counted multiple" `Quick
            test_asend_counted_multiple_batches;
          Alcotest.test_case "sequencer total order" `Quick
            test_asend_sequencer_total_order;
          Alcotest.test_case "timestamp total order" `Quick
            test_asend_timestamp_total_order;
          Alcotest.test_case "timestamp causality" `Quick
            test_asend_timestamp_causality_consistent;
          Alcotest.test_case "timestamp two nodes" `Quick
            test_asend_timestamp_two_nodes;
        ] );
      ( "rgroup",
        [
          Alcotest.test_case "no loss, no nacks" `Quick test_rgroup_no_loss_no_nacks;
          Alcotest.test_case "chain under 30% loss" `Quick
            test_rgroup_recovers_chain_under_loss;
          Alcotest.test_case "concurrent traffic gaps" `Quick
            test_rgroup_recovers_concurrent_traffic;
          Alcotest.test_case "50% loss" `Quick
            test_rgroup_heavy_loss_eventual_delivery;
          Alcotest.test_case "duplicates + loss" `Quick
            test_rgroup_duplicates_and_loss;
          Alcotest.test_case "partition heal" `Quick
            test_rgroup_heals_after_partition;
          Alcotest.test_case "gc prunes stash" `Quick test_rgroup_gc_prunes_stash;
          Alcotest.test_case "gc safe under loss" `Quick
            test_rgroup_gc_safe_under_loss;
        ] );
      ( "psync",
        [
          Alcotest.test_case "context chain" `Quick test_psync_context_chain;
          Alcotest.test_case "cross-node context" `Quick
            test_psync_cross_node_context;
          Alcotest.test_case "concurrent merge" `Quick
            test_psync_concurrent_sends_merge;
          Alcotest.test_case "set + safety" `Quick test_psync_same_set_and_safety;
          Alcotest.test_case "potential-causality waits" `Quick
            test_psync_inherits_potential_causality_waits;
        ] );
      ( "stable-points",
        [
          Alcotest.test_case "windows" `Quick test_stable_points_windows;
          Alcotest.test_case "deferred" `Quick test_stable_points_deferred;
          Alcotest.test_case "open window" `Quick test_stable_points_open_window;
        ] );
      ( "odds-and-ends",
        [
          Alcotest.test_case "message map/pp" `Quick test_message_map_and_pp;
          Alcotest.test_case "blocked_on OR" `Quick test_osend_blocked_on_any;
          Alcotest.test_case "bss clock" `Quick test_bss_clock_exposed;
          Alcotest.test_case "merge custom compare" `Quick
            test_merge_custom_compare;
          Alcotest.test_case "rgroup gives up" `Quick
            test_rgroup_gives_up_without_retries;
          Alcotest.test_case "group counters" `Quick test_group_sent_count;
          Alcotest.test_case "window sets" `Quick test_stable_points_window_sets;
        ] );
      ( "checker",
        [
          Alcotest.test_case "same set" `Quick test_checker_same_set;
          Alcotest.test_case "identical" `Quick test_checker_identical;
          Alcotest.test_case "violations" `Quick test_checker_violations;
          Alcotest.test_case "windows agree" `Quick test_checker_windows_agree;
        ] );
    ]
