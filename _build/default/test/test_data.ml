(* Tests for the shared-data framework: state machines, datatypes,
   replicas, the §6.1 front-end, consistency checkers, and the assembled
   Service. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Message = Causalb_core.Message
module Group = Causalb_core.Group
module Net = Causalb_net.Net
module Op = Causalb_data.Op
module Sm = Causalb_data.State_machine
module Dt = Causalb_data.Datatypes
module Replica = Causalb_data.Replica
module Frontend = Causalb_data.Frontend
module Consistency = Causalb_data.Consistency
module Service = Causalb_data.Service
module Stats = Causalb_util.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let l origin seq = Label.make ~origin ~seq ()

let msg ~origin ~seq ~dep payload =
  Message.make ~label:(l origin seq) ~sender:origin ~dep payload

(* --- State machines & datatypes --- *)

let test_int_register_semantics () =
  let m = Dt.Int_register.machine in
  let s = Sm.run m [ Dt.Int_register.Inc 5; Dt.Int_register.Dec 2 ] in
  check_int "5-2" 3 s;
  check_int "set overwrites" 9 (m.Sm.apply s (Dt.Int_register.Set 9));
  check_int "read is identity" 3 (m.Sm.apply s Dt.Int_register.Read)

let test_int_register_kinds () =
  let m = Dt.Int_register.machine in
  check "inc commutative" true (m.Sm.kind (Dt.Int_register.Inc 1) = Op.Commutative);
  check "dec commutative" true (m.Sm.kind (Dt.Int_register.Dec 1) = Op.Commutative);
  check "set sync" true (m.Sm.kind (Dt.Int_register.Set 1) = Op.Non_commutative);
  check "read sync" true (m.Sm.kind Dt.Int_register.Read = Op.Non_commutative)

let test_commute_at () =
  let m = Dt.Int_register.machine in
  check "inc/dec commute" true
    (Sm.commute_at m 0 (Dt.Int_register.Inc 3) (Dt.Int_register.Dec 1));
  check "inc/set do not" false
    (Sm.commute_at m 0 (Dt.Int_register.Inc 3) (Dt.Int_register.Set 7))

let test_multi_register () =
  let m = Dt.Multi_register.machine ~items:3 in
  let s = Sm.run m [ Dt.Multi_register.Inc (0, 2); Dt.Multi_register.Inc (2, 5) ] in
  check "independent items" true (s = [| 2; 0; 5 |]);
  check "disjoint ops commute" true
    (Sm.commute_at m m.Sm.init
       (Dt.Multi_register.Set (0, 1))
       (Dt.Multi_register.Set (1, 2)));
  check "same-item sets do not" false
    (Sm.commute_at m m.Sm.init
       (Dt.Multi_register.Set (0, 1))
       (Dt.Multi_register.Set (0, 2)))

let test_kv_store () =
  let m = Dt.Kv_store.machine in
  let s =
    Sm.run m [ Dt.Kv_store.Upd ("a", "1"); Dt.Kv_store.Upd ("b", "2") ]
  in
  check "lookup" true (Dt.Kv_store.lookup s "a" = Some "1");
  check "qry identity" true
    (m.Sm.equal s (m.Sm.apply s (Dt.Kv_store.Qry "a")));
  let s' = m.Sm.apply s (Dt.Kv_store.Del "a") in
  check "del" true (Dt.Kv_store.lookup s' "a" = None);
  check "qry commutative" true (m.Sm.kind (Dt.Kv_store.Qry "x") = Op.Commutative);
  check "upd sync" true
    (m.Sm.kind (Dt.Kv_store.Upd ("x", "y")) = Op.Non_commutative)

let test_document () =
  let m = Dt.Document.machine ~sections:2 in
  let s =
    Sm.run m
      [
        Dt.Document.Annotate (0, "n1");
        Dt.Document.Annotate (0, "n2");
        Dt.Document.Annotate (1, "other");
      ]
  in
  check "annotations commute" true
    (Sm.commute_at m m.Sm.init
       (Dt.Document.Annotate (0, "a"))
       (Dt.Document.Annotate (0, "b")));
  check "commit does not commute with annotate" false
    (Sm.commute_at m s
       (Dt.Document.Annotate (0, "late"))
       (Dt.Document.Commit (0, "final")));
  let s' = m.Sm.apply s (Dt.Document.Commit (0, "v1")) in
  check "commit clears notes" true
    (Dt.Document.String_set.is_empty s'.(0).Dt.Document.annotations);
  check "render mentions body" true
    (String.length (Dt.Document.render s') > 0)

let test_log () =
  let m = Dt.Log.machine in
  let e1 = Dt.Log.entry ~author:0 ~seq:0 "hi" in
  let e2 = Dt.Log.entry ~author:1 ~seq:0 "yo" in
  check "appends commute" true
    (Sm.commute_at m m.Sm.init (Dt.Log.Append e1) (Dt.Log.Append e2));
  check "seal does not commute with append" false
    (Sm.commute_at m m.Sm.init (Dt.Log.Append e1) Dt.Log.Seal);
  let s =
    Sm.run m [ Dt.Log.Append e2; Dt.Log.Append e1; Dt.Log.Seal ]
  in
  check "canonical order in sealed segment" true
    (s.Dt.Log.sealed = [ [ e1; e2 ] ]);
  check "open empty after seal" true (s.Dt.Log.open_ = []);
  (* duplicate append is idempotent (set semantics) *)
  let s' = Sm.run m [ Dt.Log.Append e1; Dt.Log.Append e1 ] in
  check_int "dedup" 1 (List.length s'.Dt.Log.open_)

let test_log_service_end_to_end () =
  let e = Engine.create ~seed:39 () in
  let svc =
    Service.create e ~replicas:3 ~machine:Dt.Log.machine
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.2 ())
      ~fifo:false ()
  in
  let seqs = Array.make 3 0 in
  for i = 0 to 40 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.5) (fun () ->
        let src = i mod 3 in
        let op =
          if i mod 12 = 11 then Dt.Log.Seal
          else begin
            let seq = seqs.(src) in
            seqs.(src) <- seq + 1;
            Dt.Log.Append
              (Dt.Log.entry ~author:src ~seq (Printf.sprintf "msg%d" i))
          end
        in
        ignore (Service.submit svc ~src op))
  done;
  Service.run svc;
  List.iter (fun (n, ok) -> check n true ok) (Service.check svc);
  let finals = List.map Replica.stable_state (Service.replicas svc) in
  check "logs agree" true (List.for_all (( = ) (List.hd finals)) finals)

let test_bank_account () =
  let m = Dt.Bank_account.machine in
  let s =
    Sm.run m
      [ Dt.Bank_account.Deposit 100; Dt.Bank_account.Withdraw 30 ]
  in
  check_int "balance" 70 s.Dt.Bank_account.balance;
  check "deposit/withdraw commute" true
    (Sm.commute_at m m.Sm.init (Dt.Bank_account.Deposit 5)
       (Dt.Bank_account.Withdraw 3));
  (* checked withdrawal is order-sensitive near the boundary *)
  check "checked withdraw does not commute with deposit" false
    (Sm.commute_at m m.Sm.init (Dt.Bank_account.Deposit 10)
       (Dt.Bank_account.Withdraw_checked 10));
  let s' = m.Sm.apply m.Sm.init (Dt.Bank_account.Withdraw_checked 10) in
  check_int "rejected on insufficient funds" 1 s'.Dt.Bank_account.rejected;
  check_int "balance unchanged" 0 s'.Dt.Bank_account.balance;
  check "audit sync" true
    (m.Sm.kind Dt.Bank_account.Audit = Op.Non_commutative)

let test_bank_account_service_end_to_end () =
  let e = Engine.create ~seed:37 () in
  let svc =
    Service.create e ~replicas:3 ~machine:Dt.Bank_account.machine
      ~latency:Latency.lan ~fifo:false ()
  in
  for i = 0 to 50 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.5) (fun () ->
        let op =
          if i mod 10 = 9 then Dt.Bank_account.Audit
          else if i mod 2 = 0 then Dt.Bank_account.Deposit 10
          else Dt.Bank_account.Withdraw 4
        in
        ignore (Service.submit svc ~src:(i mod 3) op))
  done;
  Service.run svc;
  List.iter (fun (n, ok) -> check n true ok) (Service.check svc);
  let finals =
    List.map Replica.stable_state (Service.replicas svc)
  in
  check "balances agree" true (List.for_all (( = ) (List.hd finals)) finals)

let test_card_table () =
  let m = Dt.Card_table.machine in
  check "plays commute" true
    (Sm.commute_at m m.Sm.init
       (Dt.Card_table.Play (0, "S2"))
       (Dt.Card_table.Play (1, "H5")));
  let s =
    Sm.run m
      [
        Dt.Card_table.Play (1, "H5");
        Dt.Card_table.Play (0, "S2");
        Dt.Card_table.Round_end;
      ]
  in
  check "round recorded sorted" true
    (s.Dt.Card_table.finished = [ [ (0, "S2"); (1, "H5") ] ]);
  check "table cleared" true (s.Dt.Card_table.table = [])

(* --- Replica --- *)

let int_machine = Dt.Int_register.machine

let test_replica_applies_and_cycles () =
  let r = Replica.create ~id:0 ~machine:int_machine () in
  Replica.on_deliver r (msg ~origin:0 ~seq:0 ~dep:Dep.null (Dt.Int_register.Inc 2));
  Replica.on_deliver r (msg ~origin:1 ~seq:0 ~dep:Dep.null (Dt.Int_register.Inc 3));
  check_int "mid-window state" 5 (Replica.state r);
  check_int "stable state still init" 0 (Replica.stable_state r);
  check_int "no cycle yet" 0 (Replica.cycles_closed r);
  Replica.on_deliver r (msg ~origin:0 ~seq:1 ~dep:Dep.null Dt.Int_register.Read);
  check_int "cycle closed" 1 (Replica.cycles_closed r);
  check_int "stable now 5" 5 (Replica.stable_state r);
  let c = List.hd (Replica.cycles r) in
  check_int "window ops" 2 (List.length c.Replica.window);
  check_int "start state" 0 c.Replica.start_state;
  check_int "end state" 5 c.Replica.end_state

let test_replica_deferred_read () =
  let r = Replica.create ~id:0 ~machine:int_machine () in
  let got = ref None in
  Replica.on_deliver r (msg ~origin:0 ~seq:0 ~dep:Dep.null (Dt.Int_register.Inc 7));
  Replica.read_deferred r (fun s -> got := Some s);
  check_int "pending" 1 (Replica.pending_reads r);
  check "not fired" true (!got = None);
  Replica.on_deliver r (msg ~origin:0 ~seq:1 ~dep:Dep.null Dt.Int_register.Read);
  check "fired with stable value" true (!got = Some 7);
  check_int "drained" 0 (Replica.pending_reads r)

let test_replica_on_stable_callback () =
  let fired = ref [] in
  let r =
    Replica.create ~id:0 ~machine:int_machine
      ~on_stable:(fun c -> fired := c.Replica.index :: !fired)
      ()
  in
  Replica.on_deliver r (msg ~origin:0 ~seq:0 ~dep:Dep.null Dt.Int_register.Read);
  Replica.on_deliver r (msg ~origin:0 ~seq:1 ~dep:Dep.null Dt.Int_register.Read);
  Alcotest.(check (list int)) "cycle indices" [ 0; 1 ] (List.rev !fired)

let test_replica_snapshots () =
  let r = Replica.create ~id:0 ~machine:int_machine () in
  List.iteri
    (fun i op -> Replica.on_deliver r (msg ~origin:0 ~seq:i ~dep:Dep.null op))
    [
      Dt.Int_register.Inc 1;
      Dt.Int_register.Read;
      Dt.Int_register.Inc 2;
      Dt.Int_register.Read;
    ];
  Alcotest.(check (list int)) "snapshot sequence" [ 1; 3 ] (Replica.snapshots r)

(* --- Frontend --- *)

let make_service ?(replicas = 3) ?(latency = Latency.lan) ?fifo ?seed () =
  let e = Engine.create ?seed () in
  let svc = Service.create e ~replicas ~machine:int_machine ~latency ?fifo () in
  (e, svc)

let test_frontend_dep_structure () =
  let e, svc = make_service () in
  let fe = Service.frontend svc in
  let c1 = Service.submit svc ~src:0 (Dt.Int_register.Inc 1) in
  let c2 = Service.submit svc ~src:1 (Dt.Int_register.Inc 2) in
  check_int "window grows" 2 (Frontend.window_size fe);
  let nc = Service.submit svc ~src:2 Dt.Int_register.Read in
  check_int "window reset" 0 (Frontend.window_size fe);
  check "last sync" true
    (match Frontend.last_sync fe with Some s -> Label.equal s nc | None -> false);
  Engine.run e;
  (* the graph extracted at replica 0 must contain the fan shape *)
  let g = Causalb_core.Osend.graph (Group.member (Service.group svc) 0) in
  check "nc after c1" true (Causalb_graph.Depgraph.happens_before g c1 nc);
  check "nc after c2" true (Causalb_graph.Depgraph.happens_before g c2 nc);
  check "c1 || c2" true (Causalb_graph.Depgraph.concurrent g c1 c2)

let test_frontend_nc_after_nc_when_window_empty () =
  let e, svc = make_service () in
  let n1 = Service.submit svc ~src:0 Dt.Int_register.Read in
  let n2 = Service.submit svc ~src:1 Dt.Int_register.Read in
  Engine.run e;
  let g = Causalb_core.Osend.graph (Group.member (Service.group svc) 0) in
  ignore n2;
  (* n2's predicate must name n1 directly *)
  check "chained syncs" true
    (match Causalb_graph.Depgraph.dep_of g (Label.make ~origin:1 ~seq:0 ()) with
    | Causalb_graph.Dep.After x -> Label.equal x n1
    | _ -> false)

let test_frontend_commutative_after_sync () =
  let e, svc = make_service () in
  let fe = Service.frontend svc in
  let nc = Service.submit svc ~src:0 Dt.Int_register.Read in
  let c = Service.submit svc ~src:1 (Dt.Int_register.Inc 1) in
  ignore c;
  check_int "cycles opened" 1 (Frontend.cycles_opened fe);
  Engine.run e;
  let g = Causalb_core.Osend.graph (Group.member (Service.group svc) 0) in
  check "c after nc" true
    (match Causalb_graph.Depgraph.dep_of g (Label.make ~origin:1 ~seq:0 ()) with
    | Causalb_graph.Dep.After x -> Label.equal x nc
    | _ -> false)

(* --- Service end-to-end --- *)

let drive_workload ?(ops = 60) ?(sync_every = 6) e svc =
  let rng = Engine.fork_rng e in
  for i = 0 to ops - 1 do
    let src = i mod Service.size svc in
    let when_ = float_of_int i *. 0.7 in
    Engine.schedule_at e ~time:when_ (fun () ->
        if (i + 1) mod sync_every = 0 then
          ignore (Service.submit svc ~src Dt.Int_register.Read)
        else
          let amount = 1 + Causalb_util.Rng.int rng 5 in
          let op =
            if Causalb_util.Rng.bool rng then Dt.Int_register.Inc amount
            else Dt.Int_register.Dec amount
          in
          ignore (Service.submit svc ~src op))
  done;
  Service.run svc

let test_service_all_checks_pass () =
  let e, svc =
    make_service ~replicas:4
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.0 ())
      ~fifo:false ~seed:17 ()
  in
  drive_workload e svc;
  List.iter
    (fun (name, ok) -> check name true ok)
    (Service.check svc)

let test_service_replicas_converge () =
  let e, svc = make_service ~replicas:3 ~seed:23 () in
  drive_workload e svc;
  let finals = List.map Replica.stable_state (Service.replicas svc) in
  check "all stable states equal" true
    (List.for_all (( = ) (List.hd finals)) finals)

let test_service_latency_metrics_populated () =
  let e, svc = make_service ~seed:29 () in
  drive_workload e svc;
  check "delivery samples" true (Stats.count (Service.delivery_latency svc) > 0);
  check "stability samples" true (Stats.count (Service.stability_latency svc) > 0);
  (* an op can never be stable before it is delivered *)
  check "stability >= delivery (mean)" true
    (Stats.mean (Service.stability_latency svc)
    >= Stats.mean (Service.delivery_latency svc));
  (* one response (at the primary) per op; primary=src co-located, so the
     response is the self-delivery and beats the cross-net mean *)
  check_int "one response per op" 60
    (Stats.count (Service.response_latency svc));
  check "primary response fast" true
    (Stats.mean (Service.response_latency svc)
    <= Stats.mean (Service.delivery_latency svc));
  check "spec size counted" true
    (Group.ancestors_named (Service.group svc) > 0)

let test_service_divergence_mid_window () =
  (* Sample replica states at fine intervals: divergence between stable
     points is expected (> 0) but must vanish at the end. *)
  let e, svc =
    make_service ~replicas:3
      ~latency:(Latency.lognormal ~mu:1.0 ~sigma:1.0 ())
      ~fifo:false ~seed:31 ()
  in
  let samples = ref [] in
  Engine.every e ~period:0.5 ~until:60.0 (fun () ->
      samples := List.map Replica.state (Service.replicas svc) :: !samples);
  drive_workload e svc;
  let frac =
    Consistency.divergence_fraction ~machine:int_machine ~states:!samples
  in
  check "some transient divergence" true (frac > 0.0);
  (* once the run drains, every replica holds the same value again *)
  let finals = List.map Replica.state (Service.replicas svc) in
  check "converged at the end" true
    (List.for_all (( = ) (List.hd finals)) finals)

let test_consistency_detects_divergence () =
  (* Feed two replicas different sync results by hand and check the
     checker notices. *)
  let r0 = Replica.create ~id:0 ~machine:int_machine () in
  let r1 = Replica.create ~id:1 ~machine:int_machine () in
  Replica.on_deliver r0 (msg ~origin:0 ~seq:0 ~dep:Dep.null (Dt.Int_register.Inc 1));
  Replica.on_deliver r1 (msg ~origin:0 ~seq:0 ~dep:Dep.null (Dt.Int_register.Inc 2));
  Replica.on_deliver r0 (msg ~origin:0 ~seq:1 ~dep:Dep.null Dt.Int_register.Read);
  Replica.on_deliver r1 (msg ~origin:0 ~seq:1 ~dep:Dep.null Dt.Int_register.Read);
  check "disagreement found" true
    (Consistency.first_disagreement ~machine:int_machine [ r0; r1 ] = Some 0);
  check "agreement false" false
    (Consistency.agreement_at_stable_points ~machine:int_machine [ r0; r1 ])

let test_consistency_window_sets () =
  let r0 = Replica.create ~id:0 ~machine:int_machine () in
  let r1 = Replica.create ~id:1 ~machine:int_machine () in
  let inc = Dt.Int_register.Inc 1 in
  (* same set, different order *)
  Replica.on_deliver r0 (msg ~origin:0 ~seq:0 ~dep:Dep.null inc);
  Replica.on_deliver r0 (msg ~origin:1 ~seq:0 ~dep:Dep.null inc);
  Replica.on_deliver r1 (msg ~origin:1 ~seq:0 ~dep:Dep.null inc);
  Replica.on_deliver r1 (msg ~origin:0 ~seq:0 ~dep:Dep.null inc);
  Replica.on_deliver r0 (msg ~origin:2 ~seq:0 ~dep:Dep.null Dt.Int_register.Read);
  Replica.on_deliver r1 (msg ~origin:2 ~seq:0 ~dep:Dep.null Dt.Int_register.Read);
  check "window sets agree" true (Consistency.window_sets_agree [ r0; r1 ]);
  check "transition preserving" true
    (Consistency.windows_transition_preserving ~machine:int_machine r0);
  check "serial witness exists" true
    (Consistency.serial_witness ~machine:int_machine r0 <> None)

let test_consistency_non_commutative_window_flagged () =
  (* A window accidentally containing non-commuting ops is not
     transition-preserving; the checker must flag it.  We build it by
     classifying Set as commutative via a custom machine. *)
  let bad_machine =
    Sm.make ~name:"bad" ~init:0
      ~apply:Dt.Int_register.machine.Sm.apply
      ~kind:(fun op ->
        match op with Dt.Int_register.Read -> Op.Non_commutative | _ -> Op.Commutative)
      ~equal:Int.equal ()
  in
  let r = Replica.create ~id:0 ~machine:bad_machine () in
  Replica.on_deliver r (msg ~origin:0 ~seq:0 ~dep:Dep.null (Dt.Int_register.Inc 1));
  Replica.on_deliver r (msg ~origin:1 ~seq:0 ~dep:Dep.null (Dt.Int_register.Set 9));
  Replica.on_deliver r (msg ~origin:0 ~seq:1 ~dep:Dep.null Dt.Int_register.Read);
  check "flagged" false
    (Consistency.windows_transition_preserving ~machine:bad_machine r)

(* --- Item_frontend: the §5.1 per-item decomposition --- *)

module Item_frontend = Causalb_data.Item_frontend

let mr_machine = Dt.Multi_register.machine ~items:3

let mr_scope = function
  | Dt.Multi_register.Inc (i, _) | Dt.Multi_register.Dec (i, _)
  | Dt.Multi_register.Set (i, _) ->
    Item_frontend.Item i
  | Dt.Multi_register.Read_all -> Item_frontend.Global

let make_item_fe ?seed () =
  let e = Engine.create ?seed () in
  let net =
    Net.create e ~nodes:3
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.0 ())
      ~fifo:false ()
  in
  let group = Group.create net () in
  let fe =
    Item_frontend.create group ~kind:mr_machine.Sm.kind ~scope:mr_scope ()
  in
  (e, group, fe)

let test_item_fe_independent_windows () =
  let e, group, fe = make_item_fe ~seed:71 () in
  let c0 = Item_frontend.submit fe ~src:0 (Dt.Multi_register.Inc (0, 1)) in
  let c1 = Item_frontend.submit fe ~src:1 (Dt.Multi_register.Inc (1, 1)) in
  check_int "window 0" 1 (Item_frontend.open_window fe ~item:0);
  check_int "window 1" 1 (Item_frontend.open_window fe ~item:1);
  (* sync on item 0 closes only item 0's window *)
  let s0 = Item_frontend.submit fe ~src:2 (Dt.Multi_register.Set (0, 9)) in
  check_int "window 0 closed" 0 (Item_frontend.open_window fe ~item:0);
  check_int "window 1 open" 1 (Item_frontend.open_window fe ~item:1);
  Engine.run e;
  let g = Causalb_core.Osend.graph (Group.member group 0) in
  check "set0 after inc0" true (Causalb_graph.Depgraph.happens_before g c0 s0);
  check "set0 not after inc1" true (Causalb_graph.Depgraph.concurrent g c1 s0)

let test_item_fe_global_sync_closes_everything () =
  let e, group, fe = make_item_fe ~seed:72 () in
  let c0 = Item_frontend.submit fe ~src:0 (Dt.Multi_register.Inc (0, 1)) in
  let c1 = Item_frontend.submit fe ~src:1 (Dt.Multi_register.Inc (1, 1)) in
  let r = Item_frontend.submit fe ~src:2 Dt.Multi_register.Read_all in
  check_int "all windows reset" 0 (Item_frontend.items_tracked fe);
  (* ops after the global sync anchor on it *)
  let c2 = Item_frontend.submit fe ~src:0 (Dt.Multi_register.Inc (2, 1)) in
  Engine.run e;
  let g = Causalb_core.Osend.graph (Group.member group 1) in
  check "read after inc0" true (Causalb_graph.Depgraph.happens_before g c0 r);
  check "read after inc1" true (Causalb_graph.Depgraph.happens_before g c1 r);
  check "later op after read" true (Causalb_graph.Depgraph.happens_before g r c2)

let test_item_fe_per_item_agreement () =
  (* at an item sync, the synced item's value is identical at all
     replicas even though other items' mid-window values may differ *)
  let e, group, fe = make_item_fe ~seed:73 () in
  let states = Array.init 3 (fun _ -> ref mr_machine.Sm.init) in
  (* per sync label, the projected item value at each replica *)
  let snaps : (Label.t * int * int) list ref = ref [] in
  let net_group_deliver ~node ~time:_ msg =
    let op = Causalb_core.Message.payload msg in
    states.(node) := mr_machine.Sm.apply !(states.(node)) op;
    match op with
    | Dt.Multi_register.Set (i, _) ->
      snaps := (Causalb_core.Message.label msg, node, !(states.(node)).(i)) :: !snaps
    | _ -> ()
  in
  (* rewire: build a fresh group with the delivery hook *)
  ignore group;
  let e2 = Engine.create ~seed:73 () in
  let net2 =
    Net.create e2 ~nodes:3
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.0 ())
      ~fifo:false ()
  in
  let group2 = Group.create net2 ~on_deliver:net_group_deliver () in
  let fe2 =
    Item_frontend.create group2 ~kind:mr_machine.Sm.kind ~scope:mr_scope ()
  in
  ignore (e, fe);
  let rng = Engine.fork_rng e2 in
  for i = 0 to 59 do
    Engine.schedule_at e2 ~time:(float_of_int i *. 0.4) (fun () ->
        let item = Causalb_util.Rng.int rng 3 in
        let op =
          if i mod 9 = 8 then Dt.Multi_register.Set (item, i)
          else Dt.Multi_register.Inc (item, 1)
        in
        ignore (Item_frontend.submit fe2 ~src:(i mod 3) op))
  done;
  Engine.run e2;
  (* group snaps by label: the projected value must agree across nodes *)
  let by_label = Hashtbl.create 16 in
  List.iter
    (fun (l, _, v) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_label l) in
      Hashtbl.replace by_label l (v :: prev))
    !snaps;
  Hashtbl.iter
    (fun _ vs ->
      check "item value agrees at its sync" true
        (match vs with [] -> true | v :: rest -> List.for_all (( = ) v) rest))
    by_label;
  check "some syncs happened" true (Hashtbl.length by_label > 0);
  (* final states converge (everything delivered everywhere) *)
  let finals = Array.to_list (Array.map (fun r -> !r) states) in
  check "final equal" true (List.for_all (( = ) (List.hd finals)) finals)

(* --- Dservice: the access protocol over dynamic membership --- *)

module Dservice = Causalb_data.Dservice

let make_dservice ?(nodes = 5) ?(initial = [ 0; 1; 2 ]) ?seed () =
  let e = Engine.create ?seed () in
  let svc =
    Dservice.create e ~nodes ~initial ~machine:int_machine
      ~latency:(Latency.lognormal ~mu:0.4 ~sigma:0.9 ())
      ()
  in
  (e, svc)

let test_dservice_static () =
  let e, svc = make_dservice ~seed:61 () in
  for i = 0 to 30 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.6) (fun () ->
        let op =
          if i mod 8 = 7 then Dt.Int_register.Read else Dt.Int_register.Inc 1
        in
        Dservice.submit svc ~src:(i mod 3) op)
  done;
  Dservice.run svc;
  List.iter (fun (n, ok) -> check n true ok) (Dservice.check svc);
  check_int "all applied at node 0" 31 (Dservice.applied_count svc 0)

let test_dservice_join_catches_up () =
  let e, svc = make_dservice ~seed:62 () in
  for i = 0 to 9 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.6) (fun () ->
        Dservice.submit svc ~src:(i mod 3) (Dt.Int_register.Inc 1))
  done;
  Engine.schedule_at e ~time:20.0 (fun () -> Dservice.join svc ~node:3);
  Engine.schedule_at e ~time:60.0 (fun () ->
      Dservice.submit svc ~src:3 (Dt.Int_register.Inc 5));
  Engine.schedule_at e ~time:80.0 (fun () ->
      Dservice.submit svc ~src:0 Dt.Int_register.Read);
  Dservice.run svc;
  List.iter (fun (n, ok) -> check n true ok) (Dservice.check svc);
  check "joiner is member" true (Dservice.is_member svc 3);
  check_int "joiner state = 10 + 5" 15 (Dservice.state svc 3);
  check_int "old member agrees" 15 (Dservice.state svc 0)

let test_dservice_leave () =
  let e, svc = make_dservice ~seed:63 () in
  Engine.schedule_at e ~time:1.0 (fun () ->
      Dservice.submit svc ~src:0 (Dt.Int_register.Inc 3));
  Engine.schedule_at e ~time:15.0 (fun () -> Dservice.leave svc ~node:2);
  Engine.schedule_at e ~time:40.0 (fun () ->
      Dservice.submit svc ~src:1 (Dt.Int_register.Inc 4));
  Dservice.run svc;
  List.iter (fun (n, ok) -> check n true ok) (Dservice.check svc);
  check "2 left" false (Dservice.is_member svc 2);
  check_int "survivors have both ops" 7 (Dservice.state svc 0);
  check_int "leaver kept only pre-leave ops" 3 (Dservice.state svc 2)

let test_dservice_submissions_race_view_change () =
  (* ops submitted while the change is in flight are parked and re-issued;
     nothing is lost *)
  let e, svc = make_dservice ~seed:64 () in
  for i = 0 to 29 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.5) (fun () ->
        let src = i mod 3 in
        if Dservice.is_member svc src then
          Dservice.submit svc ~src (Dt.Int_register.Inc 1))
  done;
  Engine.schedule_at e ~time:5.0 (fun () -> Dservice.join svc ~node:3);
  Engine.schedule_at e ~time:9.0 (fun () -> Dservice.join svc ~node:4);
  Dservice.run svc;
  List.iter (fun (n, ok) -> check n true ok) (Dservice.check svc);
  check_int "no op lost" 30 (Dservice.state svc 0)

let test_dservice_stable_snapshots_under_churn () =
  let e, svc = make_dservice ~nodes:6 ~initial:[ 0; 1; 2; 3 ] ~seed:65 () in
  for i = 0 to 49 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.5) (fun () ->
        let src = i mod 4 in
        if Dservice.is_member svc src then
          let op =
            if i mod 10 = 9 then Dt.Int_register.Read
            else Dt.Int_register.Inc 1
          in
          Dservice.submit svc ~src op)
  done;
  Engine.schedule_at e ~time:8.0 (fun () -> Dservice.join svc ~node:4);
  Engine.schedule_at e ~time:16.0 (fun () -> Dservice.leave svc ~node:1);
  Dservice.run svc;
  List.iter (fun (n, ok) -> check n true ok) (Dservice.check svc)

(* --- Workflow --- *)

module Workflow = Causalb_data.Workflow

let diamond =
  [
    Workflow.step "open" ~src:0 Dt.Int_register.Read;
    Workflow.step "left" ~src:1 ~after:[ "open" ] (Dt.Int_register.Inc 1);
    Workflow.step "right" ~src:2 ~after:[ "open" ] (Dt.Int_register.Inc 2);
    Workflow.step "close" ~src:0
      ~after:[ "left"; "right" ]
      Dt.Int_register.Read;
  ]

let test_workflow_graph () =
  let g = Workflow.graph_of diamond in
  check_int "four nodes" 4 (Causalb_graph.Depgraph.size g);
  check_int "two linearizations" 2
    (Causalb_graph.Depgraph.count_linearizations g);
  check_int "two sync points... plus none concurrent with all" 2
    (List.length (Causalb_graph.Depgraph.sync_points g))

let test_workflow_submit_end_to_end () =
  let e, svc =
    make_service ~replicas:3
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.2 ())
      ~fifo:false ~seed:51 ()
  in
  let labels = Workflow.submit (Service.group svc) diamond in
  Engine.run e;
  check_int "all named" 4 (List.length labels);
  let open_l = List.assoc "open" labels in
  let close_l = List.assoc "close" labels in
  List.iter
    (fun r ->
      match Replica.applied r with
      | [ first; _; _; last ] ->
        check "open first" true (Label.equal first open_l);
        check "close last" true (Label.equal last close_l)
      | other ->
        Alcotest.failf "expected 4 applied ops, got %d" (List.length other))
    (Service.replicas svc)

let test_workflow_validation () =
  let dup =
    [
      Workflow.step "a" ~src:0 Dt.Int_register.Read;
      Workflow.step "a" ~src:0 Dt.Int_register.Read;
    ]
  in
  check "duplicate rejected" true
    (try
       ignore (Workflow.graph_of dup);
       false
     with Invalid_argument _ -> true);
  let dangling = [ Workflow.step "a" ~src:0 ~after:[ "ghost" ] Dt.Int_register.Read ] in
  check "dangling rejected" true
    (try
       ignore (Workflow.graph_of dangling);
       false
     with Invalid_argument _ -> true);
  let cyclic =
    [
      Workflow.step "a" ~src:0 ~after:[ "b" ] Dt.Int_register.Read;
      Workflow.step "b" ~src:0 ~after:[ "a" ] Dt.Int_register.Read;
    ]
  in
  check "cycle rejected" true
    (try
       ignore (Workflow.graph_of cyclic);
       false
     with Invalid_argument _ -> true)

let test_workflow_order_independent_declaration () =
  (* Steps may be declared in any order; submit sorts them itself. *)
  let shuffled = List.rev diamond in
  let e, svc = make_service ~seed:53 () in
  let labels = Workflow.submit (Service.group svc) shuffled in
  Engine.run e;
  check_int "submitted all" 4 (List.length labels);
  List.iter (fun (n, ok) -> check n true ok) (Service.check svc)

let () =
  Alcotest.run "data"
    [
      ( "datatypes",
        [
          Alcotest.test_case "int register" `Quick test_int_register_semantics;
          Alcotest.test_case "int register kinds" `Quick test_int_register_kinds;
          Alcotest.test_case "commute_at" `Quick test_commute_at;
          Alcotest.test_case "multi register" `Quick test_multi_register;
          Alcotest.test_case "kv store" `Quick test_kv_store;
          Alcotest.test_case "document" `Quick test_document;
          Alcotest.test_case "log" `Quick test_log;
          Alcotest.test_case "log e2e" `Quick test_log_service_end_to_end;
          Alcotest.test_case "bank account" `Quick test_bank_account;
          Alcotest.test_case "bank account e2e" `Quick
            test_bank_account_service_end_to_end;
          Alcotest.test_case "card table" `Quick test_card_table;
        ] );
      ( "replica",
        [
          Alcotest.test_case "applies and cycles" `Quick
            test_replica_applies_and_cycles;
          Alcotest.test_case "deferred read" `Quick test_replica_deferred_read;
          Alcotest.test_case "on_stable callback" `Quick
            test_replica_on_stable_callback;
          Alcotest.test_case "snapshots" `Quick test_replica_snapshots;
        ] );
      ( "frontend",
        [
          Alcotest.test_case "dep structure" `Quick test_frontend_dep_structure;
          Alcotest.test_case "nc chains" `Quick
            test_frontend_nc_after_nc_when_window_empty;
          Alcotest.test_case "commutative after sync" `Quick
            test_frontend_commutative_after_sync;
        ] );
      ( "service",
        [
          Alcotest.test_case "all checks pass" `Quick test_service_all_checks_pass;
          Alcotest.test_case "replicas converge" `Quick test_service_replicas_converge;
          Alcotest.test_case "latency metrics" `Quick
            test_service_latency_metrics_populated;
          Alcotest.test_case "mid-window divergence" `Quick
            test_service_divergence_mid_window;
        ] );
      ( "item-frontend",
        [
          Alcotest.test_case "independent windows" `Quick
            test_item_fe_independent_windows;
          Alcotest.test_case "global sync" `Quick
            test_item_fe_global_sync_closes_everything;
          Alcotest.test_case "per-item agreement" `Quick
            test_item_fe_per_item_agreement;
        ] );
      ( "dservice",
        [
          Alcotest.test_case "static" `Quick test_dservice_static;
          Alcotest.test_case "join catches up" `Quick
            test_dservice_join_catches_up;
          Alcotest.test_case "leave" `Quick test_dservice_leave;
          Alcotest.test_case "race view change" `Quick
            test_dservice_submissions_race_view_change;
          Alcotest.test_case "snapshots under churn" `Quick
            test_dservice_stable_snapshots_under_churn;
        ] );
      ( "workflow",
        [
          Alcotest.test_case "graph" `Quick test_workflow_graph;
          Alcotest.test_case "submit e2e" `Quick test_workflow_submit_end_to_end;
          Alcotest.test_case "validation" `Quick test_workflow_validation;
          Alcotest.test_case "declaration order" `Quick
            test_workflow_order_independent_declaration;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "detects divergence" `Quick
            test_consistency_detects_divergence;
          Alcotest.test_case "window sets" `Quick test_consistency_window_sets;
          Alcotest.test_case "non-commutative window flagged" `Quick
            test_consistency_non_commutative_window_flagged;
        ] );
    ]
