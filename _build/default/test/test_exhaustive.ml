(* Exhaustive schedule exploration on small instances.

   The random/property tests sample arrival orders; here we enumerate
   EVERY permutation of message arrivals for a family of small dependency
   graphs and assert, for each schedule:

   - the OSend engine delivers every message (liveness given complete
     arrival);
   - the delivery order is a linear extension of the graph (safety);
   - the extracted dependency graph is identical regardless of schedule
     (stable information);
   - two members fed different schedules agree on the delivered set, and
     their states agree after the closing sync for transition-preserving
     ops (stable point).

   Factorials are kept small (≤ 6 messages → ≤ 720 schedules/graph). *)

module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Message = Causalb_core.Message
module Osend = Causalb_core.Osend
module Checker = Causalb_core.Checker

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let l i = Label.make ~origin:(i mod 3) ~seq:(i / 3) ()

(* graph families: (name, deps per message index) *)
let families =
  [
    ("chain5", [ []; [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]);
    ("fan", [ []; [ 0 ]; [ 0 ]; [ 0 ]; [ 1; 2; 3 ] ]);
    ("diamond", [ []; [ 0 ]; [ 0 ]; [ 1; 2 ] ]);
    ("two-chains", [ []; [ 0 ]; []; [ 2 ]; [ 1; 3 ] ]);
    ("independent4", [ []; []; []; [] ]);
    ("vee", [ []; []; [ 0; 1 ] ]);
    ("w-shape", [ []; []; [ 0; 1 ]; [ 1 ]; [ 2; 3 ] ]);
    ("independent3", [ []; []; [] ]);
  ]

let messages_of deps =
  List.mapi
    (fun i d ->
      Message.make ~label:(l i) ~sender:(i mod 3)
        ~dep:(Dep.after_all (List.map l d))
        i)
    deps

let graph_of deps =
  let g = Depgraph.create () in
  List.iteri
    (fun i d -> Depgraph.add g (l i) ~dep:(Dep.after_all (List.map l d)))
    deps;
  g

(* index-based so that equal elements (duplicate arrivals) are permuted
   as distinct events *)
let permutations items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let rec perms remaining =
    match remaining with
    | [] -> [ [] ]
    | _ ->
      List.concat_map
        (fun i ->
          let rest = List.filter (( <> ) i) remaining in
          List.map (fun p -> i :: p) (perms rest))
        remaining
  in
  List.map (fun ixs -> List.map (Array.get arr) ixs) (perms (List.init n Fun.id))

let edges_sorted g = List.sort compare (Depgraph.edges g)

let test_family (name, deps) () =
  let msgs = messages_of deps in
  let truth = graph_of deps in
  let n = List.length deps in
  let schedules = permutations msgs in
  check_int
    (Printf.sprintf "%s: n! schedules" name)
    (List.fold_left ( * ) 1 (List.init n (fun i -> i + 1)))
    (List.length schedules);
  let reference_edges = edges_sorted truth in
  List.iter
    (fun schedule ->
      let m = Osend.create ~id:0 () in
      List.iter (Osend.receive m) schedule;
      check (name ^ ": all delivered") true (Osend.delivered_count m = n);
      check (name ^ ": no pending") true (Osend.pending_count m = 0);
      check
        (name ^ ": valid extension")
        true
        (Checker.causal_safety truth (Osend.delivered_order m));
      check
        (name ^ ": stable graph")
        true
        (edges_sorted (Osend.graph m) = reference_edges))
    schedules

(* Stable-point agreement across ALL pairs of schedules: applying the
   delivered orders of two differently-scheduled members to commutative
   ops reaches the same final state. *)
let test_stable_point_agreement_exhaustive () =
  (* fan: m0 -> ||{m1,m2,m3} -> m4 with integer increments *)
  let deps = [ []; [ 0 ]; [ 0 ]; [ 0 ]; [ 1; 2; 3 ] ] in
  let msgs = messages_of deps in
  let weight i = (i + 1) * 10 in
  let apply s lbl =
    (* opening and closing are syncs (identity); interior adds weight *)
    let i =
      (Label.origin lbl * 1) + (Label.seq lbl * 3)
      (* inverse of l: origin = i mod 3, seq = i / 3 *)
    in
    if i = 0 || i = 4 then s else s + weight i
  in
  let finals =
    List.map
      (fun schedule ->
        let m = Osend.create ~id:0 () in
        List.iter (Osend.receive m) schedule;
        List.fold_left apply 0 (Osend.delivered_order m))
      (permutations msgs)
  in
  check "every schedule reaches the same stable state" true
    (List.for_all (( = ) (List.hd finals)) finals)

(* OR-dependency exhaustively: c waits for a OR b; in every schedule c is
   delivered after at least one of them. *)
let test_or_dependency_exhaustive () =
  let a = l 0 and b = l 1 and c = l 2 in
  let msgs =
    [
      Message.make ~label:a ~sender:0 ~dep:Dep.null "a";
      Message.make ~label:b ~sender:1 ~dep:Dep.null "b";
      Message.make ~label:c ~sender:2 ~dep:(Dep.after_any [ a; b ]) "c";
    ]
  in
  List.iter
    (fun schedule ->
      let m = Osend.create ~id:0 () in
      List.iter (Osend.receive m) schedule;
      check_int "all three delivered" 3 (Osend.delivered_count m);
      let order = Osend.delivered_order m in
      let pos x =
        Option.get (List.find_index (Label.equal x) order)
      in
      check "c after a or after b" true (pos c > pos a || pos c > pos b))
    (permutations msgs)

(* Duplicated arrivals interleaved exhaustively for a small chain: each
   message arrives twice in every possible relative order of 4 events. *)
let test_duplicates_exhaustive () =
  let a =
    Message.make ~label:(l 0) ~sender:0 ~dep:Dep.null "a"
  in
  let b =
    Message.make ~label:(l 1) ~sender:1 ~dep:(Dep.after (l 0)) "b"
  in
  List.iter
    (fun schedule ->
      let m = Osend.create ~id:0 () in
      List.iter (Osend.receive m) schedule;
      check_int "delivered exactly twice total" 2 (Osend.delivered_count m);
      check "order a,b" true
        (List.map Label.name (Osend.delivered_order m) = [ "m0.0"; "m1.0" ]))
    (permutations [ a; a; b; b ])

let () =
  Alcotest.run "exhaustive"
    [
      ( "schedules",
        List.map
          (fun family ->
            Alcotest.test_case (fst family) `Quick (test_family family))
          families );
      ( "invariants",
        [
          Alcotest.test_case "stable point agreement" `Quick
            test_stable_point_agreement_exhaustive;
          Alcotest.test_case "OR dependency" `Quick test_or_dependency_exhaustive;
          Alcotest.test_case "duplicates" `Quick test_duplicates_exhaustive;
        ] );
    ]
