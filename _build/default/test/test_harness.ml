(* Tests for the experiment harness drivers: the quantitative claims in
   EXPERIMENTS.md rest on these being correct and deterministic. *)

module Drivers = Causalb_harness.Drivers
module Stats = Causalb_util.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small = { Drivers.ops = 60; spacing = 0.5; mix = Drivers.Random 0.9 }

let test_causal_driver_sound () =
  let r = Drivers.run_causal ~seed:5 ~replicas:4 small in
  check "checks ok" true r.Drivers.checks_ok;
  (* ops+1 submissions × 4 replicas deliveries *)
  check_int "delivery samples" ((small.Drivers.ops + 1) * 4)
    (Stats.count r.Drivers.delivery);
  check "cycles closed" true (r.Drivers.cycles > 0);
  check "positive makespan" true (r.Drivers.sim_time > 0.0)

let test_merge_driver_sound () =
  let r = Drivers.run_merge ~seed:5 ~replicas:4 small in
  check "identical total orders" true r.Drivers.checks_ok;
  check_int "all released everywhere" ((small.Drivers.ops + 1) * 4)
    (Stats.count r.Drivers.delivery)

let test_sequencer_driver_sound () =
  let r = Drivers.run_sequencer ~seed:5 ~replicas:4 small in
  check "identical orders" true r.Drivers.checks_ok;
  check_int "all delivered" ((small.Drivers.ops + 1) * 4)
    (Stats.count r.Drivers.delivery)

let test_timestamp_driver_sound () =
  let r = Drivers.run_timestamp ~seed:5 ~replicas:4 small in
  check "identical orders" true r.Drivers.checks_ok;
  check_int "all delivered" ((small.Drivers.ops + 1) * 4)
    (Stats.count r.Drivers.delivery)

let test_drivers_deterministic () =
  let a = Drivers.run_causal ~seed:9 ~replicas:3 small in
  let b = Drivers.run_causal ~seed:9 ~replicas:3 small in
  check "same mean" true
    (Stats.mean a.Drivers.delivery = Stats.mean b.Drivers.delivery);
  check "same messages" true (a.Drivers.messages = b.Drivers.messages);
  let c = Drivers.run_causal ~seed:10 ~replicas:3 small in
  check "different seed differs" true
    (Stats.mean a.Drivers.delivery <> Stats.mean c.Drivers.delivery)

let test_headline_ordering_holds () =
  (* the T1 headline on a small instance: causal < both total orders *)
  let causal = Drivers.run_causal ~seed:11 ~replicas:5 small in
  let seq = Drivers.run_sequencer ~seed:11 ~replicas:5 small in
  let merge = Drivers.run_merge ~seed:11 ~replicas:5 small in
  let m r = Stats.mean r.Drivers.delivery in
  check "causal < sequencer" true (m causal < m seq);
  check "causal < merge" true (m causal < m merge)

let test_fixed_window_cycles () =
  (* Fixed_window k: ops/(k+1) syncs (+ the appended closer) *)
  let w = { Drivers.ops = 60; spacing = 0.5; mix = Drivers.Fixed_window 5 } in
  let r = Drivers.run_causal ~seed:13 ~replicas:3 w in
  check "checks ok" true r.Drivers.checks_ok;
  check_int "cycles = 60/6 + closer" 11 r.Drivers.cycles

let test_fixed_window_zero_is_all_sync () =
  let w = { Drivers.ops = 20; spacing = 0.5; mix = Drivers.Fixed_window 0 } in
  let r = Drivers.run_causal ~seed:15 ~replicas:3 w in
  check_int "every op a stable point" 21 r.Drivers.cycles

let () =
  Alcotest.run "harness"
    [
      ( "drivers",
        [
          Alcotest.test_case "causal sound" `Quick test_causal_driver_sound;
          Alcotest.test_case "merge sound" `Quick test_merge_driver_sound;
          Alcotest.test_case "sequencer sound" `Quick test_sequencer_driver_sound;
          Alcotest.test_case "timestamp sound" `Quick test_timestamp_driver_sound;
          Alcotest.test_case "deterministic" `Quick test_drivers_deterministic;
          Alcotest.test_case "headline ordering" `Quick
            test_headline_ordering_holds;
          Alcotest.test_case "fixed window cycles" `Quick test_fixed_window_cycles;
          Alcotest.test_case "fixed window 0" `Quick
            test_fixed_window_zero_is_all_sync;
        ] );
    ]
