(* Cross-library integration tests: end-to-end scenarios that exercise the
   full stack (engine -> net -> causal group -> replicas -> checkers) and
   assert the paper's qualitative claims on small instances. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Message = Causalb_core.Message
module Group = Causalb_core.Group
module Osend = Causalb_core.Osend
module Bss = Causalb_core.Bss
module Asend = Causalb_core.Asend
module Checker = Causalb_core.Checker
module Dt = Causalb_data.Datatypes
module Replica = Causalb_data.Replica
module Service = Causalb_data.Service
module Stats = Causalb_util.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let jittery = Latency.lognormal ~mu:0.5 ~sigma:1.2 ()

(* Fig. 1: a data-access message broadcast to all entities updates every
   local copy. *)
let test_fig1_shared_data_broadcast () =
  let e = Engine.create ~seed:1 () in
  let svc =
    Service.create e ~replicas:3 ~machine:Dt.Kv_store.machine ~latency:jittery ()
  in
  ignore (Service.submit svc ~src:0 (Dt.Kv_store.Upd ("file", "contents")));
  Service.run svc;
  List.iter
    (fun r ->
      check "every copy updated" true
        (Dt.Kv_store.lookup (Replica.state r) "file" = Some "contents"))
    (Service.replicas svc)

(* Fig. 2 with data: concurrent incs diverge transiently, agree at the
   synchronizing read. *)
let test_fig2_transient_divergence_and_agreement () =
  let e = Engine.create ~seed:2 () in
  let svc =
    Service.create e ~replicas:3 ~machine:Dt.Int_register.machine
      ~latency:(Latency.lognormal ~mu:2.0 ~sigma:1.0 ())
      ~fifo:false ()
  in
  let diverged = ref false in
  Engine.every e ~period:0.25 ~until:100.0 (fun () ->
      let states = List.map Replica.state (Service.replicas svc) in
      if List.exists (fun s -> s <> List.hd states) states then diverged := true);
  Engine.schedule_at e ~time:0.0 (fun () ->
      ignore (Service.submit svc ~src:0 (Dt.Int_register.Inc 1)));
  Engine.schedule_at e ~time:0.1 (fun () ->
      ignore (Service.submit svc ~src:1 (Dt.Int_register.Inc 2)));
  Engine.schedule_at e ~time:30.0 (fun () ->
      ignore (Service.submit svc ~src:2 Dt.Int_register.Read));
  Service.run svc;
  check "transient divergence observed" true !diverged;
  let stables = List.map Replica.stable_state (Service.replicas svc) in
  check "agreement at sync point" true
    (List.for_all (( = ) 3) stables);
  List.iter (fun (n, ok) -> check n true ok) (Service.check svc)

(* Paper claim (§3.2/T1): causal delivery of commutative traffic is faster
   than funnelling everything through a sequencer. *)
let test_causal_faster_than_sequencer () =
  let ops = 40 and nodes = 4 in
  (* causal path *)
  let e1 = Engine.create ~seed:3 () in
  let svc =
    Service.create e1 ~replicas:nodes ~machine:Dt.Int_register.machine
      ~latency:jittery ~fifo:false ()
  in
  for i = 0 to ops - 1 do
    Engine.schedule_at e1 ~time:(float_of_int i *. 0.5) (fun () ->
        ignore (Service.submit svc ~src:(i mod nodes) (Dt.Int_register.Inc 1)))
  done;
  Service.run svc;
  let causal_mean = Stats.mean (Service.delivery_latency svc) in
  (* sequencer path: same workload shape *)
  let e2 = Engine.create ~seed:3 () in
  let net = Net.create e2 ~nodes ~latency:jittery ~fifo:false () in
  let sent = Hashtbl.create 64 in
  let lat = Stats.create () in
  let g =
    Group.create net
      ~on_deliver:(fun ~node:_ ~time m ->
        match Hashtbl.find_opt sent (Message.payload m) with
        | Some t0 -> Stats.add lat (time -. t0)
        | None -> ())
      ()
  in
  let seq = Asend.Sequencer.create g ~submit_latency:jittery () in
  for i = 0 to ops - 1 do
    Engine.schedule_at e2 ~time:(float_of_int i *. 0.5) (fun () ->
        Hashtbl.replace sent i (Engine.now e2);
        Asend.Sequencer.asend seq ~src:(i mod nodes) i)
  done;
  Engine.run e2;
  check "both measured" true (Stats.count lat > 0 && causal_mean > 0.0);
  check "causal beats sequencer" true (causal_mean < Stats.mean lat)

(* Paper claim (footnote 1 / T6): vector-clock inference forces waits that
   explicit semantic dependencies avoid. *)
let test_bss_forces_more_waits_than_osend () =
  let nodes = 4 and ops = 60 in
  let lat = Latency.lognormal ~mu:1.0 ~sigma:1.3 () in
  (* same logical workload: independent (semantically concurrent) sends *)
  let e1 = Engine.create ~seed:4 () in
  let net1 = Net.create e1 ~nodes ~latency:lat ~fifo:false () in
  let g1 = Group.create net1 () in
  for i = 0 to ops - 1 do
    Engine.schedule_at e1 ~time:(float_of_int i *. 0.4) (fun () ->
        ignore (Group.osend g1 ~src:(i mod nodes) ~dep:Dep.null i))
  done;
  Engine.run e1;
  let osend_waits =
    List.init nodes (fun n -> Osend.pending_count (Group.member g1 n))
    |> List.fold_left ( + ) 0
  in
  let e2 = Engine.create ~seed:4 () in
  let net2 = Net.create e2 ~nodes ~latency:lat ~fifo:false () in
  let g2 = Bss.Group.create net2 () in
  for i = 0 to ops - 1 do
    Engine.schedule_at e2 ~time:(float_of_int i *. 0.4) (fun () ->
        Bss.Group.bcast g2 ~src:(i mod nodes) ~tag:(string_of_int i) ())
  done;
  Engine.run e2;
  let bss_waits =
    List.init nodes (fun n -> Bss.buffered_ever (Bss.Group.member g2 n))
    |> List.fold_left ( + ) 0
  in
  check_int "osend: nothing ever blocked" 0 osend_waits;
  check "bss: false dependencies forced waits" true (bss_waits > 0)

(* Determinism: the entire stack replays identically from a seed. *)
let test_full_stack_deterministic_replay () =
  let run () =
    let e = Engine.create ~seed:5 () in
    let svc =
      Service.create e ~replicas:3 ~machine:Dt.Int_register.machine
        ~latency:jittery ~fifo:false ()
    in
    for i = 0 to 30 do
      Engine.schedule_at e ~time:(float_of_int i *. 0.6) (fun () ->
          let op =
            if i mod 7 = 6 then Dt.Int_register.Read else Dt.Int_register.Inc 1
          in
          ignore (Service.submit svc ~src:(i mod 3) op))
    done;
    Service.run svc;
    ( List.map Replica.applied (Service.replicas svc),
      Stats.mean (Service.delivery_latency svc) )
  in
  let a = run () and b = run () in
  check "identical delivery orders" true
    (List.for_all2 (List.equal Label.equal) (fst a) (fst b));
  check "identical metrics" true (snd a = snd b)

(* Two independent services share one engine without interference. *)
let test_two_services_one_engine () =
  let e = Engine.create ~seed:6 () in
  let svc1 =
    Service.create e ~replicas:3 ~machine:Dt.Int_register.machine
      ~latency:jittery ()
  in
  let svc2 =
    Service.create e ~replicas:2 ~machine:Dt.Kv_store.machine ~latency:jittery ()
  in
  ignore (Service.submit svc1 ~src:0 (Dt.Int_register.Inc 5));
  ignore (Service.submit svc2 ~src:0 (Dt.Kv_store.Upd ("k", "v")));
  ignore (Service.submit svc1 ~src:1 Dt.Int_register.Read);
  Engine.run e;
  check_int "svc1 state" 5 (Replica.stable_state (Service.replica svc1 0));
  check "svc2 state" true
    (Dt.Kv_store.lookup (Replica.state (Service.replica svc2 1)) "k" = Some "v")

(* Multi-register: disjoint-item syncs — the §5.1 decomposition.  Using
   set on item 0 and incs on item 1 in one window would not be
   transition-preserving; the frontend prevents it by classifying set as
   sync.  End-to-end we check convergence of the vector. *)
let test_multi_register_end_to_end () =
  let e = Engine.create ~seed:7 () in
  let machine = Dt.Multi_register.machine ~items:4 in
  let svc =
    Service.create e ~replicas:3 ~machine ~latency:jittery ~fifo:false ()
  in
  for i = 0 to 40 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.5) (fun () ->
        let op =
          if i mod 10 = 9 then Dt.Multi_register.Read_all
          else Dt.Multi_register.Inc (i mod 4, 1)
        in
        ignore (Service.submit svc ~src:(i mod 3) op))
  done;
  Service.run svc;
  List.iter (fun (n, ok) -> check n true ok) (Service.check svc);
  let finals = List.map Replica.stable_state (Service.replicas svc) in
  check "vectors agree" true (List.for_all (( = ) (List.hd finals)) finals)

(* Stress: larger group, more traffic, checks still hold. *)
let test_stress_group_of_8 () =
  let e = Engine.create ~seed:8 () in
  let svc =
    Service.create e ~replicas:8 ~machine:Dt.Int_register.machine
      ~latency:(Latency.lognormal ~mu:0.8 ~sigma:1.4 ())
      ~fifo:false ()
  in
  for i = 0 to 400 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.25) (fun () ->
        let op =
          if i mod 12 = 11 then Dt.Int_register.Read
          else if i mod 2 = 0 then Dt.Int_register.Inc 1
          else Dt.Int_register.Dec 1
        in
        ignore (Service.submit svc ~src:(i mod 8) op))
  done;
  Service.run svc;
  List.iter (fun (n, ok) -> check n true ok) (Service.check svc);
  check_int "all ops applied everywhere" 401
    (Replica.applied_count (Service.replica svc 7))

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "fig1 shared data" `Quick test_fig1_shared_data_broadcast;
          Alcotest.test_case "fig2 divergence+agreement" `Quick
            test_fig2_transient_divergence_and_agreement;
        ] );
      ( "claims",
        [
          Alcotest.test_case "causal < sequencer latency" `Quick
            test_causal_faster_than_sequencer;
          Alcotest.test_case "bss forces waits" `Quick
            test_bss_forces_more_waits_than_osend;
        ] );
      ( "system",
        [
          Alcotest.test_case "deterministic replay" `Quick
            test_full_stack_deterministic_replay;
          Alcotest.test_case "two services one engine" `Quick
            test_two_services_one_engine;
          Alcotest.test_case "multi-register e2e" `Quick
            test_multi_register_end_to_end;
          Alcotest.test_case "stress group of 8" `Slow test_stress_group_of_8;
        ] );
    ]
