(* Tests for the protocol studies: lock arbitration (§6.2), name service
   (§5.2), card game (§5.1), conferencing. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Stats = Causalb_util.Stats
module Lock = Causalb_protocols.Lock_service
module Ns = Causalb_protocols.Name_service
module Cards = Causalb_protocols.Card_game
module Conf = Causalb_protocols.Conference
module Dt = Causalb_data.Datatypes
module Replica = Causalb_data.Replica
module Service = Causalb_data.Service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Lock service --- *)

let run_lock ?(members = 3) ?(cycles = 4) ?requesters ?seed () =
  let e = Engine.create ?seed () in
  let t =
    Lock.create e ~members
      ~latency:(Latency.lognormal ~mu:0.3 ~sigma:0.8 ())
      ?requesters ()
  in
  Lock.start t ~cycles;
  Engine.run e;
  (e, t)

let test_lock_basic_cycle () =
  let _, t = run_lock ~members:3 ~cycles:1 () in
  check_int "one cycle" 1 (Lock.cycles_completed t);
  check_int "three grants" 3 (List.length (Lock.grants t));
  check "mutual exclusion" true (Lock.check_mutual_exclusion t);
  check "agreement" true (Lock.check_agreement t);
  check "liveness" true (Lock.check_liveness t ~expected_cycles:1)

let test_lock_multi_cycle () =
  let _, t = run_lock ~members:4 ~cycles:5 ~seed:7 () in
  check_int "five cycles" 5 (Lock.cycles_completed t);
  check_int "grants" 20 (List.length (Lock.grants t));
  check "mutual exclusion" true (Lock.check_mutual_exclusion t);
  check "agreement" true (Lock.check_agreement t);
  check "liveness" true (Lock.check_liveness t ~expected_cycles:5);
  check "durations recorded" true (Stats.count (Lock.cycle_durations t) = 5)

let test_lock_rotating_fairness () =
  (* The arbiter rotates: cycle 0 starts at member 0, cycle 1 at 1, ... *)
  let _, t = run_lock ~members:3 ~cycles:3 ~seed:9 () in
  let first_holder cycle =
    match List.filter (fun g -> g.Lock.cycle = cycle) (Lock.grants t) with
    | g :: _ -> g.Lock.holder
    | [] -> -1
  in
  check_int "cycle 0 head" 0 (first_holder 0);
  check_int "cycle 1 head" 1 (first_holder 1);
  check_int "cycle 2 head" 2 (first_holder 2)

let test_lock_subset_requesters () =
  let requesters ~cycle = if cycle mod 2 = 0 then [ 0; 2 ] else [ 1 ] in
  let _, t = run_lock ~members:3 ~cycles:4 ~requesters ~seed:11 () in
  check_int "cycles" 4 (Lock.cycles_completed t);
  check "liveness per requester set" true
    (Lock.check_liveness t ~expected_cycles:4);
  check "mutual exclusion" true (Lock.check_mutual_exclusion t);
  check_int "grants = 2+1+2+1" 6 (List.length (Lock.grants t))

let test_lock_single_member () =
  let _, t = run_lock ~members:1 ~cycles:3 () in
  check_int "cycles" 3 (Lock.cycles_completed t);
  check "exclusion trivial" true (Lock.check_mutual_exclusion t)

let test_lock_wait_times_positive () =
  let _, t = run_lock ~members:4 ~cycles:3 ~seed:13 () in
  check "wait samples" true (Stats.count (Lock.wait_times t) = 12);
  check "non-negative" true (Stats.min_value (Lock.wait_times t) >= 0.0)

let test_lock_agreement_orders_recorded () =
  let _, t = run_lock ~members:3 ~cycles:2 ~seed:15 () in
  List.iter
    (fun node ->
      check_int
        (Printf.sprintf "orders at %d" node)
        2
        (List.length (Lock.arbitration_orders t node)))
    [ 0; 1; 2 ]

(* --- Page service --- *)

module Page = Causalb_protocols.Page_service

let run_pages ?(members = 3) ?(cycles = 4) ?requesters ?(seed = 2) () =
  let e = Engine.create ~seed () in
  let mutate ~member ~page:(p : Page.page) =
    Printf.sprintf "%s+w%d.%d" p.Page.data member (p.Page.version + 1)
  in
  let t =
    Page.create e ~members ~mutate
      ~latency:(Latency.lognormal ~mu:0.3 ~sigma:0.8 ())
      ?requesters ()
  in
  Page.start t ~cycles;
  Engine.run e;
  t

let test_page_no_lost_updates () =
  let t = run_pages ~members:3 ~cycles:4 () in
  (* every member requests every cycle: 12 writes *)
  check "no lost updates" true (Page.check_no_lost_updates t ~expected_writes:12);
  check "copies converge" true (Page.check_copies_converge t);
  check "versions monotone" true (Page.check_versions_monotone t)

let test_page_write_lineage () =
  let t = run_pages ~members:2 ~cycles:2 () in
  let writes = Page.writes t in
  check_int "four writes" 4 (List.length writes);
  (* rotating arbiter: cycle 0 order = [0;1], cycle 1 = [1;0] *)
  Alcotest.(check (list (pair int int)))
    "version lineage"
    [ (1, 0); (2, 1); (3, 1); (4, 0) ]
    writes

let test_page_contents_accumulate () =
  let t = run_pages ~members:2 ~cycles:1 () in
  let final = Page.page_at t 0 in
  check "both writes present" true
    (String.length final.Page.data > 0
    && final.Page.version = 2
    && final.Page.writer = 1)

let test_page_subset_requesters () =
  let requesters ~cycle = if cycle = 0 then [ 1 ] else [ 0; 2 ] in
  let t = run_pages ~members:3 ~cycles:2 ~requesters () in
  check "no lost updates" true (Page.check_no_lost_updates t ~expected_writes:3);
  check "converge" true (Page.check_copies_converge t)

let test_page_all_members_see_every_version () =
  let t = run_pages ~members:4 ~cycles:3 ~seed:5 () in
  for node = 0 to 3 do
    check_int
      (Printf.sprintf "node %d applied all versions" node)
      12
      (List.length (Page.versions_applied t node))
  done

(* --- Name service --- *)

let drive_ns ?(servers = 3) ~mode ~updates ~queries ?(seed = 42) () =
  let e = Engine.create ~seed () in
  let t =
    Ns.create e ~servers ~mode ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.0 ()) ()
  in
  let rng = Engine.fork_rng e in
  let keys = [| "alpha"; "beta"; "gamma" |] in
  let total = updates + queries in
  let ops =
    List.init total (fun i -> if i < updates then `Upd else `Qry)
    |> Array.of_list
  in
  Causalb_util.Rng.shuffle rng ops;
  Array.iteri
    (fun i kind ->
      let src = i mod servers in
      let key = Causalb_util.Rng.pick rng keys in
      Engine.schedule_at e ~time:(float_of_int i *. 0.8) (fun () ->
          match kind with
          | `Upd -> Ns.update t ~src ~key (Printf.sprintf "v%d" i)
          | `Qry -> Ns.query t ~src ~key))
    ops;
  Engine.run e;
  t

let test_ns_app_check_soundness () =
  let t = drive_ns ~mode:Ns.App_check ~updates:20 ~queries:40 () in
  check_int "all queries issued" 40 (Ns.queries_issued t);
  check "valid answers agree" true (Ns.valid_answers_agree t);
  check_int "answers = queries * servers" (40 * 3)
    (List.length (Ns.answers t))

let test_ns_app_check_discards_under_updates () =
  let t = drive_ns ~mode:Ns.App_check ~updates:40 ~queries:40 ~seed:3 () in
  check "some discards under heavy updates" true (Ns.answers_discarded t > 0);
  check "but never inconsistent" true (Ns.valid_answers_agree t)

let test_ns_total_order_no_discards () =
  let t = drive_ns ~mode:Ns.Total_order ~updates:40 ~queries:40 ~seed:3 () in
  check_int "no discards" 0 (Ns.answers_discarded t);
  check "final states agree" true (Ns.final_states_agree t);
  check "all answers agree" true (Ns.valid_answers_agree t)

let test_ns_read_only_workload_all_clean () =
  let t = drive_ns ~mode:Ns.App_check ~updates:0 ~queries:30 () in
  check_int "no discards without updates" 0 (Ns.answers_discarded t);
  check_int "all clean" 30 (Ns.queries_clean t);
  check "registry trivially agrees" true (Ns.final_states_agree t)

let test_ns_discard_rate_monotone_in_update_rate () =
  let rate updates =
    Ns.discard_fraction
      (drive_ns ~mode:Ns.App_check ~updates ~queries:60 ~seed:5 ())
  in
  let low = rate 5 and high = rate 60 in
  check "more updates, more discards" true (high > low)

let test_ns_latency_total_order_higher () =
  let lat mode =
    Stats.mean
      (Ns.answer_latency (drive_ns ~mode ~updates:10 ~queries:50 ~seed:8 ()))
  in
  check "sequencer adds latency" true (lat Ns.Total_order > lat Ns.App_check)

(* --- Causal memory (ref [5] baseline) --- *)

module Cmem = Causalb_protocols.Causal_memory

let test_cmem_basic () =
  let e = Engine.create ~seed:81 () in
  let m = Cmem.create e ~nodes:3 () in
  Cmem.write m ~node:0 ~var:"x" 1;
  Engine.run e;
  for node = 0 to 2 do
    check "x visible" true (Cmem.read m ~node ~var:"x" = Some 1)
  done;
  check "unknown var" true (Cmem.read m ~node:0 ~var:"y" = None)

let test_cmem_causal_chain () =
  (* node 1 reads x then writes y: every node must apply x's write before
     y's (writes-into relation preserved) *)
  let e = Engine.create ~seed:82 () in
  let m = Cmem.create e ~nodes:3 ~latency:(Latency.lognormal ~mu:1.0 ~sigma:1.5 ()) () in
  Cmem.write m ~node:0 ~var:"x" 7;
  Engine.run e;
  (* node 1 has seen x=7; its next write is causally after *)
  check "node1 sees x" true (Cmem.read m ~node:1 ~var:"x" = Some 7);
  Cmem.write m ~node:1 ~var:"y" 8;
  Engine.run e;
  check "causal application" true (Cmem.check_causal_application m);
  for node = 0 to 2 do
    let ops = Cmem.applied m node in
    let ix v = Option.get (List.find_index (fun (var, _) -> var = v) ops) in
    check "x before y everywhere" true (ix "x" < ix "y")
  done

let test_cmem_concurrent_writes_diverge_or_agree_silently () =
  (* concurrent writes to one variable: both orders are causally legal;
     nodes may end disagreeing — the divergence stable points remove *)
  let diverged = ref 0 in
  for seed = 0 to 19 do
    let e = Engine.create ~seed () in
    let m = Cmem.create e ~nodes:3 ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.5 ()) () in
    Cmem.write m ~node:0 ~var:"x" 100;
    Cmem.write m ~node:1 ~var:"x" 200;
    Engine.run e;
    check "still causally safe" true (Cmem.check_causal_application m);
    if not (Cmem.nodes_agree_on m ~var:"x") then incr diverged
  done;
  check "some runs diverge permanently" true (!diverged > 0)

let test_cmem_per_writer_order () =
  let e = Engine.create ~seed:84 () in
  let m = Cmem.create e ~nodes:4 ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.5 ()) () in
  for i = 0 to 19 do
    Cmem.write m ~node:(i mod 4) ~var:(Printf.sprintf "v%d" (i mod 3)) i
  done;
  Engine.run e;
  check "per-writer order" true (Cmem.check_per_writer_order m);
  check "causal application" true (Cmem.check_causal_application m);
  check_int "all writes everywhere" 20 (List.length (Cmem.applied m 3))

(* --- Card game --- *)

let run_cards ?(players = 4) ?(rounds = 3) ~mode ?(seed = 1) () =
  let e = Engine.create ~seed () in
  let t =
    Cards.create e ~players ~mode
      ~latency:(Latency.lognormal ~mu:0.3 ~sigma:0.6 ())
      ~think:(Latency.exponential ~mean:1.5 ())
      ()
  in
  Cards.start t ~rounds;
  Engine.run e;
  t

let test_cards_strict_completes () =
  let t = run_cards ~mode:Cards.Strict_turns () in
  check_int "rounds" 3 (Cards.rounds_completed t);
  check "causal order" true (Cards.check_causal_order t);
  check "tables agree" true (Cards.check_tables_agree t)

let test_cards_relaxed_completes () =
  let dep ~round:_ ~player = if player = 1 then 0 else player / 2 in
  let t = run_cards ~mode:(Cards.Relaxed dep) () in
  check_int "rounds" 3 (Cards.rounds_completed t);
  check "causal order" true (Cards.check_causal_order t);
  check "tables agree" true (Cards.check_tables_agree t)

let test_cards_relaxed_faster () =
  (* Relaxed ordering means more concurrent thinking: rounds finish
     sooner than strict turn-taking (paper's higher-concurrency claim). *)
  let strict = run_cards ~players:6 ~rounds:4 ~mode:Cards.Strict_turns ~seed:2 () in
  let dep ~round:_ ~player:_ = 0 in
  let relaxed = run_cards ~players:6 ~rounds:4 ~mode:(Cards.Relaxed dep) ~seed:2 () in
  check "relaxed rounds faster on average" true
    (Stats.mean (Cards.round_durations relaxed)
    < Stats.mean (Cards.round_durations strict))

let test_cards_bad_dependency_rejected () =
  let e = Engine.create () in
  let dep ~round:_ ~player = player (* not < player *) in
  let t = Cards.create e ~players:3 ~mode:(Cards.Relaxed dep) () in
  Cards.start t ~rounds:1;
  check "invalid dep raises" true
    (try
       Engine.run e;
       false
     with Invalid_argument _ -> true)

(* --- Conference --- *)

let test_conference_session () =
  let e = Engine.create ~seed:4 () in
  let t = Conf.create e ~participants:4 ~sections:3 () in
  Conf.run_session t ~annotations:40 ~commit_every:8 ();
  check_int "annotations" 40 (Conf.annotations_sent t);
  check_int "commits" 5 (Conf.commits_sent t);
  List.iter (fun (name, ok) -> check name true ok) (Conf.check t)

let test_conference_deferred_view () =
  let e = Engine.create ~seed:6 () in
  let t = Conf.create e ~participants:3 ~sections:2 () in
  let got = ref None in
  Conf.annotate t ~participant:1 ~section:0 "hello";
  Conf.request_view t ~participant:2 (fun doc -> got := Some doc);
  Conf.commit t ~moderator:0 ~section:0 ~body:"v1";
  Engine.run e;
  (match !got with
  | None -> Alcotest.fail "view never delivered"
  | Some doc ->
    check "committed body visible" true (doc.(0).Dt.Document.body = "v1"));
  (* the deferred view equals the stable state at every replica *)
  let states =
    List.map Replica.stable_state (Service.replicas (Conf.service t))
  in
  check "replicas agree" true
    (List.for_all (( = ) (List.hd states)) states)

let test_conference_annotations_survive_reordering () =
  let e = Engine.create ~seed:8 () in
  let t = Conf.create e ~participants:5 ~sections:1 () in
  Conf.run_session t ~annotations:25 ~commit_every:26 ();
  (* no commit: all replicas hold the same 25 annotations mid-window
     because annotations commute (set semantics) *)
  let states = List.map Replica.state (Service.replicas (Conf.service t)) in
  let count s = Dt.Document.String_set.cardinal s.(0).Dt.Document.annotations in
  let machine = Dt.Document.machine ~sections:1 in
  check_int "all annotations at r0" 25 (count (List.hd states));
  check "replicas identical despite different orders" true
    (List.for_all
       (machine.Causalb_data.State_machine.equal (List.hd states))
       states)

let () =
  Alcotest.run "protocols"
    [
      ( "lock",
        [
          Alcotest.test_case "basic cycle" `Quick test_lock_basic_cycle;
          Alcotest.test_case "multi cycle" `Quick test_lock_multi_cycle;
          Alcotest.test_case "rotating fairness" `Quick test_lock_rotating_fairness;
          Alcotest.test_case "subset requesters" `Quick test_lock_subset_requesters;
          Alcotest.test_case "single member" `Quick test_lock_single_member;
          Alcotest.test_case "wait times" `Quick test_lock_wait_times_positive;
          Alcotest.test_case "orders recorded" `Quick
            test_lock_agreement_orders_recorded;
        ] );
      ( "page-service",
        [
          Alcotest.test_case "no lost updates" `Quick test_page_no_lost_updates;
          Alcotest.test_case "write lineage" `Quick test_page_write_lineage;
          Alcotest.test_case "contents accumulate" `Quick
            test_page_contents_accumulate;
          Alcotest.test_case "subset requesters" `Quick
            test_page_subset_requesters;
          Alcotest.test_case "all see every version" `Quick
            test_page_all_members_see_every_version;
        ] );
      ( "name-service",
        [
          Alcotest.test_case "app-check soundness" `Quick test_ns_app_check_soundness;
          Alcotest.test_case "discards under updates" `Quick
            test_ns_app_check_discards_under_updates;
          Alcotest.test_case "total order: no discards" `Quick
            test_ns_total_order_no_discards;
          Alcotest.test_case "read-only clean" `Quick
            test_ns_read_only_workload_all_clean;
          Alcotest.test_case "discard rate monotone" `Quick
            test_ns_discard_rate_monotone_in_update_rate;
          Alcotest.test_case "total order latency" `Quick
            test_ns_latency_total_order_higher;
        ] );
      ( "causal-memory",
        [
          Alcotest.test_case "basic" `Quick test_cmem_basic;
          Alcotest.test_case "causal chain" `Quick test_cmem_causal_chain;
          Alcotest.test_case "concurrent divergence" `Quick
            test_cmem_concurrent_writes_diverge_or_agree_silently;
          Alcotest.test_case "per-writer order" `Quick test_cmem_per_writer_order;
        ] );
      ( "card-game",
        [
          Alcotest.test_case "strict completes" `Quick test_cards_strict_completes;
          Alcotest.test_case "relaxed completes" `Quick test_cards_relaxed_completes;
          Alcotest.test_case "relaxed faster" `Quick test_cards_relaxed_faster;
          Alcotest.test_case "bad dependency" `Quick test_cards_bad_dependency_rejected;
        ] );
      ( "conference",
        [
          Alcotest.test_case "session" `Quick test_conference_session;
          Alcotest.test_case "deferred view" `Quick test_conference_deferred_view;
          Alcotest.test_case "reordering tolerated" `Quick
            test_conference_annotations_survive_reordering;
        ] );
    ]
