(* Unit tests for the discrete-event engine, latency models, and traces. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Trace = Causalb_sim.Trace
module Rng = Causalb_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Engine --- *)

let test_engine_initial () =
  let e = Engine.create () in
  check_float "time 0" 0.0 (Engine.now e);
  check_int "no pending" 0 (Engine.pending e);
  check "step on empty" false (Engine.step e)

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:9.0 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "fired by time" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at last event" 9.0 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order on ties" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "outer" :: !log;
      Engine.schedule e ~delay:1.0 (fun () -> log := "inner" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "cascade" [ "outer"; "inner" ] (List.rev !log);
  check_float "time" 2.0 (Engine.now e)

let test_engine_zero_delay () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:0.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:0.0 (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "zero-delay order" [ 1; 2 ] (List.rev !log)

let test_engine_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> Engine.schedule e ~delay:(-1.0) (fun () -> ()))

let test_engine_schedule_at_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:5.0 (fun () ->
      check "past rejected" true
        (try
           Engine.schedule_at e ~time:1.0 (fun () -> ());
           false
         with Invalid_argument _ -> true));
  Engine.run e

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> incr fired))
    [ 1.0; 2.0; 3.0; 10.0 ];
  Engine.run ~until:5.0 e;
  check_int "only events <= until" 3 !fired;
  check_int "one left" 1 (Engine.pending e);
  Engine.run e;
  check_int "rest run later" 4 !fired

let test_engine_max_events () =
  let e = Engine.create () in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1.0 (fun () -> ())
  done;
  Engine.run ~max_events:4 e;
  check_int "processed" 4 (Engine.events_processed e);
  check_int "left" 6 (Engine.pending e)

let test_engine_every () =
  let e = Engine.create () in
  let ticks = ref 0 in
  Engine.every e ~period:2.0 ~until:9.0 (fun () -> incr ticks);
  Engine.run e;
  check_int "ticks at 2,4,6,8" 4 !ticks

let test_engine_determinism () =
  let run () =
    let e = Engine.create ~seed:99 () in
    let rng = Engine.fork_rng e in
    let log = ref [] in
    for i = 1 to 20 do
      Engine.schedule e ~delay:(Rng.float rng 10.0) (fun () -> log := i :: !log)
    done;
    Engine.run e;
    !log
  in
  check "identical runs" true (run () = run ())

let test_engine_fork_rng_distinct () =
  let e = Engine.create () in
  let a = Engine.fork_rng e and b = Engine.fork_rng e in
  check "distinct streams" true (Rng.int64 a <> Rng.int64 b)

(* --- Latency --- *)

let test_latency_constant () =
  let rng = Rng.create 1 in
  check_float "constant" 3.0 (Latency.sample rng (Latency.constant 3.0));
  check_float "mean" 3.0 (Latency.mean (Latency.constant 3.0))

let test_latency_uniform () =
  let rng = Rng.create 2 in
  let m = Latency.uniform ~lo:1.0 ~hi:2.0 in
  for _ = 1 to 1000 do
    let v = Latency.sample rng m in
    check "in range" true (v >= 1.0 && v < 2.0)
  done;
  check_float "mean" 1.5 (Latency.mean m)

let test_latency_exponential_floor () =
  let rng = Rng.create 3 in
  let m = Latency.exponential ~floor:0.5 ~mean:2.0 () in
  for _ = 1 to 1000 do
    check "above floor" true (Latency.sample rng m >= 0.5)
  done;
  check_float "mean" 2.5 (Latency.mean m)

let test_latency_sample_means () =
  let rng = Rng.create 4 in
  let close m =
    let n = 50_000 in
    let sum = ref 0.0 in
    for _ = 1 to n do
      sum := !sum +. Latency.sample rng m
    done;
    let emp = !sum /. float_of_int n in
    abs_float (emp -. Latency.mean m) /. Latency.mean m < 0.1
  in
  check "exponential" true (close (Latency.exponential ~mean:3.0 ()));
  check "lognormal" true (close (Latency.lognormal ~mu:0.5 ~sigma:0.4 ()));
  check "pareto shape>1" true (close (Latency.pareto ~scale:1.0 ~shape:3.0))

let test_latency_validation () =
  check "bad constant" true
    (try
       ignore (Latency.constant 0.0);
       false
     with Invalid_argument _ -> true);
  check "bad uniform" true
    (try
       ignore (Latency.uniform ~lo:2.0 ~hi:1.0);
       false
     with Invalid_argument _ -> true);
  check "pareto heavy mean" true
    (Latency.mean (Latency.pareto ~scale:1.0 ~shape:0.5) = infinity)

let test_latency_defaults_positive () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    check "lan positive" true (Latency.sample rng Latency.lan > 0.0);
    check "wan positive" true (Latency.sample rng Latency.wan > 0.0)
  done;
  check "wan slower" true (Latency.mean Latency.wan > Latency.mean Latency.lan)

(* --- Trace --- *)

let test_trace_roundtrip () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~node:0 ~kind:Trace.Send ~tag:"m1" ();
  Trace.record tr ~time:2.0 ~node:1 ~kind:Trace.Deliver ~tag:"m1" ();
  Trace.record tr ~time:3.0 ~node:1 ~kind:Trace.Deliver ~tag:"m2" ~info:"x" ();
  check_int "length" 3 (Trace.length tr);
  check_int "deliveries at 1" 2 (List.length (Trace.deliveries_at tr 1));
  Alcotest.(check (list string)) "delivery order" [ "m1"; "m2" ]
    (Trace.delivery_order tr 1);
  check "find m2" true (Trace.find_delivery tr ~node:1 ~tag:"m2" = Some 3.0);
  check "find missing" true (Trace.find_delivery tr ~node:0 ~tag:"m2" = None)

let test_engine_every_unbounded_with_budget () =
  (* an unbounded periodic timer is stoppable via max_events *)
  let e = Engine.create () in
  let ticks = ref 0 in
  Engine.every e ~period:1.0 (fun () -> incr ticks);
  Engine.run ~max_events:25 e;
  check_int "exactly the budget" 25 !ticks

let test_latency_to_string () =
  check "constant renders" true
    (Latency.to_string (Latency.constant 2.0) = "constant(2ms)");
  check "lan renders" true (String.length (Latency.to_string Latency.lan) > 0);
  List.iter
    (fun m -> check "nonempty" true (String.length (Latency.to_string m) > 0))
    [
      Latency.uniform ~lo:1.0 ~hi:2.0;
      Latency.exponential ~mean:1.0 ();
      Latency.pareto ~scale:1.0 ~shape:2.0;
    ]

let test_trace_pp () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.5 ~node:0 ~kind:Trace.Send ~tag:"m" ~info:"x" ();
  Trace.record tr ~time:2.5 ~node:1 ~kind:Trace.Deliver ~tag:"m" ();
  let s = Format.asprintf "%a" Trace.pp tr in
  check "mentions send" true
    (String.length s > 0
    && Trace.kind_to_string Trace.Send = "send"
    && Trace.kind_to_string Trace.Drop = "drop")

let test_trace_filter () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~node:0 ~kind:Trace.Drop ~tag:"m" ();
  Trace.record tr ~time:2.0 ~node:0 ~kind:Trace.Mark ~tag:"stable" ();
  check_int "drops" 1
    (List.length (Trace.filter tr (fun r -> r.Trace.kind = Trace.Drop)))

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "initial" `Quick test_engine_initial;
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "zero delay" `Quick test_engine_zero_delay;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
          Alcotest.test_case "schedule_at past" `Quick test_engine_schedule_at_past;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "every" `Quick test_engine_every;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "fork rng" `Quick test_engine_fork_rng_distinct;
        ] );
      ( "latency",
        [
          Alcotest.test_case "constant" `Quick test_latency_constant;
          Alcotest.test_case "uniform" `Quick test_latency_uniform;
          Alcotest.test_case "exponential floor" `Quick test_latency_exponential_floor;
          Alcotest.test_case "sample means" `Quick test_latency_sample_means;
          Alcotest.test_case "validation" `Quick test_latency_validation;
          Alcotest.test_case "defaults" `Quick test_latency_defaults_positive;
        ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "filter" `Quick test_trace_filter;
          Alcotest.test_case "pp" `Quick test_trace_pp;
        ] );
      ( "misc",
        [
          Alcotest.test_case "every + max_events" `Quick
            test_engine_every_unbounded_with_budget;
          Alcotest.test_case "latency to_string" `Quick test_latency_to_string;
        ] );
    ]
