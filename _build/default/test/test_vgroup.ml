(* Tests for dynamic membership and virtually synchronous view changes. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Label = Causalb_graph.Label
module Message = Causalb_core.Message
module Vgroup = Causalb_core.Vgroup

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let jittery = Latency.lognormal ~mu:0.5 ~sigma:1.0 ()

(* Each node's application state: the list of payloads applied, used both
   as the transferred state and to verify delivery. *)
type app = { mutable log : string list }

let make ?(nodes = 5) ?(initial = [ 0; 1; 2 ]) ?seed () =
  let e = Engine.create ?seed () in
  let net = Net.create e ~nodes ~latency:jittery ~fifo:false () in
  let apps = Array.init nodes (fun _ -> { log = [] }) in
  let g =
    Vgroup.create net ~initial
      ~on_deliver:(fun ~node ~vid:_ ~time:_ msg ->
        apps.(node).log <- Message.payload msg :: apps.(node).log)
      ~get_state:(fun ~node -> apps.(node).log)
      ~set_state:(fun ~node s -> apps.(node).log <- s)
      ()
  in
  (e, g, apps)

let log apps node = List.rev apps.(node).log

let test_initial_view () =
  let _, g, _ = make () in
  List.iter
    (fun n ->
      match Vgroup.view_of g n with
      | Some v ->
        check_int "vid 0" 0 v.Vgroup.vid;
        check "members" true (v.Vgroup.members = [ 0; 1; 2 ])
      | None -> Alcotest.fail "missing initial view")
    [ 0; 1; 2 ];
  check "outsider has no view" true (Vgroup.view_of g 3 = None);
  check "member" true (Vgroup.is_member g 0);
  check "not member" false (Vgroup.is_member g 4)

let test_static_broadcast () =
  let e, g, apps = make () in
  Vgroup.bcast g ~src:0 "a";
  Vgroup.bcast g ~src:1 "b";
  Engine.run e;
  List.iter
    (fun n ->
      check_int (Printf.sprintf "node %d got both" n) 2
        (List.length (log apps n)))
    [ 0; 1; 2 ];
  check "outsider got nothing" true (log apps 3 = [])

let test_sender_fifo_within_view () =
  let e, g, apps = make ~seed:3 () in
  for i = 0 to 19 do
    Vgroup.bcast g ~src:0 (string_of_int i)
  done;
  Engine.run e;
  List.iter
    (fun n ->
      Alcotest.(check (list string))
        "fifo order"
        (List.init 20 string_of_int)
        (log apps n))
    [ 0; 1; 2 ]

let test_join_installs_view_and_state () =
  let e, g, apps = make ~seed:5 () in
  Vgroup.bcast g ~src:0 "before";
  Engine.run e;
  Vgroup.join g ~node:3;
  Engine.run e;
  (match Vgroup.view_of g 3 with
  | Some v ->
    check_int "vid 1" 1 v.Vgroup.vid;
    check "joiner in members" true (List.mem 3 v.Vgroup.members)
  | None -> Alcotest.fail "joiner has no view");
  (* state transfer delivered the pre-join history *)
  check "joiner has history" true (List.mem "before" (log apps 3));
  (* messages after the join reach the joiner *)
  Vgroup.bcast g ~src:1 "after";
  Engine.run e;
  check "joiner receives new traffic" true (List.mem "after" (log apps 3));
  check "views agree" true (Vgroup.check_views_agree g);
  check "virtual synchrony" true (Vgroup.check_virtual_synchrony g)

let test_joiner_can_send () =
  let e, g, apps = make ~seed:7 () in
  Vgroup.join g ~node:4;
  Engine.run e;
  Vgroup.bcast g ~src:4 "from-joiner";
  Engine.run e;
  List.iter
    (fun n ->
      check (Printf.sprintf "node %d hears joiner" n) true
        (List.mem "from-joiner" (log apps n)))
    [ 0; 1; 2; 4 ]

let test_leave () =
  let e, g, apps = make ~seed:9 () in
  Vgroup.leave g ~node:2;
  Engine.run e;
  (match Vgroup.view_of g 0 with
  | Some v ->
    check_int "vid 1" 1 v.Vgroup.vid;
    check "2 gone" false (List.mem 2 v.Vgroup.members)
  | None -> Alcotest.fail "no view");
  check "leaver no longer member" false (Vgroup.is_member g 2);
  let before_len = List.length (log apps 2) in
  Vgroup.bcast g ~src:0 "post-leave";
  Engine.run e;
  check "leaver stops receiving" true (List.length (log apps 2) = before_len);
  check "others receive" true (List.mem "post-leave" (log apps 0));
  check "leaver cannot send" true
    (try
       Vgroup.bcast g ~src:2 "zombie";
       false
     with Invalid_argument _ -> true)

let test_virtual_synchrony_under_traffic () =
  (* Heavy concurrent traffic racing a view change: all survivors must
     agree per-view on the delivered sets. *)
  let e, g, apps = make ~nodes:6 ~initial:[ 0; 1; 2; 3 ] ~seed:11 () in
  for i = 0 to 29 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.4) (fun () ->
        if Vgroup.is_member g (i mod 4) then
          Vgroup.bcast g ~src:(i mod 4) (Printf.sprintf "m%d" i))
  done;
  Engine.schedule_at e ~time:5.0 (fun () -> Vgroup.join g ~node:4);
  Engine.schedule_at e ~time:9.0 (fun () -> Vgroup.leave g ~node:3);
  Engine.run e;
  check "views agree" true (Vgroup.check_views_agree g);
  check "virtual synchrony" true (Vgroup.check_virtual_synchrony g);
  (* survivors end with identical logs *)
  let l0 = List.sort compare (log apps 0) in
  List.iter
    (fun n ->
      check
        (Printf.sprintf "node %d same set as node 0" n)
        true
        (List.sort compare (log apps n) = l0))
    [ 1; 2 ]

let test_queued_sends_drain_into_new_view () =
  let e, g, apps = make ~seed:13 () in
  (* start a view change, then send while it is in flight *)
  Vgroup.join g ~node:3;
  (* the coordinator announced synchronously; node 0 may already be
     flushing.  Send from node 1 as soon as it is mid-change. *)
  Engine.schedule_at e ~time:0.1 (fun () -> Vgroup.bcast g ~src:1 "racing");
  Engine.run e;
  List.iter
    (fun n ->
      check (Printf.sprintf "node %d sees racing msg" n) true
        (List.mem "racing" (log apps n)))
    [ 0; 1; 2 ];
  check "vs holds" true (Vgroup.check_virtual_synchrony g)

let test_sequential_changes () =
  let e, g, _ = make ~nodes:6 ~initial:[ 0 ] ~seed:15 () in
  Vgroup.join g ~node:1;
  Vgroup.join g ~node:2;
  Vgroup.join g ~node:3;
  Engine.run e;
  (match Vgroup.view_of g 0 with
  | Some v ->
    check_int "three changes" 3 v.Vgroup.vid;
    check "all in" true (v.Vgroup.members = [ 0; 1; 2; 3 ])
  | None -> Alcotest.fail "no view");
  check "views agree" true (Vgroup.check_views_agree g);
  check_int "node3 saw one view" 1 (List.length (Vgroup.views_seen g 3));
  check_int "node0 saw four views" 4 (List.length (Vgroup.views_seen g 0))

let test_coordinator_leaves () =
  (* node 0 is coordinator; after it leaves, node 1 takes over and can
     process further changes *)
  let e, g, _ = make ~seed:17 () in
  Vgroup.leave g ~node:0;
  Engine.run e;
  check "0 out" false (Vgroup.is_member g 0);
  Vgroup.join g ~node:4;
  Engine.run e;
  (match Vgroup.view_of g 1 with
  | Some v ->
    check "4 joined under new coordinator" true (List.mem 4 v.Vgroup.members)
  | None -> Alcotest.fail "no view");
  check "views agree" true (Vgroup.check_views_agree g)

(* --- explicit-dependency sends within a view --- *)

let test_send_with_explicit_deps () =
  let e, g, apps = make ~seed:41 () in
  let a = Vgroup.send g ~src:0 "a" in
  let b = Vgroup.send g ~src:1 "b" in
  let ab =
    match (a, b) with
    | Some a, Some b -> [ a; b ]
    | _ -> Alcotest.fail "sends should not be queued"
  in
  (* c joins both: a synchronization point inside the view *)
  let c = Vgroup.send g ~src:2 ~after:ab "c" in
  check "c sent now" true (c <> None);
  Engine.run e;
  List.iter
    (fun n ->
      let log = log apps n in
      check "c last" true (List.nth log (List.length log - 1) = "c"))
    [ 0; 1; 2 ];
  check "vs holds" true (Vgroup.check_virtual_synchrony g)

let test_send_queued_during_change () =
  let e, g, _ = make ~seed:43 () in
  Vgroup.join g ~node:3;
  (* node 0 announced synchronously; it is now changing *)
  check "changing" true (Vgroup.is_changing g 0);
  check "send queued" true (Vgroup.send g ~src:0 "racer" = None);
  Engine.run e;
  check "vs holds" true (Vgroup.check_virtual_synchrony g)

(* --- crash-stop failures --- *)

let test_crash_excluded_and_survivors_agree () =
  let e, g, apps = make ~seed:21 () in
  Vgroup.bcast g ~src:2 "pre-crash";
  Engine.schedule_at e ~time:5.0 (fun () ->
      Vgroup.crash g ~node:2;
      Vgroup.report_failure g ~node:2);
  Engine.schedule_at e ~time:30.0 (fun () -> Vgroup.bcast g ~src:0 "after");
  Engine.run e;
  check "2 crashed" true (Vgroup.is_crashed g 2);
  check "2 excluded" false (Vgroup.is_member g 2);
  (match Vgroup.view_of g 0 with
  | Some v -> check "membership shrank" true (v.Vgroup.members = [ 0; 1 ])
  | None -> Alcotest.fail "no view");
  check "views agree" true (Vgroup.check_views_agree g);
  check "virtual synchrony" true (Vgroup.check_virtual_synchrony g);
  (* survivors have identical logs including the crashed sender's traffic *)
  check "survivors identical" true
    (List.sort compare (log apps 0) = List.sort compare (log apps 1));
  check "post-crash traffic flows" true (List.mem "after" (log apps 0))

let test_crashed_sender_in_flight_messages_stabilised () =
  (* The crashed member sends, then crashes immediately; copies are in
     flight.  Whatever any survivor received before flushing must end up
     at every survivor. *)
  let e, g, apps = make ~seed:23 () in
  Engine.schedule_at e ~time:1.0 (fun () ->
      Vgroup.bcast g ~src:2 "last-words";
      (* crash shortly after: some copies likely in flight *)
      Engine.schedule e ~delay:0.2 (fun () ->
          Vgroup.crash g ~node:2;
          Vgroup.report_failure g ~node:2));
  Engine.run e;
  check "views agree" true (Vgroup.check_views_agree g);
  check "virtual synchrony" true (Vgroup.check_virtual_synchrony g);
  let saw0 = List.mem "last-words" (log apps 0) in
  let saw1 = List.mem "last-words" (log apps 1) in
  check "all-or-nothing delivery of crashed traffic" true (saw0 = saw1)

let test_crashed_coordinator_replaced () =
  let e, g, _ = make ~seed:25 () in
  Engine.schedule_at e ~time:2.0 (fun () ->
      Vgroup.crash g ~node:0;
      Vgroup.report_failure g ~node:0);
  Engine.run e;
  check "0 out" false (Vgroup.is_member g 0);
  (* the new coordinator (1) can still process changes *)
  Vgroup.join g ~node:4;
  Engine.run e;
  check "join under new coordinator" true (Vgroup.is_member g 4);
  check "views agree" true (Vgroup.check_views_agree g)

let test_crashed_node_cannot_send () =
  let _, g, _ = make ~seed:27 () in
  Vgroup.crash g ~node:1;
  check "send raises" true
    (try
       Vgroup.bcast g ~src:1 "zombie";
       false
     with Invalid_argument _ -> true)

let test_crash_during_traffic_storm () =
  let e, g, apps = make ~nodes:6 ~initial:[ 0; 1; 2; 3 ] ~seed:29 () in
  for i = 0 to 39 do
    Engine.schedule_at e ~time:(float_of_int i *. 0.3) (fun () ->
        let src = i mod 4 in
        if Vgroup.is_member g src && not (Vgroup.is_crashed g src) then
          Vgroup.bcast g ~src (Printf.sprintf "m%d" i))
  done;
  Engine.schedule_at e ~time:6.0 (fun () ->
      Vgroup.crash g ~node:3;
      Vgroup.report_failure g ~node:3);
  Engine.run e;
  check "views agree" true (Vgroup.check_views_agree g);
  check "virtual synchrony" true (Vgroup.check_virtual_synchrony g);
  let l0 = List.sort compare (log apps 0) in
  List.iter
    (fun n ->
      check
        (Printf.sprintf "survivor %d matches" n)
        true
        (List.sort compare (log apps n) = l0))
    [ 1; 2 ]

let test_view_change_stalls_through_partition () =
  (* the flush round cannot complete across a partition; the view
     installs only after healing *)
  let e = Engine.create ~seed:45 () in
  let net = Net.create e ~nodes:4 ~latency:Latency.lan ~fifo:false () in
  let g = Vgroup.create net ~initial:[ 0; 1; 2 ] ~get_state:(fun ~node:_ -> ()) () in
  Engine.schedule_at e ~time:1.0 (fun () ->
      Net.partition net [ [ 0; 1 ]; [ 2; 3 ] ]);
  Engine.schedule_at e ~time:2.0 (fun () -> Vgroup.join g ~node:3);
  Engine.schedule_at e ~time:30.0 (fun () ->
      (* nobody can have installed view 1: node 2's flush is unreachable *)
      List.iter
        (fun n ->
          match Vgroup.view_of g n with
          | Some v ->
            Alcotest.(check int)
              (Printf.sprintf "node %d still in view 0" n)
              0 v.Vgroup.vid
          | None -> ())
        [ 0; 1; 2 ]);
  (* heal: the partition dropped some flush/announce copies for good, so
     the change can only complete via retransmission — Vgroup assumes a
     reliable transport, so we re-request the change after healing *)
  Engine.schedule_at e ~time:40.0 (fun () -> Net.heal net);
  Engine.run e;
  check "views agree" true (Vgroup.check_views_agree g)

let test_empty_initial_rejected () =
  let e = Engine.create () in
  let net = Net.create e ~nodes:3 () in
  check "empty rejected" true
    (try
       ignore (Vgroup.create net ~initial:[] () : (string, unit) Vgroup.t);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "vgroup"
    [
      ( "views",
        [
          Alcotest.test_case "initial view" `Quick test_initial_view;
          Alcotest.test_case "static broadcast" `Quick test_static_broadcast;
          Alcotest.test_case "sender fifo" `Quick test_sender_fifo_within_view;
          Alcotest.test_case "empty initial" `Quick test_empty_initial_rejected;
          Alcotest.test_case "partition stalls change" `Quick
            test_view_change_stalls_through_partition;
        ] );
      ( "membership",
        [
          Alcotest.test_case "join + state" `Quick test_join_installs_view_and_state;
          Alcotest.test_case "joiner sends" `Quick test_joiner_can_send;
          Alcotest.test_case "leave" `Quick test_leave;
          Alcotest.test_case "sequential changes" `Quick test_sequential_changes;
          Alcotest.test_case "coordinator leaves" `Quick test_coordinator_leaves;
        ] );
      ( "send",
        [
          Alcotest.test_case "explicit deps" `Quick test_send_with_explicit_deps;
          Alcotest.test_case "queued during change" `Quick
            test_send_queued_during_change;
        ] );
      ( "crash",
        [
          Alcotest.test_case "excluded, survivors agree" `Quick
            test_crash_excluded_and_survivors_agree;
          Alcotest.test_case "in-flight stabilised" `Quick
            test_crashed_sender_in_flight_messages_stabilised;
          Alcotest.test_case "coordinator replaced" `Quick
            test_crashed_coordinator_replaced;
          Alcotest.test_case "crashed cannot send" `Quick
            test_crashed_node_cannot_send;
          Alcotest.test_case "crash during storm" `Quick
            test_crash_during_traffic_storm;
        ] );
      ( "virtual-synchrony",
        [
          Alcotest.test_case "under traffic" `Quick
            test_virtual_synchrony_under_traffic;
          Alcotest.test_case "queued sends" `Quick
            test_queued_sends_drain_into_new_view;
        ] );
    ]
