(* The BENCH_PR10.json artifact (schema causalb-bench-v4): the v3 shape —
   before/after hot-path rows with GC allocation columns, the
   [wire_bytes_per_unit] column, parallel-sweep sections with [mode] and
   per-mode measured/modelled speedups — extended with

   - [members]: the member-count sweep comparing the O(n) vector-clock
     metadata of BSS against the O(1) headers of PC-broadcast, as
     metadata bytes, ns, and minor-heap words per delivery, at each
     group size (micro rows exercise one member's receive path; e2e
     rows run whole framed groups through the simulated transport and
     read the split byte counters the metrics layer records).

   Per-unit normalisation: each row records [units] — how many logical
   operations (delivered messages, received stamps, …) one run of the
   shape performs — so minor-heap words *per delivered message* is
   [gc_minor_words_* /. units].  That quotient is what the PR's
   "allocation-lean hot path" claim is graded on. *)

module Json = Causalb_util.Json

type row = {
  name : string;
  n : int;
  units : float; (* logical operations per run, for per-unit normalising *)
  before_ns : float;
  after_ns : float;
  before_minor_words : float; (* per run *)
  after_minor_words : float;
  before_major_words : float;
  after_major_words : float;
  wire_bytes_per_unit : float; (* frame bytes per delivered copy; 0 = n/a *)
}

let speedup r = r.before_ns /. r.after_ns

(* Fraction of minor-heap allocation the "after" path saves; NaN-safe for
   shapes whose before path allocates nothing. *)
let minor_words_saved r =
  if r.before_minor_words <= 0.0 then 0.0
  else 1.0 -. (r.after_minor_words /. r.before_minor_words)

let json_of_row r =
  Json.Obj
    [
      ("name", Json.Str r.name);
      ("n", Json.Num (float_of_int r.n));
      ("units", Json.Num r.units);
      ("before_ns", Json.Num (Float.round r.before_ns));
      ("after_ns", Json.Num (Float.round r.after_ns));
      ("speedup", Json.Num (Float.round (speedup r *. 100.0) /. 100.0));
      ("gc_minor_words_before", Json.Num (Float.round r.before_minor_words));
      ("gc_minor_words_after", Json.Num (Float.round r.after_minor_words));
      ("gc_major_words_before", Json.Num (Float.round r.before_major_words));
      ("gc_major_words_after", Json.Num (Float.round r.after_major_words));
      ( "minor_words_saved",
        Json.Num (Float.round (minor_words_saved r *. 1000.0) /. 1000.0) );
      ( "wire_bytes_per_unit",
        Json.Num (Float.round (r.wire_bytes_per_unit *. 100.0) /. 100.0) );
    ]

(* One row of the member-count sweep: BSS vs PC at a fixed group size,
   everything normalised per delivery.  [mode] is "micro" (one member's
   receive path plus the header codec) or "e2e" (whole framed groups
   over the simulated transport, metadata read from the control/payload
   split of the metrics layer).  The PR's scaling claim is graded on
   [bss_meta_bytes] growing with [members] while [pc_meta_bytes] stays
   flat, with [pc_ns <= bss_ns] at the large sizes. *)
type member_row = {
  mode : string; (* "micro" | "e2e" *)
  members : int;
  bss_meta_bytes : float; (* metadata bytes per delivery *)
  pc_meta_bytes : float;
  bss_ns : float; (* ns per delivery *)
  pc_ns : float;
  bss_minor_words : float; (* minor-heap words per delivery *)
  pc_minor_words : float;
}

let json_of_member_row m =
  let round2 x = Float.round (x *. 100.0) /. 100.0 in
  Json.Obj
    [
      ("mode", Json.Str m.mode);
      ("members", Json.Num (float_of_int m.members));
      ("bss_meta_bytes_per_delivery", Json.Num (round2 m.bss_meta_bytes));
      ("pc_meta_bytes_per_delivery", Json.Num (round2 m.pc_meta_bytes));
      ("bss_ns_per_delivery", Json.Num (Float.round m.bss_ns));
      ("pc_ns_per_delivery", Json.Num (Float.round m.pc_ns));
      ("bss_minor_words_per_delivery", Json.Num (round2 m.bss_minor_words));
      ("pc_minor_words_per_delivery", Json.Num (round2 m.pc_minor_words));
    ]

(* One task of a pool sweep, as reported by Causalb_harness.Pool. *)
type sweep_task = {
  tname : string;
  ok : bool;
  wall_ms : float;
  gc_minor_words : float;
  gc_major_words : float;
}

type sweep = {
  mode : string; (* "seq" | "fork" | "domains" *)
  jobs : int;
  wall_ms : float;
  tasks : sweep_task list;
}

let json_of_sweep s =
  Json.Obj
    [
      ("mode", Json.Str s.mode);
      ("jobs", Json.Num (float_of_int s.jobs));
      ("wall_ms", Json.Num (Float.round (s.wall_ms *. 10.0) /. 10.0));
      ( "tasks",
        Json.List
          (List.map
             (fun t ->
               Json.Obj
                 [
                   ("name", Json.Str t.tname);
                   ("ok", Json.Bool t.ok);
                   ("wall_ms", Json.Num (Float.round (t.wall_ms *. 10.0) /. 10.0));
                   ("gc_minor_words", Json.Num (Float.round t.gc_minor_words));
                   ("gc_major_words", Json.Num (Float.round t.gc_major_words));
                 ])
             s.tasks) );
    ]

(* Online CPU count, for honest speedup reporting: a 1-core container
   cannot show a parallel win however good the sharding, and the artifact
   must say so rather than imply one. *)
let cores () =
  let count_processors path =
    try
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.length line >= 9 && String.sub line 0 9 = "processor"
           then incr n
         done
       with End_of_file -> ());
      close_in ic;
      !n
    with Sys_error _ -> 0
  in
  let n = count_processors "/proc/cpuinfo" in
  if n > 0 then n else 1

let default_path = "BENCH_PR10.json"

let path () =
  Option.value ~default:default_path (Sys.getenv_opt "CAUSALB_BENCH_OUT")

(* Modelled parallel wall from per-task sequential walls, matching the
   scheduler that actually ran: the fork pool shards statically
   round-robin, so its wall is the busiest shard; the domains pool
   claims dynamically in task order, so its wall is greedy list
   scheduling.  This is what a machine with >= jobs free cores would
   measure; recorded next to [cores] so a 1-core run doesn't masquerade
   as a parallel win. *)
let modelled_wall ~mode ~jobs (tasks1 : sweep_task list) =
  let shard = Array.make (max 1 jobs) 0.0 in
  (match mode with
  | "fork" ->
    List.iteri
      (fun i (t : sweep_task) ->
        let w = i mod jobs in
        shard.(w) <- shard.(w) +. t.wall_ms)
      tasks1
  | _ ->
    List.iter
      (fun (t : sweep_task) ->
        let w = ref 0 in
        Array.iteri (fun i v -> if v < shard.(!w) then w := i) shard;
        shard.(!w) <- shard.(!w) +. t.wall_ms)
      tasks1);
  Array.fold_left Float.max 0.0 shard

let write ?(quota_ms = 0) ?(members = []) ~rows ~sweeps () =
  let sweep_fields =
    match sweeps with
    | [] -> []
    | _ ->
      let seq = List.find_opt (fun s -> s.jobs <= 1) sweeps in
      let parallel = List.filter (fun s -> s.jobs > 1) sweeps in
      let round2 x = Float.round (x *. 100.0) /. 100.0 in
      let measured =
        match seq with
        | Some s1 ->
          List.filter_map
            (fun s ->
              if s.wall_ms > 0.0 then
                Some
                  ( "sweep_speedup_measured_" ^ s.mode,
                    Json.Num (round2 (s1.wall_ms /. s.wall_ms)) )
              else None)
            parallel
        | None -> []
      in
      let modelled =
        match seq with
        | Some s1 ->
          let total =
            List.fold_left
              (fun a (t : sweep_task) -> a +. t.wall_ms)
              0.0 s1.tasks
          in
          List.filter_map
            (fun s ->
              let critical =
                modelled_wall ~mode:s.mode ~jobs:s.jobs s1.tasks
              in
              if critical > 0.0 then
                Some
                  ( "sweep_speedup_modelled_" ^ s.mode,
                    Json.Num (round2 (total /. critical)) )
              else None)
            parallel
        | None -> []
      in
      [ ("sweeps", Json.List (List.map json_of_sweep sweeps)) ]
      @ measured @ modelled
  in
  let member_fields =
    match members with
    | [] -> []
    | _ -> [ ("members", Json.List (List.map json_of_member_row members)) ]
  in
  let doc =
    Json.Obj
      ([
         ("schema", Json.Str "causalb-bench-v4");
         ("bench",
          Json.Str
            "allocation-lean hot paths + wire codec + parallel sweep + \
             member-count scaling (BSS O(n) vs PC O(1) metadata)");
         ("quota_ms", Json.Num (float_of_int quota_ms));
         ("cores", Json.Num (float_of_int (cores ())));
         ("rows", Json.List (List.map json_of_row rows));
       ]
      @ member_fields @ sweep_fields)
  in
  let out = path () in
  let oc = open_out out in
  output_string oc (Json.to_string_pretty doc);
  close_out oc;
  out
