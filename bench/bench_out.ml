(* The BENCH_PR5.json artifact: one schema covering both the before/after
   hot-path rows (superset of the PR 3 {name; n; before_ns; after_ns;
   speedup} rows, now with GC allocation columns) and the parallel-sweep
   section the [causalb bench -j N] runner appends.

   Per-unit normalisation: each row records [units] — how many logical
   operations (delivered messages, received stamps, …) one run of the
   shape performs — so minor-heap words *per delivered message* is
   [gc_minor_words_* /. units].  That quotient is what the PR's
   "allocation-lean hot path" claim is graded on. *)

module Json = Causalb_util.Json

type row = {
  name : string;
  n : int;
  units : float; (* logical operations per run, for per-unit normalising *)
  before_ns : float;
  after_ns : float;
  before_minor_words : float; (* per run *)
  after_minor_words : float;
  before_major_words : float;
  after_major_words : float;
}

let speedup r = r.before_ns /. r.after_ns

(* Fraction of minor-heap allocation the "after" path saves; NaN-safe for
   shapes whose before path allocates nothing. *)
let minor_words_saved r =
  if r.before_minor_words <= 0.0 then 0.0
  else 1.0 -. (r.after_minor_words /. r.before_minor_words)

let json_of_row r =
  Json.Obj
    [
      ("name", Json.Str r.name);
      ("n", Json.Num (float_of_int r.n));
      ("units", Json.Num r.units);
      ("before_ns", Json.Num (Float.round r.before_ns));
      ("after_ns", Json.Num (Float.round r.after_ns));
      ("speedup", Json.Num (Float.round (speedup r *. 100.0) /. 100.0));
      ("gc_minor_words_before", Json.Num (Float.round r.before_minor_words));
      ("gc_minor_words_after", Json.Num (Float.round r.after_minor_words));
      ("gc_major_words_before", Json.Num (Float.round r.before_major_words));
      ("gc_major_words_after", Json.Num (Float.round r.after_major_words));
      ( "minor_words_saved",
        Json.Num (Float.round (minor_words_saved r *. 1000.0) /. 1000.0) );
    ]

(* One task of a pool sweep, as reported by Causalb_harness.Pool. *)
type sweep_task = {
  tname : string;
  ok : bool;
  wall_ms : float;
  gc_minor_words : float;
  gc_major_words : float;
}

type sweep = { jobs : int; wall_ms : float; tasks : sweep_task list }

let json_of_sweep s =
  Json.Obj
    [
      ("jobs", Json.Num (float_of_int s.jobs));
      ("wall_ms", Json.Num (Float.round (s.wall_ms *. 10.0) /. 10.0));
      ( "tasks",
        Json.List
          (List.map
             (fun t ->
               Json.Obj
                 [
                   ("name", Json.Str t.tname);
                   ("ok", Json.Bool t.ok);
                   ("wall_ms", Json.Num (Float.round (t.wall_ms *. 10.0) /. 10.0));
                   ("gc_minor_words", Json.Num (Float.round t.gc_minor_words));
                   ("gc_major_words", Json.Num (Float.round t.gc_major_words));
                 ])
             s.tasks) );
    ]

(* Online CPU count, for honest speedup reporting: a 1-core container
   cannot show a parallel win however good the sharding, and the artifact
   must say so rather than imply one. *)
let cores () =
  let count_processors path =
    try
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.length line >= 9 && String.sub line 0 9 = "processor"
           then incr n
         done
       with End_of_file -> ());
      close_in ic;
      !n
    with Sys_error _ -> 0
  in
  let n = count_processors "/proc/cpuinfo" in
  if n > 0 then n else 1

let default_path = "BENCH_PR5.json"

let path () =
  Option.value ~default:default_path (Sys.getenv_opt "CAUSALB_BENCH_OUT")

let write ?(quota_ms = 0) ~rows ~sweeps () =
  let sweep_fields =
    match sweeps with
    | [] -> []
    | _ ->
      let wall j =
        List.find_opt (fun s -> s.jobs = j) sweeps
        |> Option.map (fun s -> s.wall_ms)
      in
      let measured =
        match (wall 1, List.rev sweeps) with
        | Some w1, s :: _ when s.jobs > 1 && s.wall_ms > 0.0 ->
          [ ("sweep_speedup_measured", Json.Num
               (Float.round (w1 /. s.wall_ms *. 100.0) /. 100.0)) ]
        | _ -> []
      in
      (* Modelled speedup: with per-task j=1 walls and static round-robin
         shards, the parallel wall is the busiest shard.  This is what a
         machine with >= jobs free cores would measure; recorded next to
         [cores] so a 1-core run doesn't masquerade as a parallel win. *)
      let modelled =
        match (List.find_opt (fun s -> s.jobs = 1) sweeps, List.rev sweeps) with
        | Some s1, sj :: _ when sj.jobs > 1 ->
          let total =
            List.fold_left
              (fun a (t : sweep_task) -> a +. t.wall_ms)
              0.0 s1.tasks
          in
          let shard = Array.make sj.jobs 0.0 in
          List.iteri
            (fun i (t : sweep_task) ->
              let w = i mod sj.jobs in
              shard.(w) <- shard.(w) +. t.wall_ms)
            s1.tasks;
          let critical = Array.fold_left Float.max 0.0 shard in
          if critical > 0.0 then
            [ ("sweep_speedup_modelled", Json.Num
                 (Float.round (total /. critical *. 100.0) /. 100.0)) ]
          else []
        | _ -> []
      in
      [ ("sweeps", Json.List (List.map json_of_sweep sweeps)) ]
      @ measured @ modelled
  in
  let doc =
    Json.Obj
      ([
         ("schema", Json.Str "causalb-bench-v2");
         ("bench", Json.Str "allocation-lean hot paths + parallel sweep");
         ("quota_ms", Json.Num (float_of_int quota_ms));
         ("cores", Json.Num (float_of_int (cores ())));
         ("rows", Json.List (List.map json_of_row rows));
       ]
      @ sweep_fields)
  in
  let out = path () in
  let oc = open_out out in
  output_string oc (Json.to_string_pretty doc);
  close_out oc;
  out
