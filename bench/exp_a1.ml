(* A1 (ablation) — what reliability costs: the NACK/repair/heartbeat
   recovery layer (Rgroup) on a lossy transport.  The 1994 paper assumes a
   reliable broadcast substrate; this ablation measures the price of
   providing that assumption, as a function of the raw loss rate. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Fault = Causalb_net.Fault
module Rgroup = Causalb_core.Rgroup
module Dep = Causalb_graph.Dep
module Label = Causalb_graph.Label
module Stats = Causalb_util.Stats
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

let nodes = 4

let ops = 200

let run ~drop ~seed =
  let engine = Engine.create ~seed () in
  let net =
    Net.create engine ~nodes
      ~latency:(Latency.lognormal ~mu:0.3 ~sigma:0.8 ())
      ~fault:(Fault.make ~drop_prob:drop ())
      ()
  in
  let send_times = Label.Tbl.create 256 in
  let lat = Stats.create () in
  let g =
    Rgroup.create net
      ~on_deliver:(fun ~node:_ ~time msg ->
        match Label.Tbl.find_opt send_times (Causalb_core.Message.label msg) with
        | Some t0 -> Stats.add lat (time -. t0)
        | None -> ())
      ()
  in
  Rgroup.enable_heartbeat g ~period:20.0 ~until:(float_of_int ops +. 2000.0);
  let prev = ref Dep.null in
  for i = 0 to ops - 1 do
    Engine.schedule_at engine ~time:(float_of_int i *. 1.0) (fun () ->
        let dep = if i mod 3 = 0 then !prev else Dep.null in
        let lbl = Rgroup.osend g ~src:(i mod nodes) ~dep i in
        Label.Tbl.replace send_times lbl (Engine.now engine);
        if i mod 3 = 0 then prev := Dep.after lbl)
  done;
  Engine.run engine;
  let complete =
    List.for_all
      (fun o -> List.length o = ops)
      (Rgroup.all_delivered_orders g)
  in
  (g, net, lat, complete)

let run_exp () =
  let t =
    Table.create
      ~title:
        "A1: recovery-layer cost vs raw loss rate (4 nodes, 200 ops, \
         NACK + heartbeat)"
      ~columns:
        [
          "drop";
          "complete";
          "p50 ms";
          "p95 ms";
          "nacks";
          "repairs";
          "summaries";
          "overhead msgs/op";
        ]
  in
  List.iter
    (fun drop ->
      let g, net, lat, complete = run ~drop ~seed:19 in
      let data_msgs = ops * nodes in
      let overhead =
        float_of_int (Net.messages_sent net - data_msgs) /. float_of_int ops
      in
      Table.add_row t
        [
          Printf.sprintf "%.2f" drop;
          string_of_bool complete;
          Exp_common.fmt (Stats.percentile lat 50.0);
          Exp_common.fmt (Stats.percentile lat 95.0);
          string_of_int (Rgroup.nacks_sent g);
          string_of_int (Rgroup.repairs_sent g);
          string_of_int (Rgroup.summaries_sent g);
          Printf.sprintf "%.2f" overhead;
        ])
    [ 0.0; 0.05; 0.1; 0.2; 0.35; 0.5 ];
  Table.print t;
  Printer.line
    "Expected shape: completeness stays total across the sweep while\n\
     overhead messages and tail latency grow with the loss rate — the\n\
     reliable-substrate assumption is purchasable at bounded cost."

let run = run_exp
