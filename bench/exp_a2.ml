(* A2 (ablation) — view-change cost: the flush protocol's latency and
   message count as the group grows, with application traffic in flight.
   Virtual synchrony is the paper's substrate assumption (ISIS [2]); this
   quantifies the stop-and-flush pause a membership change imposes. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Vgroup = Causalb_core.Vgroup
module Stats = Causalb_util.Stats
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

let run_exp () =
  let t =
    Table.create
      ~title:
        "A2: virtually synchronous view change vs group size (join of one \
         node during traffic)"
      ~columns:
        [ "n"; "install span ms"; "join->all installed ms"; "msgs"; "vs ok" ]
  in
  List.iter
    (fun n ->
      let engine = Engine.create ~seed:23 () in
      let net =
        Net.create engine ~nodes:(n + 1)
          ~latency:(Latency.lognormal ~mu:0.3 ~sigma:0.8 ())
          ~fifo:false ()
      in
      let install_times = Hashtbl.create 8 in
      let members = List.init n Fun.id in
      let g =
        Vgroup.create net ~initial:members
          ~on_view:(fun ~node v ->
            if v.Vgroup.vid = 1 then
              Hashtbl.replace install_times node (Engine.now engine))
          ~get_state:(fun ~node:_ -> ())
          ()
      in
      (* background traffic *)
      for i = 0 to 49 do
        Engine.schedule_at engine ~time:(float_of_int i *. 0.4) (fun () ->
            if Vgroup.is_member g (i mod n) then
              Vgroup.bcast g ~src:(i mod n) i)
      done;
      let join_at = 10.0 in
      let msgs_before = ref 0 in
      Engine.schedule_at engine ~time:join_at (fun () ->
          msgs_before := Net.messages_sent net;
          Vgroup.join g ~node:n);
      Engine.run engine;
      let times = Hashtbl.fold (fun _ tm acc -> tm :: acc) install_times [] in
      let first = List.fold_left min infinity times in
      let last = List.fold_left max neg_infinity times in
      Table.add_row t
        [
          string_of_int n;
          Exp_common.fmt (last -. first);
          Exp_common.fmt (last -. join_at);
          string_of_int (Net.messages_sent net - !msgs_before);
          string_of_bool
            (Vgroup.check_virtual_synchrony g && Vgroup.check_views_agree g);
        ])
    [ 2; 4; 8; 16; 32 ];
  Table.print t;
  Printer.line
    "Expected shape: time-to-installed grows mildly with n (one flush\n\
     broadcast per member, all concurrent); the message bill for a change\n\
     is ~n broadcasts = O(n^2) unicasts, plus the interrupted traffic's\n\
     own copies."

let run = run_exp
