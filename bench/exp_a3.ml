(* A3 (ablation) — stability-based garbage collection of the repair
   stash.  Without GC every member retains every message forever (the
   repair source can be anyone); with the summary watermark protocol,
   globally stable messages are pruned and the stash stays bounded
   regardless of run length. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Fault = Causalb_net.Fault
module Rgroup = Causalb_core.Rgroup
module Dep = Causalb_graph.Dep
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

let run_one ~ops ~gc =
  let engine = Engine.create ~seed:29 () in
  let net =
    Net.create engine ~nodes:4
      ~latency:(Latency.lognormal ~mu:0.3 ~sigma:0.7 ())
      ~fault:(Fault.make ~drop_prob:0.1 ())
      ()
  in
  let g = Rgroup.create net () in
  Rgroup.enable_heartbeat ~gc g ~period:15.0
    ~until:(float_of_int ops +. 1_000.0);
  for i = 0 to ops - 1 do
    Engine.schedule_at engine ~time:(float_of_int i *. 1.0) (fun () ->
        ignore (Rgroup.osend g ~src:(i mod 4) ~dep:Dep.null i))
  done;
  Engine.run engine;
  let complete =
    List.for_all (fun o -> List.length o = ops) (Rgroup.all_delivered_orders g)
  in
  (g, complete)

let run () =
  let t =
    Table.create
      ~title:
        "A3: repair-stash size with and without stability GC (4 nodes, 10% \
         loss, heartbeat 15ms)"
      ~columns:
        [
          "ops";
          "peak no-gc";
          "final no-gc";
          "peak gc";
          "final gc";
          "pruned";
          "complete";
        ]
  in
  List.iter
    (fun ops ->
      let without, c1 = run_one ~ops ~gc:false in
      let with_gc, c2 = run_one ~ops ~gc:true in
      Table.add_row t
        [
          string_of_int ops;
          string_of_int (Rgroup.stash_peak without);
          string_of_int (Rgroup.stash_size without);
          string_of_int (Rgroup.stash_peak with_gc);
          string_of_int (Rgroup.stash_size with_gc);
          string_of_int (Rgroup.pruned with_gc);
          string_of_bool (c1 && c2);
        ])
    [ 100; 400; 1_600 ];
  Table.print t;
  Printer.line
    "Expected shape: without GC the stash equals the whole history (grows\n\
     with ops); with the watermark protocol the peak plateaus at roughly\n\
     the traffic of one heartbeat interval, independent of run length —\n\
     and recovery still completes."
