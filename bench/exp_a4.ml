(* A4 (ablation) — the OR-dependency extension.  The paper's relation (3)
   is an AND over ancestors; we additionally support
   [Occurs_After (m1 ∨ m2 ∨ …)] — "deliverable once any alternative has
   been processed".  The classic use is first-response coordination: a
   requester broadcasts, the other members answer, and the requester's
   follow-up (a commit) needs only the fastest answer, not all of them.

   The commit's predicate still names every ack; AND delivery waits for
   the slowest responder at every member, OR delivery proceeds on the
   locally-fastest one.  We measure the requester's request→commit
   round-trip under growing link variance. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Group = Causalb_core.Group
module Message = Causalb_core.Message
module Dep = Causalb_graph.Dep
module Label = Causalb_graph.Label
module Stats = Causalb_util.Stats
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

type payload = Req of int | Ack of int | Commit of int

let nodes = 6

let rounds = 50

let run ~any ~sigma =
  let engine = Engine.create ~seed:61 () in
  let net =
    Net.create engine ~nodes
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma ())
      ~fifo:false ()
  in
  let issue = Hashtbl.create 64 in
  let lat = Stats.create () in
  let acks : (int, Label.t list) Hashtbl.t = Hashtbl.create 64 in
  let commit_sent = Hashtbl.create 64 in
  let group_ref = ref None in
  let on_deliver ~node ~time msg =
    let group = Option.get !group_ref in
    match Message.payload msg with
    | Req round ->
      if node <> 0 then
        ignore
          (Group.osend group ~src:node
             ~dep:(Dep.after (Message.label msg))
             (Ack round))
    | Ack round ->
      if node = 0 then begin
        let prev =
          Message.label msg
          :: Option.value ~default:[] (Hashtbl.find_opt acks round)
        in
        Hashtbl.replace acks round prev;
        (* OR: fire on the first ack; AND: once all acks are known (so
           both predicates name the same full alternative set) *)
        let fire =
          if any then not (Hashtbl.mem commit_sent round)
          else List.length prev = nodes - 1
        in
        if fire && not (Hashtbl.mem commit_sent round) then begin
          Hashtbl.replace commit_sent round ();
          let dep =
            if any then Dep.after_any prev else Dep.after_all prev
          in
          ignore (Group.osend group ~src:0 ~dep (Commit round))
        end
      end
    | Commit round ->
      if node = 0 then (
        match Hashtbl.find_opt issue round with
        | Some t0 -> Stats.add lat (time -. t0)
        | None -> ())
  in
  let group = Group.create net ~on_deliver () in
  group_ref := Some group;
  for round = 0 to rounds - 1 do
    Engine.schedule_at engine ~time:(float_of_int round *. 40.0) (fun () ->
        Hashtbl.replace issue round (Engine.now engine);
        ignore (Group.osend group ~src:0 ~dep:Dep.null (Req round)))
  done;
  Engine.run engine;
  lat

let run () =
  let t =
    Table.create
      ~title:
        "A4: OR-dependency extension — request/ack/commit round-trip at \
         the requester (6 nodes, 50 rounds)"
      ~columns:
        [ "sigma"; "AND p50"; "AND p95"; "OR p50"; "OR p95"; "OR speedup p95" ]
  in
  List.iter
    (fun sigma ->
      let all = run ~any:false ~sigma in
      let any = run ~any:true ~sigma in
      Table.add_row t
        [
          Printf.sprintf "%.1f" sigma;
          Exp_common.fmt (Stats.percentile all 50.0);
          Exp_common.fmt (Stats.percentile all 95.0);
          Exp_common.fmt (Stats.percentile any 50.0);
          Exp_common.fmt (Stats.percentile any 95.0);
          Printf.sprintf "%.2fx"
            (Stats.percentile all 95.0 /. Stats.percentile any 95.0);
        ])
    [ 0.4; 0.8; 1.2; 1.6 ];
  Table.print t;
  Printer.line
    "Expected shape: the OR commit launches on the first ack instead of\n\
     the slowest, so its round-trip tracks the minimum of the responder\n\
     delays rather than the maximum; the gap grows with link variance\n\
     (a straight-line consequence of order statistics)."
