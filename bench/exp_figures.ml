(* Executable reproductions of the paper's five figures (F1–F5).  Each
   prints the scenario's observable behaviour and asserts the property the
   figure illustrates. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Group = Causalb_core.Group
module Osend = Causalb_core.Osend
module Asend = Causalb_core.Asend
module Checker = Causalb_core.Checker
module Message = Causalb_core.Message
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Dt = Causalb_data.Datatypes
module Service = Causalb_data.Service
module Replica = Causalb_data.Replica
module Lock = Causalb_protocols.Lock_service
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

let jittery = Latency.lognormal ~mu:0.5 ~sigma:1.0 ()

let hr title =
  Printer.printf "\n================ %s ================\n" title

(* F1 (Fig. 1): a data-access message is seen by all entities; every local
   copy changes identically. *)
let f1 () =
  hr "F1 (Fig. 1): data access by message broadcast";
  let engine = Engine.create ~seed:101 () in
  let svc =
    Service.create engine ~replicas:3 ~machine:Dt.Kv_store.machine
      ~latency:jittery ()
  in
  ignore (Service.submit svc ~src:0 (Dt.Kv_store.Upd ("VAL", "42")));
  Service.run svc;
  List.iter
    (fun r ->
      Printer.printf "entity a%d: VAL = %s\n" (Replica.id r)
        (Option.value ~default:"?" (Dt.Kv_store.lookup (Replica.state r) "VAL")))
    (Service.replicas svc);
  assert (List.for_all snd (Service.check svc));
  Printer.line "all entities saw the access message: OK"

(* F2 (Fig. 2): R(M) = mk -> ||{mi, mi'}: concurrent messages are seen in
   different orders, but a message depending on both is a synchronization
   point at which views agree. *)
let f2 () =
  hr "F2 (Fig. 2): causal broadcast scenario, mk -> ||{mi,mi'}";
  let engine = Engine.create ~seed:102 () in
  let net =
    Net.create engine ~nodes:3 ~latency:(Latency.lognormal ~mu:1.0 ~sigma:1.2 ())
      ~fifo:false ()
  in
  let group = Group.create net () in
  let mk = Group.osend group ~src:2 ~name:"mk" ~dep:Dep.null "mk" in
  Engine.run engine;
  let mi = Group.osend group ~src:0 ~name:"mi" ~dep:(Dep.after mk) "mi" in
  let mi' = Group.osend group ~src:1 ~name:"mi2" ~dep:(Dep.after mk) "mi2" in
  Engine.run engine;
  let mj =
    Group.osend group ~src:0 ~name:"mj" ~dep:(Dep.after_all [ mi; mi' ]) "mj"
  in
  Engine.run engine;
  let t = Table.create ~title:"delivery order per entity" ~columns:[ "entity"; "order" ] in
  List.iteri
    (fun node order ->
      Table.add_row t
        [
          Printf.sprintf "a%d" node;
          String.concat " -> " (List.map Label.to_string order);
        ])
    (Group.all_delivered_orders group);
  Table.print t;
  let orders = Group.all_delivered_orders group in
  assert (Checker.same_set orders);
  List.iter
    (fun order ->
      assert (Label.equal (List.hd order) mk);
      assert (Label.equal (List.nth order 3) mj))
    orders;
  Printer.line
    "mk first and mj last everywhere; mi/mi' interleave freely: OK"

(* F3 (Fig. 3): the message dependency graph, extracted from the OSend
   trace, identical at every member. *)
let f3 () =
  hr "F3 (Fig. 3): dependency graph extraction";
  let engine = Engine.create ~seed:103 () in
  let net = Net.create engine ~nodes:3 ~latency:jittery ~fifo:false () in
  let group = Group.create net () in
  let msg_ = Group.osend group ~src:0 ~name:"Msg" ~dep:Dep.null "Msg" in
  let m1 = Group.osend group ~src:1 ~name:"m1" ~dep:(Dep.after msg_) "m1" in
  let m2 = Group.osend group ~src:2 ~name:"m2" ~dep:(Dep.after msg_) "m2" in
  ignore
    (Group.osend group ~src:0 ~name:"m3" ~dep:(Dep.after_all [ m1; m2 ]) "m3");
  Engine.run engine;
  let g0 = Osend.graph (Group.member group 0) in
  Printer.string
    (Format.asprintf "graph as seen by member 0:@.%a@." Depgraph.pp g0);
  Printer.line "dot rendering:";
  Printer.string (Depgraph.to_dot g0);
  (* stable information: all members extracted the same graph *)
  List.iter
    (fun node ->
      let g = Osend.graph (Group.member group node) in
      assert (
        List.sort compare (Depgraph.edges g)
        = List.sort compare (Depgraph.edges g0)))
    [ 1; 2 ];
  Printer.line "graphs identical at all members (stable information): OK"

(* F4 (Fig. 4): the total-ordering function interposed between causal
   broadcast and the application. *)
let f4 () =
  hr "F4 (Fig. 4): ASend total-ordering layer over causal broadcast";
  let engine = Engine.create ~seed:104 () in
  let net =
    Net.create engine ~nodes:4
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.2 ())
      ~fifo:false ()
  in
  let raw_orders = Array.make 4 [] in
  let merges =
    Array.init 4 (fun _ ->
        Asend.Merge.create ~is_sync:(fun m -> Message.payload m = "sync") ())
  in
  let group =
    Group.create net
      ~on_deliver:(fun ~node ~time:_ m ->
        raw_orders.(node) <- Message.label m :: raw_orders.(node);
        Asend.Merge.on_causal_deliver merges.(node) m)
      ()
  in
  let spont =
    List.init 8 (fun i ->
        Group.osend group ~src:(i mod 4) ~name:(Printf.sprintf "s%d" i)
          ~dep:Dep.null "spont")
  in
  ignore
    (Group.osend group ~src:0 ~name:"sync" ~dep:(Dep.after_all spont) "sync");
  Engine.run engine;
  let t =
    Table.create ~title:"causal (raw) order vs ASend (total) order"
      ~columns:[ "member"; "raw causal order"; "ASend order" ]
  in
  Array.iteri
    (fun node merge ->
      Table.add_row t
        [
          string_of_int node;
          String.concat " "
            (List.map Label.to_string (List.rev raw_orders.(node)));
          String.concat " "
            (List.map Label.to_string (Asend.Merge.total_order merge));
        ])
    merges;
  Table.print t;
  let totals = Array.to_list (Array.map Asend.Merge.total_order merges) in
  assert (Checker.identical_orders totals);
  let raws = Array.to_list (Array.map (fun o -> List.rev o) raw_orders) in
  Printer.printf "raw orders identical: %b (expected: usually false)\n"
    (Checker.identical_orders raws);
  Printer.line "ASend orders identical at all members: OK"

(* F5 (Fig. 5): the LOCK/TFR arbitration timeline. *)
let f5 () =
  hr "F5 (Fig. 5): decentralized lock arbitration";
  let engine = Engine.create ~seed:105 () in
  let lock =
    Lock.create engine ~members:3
      ~latency:(Latency.lognormal ~mu:0.4 ~sigma:0.8 ())
      ~hold:(Latency.constant 1.5) ()
  in
  Lock.start lock ~cycles:2;
  Engine.run engine;
  let t =
    Table.create ~title:"grants" ~columns:[ "cycle S"; "holder"; "grant ms"; "release ms" ]
  in
  List.iter
    (fun g ->
      Table.add_row t
        [
          string_of_int g.Lock.cycle;
          String.make 1 (Char.chr (Char.code 'A' + g.Lock.holder));
          Exp_common.fmt g.Lock.grant_time;
          Exp_common.fmt g.Lock.release_time;
        ])
    (Lock.grants lock);
  Table.print t;
  assert (Lock.check_mutual_exclusion lock);
  assert (Lock.check_agreement lock);
  assert (Lock.check_liveness lock ~expected_cycles:2);
  Printer.line "mutual exclusion, agreement, liveness: OK"

let run () =
  f1 ();
  f2 ();
  f3 ();
  f4 ();
  f5 ()
