(* H1 — the fault campaign as a registered experiment: a fixed 28-case
   hunt (4 per composition) run in-process, reported as one table.

   Campaign cases and verdicts are pure functions of the base seed, so
   the table is byte-reproducible and participates in the sweep's
   parallel-equals-sequential byte check.  Cases run sequentially here —
   the experiment itself may be sharded by the pool, and a nested pool
   inside a forked worker would fork from a worker process. *)

module C = Causalb_harness.Campaign
module D = Causalb_harness.Drivers
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

let seeds = 28

let run () =
  let cases = C.generate ~base_seed:2026 ~seeds () in
  let verdicts = List.map (fun c -> C.run_case c) cases in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "H1: fault campaign — %d cases over every composition" seeds)
      ~columns:
        [ "case"; "spec"; "n"; "ops"; "nemesis"; "lost"; "msgs"; "verdict" ]
  in
  List.iter
    (fun (v : C.verdict) ->
      let c = v.C.case in
      Table.add_row t
        [
          c.C.name;
          D.stack_spec_name c.C.spec;
          string_of_int c.C.replicas;
          string_of_int c.C.workload.D.ops;
          (match c.C.nemesis with
          | [] -> "quiet"
          | es -> Printf.sprintf "%d events" (List.length es));
          string_of_int v.C.lost;
          string_of_int v.C.messages;
          (if v.C.ok then "ok" else "VIOLATION");
        ])
    verdicts;
  Table.print t;
  let failures = List.filter (fun v -> not v.C.ok) verdicts in
  let lossy = List.filter (fun v -> v.C.lost > 0) verdicts in
  Printer.line
    (Printf.sprintf
       "campaign verdict: %d/%d clean (%d ran under loss on the wire)"
       (List.length verdicts - List.length failures)
       (List.length verdicts) (List.length lossy));
  Printer.line
    "Expected shape: every case clean — under loss the oracle restricts\n\
     itself to the safety properties (causal/FIFO order of what WAS\n\
     delivered, stable-point digests), which the engines must uphold\n\
     through partitions, drops, duplication and jitter."
