(* O1 — causally consistent objects from sequential specifications.

   Three replicated objects whose Cid/Ncid labeling is derived from
   their Seq_spec commutativity relation (no hand-marked kinds), each
   run over the stable-point service with tracing on and audited twice:
   online by Service.check (including canonical stable-digest
   agreement) and offline by the ordering oracle over the trace.

   The workloads are the shared harness builders, so `causalb-check
   --objects` audits byte-for-byte the same runs this experiment
   prints. *)

module Drivers = Causalb_harness.Drivers
module Seq_spec = Causalb_data.Seq_spec
module Objects = Causalb_data.Objects
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

let replicas = 4

let rounds = 24

let window = 6

let row name cid (r : Drivers.object_result) =
  [
    name;
    cid;
    string_of_int r.Drivers.cycles;
    string_of_int r.Drivers.stable_marks;
    string_of_int r.Drivers.messages;
    (if List.for_all snd r.Drivers.checks then "ok" else "FAILED");
    (if r.Drivers.diagnostics = [] then "ok"
     else Printf.sprintf "%d diags" (List.length r.Drivers.diagnostics));
  ]

let cid_of spec = String.concat "," (Seq_spec.cid_classes spec)

let run () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "O1: spec-derived objects — %d replicas, %d rounds, window %d"
           replicas rounds window)
      ~columns:
        [ "object"; "derived Cid"; "cycles"; "marks"; "msgs"; "checks"; "oracle" ]
  in
  let counter =
    Drivers.run_object ~seed:42 ~replicas ~machine:Objects.Counter.machine
      (Drivers.counter_pipeline ~replicas ~rounds ~window ())
  in
  Table.add_row t (row "counter pipeline" (cid_of Objects.Counter.spec) counter);
  let cart =
    Drivers.run_object ~seed:43 ~replicas ~machine:Objects.Or_set.machine
      (Drivers.cart_workload ~replicas ~rounds ~window ())
  in
  Table.add_row t (row "or-set cart" (cid_of Objects.Or_set.spec) cart);
  let edit =
    Drivers.run_object ~seed:44 ~replicas ~machine:Objects.Rga.machine
      (Drivers.editing_workload ~replicas ~rounds ~window ())
  in
  Table.add_row t (row "rga collab edit" (cid_of Objects.Rga.spec) edit);
  Table.print t;
  Printer.line
    "Expected shape: every object derives its Cid set from the declared\n\
     commutativity relation (note the RGA: both mutators ride the\n\
     window, only the read is a sync point), every closing sync leaves\n\
     one stable Mark per member, and both the online checks and the\n\
     offline oracle come back clean."
