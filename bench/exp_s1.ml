(* S1 — the ordering stack: one §6.1 workload over every composition.

   The stack drivers run the same operation mix through interchangeable
   pipelines (transport -> causal -> optional total-order layer) and
   report the same per-layer metrics for each, so the orderings become
   rows of one table rather than separate programs.  Per composition:
   the layer stack (bottom-up), message count, causal-layer forced
   waits, and the application-level release latency. *)

module Drivers = Causalb_harness.Drivers
module Metrics = Causalb_stackbase.Metrics
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

let replicas = 4

let workload = { Drivers.ops = 200; spacing = 0.5; mix = Drivers.Fixed_window 5 }

let specs =
  [
    Drivers.Fifo_only;
    Drivers.Bss_stack;
    Drivers.Psync_stack;
    Drivers.Osend_stack;
    Drivers.Osend_merge;
    Drivers.Osend_counted (workload.Drivers.ops + 1);
    Drivers.Osend_sequencer;
  ]

let run () =
  let summary =
    Table.create
      ~title:
        (Printf.sprintf
           "S1: stack compositions — %d replicas, %d ops, window 5"
           replicas workload.Drivers.ops)
      ~columns:
        [
          "composition"; "msgs"; "waits"; "rel p50"; "rel p95"; "checks";
          "oracle";
        ]
  in
  let detail =
    Table.create
      ~title:"S1 detail: uniform per-layer metrics (every composition)"
      ~columns:("composition" :: Metrics.columns)
  in
  List.iter
    (fun spec ->
      (* [~check:true]: the offline oracle audits each bench trace — the
         "oracle" column is its verdict over every applicable checker. *)
      let r = Drivers.run_stack ~seed:42 ~replicas ~check:true spec workload in
      let oracle =
        match r.Drivers.audit with
        | None -> "-"
        | Some a ->
          let nd = List.length a.Drivers.diagnostics in
          let nl = List.length a.Drivers.lint in
          if nd = 0 && nl = 0 then "ok"
          else Printf.sprintf "%d diags, %d lint" nd nl
      in
      Table.add_row summary
        [
          Drivers.stack_spec_name spec;
          string_of_int r.Drivers.messages;
          string_of_int r.Drivers.buffered;
          Exp_common.fmt (Exp_common.p50 r.Drivers.delivery);
          Exp_common.fmt (Exp_common.p95 r.Drivers.delivery);
          (if r.Drivers.checks_ok then "ok" else "FAILED");
          oracle;
        ];
      List.iter
        (fun m ->
          Table.add_row detail (Drivers.stack_spec_name spec :: Metrics.row m))
        r.Drivers.layers)
    specs;
  Table.print summary;
  Table.print detail;
  Printer.line
    "Expected shape: release latency rises as compositions demand more\n\
     ordering — fifo < causal (bss/psync/osend by constraint set) <\n\
     interposed total order; the merge pays with held messages, the\n\
     sequencer with an extra hop, while the wire cost of the causal\n\
     compositions stays identical."
