(* T1 — "more asynchronism": per-operation latency of the causal
   stable-point protocol vs the two total-order realisations, sweeping the
   group size.  Paper claim (§1, §3.2, §7): anchoring agreement on stable
   points instead of per-message total order yields more asynchronism in
   the execution; the gap should widen with group size and latency
   variance.

   T1 dominates the sweep's wall clock (the timestamp driver is O(n²)
   messages, and the n=32 row alone costs more than most whole
   experiments), so it is exposed to the parallel runner as [parts]: a
   header part, one part per group size, and a tail part.  Each row part
   renders against the same fixed column widths, so the captured chunks
   concatenate to exactly the sequential table — run order, not run
   placement, determines the bytes. *)

module Table = Causalb_util.Table
module Printer = Causalb_util.Printer
module Stats = Causalb_util.Stats
module Latency = Causalb_sim.Latency
open Exp_common

let workload = { ops = 300; spacing = 0.5; mix = Random 0.9 }

let sizes = [ 3; 5; 8; 12; 16; 24; 32 ]

let columns =
  [
    "n";
    "causal p50";
    "causal p95";
    "merge p50";
    "merge p95";
    "seq p50";
    "seq p95";
    "tstamp p50";
    "tstamp p95";
    "causal msgs";
    "tstamp msgs";
  ]

(* Fixed widths: wide enough for any cell every part can produce, so the
   parts line up without seeing each other's data. *)
let widths = List.map (fun h -> max (String.length h) 8) columns

let make_table () =
  let t =
    Table.create
      ~title:
        "T1: delivery latency (ms) vs group size — causal stable-point vs \
         ASend merge vs sequencer (90% commutative, lognormal LAN)"
      ~columns
  in
  Table.set_widths t widths;
  t

let head () = Printer.string (Table.render_header (make_table ()))

let row n =
  let t = make_table () in
  let causal = run_causal ~seed:1 ~replicas:n workload in
  let merge = run_merge ~seed:1 ~replicas:n workload in
  let seq = run_sequencer ~seed:1 ~replicas:n workload in
  let tstamp = run_timestamp ~seed:1 ~replicas:n workload in
  assert causal.checks_ok;
  assert merge.checks_ok;
  assert seq.checks_ok;
  assert tstamp.checks_ok;
  Table.add_row t
    [
      string_of_int n;
      fmt (p50 causal.delivery);
      fmt (p95 causal.delivery);
      fmt (p50 merge.delivery);
      fmt (p95 merge.delivery);
      fmt (p50 seq.delivery);
      fmt (p95 seq.delivery);
      fmt (p50 tstamp.delivery);
      fmt (p95 tstamp.delivery);
      string_of_int causal.messages;
      string_of_int tstamp.messages;
    ];
  Printer.string (Table.render_data_rows t)

let tail () =
  Printer.string (Table.render_footer (make_table ()));
  Printer.newline ();
  Printer.line
    "Expected shape: the causal stable-point path is fastest at every n —\n\
     it processes immediately and only agrees at sync points.  Both total\n\
     orders are slower: the sequencer pays an extra hop plus\n\
     serialisation; the merge layer sends nothing extra but holds each\n\
     message until its bracket closes, so with long windows its\n\
     per-message latency is the window residence time.";

  (* variance sweep at fixed n: causal delivery is insensitive, total
     orders degrade with tail latency *)
  let t2 =
    Table.create
      ~title:"T1b: latency vs link variance (n=8, lognormal sigma sweep)"
      ~columns:[ "sigma"; "causal p95"; "merge p95"; "seq p95" ]
  in
  List.iter
    (fun sigma ->
      let latency = Latency.lognormal ~mu:0.5 ~sigma () in
      let causal = run_causal ~seed:2 ~latency ~replicas:8 workload in
      let merge = run_merge ~seed:2 ~latency ~replicas:8 workload in
      let seq = run_sequencer ~seed:2 ~latency ~replicas:8 workload in
      Table.add_row t2
        [
          Printf.sprintf "%.1f" sigma;
          fmt (p95 causal.delivery);
          fmt (p95 merge.delivery);
          fmt (p95 seq.delivery);
        ])
    [ 0.2; 0.6; 1.0; 1.4 ];
  Table.print t2;
  ignore (Stats.count : Stats.t -> int)

let parts : (string * (unit -> unit)) list =
  (("head", head)
  :: List.map (fun n -> (Printf.sprintf "n=%d" n, fun () -> row n)) sizes)
  @ [ ("tail", tail) ]

let run () = List.iter (fun (_, f) -> f ()) parts
