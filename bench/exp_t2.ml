(* T2 — the commutativity dividend (§6.1): "typically 90% of the
   operations are commutative (e.g., as in many database applications).
   Thus, for example, f̄ = 20."  Sweep the commutative fraction and
   compare the stable-point protocol's per-op latency against the
   sequencer, which cannot exploit commutativity.  The benefit should grow
   with the commutative fraction. *)

module Table = Causalb_util.Table
module Printer = Causalb_util.Printer
module Stats = Causalb_util.Stats
open Exp_common

let run () =
  let t =
    Table.create
      ~title:
        "T2: latency vs commutative fraction p (n=5, 400 ops) — causal \
         applies commutative ops immediately; sequencer serialises all"
      ~columns:
        [
          "p";
          "~fbar";
          "cycles";
          "causal apply p50";
          "causal stable p50";
          "seq p50";
          "speedup (seq/causal)";
        ]
  in
  List.iter
    (fun p ->
      let w = { ops = 400; spacing = 0.5; mix = Random p } in
      let causal = run_causal ~seed:7 ~replicas:5 w in
      let seq = run_sequencer ~seed:7 ~replicas:5 w in
      assert causal.checks_ok;
      let fbar =
        if p >= 1.0 then infinity else p /. (1.0 -. p)
      in
      Table.add_row t
        [
          Printf.sprintf "%.2f" p;
          (if Float.is_integer fbar then Printf.sprintf "%.0f" fbar
           else Printf.sprintf "%.1f" fbar);
          string_of_int causal.cycles;
          fmt (p50 causal.delivery);
          fmt (p50 causal.stability);
          fmt (p50 seq.delivery);
          Printf.sprintf "%.2fx" (p50 seq.delivery /. p50 causal.delivery);
        ])
    [ 0.0; 0.5; 0.8; 0.9; 0.95; 0.99 ];
  Table.print t;
  Printer.line
    "Expected shape: the apply-latency speedup over the sequencer holds\n\
     across the sweep, and the paper's operating point (p=0.9, f̄≈20-ish\n\
     windows) gets the benefit on 90% of operations.  Stability latency\n\
     (time to the enclosing stable point) grows with p — the price of\n\
     deferring agreement, paid only by readers."
