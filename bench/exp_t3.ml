(* T3 — agreement granularity (§3.2): the stable-point protocol agrees on
   *sets* of messages between synchronization points, not on individual
   messages.  Sweep the window size f̄ and compare, per operation: the
   number of ordering-constraint edges the protocol imposes, the forced
   waits at delivery, and how many operations each agreement point
   covers.  The per-message total order (sequencer chain) is the
   degenerate case f̄ = 0 taken to every message. *)

module Table = Causalb_util.Table
module Printer = Causalb_util.Printer
open Exp_common

let run () =
  let ops = 300 in
  let t =
    Table.create
      ~title:
        "T3: ordering constraints and waits per op vs window size fbar \
         (n=5, 300 ops)"
      ~columns:
        [
          "fbar";
          "stable points";
          "ops/agreement";
          "edges/op causal";
          "edges/op seq";
          "waits/op causal";
          "waits/op seq";
        ]
  in
  List.iter
    (fun fbar ->
      let w = { ops; spacing = 0.5; mix = Fixed_window fbar } in
      let causal = run_causal ~seed:3 ~replicas:5 w in
      let seq = run_sequencer ~seed:3 ~replicas:5 w in
      assert causal.checks_ok;
      assert seq.checks_ok;
      let per x = float_of_int x /. float_of_int (ops + 1) in
      Table.add_row t
        [
          string_of_int fbar;
          string_of_int causal.cycles;
          Printf.sprintf "%.1f"
            (float_of_int (ops + 1) /. float_of_int (max 1 causal.cycles));
          Printf.sprintf "%.2f" (per causal.edges);
          Printf.sprintf "%.2f" (per seq.edges);
          Printf.sprintf "%.2f" (per causal.buffered /. 5.0);
          Printf.sprintf "%.2f" (per seq.buffered /. 5.0);
        ])
    [ 0; 1; 5; 20; 50 ];
  Table.print t;
  Printer.line
    "Expected shape: the causal protocol keeps ~1-2 constraint edges per\n\
     op at any f̄ while each agreement point covers f̄+1 ops; the\n\
     sequencer chain forces a wait on nearly every delivery because each\n\
     message must follow its chain predecessor."
