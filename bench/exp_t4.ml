(* T4 — application-specific consistency for spontaneous traffic (§5.2):
   the name service either (a) checks query context and discards
   potentially inconsistent answers, or (b) totally orders everything.
   Sweep the update fraction: the discard rate of (a) grows with update
   rate while its latency stays low; (b) never discards but pays the
   sequencer on every operation.  The paper: "induces more complexity ...
   but provides more asynchronism in execution of the protocol when
   inconsistencies occur infrequently." *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Ns = Causalb_protocols.Name_service
module Stats = Causalb_util.Stats
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer
module Rng = Causalb_util.Rng

let drive mode ~update_frac ~total ~seed =
  let engine = Engine.create ~seed () in
  let ns =
    Ns.create engine ~servers:4 ~mode
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.0 ())
      ()
  in
  let rng = Engine.fork_rng engine in
  let keys = [| "a"; "b"; "c"; "d" |] in
  for i = 0 to total - 1 do
    let src = i mod 4 in
    let key = Rng.pick rng keys in
    let is_upd = Rng.bernoulli rng update_frac in
    Engine.schedule_at engine ~time:(float_of_int i *. 0.8) (fun () ->
        if is_upd then Ns.update ns ~src ~key (Printf.sprintf "v%d" i)
        else Ns.query ns ~src ~key)
  done;
  Engine.run engine;
  ns

let run () =
  let t =
    Table.create
      ~title:
        "T4: name service, app-check vs total order vs update fraction \
         (4 servers, 240 ops)"
      ~columns:
        [
          "upd frac";
          "check discard%";
          "check ans ms";
          "t.o. ans ms";
          "check sound";
          "t.o. registries agree";
        ]
  in
  List.iter
    (fun uf ->
      let a = drive Ns.App_check ~update_frac:uf ~total:240 ~seed:11 in
      let b = drive Ns.Total_order ~update_frac:uf ~total:240 ~seed:11 in
      Table.add_row t
        [
          Printf.sprintf "%.2f" uf;
          Table.fmt_pct (Ns.discard_fraction a);
          Exp_common.fmt (Stats.mean (Ns.answer_latency a));
          Exp_common.fmt (Stats.mean (Ns.answer_latency b));
          string_of_bool (Ns.valid_answers_agree a);
          string_of_bool (Ns.final_states_agree b);
        ])
    [ 0.05; 0.1; 0.2; 0.4; 0.6 ];
  Table.print t;
  Printer.line
    "Expected shape: app-check latency ~flat and well below total order;\n\
     discard rate climbs with the update fraction — the regime where the\n\
     paper says to fall back to total ordering."
