(* T5 — lock arbitration scaling (§6.2): cycle time and per-grant wait as
   the member count grows.  Cycle duration is inherently linear in the
   number of holders per cycle (the lock is serial by definition); the
   protocol's value is that arbitration itself costs zero extra messages
   beyond the LOCK/TFR traffic. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Lock = Causalb_protocols.Lock_service
module Stats = Causalb_util.Stats
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

let run () =
  let cycles = 8 in
  let t =
    Table.create
      ~title:"T5: lock arbitration vs group size (8 cycles, hold=1ms)"
      ~columns:
        [
          "n";
          "cycle ms (mean)";
          "wait ms (mean)";
          "wait ms (p95)";
          "msgs/cycle";
          "msgs/grant";
          "safe";
        ]
  in
  List.iter
    (fun n ->
      let engine = Engine.create ~seed:13 () in
      let lock =
        Lock.create engine ~members:n
          ~latency:(Latency.lognormal ~mu:0.4 ~sigma:0.8 ())
          ~hold:(Latency.constant 1.0) ()
      in
      Lock.start lock ~cycles;
      Engine.run engine;
      let safe =
        Lock.check_mutual_exclusion lock
        && Lock.check_agreement lock
        && Lock.check_liveness lock ~expected_cycles:cycles
      in
      let grants = List.length (Lock.grants lock) in
      Table.add_row t
        [
          string_of_int n;
          Exp_common.fmt (Stats.mean (Lock.cycle_durations lock));
          Exp_common.fmt (Stats.mean (Lock.wait_times lock));
          Exp_common.fmt (Stats.percentile (Lock.wait_times lock) 95.0);
          Printf.sprintf "%.1f"
            (float_of_int (Lock.messages_sent lock) /. float_of_int cycles);
          Printf.sprintf "%.1f"
            (float_of_int (Lock.messages_sent lock) /. float_of_int grants);
          string_of_bool safe;
        ])
    [ 2; 4; 8; 12; 16 ];
  Table.print t;
  Printer.line
    "Expected shape: cycle duration and wait grow ~linearly with n (the\n\
     resource is serial); messages per grant stay ~2n (one LOCK + one TFR\n\
     broadcast per holder), with no arbitration-only messages."
