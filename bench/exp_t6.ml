(* T6 — semantic vs incidental ordering (footnote 1, refs [3,9]): the same
   workload through the explicit-dependency OSend engine and the
   vector-clock BSS engine.  BSS treats everything a sender had delivered
   as a dependency ("incidental ordering"), so semantically concurrent
   messages get false dependencies: forced waits and delivery-delay
   inflation that grow with latency variance.

   Workload: each node alternates between extending its own causal chain
   (real dependency) and emitting an independent message (no semantic
   dependency).  OSend states exactly the chain edges; BSS infers a
   superset. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Group = Causalb_core.Group
module Osend = Causalb_core.Osend
module Bss = Causalb_core.Bss
module Dep = Causalb_graph.Dep
module Stats = Causalb_util.Stats
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

let nodes = 5

let ops = 250

let spacing = 0.4

(* Per-node last chain label, for the OSend variant. *)
let run_osend ~seed ~latency =
  let engine = Engine.create ~seed () in
  let net = Net.create engine ~nodes ~latency ~fifo:false () in
  let sent = Hashtbl.create 256 in
  let lat = Stats.create () in
  let group =
    Group.create net
      ~on_deliver:(fun ~node:_ ~time m ->
        match Hashtbl.find_opt sent (Causalb_core.Message.payload m) with
        | Some t0 -> Stats.add lat (time -. t0)
        | None -> ())
      ()
  in
  let chains = Array.make nodes Dep.null in
  for i = 0 to ops - 1 do
    let src = i mod nodes in
    let chained = i mod 2 = 0 in
    Engine.schedule_at engine ~time:(float_of_int i *. spacing) (fun () ->
        Hashtbl.replace sent i (Engine.now engine);
        if chained then begin
          let lbl = Group.osend group ~src ~dep:chains.(src) i in
          chains.(src) <- Dep.after lbl
        end
        else ignore (Group.osend group ~src ~dep:Dep.null i))
  done;
  Engine.run engine;
  let waits =
    List.init nodes (fun n -> Osend.buffered_ever (Group.member group n))
    |> List.fold_left ( + ) 0
  in
  (lat, waits)

let run_psync ~seed ~latency =
  let engine = Engine.create ~seed () in
  let net = Net.create engine ~nodes ~latency ~fifo:false () in
  let sent = Hashtbl.create 256 in
  let lat = Stats.create () in
  let p =
    Causalb_core.Psync.create net
      ~on_deliver:(fun ~node:_ ~time m ->
        match Hashtbl.find_opt sent (Causalb_core.Message.payload m) with
        | Some t0 -> Stats.add lat (time -. t0)
        | None -> ())
      ()
  in
  for i = 0 to ops - 1 do
    let src = i mod nodes in
    Engine.schedule_at engine ~time:(float_of_int i *. spacing) (fun () ->
        Hashtbl.replace sent i (Engine.now engine);
        ignore (Causalb_core.Psync.send p ~src i))
  done;
  Engine.run engine;
  (lat, Causalb_core.Psync.buffered_ever p)

let run_bss ~seed ~latency =
  let engine = Engine.create ~seed () in
  let net = Net.create engine ~nodes ~latency ~fifo:false () in
  let sent = Hashtbl.create 256 in
  let lat = Stats.create () in
  let group =
    Bss.Group.create net
      ~on_deliver:(fun ~node:_ ~time e ->
        match Hashtbl.find_opt sent e.Bss.tag with
        | Some t0 -> Stats.add lat (time -. t0)
        | None -> ())
      ()
  in
  for i = 0 to ops - 1 do
    let src = i mod nodes in
    Engine.schedule_at engine ~time:(float_of_int i *. spacing) (fun () ->
        let tag = string_of_int i in
        Hashtbl.replace sent tag (Engine.now engine);
        Bss.Group.bcast group ~src ~tag i)
  done;
  Engine.run engine;
  let waits =
    List.init nodes (fun n -> Bss.buffered_ever (Bss.Group.member group n))
    |> List.fold_left ( + ) 0
  in
  (lat, waits)

let run () =
  let t =
    Table.create
      ~title:
        "T6: explicit (OSend) vs inferred (BSS vector clocks) causality — \
         5 nodes, 250 ops, half chained / half independent"
      ~columns:
        [
          "sigma";
          "osend p95";
          "psync p95";
          "bss p95";
          "osend waits";
          "psync waits";
          "bss waits";
          "bss/osend p95";
        ]
  in
  List.iter
    (fun sigma ->
      let latency = Latency.lognormal ~mu:0.5 ~sigma () in
      let o_lat, o_waits = run_osend ~seed:17 ~latency in
      let p_lat, p_waits = run_psync ~seed:17 ~latency in
      let b_lat, b_waits = run_bss ~seed:17 ~latency in
      Table.add_row t
        [
          Printf.sprintf "%.1f" sigma;
          Exp_common.fmt (Exp_common.p95 o_lat);
          Exp_common.fmt (Exp_common.p95 p_lat);
          Exp_common.fmt (Exp_common.p95 b_lat);
          string_of_int o_waits;
          string_of_int p_waits;
          string_of_int b_waits;
          Printf.sprintf "%.2fx" (Exp_common.p95 b_lat /. Exp_common.p95 o_lat);
        ])
    [ 0.2; 0.6; 1.0; 1.4; 1.8 ];
  Table.print t;
  Printer.line
    "Expected shape: both incidental-ordering substrates (Psync\n\
     conversations and BSS vector clocks) force waits that the explicit\n\
     semantic dependencies avoid, and their tail latency inflates with\n\
     link variance; OSend only ever waits on declared chain edges.  The\n\
     footnote's point is mechanism-independent: it is *what relation* is\n\
     captured (potential vs semantic causality), not how it is encoded."
