(* T7 — the §5.1 item decomposition: per-item windows vs one global
   window.  "We may relax ordering between inc(x) and dec(x) … while the
   read operation is not commutative", per item: a sync on item x should
   wait only for item x's outstanding operations.  Same workload through
   the single-window front-end and the per-item front-end; the per-item
   variant imposes fewer constraint edges, so sync operations stop
   waiting for unrelated traffic. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Group = Causalb_core.Group
module Osend = Causalb_core.Osend
module Message = Causalb_core.Message
module Label = Causalb_graph.Label
module Sm = Causalb_data.State_machine
module Dt = Causalb_data.Datatypes
module Frontend = Causalb_data.Frontend
module Item_frontend = Causalb_data.Item_frontend
module Stats = Causalb_util.Stats
module Rng = Causalb_util.Rng
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

let replicas = 5

let ops = 400

let items = 8

let machine = Dt.Multi_register.machine ~items

let scope = function
  | Dt.Multi_register.Inc (i, _) | Dt.Multi_register.Dec (i, _)
  | Dt.Multi_register.Set (i, _) ->
    Item_frontend.Item i
  | Dt.Multi_register.Read_all -> Item_frontend.Global

let workload rng =
  List.init ops (fun k ->
      let item = Rng.int rng items in
      if (k + 1) mod 10 = 0 then Dt.Multi_register.Set (item, k)
      else Dt.Multi_register.Inc (item, 1))

type outcome = {
  sync_lat : Stats.t;
  all_lat : Stats.t;
  waits : int;
  edges : int;
}

let run ~per_item ~sigma =
  let engine = Engine.create ~seed:41 () in
  let net =
    Net.create engine ~nodes:replicas
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma ())
      ~fifo:false ()
  in
  let send_times = Label.Tbl.create 256 in
  let sync_lat = Stats.create () and all_lat = Stats.create () in
  let group =
    Group.create net
      ~on_deliver:(fun ~node:_ ~time msg ->
        match Label.Tbl.find_opt send_times (Message.label msg) with
        | Some t0 ->
          let d = time -. t0 in
          Stats.add all_lat d;
          (match Message.payload msg with
          | Dt.Multi_register.Set _ | Dt.Multi_register.Read_all ->
            Stats.add sync_lat d
          | Dt.Multi_register.Inc _ | Dt.Multi_register.Dec _ -> ())
        | None -> ())
      ()
  in
  let submit =
    if per_item then begin
      let fe = Item_frontend.create group ~kind:machine.Sm.kind ~scope () in
      fun ~src op -> Item_frontend.submit fe ~src op
    end
    else begin
      let fe = Frontend.create group ~kind:machine.Sm.kind () in
      fun ~src op -> Frontend.submit fe ~src op
    end
  in
  let rng = Engine.fork_rng engine in
  List.iteri
    (fun k op ->
      Engine.schedule_at engine ~time:(float_of_int k *. 0.5) (fun () ->
          let label = submit ~src:(k mod replicas) op in
          Label.Tbl.replace send_times label (Engine.now engine)))
    (workload rng);
  Engine.run engine;
  let waits =
    List.init replicas (fun n -> Osend.buffered_ever (Group.member group n))
    |> List.fold_left ( + ) 0
  in
  let edges =
    List.length (Causalb_graph.Depgraph.edges (Osend.graph (Group.member group 0)))
  in
  { sync_lat; all_lat; waits; edges }

let run () =
  let t =
    Table.create
      ~title:
        "T7: per-item windows vs one global window (8 items, 10% item \
         syncs, 5 replicas) — sync-op delivery latency"
      ~columns:
        [
          "sigma";
          "global sync p95";
          "per-item sync p95";
          "global waits";
          "per-item waits";
          "global edges/op";
          "per-item edges/op";
        ]
  in
  List.iter
    (fun sigma ->
      let g = run ~per_item:false ~sigma in
      let i = run ~per_item:true ~sigma in
      Table.add_row t
        [
          Printf.sprintf "%.1f" sigma;
          Exp_common.fmt (Stats.percentile g.sync_lat 95.0);
          Exp_common.fmt (Stats.percentile i.sync_lat 95.0);
          string_of_int g.waits;
          string_of_int i.waits;
          Printf.sprintf "%.2f" (float_of_int g.edges /. float_of_int ops);
          Printf.sprintf "%.2f" (float_of_int i.edges /. float_of_int ops);
        ])
    [ 0.4; 0.8; 1.2 ];
  Table.print t;
  Printer.line
    "Expected shape: the per-item front-end trims the constraint-edge\n\
     density and, more importantly, slashes forced waits and sync tail\n\
     latency — item syncs stop waiting for other items' in-flight\n\
     traffic, and the gap widens with link variance."
