(* T8 — the paper's model vs causal DSM (ref [5]).  §5.2: "Our approach
   to maintaining consistency of distributed shared data is somewhat
   different from the 'distributed shared memory' model used in [5] in
   the way the shared data is realized and the application semantics is
   exploited in the access protocols."

   Same workload — assignments to a handful of variables plus reads —
   three ways:
   - causal memory: writes causally broadcast, reads local and instant,
     no agreement ever (concurrent writes may diverge permanently);
   - stable points + deferred reads: writes are sync ops, reads wait for
     the next stable point, zero extra messages, always agreed;
   - stable points + broadcast reads: reads are ops too (one broadcast
     each), agreed at their own stable point.

   The trade surfaces as: read latency vs agreement vs divergence. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Cmem = Causalb_protocols.Causal_memory
module Dt = Causalb_data.Datatypes
module Service = Causalb_data.Service
module Replica = Causalb_data.Replica
module Stats = Causalb_util.Stats
module Rng = Causalb_util.Rng
module Table = Causalb_util.Table
module Printer = Causalb_util.Printer

let nodes = 5

let writes = 200

let reads = 100

let vars = 4

let latency = Latency.lognormal ~mu:0.5 ~sigma:1.0 ()

(* schedule: at each tick either a write or a read, interleaved 2:1 *)
let schedule rng =
  List.init (writes + reads) (fun i ->
      let when_ = float_of_int i *. 0.5 in
      let src = i mod nodes in
      let var = Rng.int rng vars in
      if i mod 3 = 2 then (when_, src, `Read var) else (when_, src, `Write (var, i)))

let run_cmem () =
  let e = Engine.create ~seed:51 () in
  let m = Cmem.create e ~nodes ~latency () in
  let rng = Engine.fork_rng e in
  let read_lat = Stats.create () in
  List.iter
    (fun (when_, src, act) ->
      Engine.schedule_at e ~time:when_ (fun () ->
          match act with
          | `Write (v, x) -> Cmem.write m ~node:src ~var:(string_of_int v) x
          | `Read v ->
            ignore (Cmem.read m ~node:src ~var:(string_of_int v));
            Stats.add read_lat 0.0))
    (schedule rng);
  Engine.run e;
  let divergent = List.length (Cmem.divergent_vars m) in
  (Cmem.messages_sent m, read_lat, Printf.sprintf "%d vars diverged" divergent, "no")

let run_stable ~sync_reads () =
  let e = Engine.create ~seed:51 () in
  let machine = Dt.Multi_register.machine ~items:vars in
  let svc = Service.create e ~replicas:nodes ~machine ~latency ~fifo:false () in
  let rng = Engine.fork_rng e in
  let read_lat = Stats.create () in
  List.iter
    (fun (when_, src, act) ->
      Engine.schedule_at e ~time:when_ (fun () ->
          match act with
          | `Write (v, x) ->
            ignore (Service.submit svc ~src (Dt.Multi_register.Set (v, x)))
          | `Read _ when sync_reads ->
            let t0 = Engine.now e in
            ignore (Service.submit svc ~src Dt.Multi_register.Read_all);
            (* answered when the read is applied at the asking replica *)
            Replica.read_deferred (Service.replica svc src) (fun _ ->
                Stats.add read_lat (Engine.now e -. t0))
          | `Read _ ->
            let t0 = Engine.now e in
            Replica.read_deferred (Service.replica svc src) (fun _ ->
                Stats.add read_lat (Engine.now e -. t0))))
    (schedule rng);
  Service.run svc;
  let ok = List.for_all snd (Service.check svc) in
  let states = List.map Replica.stable_state (Service.replicas svc) in
  let converged = List.for_all (( = ) (List.hd states)) states in
  ( Service.messages_sent svc,
    read_lat,
    (if converged then "converged" else "DIVERGED"),
    if ok then "yes" else "VIOLATED" )

let run () =
  let t =
    Table.create
      ~title:
        "T8: causal DSM (ref [5]) vs stable-point shared data — 200 \
         assignments + 100 reads, 4 variables, 5 nodes"
      ~columns:
        [
          "model";
          "unicasts";
          "read p50 ms";
          "read p95 ms";
          "final state";
          "agreement guaranteed";
        ]
  in
  let row name (msgs, lat, final, agreed) =
    Table.add_row t
      [
        name;
        string_of_int msgs;
        Exp_common.fmt (Stats.percentile lat 50.0);
        Exp_common.fmt (Stats.percentile lat 95.0);
        final;
        agreed;
      ]
  in
  row "causal memory [5]" (run_cmem ());
  row "stable points + deferred reads" (run_stable ~sync_reads:false ());
  row "stable points + sync reads" (run_stable ~sync_reads:true ());
  Table.print t;
  Printer.line
    "Expected shape: causal memory reads instantly and cheaply but can\n\
     leave variables permanently divergent after concurrent assignments;\n\
     the stable-point model pays read latency (deferred) or read\n\
     broadcasts (sync) and in exchange every value returned is an agreed\n\
     one and replicas provably converge."
