(* Experiment harness entry point (sequential).

   With no arguments, regenerates every figure (F1–F5) and every table
   (T1–T8, A1–A4, S1) from DESIGN.md, then runs the timing benches.
   Pass experiment ids to run a subset:

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- T1 T6   # just those
     dune exec bench/main.exe -- figures # F1..F5
     dune exec bench/main.exe -- micro   # bechamel only

   The experiment list itself lives in [Causalb_bench.Registry]; the
   parallel runner is [causalb exp -j N] / [causalb bench -j N], which
   shards the same registry across worker processes and reassembles
   byte-identical output. *)

module Registry = Causalb_bench.Registry

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let wanted =
    match args with
    | [] -> List.map (fun (e : Registry.experiment) -> e.id) Registry.all
    | ids -> ids
  in
  let unknown = List.filter (fun id -> Registry.find id = None) wanted in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable:\n"
      (String.concat ", " unknown);
    List.iter
      (fun (e : Registry.experiment) ->
        Printf.eprintf "  %-8s %s\n" e.id e.descr)
      Registry.all;
    exit 2
  end;
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e -> Registry.run_sequential e
      | None -> ())
    wanted;
  print_endline "\nall requested experiments completed."
