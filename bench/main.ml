(* Experiment harness entry point.

   With no arguments, regenerates every figure (F1–F5) and every table
   (T1–T6) from DESIGN.md, then runs the bechamel micro-benchmarks.
   Pass experiment ids to run a subset:

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- T1 T6   # just those
     dune exec bench/main.exe -- figures # F1..F5
     dune exec bench/main.exe -- micro   # bechamel only *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("figures", "F1-F5: executable reproductions of the paper's figures",
     Exp_figures.run);
    ("T1", "latency vs group size: causal vs merge vs sequencer", Exp_t1.run);
    ("T2", "latency vs commutative fraction (the f-bar=20 claim)", Exp_t2.run);
    ("T3", "agreement granularity: constraints and waits per op", Exp_t3.run);
    ("T4", "name service: app-check vs total order", Exp_t4.run);
    ("T5", "lock arbitration scaling", Exp_t5.run);
    ("T6", "explicit (OSend) vs inferred (BSS) causality", Exp_t6.run);
    ("T7", "per-item vs global windows (the \xc2\xa75.1 decomposition)", Exp_t7.run);
    ("T8", "causal DSM (ref [5]) vs the stable-point model", Exp_t8.run);
    ("A1", "ablation: loss-recovery layer cost vs drop rate", Exp_a1.run);
    ("A2", "ablation: view-change cost vs group size", Exp_a2.run);
    ("A3", "ablation: stability GC of the repair stash", Exp_a3.run);
    ("A4", "ablation: OR-dependency (first-response) extension", Exp_a4.run);
    ("S1", "ordering stack: one workload over every composition", Exp_s1.run);
    ("micro", "bechamel micro-benchmarks of the hot paths", Micro.run);
    ("scaling", "seed list-scan vs indexed wakeup queues (writes BENCH_PR3.json)",
     Scaling.run);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let wanted =
    match args with
    | [] -> List.map (fun (id, _, _) -> id) experiments
    | ids -> ids
  in
  let find id =
    List.find_opt
      (fun (eid, _, _) -> String.lowercase_ascii eid = String.lowercase_ascii id)
      experiments
  in
  let unknown = List.filter (fun id -> find id = None) wanted in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable:\n"
      (String.concat ", " unknown);
    List.iter
      (fun (id, descr, _) -> Printf.eprintf "  %-8s %s\n" id descr)
      experiments;
    exit 2
  end;
  List.iter
    (fun id ->
      match find id with
      | Some (eid, descr, run) ->
        Printf.printf "\n######## %s — %s ########\n" eid descr;
        run ()
      | None -> ())
    wanted;
  print_endline "\nall requested experiments completed."
