(* Bechamel micro-benchmarks: CPU cost of the hot paths that every
   experiment exercises — one Test.make per experiment family, so each
   table's underlying mechanism has a measured cost.

   These measure engine/protocol code in isolation (no simulated network
   waiting), i.e. the per-message CPU overhead a deployment would pay. *)

module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Message = Causalb_core.Message
module Osend = Causalb_core.Osend
module Bss = Causalb_core.Bss
module Asend = Causalb_core.Asend
module Vc = Causalb_clock.Vector_clock
module Heap = Causalb_util.Heap
module Sm = Causalb_data.State_machine
module Dt = Causalb_data.Datatypes
module Replica = Causalb_data.Replica
open Bechamel
open Toolkit

let lbl i = Label.make ~origin:(i mod 8) ~seq:(i / 8) ()

(* T1/F2 family: causal delivery through the OSend engine.  Each run
   receives a fan of 64 messages (1 root, 62 concurrent, 1 closing). *)
let bench_osend_fan =
  Test.make ~name:"t1.osend-deliver-fan64"
    (Staged.stage (fun () ->
         let m = Osend.create ~id:0 () in
         let root = lbl 0 in
         Osend.receive m (Message.make ~label:root ~sender:0 ~dep:Dep.null 0);
         let body = List.init 62 (fun i -> lbl (i + 1)) in
         List.iter
           (fun l ->
             Osend.receive m
               (Message.make ~label:l ~sender:(Label.origin l)
                  ~dep:(Dep.after root) 0))
           body;
         Osend.receive m
           (Message.make ~label:(lbl 63) ~sender:7 ~dep:(Dep.after_all body) 0)))

(* T6 family: BSS vector-clock delivery of 64 messages from 8 senders. *)
let bench_bss_64 =
  Test.make ~name:"t6.bss-deliver-64"
    (Staged.stage (fun () ->
         let m = Bss.member ~id:0 ~group_size:8 () in
         for i = 0 to 63 do
           let sender = i mod 8 in
           let stamp = Array.make 8 0 in
           (* stamp: sender's (i/8 + 1)-th message, nothing else seen *)
           stamp.(sender) <- (i / 8) + 1;
           Bss.receive m
             {
               Bss.sender;
               stamp = Vc.of_array stamp;
               tag = "";
               payload = 0;
             }
         done))

(* T1 family: deterministic-merge release of one 64-message bracket. *)
let bench_merge_batch =
  Test.make ~name:"t1.asend-merge-batch64"
    (Staged.stage (fun () ->
         let m = Asend.Merge.create ~is_sync:(fun e -> Message.payload e) () in
         for i = 0 to 62 do
           Asend.Merge.on_causal_deliver m
             (Message.make ~label:(lbl i) ~sender:0 ~dep:Dep.null false)
         done;
         Asend.Merge.on_causal_deliver m
           (Message.make ~label:(lbl 63) ~sender:0 ~dep:Dep.null true)))

(* T3 family: graph maintenance — build a 128-node dependency graph and
   answer a happens-before query. *)
let bench_graph_build =
  Test.make ~name:"t3.depgraph-build128"
    (Staged.stage (fun () ->
         let g = Depgraph.create () in
         Depgraph.add g (lbl 0) ~dep:Dep.null;
         for i = 1 to 127 do
           Depgraph.add g (lbl i) ~dep:(Dep.after (lbl (i / 2)))
         done;
         ignore (Depgraph.happens_before g (lbl 0) (lbl 127))))

(* T2 family: replica applying a 20-commutative window + sync. *)
let bench_replica_window =
  Test.make ~name:"t2.replica-window-f20"
    (Staged.stage (fun () ->
         let r = Replica.create ~id:0 ~machine:Dt.Int_register.machine () in
         for i = 0 to 19 do
           Replica.on_deliver r
             (Message.make ~label:(lbl i) ~sender:0 ~dep:Dep.null
                (Dt.Int_register.Inc 1))
         done;
         Replica.on_deliver r
           (Message.make ~label:(lbl 20) ~sender:0 ~dep:Dep.null
              Dt.Int_register.Read)))

(* T5 family: the simulator's event queue itself. *)
let bench_heap =
  Test.make ~name:"t5.event-heap-256"
    (Staged.stage (fun () ->
         let h = Heap.create ~cmp:Float.compare () in
         for i = 0 to 255 do
           Heap.push h (float_of_int ((i * 7919) mod 997))
         done;
         while not (Heap.is_empty h) do
           ignore (Heap.pop h)
         done))

(* T4 family: vector clock merge+compare, the per-message cost of the
   inferred-causality baseline. *)
let bench_vclock =
  Test.make ~name:"t4.vclock-merge-compare-n16"
    (Staged.stage
       (let a = Vc.of_array (Array.init 16 (fun i -> i * 3)) in
        let b = Vc.of_array (Array.init 16 (fun i -> 48 - (i * 3))) in
        fun () ->
          ignore (Vc.merge a b);
          ignore (Vc.compare_causal a b)))

(* T1 family: the decentralised timestamp orderer's delivery path — one
   member digesting 32 data envelopes plus the matching acks. *)
let bench_timestamp_member =
  Test.make ~name:"t1.timestamp-deliver-32x4"
    (Staged.stage (fun () ->
         let e = Causalb_sim.Engine.create () in
         let net = Causalb_net.Net.create e ~nodes:4 () in
         let ts = Asend.Timestamp.create net () in
         for i = 0 to 31 do
           Asend.Timestamp.bcast ts ~src:(i mod 4) ~tag:"" i
         done;
         Causalb_sim.Engine.run e))

(* §3.2 family: mining the ordering relation from 6 observations of a
   24-message execution. *)
let bench_infer =
  let g = Depgraph.create () in
  let () =
    Depgraph.add g (lbl 0) ~dep:Dep.null;
    for i = 1 to 23 do
      Depgraph.add g (lbl i) ~dep:(Dep.after (lbl (i / 3)))
    done
  in
  let observations = Depgraph.linearizations ~limit:6 g in
  Test.make ~name:"t3.infer-24msgs-6obs"
    (Staged.stage (fun () -> ignore (Causalb_graph.Infer.infer observations)))

(* §4.2 family: validating + ordering a 64-step workflow DAG. *)
let bench_workflow_graph =
  let steps =
    List.init 64 (fun i ->
        Causalb_data.Workflow.step
          (Printf.sprintf "s%d" i)
          ~src:(i mod 4)
          ~after:(if i = 0 then [] else [ Printf.sprintf "s%d" (i / 2) ])
          i)
  in
  Test.make ~name:"t2.workflow-graph64"
    (Staged.stage (fun () -> ignore (Causalb_data.Workflow.graph_of steps)))

(* scale family: the wakeup-index hot paths at a size where the seed's
   pool sweep was already measurably quadratic.  The full before/after
   ladder (64/512/4096, vs the frozen seed engines) lives in the
   "scaling" experiment; these keep a mid-size point in the regular
   bechamel run so index regressions show up without the JSON gate. *)
let bench_scale_osend_wide =
  let children =
    Array.init 256 (fun i ->
        Message.make ~label:(lbl i) ~sender:0
          ~dep:(Dep.after (Label.make ~origin:9 ~seq:0 ())) 0)
  in
  let independent =
    Array.init 256 (fun i ->
        Message.make ~label:(lbl (256 + i)) ~sender:1 ~dep:Dep.null 0)
  in
  let root =
    Message.make ~label:(Label.make ~origin:9 ~seq:0 ()) ~sender:2
      ~dep:Dep.null 0
  in
  Test.make ~name:"scale.osend-wide512"
    (Staged.stage (fun () ->
         let m = Osend.create ~id:0 () in
         Array.iter (Osend.receive m) children;
         Array.iter (Osend.receive m) independent;
         Osend.receive m root))

let bench_scale_osend_chain =
  let msgs =
    Array.init 512 (fun i ->
        Message.make ~label:(lbl i) ~sender:0
          ~dep:(if i = 0 then Dep.null else Dep.after (lbl (i - 1)))
          0)
  in
  Test.make ~name:"scale.osend-chain512"
    (Staged.stage (fun () ->
         let m = Osend.create ~id:0 () in
         for i = 511 downto 0 do
           Osend.receive m msgs.(i)
         done))

let bench_scale_bss_chain =
  let envs =
    Array.init 512 (fun i ->
        {
          Bss.sender = 1;
          stamp = Vc.of_array [| 0; i + 1 |];
          tag = "";
          payload = 0;
        })
  in
  Test.make ~name:"scale.bss-chain512"
    (Staged.stage (fun () ->
         let m = Bss.member ~id:0 ~group_size:2 () in
         for i = 511 downto 0 do
           Bss.receive m envs.(i)
         done))

let bench_scale_counted_batch =
  let msgs =
    Array.init 512 (fun i ->
        Message.make ~label:(lbl i) ~sender:(i mod 8) ~dep:Dep.null i)
  in
  Test.make ~name:"scale.counted-batch512"
    (Staged.stage (fun () ->
         let m = Asend.Counted.create ~batch_size:512 () in
         Array.iter (Asend.Counted.on_causal_deliver m) msgs))

let all_tests =
  [
    bench_osend_fan;
    bench_bss_64;
    bench_merge_batch;
    bench_graph_build;
    bench_replica_window;
    bench_heap;
    bench_vclock;
    bench_timestamp_member;
    bench_infer;
    bench_workflow_graph;
    bench_scale_osend_wide;
    bench_scale_osend_chain;
    bench_scale_bss_chain;
    bench_scale_counted_batch;
  ]

let run () =
  print_endline "\n================ micro-benchmarks (bechamel) ================";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  (* CI smoke runs shrink the per-test budget via the same knob as the
     scaling experiment *)
  let quota_s =
    match Sys.getenv_opt "CAUSALB_BENCH_QUOTA_MS" with
    | Some s -> ( try max 1 (int_of_string s) with _ -> 500) |> fun ms ->
        float_of_int ms /. 1000.0
    | None -> 0.5
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:(Some 1000) ()
  in
  let grouped = Test.make_grouped ~name:"causalb" all_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      clock []
    |> List.sort compare
  in
  let t =
    Causalb_util.Table.create ~title:"per-iteration cost (monotonic clock)"
      ~columns:[ "benchmark"; "ns/run" ]
  in
  List.iter
    (fun (name, ns) ->
      Causalb_util.Table.add_row t
        [ name; Causalb_util.Table.fmt_float ~digits:0 ns ])
    rows;
  Causalb_util.Table.print t
