(* The experiment registry: one declarative list of everything the bench
   binary and the [causalb exp]/[causalb bench] CLI can run.

   Each experiment is a list of [parts] — independently runnable units of
   work whose printed outputs, concatenated in part order, are the
   experiment's full output.  Most experiments are a single part;
   T1 (the sweep's wall-clock hog) is split per group size so the worker
   pool can spread its rows across processes.

   [kind] separates the byte-reproducible experiments from the
   timing-dependent ones: [Deterministic] output is a pure function of
   the code (seeds are fixed), so a parallel run must reproduce a
   sequential run byte for byte — the pool test asserts exactly that.
   [Timing] experiments (bechamel micro-benchmarks, the scaling
   before/after suite) print measured durations and are excluded from
   byte comparison. *)

type kind = Deterministic | Timing

type part = { pname : string; prun : unit -> unit }

type experiment = {
  id : string;
  descr : string;
  kind : kind;
  parts : part list;
}

let mono id descr ?(kind = Deterministic) run =
  { id; descr; kind; parts = [ { pname = id; prun = run } ] }

let all : experiment list =
  [
    mono "figures" "F1-F5: executable reproductions of the paper's figures"
      Exp_figures.run;
    {
      id = "T1";
      descr = "latency vs group size: causal vs merge vs sequencer";
      kind = Deterministic;
      parts =
        List.map
          (fun (p, f) -> { pname = "T1:" ^ p; prun = f })
          Exp_t1.parts;
    };
    mono "T2" "latency vs commutative fraction (the f-bar=20 claim)"
      Exp_t2.run;
    mono "T3" "agreement granularity: constraints and waits per op" Exp_t3.run;
    mono "T4" "name service: app-check vs total order" Exp_t4.run;
    mono "T5" "lock arbitration scaling" Exp_t5.run;
    mono "T6" "explicit (OSend) vs inferred (BSS) causality" Exp_t6.run;
    mono "T7" "per-item vs global windows (the \xc2\xa75.1 decomposition)"
      Exp_t7.run;
    mono "T8" "causal DSM (ref [5]) vs the stable-point model" Exp_t8.run;
    mono "A1" "ablation: loss-recovery layer cost vs drop rate" Exp_a1.run;
    mono "A2" "ablation: view-change cost vs group size" Exp_a2.run;
    mono "A3" "ablation: stability GC of the repair stash" Exp_a3.run;
    mono "A4" "ablation: OR-dependency (first-response) extension" Exp_a4.run;
    mono "S1" "ordering stack: one workload over every composition"
      Exp_s1.run;
    mono "O1"
      "spec-derived objects: counter pipeline, or-set cart, rga collab edit"
      Exp_o1.run;
    mono "H1" "fault campaign: nemesis schedules over every composition"
      Exp_hunt.run;
    mono "micro" ~kind:Timing "bechamel micro-benchmarks of the hot paths"
      Micro.run;
    mono "scaling" ~kind:Timing
      "before/after scaling + allocation + wire-codec + member-count \
       suite (writes BENCH_PR10.json)"
      Scaling.run;
  ]

let find id =
  List.find_opt
    (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id)
    all

let banner e = Printf.sprintf "\n######## %s — %s ########\n" e.id e.descr

(* The sequential path: same banner + part order the parallel runner
   reassembles, so the bytes agree whatever the job count. *)
let run_sequential e =
  print_string (banner e);
  List.iter (fun p -> p.prun ()) e.parts

let deterministic_ids =
  List.filter_map
    (fun e -> if e.kind = Deterministic then Some e.id else None)
    all
