(* Bridges the experiment registry to the fork-based worker pool.

   Each registry part becomes one pool task; the pool captures every
   part's stdout+stderr and returns results in task-list order, so
   [assemble] can rebuild the exact byte stream a sequential run prints:
   banner, then part outputs, in registry order.  The job count only
   changes *where* a part ran, never where its bytes land — the property
   [test/test_pool.ml] asserts. *)

module Pool = Causalb_harness.Pool
module Dpool = Causalb_harness.Dpool

type outcome = {
  report : Pool.report;
  stdout_text : string;
      (* assembled output, byte-identical across job counts *)
}

let tasks_of experiments =
  List.concat_map
    (fun (e : Registry.experiment) ->
      List.map
        (fun (p : Registry.part) ->
          Pool.task ~name:p.pname (fun ~seed:_ -> p.prun ()))
        e.parts)
    experiments

let assemble experiments (report : Pool.report) =
  let buf = Buffer.create 4096 in
  let results = ref report.results in
  List.iter
    (fun (e : Registry.experiment) ->
      Buffer.add_string buf (Registry.banner e);
      List.iter
        (fun (_ : Registry.part) ->
          match !results with
          | r :: rest ->
            results := rest;
            Buffer.add_string buf r.Pool.output
          | [] -> ())
        e.parts)
    experiments;
  Buffer.contents buf

let run ?(jobs = 1) ?(base_seed = 42) experiments =
  let report = Pool.run ~jobs ~base_seed (tasks_of experiments) in
  { report; stdout_text = assemble experiments report }

(* The domains path ([-J n]): same registry, same assembly, but parts
   run on worker domains with sink capture instead of forked processes
   with fd capture.  Deterministic parts print through [Printer] and go
   [Parallel]; timing parts keep raw prints and exclusive machine use,
   so they run [Sequential] in the main domain before any worker domain
   spawns. *)
let dtasks_of experiments =
  List.concat_map
    (fun (e : Registry.experiment) ->
      let mode =
        match e.kind with
        | Registry.Deterministic -> Dpool.Parallel
        | Registry.Timing -> Dpool.Sequential
      in
      List.map
        (fun (p : Registry.part) ->
          Dpool.task ~mode ~name:p.pname (fun ~seed:_ -> p.prun ()))
        e.parts)
    experiments

let run_domains ?(domains = 1) ?(base_seed = 42) experiments =
  let report = Dpool.run ~domains ~base_seed (dtasks_of experiments) in
  { report; stdout_text = assemble experiments report }

(* One sweep section of BENCH_PR6.json, from one pool run; [mode] says
   which scheduler ran it ("seq" | "fork" | "domains"). *)
let sweep_of ~mode (o : outcome) =
  {
    Bench_out.mode;
    jobs = o.report.jobs;
    wall_ms = o.report.wall_ms;
    tasks =
      List.map
        (fun (r : Pool.result) ->
          {
            Bench_out.tname = r.name;
            ok = Pool.ok r;
            wall_ms = r.wall_ms;
            gc_minor_words = r.gc_minor_words;
            gc_major_words = r.gc_major_words;
          })
        o.report.results;
  }
