(* Scaling benchmarks for the reverse-indexed wakeup queues.

   Every shape is measured twice inside this one binary: "before" drives
   the frozen seed list-scan engine from [Causalb_reference], "after"
   drives the indexed engine from [Causalb_core], on identical message
   arrays.  That keeps the comparison honest (same compiler, same
   allocator state, same inputs) and lets CI regenerate the numbers in
   one run.

   Shapes, per engine:
   - [osend.chain]  — an N-message dependency chain arriving in reverse:
     everything parks on the missing head, then one receive releases the
     whole chain.  The seed sweeps the shrinking pool once per link
     (O(N^2)); the index wakes each link directly (O(N)).
   - [osend.wide]   — N/2 messages parked on one missing root while N/2
     independent messages deliver through: each independent delivery made
     the seed rescan the whole parked pool (O(N^2/4)); the index wakes
     nobody.  The root arrives last and releases the fan.
   - [bss.chain]    — one origin's vector-stamped sequence arriving in
     reverse; same pool-sweep vs bucket cascade contrast.
   - [counted.batch] — an N-message Counted bracket: the seed walked the
     buffer length on every insert (O(N^2) per bracket); the maintained
     size counter leaves one stable sort at the close.

   Results go to a table on stdout and to a machine-readable JSON file
   (default [BENCH_PR3.json], override with CAUSALB_BENCH_OUT).  Each row
   is {name; n; before_ns; after_ns; speedup}.  The n=64 rows double as
   the no-regression guard for small workloads; the n=4096 wide-fan row
   is the headline the PR gates on.  CAUSALB_BENCH_QUOTA_MS shrinks the
   per-measurement budget for CI smoke runs. *)

module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Vc = Causalb_clock.Vector_clock
module Message = Causalb_core.Message
module Osend = Causalb_core.Osend
module Bss = Causalb_core.Bss
module Asend = Causalb_core.Asend
module Rosend = Causalb_reference.Osend
module Rbss = Causalb_reference.Bss
module Rasend = Causalb_reference.Asend

let quota_ms =
  match Sys.getenv_opt "CAUSALB_BENCH_QUOTA_MS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 200)
  | None -> 200

(* Adaptive CPU timing: double the repetition count until one batch fills
   the quota, then report ns per run.  One warm-up run is discarded. *)
let time_ns f =
  f ();
  let quota = float_of_int quota_ms /. 1000.0 in
  let rec go reps =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Sys.time () -. t0 in
    if dt >= quota then dt /. float_of_int reps *. 1e9 else go (reps * 2)
  in
  go 1

let lbl i = Label.make ~origin:(i mod 8) ~seq:(i / 8) ()

let root_lbl = Label.make ~origin:9 ~seq:0 ()

(* --- shape inputs, built once per size outside the timed region --- *)

let chain_msgs n =
  Array.init n (fun i ->
      Message.make ~label:(lbl i) ~sender:0
        ~dep:(if i = 0 then Dep.null else Dep.after (lbl (i - 1)))
        0)

(* first half: fan children of the missing root; second half: independent
   traffic delivered while the fan is parked; root last *)
let wide_msgs n =
  let half = n / 2 in
  let children =
    Array.init half (fun i ->
        Message.make ~label:(lbl i) ~sender:0 ~dep:(Dep.after root_lbl) 0)
  in
  let independent =
    Array.init (n - half) (fun i ->
        Message.make ~label:(lbl (half + i)) ~sender:1 ~dep:Dep.null 0)
  in
  let root = Message.make ~label:root_lbl ~sender:2 ~dep:Dep.null 0 in
  (children, independent, root)

let bss_envs n =
  Array.init n (fun i ->
      {
        Bss.sender = 1;
        stamp = Vc.of_array [| 0; i + 1 |];
        tag = "";
        payload = 0;
      })

let counted_msgs n =
  Array.init n (fun i ->
      Message.make ~label:(lbl i) ~sender:(i mod 8) ~dep:Dep.null i)

(* --- the before/after pairs --- *)

let osend_chain n =
  let msgs = chain_msgs n in
  let before () =
    let m = Rosend.create ~id:0 () in
    for i = n - 1 downto 0 do
      Rosend.receive m msgs.(i)
    done
  in
  let after () =
    let m = Osend.create ~id:0 () in
    for i = n - 1 downto 0 do
      Osend.receive m msgs.(i)
    done
  in
  (before, after)

let osend_wide n =
  let children, independent, root = wide_msgs n in
  let before () =
    let m = Rosend.create ~id:0 () in
    Array.iter (Rosend.receive m) children;
    Array.iter (Rosend.receive m) independent;
    Rosend.receive m root
  in
  let after () =
    let m = Osend.create ~id:0 () in
    Array.iter (Osend.receive m) children;
    Array.iter (Osend.receive m) independent;
    Osend.receive m root
  in
  (before, after)

let bss_chain n =
  let envs = bss_envs n in
  let before () =
    let m = Rbss.member ~id:0 ~group_size:2 () in
    for i = n - 1 downto 0 do
      Rbss.receive m envs.(i)
    done
  in
  let after () =
    let m = Bss.member ~id:0 ~group_size:2 () in
    for i = n - 1 downto 0 do
      Bss.receive m envs.(i)
    done
  in
  (before, after)

let counted_batch n =
  let msgs = counted_msgs n in
  let before () =
    let m = Rasend.Counted.create ~batch_size:n () in
    Array.iter (Rasend.Counted.on_causal_deliver m) msgs
  in
  let after () =
    let m = Asend.Counted.create ~batch_size:n () in
    Array.iter (Asend.Counted.on_causal_deliver m) msgs
  in
  (before, after)

let shapes =
  [
    ("osend.chain", osend_chain);
    ("osend.wide", osend_wide);
    ("bss.chain", bss_chain);
    ("counted.batch", counted_batch);
  ]

let sizes = [ 64; 512; 4096 ]

type row = {
  name : string;
  n : int;
  before_ns : float;
  after_ns : float;
}

let speedup r = r.before_ns /. r.after_ns

let json_of_rows rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"indexed wakeup queues\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"quota_ms\": %d,\n" quota_ms);
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"n\": %d, \"before_ns\": %.0f, \
            \"after_ns\": %.0f, \"speedup\": %.2f}%s\n"
           r.name r.n r.before_ns r.after_ns (speedup r)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let run () =
  print_endline
    "\n================ scaling: seed list-scan vs indexed ================";
  Printf.printf "(per-measurement quota: %d ms)\n%!" quota_ms;
  let rows =
    List.concat_map
      (fun (name, make) ->
        List.map
          (fun n ->
            let before, after = make n in
            let before_ns = time_ns before in
            let after_ns = time_ns after in
            let r = { name; n; before_ns; after_ns } in
            Printf.printf "  %-14s n=%-5d before=%12.0fns after=%12.0fns \
                           speedup=%6.2fx\n%!"
              name n before_ns after_ns (speedup r);
            r)
          sizes)
      shapes
  in
  let t =
    Causalb_util.Table.create ~title:"scaling (ns per workload run)"
      ~columns:[ "shape"; "n"; "before"; "after"; "speedup" ]
  in
  List.iter
    (fun r ->
      Causalb_util.Table.add_row t
        [
          r.name;
          string_of_int r.n;
          Causalb_util.Table.fmt_float ~digits:0 r.before_ns;
          Causalb_util.Table.fmt_float ~digits:0 r.after_ns;
          Printf.sprintf "%.2fx" (speedup r);
        ])
    rows;
  Causalb_util.Table.print t;
  let out =
    Option.value ~default:"BENCH_PR3.json"
      (Sys.getenv_opt "CAUSALB_BENCH_OUT")
  in
  let oc = open_out out in
  output_string oc (json_of_rows rows);
  close_out oc;
  Printf.printf "wrote %s\n%!" out
