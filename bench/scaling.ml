(* Scaling + allocation benchmarks for the hot paths.

   Every shape is measured twice inside this one binary: "before" drives
   a frozen engine from [Causalb_reference], "after" drives the live
   code, on identical inputs.  That keeps the comparison honest (same
   compiler, same allocator state, same inputs) and lets CI regenerate
   the numbers in one run.  Besides CPU time, each measurement records
   the minor/major-heap words one run allocates ([Gc.quick_stat] deltas
   over the timed loop — allocation is deterministic, so the per-run
   figure is exact).

   Shapes, per engine:
   - [osend.chain]  — an N-message dependency chain arriving in reverse:
     everything parks on the missing head, then one receive releases the
     whole chain.  The seed sweeps the shrinking pool once per link
     (O(N^2)); the index wakes each link directly (O(N)).
   - [osend.wide]   — N/2 messages parked on one missing root while N/2
     independent messages deliver through: each independent delivery made
     the seed rescan the whole parked pool (O(N^2/4)); the index wakes
     nobody.  The root arrives last and releases the fan.
   - [bss.chain]    — one origin's vector-stamped sequence arriving in
     reverse; same pool-sweep vs bucket cascade contrast.
   - [counted.batch] — an N-message Counted bracket: the seed walked the
     buffer length on every insert (O(N^2) per bracket); the maintained
     size counter leaves one stable sort at the close.
   - [net.bcast]    — broadcast fan-out with tracing off: the frozen PR 3
     transport builds a trace info string and a fresh delivery closure
     per copy; the live one guards the sprintf behind [tracing] and
     recycles packets through a free list.  The headline
     words-per-delivered-message row.
   - [clock.receive] — vector-clock message receipt: the PR 3 composition
     [tick (merge local remote) me] (two fresh vectors per stamp) vs the
     in-place [receive_into] (none).
   - [wire.codec]   — envelope serialisation round trip: generic JSON
     text (the pipe/artifact codec) vs the binary wire codec.  The row's
     [wire_bytes_per_unit] records the binary frame size per envelope.
   - [wire.fanout]  — serialisation work of one broadcast to 8
     recipients: encode-per-recipient + decode-per-copy (what a naive
     transport does) vs encode-once + shared-frame memoised decode
     (what [Net.bcast] + [Codec.framed] do — one encode and one decode
     per broadcast, however many recipients).

   Results go to a table on stdout and to the cumulative machine-readable
   artifact (default [BENCH_PR10.json], override with CAUSALB_BENCH_OUT)
   via [Bench_out].  Each row is the PR 3 schema {name; n; before_ns;
   after_ns; speedup} plus GC words, a [units] normaliser, and the wire
   bytes one delivered copy carries (0 for non-wire shapes).  The n=64
   rows double as the no-regression guard for small workloads.  The
   member-count sweep below compares BSS's O(n) causal metadata against
   PC-broadcast's O(1) headers across group sizes.
   CAUSALB_BENCH_QUOTA_MS shrinks the per-measurement budget for CI smoke
   runs; CAUSALB_BENCH_MEMBERS_MAX caps the member sweep's group sizes. *)

module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Vc = Causalb_clock.Vector_clock
module Message = Causalb_core.Message
module Osend = Causalb_core.Osend
module Bss = Causalb_core.Bss
module Asend = Causalb_core.Asend
module Engine = Causalb_sim.Engine
module Net = Causalb_net.Net
module Rosend = Causalb_reference.Osend
module Rbss = Causalb_reference.Bss
module Rasend = Causalb_reference.Asend
module Rnet = Causalb_reference.Net
module Wire = Causalb_util.Wire
module Json = Causalb_util.Json
module Codec = Causalb_core.Codec
module Pcb = Causalb_core.Pcbcast
module Fgroup = Causalb_core.Fgroup
module Metrics = Causalb_stackbase.Metrics

let quota_ms =
  match Sys.getenv_opt "CAUSALB_BENCH_QUOTA_MS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 200)
  | None -> 200

type sample = { ns : float; minor_words : float; major_words : float }

(* Adaptive CPU timing: double the repetition count until one batch fills
   the quota, then report per-run figures from that batch.  One warm-up
   run is discarded; GC words are read around the same loop the timing
   uses, so time and allocation describe the same executions. *)
let measure f =
  f ();
  let quota = float_of_int quota_ms /. 1000.0 in
  let rec go reps =
    let g0 = Gc.quick_stat () in
    let t0 = Sys.time () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Sys.time () -. t0 in
    let g1 = Gc.quick_stat () in
    if dt >= quota then
      let per x = x /. float_of_int reps in
      {
        ns = per dt *. 1e9;
        minor_words = per (g1.Gc.minor_words -. g0.Gc.minor_words);
        major_words = per (g1.Gc.major_words -. g0.Gc.major_words);
      }
    else go (reps * 2)
  in
  go 1

let lbl i = Label.make ~origin:(i mod 8) ~seq:(i / 8) ()

let root_lbl = Label.make ~origin:9 ~seq:0 ()

(* --- shape inputs, built once per size outside the timed region --- *)

let chain_msgs n =
  Array.init n (fun i ->
      Message.make ~label:(lbl i) ~sender:0
        ~dep:(if i = 0 then Dep.null else Dep.after (lbl (i - 1)))
        0)

(* first half: fan children of the missing root; second half: independent
   traffic delivered while the fan is parked; root last *)
let wide_msgs n =
  let half = n / 2 in
  let children =
    Array.init half (fun i ->
        Message.make ~label:(lbl i) ~sender:0 ~dep:(Dep.after root_lbl) 0)
  in
  let independent =
    Array.init (n - half) (fun i ->
        Message.make ~label:(lbl (half + i)) ~sender:1 ~dep:Dep.null 0)
  in
  let root = Message.make ~label:root_lbl ~sender:2 ~dep:Dep.null 0 in
  (children, independent, root)

let bss_envs n =
  Array.init n (fun i ->
      {
        Bss.sender = 1;
        stamp = Vc.of_array [| 0; i + 1 |];
        tag = "";
        payload = 0;
      })

let counted_msgs n =
  Array.init n (fun i ->
      Message.make ~label:(lbl i) ~sender:(i mod 8) ~dep:Dep.null i)

(* --- the before/after pairs; each returns (before, after, units) where
   [units] is the logical operations one run performs --- *)

let osend_chain n =
  let msgs = chain_msgs n in
  let before () =
    let m = Rosend.create ~id:0 () in
    for i = n - 1 downto 0 do
      Rosend.receive m msgs.(i)
    done
  in
  let after () =
    let m = Osend.create ~id:0 () in
    for i = n - 1 downto 0 do
      Osend.receive m msgs.(i)
    done
  in
  (before, after, float_of_int n, 0.0)

let osend_wide n =
  let children, independent, root = wide_msgs n in
  let before () =
    let m = Rosend.create ~id:0 () in
    Array.iter (Rosend.receive m) children;
    Array.iter (Rosend.receive m) independent;
    Rosend.receive m root
  in
  let after () =
    let m = Osend.create ~id:0 () in
    Array.iter (Osend.receive m) children;
    Array.iter (Osend.receive m) independent;
    Osend.receive m root
  in
  (before, after, float_of_int n, 0.0)

let bss_chain n =
  let envs = bss_envs n in
  let before () =
    let m = Rbss.member ~id:0 ~group_size:2 () in
    for i = n - 1 downto 0 do
      Rbss.receive m envs.(i)
    done
  in
  let after () =
    let m = Bss.member ~id:0 ~group_size:2 () in
    for i = n - 1 downto 0 do
      Bss.receive m envs.(i)
    done
  in
  (before, after, float_of_int n, 0.0)

let counted_batch n =
  let msgs = counted_msgs n in
  let before () =
    let m = Rasend.Counted.create ~batch_size:n () in
    Array.iter (Rasend.Counted.on_causal_deliver m) msgs
  in
  let after () =
    let m = Asend.Counted.create ~batch_size:n () in
    Array.iter (Asend.Counted.on_causal_deliver m) msgs
  in
  (before, after, float_of_int n, 0.0)

(* Broadcast fan-out through the simulated transport, tracing off — the
   configuration every experiment driver runs in.  [n] is scaled into
   rounds of one broadcast over an 8-node group; each round delivers 8
   copies (self included), so units = delivered messages per run. *)
let net_bcast n =
  let nodes = 8 in
  let rounds = max 1 (n / nodes) in
  let delivered = rounds * nodes in
  let before () =
    let e = Engine.create ~seed:7 () in
    let net = Rnet.create e ~nodes () in
    let sink = ref 0 in
    for i = 0 to nodes - 1 do
      Rnet.set_handler net i (fun ~src:_ _ -> incr sink)
    done;
    for r = 0 to rounds - 1 do
      Rnet.broadcast net ~src:(r mod nodes) r;
      Engine.run e
    done;
    assert (!sink = delivered)
  in
  let after () =
    let e = Engine.create ~seed:7 () in
    let net = Net.create e ~nodes () in
    let sink = ref 0 in
    for i = 0 to nodes - 1 do
      Net.set_handler net i (fun ~src:_ _ -> incr sink)
    done;
    for r = 0 to rounds - 1 do
      Net.broadcast net ~src:(r mod nodes) r;
      Engine.run e
    done;
    assert (!sink = delivered)
  in
  (before, after, float_of_int delivered, 0.0)

(* Vector-clock receipt over a 32-wide group, one stamp per unit.  The
   before side is the PR 3 composition (merge allocates, tick copies);
   the after side mutates a process-owned clock in place. *)
let clock_receive n =
  let width = 32 in
  let me = 0 in
  let remotes =
    Array.init n (fun i ->
        Vc.of_array (Array.init width (fun j -> (i * 7 + j * 3) mod 50)))
  in
  let before () =
    let local = ref (Vc.create width) in
    for i = 0 to n - 1 do
      local := Vc.tick (Vc.merge !local remotes.(i)) me
    done
  in
  let after () =
    let local = Vc.create width in
    for i = 0 to n - 1 do
      Vc.receive_into ~local ~remote:remotes.(i) ~me
    done
  in
  (before, after, float_of_int n, 0.0)

(* --- wire codec shapes (new in PR 8); both sides are live code, the
   "before" is the serialisation strategy the wire codec replaces --- *)

let wire_env i : string Bss.envelope =
  {
    Bss.sender = i mod 8;
    stamp = Vc.of_array [| i; i * 2 mod 97; 3; i mod 5; i mod 11 |];
    tag = (if i mod 3 = 0 then "t" ^ string_of_int i else "");
    payload = "payload-" ^ string_of_int (i mod 100);
  }

let json_of_env (e : string Bss.envelope) =
  Json.Obj
    [
      ("sender", Json.Num (float_of_int e.sender));
      ( "stamp",
        Json.List
          (Array.to_list (Vc.to_array e.stamp)
          |> List.map (fun v -> Json.Num (float_of_int v))) );
      ("tag", Json.Str e.tag);
      ("payload", Json.Str e.payload);
    ]

let env_of_json j : string Bss.envelope =
  let get k = Option.get (Json.member k j) in
  {
    Bss.sender = Json.get_int (get "sender");
    stamp =
      Vc.of_array
        (Array.of_list (List.map Json.get_int (Json.get_list (get "stamp"))));
    tag = Json.get_string (get "tag");
    payload = Json.get_string (get "payload");
  }

let wire_enc = Codec.put_envelope Codec.put_str

let wire_dec = Codec.get_envelope Codec.get_str

(* Average binary frame size over the shape's envelopes — the bytes one
   delivered copy carries, reported as the row's [wire_bytes_per_unit]. *)
let avg_frame_bytes envs =
  let pool = Wire.pool () in
  let total =
    Array.fold_left
      (fun a e -> a + Wire.length (Codec.encode pool wire_enc e))
      0 envs
  in
  float_of_int total /. float_of_int (Array.length envs)

let wire_codec n =
  let envs = Array.init n wire_env in
  let sink = ref 0 in
  let before () =
    sink := 0;
    for i = 0 to n - 1 do
      let s = Json.to_string (json_of_env envs.(i)) in
      let e = env_of_json (Json.of_string s) in
      sink := !sink + e.Bss.sender
    done
  in
  let pool = Wire.pool () in
  let after () =
    sink := 0;
    for i = 0 to n - 1 do
      let frame = Codec.encode pool wire_enc envs.(i) in
      let e = Codec.decode wire_dec frame in
      sink := !sink + e.Bss.sender
    done
  in
  (before, after, float_of_int n, avg_frame_bytes envs)

let wire_fanout n =
  let nodes = 8 in
  let rounds = max 1 (n / nodes) in
  let delivered = rounds * nodes in
  let envs = Array.init rounds wire_env in
  let pool = Wire.pool () in
  let sink = ref 0 in
  let before () =
    sink := 0;
    for r = 0 to rounds - 1 do
      for _dst = 1 to nodes do
        let frame = Codec.encode pool wire_enc envs.(r) in
        let e = Codec.decode wire_dec frame in
        sink := !sink + e.Bss.sender
      done
    done
  in
  let after () =
    sink := 0;
    for r = 0 to rounds - 1 do
      let frame = Codec.encode pool wire_enc envs.(r) in
      let fr = Codec.framed frame in
      for _dst = 1 to nodes do
        let e = Codec.view fr ~dec:wire_dec in
        sink := !sink + e.Bss.sender
      done
    done
  in
  (before, after, float_of_int delivered, avg_frame_bytes envs)

(* --- member-count sweep (new in PR 10): BSS's O(n) causal metadata vs
   PC-broadcast's O(1) ---------------------------------------------------

   Micro rows isolate one member's receive path: a founder consumes k
   in-order messages from one peer.  The BSS side merges an n-entry
   vector stamp per delivery and its header codec ships the whole
   vector; the PC side advances one cursor and ships (origin, seq, tag)
   varints whatever the group size.  Member construction sits inside the
   timed run (BSS's clock is itself O(n) state), amortised over k
   deliveries.

   E2e rows run whole framed groups through the simulated transport —
   full-mesh BSS against PC flooding on a degree-8 overlay — and read
   metadata bytes from the control/payload split the metrics layer
   records per copy, so the numbers are the accounting real runs
   report, not a codec-only estimate.

   CAUSALB_BENCH_MEMBERS_MAX caps the sweep (CI smoke uses a small cap;
   the committed artifact runs the full 1k/10k/100k micro and 16..1024
   e2e sizes). *)

let members_max =
  match Sys.getenv_opt "CAUSALB_BENCH_MEMBERS_MAX" with
  | Some s -> ( try max 16 (int_of_string s) with _ -> 102_400)
  | None -> 102_400

let micro_member_sizes =
  List.filter (fun n -> n <= members_max) [ 1_024; 10_240; 102_400 ]

let e2e_member_sizes =
  List.filter (fun n -> n <= members_max) [ 16; 64; 256; 1_024 ]

let member_micro n =
  (* deliveries per run: enough to amortise member construction, capped
     so the n-wide stamp array stays within memory at n = 100k *)
  let k = max 16 (min 256 (2_097_152 / n)) in
  let bss_envs =
    Array.init k (fun i ->
        {
          Bss.sender = 1;
          stamp =
            Vc.of_array (Array.init n (fun j -> if j = 1 then i + 1 else 0));
          tag = "";
          payload = 0;
        })
  in
  let pc_envs =
    let sender = Pcb.member ~id:1 ~send:(fun ~dst:_ _ -> ()) () in
    Array.init k (fun _ -> fst (Pcb.next_envelope sender 0))
  in
  let bss () =
    let m = Bss.member ~id:0 ~group_size:n () in
    Array.iter (Bss.receive m) bss_envs
  in
  let pc () =
    (* adopt-first baseline: the first copy from origin 1 is seq 0, so
       every subsequent seq delivers straight through — no peers, no
       flooding, just the cursor walk *)
    let m = Pcb.member ~id:0 ~send:(fun ~dst:_ _ -> ()) () in
    Array.iter (fun e -> Pcb.receive m ~src:1 (Pcb.Env e)) pc_envs
  in
  let pool = Wire.pool () in
  let bss_meta =
    float_of_int
      (Wire.length (Codec.encode pool Codec.put_envelope_header bss_envs.(k - 1)))
  in
  let pc_meta =
    float_of_int
      (Wire.length (Codec.encode pool Codec.put_pc_header pc_envs.(k - 1)))
  in
  let b = measure bss in
  let p = measure pc in
  let fk = float_of_int k in
  {
    Bench_out.mode = "micro";
    members = n;
    bss_meta_bytes = bss_meta;
    pc_meta_bytes = pc_meta;
    bss_ns = b.ns /. fk;
    pc_ns = p.ns /. fk;
    bss_minor_words = b.minor_words /. fk;
    pc_minor_words = p.minor_words /. fk;
  }

let member_e2e n =
  let rounds = 4 in
  let degree = 8 in
  let enc = Codec.put_int and dec = Codec.get_int in
  let bss_run () =
    let e = Engine.create ~seed:11 () in
    let net = Net.create e ~nodes:n ~fifo:true () in
    let g = Fgroup.Bss.create net ~enc ~dec () in
    for r = 0 to rounds - 1 do
      Fgroup.Bss.bcast g ~src:(r mod n) r;
      Engine.run e
    done;
    g
  in
  let pc_run () =
    let e = Engine.create ~seed:11 () in
    let net = Net.create e ~nodes:n ~fifo:true () in
    let g = Fgroup.Pc.create ~degree net ~enc ~dec () in
    for r = 0 to rounds - 1 do
      ignore (Fgroup.Pc.bcast g ~src:(r mod n) r);
      Engine.run e
    done;
    g
  in
  (* one instrumented run for the byte/delivery counters, then the timed
     loop; runs are deterministic, so the two describe the same work *)
  let split metrics_of =
    let ctrl = ref 0 and delivered = ref 0 in
    for i = 0 to n - 1 do
      let m = metrics_of i in
      ctrl := !ctrl + m.Metrics.control_bytes;
      delivered := !delivered + m.Metrics.delivered
    done;
    (float_of_int !ctrl /. float_of_int !delivered, float_of_int !delivered)
  in
  let bss_meta, bss_delivered =
    let g = bss_run () in
    split (Fgroup.Bss.metrics g)
  in
  let pc_meta, pc_delivered =
    let g = pc_run () in
    split (Fgroup.Pc.metrics g)
  in
  let b = measure (fun () -> ignore (bss_run ())) in
  let p = measure (fun () -> ignore (pc_run ())) in
  {
    Bench_out.mode = "e2e";
    members = n;
    bss_meta_bytes = bss_meta;
    pc_meta_bytes = pc_meta;
    bss_ns = b.ns /. bss_delivered;
    pc_ns = p.ns /. pc_delivered;
    bss_minor_words = b.minor_words /. bss_delivered;
    pc_minor_words = p.minor_words /. pc_delivered;
  }

let collect_members () =
  let one make n =
    let (r : Bench_out.member_row) = make n in
    Printf.printf
      "  %-5s n=%-6d meta B/delivery %8.1f vs %5.1f   ns/delivery %9.0f \
       vs %9.0f\n\
       %!"
      r.Bench_out.mode n r.Bench_out.bss_meta_bytes r.Bench_out.pc_meta_bytes
      r.Bench_out.bss_ns r.Bench_out.pc_ns;
    r
  in
  List.map (one member_micro) micro_member_sizes
  @ List.map (one member_e2e) e2e_member_sizes

let print_members_table rows =
  let t =
    Causalb_util.Table.create
      ~title:
        "member-count scaling (BSS O(n) vs PC O(1), per delivered message)"
      ~columns:
        [ "mode"; "members"; "bss meta B"; "pc meta B"; "bss ns"; "pc ns";
          "bss minor w"; "pc minor w" ]
  in
  List.iter
    (fun (r : Bench_out.member_row) ->
      Causalb_util.Table.add_row t
        [
          r.mode;
          string_of_int r.members;
          Causalb_util.Table.fmt_float ~digits:1 r.bss_meta_bytes;
          Causalb_util.Table.fmt_float ~digits:1 r.pc_meta_bytes;
          Causalb_util.Table.fmt_float ~digits:0 r.bss_ns;
          Causalb_util.Table.fmt_float ~digits:0 r.pc_ns;
          Causalb_util.Table.fmt_float ~digits:1 r.bss_minor_words;
          Causalb_util.Table.fmt_float ~digits:1 r.pc_minor_words;
        ])
    rows;
  Causalb_util.Table.print t

let shapes =
  [
    ("osend.chain", osend_chain);
    ("osend.wide", osend_wide);
    ("bss.chain", bss_chain);
    ("counted.batch", counted_batch);
    ("net.bcast", net_bcast);
    ("clock.receive", clock_receive);
    ("wire.codec", wire_codec);
    ("wire.fanout", wire_fanout);
  ]

let sizes = [ 64; 512; 4096 ]

let collect () =
  Printf.printf "(per-measurement quota: %d ms)\n%!" quota_ms;
  List.concat_map
    (fun (name, make) ->
      List.map
        (fun n ->
          let before, after, units, wire_bytes_per_unit = make n in
          let b = measure before in
          let a = measure after in
          let r =
            {
              Bench_out.name;
              n;
              units;
              before_ns = b.ns;
              after_ns = a.ns;
              before_minor_words = b.minor_words;
              after_minor_words = a.minor_words;
              before_major_words = b.major_words;
              after_major_words = a.major_words;
              wire_bytes_per_unit;
            }
          in
          Printf.printf
            "  %-14s n=%-5d before=%12.0fns after=%12.0fns speedup=%6.2fx \
             minor_w/unit %8.1f -> %8.1f\n\
             %!"
            name n b.ns a.ns (Bench_out.speedup r) (b.minor_words /. units)
            (a.minor_words /. units);
          r)
        sizes)
    shapes

let print_table rows =
  let t =
    Causalb_util.Table.create
      ~title:"scaling (ns and minor-heap words per workload run)"
      ~columns:
        [ "shape"; "n"; "before ns"; "after ns"; "speedup";
          "minor w/unit before"; "minor w/unit after"; "saved";
          "wire B/unit" ]
  in
  List.iter
    (fun (r : Bench_out.row) ->
      Causalb_util.Table.add_row t
        [
          r.name;
          string_of_int r.n;
          Causalb_util.Table.fmt_float ~digits:0 r.before_ns;
          Causalb_util.Table.fmt_float ~digits:0 r.after_ns;
          Printf.sprintf "%.2fx" (Bench_out.speedup r);
          Causalb_util.Table.fmt_float ~digits:1
            (r.before_minor_words /. r.units);
          Causalb_util.Table.fmt_float ~digits:1
            (r.after_minor_words /. r.units);
          Causalb_util.Table.fmt_pct (Bench_out.minor_words_saved r);
          (if r.wire_bytes_per_unit > 0.0 then
             Causalb_util.Table.fmt_float ~digits:1 r.wire_bytes_per_unit
           else "-");
        ])
    rows;
  Causalb_util.Table.print t

let run () =
  print_endline
    "\n================ scaling: frozen reference vs live hot paths \
     ================";
  let rows = collect () in
  print_table rows;
  print_endline
    "\n================ member-count scaling: BSS O(n) vs PC O(1) \
     ================";
  let members = collect_members () in
  print_members_table members;
  let out = Bench_out.write ~quota_ms ~members ~rows ~sweeps:[] () in
  Printf.printf "wrote %s\n%!" out
