(* causalb — command-line driver for the simulated protocols.

   Subcommands run each protocol study with tunable parameters and print
   measurements plus the consistency verdicts, e.g.:

     causalb counter --replicas 5 --ops 200 --commutative 0.9
     causalb lock --members 8 --cycles 10
     causalb names --mode total-order --update-frac 0.3
     causalb cards --players 6 --rounds 5 --relax
     causalb scenario            # the Fig. 2 walkthrough, with trace *)

open Cmdliner

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Trace = Causalb_sim.Trace
module Net = Causalb_net.Net
module Group = Causalb_core.Group
module Dep = Causalb_graph.Dep
module Label = Causalb_graph.Label
module Dt = Causalb_data.Datatypes
module Service = Causalb_data.Service
module Replica = Causalb_data.Replica
module Lock = Causalb_protocols.Lock_service
module Ns = Causalb_protocols.Name_service
module Cards = Causalb_protocols.Card_game
module Stats = Causalb_util.Stats
module Rng = Causalb_util.Rng

(* --- shared options --- *)

let seed =
  let doc = "Random seed for the deterministic simulation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let sigma =
  let doc = "Lognormal latency sigma (link variance)." in
  Arg.(value & opt float 1.0 & info [ "sigma" ] ~docv:"S" ~doc)

let latency_of sigma = Latency.lognormal ~mu:0.5 ~sigma ()

let print_checks checks =
  print_endline "consistency checks:";
  List.iter
    (fun (name, ok) ->
      Printf.printf "  %-32s %s\n" name (if ok then "ok" else "VIOLATED"))
    checks;
  if List.for_all snd checks then 0 else 1

(* --- counter: replicated integer service --- *)

let counter seed sigma replicas ops commutative spacing =
  let engine = Engine.create ~seed () in
  let svc =
    Service.create engine ~replicas ~machine:Dt.Int_register.machine
      ~latency:(latency_of sigma) ~fifo:false ()
  in
  let rng = Engine.fork_rng engine in
  for i = 0 to ops - 1 do
    Engine.schedule_at engine ~time:(float_of_int i *. spacing) (fun () ->
        let op =
          if Rng.bernoulli rng commutative then Dt.Int_register.Inc 1
          else Dt.Int_register.Read
        in
        ignore (Service.submit svc ~src:(i mod replicas) op))
  done;
  (* closing read so the final window reaches a stable point *)
  Engine.schedule_at engine ~time:(float_of_int ops *. spacing) (fun () ->
      ignore (Service.submit svc ~src:0 Dt.Int_register.Read));
  Service.run svc;
  Printf.printf "replicas=%d ops=%d commutative=%.2f sigma=%.2f seed=%d\n"
    replicas ops commutative sigma seed;
  Printf.printf "final value: %d (agreed at %d stable points)\n"
    (Replica.stable_state (Service.replica svc 0))
    (Replica.cycles_closed (Service.replica svc 0));
  Printf.printf "delivery latency: %s\n"
    (Stats.summary (Service.delivery_latency svc));
  Printf.printf "stability latency: %s\n"
    (Stats.summary (Service.stability_latency svc));
  Printf.printf "unicast messages: %d\n" (Service.messages_sent svc);
  print_checks (Service.check svc)

let counter_cmd =
  let replicas =
    Arg.(value & opt int 5 & info [ "replicas" ] ~docv:"N"
           ~doc:"Number of data replicas.")
  in
  let ops =
    Arg.(value & opt int 200 & info [ "ops" ] ~docv:"OPS"
           ~doc:"Operations to submit.")
  in
  let commutative =
    Arg.(value & opt float 0.9 & info [ "commutative" ] ~docv:"P"
           ~doc:"Probability an operation is a commutative inc (the rest \
                 are non-commutative reads).")
  in
  let spacing =
    Arg.(value & opt float 0.5 & info [ "spacing" ] ~docv:"MS"
           ~doc:"Milliseconds between submissions.")
  in
  Cmd.v
    (Cmd.info "counter"
       ~doc:"Replicated integer with the \xc2\xa76.1 stable-point access protocol")
    Term.(const counter $ seed $ sigma $ replicas $ ops $ commutative $ spacing)

(* --- lock: decentralized arbitration --- *)

let lock seed sigma members cycles hold =
  let engine = Engine.create ~seed () in
  let t =
    Lock.create engine ~members ~latency:(latency_of sigma)
      ~hold:(Latency.exponential ~mean:hold ()) ()
  in
  Lock.start t ~cycles;
  Engine.run engine;
  Printf.printf "members=%d cycles=%d hold=%.1fms sigma=%.2f seed=%d\n" members
    cycles hold sigma seed;
  List.iter
    (fun g ->
      Printf.printf "  S=%d holder=%d %8.2f .. %8.2f ms\n" g.Lock.cycle
        g.Lock.holder g.Lock.grant_time g.Lock.release_time)
    (Lock.grants t);
  Printf.printf "cycle duration: %s\n" (Stats.summary (Lock.cycle_durations t));
  Printf.printf "wait for grant: %s\n" (Stats.summary (Lock.wait_times t));
  Printf.printf "messages: %d\n" (Lock.messages_sent t);
  print_checks
    [
      ("mutual-exclusion", Lock.check_mutual_exclusion t);
      ("agreement", Lock.check_agreement t);
      ("liveness", Lock.check_liveness t ~expected_cycles:cycles);
    ]

let lock_cmd =
  let members =
    Arg.(value & opt int 4 & info [ "members" ] ~docv:"N" ~doc:"Group size.")
  in
  let cycles =
    Arg.(value & opt int 5 & info [ "cycles" ] ~docv:"S"
           ~doc:"Arbitration cycles to run.")
  in
  let hold =
    Arg.(value & opt float 1.5 & info [ "hold" ] ~docv:"MS"
           ~doc:"Mean resource hold time (exponential).")
  in
  Cmd.v
    (Cmd.info "lock"
       ~doc:"Decentralized LOCK/TFR arbitration over total order (\xc2\xa76.2)")
    Term.(const lock $ seed $ sigma $ members $ cycles $ hold)

(* --- names: the \xc2\xa75.2 name service --- *)

let names seed sigma servers ops update_frac total_order =
  let engine = Engine.create ~seed () in
  let mode = if total_order then Ns.Total_order else Ns.App_check in
  let t = Ns.create engine ~servers ~mode ~latency:(latency_of sigma) () in
  let rng = Engine.fork_rng engine in
  let keys = [| "a"; "b"; "c"; "d" |] in
  for i = 0 to ops - 1 do
    let src = i mod servers in
    let key = Rng.pick rng keys in
    let upd = Rng.bernoulli rng update_frac in
    Engine.schedule_at engine ~time:(float_of_int i *. 0.8) (fun () ->
        if upd then Ns.update t ~src ~key (Printf.sprintf "v%d" i)
        else Ns.query t ~src ~key)
  done;
  Engine.run engine;
  Printf.printf "servers=%d ops=%d update-frac=%.2f mode=%s seed=%d\n" servers
    ops update_frac
    (if total_order then "total-order" else "app-check")
    seed;
  Printf.printf "updates=%d queries=%d answers=%d discarded=%d (%.1f%%)\n"
    (Ns.updates_issued t) (Ns.queries_issued t)
    (List.length (Ns.answers t))
    (Ns.answers_discarded t)
    (100.0 *. Ns.discard_fraction t);
  Printf.printf "answer latency: %s\n" (Stats.summary (Ns.answer_latency t));
  print_checks
    [
      ("valid-answers-agree", Ns.valid_answers_agree t);
      ( "final-registries-agree",
        (* expected to fail sometimes in app-check mode; informational *)
        Ns.final_states_agree t || mode = Ns.App_check );
    ]

let names_cmd =
  let servers =
    Arg.(value & opt int 4 & info [ "servers" ] ~docv:"N" ~doc:"Name servers.")
  in
  let ops =
    Arg.(value & opt int 200 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations.")
  in
  let update_frac =
    Arg.(value & opt float 0.2 & info [ "update-frac" ] ~docv:"F"
           ~doc:"Fraction of operations that are updates.")
  in
  let total_order =
    Arg.(value & flag & info [ "total-order" ]
           ~doc:"Use the ASend sequencer instead of context checks.")
  in
  Cmd.v
    (Cmd.info "names" ~doc:"Spontaneous-traffic name service (\xc2\xa75.2)")
    Term.(const names $ seed $ sigma $ servers $ ops $ update_frac $ total_order)

(* --- cards: the \xc2\xa75.1 game --- *)

let cards seed sigma players rounds relax think =
  let engine = Engine.create ~seed () in
  let mode =
    if relax then Cards.Relaxed (fun ~round:_ ~player -> player / 2)
    else Cards.Strict_turns
  in
  let t =
    Cards.create engine ~players ~mode ~latency:(latency_of sigma)
      ~think:(Latency.exponential ~mean:think ()) ()
  in
  Cards.start t ~rounds;
  Engine.run engine;
  Printf.printf "players=%d rounds=%d mode=%s seed=%d\n" players rounds
    (if relax then "relaxed (k=l/2)" else "strict turns")
    seed;
  Printf.printf "rounds completed: %d\n" (Cards.rounds_completed t);
  Printf.printf "round duration: %s\n" (Stats.summary (Cards.round_durations t));
  Printf.printf "messages: %d\n" (Cards.messages_sent t);
  print_checks
    [
      ("causal-order", Cards.check_causal_order t);
      ("tables-agree", Cards.check_tables_agree t);
    ]

let cards_cmd =
  let players =
    Arg.(value & opt int 6 & info [ "players" ] ~docv:"N" ~doc:"Players.")
  in
  let rounds =
    Arg.(value & opt int 5 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds.")
  in
  let relax =
    Arg.(value & flag & info [ "relax" ]
           ~doc:"Relaxed causal turn order (player l waits for player l/2) \
                 instead of strict turns.")
  in
  let think =
    Arg.(value & opt float 2.0 & info [ "think" ] ~docv:"MS"
           ~doc:"Mean think time (exponential).")
  in
  Cmd.v
    (Cmd.info "cards" ~doc:"Multiplayer card game with relaxed turns (\xc2\xa75.1)")
    Term.(const cards $ seed $ sigma $ players $ rounds $ relax $ think)

(* --- pages: shared page travelling with the lock --- *)

let pages seed sigma members cycles =
  let module Page = Causalb_protocols.Page_service in
  let engine = Engine.create ~seed () in
  let mutate ~member ~page:(p : Page.page) =
    let stamp = Printf.sprintf "<%d@v%d>" member (p.Page.version + 1) in
    if p.Page.data = "" then stamp else p.Page.data ^ stamp
  in
  let t =
    Page.create engine ~members ~mutate ~latency:(latency_of sigma) ()
  in
  Page.start t ~cycles;
  Engine.run engine;
  Printf.printf "members=%d cycles=%d seed=%d\n" members cycles seed;
  List.iter
    (fun (v, w) -> Printf.printf "  v%-3d by member %d\n" v w)
    (Page.writes t);
  let final = Page.page_at t 0 in
  Printf.printf "final version: %d  messages: %d\n" final.Page.version
    (Page.messages_sent t);
  print_checks
    [
      ( "no-lost-updates",
        Page.check_no_lost_updates t ~expected_writes:(members * cycles) );
      ("copies-converge", Page.check_copies_converge t);
      ("versions-monotone", Page.check_versions_monotone t);
    ]

let pages_cmd =
  let members =
    Arg.(value & opt int 3 & info [ "members" ] ~docv:"N" ~doc:"Group size.")
  in
  let cycles =
    Arg.(value & opt int 3 & info [ "cycles" ] ~docv:"S" ~doc:"Cycles.")
  in
  Cmd.v
    (Cmd.info "pages" ~doc:"Shared page moving with the arbitration lock (\xc2\xa76.2)")
    Term.(const pages $ seed $ sigma $ members $ cycles)

(* --- dsm: the causal-memory baseline of ref [5] --- *)

let dsm seed sigma nodes writes =
  let module Cmem = Causalb_protocols.Causal_memory in
  let engine = Engine.create ~seed () in
  let m = Cmem.create engine ~nodes ~latency:(latency_of sigma) () in
  let rng = Engine.fork_rng engine in
  let vars = [| "x"; "y"; "z" |] in
  for i = 0 to writes - 1 do
    let var = Rng.pick rng vars in
    Engine.schedule_at engine ~time:(float_of_int i *. 0.5) (fun () ->
        Cmem.write m ~node:(i mod nodes) ~var i)
  done;
  Engine.run engine;
  Printf.printf "nodes=%d writes=%d seed=%d\n" nodes writes seed;
  Array.iter
    (fun var ->
      Printf.printf "  %s: %s  (agree: %b)\n" var
        (String.concat " / "
           (List.init nodes (fun n ->
                match Cmem.read m ~node:n ~var with
                | Some v -> string_of_int v
                | None -> "-")))
        (Cmem.nodes_agree_on m ~var))
    vars;
  Printf.printf "divergent variables: %d of %d\n"
    (List.length (Cmem.divergent_vars m))
    (Array.length vars);
  print_checks
    [
      ("causal-application", Cmem.check_causal_application m);
      ("per-writer-order", Cmem.check_per_writer_order m);
    ]

let dsm_cmd =
  let nodes =
    Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc:"Nodes.")
  in
  let writes =
    Arg.(value & opt int 60 & info [ "writes" ] ~docv:"W" ~doc:"Writes.")
  in
  Cmd.v
    (Cmd.info "dsm"
       ~doc:"Causal distributed shared memory baseline (paper ref [5])")
    Term.(const dsm $ seed $ sigma $ nodes $ writes)

(* --- recovery: reliable causal broadcast over a lossy link --- *)

let recovery seed sigma nodes ops drop gc =
  let engine = Engine.create ~seed () in
  let net =
    Net.create engine ~nodes ~latency:(latency_of sigma)
      ~fault:(Causalb_net.Fault.make ~drop_prob:drop ())
      ()
  in
  let g = Causalb_core.Rgroup.create net () in
  Causalb_core.Rgroup.enable_heartbeat ~gc g ~period:15.0
    ~until:(float_of_int ops +. 2_000.0);
  let prev = ref Dep.null in
  for i = 0 to ops - 1 do
    Engine.schedule_at engine ~time:(float_of_int i *. 1.0) (fun () ->
        let dep = if i mod 3 = 0 then !prev else Dep.null in
        let lbl = Causalb_core.Rgroup.osend g ~src:(i mod nodes) ~dep i in
        if i mod 3 = 0 then prev := Dep.after lbl)
  done;
  Engine.run engine;
  let module Rg = Causalb_core.Rgroup in
  Printf.printf "nodes=%d ops=%d drop=%.2f gc=%b seed=%d\n" nodes ops drop gc
    seed;
  List.iteri
    (fun n o -> Printf.printf "  node %d delivered %d/%d\n" n (List.length o) ops)
    (Rg.all_delivered_orders g);
  Printf.printf "nacks=%d repairs=%d summaries=%d pruned=%d stash peak=%d\n"
    (Rg.nacks_sent g) (Rg.repairs_sent g) (Rg.summaries_sent g) (Rg.pruned g)
    (Rg.stash_peak g);
  let complete =
    List.for_all
      (fun o -> List.length o = ops)
      (Rg.all_delivered_orders g)
  in
  print_checks [ ("complete-delivery", complete) ]

let recovery_cmd =
  let nodes =
    Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc:"Group size.")
  in
  let ops =
    Arg.(value & opt int 200 & info [ "ops" ] ~docv:"OPS" ~doc:"Messages.")
  in
  let drop =
    Arg.(value & opt float 0.2 & info [ "drop" ] ~docv:"P"
           ~doc:"Per-copy loss probability.")
  in
  let gc =
    Arg.(value & flag & info [ "gc" ]
           ~doc:"Enable stability-based stash garbage collection.")
  in
  Cmd.v
    (Cmd.info "recovery"
       ~doc:"Reliable causal broadcast (NACK/repair/heartbeat) over loss")
    Term.(const recovery $ seed $ sigma $ nodes $ ops $ drop $ gc)

(* --- membership: virtually synchronous views --- *)

let membership seed sigma =
  let module Vgroup = Causalb_core.Vgroup in
  let engine = Engine.create ~seed () in
  let net = Net.create engine ~nodes:5 ~latency:(latency_of sigma) ~fifo:false () in
  let logs = Array.make 5 [] in
  let g =
    Vgroup.create net ~initial:[ 0; 1 ]
      ~on_deliver:(fun ~node ~vid:_ ~time:_ msg ->
        logs.(node) <- Causalb_core.Message.payload msg :: logs.(node))
      ~on_view:(fun ~node v ->
        Printf.printf "[%7.2f ms] node %d installs view %d {%s}\n"
          (Engine.now engine) node v.Vgroup.vid
          (String.concat "," (List.map string_of_int v.Vgroup.members)))
      ~get_state:(fun ~node -> logs.(node))
      ~set_state:(fun ~node s -> logs.(node) <- s)
      ()
  in
  for i = 0 to 29 do
    Engine.schedule_at engine ~time:(float_of_int i *. 1.5) (fun () ->
        let src = i mod 5 in
        if Vgroup.is_member g src then
          Vgroup.bcast g ~src (Printf.sprintf "m%d" i))
  done;
  Engine.schedule_at engine ~time:10.0 (fun () -> Vgroup.join g ~node:2);
  Engine.schedule_at engine ~time:25.0 (fun () -> Vgroup.join g ~node:3);
  Engine.schedule_at engine ~time:38.0 (fun () -> Vgroup.leave g ~node:1);
  Engine.run engine;
  List.iteri
    (fun n log ->
      Printf.printf "node %d: %d messages applied, member=%b\n" n
        (List.length log) (Vgroup.is_member g n))
    (Array.to_list logs);
  print_checks
    [
      ("views-agree", Vgroup.check_views_agree g);
      ("virtual-synchrony", Vgroup.check_virtual_synchrony g);
    ]

let membership_cmd =
  Cmd.v
    (Cmd.info "membership"
       ~doc:"Dynamic group membership with virtually synchronous views")
    Term.(const membership $ seed $ sigma)

(* --- scenario: the Fig. 2 walkthrough with a full trace --- *)

let scenario seed sigma =
  let engine = Engine.create ~seed () in
  let trace = Trace.create () in
  let net =
    Net.create engine ~nodes:3 ~latency:(latency_of sigma) ~fifo:false ~trace ()
  in
  let group = Group.create net ~trace () in
  let mk = Group.osend group ~src:2 ~name:"mk" ~dep:Dep.null "mk" in
  Engine.run engine;
  let mi = Group.osend group ~src:0 ~name:"mi" ~dep:(Dep.after mk) "mi" in
  let mi' = Group.osend group ~src:1 ~name:"mi2" ~dep:(Dep.after mk) "mi2" in
  Engine.run engine;
  ignore (Group.osend group ~src:0 ~name:"mj" ~dep:(Dep.after_all [ mi; mi' ]) "mj");
  Engine.run engine;
  Format.printf "Fig. 2 scenario trace (seed=%d sigma=%.2f):@.%a@." seed sigma
    Trace.pp trace;
  List.iteri
    (fun node order ->
      Printf.printf "member %d delivered: %s\n" node
        (String.concat " -> " (List.map Label.to_string order)))
    (Group.all_delivered_orders group);
  0

let scenario_cmd =
  Cmd.v
    (Cmd.info "scenario" ~doc:"Fig. 2 walkthrough with a full message trace")
    Term.(const scenario $ seed $ sigma)

(* --- infer: mine the ordering specification from observed runs --- *)

let infer seed sigma runs =
  let module Infer = Causalb_graph.Infer in
  let module Depgraph = Causalb_graph.Depgraph in
  (* ground truth: the §6.1 cycle shape  nc0 -> ||{c1 c2 c3} -> nc4 *)
  let run_once seed =
    let engine = Engine.create ~seed () in
    let net =
      Net.create engine ~nodes:3 ~latency:(latency_of sigma) ~fifo:false ()
    in
    let group = Group.create net () in
    let nc0 = Group.osend group ~src:0 ~name:"nc0" ~dep:Dep.null "nc0" in
    let cs =
      List.init 3 (fun i ->
          Group.osend group ~src:(i mod 3)
            ~name:(Printf.sprintf "c%d" (i + 1))
            ~dep:(Dep.after nc0) "c")
    in
    ignore
      (Group.osend group ~src:0 ~name:"nc4" ~dep:(Dep.after_all cs) "nc4");
    Engine.run engine;
    (Group.all_delivered_orders group, Causalb_core.Osend.graph (Group.member group 0))
  in
  let observations = ref [] in
  let truth = ref None in
  for r = 0 to runs - 1 do
    let orders, g = run_once (seed + r) in
    observations := orders @ !observations;
    if !truth = None then truth := Some g
  done;
  let truth = Option.get !truth in
  let inferred = Infer.infer !observations in
  Printf.printf
    "mined ordering specification from %d observations (%d runs x 3 members):\n"
    (List.length !observations) runs;
  List.iter
    (fun (lbl, dep) ->
      Format.printf "  OSend(%a, G, %a)@." Causalb_graph.Label.pp lbl
        Causalb_graph.Dep.pp dep)
    (Infer.spec inferred);
  Printf.printf "sound (contains the true relation): %b\n"
    (Infer.over_approximation ~truth inferred);
  Printf.printf "exact (equals the true relation):   %b\n"
    (Infer.exact ~truth inferred);
  if Infer.exact ~truth inferred then 0 else 0

let infer_cmd =
  let runs =
    Arg.(value & opt int 4 & info [ "runs" ] ~docv:"R"
           ~doc:"Independent executions to observe.")
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:"Mine the Occurs_After specification from observed executions \
             (\xc2\xa73.2)")
    Term.(const infer $ seed $ sigma $ runs)

(* --- exp / bench: the experiment sweep, optionally parallel --- *)

module Registry = Causalb_bench.Registry
module Runner = Causalb_bench.Runner
module Pool = Causalb_harness.Pool

let jobs_arg =
  let doc =
    "Worker processes for the sweep.  1 (the default) runs in-process; \
     N > 1 forks N workers and shards experiment parts across them.  \
     The assembled stdout is byte-identical whatever N."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Worker domains for the sweep (OCaml 5 multicore; on 4.14 the flag \
     is accepted and runs sequentially).  Unlike -j this parallelises \
     inside one process — no fork, shared code pages, output captured \
     per-domain.  The assembled stdout is byte-identical to -j 1.  \
     0 (the default) means: use -j instead."
  in
  Arg.(value & opt int 0 & info [ "J"; "domains" ] ~docv:"N" ~doc)

let list_arg =
  let doc = "List the experiment registry (id, kind, shard count) and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let print_registry () =
  List.iter
    (fun (e : Registry.experiment) ->
      Printf.printf "%-8s %-13s %2d shard(s)  %s\n" e.id
        (match e.kind with
        | Registry.Deterministic -> "deterministic"
        | Registry.Timing -> "timing")
        (List.length e.parts) e.descr)
    Registry.all;
  0

let resolve_experiments ids ~default =
  match ids with
  | [] -> Ok default
  | ids ->
    let unknown = List.filter (fun id -> Registry.find id = None) ids in
    if unknown <> [] then Error unknown
    else Ok (List.filter_map Registry.find ids)

let report_unknown unknown =
  Printf.eprintf "unknown experiment(s): %s\navailable:\n"
    (String.concat ", " unknown);
  List.iter
    (fun (e : Registry.experiment) ->
      Printf.eprintf "  %-8s %s\n" e.id e.descr)
    Registry.all;
  2

let summarise_to_stderr (o : Runner.outcome) =
  Printf.eprintf "# sweep: %d task(s), %d job(s), %.0f ms wall\n"
    (List.length o.report.results)
    o.report.jobs o.report.wall_ms;
  List.iter
    (fun (r : Pool.result) ->
      Printf.eprintf "#   %-14s %8.1f ms  %12.0f minor words  %s\n" r.name
        r.wall_ms r.gc_minor_words
        (match r.status with Pool.Done -> "ok" | Pool.Failed m -> "FAILED: " ^ m))
    o.report.results;
  match o.report.failures with
  | [] -> 0
  | names ->
    Printf.eprintf "# FAILED experiment task(s): %s\n" (String.concat ", " names);
    1

let exp_run jobs domains list seed ids =
  (* With no ids, run the byte-reproducible experiments: the timing
     benches (micro, scaling) print measured durations, so they only run
     when asked for by name (or via [causalb bench]). *)
  if list then print_registry ()
  else
    let default =
      List.filter
        (fun (e : Registry.experiment) -> e.kind = Registry.Deterministic)
        Registry.all
    in
    match resolve_experiments ids ~default with
    | Error unknown -> report_unknown unknown
    | Ok exps ->
      let o =
        if domains > 0 then Runner.run_domains ~domains ~base_seed:seed exps
        else Runner.run ~jobs ~base_seed:seed exps
      in
      print_string o.stdout_text;
      print_endline "\nall requested experiments completed.";
      summarise_to_stderr o

let exp_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID"
           ~doc:"Experiment ids (default: every deterministic experiment).")
  in
  Cmd.v
    (Cmd.info "exp"
       ~doc:"Run registered experiments, optionally sharded across worker \
             processes (-j) or worker domains (-J); stdout is \
             byte-identical for every -j/-J")
    Term.(const exp_run $ jobs_arg $ domains_arg $ list_arg $ seed $ ids)

let bench_run jobs domains list seed =
  if list then print_registry ()
  else begin
    (* 1. before/after hot-path shapes, with GC columns (in-process) *)
    print_endline
      "================ scaling: frozen reference vs live hot paths \
       ================";
    let rows = Causalb_bench.Scaling.collect () in
    Causalb_bench.Scaling.print_table rows;
    print_endline
      "================ member-count scaling: BSS O(n) vs PC O(1) \
       ================";
    let members = Causalb_bench.Scaling.collect_members () in
    Causalb_bench.Scaling.print_members_table members;
    (* 2. the deterministic sweep, timed sequentially, then (if asked) on
       forked workers (-j) and/or worker domains (-J); every parallel
       run must reproduce the sequential bytes *)
    let exps =
      List.filter
        (fun (e : Registry.experiment) -> e.kind = Registry.Deterministic)
        Registry.all
    in
    Printf.printf "timing deterministic sweep at -j 1 ...\n%!";
    let o1 = Runner.run ~jobs:1 ~base_seed:seed exps in
    let oj =
      if jobs > 1 then begin
        Printf.printf "timing deterministic sweep at -j %d ...\n%!" jobs;
        Some (Runner.run ~jobs ~base_seed:seed exps)
      end
      else None
    in
    let od =
      if domains > 0 then begin
        Printf.printf "timing deterministic sweep at -J %d ...\n%!" domains;
        Some (Runner.run_domains ~domains ~base_seed:seed exps)
      end
      else None
    in
    let mismatches =
      List.filter_map
        (fun (flag, o) ->
          match o with
          | Some (o : Runner.outcome)
            when not (String.equal o.stdout_text o1.stdout_text) ->
            Some flag
          | _ -> None)
        [
          (Printf.sprintf "-j %d" jobs, oj);
          (Printf.sprintf "-J %d" domains, od);
        ]
    in
    List.iter
      (Printf.eprintf
         "# ERROR: %s sweep output differs from the sequential run\n")
      mismatches;
    let sweeps =
      Runner.sweep_of ~mode:"seq" o1
      :: ((match oj with
          | Some oj -> [ Runner.sweep_of ~mode:"fork" oj ]
          | None -> [])
         @
         match od with
         | Some od -> [ Runner.sweep_of ~mode:"domains" od ]
         | None -> [])
    in
    let out =
      Causalb_bench.Bench_out.write
        ~quota_ms:Causalb_bench.Scaling.quota_ms ~members ~rows ~sweeps ()
    in
    Printf.printf "sweep wall: j=1 %.0f ms%s%s\nwrote %s\n%!"
      o1.report.wall_ms
      (match oj with
      | Some oj -> Printf.sprintf ", j=%d %.0f ms" jobs oj.report.wall_ms
      | None -> "")
      (match od with
      | Some od -> Printf.sprintf ", J=%d %.0f ms" domains od.report.wall_ms
      | None -> "")
      out;
    let failed =
      o1.report.failures
      @ (match oj with Some oj -> oj.report.failures | None -> [])
      @ (match od with Some od -> od.report.failures | None -> [])
    in
    if failed <> [] then begin
      Printf.eprintf "# FAILED experiment task(s): %s\n"
        (String.concat ", " failed);
      1
    end
    else if mismatches <> [] then 1
    else 0
  end

(* --- hunt: the randomized fault campaign --- *)

module Campaign = Causalb_harness.Campaign

let hunt seed jobs domains seeds buggify churn json self_test =
  if self_test then
    if Campaign.self_test ~base_seed:seed () then 0 else 1
  else begin
    let r =
      Campaign.run ~jobs ~domains ~base_seed:seed ~buggify ~churn ~seeds ()
    in
    Campaign.print_report ~json r;
    Printf.eprintf "# hunt: %d case(s), %d job(s), %.0f ms wall\n"
      (List.length r.Campaign.verdicts) r.Campaign.jobs r.Campaign.wall_ms;
    if Campaign.failures r = [] then 0 else 1
  end

let hunt_cmd =
  let seeds =
    Arg.(value & opt int 64 & info [ "seeds" ] ~docv:"N"
           ~doc:"Cases to generate and run (compositions cycle, so any \
                 N >= 8 covers every shipped stack).")
  in
  let buggify =
    Arg.(value & flag & info [ "buggify" ]
           ~doc:"Aggressive mode: more fault phases, higher loss and \
                 duplication probabilities, three-way partitions.")
  in
  let churn =
    Arg.(value & flag & info [ "churn" ]
           ~doc:"Membership campaign: every case runs the PC-broadcast \
                 stack with 1-3 timed join/leave events appended to the \
                 fault schedule, audited by the founders-scoped churn \
                 oracle.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"One JSON verdict line per case plus a summary object, \
                 instead of the human report.")
  in
  let self_test =
    Arg.(value & flag & info [ "self-test" ]
           ~doc:"Plant a known ordering violation in each composition's \
                 trace, assert the campaign finds it, and shrink the \
                 find to a minimal repro.  Exit 0 iff detection and \
                 shrinking both work.")
  in
  Cmd.v
    (Cmd.info "hunt"
       ~doc:"Randomized fault campaign: seed \xc3\x97 workload \xc3\x97 nemesis \
             cases over every stack composition, oracle-checked, with \
             failures shrunk to minimal deterministic repros")
    Term.(const hunt $ seed $ jobs_arg $ domains_arg $ seeds $ buggify
          $ churn $ json $ self_test)

let bench_cmd =
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the before/after hot-path benchmarks plus the timed \
             experiment sweep (-j forks, -J domains) and write the \
             cumulative BENCH_PR6.json")
    Term.(const bench_run $ jobs_arg $ domains_arg $ list_arg $ seed)

let main_cmd =
  let doc =
    "causal broadcasting and consistency of distributed shared data \
     (Ravindran & Shah, ICDCS 1994) — protocol simulations"
  in
  Cmd.group
    (Cmd.info "causalb" ~version:"1.0.0" ~doc)
    [
      counter_cmd;
      lock_cmd;
      names_cmd;
      cards_cmd;
      scenario_cmd;
      recovery_cmd;
      membership_cmd;
      pages_cmd;
      dsm_cmd;
      infer_cmd;
      exp_cmd;
      bench_cmd;
      hunt_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
