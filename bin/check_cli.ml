(* causalb-check — the offline ordering oracle as a command.

   Runs the §6.1 workload over every stack composition with tracing on,
   feeds each trace to the checkers that soundly apply to that
   composition, lints the dependency specification, and prints one
   verdict line per composition (plus every diagnostic).  Exit status 1
   when any check fails, so CI can gate on it:

     causalb-check                          # all compositions, S1 params
     causalb-check --spec osend --spec bss  # a subset
     causalb-check --objects                # audit the O1 object runs
     causalb-check --self-test              # seed violations, assert caught *)

open Cmdliner

module Drivers = Causalb_harness.Drivers
module Trace = Causalb_sim.Trace
module Label = Causalb_graph.Label
module Depgraph = Causalb_graph.Depgraph
module Latency = Causalb_sim.Latency
module Diag = Causalb_check.Diag
module Trace_check = Causalb_check.Trace_check
module Spec_lint = Causalb_check.Spec_lint
module Mutate = Causalb_check.Mutate
module Seq_spec = Causalb_data.Seq_spec
module Objects = Causalb_data.Objects
module Commute_lint = Causalb_data.Commute_lint
module Rng = Causalb_util.Rng

let all_specs ops =
  [
    Drivers.Fifo_only;
    Drivers.Bss_stack;
    Drivers.Psync_stack;
    Drivers.Osend_stack;
    Drivers.Osend_merge;
    Drivers.Osend_counted (ops + 1);
    Drivers.Osend_sequencer;
    Drivers.Pc_stack;
  ]

let spec_of_string ops s =
  match String.lowercase_ascii s with
  | "fifo" -> Ok Drivers.Fifo_only
  | "bss" -> Ok Drivers.Bss_stack
  | "psync" -> Ok Drivers.Psync_stack
  | "osend" -> Ok Drivers.Osend_stack
  | "merge" | "osend+merge" -> Ok Drivers.Osend_merge
  | "counted" | "osend+counted" -> Ok (Drivers.Osend_counted (ops + 1))
  | "sequencer" | "osend+sequencer" -> Ok Drivers.Osend_sequencer
  | "pc" -> Ok Drivers.Pc_stack
  | _ ->
    Error
      (Printf.sprintf
         "unknown composition %S (expected \
          fifo|bss|psync|osend|merge|counted|sequencer|pc)"
         s)

let checkers_for = function
  | Drivers.Fifo_only | Drivers.Bss_stack -> "fifo, same-set"
  | Drivers.Pc_stack -> "fifo, causal, same-set"
  | Drivers.Psync_stack -> "causal, same-set"
  | Drivers.Osend_stack -> "causal, windows, stable"
  | Drivers.Osend_merge | Drivers.Osend_counted _ | Drivers.Osend_sequencer ->
    "causal, strict-order, stable"

let audit_of ~seed ~latency ~replicas ~w spec =
  let r = Drivers.run_stack ~seed ~latency ~check:true ~replicas spec w in
  match r.Drivers.audit with
  | Some a -> a
  | None -> assert false (* run with ~check:true *)

(* --- default mode: audit every composition --------------------------- *)

let run_audits ~seed ~sigma ~replicas ~ops ~window ~spacing ~verbose ~json
    specs =
  let latency = Latency.lognormal ~mu:0.5 ~sigma () in
  let w = { Drivers.ops; spacing; mix = Drivers.Fixed_window window } in
  if not json then
    Printf.printf
      "ordering oracle: replicas=%d ops=%d window=%d seed=%d sigma=%.2f\n\n"
      replicas ops window seed sigma;
  let audit spec =
    let a = audit_of ~seed ~latency ~replicas ~w spec in
    let diags =
      a.Drivers.diagnostics
      @ Spec_lint.to_diags a.Drivers.lint
      @ a.Drivers.static
    in
    let ok = diags = [] in
    if not json then
      Printf.printf "%-18s [%-27s] trace=%-5d lint=%d static=%d  %s\n"
        (Drivers.stack_spec_name spec)
        (checkers_for spec)
        (Trace.length a.Drivers.trace)
        (List.length a.Drivers.lint)
        (List.length a.Drivers.static)
        (if ok then "ok"
         else
           Printf.sprintf "FAILED (%d diagnostics)"
             (List.length a.Drivers.diagnostics));
    if verbose || not ok then
      List.iter
        (fun d ->
          if json then print_endline (Diag.to_json_line d)
          else print_endline ("    " ^ Diag.to_string d))
        diags;
    ok
  in
  let oks = List.map audit specs in
  if not json then print_newline ();
  if List.for_all Fun.id oks then begin
    if not json then print_endline "all compositions passed the ordering oracle";
    0
  end
  else begin
    if not json then print_endline "ordering violations found";
    1
  end

(* --- object mode: audit the spec-derived object workloads ------------ *)

(* The same builders and per-object seeds as bench experiment O1
   (seed, seed+1, seed+2 = 42,43,44 by default), so this audits
   byte-for-byte the runs the experiment prints. *)
let run_objects ~seed ~replicas ~verbose ~json () =
  let rounds = 24 and window = 6 in
  if not json then
    Printf.printf
      "object oracle: replicas=%d rounds=%d window=%d seed=%d\n\n" replicas
      rounds window seed;
  let audit name cid (r : Drivers.object_result) =
    let ok = Drivers.object_ok r in
    if not json then
      Printf.printf "%-18s Cid={%s}  cycles=%-4d marks=%-4d trace=%-6d %s\n"
        name cid r.Drivers.cycles r.Drivers.stable_marks
        (Trace.length r.Drivers.trace)
        (if ok then "ok"
         else
           Printf.sprintf "FAILED (%d diagnostics)"
             (List.length r.Drivers.diagnostics));
    if verbose || not ok then begin
      if not json then
        List.iter
          (fun (n, v) ->
            if not v then Printf.printf "    check failed: %s\n" n)
          r.Drivers.checks;
      List.iter
        (fun d ->
          if json then print_endline (Diag.to_json_line d)
          else print_endline ("    " ^ Diag.to_string d))
        r.Drivers.diagnostics
    end;
    ok
  in
  let cid spec = String.concat "," (Seq_spec.cid_classes spec) in
  let counter =
    audit "counter-pipeline" (cid Objects.Counter.spec)
      (Drivers.run_object ~seed ~replicas ~machine:Objects.Counter.machine
         (Drivers.counter_pipeline ~replicas ~rounds ~window ()))
  in
  let cart =
    audit "or-set-cart" (cid Objects.Or_set.spec)
      (Drivers.run_object ~seed:(seed + 1) ~replicas
         ~machine:Objects.Or_set.machine
         (Drivers.cart_workload ~replicas ~rounds ~window ()))
  in
  let edit =
    audit "rga-collab-edit" (cid Objects.Rga.spec)
      (Drivers.run_object ~seed:(seed + 2) ~replicas
         ~machine:Objects.Rga.machine
         (Drivers.editing_workload ~replicas ~rounds ~window ()))
  in
  let oks = [ counter; cart; edit ] in
  if not json then print_newline ();
  if List.for_all Fun.id oks then begin
    if not json then
      print_endline "all object workloads passed the ordering oracle";
    0
  end
  else begin
    if not json then print_endline "object ordering violations found";
    1
  end

(* --- self-test: seed violations, assert every checker objects -------- *)

let self_test ~seed ~sigma ~replicas ~ops ~window ~spacing () =
  let latency = Latency.lognormal ~mu:0.5 ~sigma () in
  let w = { Drivers.ops; spacing; mix = Drivers.Fixed_window window } in
  let audit_of = audit_of ~seed ~latency ~replicas ~w in
  let failures = ref 0 in
  let report name = function
    | Ok detail -> Printf.printf "  %-34s caught: %s\n" name detail
    | Error msg ->
      incr failures;
      Printf.printf "  %-34s NOT CAUGHT: %s\n" name msg
  in
  (* Plant one mutation, run one checker, demand a diagnostic. *)
  let case name mutated check =
    report name
      (match mutated with
      | None -> Error "no mutation site in this trace"
      | Some mut -> (
        match check mut with
        | [] -> Error "checker accepted the mutated trace"
        | d :: _ -> Ok (Diag.to_string d)))
  in
  print_endline
    "self-test: seeding known violations, every checker must object";
  let osend = audit_of Drivers.Osend_stack in
  let merge = audit_of Drivers.Osend_merge in
  let fifo = audit_of Drivers.Fifo_only in
  let g (a : Drivers.stack_audit) = a.Drivers.graph in
  let tr (a : Drivers.stack_audit) = a.Drivers.trace in
  case "causal: delivery before ancestor"
    (Option.map
       (fun (t, _, _) -> t)
       (Mutate.reorder_causal ~graph:(g osend) (tr osend)))
    (Trace_check.causal ~graph:(g osend));
  case "fifo: inverted sender order"
    (Option.map
       (fun (t, _, _) -> t)
       (Mutate.reorder_fifo ~graph:(g fifo) (tr fifo)))
    (Trace_check.fifo ~graph:(g fifo));
  case "total-order: diverging release"
    (Option.map
       (fun (t, _, _) -> t)
       (Mutate.reorder_release ~graph:(g merge) (tr merge)))
    (Trace_check.total_order ~strict:true ~graph:(g merge)
       ~sync:Label.Set.empty);
  case "windows: release past sync point"
    (Option.map
       (fun (t, _, _) -> t)
       (Mutate.reorder_release ~sync:osend.Drivers.sync ~graph:(g osend)
          (tr osend)))
    (Trace_check.total_order ~graph:(g osend) ~sync:osend.Drivers.sync);
  case "stable-point: corrupted digest"
    (Option.map (fun (t, _) -> t) (Mutate.corrupt_mark (tr merge)))
    Trace_check.stable_points;
  (* The specification bug: a label every predicate still names is gone. *)
  let graph = g osend in
  let victim =
    List.find_map
      (fun l -> match Depgraph.parents graph l with p :: _ -> Some p | [] -> None)
      (Depgraph.labels graph)
  in
  report "lint: dropped dependency label"
    (match victim with
    | None -> Error "no label with a parent in the graph"
    | Some v -> (
      match Spec_lint.lint (Mutate.drop_label graph v) with
      | [] -> Error "lint accepted the broken specification"
      | i :: _ -> Ok (Spec_lint.issue_to_string i)));
  (* The commute lint: the derived Cid labeling rests on the declared
     commutativity relations, so (a) every shipped spec must discharge
     its declared-commuting pairs from reachable states, and (b) a
     deliberately mislabeled relation must be caught. *)
  print_endline
    "\ncommute lint: declared-commuting pairs vs commute_at from reachable states";
  List.iter
    (fun r ->
      Printf.printf "  %s\n" (Format.asprintf "%a" Commute_lint.pp_report r);
      if not (Commute_lint.ok r) then incr failures)
    (Commute_lint.suite ~seed);
  let lying_spec =
    (* an int register whose relation lies: "set" declared commuting *)
    Seq_spec.make ~name:"lying-register" ~init:0
      ~apply:(fun s op -> match op with `Inc n -> s + n | `Set n -> n)
      ~equal:Int.equal
      ~classes:[ "inc"; "set" ]
      ~class_of:(function `Inc _ -> "inc" | `Set _ -> "set")
      ~commutes:(fun _ _ -> true)
      ~pp_op:(fun ppf op ->
        match op with
        | `Inc n -> Format.fprintf ppf "inc(%d)" n
        | `Set n -> Format.fprintf ppf "set(%d)" n)
      ~pp_state:Format.pp_print_int ()
  in
  let gen_lying r =
    if Rng.bool r then `Inc (1 + Rng.int r 9) else `Set (Rng.int r 50)
  in
  report "commute-lint: mislabeled relation"
    (match
       (Commute_lint.check lying_spec ~gen_op:gen_lying ~seed ()).Commute_lint
       .violations
     with
    | [] -> Error "lint accepted a relation that declares set/set commuting"
    | v :: _ ->
      Ok
        (Printf.sprintf "(%s,%s) at %s: %s vs %s" v.Commute_lint.class_a
           v.Commute_lint.class_b v.Commute_lint.state v.Commute_lint.op_a
           v.Commute_lint.op_b));
  print_newline ();
  if !failures = 0 then begin
    print_endline "self-test passed: every seeded violation was caught";
    0
  end
  else begin
    Printf.printf "self-test FAILED: %d violation(s) escaped the oracle\n"
      !failures;
    1
  end

(* --- command line ----------------------------------------------------- *)

let seed =
  let doc = "Random seed for the deterministic simulation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let sigma =
  let doc = "Lognormal latency sigma (link variance)." in
  Arg.(value & opt float 1.0 & info [ "sigma" ] ~docv:"S" ~doc)

let replicas =
  let doc = "Group size." in
  Arg.(value & opt int 4 & info [ "replicas" ] ~docv:"N" ~doc)

let ops =
  let doc = "Operations in the workload (a closing sync is appended)." in
  Arg.(value & opt int 200 & info [ "ops" ] ~docv:"K" ~doc)

let window =
  let doc = "Commutative operations per \xc2\xa76.1 cycle." in
  Arg.(value & opt int 5 & info [ "window" ] ~docv:"W" ~doc)

let spacing =
  let doc = "Milliseconds between submissions." in
  Arg.(value & opt float 0.5 & info [ "spacing" ] ~docv:"MS" ~doc)

let verbose =
  let doc = "Print diagnostics even for passing compositions." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let self_test_flag =
  let doc =
    "Run the mutation harness instead: plant one known violation per \
     checker (reordered delivery, inverted sender order, diverging \
     release, corrupted stable-point digest, dropped dependency label) \
     and fail unless every one is caught."
  in
  Arg.(value & flag & info [ "self-test" ] ~doc)

let objects_flag =
  let doc =
    "Audit the spec-derived object workloads (the O1 bench runs: counter \
     pipeline, or-set cart, rga collaborative edit) instead: online \
     Service checks plus the offline oracle over each trace."
  in
  Arg.(value & flag & info [ "objects" ] ~doc)

let spec_args =
  let doc =
    "Composition(s) to audit: fifo, bss, psync, osend, merge, counted, \
     sequencer, pc.  Repeatable; default all."
  in
  Arg.(value & opt_all string [] & info [ "spec" ] ~docv:"SPEC" ~doc)

let json_flag =
  let doc =
    "Emit diagnostics as JSON lines (one object per violation); \
     suppresses the human-readable report."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let main seed sigma replicas ops window spacing verbose json self objects specs
    =
  if self then self_test ~seed ~sigma ~replicas ~ops ~window ~spacing ()
  else if objects then run_objects ~seed ~replicas ~verbose ~json ()
  else
    let chosen =
      if specs = [] then Ok (all_specs ops)
      else
        List.fold_right
          (fun s acc ->
            match (spec_of_string ops s, acc) with
            | Ok spec, Ok rest -> Ok (spec :: rest)
            | Error e, _ -> Error e
            | _, (Error _ as e) -> e)
          specs (Ok [])
    in
    match chosen with
    | Error msg ->
      prerr_endline ("causalb-check: " ^ msg);
      2
    | Ok specs ->
      run_audits ~seed ~sigma ~replicas ~ops ~window ~spacing ~verbose ~json
        specs

let cmd =
  let doc = "offline ordering oracle for the causalb stack compositions" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the \xc2\xa76.1 workload over the ordering-stack compositions \
         with tracing enabled, then audits each trace offline: causal \
         delivery against the extracted $(b,R(M)) graph, FIFO per sender, \
         window or strict release agreement, and stable-point digests. \
         The intended dependency specification is linted statically. Any \
         violation prints a structured diagnostic and sets the exit \
         status to 1.";
    ]
  in
  let info = Cmd.info "causalb-check" ~version:"%%VERSION%%" ~doc ~man in
  Cmd.v info
    Term.(
      const main $ seed $ sigma $ replicas $ ops $ window $ spacing $ verbose
      $ json_flag $ self_test_flag $ objects_flag $ spec_args)

let () = exit (Cmd.eval' cmd)
