(* causalb-lint — the static consistency verifier as a command.

   Audits every shipped configuration WITHOUT executing it: pass 1
   composes each stack's declared guarantee lattice bottom-up and checks
   it against the configuration's claim; pass 2 replays the workload
   intent purely and flags every non-commuting pair that neither the
   intended R(M), a sync point, nor the top-of-stack guarantee covers.
   Exit status 1 on any issue, so CI can gate on it:

     causalb-lint                     # all stack compositions, S1 params
     causalb-lint --all               # compositions + object workloads
     causalb-lint --spec osend        # a subset
     causalb-lint --json              # diagnostics as JSON lines
     causalb-lint --self-test         # seed violations, assert caught *)

open Cmdliner

module Drivers = Causalb_harness.Drivers
module Stack = Causalb_stack.Stack
module Guarantee = Causalb_stackbase.Guarantee
module Stack_verify = Causalb_analysis.Stack_verify
module Race_lint = Causalb_analysis.Race_lint
module Workload = Causalb_analysis.Workload
module Diag = Causalb_check.Diag
module Spec_lint = Causalb_check.Spec_lint
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Latency = Causalb_sim.Latency
module Dt = Causalb_data.Datatypes
module Seq_spec = Causalb_data.Seq_spec
module Objects = Causalb_data.Objects
module Rng = Causalb_util.Rng
module Conference = Causalb_protocols.Conference
module Card_game = Causalb_protocols.Card_game
module Name_service = Causalb_protocols.Name_service

let all_specs ops =
  [
    Drivers.Fifo_only;
    Drivers.Bss_stack;
    Drivers.Psync_stack;
    Drivers.Osend_stack;
    Drivers.Osend_merge;
    Drivers.Osend_counted (ops + 1);
    Drivers.Osend_sequencer;
    Drivers.Pc_stack;
  ]

let spec_of_string ops s =
  match String.lowercase_ascii s with
  | "fifo" -> Ok Drivers.Fifo_only
  | "bss" -> Ok Drivers.Bss_stack
  | "psync" -> Ok Drivers.Psync_stack
  | "osend" -> Ok Drivers.Osend_stack
  | "merge" | "osend+merge" -> Ok Drivers.Osend_merge
  | "counted" | "osend+counted" -> Ok (Drivers.Osend_counted (ops + 1))
  | "sequencer" | "osend+sequencer" -> Ok Drivers.Osend_sequencer
  | "pc" -> Ok Drivers.Pc_stack
  | _ ->
    Error
      (Printf.sprintf
         "unknown composition %S (expected \
          fifo|bss|psync|osend|merge|counted|sequencer|pc)"
         s)

let emit_diags ~json ds =
  if json then List.iter (fun d -> print_endline (Diag.to_json_line d)) ds
  else List.iter (fun d -> print_endline ("    " ^ Diag.to_string d)) ds

(* --- stack mode: verify every composition statically ----------------- *)

let lint_stacks ~seed ~sigma ~replicas ~ops ~window ~spacing ~json ~verbose
    specs =
  let latency = Latency.lognormal ~mu:0.5 ~sigma () in
  let w = { Drivers.ops; spacing; mix = Drivers.Fixed_window window } in
  if not json then
    Printf.printf
      "static verifier: replicas=%d ops=%d window=%d seed=%d (no execution)\n\n"
      replicas ops window seed;
  let one spec =
    let r = Drivers.static_audit ~seed ~latency ~replicas spec w in
    let ok = Drivers.static_ok r in
    if not json then begin
      Printf.printf "%-18s claim=%-12s top=%-12s demand=%-12s races=%-3d %s\n"
        (Drivers.stack_spec_name spec)
        (Guarantee.to_string r.Drivers.claim)
        (Guarantee.to_string r.Drivers.verify.Stack_verify.top)
        (Guarantee.to_string r.Drivers.demand)
        (List.length r.Drivers.races)
        (if ok then "ok"
         else
           Printf.sprintf "FAILED (%d issues)"
             (List.length r.Drivers.static_diags));
      if verbose then
        Format.printf "    @[%a@]@." Stack_verify.pp_report r.Drivers.verify
    end;
    if (not ok) || (json && verbose) then
      emit_diags ~json r.Drivers.static_diags;
    ok
  in
  List.map one specs

(* --- object mode: race-lint the shipped object workloads ------------- *)

(* The same builders, sizes and seeds as bench experiment O1 and
   causalb-check --objects (42/43/44 by default), replayed purely: the
   analysed intent is the schedule those runs submit.  All of them run
   over the stable-point service, whose causal layer provides [Causal]. *)
let lint_objects ~seed:_ ~replicas ~json () =
  let rounds = 24 and window = 6 in
  let top = Guarantee.Causal in
  let one name (w : Workload.t) =
    let races = Race_lint.check ~top w in
    let demand = Race_lint.required w in
    let ok = races = [] in
    if not json then
      Printf.printf "%-18s sites=%-5d sync=%-4d demand=%-12s races=%-3d %s\n"
        name
        (List.length w.Workload.sites)
        (Label.Set.cardinal w.Workload.sync)
        (Guarantee.to_string demand) (List.length races)
        (if ok then "ok" else "FAILED");
    if not ok then emit_diags ~json (Race_lint.to_diags races);
    ok
  in
  let counter =
    one "counter-pipeline"
      (Workload.of_submissions ~spec:Objects.Counter.spec
         (Drivers.counter_pipeline ~replicas ~rounds ~window ()))
  in
  let cart =
    one "or-set-cart"
      (Workload.of_submissions ~spec:Objects.Or_set.spec
         (Drivers.cart_workload ~replicas ~rounds ~window ()))
  in
  let edit =
    one "rga-collab-edit"
      (Workload.of_submissions ~spec:Objects.Rga.spec
         (Drivers.editing_workload ~replicas ~rounds ~window ()))
  in
  [ counter; cart; edit ]

(* --- protocol mode: lint the shipped protocol schedules -------------- *)

(* The protocol case studies, replayed from the schedules the modules
   themselves export — the lint sees exactly the intent the runtime
   submits.  Each is checked against the guarantee of the stack the
   protocol actually composes. *)
let lint_protocols ~seed ~json () =
  let one name ~top ?note (w : Workload.t) =
    let races = Race_lint.check ~top w in
    let demand = Race_lint.required w in
    let ok = races = [] in
    if not json then begin
      Printf.printf
        "%-18s top=%-12s sites=%-5d sync=%-4d demand=%-12s races=%-3d %s\n"
        name (Guarantee.to_string top)
        (List.length w.Workload.sites)
        (Label.Set.cardinal w.Workload.sync)
        (Guarantee.to_string demand) (List.length races)
        (if ok then "ok" else "FAILED");
      Option.iter (fun n -> Printf.printf "    %s\n" n) note
    end;
    if not ok then emit_diags ~json (Race_lint.to_diags races);
    ok
  in
  (* Conference (§1, ref [11]): the scripted annotate/commit session over
     the stable-point service — causal layer, commits are sync points. *)
  let conference =
    let sections = 4 in
    let rows =
      Conference.session_schedule ~participants:4 ~sections ~annotations:48
        ~commit_every:8 (Rng.create seed)
    in
    one "conference" ~top:Guarantee.Causal
      (Workload.of_submissions ~spec:(Dt.Document.spec ~sections) rows)
  in
  (* Card game (§5.1): the strict-turns chain over the causal group.
     Plays commute structurally, so the chain serves gameplay, not
     consistency — demand stays at unordered. *)
  let cards =
    let rows = Card_game.static_schedule ~players:4 ~rounds:8 in
    let spec = Dt.Card_table.spec in
    let obj = Workload.obj_of_spec spec in
    let graph = Depgraph.create () in
    List.iter (fun (label, dep, _, _) -> Depgraph.add graph label ~dep) rows;
    let sites =
      List.map
        (fun (label, _, _, op) ->
          {
            Workload.label;
            obj = obj.Workload.name;
            cls = spec.Seq_spec.class_of op;
          })
        rows
    in
    one "card-game" ~top:Guarantee.Causal
      (Workload.of_sites ~graph ~objects:[ obj ] sites)
  in
  (* Name service (§5.2, Fig. 4): spontaneous upd/qry rows — no edges, no
     sync — verified against the Total_order sequencer box.  The same
     workload under the App_check box (causal top) is deliberately short
     of ordering: the application's context check, not the broadcast
     layer, closes that gap, so that box is reported, not gated on. *)
  let ns =
    let spec = Dt.Kv_store.spec in
    let obj = Workload.obj_of_spec spec in
    let rows = Name_service.static_schedule ~front_ends:4 ~keys:3 ~ops:36 in
    let graph = Depgraph.create () in
    let seqs = Hashtbl.create 8 in
    let sites =
      List.map
        (fun (src, op) ->
          let seq = Option.value ~default:0 (Hashtbl.find_opt seqs src) in
          Hashtbl.replace seqs src (seq + 1);
          let label = Label.make ~origin:src ~seq () in
          Depgraph.add graph label ~dep:Dep.Null;
          {
            Workload.label;
            obj = obj.Workload.name;
            cls = spec.Seq_spec.class_of op;
          })
        rows
    in
    let w = Workload.of_sites ~graph ~objects:[ obj ] sites in
    let app_check = List.length (Race_lint.check ~top:Guarantee.Causal w) in
    one "name-service" ~top:Guarantee.Causal_total
      ~note:
        (Printf.sprintf
           "app-check box: %d pairs fall to the context check (Fig. 4)"
           app_check)
      w
  in
  [ conference; cards; ns ]

let run_lints ~seed ~sigma ~replicas ~ops ~window ~spacing ~json ~verbose
    ~all specs =
  let oks =
    lint_stacks ~seed ~sigma ~replicas ~ops ~window ~spacing ~json ~verbose
      specs
  in
  let oks =
    if not all then oks
    else begin
      if not json then print_newline ();
      let oks = oks @ lint_objects ~seed ~replicas ~json () in
      if not json then print_newline ();
      oks @ lint_protocols ~seed ~json ()
    end
  in
  if not json then print_newline ();
  if List.for_all Fun.id oks then begin
    if not json then
      print_endline "all configurations passed the static verifier";
    0
  end
  else begin
    if not json then print_endline "static consistency issues found";
    1
  end

(* --- self-test: seed violations, assert both passes object ----------- *)

(* The §6.1 shape in miniature: two incs from two members, closed by a
   read that depends on both.  [drop] deletes the read's R(M) edges — the
   mutation the race lint must catch. *)
let mini_workload ~drop =
  let spec = Dt.Int_register.spec in
  let graph = Depgraph.create () in
  let l name origin = Label.make ~name ~origin ~seq:0 () in
  let a = l "inc-a" 0 and b = l "inc-b" 1 and r = l "read" 2 in
  Depgraph.add graph a ~dep:Dep.Null;
  Depgraph.add graph b ~dep:Dep.Null;
  Depgraph.add graph r
    ~dep:(if drop then Dep.Null else Dep.after_all [ a; b ]);
  let site label cls = { Workload.label; obj = "int-register"; cls } in
  Workload.of_sites ~graph
    ~sync:(Label.Set.singleton r)
    ~objects:[ Workload.obj_of_spec spec ]
    [ site a "inc"; site b "inc"; site r "read" ]

let self_test ~json () =
  let failures = ref 0 in
  let report name = function
    | Ok detail -> Printf.printf "  %-36s caught: %s\n" name detail
    | Error msg ->
      incr failures;
      Printf.printf "  %-36s NOT CAUGHT: %s\n" name msg
  in
  let first_diag name to_diags = function
    | [] -> report name (Error "verifier accepted the broken configuration")
    | issues ->
      let d = List.hd (to_diags issues) in
      if json then print_endline (Diag.to_json_line d);
      report name (Ok (Diag.to_string d))
  in
  print_endline
    "self-test: seeding known violations, both static passes must object";
  (* 1. A weakened composition: a merge total layer over a FIFO-only
     causal layer — merge requires Causal below it. *)
  let weak =
    Stack_verify.verify_stack
      ~ordering:Stack.Fifo
      ~total:(Stack.Merge (fun _ -> true))
      ~fifo:false ()
  in
  first_diag "verify: total layer over fifo"
    (fun issues -> List.map Stack_verify.to_diag issues)
    (List.filter
       (function Stack_verify.Weak_layer _ -> true | _ -> false)
       weak.Stack_verify.issues);
  (* 2. An overclaimed composition: Causal claimed over a FIFO-only
     pipeline. *)
  let overclaim =
    Stack_verify.verify_stack ~claim:Guarantee.Causal ~ordering:Stack.Fifo
      ~total:Stack.Pass ~fifo:false ()
  in
  first_diag "verify: causal claim over fifo"
    (fun issues -> List.map Stack_verify.to_diag issues)
    (List.filter
       (function Stack_verify.Claim_unmet _ -> true | _ -> false)
       overclaim.Stack_verify.issues);
  (* 3. A deleted R(M) edge on an Ncid pair.  Control first: with the
     edges intact the workload is race-free at Causal. *)
  (match Race_lint.check ~top:Guarantee.Causal (mini_workload ~drop:false) with
  | [] -> report "race: control (edges intact)" (Ok "no race, as intended")
  | _ :: _ ->
    report "race: control (edges intact)"
      (Error "race reported on a fully ordered workload"));
  first_diag "race: deleted Ncid edge"
    Race_lint.to_diags
    (Race_lint.check ~top:Guarantee.Causal (mini_workload ~drop:true));
  (* 4. Two sends defining the same label. *)
  let dup = Label.make ~name:"dup" ~origin:0 ~seq:0 () in
  first_diag "spec-lint: duplicate label"
    Spec_lint.to_diags
    (List.filter
       (function Spec_lint.Duplicate_label _ -> true | _ -> false)
       (Spec_lint.lint_sends [ (dup, Dep.Null); (dup, Dep.Null) ]));
  (* 5. Every shipped composition must be statically clean — the seeded
     violations above must be the only way to make the verifier fire. *)
  let w = { Drivers.ops = 60; spacing = 0.5; mix = Drivers.Fixed_window 5 } in
  List.iter
    (fun spec ->
      let r = Drivers.static_audit ~replicas:4 spec w in
      if not (Drivers.static_ok r) then begin
        incr failures;
        Printf.printf "  shipped composition %s FAILED the static verifier\n"
          (Drivers.stack_spec_name spec);
        emit_diags ~json r.Drivers.static_diags
      end)
    (all_specs 60);
  print_newline ();
  if !failures = 0 then begin
    print_endline "self-test passed: every seeded violation was caught";
    0
  end
  else begin
    Printf.printf "self-test FAILED: %d violation(s) escaped the verifier\n"
      !failures;
    1
  end

(* --- command line ----------------------------------------------------- *)

let seed =
  let doc = "Random seed for the deterministic workload derivation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let sigma =
  let doc = "Lognormal latency sigma (affects only RNG stream layout)." in
  Arg.(value & opt float 1.0 & info [ "sigma" ] ~docv:"S" ~doc)

let replicas =
  let doc = "Group size." in
  Arg.(value & opt int 4 & info [ "replicas" ] ~docv:"N" ~doc)

let ops =
  let doc = "Operations in the workload (a closing sync is appended)." in
  Arg.(value & opt int 200 & info [ "ops" ] ~docv:"K" ~doc)

let window =
  let doc = "Commutative operations per \xc2\xa76.1 cycle." in
  Arg.(value & opt int 5 & info [ "window" ] ~docv:"W" ~doc)

let spacing =
  let doc = "Milliseconds between submissions." in
  Arg.(value & opt float 0.5 & info [ "spacing" ] ~docv:"MS" ~doc)

let verbose =
  let doc = "Print the per-layer guarantee table for every composition." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let json_flag =
  let doc = "Emit diagnostics as JSON lines (one object per issue)." in
  Arg.(value & flag & info [ "json" ] ~doc)

let all_flag =
  let doc =
    "Also race-lint the shipped object workloads (counter pipeline, \
     or-set cart, rga collaborative edit) against the service's causal \
     guarantee, and the protocol schedules the protocol modules export \
     (conference session, card-game turn chain, name-service spontaneous \
     mix) against the guarantee of the stack each protocol composes."
  in
  Arg.(value & flag & info [ "all" ] ~doc)

let self_test_flag =
  let doc =
    "Run the mutation harness instead: seed one known violation per pass \
     (total layer over FIFO, overclaimed guarantee, deleted R(M) edge on \
     a non-commuting pair, duplicate label) and fail unless every one is \
     caught while all shipped compositions stay clean."
  in
  Arg.(value & flag & info [ "self-test" ] ~doc)

let spec_args =
  let doc =
    "Composition(s) to verify: fifo, bss, psync, osend, merge, counted, \
     sequencer, pc.  Repeatable; default all."
  in
  Arg.(value & opt_all string [] & info [ "spec" ] ~docv:"SPEC" ~doc)

let main seed sigma replicas ops window spacing verbose json all self specs =
  if self then self_test ~json ()
  else
    let chosen =
      if specs = [] then Ok (all_specs ops)
      else
        List.fold_right
          (fun s acc ->
            match (spec_of_string ops s, acc) with
            | Ok spec, Ok rest -> Ok (spec :: rest)
            | Error e, _ -> Error e
            | _, (Error _ as e) -> e)
          specs (Ok [])
    in
    match chosen with
    | Error msg ->
      prerr_endline ("causalb-lint: " ^ msg);
      2
    | Ok specs ->
      run_lints ~seed ~sigma ~replicas ~ops ~window ~spacing ~json ~verbose
        ~all specs

let cmd =
  let doc = "static consistency verifier for the causalb stack compositions" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Verifies configurations $(b,before) execution. Pass 1 composes \
         each stack's declared ordering guarantees bottom-up over the \
         lattice unordered \xe2\x8a\x91 fifo \xe2\x8a\x91 causal \xe2\x8a\x91 \
         causal-total, flagging layers whose requirement the composition \
         below them does not meet and claims the top of the stack cannot \
         honour. Pass 2 replays the workload intent purely and flags \
         every pair of operations in non-commuting classes on the same \
         object that neither the intended $(b,R(M)) reachability, a \
         synchronization point, nor the stack's top guarantee orders. \
         Any issue prints a structured diagnostic and sets the exit \
         status to 1.";
    ]
  in
  let info = Cmd.info "causalb-lint" ~version:"%%VERSION%%" ~doc ~man in
  Cmd.v info
    Term.(
      const main $ seed $ sigma $ replicas $ ops $ window $ spacing $ verbose
      $ json_flag $ all_flag $ self_test_flag $ spec_args)

let () = exit (Cmd.eval' cmd)
