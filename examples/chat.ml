(* A replicated chat room on the shared Log datatype, wired through the
   composable ordering stack.

   The pipeline is  transport -> causal (OSend) -> total (Merge) -> app:
   chat lines are spontaneous commutative appends; sealing the room is
   the closing sync the deterministic merge anchors on.  Every replica
   therefore applies the identical operation sequence — the transcript is
   the same everywhere without a sequencer or extra protocol messages.

   Run with:  dune exec examples/chat.exe *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Stack = Causalb_stack.Stack
module Message = Causalb_core.Message
module Checker = Causalb_core.Checker
module Dep = Causalb_graph.Dep
module Dt = Causalb_data.Datatypes
module Sm = Causalb_data.State_machine

let people = [| "ada"; "barbara"; "grace" |]

let () =
  let engine = Engine.create ~seed:17 () in
  let machine = Dt.Log.machine in
  let states = Array.make 3 machine.Sm.init in
  let is_sync m =
    match Message.payload m with Dt.Log.Seal -> true | Dt.Log.Append _ -> false
  in
  let stack =
    Stack.compose ~ordering:Stack.Osend ~total:(Stack.Merge is_sync)
      ~latency:(Latency.lognormal ~mu:1.0 ~sigma:1.0 ())
      ~fifo:false
      ~on_deliver:(fun ~node ~time:_ msg ->
        states.(node) <- machine.Sm.apply states.(node) (Message.payload msg))
      engine ~nodes:3 ()
  in
  let seqs = Array.make 3 0 in
  (* §6.1 shape: appends are spontaneous, but the seal names them all —
     that is what makes the merge bracket identical at every replica. *)
  let window = ref [] in
  let say ~who text =
    let seq = seqs.(who) in
    seqs.(who) <- seq + 1;
    match
      Stack.submit stack ~src:who ~dep:Dep.null
        (Dt.Log.Append (Dt.Log.entry ~author:who ~seq text))
    with
    | Some label -> window := label :: !window
    | None -> ()
  in
  Engine.schedule_at engine ~time:0.0 (fun () -> say ~who:0 "shall we cut 4.2?");
  Engine.schedule_at engine ~time:0.2 (fun () -> say ~who:1 "keep it, trim 5");
  Engine.schedule_at engine ~time:0.3 (fun () -> say ~who:2 "agree with barbara");
  Engine.schedule_at engine ~time:0.6 (fun () -> say ~who:0 "ok, trimming 5");
  Engine.schedule_at engine ~time:5.0 (fun () ->
      ignore
        (Stack.submit stack ~src:0
           ~dep:(Dep.after_all (List.rev !window))
           Dt.Log.Seal));
  Stack.run stack;

  print_endline "--- sealed transcript, as stored at every replica ---";
  List.iter
    (fun segment ->
      List.iter
        (fun (e : Dt.Log.entry) ->
          Printf.printf "  <%s> %s\n" people.(e.Dt.Log.author) e.Dt.Log.text)
        segment)
    (List.rev states.(1).Dt.Log.sealed);

  print_endline "\nconsistency checks:";
  let identical = Checker.identical_orders (Stack.all_delivered_orders stack) in
  Printf.printf "  %-32s %s\n" "identical release order"
    (if identical then "ok" else "VIOLATED");
  let all_equal =
    Array.for_all (fun s -> machine.Sm.equal s states.(0)) states
  in
  Printf.printf "  %-32s %s\n" "transcripts identical"
    (if all_equal then "ok" else "VIOLATED");
  assert (identical && all_equal);

  print_endline "\nper-layer metrics:";
  Format.printf "%a@." Stack.pp_metrics stack
