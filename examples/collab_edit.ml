(* Collaborative editing: an RGA sequence driven through the ordering
   stack by the spec functor — no CRDT merge function anywhere.

   The RGA object is an ordinary sequential specification (Seq_spec):
   its state is a grow-only map of characters anchored after each other
   plus a tombstone set, and its commutativity relation declares that
   inserts and deletes always commute (they add under globally unique
   ids), while reading the text is an observer.  The Cid/Ncid labeling
   is DERIVED from that relation — both mutators ride the concurrent
   §6.1 window; only reads are sync points — and the causal broadcast
   layer supplies exactly the delivery order the relation requires, so
   every replica shows the same text at every read.

   Run with:  dune exec examples/collab_edit.exe *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Seq_spec = Causalb_data.Seq_spec
module Rga = Causalb_data.Objects.Rga
module Service = Causalb_data.Service
module Replica = Causalb_data.Replica

let () =
  Printf.printf "rga spec: classes = %s; derived Cid = {%s}\n\n"
    (String.concat "," Rga.spec.Seq_spec.classes)
    (String.concat "," (Seq_spec.cid_classes Rga.spec));

  let engine = Engine.create ~seed:2026 () in
  let service =
    Service.create engine ~replicas:3 ~machine:Rga.machine
      ~latency:(Latency.lognormal ~mu:0.5 ~sigma:1.0 ())
      ~fifo:false ()
  in
  let at time src op =
    Engine.schedule_at engine ~time (fun () ->
        ignore (Service.submit service ~src op))
  in

  (* Author 0 types "hi" at the head while author 1 concurrently types
     "yo" there too: four inserts in one window, racing.  The RGA order
     (higher id wins the same anchor) interleaves them identically at
     every replica. *)
  at 0.0 0 (Rga.Insert { id = (1, 0); after = None; ch = "h" });
  at 0.4 0 (Rga.Insert { id = (2, 0); after = Some (1, 0); ch = "i" });
  at 0.1 1 (Rga.Insert { id = (1, 1); after = None; ch = "y" });
  at 0.5 1 (Rga.Insert { id = (2, 1); after = Some (1, 1); ch = "o" });
  (* a read closes the first cycle: the first stable text *)
  at 6.0 2 Rga.Read;

  (* Next window: author 2 appends "!", author 1 deletes its "y" — a
     delete is still a Cid operation for this spec. *)
  at 8.0 2 (Rga.Insert { id = (3, 2); after = Some (2, 0); ch = "!" });
  at 8.2 1 (Rga.Delete (1, 1));
  at 14.0 0 Rga.Read;

  Service.run service;

  print_endline "--- after the run ---";
  List.iter
    (fun r ->
      Printf.printf "replica %d: text = %S (%d live chars, %d cycles)\n"
        (Replica.id r)
        (Rga.to_text (Replica.stable_state r))
        (Rga.size (Replica.stable_state r))
        (Replica.cycles_closed r))
    (Service.replicas service);

  print_endline "consistency checks:";
  List.iter
    (fun (name, ok) ->
      Printf.printf "  %-32s %s\n" name (if ok then "ok" else "VIOLATED"))
    (Service.check service)
