(* One workload, four delivery pipelines.

   The same §6.1-style operation mix (commutative increments with
   periodic non-commutative syncs) is pushed through four compositions
   of the ordering stack:

     fifo          transport -> per-sender fifo -> app
     bss           transport -> vector-clock causal -> app
     osend         transport -> explicit-dependency causal -> app
     osend+merge   transport -> osend -> deterministic merge -> app

   Each composition reports the identical per-layer metrics table —
   received / delivered / forced waits / held / release-latency
   percentiles per layer — which is the point of the uniform LAYER
   interface: the orderings become comparable columns, not separate
   programs.

   Run with:  dune exec examples/ordering_stack.exe *)

module Drivers = Causalb_harness.Drivers
module Metrics = Causalb_stackbase.Metrics
module Table = Causalb_util.Table

let workload = { Drivers.ops = 120; spacing = 0.5; mix = Drivers.Fixed_window 5 }

let specs =
  [
    Drivers.Fifo_only;
    Drivers.Bss_stack;
    Drivers.Osend_stack;
    Drivers.Osend_merge;
  ]

let () =
  List.iter
    (fun spec ->
      let r = Drivers.run_stack ~seed:42 ~replicas:4 spec workload in
      let tbl =
        Table.create
          ~title:
            (Printf.sprintf "stack: %s  (checks %s, %d msgs, makespan %s)"
               (Drivers.stack_spec_name spec)
               (if r.Drivers.checks_ok then "ok" else "FAILED")
               r.Drivers.messages
               (Drivers.fmt r.Drivers.sim_time))
          ~columns:Metrics.columns
      in
      List.iter (fun m -> Table.add_row tbl (Metrics.row m)) r.Drivers.layers;
      Table.print tbl)
    specs;
  print_endline
    "note: same traffic, same makespan, different constraint sets — the\n\
     waits column quantifies each layer's ordering strictness: fifo only\n\
     repairs per-origin reordering, bss waits for inferred potential\n\
     causality, osend for the application's explicit §6.1 windows, and\n\
     the merge layer additionally withholds every message until its\n\
     closing sync."
