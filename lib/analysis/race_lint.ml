module Label = Causalb_graph.Label
module Depgraph = Causalb_graph.Depgraph
module Guarantee = Causalb_stackbase.Guarantee
module Diag = Causalb_check.Diag

type race = {
  a : Workload.site;
  b : Workload.site;
  need : Guarantee.t;
  top : Guarantee.t;
  missing : Label.t list;
}

(* Reachability over the full site set is the hot query (O(sites²) pairs);
   one ancestor set per label, computed lazily, makes each pair O(log n). *)
let ancestor_cache graph =
  let cache = Label.Tbl.create 64 in
  fun l ->
    match Label.Tbl.find_opt cache l with
    | Some s -> s
    | None ->
      let s = Depgraph.ancestors graph l in
      Label.Tbl.replace cache l s;
      s

let analyse (w : Workload.t) =
  let ancestors = ancestor_cache w.Workload.graph in
  let hb a b = Label.Set.mem a (ancestors b) in
  let sync_separated a b =
    Label.Set.exists
      (fun s ->
        Depgraph.mem w.Workload.graph s
        && ((hb a s && hb s b) || (hb b s && hb s a)))
      w.Workload.sync
  in
  fun (a : Workload.site) (b : Workload.site) ->
    if not (Workload.conflicts w a b) then None
    else if Label.origin a.Workload.label = Label.origin b.Workload.label
    then Some Guarantee.Fifo
    else if
      hb a.Workload.label b.Workload.label
      || hb b.Workload.label a.Workload.label
      || sync_separated a.Workload.label b.Workload.label
    then Some Guarantee.Causal
    else Some Guarantee.Causal_total

let pair_need w a b = analyse w a b

let fold_pairs w f acc =
  let sites = Array.of_list w.Workload.sites in
  let n = Array.length sites in
  let acc = ref acc in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := f !acc sites.(i) sites.(j)
    done
  done;
  !acc

let check ?(top = Guarantee.Causal) w =
  let need_of = analyse w in
  List.rev
    (fold_pairs w
       (fun races a b ->
         match need_of a b with
         | Some need when not (Guarantee.leq need top) ->
           {
             a;
             b;
             need;
             top;
             missing = [ a.Workload.label; b.Workload.label ];
           }
           :: races
         | _ -> races)
       [])

let required w =
  let need_of = analyse w in
  fold_pairs w
    (fun demand a b ->
      match need_of a b with
      | Some need -> Guarantee.join demand need
      | None -> demand)
    Guarantee.bot

let pp_site ppf (s : Workload.site) =
  Format.fprintf ppf "%s(%s@%s)"
    (Label.name s.Workload.label)
    s.Workload.cls s.Workload.obj

let pp_race ppf r =
  Format.fprintf ppf
    "%a ∥ %a: non-commuting classes, unordered in R(M) — the pair needs \
     %a but the stack provides %a; add an Occurs_After edge or a sync \
     point between them"
    pp_site r.a pp_site r.b Guarantee.pp r.need Guarantee.pp r.top

let race_to_string r = Format.asprintf "%a" pp_race r

let to_diag r =
  Diag.make ~check:"race:causal" ~chain:r.missing (race_to_string r)

let to_diags rs = List.map to_diag rs
