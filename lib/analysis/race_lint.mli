(** Pass 2 of the static consistency verifier: the whole-workload
    causal-race lint.

    Bouajjani et al. ({e On Verifying Causal Consistency}) isolate the
    expensive core of causal-consistency checking as the pairs of
    non-commuting concurrent writes.  With the commutativity relation
    {e declared} per class ({!Causalb_data.Seq_spec}) and the intended
    [R(M)] available before execution ({!Workload}), exactly those pairs
    are statically decidable: a {e race} is a pair of operations on the
    same object, in non-commuting classes, that is neither ordered by
    [R(M)] reachability nor separated by a synchronization point — and
    whose arbitration the stack's top-of-stack guarantee does not fix
    either.  Every race means two members may apply genuinely
    conflicting operations in different orders: the dynamic oracle could
    only flag the divergence after spending the simulation budget; this
    lint rejects the configuration up front.

    What covers a conflicting pair, from cheapest to strongest:
    {ul
    {- {b R(M) reachability} (or a sync point between the two) — needs a
       pipeline that enforces the explicit relation: [Causal];}
    {- {b same origin} — per-sender FIFO already serializes the pair
       identically everywhere: [Fifo] suffices;}
    {- {b nothing} — only a deterministic total order arbitrates the
       pair: [Causal_total].}}

    {!required} folds those needs into the workload's {e demand}: the
    minimal top-of-stack guarantee under which it is race-free. *)

module Label := Causalb_graph.Label
module Guarantee := Causalb_stackbase.Guarantee

type race = {
  a : Workload.site;
  b : Workload.site;          (** the offending non-commuting pair *)
  need : Guarantee.t;         (** minimal guarantee covering the pair *)
  top : Guarantee.t;          (** what the stack was assumed to provide *)
  missing : Label.t list;
      (** the missing edge: [[a; b]] — ordering either way (an
          [Occurs_After] predicate or an interposed sync point) resolves
          the race *)
}

val check : ?top:Guarantee.t -> Workload.t -> race list
(** All races of the workload over a pipeline providing [top] (default
    [Causal], the §6.1 protocol's setting), in submission order of the
    first site.  Empty means: every non-commuting pair is ordered by
    [R(M)], separated by a sync point, pinned by per-sender FIFO, or
    arbitrated by a total order. *)

val required : Workload.t -> Guarantee.t
(** The workload's demand: the minimal [top] for which {!check} returns
    no race.  [Unordered] when every pair commutes. *)

val pair_need : Workload.t -> Workload.site -> Workload.site -> Guarantee.t option
(** The guarantee a single pair needs — [None] when the sites do not
    conflict, otherwise [Fifo] (same origin), [Causal] (ordered by
    reachability or sync separation), or [Causal_total] (concurrent,
    cross-origin). *)

val pp_race : Format.formatter -> race -> unit

val race_to_string : race -> string

val to_diag : race -> Causalb_check.Diag.t
(** Check name ["race:causal"]; the chain carries the offending pair. *)

val to_diags : race list -> Causalb_check.Diag.t list
