module Guarantee = Causalb_stackbase.Guarantee
module Stack = Causalb_stack.Stack
module Diag = Causalb_check.Diag

type layer = {
  name : string;
  requires : Guarantee.t;
  provides : Guarantee.t;
}

type issue =
  | Weak_layer of {
      layer : string;
      requires : Guarantee.t;
      available : Guarantee.t;
    }
  | Claim_unmet of { claim : Guarantee.t; top : Guarantee.t }

type report = {
  layers : layer list;
  top : Guarantee.t;
  issues : issue list;
}

let layers_of ~ordering ~total ~fifo =
  List.map
    (fun (name, requires, provides) -> { name; requires; provides })
    (Stack.layer_guarantees ~ordering ~total ~fifo)

let verify ?claim layers =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  (* Continue past a weak layer with its [provides] joined in anyway, so
     one report names every ill-fitting layer rather than the first. *)
  let top =
    List.fold_left
      (fun available l ->
        if not (Guarantee.leq l.requires available) then
          add
            (Weak_layer
               { layer = l.name; requires = l.requires; available });
        Guarantee.join available l.provides)
      Guarantee.bot layers
  in
  (match claim with
  | Some claim when not (Guarantee.leq claim top) ->
    add (Claim_unmet { claim; top })
  | _ -> ());
  { layers; top; issues = List.rev !issues }

let verify_stack ?claim ~ordering ~total ~fifo () =
  verify ?claim (layers_of ~ordering ~total ~fifo)

let ok r = r.issues = []

let issue_name = function
  | Weak_layer _ -> "verify:weak-layer"
  | Claim_unmet _ -> "verify:claim-unmet"

let pp_issue ppf = function
  | Weak_layer { layer; requires; available } ->
    Format.fprintf ppf
      "layer %s requires %a below it, but the composition underneath \
       provides only %a"
      layer Guarantee.pp requires Guarantee.pp available
  | Claim_unmet { claim; top } ->
    Format.fprintf ppf
      "configuration claims %a consistency, but the stack tops out at %a"
      Guarantee.pp claim Guarantee.pp top

let issue_to_string i = Format.asprintf "%a" pp_issue i

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun l ->
      Format.fprintf ppf "%-16s requires %-9s provides %a@," l.name
        (Guarantee.to_string l.requires)
        Guarantee.pp l.provides)
    r.layers;
  Format.fprintf ppf "top-of-stack guarantee: %a" Guarantee.pp r.top;
  List.iter (fun i -> Format.fprintf ppf "@,ISSUE: %a" pp_issue i) r.issues;
  Format.fprintf ppf "@]"

let to_diag i = Diag.make ~check:(issue_name i) (issue_to_string i)

let to_diags r = List.map to_diag r.issues
