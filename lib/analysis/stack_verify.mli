(** Pass 1 of the static consistency verifier: the guarantee lattice
    over stack compositions.

    Every layer of a composed pipeline declares what ordering guarantee
    it {e requires} from the composition below it and what it
    {e provides} above ({!Causalb_stack.Layer.S}).  This pass folds a
    pipeline bottom-up through the {!Causalb_stackbase.Guarantee}
    lattice: at each layer the guarantee available so far must dominate
    the layer's requirement, and the layer's [provides] joins into what
    is available above it.  The fold yields the {e top-of-stack}
    guarantee — what the application may rely on — and every violated
    requirement as a structured issue.

    A second check compares a {e claim} — the consistency level a
    configuration declares it needs (for the shipped compositions, the
    level the dynamic oracle of [Causalb_check] holds the run to) —
    against the computed top: claiming causal consistency over a
    FIFO-only pipeline is a composition bug caught here, before any
    message is sent.

    One caveat the lattice deliberately flattens: [Bss] provides
    [Causal] with respect to {e potential} causality (vector clocks),
    which coincides with the explicit [R(M)] of OSend/Psync only when
    senders wait for their dependencies before submitting.  The harness
    front-ends submit spontaneously, so they claim only [Fifo] for BSS
    compositions — see [Causalb_harness.Drivers.claim_of]. *)

module Guarantee := Causalb_stackbase.Guarantee
module Stack := Causalb_stack.Stack

type layer = {
  name : string;           (** display name, e.g. ["causal:osend"] *)
  requires : Guarantee.t;  (** minimum guarantee needed from below *)
  provides : Guarantee.t;  (** guarantee of this layer's releases *)
}

type issue =
  | Weak_layer of {
      layer : string;
      requires : Guarantee.t;
      available : Guarantee.t;
    }
      (** the composition below [layer] provides only [available], less
          than the [requires] the layer's guarantee rests on *)
  | Claim_unmet of { claim : Guarantee.t; top : Guarantee.t }
      (** the configuration claims [claim] but the stack tops out at
          [top] *)

type report = {
  layers : layer list;     (** the pipeline, bottom-up *)
  top : Guarantee.t;       (** computed top-of-stack guarantee *)
  issues : issue list;     (** empty = the composition is well-formed *)
}

val layers_of :
  ordering:Stack.ordering -> total:'a Stack.total -> fifo:bool -> layer list
(** The descriptors of the pipeline [Stack.compose] would build from the
    same arguments (see {!Stack.layer_guarantees}). *)

val verify : ?claim:Guarantee.t -> layer list -> report
(** Fold the pipeline bottom-up.  Issues are reported in layer order;
    a [Claim_unmet], when present, comes last.  Verification continues
    past a weak layer (assuming the layer's [provides] anyway) so one
    report names every ill-fitting layer, not just the first. *)

val verify_stack :
  ?claim:Guarantee.t ->
  ordering:Stack.ordering ->
  total:'a Stack.total ->
  fifo:bool ->
  unit ->
  report
(** [verify ?claim (layers_of ~ordering ~total ~fifo)]. *)

val ok : report -> bool

val issue_name : issue -> string
(** Stable machine-readable name: ["verify:weak-layer"],
    ["verify:claim-unmet"]. *)

val pp_issue : Format.formatter -> issue -> unit

val issue_to_string : issue -> string

val pp_report : Format.formatter -> report -> unit
(** One line per layer (["transport  provides fifo"], …), then the top
    guarantee and any issues. *)

val to_diag : issue -> Causalb_check.Diag.t

val to_diags : report -> Causalb_check.Diag.t list
