module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Seq_spec = Causalb_data.Seq_spec
module Window = Causalb_data.Window
module Op = Causalb_data.Op

type obj = {
  name : string;
  commutes : string -> string -> bool;
  observer : string -> bool;
}

type site = { label : Label.t; obj : string; cls : string }

type t = {
  graph : Depgraph.t;
  sync : Label.Set.t;
  objects : obj list;
  sites : site list;
}

let obj_of_spec ?name (spec : _ Seq_spec.t) =
  {
    name = Option.value name ~default:spec.Seq_spec.name;
    commutes = spec.Seq_spec.commutes;
    observer = spec.Seq_spec.observer;
  }

(* Replay the §6.1 front-end bookkeeping purely: member [src i] submits
   operation [i] with the Window-derived predicate, under the same
   per-origin label numbering the stack's submission path uses. *)
let build ~spec ~obj indexed =
  let obj_name =
    match obj with Some n -> n | None -> spec.Seq_spec.name
  in
  let win = Window.create () in
  let graph = Depgraph.create () in
  let sync = ref Label.Set.empty in
  let seqs = Hashtbl.create 8 in
  let sites =
    List.mapi
      (fun i (origin, op) ->
        let seq =
          match Hashtbl.find_opt seqs origin with None -> 0 | Some s -> s
        in
        Hashtbl.replace seqs origin (seq + 1);
        let label =
          Label.make ~name:(Printf.sprintf "op%d" i) ~origin ~seq ()
        in
        let kind = Seq_spec.kind spec op in
        let dep = Dep.after_all (Window.deps_for win ~kind ~fallback:[]) in
        Depgraph.add graph label ~dep;
        Window.note win ~kind label;
        if kind = Op.Non_commutative then sync := Label.Set.add label !sync;
        { label; obj = obj_name; cls = spec.Seq_spec.class_of op })
      indexed
  in
  {
    graph;
    sync = !sync;
    objects = [ obj_of_spec ~name:obj_name spec ];
    sites;
  }

let of_ops ~spec ?obj ?(src = fun _ -> 0) ops =
  build ~spec ~obj (List.mapi (fun i op -> (src i, op)) ops)

let of_submissions ~spec ?obj subs =
  let in_order =
    List.stable_sort (fun (ta, _, _) (tb, _, _) -> compare ta tb) subs
  in
  build ~spec ~obj (List.map (fun (_, src, op) -> (src, op)) in_order)

let of_sites ~graph ?(sync = Label.Set.empty) ~objects sites =
  List.iter
    (fun s ->
      if not (Depgraph.mem graph s.label) then
        invalid_arg
          (Printf.sprintf "Workload.of_sites: label %s missing from graph"
             (Label.to_string s.label));
      if not (List.exists (fun o -> o.name = s.obj) objects) then
        invalid_arg
          (Printf.sprintf "Workload.of_sites: unknown object %S" s.obj))
    sites;
  { graph; sync; objects; sites }

let conflicts t a b =
  a.obj = b.obj
  && (not (Label.equal a.label b.label))
  &&
  match List.find_opt (fun o -> o.name = a.obj) t.objects with
  | None -> false
  | Some o ->
    o.observer a.cls || o.observer b.cls || not (o.commutes a.cls b.cls)
