(** The causal-race lint's input: a workload as a dependency graph plus
    the operation classes sitting on its labels.

    A workload names, for every operation it will submit, the label the
    front-end will assign, the object it touches, and the operation's
    {!Causalb_data.Seq_spec} class; the class-level commutativity
    relation and observer set of each object ride along.  {!of_ops} and
    {!of_submissions} derive all of it from a spec and an operation
    list by replaying the §6.1 front-end bookkeeping
    ({!Causalb_data.Window}) {e purely} — same labels, same
    [Occurs_After] edges, same sync points as the real submission path,
    with no engine and no messages.  {!of_sites} admits hand-built or
    [Workflow]-derived graphs. *)

module Label := Causalb_graph.Label
module Depgraph := Causalb_graph.Depgraph
module Seq_spec := Causalb_data.Seq_spec

type obj = {
  name : string;
  commutes : string -> string -> bool;
      (** class-level commutativity, from the spec's declared relation *)
  observer : string -> bool;
      (** order-sensitive return value — conflicts with {e every} class,
          including itself (two concurrent observers may answer
          differently at different members) *)
}

type site = {
  label : Label.t;
  obj : string;   (** must name an [obj] of the workload *)
  cls : string;   (** the operation's class in that object's spec *)
}

type t = {
  graph : Depgraph.t;     (** the intended [R(M)] over the sites *)
  sync : Label.Set.t;     (** labels submitted as synchronization points *)
  objects : obj list;
  sites : site list;      (** in submission order *)
}

val obj_of_spec : ?name:string -> ('op, 'state) Seq_spec.t -> obj
(** The object descriptor of a spec: its declared [commutes] and
    [observer].  [name] defaults to the spec's name. *)

val of_ops :
  spec:('op, 'state) Seq_spec.t ->
  ?obj:string ->
  ?src:(int -> int) ->
  'op list ->
  t
(** The §6.1 access pattern: operation [i] is submitted by member
    [src i] (default all from member 0); each derived-[Cid] operation
    occurs after the last sync, each [Ncid] operation after the whole
    open window.  Labels are [op<i>] with the per-origin sequence
    numbers the stack's front-end would assign. *)

val of_submissions :
  spec:('op, 'state) Seq_spec.t ->
  ?obj:string ->
  (float * int * 'op) list ->
  t
(** {!of_ops} over a timed submission schedule [(time, src, op)] as used
    by the harness object workloads; times only fix the order. *)

val of_sites :
  graph:Depgraph.t ->
  ?sync:Label.Set.t ->
  objects:obj list ->
  site list ->
  t
(** Wrap an existing graph (e.g. [Workflow.graph_of]) and its sites.
    @raise Invalid_argument if a site's label is missing from the graph
    or its [obj] names no object. *)

val conflicts : t -> site -> site -> bool
(** Whether two sites are in non-commuting classes: same object, and the
    classes do not commute (observer classes commute with nothing).
    Sites on different objects never conflict.  Symmetric. *)
