module Trace = Causalb_sim.Trace
module Label = Causalb_graph.Label

type t = {
  check : string;
  node : int option;
  summary : string;
  records : Trace.record list;
  chain : Label.t list;
}

let make ~check ?node ?(records = []) ?(chain = []) summary =
  { check; node; summary; records; chain }

let pp ppf d =
  Format.fprintf ppf "@[<v2>[%s]%s %s" d.check
    (match d.node with
    | None -> ""
    | Some n -> Printf.sprintf " node %d:" n)
    d.summary;
  List.iter (fun r -> Format.fprintf ppf "@,| %a" Trace.pp_record r) d.records;
  (match d.chain with
  | [] -> ()
  | chain ->
    Format.fprintf ppf "@,causal chain: %s"
      (String.concat " -> " (List.map Label.to_string chain)));
  Format.fprintf ppf "@]"

let pp_list ppf ds =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i d ->
      if i > 0 then Format.fprintf ppf "@,";
      pp ppf d)
    ds;
  Format.fprintf ppf "@]"

let to_string d = Format.asprintf "%a" pp d

let to_json d =
  let module J = Causalb_util.Json in
  let record (r : Trace.record) =
    J.Obj
      [
        ("time", J.Num r.Trace.time);
        ("node", J.Num (float_of_int r.Trace.node));
        ("kind", J.Str (Trace.kind_to_string r.Trace.kind));
        ("tag", J.Str r.Trace.tag);
        ("info", J.Str r.Trace.info);
      ]
  in
  J.Obj
    [
      ("check", J.Str d.check);
      ( "node",
        match d.node with
        | None -> J.Null
        | Some n -> J.Num (float_of_int n) );
      ("summary", J.Str d.summary);
      ("records", J.List (List.map record d.records));
      ( "chain",
        J.List (List.map (fun l -> J.Str (Label.to_string l)) d.chain) );
    ]

let to_json_line d = Causalb_util.Json.to_string (to_json d)
