(** Structured checker diagnostics.

    Every trace checker and the spec lint report violations as values of
    {!t}: which check fired, at which node, the offending trace records,
    and — when the dependency graph knows one — the minimal causal chain
    connecting the violated ordering constraint. *)

type t = {
  check : string;          (** checker name, e.g. ["causal"], ["lint:cycle"] *)
  node : int option;       (** the member the violation was observed at *)
  summary : string;        (** one-line human description *)
  records : Causalb_sim.Trace.record list;
      (** the offending trace records, in trace order *)
  chain : Causalb_graph.Label.t list;
      (** minimal dependency chain [ancestor → … → descendant] behind the
          violated constraint; empty when no graph path applies *)
}

val make :
  check:string ->
  ?node:int ->
  ?records:Causalb_sim.Trace.record list ->
  ?chain:Causalb_graph.Label.t list ->
  string ->
  t

val pp : Format.formatter -> t -> unit

val pp_list : Format.formatter -> t list -> unit

val to_string : t -> string

val to_json : t -> Causalb_util.Json.t
(** The diagnostic as a JSON object: [check], [node] (null when global),
    [summary], [records] (time/node/kind/tag/info each), [chain] (label
    strings).  Stable field set — the [--json] output of the CLIs. *)

val to_json_line : t -> string
(** {!to_json} rendered compactly on one line (JSON-lines framing). *)
