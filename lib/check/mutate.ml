module Trace = Causalb_sim.Trace
module Label = Causalb_graph.Label
module Depgraph = Causalb_graph.Depgraph

(* Rebuild a trace with the tag/info payloads of records [i] and [j]
   exchanged: the node "observed" the two events in the opposite order
   while times stay monotone — exactly the shape of an ordering bug. *)
let swap_tags trace i j =
  let out = Trace.create ~capacity:(Trace.length trace) () in
  let ri = Trace.get trace i and rj = Trace.get trace j in
  for k = 0 to Trace.length trace - 1 do
    let r = Trace.get trace k in
    let src = if k = i then rj else if k = j then ri else r in
    Trace.record out ~time:r.Trace.time ~node:r.Trace.node ~kind:r.Trace.kind
      ~tag:src.Trace.tag ~info:src.Trace.info ()
  done;
  out

(* Indexed records of one kind at one node, preserving global indices. *)
let indexed trace ~node kind =
  let acc = ref [] and i = ref 0 in
  Trace.iter trace (fun r ->
      if r.Trace.node = node && r.Trace.kind = kind then acc := (!i, r) :: !acc;
      incr i);
  List.rev !acc

let find_adjacent trace ~kind ~pick =
  let rec scan = function
    | (i, a) :: ((j, b) :: _ as rest) ->
      if pick a b then Some (i, j, a, b) else scan rest
    | _ -> None
  in
  List.find_map
    (fun node -> scan (indexed trace ~node kind))
    (Trace_check.nodes trace)

let swap_found trace = function
  | None -> None
  | Some (i, j, a, b) -> Some (swap_tags trace i j, a, b)

let resolver graph =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun l -> Hashtbl.replace tbl (Label.to_string l) l)
    (Depgraph.labels graph);
  fun tag -> Hashtbl.find_opt tbl tag

let reorder_causal ~graph trace =
  let resolve = resolver graph in
  find_adjacent trace ~kind:Trace.Deliver ~pick:(fun a b ->
      match (resolve a.Trace.tag, resolve b.Trace.tag) with
      | Some la, Some lb ->
        List.exists (Label.equal la) (Depgraph.parents graph lb)
      | _ -> false)
  |> swap_found trace

let reorder_fifo ~graph trace =
  let resolve = resolver graph in
  find_adjacent trace ~kind:Trace.Deliver ~pick:(fun a b ->
      match (resolve a.Trace.tag, resolve b.Trace.tag) with
      | Some la, Some lb ->
        Label.origin la = Label.origin lb && Label.seq la < Label.seq lb
      | _ -> false)
  |> swap_found trace

let reorder_release ?sync ~graph trace =
  let resolve = resolver graph in
  let pick =
    match sync with
    | None -> fun a b -> not (String.equal a.Trace.tag b.Trace.tag)
    | Some sync ->
      (* Swap an interior message with the sync that closes its window:
         the message migrates to the next window at this node only. *)
      fun a b ->
        (match (resolve a.Trace.tag, resolve b.Trace.tag) with
        | Some la, Some lb ->
          (not (Label.Set.mem la sync)) && Label.Set.mem lb sync
        | _ -> false)
  in
  find_adjacent trace ~kind:Trace.Release ~pick |> swap_found trace

let corrupt_mark trace =
  let idx = ref None and i = ref 0 in
  Trace.iter trace (fun r ->
      if
        !idx = None
        && r.Trace.kind = Trace.Mark
        && String.length r.Trace.tag >= 7
        && String.sub r.Trace.tag 0 7 = "stable:"
      then idx := Some (!i, r);
      incr i);
  match !idx with
  | None -> None
  | Some (i, victim) ->
    let out = Trace.create ~capacity:(Trace.length trace) () in
    for k = 0 to Trace.length trace - 1 do
      let r = Trace.get trace k in
      let info =
        if k = i then r.Trace.info ^ "!corrupted" else r.Trace.info
      in
      Trace.record out ~time:r.Trace.time ~node:r.Trace.node
        ~kind:r.Trace.kind ~tag:r.Trace.tag ~info ()
    done;
    Some (out, victim)

let drop_label graph victim =
  let out = Depgraph.create () in
  List.iter
    (fun l ->
      if not (Label.equal l victim) then
        Depgraph.add out l ~dep:(Depgraph.dep_of graph l))
    (Depgraph.labels graph);
  out
