(** Seeded violations for auditing the checkers themselves.

    Each mutator takes a {e clean} trace (and the dependency graph used to
    resolve its tags) and plants one known violation, returning the
    mutated trace plus the records/labels involved — or [None] when the
    trace contains no site for that violation.  The mutation harness
    (tests, [causalb-check --self-test]) asserts that the corresponding
    checker rejects every mutated trace it accepts clean.

    Mutations never modify the input trace; they rebuild a copy. *)

module Trace := Causalb_sim.Trace
module Label := Causalb_graph.Label
module Depgraph := Causalb_graph.Depgraph

val swap_tags : Trace.t -> int -> int -> Trace.t
(** Exchange the tag/info payloads of records [i] and [j] (times and
    kinds stay in place) — the generic reordering primitive. *)

val reorder_causal :
  graph:Depgraph.t -> Trace.t -> (Trace.t * Trace.record * Trace.record) option
(** Find, at some node, two adjacent [Deliver] records where the first is
    a named ancestor of the second, and swap them: the descendant now
    arrives before its dependency.  {!Trace_check.causal} must reject the
    result. *)

val reorder_fifo :
  graph:Depgraph.t -> Trace.t -> (Trace.t * Trace.record * Trace.record) option
(** Swap two adjacent same-origin [Deliver] records at one node, breaking
    per-sender FIFO.  {!Trace_check.fifo} must reject the result. *)

val reorder_release :
  ?sync:Label.Set.t ->
  graph:Depgraph.t ->
  Trace.t ->
  (Trace.t * Trace.record * Trace.record) option
(** Swap two adjacent [Release] records at one node.  Without [sync]:
    any differing pair — breaks identical-order agreement
    ([Trace_check.total_order ~strict:true]).  With [sync]: an interior
    message and the synchronization point closing its window — the
    message migrates to the next window at that node only, breaking
    window agreement. *)

val corrupt_mark : Trace.t -> (Trace.t * Trace.record) option
(** Tamper with the digest of the first stable-point [Mark] record.
    {!Trace_check.stable_points} must reject the result. *)

val drop_label : Depgraph.t -> Label.t -> Depgraph.t
(** Rebuild the graph without one label while every predicate that named
    it still does — the "dropped edge" specification bug.
    {!Spec_lint.lint} must flag the result (dangling/unsatisfiable). *)
