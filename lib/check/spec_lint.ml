module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph

type issue =
  | Dangling of { label : Label.t; missing : Label.t }
  | Cycle of Label.t list
  | Redundant_edge of { label : Label.t; ancestor : Label.t; via : Label.t }
  | Dead_alternative of {
      label : Label.t;
      alt : Label.t;
      implied_by : Label.t;
    }
  | Unsatisfiable of { label : Label.t; missing : Label.t list }
  | Duplicate_label of { label : Label.t; first : int; second : int }

let issue_name = function
  | Dangling _ -> "lint:dangling"
  | Cycle _ -> "lint:cycle"
  | Redundant_edge _ -> "lint:redundant-edge"
  | Dead_alternative _ -> "lint:dead-alternative"
  | Unsatisfiable _ -> "lint:unsatisfiable"
  | Duplicate_label _ -> "lint:duplicate-label"

let pp_issue ppf = function
  | Dangling { label; missing } ->
    Format.fprintf ppf "%a names %a, which no send defines" Label.pp label
      Label.pp missing
  | Cycle path ->
    Format.fprintf ppf "dependency cycle: %s"
      (String.concat " -> " (List.map Label.to_string path))
  | Redundant_edge { label; ancestor; via } ->
    Format.fprintf ppf
      "%a -> %a is transitively redundant (already implied via %a)" Label.pp
      ancestor Label.pp label Label.pp via
  | Dead_alternative { label; alt; implied_by } ->
    Format.fprintf ppf
      "alternative %a of %a can never fire first: %a always precedes it"
      Label.pp alt Label.pp label Label.pp implied_by
  | Unsatisfiable { label; missing } ->
    Format.fprintf ppf
      "%a can never be delivered — it waits on %s; every descendant \
       deadlocks with it"
      Label.pp label
      (String.concat ", " (List.map Label.to_string missing))
  | Duplicate_label { label; first; second } ->
    Format.fprintf ppf
      "sends #%d and #%d both define %a — the second wait can never be \
       told apart from the first, and its dependents may fire early"
      first second Label.pp label

let issue_to_string i = Format.asprintf "%a" pp_issue i

let to_diag i =
  Diag.make ~check:(issue_name i)
    ~chain:
      (match i with
      | Dangling { label; missing } -> [ missing; label ]
      | Cycle path -> path
      | Redundant_edge { label; ancestor; via } -> [ ancestor; via; label ]
      | Dead_alternative { label; alt; implied_by } ->
        [ implied_by; alt; label ]
      | Unsatisfiable { label; missing } -> missing @ [ label ]
      | Duplicate_label { label; _ } -> [ label ])
    (issue_to_string i)

(* A send is unsatisfiable when its wait can never complete no matter
   what else is delivered: an AND-ancestor that no send defines, or an
   OR whose every alternative is undefined.  (Cyclic waits are also
   unsatisfiable but reported once, as the cycle.) *)
let unsatisfiable g l =
  let dep = Depgraph.dep_of g l in
  let missing = Depgraph.missing_parents g l in
  match dep with
  | Dep.Null -> None
  | Dep.After _ | Dep.After_all _ ->
    if missing = [] then None else Some missing
  | Dep.After_any alts ->
    if missing <> [] && List.length missing = List.length alts then
      Some missing
    else None

let lint g =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  (match Depgraph.find_cycle g with
  | Some path -> add (Cycle path)
  | None -> ());
  List.iter
    (fun l ->
      let dep = Depgraph.dep_of g l in
      List.iter
        (fun missing -> add (Dangling { label = l; missing }))
        (Depgraph.missing_parents g l);
      (match unsatisfiable g l with
      | Some missing -> add (Unsatisfiable { label = l; missing })
      | None -> ());
      match dep with
      | Dep.Null | Dep.After _ -> ()
      | Dep.After_all _ ->
        (* Direct edge a -> l is redundant when another parent already
           transitively requires a: the wait is implied. *)
        let parents = Depgraph.parents g l in
        List.iter
          (fun a ->
            match
              List.find_opt
                (fun p ->
                  (not (Label.equal p a))
                  && Label.Set.mem a (Depgraph.ancestors g p))
                parents
            with
            | Some via -> add (Redundant_edge { label = l; ancestor = a; via })
            | None -> ())
          parents
      | Dep.After_any alts ->
        (* An alternative that happens-after another alternative can
           never be the one that fires: by the time it is delivered the
           earlier alternative already satisfied the OR. *)
        let present = List.filter (Depgraph.mem g) alts in
        List.iter
          (fun b ->
            match
              List.find_opt
                (fun a ->
                  (not (Label.equal a b)) && Depgraph.happens_before g a b)
                present
            with
            | Some a -> add (Dead_alternative { label = l; alt = b; implied_by = a })
            | None -> ())
          present)
    (Depgraph.labels g);
  List.rev !issues

(* [Depgraph.add] rejects a second definition of a label outright, so the
   duplicate check has to act on the send list — before a graph can even
   be built from it.  Duplicates are reported (first and second position)
   and dropped; the surviving sends are then linted as a graph. *)
let lint_sends sends =
  let g = Depgraph.create () in
  let seen = Label.Tbl.create 16 in
  let dups = ref [] in
  List.iteri
    (fun i (label, dep) ->
      match Label.Tbl.find_opt seen label with
      | Some first ->
        dups := Duplicate_label { label; first; second = i } :: !dups
      | None ->
        Label.Tbl.replace seen label i;
        Depgraph.add g label ~dep)
    sends;
  List.rev !dups @ lint g

let to_diags issues = List.map to_diag issues
