(** Static lint of [Occurs_After] dependency specifications.

    Analyses a {!Causalb_graph.Depgraph.t} {e before} (or independently
    of) execution, flagging specification shapes that make a run wrong or
    wasteful:

    - {b dangling} dependency labels — a predicate names a message no
      send defines;
    - {b cycles} — mutually dependent waits that deadlock delivery (the
      graph accepts forward references, so cycles are expressible);
    - {b transitively redundant edges} — an [After_all] conjunct already
      implied by another conjunct's ancestry (wasted constraint);
    - {b dead alternatives} — an [After_any] alternative that
      happens-after another alternative, so it can never be the one that
      fires;
    - {b unsatisfiable sends} — messages whose wait can never complete
      (all ancestors undefined), which deadlock themselves and every
      descendant. *)

module Label := Causalb_graph.Label

type issue =
  | Dangling of { label : Label.t; missing : Label.t }
  | Cycle of Label.t list
      (** label path with the first label repeated at the end *)
  | Redundant_edge of { label : Label.t; ancestor : Label.t; via : Label.t }
      (** [ancestor → label] already implied through conjunct [via] *)
  | Dead_alternative of {
      label : Label.t;
      alt : Label.t;
      implied_by : Label.t;
    }
  | Unsatisfiable of { label : Label.t; missing : Label.t list }
  | Duplicate_label of { label : Label.t; first : int; second : int }
      (** sends [first] and [second] (positions in the send list) both
          define the same label — waits on it are ambiguous *)

val lint : Causalb_graph.Depgraph.t -> issue list
(** All issues, in graph insertion order (cycle first when present).
    An empty list means the specification is clean.  [Duplicate_label]
    never appears here: a {!Causalb_graph.Depgraph.t} cannot hold two
    definitions of one label — use {!lint_sends} on the raw send list. *)

val lint_sends : (Label.t * Causalb_graph.Dep.t) list -> issue list
(** Lint a specification still in send-list form, {e before} graph
    construction: reports a [Duplicate_label] for every send re-defining
    an earlier label (duplicates are dropped), then all {!lint} issues of
    the graph built from the surviving sends. *)

val issue_name : issue -> string
(** Stable machine-readable name, e.g. ["lint:cycle"]. *)

val pp_issue : Format.formatter -> issue -> unit

val issue_to_string : issue -> string

val to_diag : issue -> Diag.t

val to_diags : issue list -> Diag.t list
