module Trace = Causalb_sim.Trace
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph

(* --- trace access helpers ------------------------------------------- *)

let nodes trace =
  let seen = Hashtbl.create 8 in
  Trace.iter trace (fun r ->
      if r.Trace.node >= 0 then Hashtbl.replace seen r.Trace.node ());
  List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) seen [])

let records_at trace ~node kind =
  List.rev
    (Trace.fold trace ~init:[] ~f:(fun acc r ->
         if r.Trace.node = node && r.Trace.kind = kind then r :: acc else acc))

let deliver_records trace ~node = records_at trace ~node Trace.Deliver

let release_records trace ~node =
  (* The application-visible sequence: [Release] when the stack or a
     total-order layer recorded releases at this node, else the causal
     [Deliver] sequence (standalone engines record only that). *)
  match records_at trace ~node Trace.Release with
  | [] -> records_at trace ~node Trace.Deliver
  | rs -> rs

(* Trace tags are label renderings ([Label.to_string]); the graph is the
   authority for mapping them back.  Tags the graph does not know (bare
   transport records, protocol milestones) are skipped by every
   checker. *)
let resolver graph =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun l -> Hashtbl.replace tbl (Label.to_string l) l)
    (Depgraph.labels graph);
  fun tag -> Hashtbl.find_opt tbl tag

let chain_of graph a b =
  match Depgraph.shortest_path graph a b with
  | Some path -> path
  | None -> [ a; b ]

(* --- causal-delivery safety (paper §3–4) ----------------------------- *)

let causal ~graph trace =
  let resolve = resolver graph in
  let diags = ref [] in
  List.iter
    (fun node ->
      let records = deliver_records trace ~node in
      (* Membership is tracked by trace tag, not by graph-resolved label:
         the audited graph is one member's extracted R(M), and under loss
         it can lack a vertex for a message other members legitimately
         delivered — resolving such a delivery to nothing would drop it
         from the set and flag its descendants as premature.  Tags are
         label renderings and unique per run, so tag equality is label
         equality wherever both exist. *)
      let delivered = Hashtbl.create 64 in
      let later_record a rest =
        List.find_opt
          (fun r -> String.equal r.Trace.tag (Label.to_string a))
          rest
      in
      let rec scan = function
        | [] -> ()
        | r :: rest ->
          (match resolve r.Trace.tag with
          | None -> ()
          | Some label ->
            let ok l = Hashtbl.mem delivered (Label.to_string l) in
            let dep = Depgraph.dep_of graph label in
            if not (Dep.satisfied ~delivered:ok dep) then begin
              let missing =
                List.filter (fun a -> not (ok a)) (Dep.ancestors dep)
              in
              let first = List.hd missing in
              let ancestor_records =
                List.filter_map (fun a -> later_record a rest) missing
              in
              let describe a =
                match later_record a rest with
                | Some r' ->
                  Printf.sprintf "%s (delivered later, t=%.3f)"
                    (Label.to_string a) r'.Trace.time
                | None ->
                  Printf.sprintf "%s (never delivered here)"
                    (Label.to_string a)
              in
              let which =
                match dep with
                | Dep.After_any _ -> "any of its R(M) alternatives"
                | _ -> "its R(M) ancestors"
              in
              diags :=
                Diag.make ~check:"causal" ~node
                  ~records:(r :: ancestor_records)
                  ~chain:(chain_of graph first label)
                  (Printf.sprintf "%s delivered before %s: %s"
                     (Label.to_string label) which
                     (String.concat ", " (List.map describe missing)))
                :: !diags
            end);
          (* Every delivery joins the set, resolvable or not — a record
             the graph cannot name still satisfies dependencies that
             name it. *)
          Hashtbl.replace delivered r.Trace.tag ();
          scan rest
      in
      scan records)
    (nodes trace);
  List.rev !diags

(* --- FIFO per sender -------------------------------------------------- *)

let fifo ~graph trace =
  let resolve = resolver graph in
  let diags = ref [] in
  List.iter
    (fun node ->
      let high = Hashtbl.create 8 in (* origin -> highest (seq, record) *)
      List.iter
        (fun r ->
          match resolve r.Trace.tag with
          | None -> ()
          | Some label ->
            let origin = Label.origin label and seq = Label.seq label in
            (match Hashtbl.find_opt high origin with
            | Some (s, prev) when s > seq ->
              diags :=
                Diag.make ~check:"fifo" ~node ~records:[ prev; r ]
                  (Printf.sprintf
                     "sender %d out of order: seq %d delivered after seq %d"
                     origin seq s)
                :: !diags
            | _ -> ());
            (match Hashtbl.find_opt high origin with
            | Some (s, _) when s > seq -> ()
            | _ -> Hashtbl.replace high origin (seq, r)))
        (deliver_records trace ~node))
    (nodes trace);
  List.rev !diags

(* --- total-order agreement (paper §5.2 / §3.2 windows) ---------------- *)

let strict_agreement per_node =
  match per_node with
  | [] | [ _ ] -> []
  | (n0, r0) :: rest ->
    List.concat_map
      (fun (n, r) ->
        let rec cmp i a b =
          match (a, b) with
          | [], [] -> []
          | x :: xs, y :: ys ->
            if String.equal x.Trace.tag y.Trace.tag then cmp (i + 1) xs ys
            else
              [
                Diag.make ~check:"total" ~node:n ~records:[ x; y ]
                  (Printf.sprintf
                     "release sequences diverge at position %d: node %d \
                      released %s where node %d released %s"
                     i n y.Trace.tag n0 x.Trace.tag);
              ]
          | x :: _, [] ->
            [
              Diag.make ~check:"total" ~node:n ~records:[ x ]
                (Printf.sprintf
                   "node %d released only %d messages; node %d continued \
                    with %s"
                   n i n0 x.Trace.tag);
            ]
          | [], y :: _ ->
            [
              Diag.make ~check:"total" ~node:n ~records:[ y ]
                (Printf.sprintf
                   "node %d released only %d messages; node %d continued \
                    with %s"
                   n0 i n y.Trace.tag);
            ]
        in
        cmp 0 r0 r)
      rest

(* Split a node's release sequence at the synchronization points: the
   result is a list of (interior set, closing sync) windows plus a
   trailing open window.  Members must agree on the sync order and on
   each interior *set* — order inside a window is free (commutative
   [Cid] reordering between [Ncid] anchors, §6.1). *)
let windows_of ~resolve ~sync records =
  let close (set, recs) sync_r = (set, recs, sync_r) in
  let rec go acc cur = function
    | [] -> (List.rev acc, cur)
    | r :: rest -> (
      match resolve r.Trace.tag with
      | None -> go acc cur rest
      | Some label ->
        if Label.Set.mem label sync then go (close cur r :: acc) (Label.Set.empty, []) rest
        else
          let set, recs = cur in
          go acc (Label.Set.add label set, r :: recs) rest)
  in
  go [] (Label.Set.empty, []) records

let set_to_string s =
  String.concat ", " (List.map Label.to_string (Label.Set.elements s))

let window_agreement ~resolve ~sync per_node =
  match per_node with
  | [] | [ _ ] -> []
  | (n0, r0) :: rest ->
    let w0, (tail0, _) = windows_of ~resolve ~sync r0 in
    List.concat_map
      (fun (n, r) ->
        let w, (tail, _) = windows_of ~resolve ~sync r in
        let rec cmp k a b =
          match (a, b) with
          | [], [] ->
            if Label.Set.equal tail0 tail then []
            else
              [
                Diag.make ~check:"total" ~node:n
                  (Printf.sprintf
                     "open windows differ after the last sync: node %d has \
                      {%s}, node %d has {%s}"
                     n0 (set_to_string tail0) n (set_to_string tail));
              ]
          | (s0, recs0, sr0) :: xs, (s, recs, sr) :: ys ->
            if not (String.equal sr0.Trace.tag sr.Trace.tag) then
              [
                Diag.make ~check:"total" ~node:n ~records:[ sr0; sr ]
                  (Printf.sprintf
                     "sync order diverges at window %d: node %d closed with \
                      %s, node %d with %s"
                     k n0 sr0.Trace.tag n sr.Trace.tag);
              ]
            else if not (Label.Set.equal s0 s) then begin
              let only0 = Label.Set.diff s0 s and only = Label.Set.diff s s0 in
              let offending =
                List.filter
                  (fun r ->
                    Label.Set.exists
                      (fun l -> String.equal (Label.to_string l) r.Trace.tag)
                      (Label.Set.union only0 only))
                  (List.rev_append recs0 (List.rev recs))
              in
              [
                Diag.make ~check:"total" ~node:n
                  ~records:(offending @ [ sr ])
                  (Printf.sprintf
                     "window %d (closed by %s) differs: only node %d has \
                      {%s}; only node %d has {%s}"
                     k sr.Trace.tag n0 (set_to_string only0) n
                     (set_to_string only));
              ]
            end
            else cmp (k + 1) xs ys
          | (_, _, sr) :: _, [] ->
            [
              Diag.make ~check:"total" ~node:n ~records:[ sr ]
                (Printf.sprintf
                   "node %d closed window %d with %s; node %d never closed it"
                   n0 k sr.Trace.tag n);
            ]
          | [], (_, _, sr) :: _ ->
            [
              Diag.make ~check:"total" ~node:n ~records:[ sr ]
                (Printf.sprintf
                   "node %d closed window %d with %s; node %d never closed it"
                   n k sr.Trace.tag n0);
            ]
        in
        cmp 0 w0 w)
      rest

let total_order ?(strict = false) ~graph ?sync trace =
  let per_node =
    List.map (fun n -> (n, release_records trace ~node:n)) (nodes trace)
    |> List.filter (fun (_, rs) -> rs <> [])
  in
  if strict then strict_agreement per_node
  else
    let resolve = resolver graph in
    let sync =
      match sync with
      | Some s -> s
      | None -> Label.Set.of_list (Depgraph.sync_points graph)
    in
    window_agreement ~resolve ~sync per_node

(* --- stable-point agreement (paper §4.1, §6.1) ------------------------ *)

let is_stable_mark r =
  r.Trace.kind = Trace.Mark
  && String.length r.Trace.tag >= 7
  && String.sub r.Trace.tag 0 7 = "stable:"

let stable_points trace =
  let marks_of node =
    List.filter is_stable_mark (records_at trace ~node Trace.Mark)
  in
  let per_node =
    List.map (fun n -> (n, marks_of n)) (nodes trace)
    |> List.filter (fun (_, ms) -> ms <> [])
  in
  match per_node with
  | [] | [ _ ] -> []
  | (n0, m0) :: rest ->
    let digest_at marks tag =
      List.find_opt (fun r -> String.equal r.Trace.tag tag) marks
    in
    List.concat_map
      (fun (n, marks) ->
        List.filter_map
          (fun r0 ->
            match digest_at marks r0.Trace.tag with
            | Some r when not (String.equal r.Trace.info r0.Trace.info) ->
              Some
                (Diag.make ~check:"stable" ~node:n ~records:[ r0; r ]
                   (Printf.sprintf
                      "replica digests disagree at %s: node %d recorded %s, \
                       node %d recorded %s"
                      r0.Trace.tag n0 r0.Trace.info n r.Trace.info))
            | _ -> None)
          m0)
      rest
