(** Offline trace checkers — the ordering oracle.

    Each checker consumes an execution trace ({!Causalb_sim.Trace.t}) and
    the message dependency graph ({!Causalb_graph.Depgraph.t}) and
    independently verifies one guarantee the paper's engines are supposed
    to provide, reporting violations as structured {!Diag.t} values
    (empty list = the property holds on this trace):

    - {!causal} — causal-delivery safety (§3–4): no member delivers a
      message before the ancestors its [R(M)] predicate names;
    - {!fifo} — FIFO per sender: one origin's messages are delivered in
      send order at every member;
    - {!total_order} — agreement (§5.2 / §6.1): members release the same
      sequence up to commutative reordering between synchronization
      points, or the byte-identical sequence in [~strict] mode;
    - {!stable_points} — replica digests recorded via [Mark] events at
      each stable point match across members (§6.1).

    The checkers are pure trace analyses: they know nothing about which
    engine or stack composition produced the trace, so the same oracle
    audits every composition (and seeded mutations of their traces — see
    {!Mutate}). *)

val nodes : Causalb_sim.Trace.t -> int list
(** Distinct non-negative node ids appearing in the trace, sorted. *)

val deliver_records :
  Causalb_sim.Trace.t -> node:int -> Causalb_sim.Trace.record list
(** The node's causal-layer [Deliver] records, in order. *)

val release_records :
  Causalb_sim.Trace.t -> node:int -> Causalb_sim.Trace.record list
(** The node's application-visible sequence: its [Release] records when
    it has any, otherwise its [Deliver] records. *)

val causal :
  graph:Causalb_graph.Depgraph.t -> Causalb_sim.Trace.t -> Diag.t list
(** Causal-delivery safety: scanning each node's [Deliver] sequence, the
    [Occurs_After] predicate of every graph-known message must already be
    satisfied by the node's delivered set ([After]/[After_all]: every
    named ancestor delivered; [After_any]: at least one alternative).
    Each violation names the offending records and a minimal dependency
    chain.  Tags the graph does not know are skipped. *)

val fifo :
  graph:Causalb_graph.Depgraph.t -> Causalb_sim.Trace.t -> Diag.t list
(** FIFO per sender: at every node, the sequence numbers of each origin's
    delivered messages must be increasing. *)

val total_order :
  ?strict:bool ->
  graph:Causalb_graph.Depgraph.t ->
  ?sync:Causalb_graph.Label.Set.t ->
  Causalb_sim.Trace.t ->
  Diag.t list
(** Agreement on the application-visible sequences ({!release_records})
    of all members.  Default mode: sequences must be equal up to
    commutative reordering between synchronization points — same sync
    order, equal interior {e set} per window ([sync] defaults to
    {!Causalb_graph.Depgraph.sync_points}; pass the empty set for plain
    same-set agreement).  [~strict:true] (the [ASend] guarantee, §5.2):
    sequences must be identical, element by element. *)

val stable_points : Causalb_sim.Trace.t -> Diag.t list
(** Stable-point agreement: [Mark] records whose tag is ["stable:<k>"]
    carry a replica digest in their [info]; for every cycle closed at two
    or more members, the digests must be equal. *)
