type t = int array

type ordering = Before | After | Equal | Concurrent

let create n =
  if n <= 0 then invalid_arg "Vector_clock.create: size must be positive";
  Array.make n 0

let size = Array.length

let check_index v i =
  if i < 0 || i >= Array.length v then
    invalid_arg "Vector_clock: process index out of range"

let get v i =
  check_index v i;
  v.(i)

let tick v i =
  check_index v i;
  let v' = Array.copy v in
  v'.(i) <- v'.(i) + 1;
  v'

let check_sizes a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock: size mismatch"

let merge a b =
  check_sizes a b;
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let receive ~local ~remote ~me =
  check_sizes local remote;
  check_index local me;
  (* merge + tick fused into one allocation *)
  let v = Array.init (Array.length local) (fun i -> max local.(i) remote.(i)) in
  v.(me) <- v.(me) + 1;
  v

let copy = Array.copy

let merge_into ~into src =
  check_sizes into src;
  for i = 0 to Array.length into - 1 do
    if src.(i) > into.(i) then into.(i) <- src.(i)
  done

let receive_into ~local ~remote ~me =
  check_index local me;
  merge_into ~into:local remote;
  local.(me) <- local.(me) + 1

let bump v i =
  check_index v i;
  v.(i) <- v.(i) + 1

let with_component v i x =
  check_index v i;
  let v' = Array.copy v in
  v'.(i) <- x;
  v'

let leq a b =
  check_sizes a b;
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let equal a b =
  check_sizes a b;
  a = b

let lt a b = leq a b && not (equal a b)

let concurrent a b = (not (leq a b)) && not (leq b a)

let compare_causal a b =
  if equal a b then Equal
  else if leq a b then Before
  else if leq b a then After
  else Concurrent

let dominates_all v vs = List.for_all (fun u -> leq u v) vs

let of_array a =
  if Array.length a = 0 then invalid_arg "Vector_clock.of_array: empty";
  Array.copy a

let to_array v = Array.copy v

let pp ppf v =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int v)))

let to_string v = Format.asprintf "%a" pp v
