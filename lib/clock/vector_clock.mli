(** Vector clocks over a fixed group of [n] processes.

    Vector timestamps characterise Lamport's happens-before exactly: for
    events [e], [f] with timestamps [V(e)], [V(f)], [e → f] iff
    [V(e) < V(f)] componentwise.  The Birman–Schiper–Stephenson causal
    broadcast baseline ({!Causalb_core.Bss}) piggybacks a vector clock on
    every message; experiment T6 compares the dependencies it *infers*
    against the explicit dependencies the application states via [OSend]. *)

type t

(** Result of comparing two vector timestamps under the causal partial
    order. *)
type ordering =
  | Before      (** strictly happens-before *)
  | After       (** strictly happens-after *)
  | Equal
  | Concurrent

val create : int -> t
(** [create n] is the zero vector for an [n]-process group.
    @raise Invalid_argument if [n <= 0]. *)

val size : t -> int

val get : t -> int -> int
(** Component for process [i].  @raise Invalid_argument if out of range. *)

val tick : t -> int -> t
(** [tick v i] increments component [i] — a local event at process [i]. *)

val merge : t -> t -> t
(** Componentwise maximum (least upper bound).
    @raise Invalid_argument on size mismatch. *)

val receive : local:t -> remote:t -> me:int -> t
(** Message-receipt rule: merge then tick own component.  One allocation
    (the result vector). *)

(** {1 In-place operations}

    Hot paths deliver one message per call and would otherwise allocate a
    fresh vector each time; these mutate an owned clock instead.  A clock
    obtained from a message stamp is shared — mutate only clocks this
    process created (via {!create}, {!copy}, {!of_array} or
    {!with_component}). *)

val copy : t -> t
(** An independent clock with the same components. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into v] sets [into] to the componentwise maximum of the
    two clocks.  Allocation-free.
    @raise Invalid_argument on size mismatch. *)

val receive_into : local:t -> remote:t -> me:int -> unit
(** In-place {!receive}: [local] becomes [merge local remote] with
    component [me] ticked.  Allocation-free; agrees with the pure
    {!receive} (property-tested in [test/test_clock.ml]). *)

val bump : t -> int -> unit
(** In-place {!tick}: increments component [i] without copying. *)

val with_component : t -> int -> int -> t
(** [with_component v i x] is a fresh clock equal to [v] except component
    [i] holds [x] — a snapshot in a single allocation.  The BSS stamp
    (delivered counts with the sender's own component swapped for its
    send count) is built with this. *)

val compare_causal : t -> t -> ordering

val leq : t -> t -> bool
(** [leq a b] iff [a] ≤ [b] componentwise. *)

val lt : t -> t -> bool
(** Strictly less: [leq] and differing in some component. *)

val concurrent : t -> t -> bool

val equal : t -> t -> bool

val dominates_all : t -> t list -> bool
(** [dominates_all v vs] iff every element of [vs] is ≤ [v]. *)

val of_array : int array -> t

val to_array : t -> int array

val pp : Format.formatter -> t -> unit

val to_string : t -> string
