module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Latency = Causalb_sim.Latency
module Engine = Causalb_sim.Engine
module Net = Causalb_net.Net
module Metrics = Causalb_stackbase.Metrics
module Heap = Causalb_util.Heap

let default_compare a b = Label.compare (Message.label a) (Message.label b)

(* Merge/Counted buffer in reversed arrival order and stable-sort once
   when the bracket closes (the seed's behaviour); the buffer size is a
   maintained counter, so the per-insert [List.length] walk and the
   length recomputation in the accessors are gone.  Timestamp, whose seed
   re-sorted the whole buffer on *every* insert, moves to a heap. *)
module Merge = struct
  type 'a t = {
    is_sync : 'a Message.t -> bool;
    compare : 'a Message.t -> 'a Message.t -> int;
    deliver : 'a Message.t -> unit;
    mutable buffer : 'a Message.t list;
    mutable size : int;
    mutable order_rev : Label.t list;
    mutable batches : int;
    metrics : Metrics.t;
  }

  let create ~is_sync ?(compare = default_compare) ?(deliver = fun _ -> ()) ()
      =
    {
      is_sync;
      compare;
      deliver;
      buffer = [];
      size = 0;
      order_rev = [];
      batches = 0;
      metrics = Metrics.create ~name:"total:merge" ();
    }

  let release t msg =
    t.order_rev <- Message.label msg :: t.order_rev;
    Metrics.on_deliver t.metrics;
    t.deliver msg

  let on_causal_deliver t msg =
    Metrics.on_receive t.metrics;
    if t.is_sync msg then begin
      let batch = List.sort t.compare (List.rev t.buffer) in
      t.buffer <- [];
      t.size <- 0;
      t.batches <- t.batches + 1;
      List.iter
        (fun m ->
          Metrics.on_unbuffer t.metrics;
          release t m)
        batch;
      (* the closing sync itself never waits *)
      release t msg
    end
    else begin
      Metrics.on_buffer t.metrics;
      t.buffer <- msg :: t.buffer;
      t.size <- t.size + 1
    end

  let total_order t = List.rev t.order_rev

  let buffered t = t.size

  let batches t = t.batches

  let metrics t = t.metrics

  (* Lattice declaration for the static stack verifier. *)
  let provides = Causalb_stackbase.Guarantee.Causal_total

  let requires = Causalb_stackbase.Guarantee.Causal
end

module Counted = struct
  type 'a t = {
    batch_size : int;
    compare : 'a Message.t -> 'a Message.t -> int;
    deliver : 'a Message.t -> unit;
    mutable buffer : 'a Message.t list;
    mutable size : int;
    mutable order_rev : Label.t list;
    mutable batches : int;
    metrics : Metrics.t;
  }

  let create ~batch_size ?(compare = default_compare)
      ?(deliver = fun _ -> ()) () =
    if batch_size <= 0 then
      invalid_arg "Asend.Counted.create: batch_size must be positive";
    {
      batch_size;
      compare;
      deliver;
      buffer = [];
      size = 0;
      order_rev = [];
      batches = 0;
      metrics = Metrics.create ~name:"total:counted" ();
    }

  let release t msg =
    t.order_rev <- Message.label msg :: t.order_rev;
    Metrics.on_deliver t.metrics;
    t.deliver msg

  let on_causal_deliver t msg =
    Metrics.on_receive t.metrics;
    (* the batch-completing arrival is released immediately; everything
       before it in the bracket had to wait *)
    if t.size + 1 = t.batch_size then begin
      let batch = List.sort t.compare (List.rev (msg :: t.buffer)) in
      for _ = 1 to t.size do
        Metrics.on_unbuffer t.metrics
      done;
      t.buffer <- [];
      t.size <- 0;
      t.batches <- t.batches + 1;
      List.iter (release t) batch
    end
    else begin
      Metrics.on_buffer t.metrics;
      t.buffer <- msg :: t.buffer;
      t.size <- t.size + 1
    end

  let total_order t = List.rev t.order_rev

  let buffered t = t.size

  let batches t = t.batches

  let metrics t = t.metrics

  (* Lattice declaration for the static stack verifier. *)
  let provides = Causalb_stackbase.Guarantee.Causal_total

  let requires = Causalb_stackbase.Guarantee.Causal
end

module Timestamp = struct
  module Lamport = Causalb_clock.Lamport

  type 'a item = { ts : Lamport.t; sender : int; tag : string; payload : 'a }

  type 'a envelope = Data of 'a item | Ack of { ts : Lamport.t; sender : int }

  type 'a station = {
    id : int;
    mutable clock : Lamport.t;
    mutable heard : Lamport.t array; (* highest clock heard per peer *)
    buffer : 'a item Heap.t;         (* min (ts, sender) first *)
    mutable delivered_rev : string list;
  }

  type 'a t = {
    net : 'a envelope Net.t;
    stations : 'a station array;
    on_deliver : node:int -> time:float -> tag:string -> 'a -> unit;
    mutable acks : int;
  }

  let item_compare a b =
    match Lamport.compare a.ts b.ts with
    | 0 -> Int.compare a.sender b.sender
    | c -> c

  (* An item is deliverable once every other member is known past its
     timestamp: no future arrival can sort before it. *)
  let covered st item =
    let ok = ref true in
    Array.iteri
      (fun p heard ->
        if p <> st.id && p <> item.sender && Lamport.compare heard item.ts <= 0
        then ok := false)
      st.heard;
    !ok

  let rec drain t st =
    match Heap.peek st.buffer with
    | Some item when covered st item ->
      ignore (Heap.pop st.buffer);
      st.delivered_rev <- item.tag :: st.delivered_rev;
      t.on_deliver ~node:st.id
        ~time:(Engine.now (Net.engine t.net))
        ~tag:item.tag item.payload;
      drain t st
    | Some _ | None -> ()

  let send_ack t st =
    st.clock <- Lamport.tick st.clock;
    t.acks <- t.acks + 1;
    Net.broadcast t.net ~src:st.id ~self:false
      (Ack { ts = st.clock; sender = st.id })

  let receive t st = function
    | Data item ->
      st.clock <- Lamport.receive ~local:st.clock ~remote:item.ts;
      st.heard.(item.sender) <- item.ts;
      Heap.push st.buffer item;
      (* the ack tells everyone our clock passed this timestamp *)
      send_ack t st;
      drain t st
    | Ack { ts; sender } ->
      st.clock <- Lamport.receive ~local:st.clock ~remote:ts;
      if Lamport.compare st.heard.(sender) ts < 0 then
        st.heard.(sender) <- ts;
      drain t st

  let create net ?(on_deliver = fun ~node:_ ~time:_ ~tag:_ _ -> ()) () =
    let n = Net.nodes net in
    let stations =
      Array.init n (fun id ->
          {
            id;
            clock = Lamport.zero;
            heard = Array.make n Lamport.zero;
            buffer = Heap.create ~cmp:item_compare ();
            delivered_rev = [];
          })
    in
    let t = { net; stations; on_deliver; acks = 0 } in
    for node = 0 to n - 1 do
      Net.set_handler net node (fun ~src:_ e -> receive t stations.(node) e)
    done;
    t

  let bcast t ~src ?(tag = "") payload =
    let st = t.stations.(src) in
    st.clock <- Lamport.tick st.clock;
    let item = { ts = st.clock; sender = src; tag; payload } in
    st.heard.(src) <- st.clock;
    Heap.push st.buffer item;
    Net.broadcast t.net ~src ~self:false (Data item);
    drain t st

  let delivered_tags t node = List.rev t.stations.(node).delivered_rev

  let pending t node = Heap.length t.stations.(node).buffer

  let acks_sent t = t.acks

  (* Lattice declaration for the static stack verifier. *)
  let provides = Causalb_stackbase.Guarantee.Causal_total

  let requires = Causalb_stackbase.Guarantee.Fifo
end

module Sequencer = struct
  type 'a t = {
    group : 'a Group.t;
    node : int;
    submit_latency : Latency.t;
    rng : Causalb_util.Rng.t;
    mutable last : Label.t option;
    mutable sequenced : int;
    metrics : Metrics.t;
  }

  let create group ?(node = 0) ?(submit_latency = Latency.lan) () =
    if node < 0 || node >= Group.size group then
      invalid_arg "Asend.Sequencer.create: node out of range";
    let engine = Net.engine (Group.net group) in
    {
      group;
      node;
      submit_latency;
      rng = Engine.fork_rng engine;
      last = None;
      sequenced = 0;
      metrics = Metrics.create ~name:"total:sequencer" ();
    }

  let broadcast_chained t ?name payload =
    let dep =
      match t.last with None -> Dep.null | Some l -> Dep.after l
    in
    let label = Group.osend t.group ~src:t.node ?name ~dep payload in
    t.last <- Some label;
    t.sequenced <- t.sequenced + 1;
    Metrics.on_deliver t.metrics

  let asend t ~src ?name payload =
    let engine = Net.engine (Group.net t.group) in
    Metrics.on_receive t.metrics;
    if src = t.node then broadcast_chained t ?name payload
    else begin
      (* Submission hop: one unicast delay to reach the sequencer. *)
      Metrics.on_buffer t.metrics;
      let delay = Latency.sample t.rng t.submit_latency in
      Engine.schedule engine ~delay (fun () ->
          Metrics.on_unbuffer t.metrics;
          broadcast_chained t ?name payload)
    end

  let sequenced t = t.sequenced

  let metrics t =
    t.metrics.Metrics.buffered <-
      t.metrics.Metrics.received - t.sequenced;
    t.metrics

  (* Lattice declaration for the static stack verifier. *)
  let provides = Causalb_stackbase.Guarantee.Causal_total

  let requires = Causalb_stackbase.Guarantee.Causal
end
