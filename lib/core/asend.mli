(** [ASend] — total ordering of spontaneously generated messages
    (paper §5.2, relation (5), and Fig. 4).

    The paper interposes a function between the causal broadcast layer and
    the application that (i) imposes an arbitrary delivery order on a set
    of concurrent messages and (ii) enforces that order identically at all
    members.  The total order is defined over a message set bracketed by
    an ascendant node [lbl_a] and a descendant node [lbl_d] of the
    dependency graph.  Because every member sees the same bracketed set
    (causal broadcast makes the graph stable information), sorting the set
    with a deterministic comparator yields the same sequence everywhere —
    {e without any extra protocol messages}.

    Three realisations:
    {ul
    {- {!Merge}: the bracket is closed by a {e sync} message that
       AND-depends on the whole set (the §6.1 access-protocol shape);}
    {- {!Counted}: the bracket is closed when a predetermined number of
       messages has arrived (the §6.2 arbitration shape — "on receiving
       specific predetermined number of LOCK messages");}
    {- {!Sequencer}: a conventional fixed-sequencer baseline that funnels
       every message through one member, for the cost comparison in
       experiment T1.}} *)

(** Sync-anchored deterministic merge.  Feed it each causally delivered
    message; spontaneous messages buffer until the closing sync message
    arrives, then the whole batch is released in sorted order followed by
    the sync message itself. *)
module Merge : sig
  type 'a t

  val create :
    is_sync:('a Message.t -> bool) ->
    ?compare:('a Message.t -> 'a Message.t -> int) ->
    ?deliver:('a Message.t -> unit) ->
    unit ->
    'a t
  (** [compare] defaults to {!Causalb_graph.Label.compare} on labels —
      any deterministic comparator gives a valid (arbitrary) total
      order, as the paper requires. *)

  val on_causal_deliver : 'a t -> 'a Message.t -> unit

  val total_order : 'a t -> Causalb_graph.Label.t list
  (** Labels in the (totally ordered) release sequence so far. *)

  val buffered : 'a t -> int
  (** Spontaneous messages awaiting their closing sync. *)

  val batches : 'a t -> int
  (** Completed brackets so far. *)

  val metrics : 'a t -> Causalb_stackbase.Metrics.t
  (** Uniform layer metrics (see {!Causalb_stack.Layer}). *)

  val provides : Causalb_stackbase.Guarantee.t
  (** [Causal_total] — identical release sequence at every member. *)

  val requires : Causalb_stackbase.Guarantee.t
  (** [Causal] — the bracketed set is stable information only under
      causal delivery; over a weaker feed members disagree on batches. *)
end

(** Count-closed deterministic merge: a batch is released once
    [batch_size] messages have been causally delivered. *)
module Counted : sig
  type 'a t

  val create :
    batch_size:int ->
    ?compare:('a Message.t -> 'a Message.t -> int) ->
    ?deliver:('a Message.t -> unit) ->
    unit ->
    'a t
  (** @raise Invalid_argument if [batch_size <= 0]. *)

  val on_causal_deliver : 'a t -> 'a Message.t -> unit

  val total_order : 'a t -> Causalb_graph.Label.t list

  val buffered : 'a t -> int

  val batches : 'a t -> int

  val metrics : 'a t -> Causalb_stackbase.Metrics.t
  (** Uniform layer metrics (see {!Causalb_stack.Layer}). *)

  val provides : Causalb_stackbase.Guarantee.t
  (** [Causal_total] — identical release sequence at every member. *)

  val requires : Causalb_stackbase.Guarantee.t
  (** [Causal] — count-closure picks the same batch everywhere only when
      every member sees the same causally ordered prefix. *)
end

(** Decentralised timestamp total order (Lamport 1978, the paper's
    reference [6]): every message carries the sender's Lamport clock;
    members deliver in [(timestamp, sender)] order once they have heard a
    higher clock value from {e every} other member (acknowledgement
    broadcasts fill the gaps).  No distinguished node, at the cost of
    n² ack traffic — the other classic point in the total-order design
    space, used by the ablation benches.

    Requires a per-link FIFO transport (each sender's timestamps must
    arrive non-decreasing). *)
module Timestamp : sig
  type 'a t

  type 'a envelope

  val create :
    'a envelope Causalb_net.Net.t ->
    ?on_deliver:(node:int -> time:float -> tag:string -> 'a -> unit) ->
    unit ->
    'a t

  val bcast : 'a t -> src:int -> ?tag:string -> 'a -> unit

  val delivered_tags : 'a t -> int -> string list

  val pending : 'a t -> int -> int
  (** Messages buffered at a node awaiting clock cover. *)

  val acks_sent : 'a t -> int

  val provides : Causalb_stackbase.Guarantee.t
  (** [Causal_total] — [(timestamp, sender)] order at every member. *)

  val requires : Causalb_stackbase.Guarantee.t
  (** [Fifo] — each sender's timestamps must arrive non-decreasing, so
      the transport below must be per-link FIFO. *)
end

(** Fixed-sequencer total order: members submit to a distinguished node
    (one extra unicast hop) which rebroadcasts on a causal chain — each
    broadcast [Occurs_After] the previous one, so causal delivery alone
    yields the identical sequence everywhere. *)
module Sequencer : sig
  type 'a t

  val create :
    'a Group.t ->
    ?node:int ->
    ?submit_latency:Causalb_sim.Latency.t ->
    unit ->
    'a t
  (** [node] (default 0) is the sequencer.  [submit_latency] (default
      {!Causalb_sim.Latency.lan}) models the submission hop for
      non-sequencer sources. *)

  val asend : 'a t -> src:int -> ?name:string -> 'a -> unit
  (** Submit a message for totally ordered broadcast.  Delivery arrives
      through the group's [on_deliver] callback. *)

  val sequenced : 'a t -> int
  (** Messages the sequencer has broadcast so far. *)

  val metrics : 'a t -> Causalb_stackbase.Metrics.t
  (** Uniform layer metrics: [received] counts submissions, [delivered]
      counts sequenced broadcasts, [buffered] is the in-flight gap. *)

  val provides : Causalb_stackbase.Guarantee.t
  (** [Causal_total] — the sequencer's causal chain is one sequence. *)

  val requires : Causalb_stackbase.Guarantee.t
  (** [Causal] — the chain rides [Occurs_After] predicates, so the layer
      below must deliver them causally (OSend). *)
end
