module Vc = Causalb_clock.Vector_clock
module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine
module Metrics = Causalb_stackbase.Metrics
module Sgroup = Causalb_stackbase.Sgroup
module Fqueue = Causalb_util.Fqueue

type 'a envelope = { sender : int; stamp : Vc.t; tag : string; payload : 'a }

(* A buffered envelope waits on per-origin counter thresholds: the
   sender's component must be reached exactly ([delivered.(s) = V.(s)-1])
   and every other component at least ([delivered.(k) >= V.(k)]).  Each
   unmet threshold is one registration in the reverse index; [unmet]
   counts registrations still unfired. *)
type 'a waiter = {
  env : 'a envelope;
  arrival : int;
  mutable unmet : int;
}

type 'a member = {
  id : int;
  n : int;
  deliver : 'a envelope -> unit;
  delivered : Vc.t; (* per-origin delivered count, mutated in place *)
  mutable own_sends : int;
  waiting : (int * int, 'a waiter Fqueue.t) Hashtbl.t;
      (* (origin, value) -> waiters woken when delivered.(origin)
         reaches value; counters move by one, so each bucket fires
         exactly once *)
  mutable arrivals : int;
  mutable tags_rev : string list;
  metrics : Metrics.t;
}

let member ~id ~group_size ?(deliver = fun _ -> ()) () =
  if group_size <= 0 then invalid_arg "Bss.member: group_size must be positive";
  {
    id;
    n = group_size;
    deliver;
    delivered = Vc.create group_size;
    own_sends = 0;
    waiting = Hashtbl.create 64;
    arrivals = 0;
    tags_rev = [];
    metrics = Metrics.create ~name:"causal:bss" ();
  }

let deliverable t (e : 'a envelope) =
  let ok = ref (Vc.get e.stamp e.sender = Vc.get t.delivered e.sender + 1) in
  for k = 0 to t.n - 1 do
    if k <> e.sender && Vc.get e.stamp k > Vc.get t.delivered k then ok := false
  done;
  !ok

let wake t key woken =
  (* empty-index guard: on fully-deliverable traffic no one is parked,
     and the per-delivery key allocation + lookup would be pure overhead *)
  if Hashtbl.length t.waiting = 0 then ()
  else
    match Hashtbl.find_opt t.waiting key with
    | None -> ()
    | Some bucket ->
    Hashtbl.remove t.waiting key;
    Fqueue.iter
      (fun w ->
        if w.unmet > 0 then begin
          w.unmet <- w.unmet - 1;
          if w.unmet = 0 then woken := w :: !woken
        end)
      bucket

let do_deliver t woken e =
  let v = Vc.get t.delivered e.sender + 1 in
  Vc.bump t.delivered e.sender;
  t.tags_rev <- e.tag :: t.tags_rev;
  Metrics.on_deliver t.metrics;
  t.deliver e;
  wake t (e.sender, v) woken

(* Generation cascade, bit-identical to the seed's repeated pool sweep.
   Readiness is evaluated against generation-start state before any of
   the generation delivers (the seed partitioned first, then released),
   and releases follow arrival order.  A candidate that is no longer
   deliverable had its sender-equality overshot by a duplicate — the
   seed kept such envelopes pending forever, so it is dropped from the
   index but stays in the buffered count. *)
let rec drain t woken =
  match woken with
  | [] -> ()
  | gen ->
    let gen = List.sort (fun a b -> Int.compare a.arrival b.arrival) gen in
    let ready = List.filter (fun w -> deliverable t w.env) gen in
    let next = ref [] in
    List.iter
      (fun w ->
        Metrics.on_unbuffer t.metrics;
        do_deliver t next w.env)
      ready;
    drain t !next

let park t e =
  Metrics.on_buffer t.metrics;
  let arrival = t.arrivals in
  t.arrivals <- arrival + 1;
  let w = { env = e; arrival; unmet = 0 } in
  let register key =
    w.unmet <- w.unmet + 1;
    let bucket =
      match Hashtbl.find_opt t.waiting key with
      | Some q -> q
      | None ->
        let q = Fqueue.create () in
        Hashtbl.add t.waiting key q;
        q
    in
    Fqueue.push bucket w
  in
  let s = e.sender in
  if Vc.get t.delivered s < Vc.get e.stamp s - 1 then
    register (s, Vc.get e.stamp s - 1);
  for k = 0 to t.n - 1 do
    if k <> s && Vc.get t.delivered k < Vc.get e.stamp k then
      register (k, Vc.get e.stamp k)
  done

let receive t e =
  Metrics.on_receive t.metrics;
  (* Duplicate or stale copies (stamp component not above the delivered
     count) are discarded. *)
  if Vc.get e.stamp e.sender <= Vc.get t.delivered e.sender then ()
  else if deliverable t e then begin
    let woken = ref [] in
    do_deliver t woken e;
    drain t !woken
  end
  else park t e

let delivered_tags t = List.rev t.tags_rev

let delivered_count t = t.metrics.Metrics.delivered

let pending_count t = t.metrics.Metrics.buffered

let buffered_ever t = t.metrics.Metrics.forced_waits

let metrics t = t.metrics

let clock t =
  (* Own component counts own sends (each send ticks it); the other
     components are the per-origin delivered counts — everything the
     member has potentially been influenced by.  One allocation: the
     stamp snapshot itself (the seed path copied the counts and then
     [of_array] copied them again). *)
  Vc.with_component t.delivered t.id t.own_sends

let next_envelope t ?(tag = "") payload =
  t.own_sends <- t.own_sends + 1;
  (* Stamp: delivered counts with own component = own send count.  This
     is the classic BSS stamp — it encodes everything the sender has
     delivered (potential causes) plus its own send sequence. *)
  { sender = t.id; stamp = clock t; tag; payload }

module Group = struct
  type 'a t = ('a member, 'a envelope) Sgroup.t

  let create net ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
    let n = Net.nodes net in
    let engine = Net.engine net in
    Sgroup.create net
      ~member:(fun node ->
        let deliver e = on_deliver ~node ~time:(Engine.now engine) e in
        member ~id:node ~group_size:n ~deliver ())
      ~receive

  let size = Sgroup.size

  let bcast t ~src ?tag payload =
    let e = next_envelope (Sgroup.member t src) ?tag payload in
    Net.broadcast (Sgroup.net t) ~src e

  let member = Sgroup.member

  let delivered_tags t i = delivered_tags (Sgroup.member t i)
end

(* Lattice declaration for the static stack verifier. *)
let provides = Causalb_stackbase.Guarantee.Causal

let requires = Causalb_stackbase.Guarantee.Unordered
