module Vc = Causalb_clock.Vector_clock
module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine
module Metrics = Causalb_stackbase.Metrics
module Sgroup = Causalb_stackbase.Sgroup

type 'a envelope = { sender : int; stamp : Vc.t; tag : string; payload : 'a }

type 'a member = {
  id : int;
  n : int;
  deliver : 'a envelope -> unit;
  mutable delivered : int array; (* per-origin delivered count *)
  mutable own_sends : int;
  mutable pending : 'a envelope list; (* arrival order, reversed *)
  mutable tags_rev : string list;
  metrics : Metrics.t;
}

let member ~id ~group_size ?(deliver = fun _ -> ()) () =
  if group_size <= 0 then invalid_arg "Bss.member: group_size must be positive";
  {
    id;
    n = group_size;
    deliver;
    delivered = Array.make group_size 0;
    own_sends = 0;
    pending = [];
    tags_rev = [];
    metrics = Metrics.create ~name:"causal:bss" ();
  }

let deliverable t (e : 'a envelope) =
  let ok = ref (Vc.get e.stamp e.sender = t.delivered.(e.sender) + 1) in
  for k = 0 to t.n - 1 do
    if k <> e.sender && Vc.get e.stamp k > t.delivered.(k) then ok := false
  done;
  !ok

let do_deliver t e =
  t.delivered.(e.sender) <- t.delivered.(e.sender) + 1;
  t.tags_rev <- e.tag :: t.tags_rev;
  Metrics.on_deliver t.metrics;
  t.deliver e

let rec drain t =
  let pending = List.rev t.pending in
  let ready, blocked = List.partition (deliverable t) pending in
  if ready <> [] then begin
    t.pending <- List.rev blocked;
    List.iter
      (fun e ->
        Metrics.on_unbuffer t.metrics;
        do_deliver t e)
      ready;
    drain t
  end

let receive t e =
  Metrics.on_receive t.metrics;
  (* Duplicate or stale copies (stamp component not above the delivered
     count) are discarded. *)
  if Vc.get e.stamp e.sender <= t.delivered.(e.sender) then ()
  else if deliverable t e then begin
    do_deliver t e;
    drain t
  end
  else begin
    Metrics.on_buffer t.metrics;
    t.pending <- e :: t.pending
  end

let delivered_tags t = List.rev t.tags_rev

let delivered_count t = t.metrics.Metrics.delivered

let pending_count t = List.length t.pending

let buffered_ever t = t.metrics.Metrics.forced_waits

let metrics t =
  t.metrics.Metrics.buffered <- List.length t.pending;
  t.metrics

let clock t =
  (* Own component counts own sends (each send ticks it); the other
     components are the per-origin delivered counts — everything the
     member has potentially been influenced by. *)
  let v = Array.copy t.delivered in
  v.(t.id) <- t.own_sends;
  Vc.of_array v

module Group = struct
  type 'a t = ('a member, 'a envelope) Sgroup.t

  let create net ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
    let n = Net.nodes net in
    let engine = Net.engine net in
    Sgroup.create net
      ~member:(fun node ->
        let deliver e = on_deliver ~node ~time:(Engine.now engine) e in
        member ~id:node ~group_size:n ~deliver ())
      ~receive

  let size = Sgroup.size

  let bcast t ~src ?(tag = "") payload =
    let m = Sgroup.member t src in
    m.own_sends <- m.own_sends + 1;
    (* Stamp: delivered counts with own component = own send count.  This
       is the classic BSS stamp — it encodes everything the sender has
       delivered (potential causes) plus its own send sequence. *)
    let stamp = clock m in
    let e = { sender = src; stamp; tag; payload } in
    Net.broadcast (Sgroup.net t) ~src e

  let member = Sgroup.member

  let delivered_tags t i = delivered_tags (Sgroup.member t i)
end
