(** Vector-clock causal broadcast — the Birman–Schiper–Stephenson CBCAST
    baseline (paper reference [7]).

    Unlike [OSend], the application states no dependencies: the protocol
    {e infers} causality from the potential-causality order of the
    execution (everything a sender had delivered before sending is treated
    as a dependency).  Footnote 1 of the paper (and reference [9]) argues
    this "incidental ordering" over-constrains delivery; experiment T6
    quantifies the effect by running the same workload through both
    engines and counting forced waits that the semantic graph does not
    require.

    Delivery rule at member [p] for a message from [q] stamped [V]:
    [V.(q) = D.(q) + 1] and [V.(k) <= D.(k)] for all [k <> q], where [D]
    counts the messages [p] has delivered per origin. *)

type 'a envelope = {
  sender : int;
  stamp : Causalb_clock.Vector_clock.t;
  tag : string;      (** correlation tag for traces and experiments *)
  payload : 'a;
}

type 'a member

val member :
  id:int -> group_size:int -> ?deliver:('a envelope -> unit) -> unit ->
  'a member

val receive : 'a member -> 'a envelope -> unit

val delivered_tags : 'a member -> string list

val delivered_count : 'a member -> int

val pending_count : 'a member -> int

val buffered_ever : 'a member -> int
(** Messages that could not be delivered on arrival and had to wait — the
    forced-wait counter of T6. *)

val metrics : 'a member -> Causalb_stackbase.Metrics.t
(** The member's uniform layer metrics (see {!Causalb_stack.Layer}). *)

val provides : Causalb_stackbase.Guarantee.t
(** [Causal] — vector-clock potential causality. *)

val requires : Causalb_stackbase.Guarantee.t
(** [Unordered] — stamps carry all the ordering the layer needs. *)

val clock : 'a member -> Causalb_clock.Vector_clock.t
(** The member's current vector clock (delivered counts + own sends). *)

val next_envelope : 'a member -> ?tag:string -> 'a -> 'a envelope
(** Tick the member's send counter and stamp a fresh envelope with its
    clock — the sending half of {!Group.bcast}, split out so framed
    transports ({!Causalb_core.Fgroup}) can stamp once, encode once, and
    hand the frame to [Net.bcast] themselves. *)

(** Group wrapper wiring members over the simulated network. *)
module Group : sig
  type 'a t

  val create :
    'a envelope Causalb_net.Net.t ->
    ?on_deliver:(node:int -> time:float -> 'a envelope -> unit) ->
    unit ->
    'a t

  val size : 'a t -> int

  val bcast : 'a t -> src:int -> ?tag:string -> 'a -> unit
  (** Stamp with the sender's clock (own component ticked) and broadcast,
      including a local copy. *)

  val member : 'a t -> int -> 'a member

  val delivered_tags : 'a t -> int -> string list
end
