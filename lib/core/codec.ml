(* Binary codecs for the protocol's wire values, on the Wire primitives.

   Layering note: Wire (lib/util) knows nothing about labels, deps or
   clocks — those sit above it — so the per-type codecs live here in
   lib/core, next to Message/Bss, and Fgroup composes them into the
   encode-once/decode-many delivery path.

   The decode side reconstructs values through the same smart
   constructors the senders used ([Label.make], [Dep.after_all],
   [Message.make]), so a decoded value satisfies exactly the invariants
   a locally built one does — and a frame corrupted into violating them
   fails in the constructor instead of poisoning an engine. *)

module Wire = Causalb_util.Wire
module Vc = Causalb_clock.Vector_clock
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep

type 'a enc = Wire.writer -> 'a -> unit

type 'a dec = Wire.reader -> 'a

(* --- payload codecs --- *)

let put_str = Wire.str

let get_str = Wire.r_str

let put_int = Wire.int

let get_int = Wire.r_int

let put_unit (_ : Wire.writer) () = ()

let get_unit (_ : Wire.reader) = ()

(* --- vector clocks --- *)

let put_clock w v =
  let n = Vc.size v in
  Wire.uint w n;
  for i = 0 to n - 1 do
    Wire.uint w (Vc.get v i)
  done

let get_clock r =
  let n = Wire.r_uint r in
  if n = 0 then raise (Wire.Corrupt "clock of size 0");
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    a.(i) <- Wire.r_uint r
  done;
  Vc.of_array a

(* --- labels --- *)

let put_label w l =
  Wire.uint w (Label.origin l);
  Wire.uint w (Label.seq l);
  match Label.display l with
  | None -> Wire.bool_ w false
  | Some name ->
    Wire.bool_ w true;
    Wire.str w name

let get_label r =
  let origin = Wire.r_uint r in
  let seq = Wire.r_uint r in
  let name = if Wire.r_bool r then Some (Wire.r_str r) else None in
  Label.make ?name ~origin ~seq ()

(* --- dependency predicates --- *)

let put_labels w ls =
  Wire.uint w (List.length ls);
  List.iter (put_label w) ls

let get_labels r =
  let n = Wire.r_uint r in
  List.init n (fun _ -> get_label r)

let put_dep w = function
  | Dep.Null -> Wire.u8 w 0
  | Dep.After l ->
    Wire.u8 w 1;
    put_label w l
  | Dep.After_all ls ->
    Wire.u8 w 2;
    put_labels w ls
  | Dep.After_any ls ->
    Wire.u8 w 3;
    put_labels w ls

(* [after_all]/[after_any] re-canonicalise (dedup + sort); senders only
   ever put canonical deps on the wire, so this is the identity there,
   and it repairs rather than trusts a hand-crafted frame. *)
let get_dep r =
  match Wire.r_u8 r with
  | 0 -> Dep.null
  | 1 -> Dep.after (get_label r)
  | 2 -> Dep.after_all (get_labels r)
  | 3 -> Dep.after_any (get_labels r)
  | tag -> raise (Wire.Corrupt (Printf.sprintf "bad dep tag %d" tag))

(* --- messages (OSend/Psync traffic) --- *)

let put_message_header w m =
  put_label w (Message.label m);
  Wire.uint w (Message.sender m);
  put_dep w (Message.dep m)

let put_message put_payload w m =
  put_message_header w m;
  put_payload w (Message.payload m)

let get_message get_payload r =
  let label = get_label r in
  let sender = Wire.r_uint r in
  let dep = get_dep r in
  let payload = get_payload r in
  Message.make ~label ~sender ~dep payload

(* --- BSS envelopes --- *)

(* Every envelope codec here puts the application payload last, so one
   writer mark ([Wire.written]) before it splits the frame into control
   and payload spans — see [encode_split]. *)
let put_envelope_header w (e : 'a Bss.envelope) =
  Wire.uint w e.Bss.sender;
  put_clock w e.Bss.stamp;
  Wire.str w e.Bss.tag

let put_envelope put_payload w (e : 'a Bss.envelope) =
  put_envelope_header w e;
  put_payload w e.Bss.payload

let get_envelope get_payload r =
  let sender = Wire.r_uint r in
  let stamp = get_clock r in
  let tag = Wire.r_str r in
  let payload = get_payload r in
  { Bss.sender; stamp; tag; payload }

(* --- PC-broadcast wire values --- *)

(* The whole point: the header is two varints plus the tag, independent
   of group size.  One leading byte discriminates the wire cases; the
   App payload (and only it) counts as payload bytes. *)
let put_pc_header w (e : 'a Pcbcast.envelope) =
  Wire.uint w e.Pcbcast.origin;
  Wire.uint w e.Pcbcast.seq;
  Wire.str w e.Pcbcast.tag

let put_pc put_payload w = function
  | Pcbcast.Lock -> Wire.u8 w 0
  | Pcbcast.Env e -> (
    match e.Pcbcast.body with
    | Pcbcast.App p ->
      Wire.u8 w 1;
      put_pc_header w e;
      put_payload w p
    | Pcbcast.Ctrl (Pcbcast.Unlock { target }) ->
      Wire.u8 w 2;
      put_pc_header w e;
      Wire.uint w target
    | Pcbcast.Ctrl (Pcbcast.Joined { node }) ->
      Wire.u8 w 3;
      put_pc_header w e;
      Wire.uint w node)

let get_pc get_payload r =
  let env body =
    let origin = Wire.r_uint r in
    let seq = Wire.r_uint r in
    let tag = Wire.r_str r in
    let body = body () in
    Pcbcast.Env { Pcbcast.origin; seq; tag; body }
  in
  match Wire.r_u8 r with
  | 0 -> Pcbcast.Lock
  | 1 -> env (fun () -> Pcbcast.App (get_payload r))
  | 2 ->
    env (fun () ->
        Pcbcast.Ctrl (Pcbcast.Unlock { target = Wire.r_uint r }))
  | 3 ->
    env (fun () -> Pcbcast.Ctrl (Pcbcast.Joined { node = Wire.r_uint r }))
  | tag -> raise (Wire.Corrupt (Printf.sprintf "bad pc wire tag %d" tag))

(* --- whole-frame helpers --- *)

let encode pool enc v =
  let w = Wire.writer pool in
  enc w v;
  Wire.finish w

(* Encode with the control/payload boundary measured: [header] writes
   everything up to the payload, [payload] the rest.  Returns the frame
   and the payload's encoded span; control bytes are the difference. *)
let encode_split pool ~header ~payload v =
  let w = Wire.writer pool in
  header w v;
  let mark = Wire.written w in
  payload w v;
  let span = Wire.written w - mark in
  (Wire.finish w, span)

(* [put_pc] with the payload span measured in the same pass — only App
   envelopes carry payload bytes; every other wire case is pure
   control. *)
let encode_pc pool put_payload wv =
  let w = Wire.writer pool in
  let span =
    match wv with
    | Pcbcast.Lock ->
      Wire.u8 w 0;
      0
    | Pcbcast.Env e -> (
      match e.Pcbcast.body with
      | Pcbcast.App p ->
        Wire.u8 w 1;
        put_pc_header w e;
        let mark = Wire.written w in
        put_payload w p;
        Wire.written w - mark
      | Pcbcast.Ctrl (Pcbcast.Unlock { target }) ->
        Wire.u8 w 2;
        put_pc_header w e;
        Wire.uint w target;
        0
      | Pcbcast.Ctrl (Pcbcast.Joined { node }) ->
        Wire.u8 w 3;
        put_pc_header w e;
        Wire.uint w node;
        0)
  in
  (Wire.finish w, span)

let decode dec frame =
  let r = Wire.reader frame in
  let v = dec r in
  Wire.expect_end r;
  v

(* --- shared decoded views --- *)

type 'a framed = {
  frame : Wire.frame;
  payload_bytes : int option;
      (* encoded span of the application payload within [frame]
         ([encode_split]); [None] when the producer did not measure —
         the charge then lands unsplit *)
  mutable view : 'a option;
}

let framed ?payload_bytes frame = { frame; payload_bytes; view = None }

let view fr ~dec =
  match fr.view with
  | Some v -> v
  | None ->
    let v = decode dec fr.frame in
    fr.view <- Some v;
    v
