(** Binary codecs for the protocol's wire values.

    {!Causalb_util.Wire} provides the primitives (pooled writers,
    immutable frames, bounds-checked readers); this module provides the
    codecs for the values that actually cross the simulated wire —
    vector clocks, labels, dependency predicates, [Message.t] and
    [Bss.envelope] — plus the {!framed} wrapper {!Fgroup} broadcasts, a
    frame paired with a memoized decoded view so a fan-out of [n] copies
    decodes once, not [n] times.

    Every codec is a [put]/[get] pair with [get (put v) = v] (the qcheck
    round-trip property in [test/test_wire.ml]); [get] on a truncated or
    corrupted frame raises [Wire.Corrupt] or the violated constructor's
    [Invalid_argument], never returns garbage. *)

module Wire := Causalb_util.Wire

type 'a enc = Wire.writer -> 'a -> unit

type 'a dec = Wire.reader -> 'a

(** {1 Payload codecs} *)

val put_str : string enc

val get_str : string dec

val put_int : int enc

val get_int : int dec

val put_unit : unit enc

val get_unit : unit dec

(** {1 Protocol values} *)

val put_clock : Causalb_clock.Vector_clock.t enc

val get_clock : Causalb_clock.Vector_clock.t dec

val put_label : Causalb_graph.Label.t enc
(** Origin, sequence number, and the optional display name — the display
    round-trips exactly, so printed delivered orders are byte-identical
    across a codec hop. *)

val get_label : Causalb_graph.Label.t dec

val put_dep : Causalb_graph.Dep.t enc

val get_dep : Causalb_graph.Dep.t dec
(** Rebuilds through [Dep.after_all]/[after_any], so the decoded
    predicate is canonical (deduped, sorted) like every locally built
    one. *)

val put_message : 'a enc -> 'a Message.t enc

val get_message : 'a dec -> 'a Message.t dec

val put_message_header : 'a Message.t enc
(** Label, sender and dependency predicate — the control span of an
    OSend/Psync frame ([put_message] is this followed by the payload). *)

val put_envelope : 'a enc -> 'a Bss.envelope enc

val get_envelope : 'a dec -> 'a Bss.envelope dec

val put_envelope_header : 'a Bss.envelope enc
(** Everything but the payload (sender, stamp, tag) — the control span
    of a BSS frame, O(n) because of the stamp.  [put_envelope] is this
    followed by the payload; pair them through {!encode_split}. *)

val put_pc : 'a enc -> 'a Pcbcast.wire enc
(** PC-broadcast wire codec: one discriminator byte, then the
    constant-size header (origin and seq varints, tag) and the case's
    body.  Control frames ([Lock], barriers, joins) are all control
    bytes. *)

val get_pc : 'a dec -> 'a Pcbcast.wire dec

val put_pc_header : 'a Pcbcast.envelope enc
(** The constant-size control span of an envelope (origin, seq, tag) —
    what the scaling sweep measures against [put_envelope_header]. *)

(** {1 Whole frames} *)

val encode : Wire.pool -> 'a enc -> 'a -> Wire.frame
(** One pooled writer, one sealed frame. *)

val encode_pc : Wire.pool -> 'a enc -> 'a Pcbcast.wire -> Wire.frame * int
(** {!put_pc} with the App payload span measured in the same pass —
    returns [(frame, payload_bytes)]; control frames measure 0. *)

val encode_split :
  Wire.pool -> header:'a enc -> payload:'a enc -> 'a -> Wire.frame * int
(** Encode [header] then [payload] into one frame, measuring the
    payload's encoded span with a writer mark — no second encode.
    Returns the frame and the payload byte count; the control share is
    [Wire.length frame - span].  Feed the span to {!framed} so
    receivers can charge {!Causalb_stackbase.Metrics.on_wire_split}. *)

val decode : 'a dec -> Wire.frame -> 'a
(** Decode a whole frame; raises [Wire.Corrupt] on trailing bytes. *)

(** {1 Shared decoded views}

    The encode-once/decode-many discipline: a broadcast enqueues one
    {!framed} value to every recipient; the first receiver decodes and
    the rest reuse the memoized view — zero per-recipient stamp
    allocation, matching the in-memory sharing the plain groups already
    rely on (stamps are documented read-only). *)

type 'a framed = {
  frame : Wire.frame;
  payload_bytes : int option;
      (** encoded span of the application payload within [frame], from
          {!encode_split}; [None] when unmeasured, in which case byte
          charges stay unsplit *)
  mutable view : 'a option;
}

val framed : ?payload_bytes:int -> Wire.frame -> 'a framed

val view : 'a framed -> dec:'a dec -> 'a
(** The decoded value, decoding (and memoizing) on first use. *)
