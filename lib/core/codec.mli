(** Binary codecs for the protocol's wire values.

    {!Causalb_util.Wire} provides the primitives (pooled writers,
    immutable frames, bounds-checked readers); this module provides the
    codecs for the values that actually cross the simulated wire —
    vector clocks, labels, dependency predicates, [Message.t] and
    [Bss.envelope] — plus the {!framed} wrapper {!Fgroup} broadcasts, a
    frame paired with a memoized decoded view so a fan-out of [n] copies
    decodes once, not [n] times.

    Every codec is a [put]/[get] pair with [get (put v) = v] (the qcheck
    round-trip property in [test/test_wire.ml]); [get] on a truncated or
    corrupted frame raises [Wire.Corrupt] or the violated constructor's
    [Invalid_argument], never returns garbage. *)

module Wire := Causalb_util.Wire

type 'a enc = Wire.writer -> 'a -> unit

type 'a dec = Wire.reader -> 'a

(** {1 Payload codecs} *)

val put_str : string enc

val get_str : string dec

val put_int : int enc

val get_int : int dec

val put_unit : unit enc

val get_unit : unit dec

(** {1 Protocol values} *)

val put_clock : Causalb_clock.Vector_clock.t enc

val get_clock : Causalb_clock.Vector_clock.t dec

val put_label : Causalb_graph.Label.t enc
(** Origin, sequence number, and the optional display name — the display
    round-trips exactly, so printed delivered orders are byte-identical
    across a codec hop. *)

val get_label : Causalb_graph.Label.t dec

val put_dep : Causalb_graph.Dep.t enc

val get_dep : Causalb_graph.Dep.t dec
(** Rebuilds through [Dep.after_all]/[after_any], so the decoded
    predicate is canonical (deduped, sorted) like every locally built
    one. *)

val put_message : 'a enc -> 'a Message.t enc

val get_message : 'a dec -> 'a Message.t dec

val put_envelope : 'a enc -> 'a Bss.envelope enc

val get_envelope : 'a dec -> 'a Bss.envelope dec

(** {1 Whole frames} *)

val encode : Wire.pool -> 'a enc -> 'a -> Wire.frame
(** One pooled writer, one sealed frame. *)

val decode : 'a dec -> Wire.frame -> 'a
(** Decode a whole frame; raises [Wire.Corrupt] on trailing bytes. *)

(** {1 Shared decoded views}

    The encode-once/decode-many discipline: a broadcast enqueues one
    {!framed} value to every recipient; the first receiver decodes and
    the rest reuse the memoized view — zero per-recipient stamp
    allocation, matching the in-memory sharing the plain groups already
    rely on (stamps are documented read-only). *)

type 'a framed = { frame : Wire.frame; mutable view : 'a option }

val framed : Wire.frame -> 'a framed

val view : 'a framed -> dec:'a dec -> 'a
(** The decoded value, decoding (and memoizing) on first use. *)
