(* Framed group wrappers: the encode-once/decode-many delivery path.

   The plain Group/Bss.Group/Psync wrappers hand the in-memory message
   value to Net and every recipient shares the pointer — free, but it
   measures nothing about serialization, and a real transport pays an
   encode per message and (naively) a decode per recipient.  These
   wrappers put the codec on the path the way the Beehive
   hardware-broadcast idiom does: the sender stamps once and encodes
   once (pooled writer), Net.bcast fans the one immutable frame out to
   every recipient, and the recipients decode a *shared* view — first
   toucher decodes, the rest reuse — so the per-recipient cost is a
   pointer, like the plain path, while the per-message cost is one real
   encode + one real decode, all of it measured:

   - Net.bytes_sent counts real frame lengths (Net.bcast ~size), and
   - each member's Metrics.wire_bytes counts frame length per received
     copy, so Metrics.bytes_per_delivery is the §6.1 metadata cost per
     delivery (cf. Nédelec et al. on causal-broadcast metadata).

   Determinism: Net.bcast is broadcast's own copy loop, so a framed
   group makes exactly the RNG draws the plain group makes for the same
   workload — delivered orders must be identical envelope-for-envelope,
   which test/test_wire.ml asserts against the plain groups and (through
   them) the frozen lib/reference oracle. *)

module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Metrics = Causalb_stackbase.Metrics
module Sgroup = Causalb_stackbase.Sgroup
module Wire = Causalb_util.Wire
module Depgraph = Causalb_graph.Depgraph
module B = Bss
module O = Osend
module P = Pcbcast

(* Per-copy byte charge, split into control/payload when the producer
   measured the boundary ([Codec.encode_split]); the sum always lands in
   [wire_bytes] either way. *)
let charge metrics fr =
  let len = Wire.length fr.Codec.frame in
  match fr.Codec.payload_bytes with
  | None -> Metrics.on_wire metrics len
  | Some payload ->
    Metrics.on_wire_split metrics ~control:(len - payload) ~payload

(* --- framed BSS: vector-stamped causal broadcast over frames --- *)

module Bss = struct
  type 'a t = {
    sg : ('a B.member, 'a B.envelope Codec.framed) Sgroup.t;
    pool : Wire.pool;
    put_payload : 'a B.envelope Codec.enc;
  }

  let create net ~enc ~dec ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
    let n = Net.nodes net in
    let engine = Net.engine net in
    let get = Codec.get_envelope dec in
    let sg =
      Sgroup.create net
        ~member:(fun node ->
          let deliver e = on_deliver ~node ~time:(Engine.now engine) e in
          B.member ~id:node ~group_size:n ~deliver ())
        ~receive:(fun m fr ->
          charge (B.metrics m) fr;
          B.receive m (Codec.view fr ~dec:get))
    in
    { sg;
      pool = Wire.pool ();
      put_payload = (fun w e -> enc w e.B.payload) }

  let size t = Sgroup.size t.sg

  let member t i = Sgroup.member t.sg i

  let bcast t ~src ?tag payload =
    let e = B.next_envelope (Sgroup.member t.sg src) ?tag payload in
    let frame, span =
      Codec.encode_split t.pool ~header:Codec.put_envelope_header
        ~payload:t.put_payload e
    in
    Net.bcast (Sgroup.net t.sg) ~src ~size:(Wire.length frame)
      (Codec.framed ~payload_bytes:span frame)

  let delivered_tags t i = B.delivered_tags (Sgroup.member t.sg i)

  let metrics t i = B.metrics (Sgroup.member t.sg i)

  let wire_bytes t =
    Sgroup.fold (fun acc m -> acc + (B.metrics m).Metrics.wire_bytes) 0 t.sg
end

(* --- framed OSend: explicit-dependency broadcast over frames --- *)

module Osend = struct
  type 'a t = {
    sg : ('a O.t, 'a Message.t Codec.framed) Sgroup.t;
    seqs : int array;
    pool : Wire.pool;
    put_payload : 'a Message.t Codec.enc;
  }

  let create net ~enc ~dec ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
    let engine = Net.engine net in
    let get = Codec.get_message dec in
    let sg =
      Sgroup.create net
        ~member:(fun node ->
          let deliver msg = on_deliver ~node ~time:(Engine.now engine) msg in
          O.create ~id:node ~deliver ())
        ~receive:(fun m fr ->
          charge (O.metrics m) fr;
          O.receive m (Codec.view fr ~dec:get))
    in
    { sg; seqs = Array.make (Net.nodes net) 0; pool = Wire.pool ();
      put_payload = (fun w m -> enc w (Message.payload m)) }

  let size t = Sgroup.size t.sg

  let member t i = Sgroup.member t.sg i

  let osend t ~src ?name ~dep payload =
    let seq = t.seqs.(src) in
    t.seqs.(src) <- seq + 1;
    let label = Label.make ?name ~origin:src ~seq () in
    let msg = Message.make ~label ~sender:src ~dep payload in
    let frame, span =
      Codec.encode_split t.pool ~header:Codec.put_message_header
        ~payload:t.put_payload msg
    in
    (* self copy rides the frame too (plain Group broadcasts with
       [self = true]): the sender decodes its own stamp back, proving
       the codec on every delivered message, not just remote ones *)
    Net.bcast (Sgroup.net t.sg) ~src ~size:(Wire.length frame)
      (Codec.framed ~payload_bytes:span frame);
    label

  let delivered_order t i = O.delivered_order (Sgroup.member t.sg i)

  let all_delivered_orders t =
    List.init (size t) (fun i -> delivered_order t i)

  let metrics t i = O.metrics (Sgroup.member t.sg i)

  let wire_bytes t =
    Sgroup.fold (fun acc m -> acc + (O.metrics m).Metrics.wire_bytes) 0 t.sg
end

(* --- framed Psync: conversation-context broadcast over frames --- *)

module Psync = struct
  type 'a member = {
    id : int;
    engine_member : 'a O.t;
    mutable leaves : Label.Set.t;
  }

  type 'a t = {
    sg : ('a member, 'a Message.t Codec.framed) Sgroup.t;
    seqs : int array;
    pool : Wire.pool;
    put_payload : 'a Message.t Codec.enc;
  }

  (* Identical context rule to the plain Psync: leaves of *received*
     messages form the next send's dependency. *)
  let note_received m msg =
    let ancestors = Dep.ancestors (Message.dep msg) in
    m.leaves <-
      Label.Set.add (Message.label msg)
        (List.fold_left
           (fun acc a -> Label.Set.remove a acc)
           m.leaves ancestors)

  let create net ~enc ~dec ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
    let engine = Net.engine net in
    let get = Codec.get_message dec in
    let sg =
      Sgroup.create net
        ~member:(fun id ->
          let deliver msg = on_deliver ~node:id ~time:(Engine.now engine) msg in
          { id; engine_member = O.create ~id ~deliver (); leaves = Label.Set.empty })
        ~receive:(fun m fr ->
          charge (O.metrics m.engine_member) fr;
          let msg = Codec.view fr ~dec:get in
          note_received m msg;
          O.receive m.engine_member msg)
    in
    { sg; seqs = Array.make (Net.nodes net) 0; pool = Wire.pool ();
      put_payload = (fun w m -> enc w (Message.payload m)) }

  let size t = Sgroup.size t.sg

  let member t i = (Sgroup.member t.sg i).engine_member

  let send t ~src ?name payload =
    let m = Sgroup.member t.sg src in
    let seq = t.seqs.(src) in
    t.seqs.(src) <- seq + 1;
    let label = Label.make ?name ~origin:src ~seq () in
    let context = Label.Set.elements m.leaves in
    let msg =
      Message.make ~label ~sender:src ~dep:(Dep.after_all context) payload
    in
    (* local copy processes the in-memory message (as the plain Psync
       does); only the remote copies ride the frame *)
    note_received m msg;
    O.receive m.engine_member msg;
    let frame, span =
      Codec.encode_split t.pool ~header:Codec.put_message_header
        ~payload:t.put_payload msg
    in
    Net.bcast (Sgroup.net t.sg) ~src ~self:false ~size:(Wire.length frame)
      (Codec.framed ~payload_bytes:span frame);
    label

  let delivered_order t i = O.delivered_order (member t i)

  let all_delivered_orders t =
    List.init (size t) (fun i -> delivered_order t i)

  let metrics t i = O.metrics (member t i)

  let wire_bytes t =
    Sgroup.fold
      (fun acc m -> acc + (O.metrics m.engine_member).Metrics.wire_bytes)
      0 t.sg
end

(* --- framed PC-broadcast: constant-size headers over frames --- *)

(* The scaling story end to end: a broadcast encodes once (two varints
   of header, whatever the group size), every hop of the flood re-emits
   the *same* physical frame (the [~emit] closure in receive), and each
   recipient charges its control/payload split from the span the sender
   measured.  Static overlays only — the churn path runs on the plain
   [Pcbcast.Group]; here the membership is fixed so the per-send
   fallback encoder in [send] only ever carries establishment-free
   traffic (no [Lock]s fly on a static group). *)
module Pc = struct
  type 'a t = {
    sg : ('a P.member, 'a P.wire Codec.framed) Sgroup.t;
    pool : Wire.pool;
    enc : 'a Codec.enc;
    graph : Depgraph.t;
  }

  let create ?degree net ~enc ~dec
      ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
    let n = Net.nodes net in
    let engine = Net.engine net in
    let get = Codec.get_pc dec in
    let graph = Depgraph.create () in
    let pool = Wire.pool () in
    let sg =
      Sgroup.create_routed net
        ~member:(fun node ->
          let deliver e = on_deliver ~node ~time:(Engine.now engine) e in
          (* fallback path: anything not riding a shared frame (control
             traffic, emit-less re-sends) encodes per send *)
          let send ~dst w =
            let frame, span = Codec.encode_pc pool enc w in
            Net.send net ~src:node ~dst ~size:(Wire.length frame)
              (Codec.framed ~payload_bytes:span frame)
          in
          P.member ~id:node ~send ~deliver ~graph ())
        ~receive:(fun m ~src fr ->
          charge (P.metrics m) fr;
          (* flooding forwards this exact physical frame: no re-encode,
             and downstream recipients share the memoized view too *)
          let emit ~dst =
            Net.send net ~src:(P.member_id m) ~dst
              ~size:(Wire.length fr.Codec.frame) fr
          in
          P.receive m ~src ~emit (Codec.view fr ~dec:get))
    in
    Array.iter (fun m -> P.init_static m ~n ~degree) (Sgroup.members sg);
    { sg; pool; enc; graph }

  let size t = Sgroup.size t.sg

  let member t i = Sgroup.member t.sg i

  let graph t = t.graph

  let bcast t ~src ?tag payload =
    let m = Sgroup.member t.sg src in
    let e, label = P.next_envelope m ?tag payload in
    let frame, span = Codec.encode_pc t.pool t.enc (P.Env e) in
    let fr = Codec.framed ~payload_bytes:span frame in
    let net = Sgroup.net t.sg in
    let size = Wire.length frame in
    P.publish m e ~emit:(fun ~dst -> Net.send net ~src ~dst ~size fr);
    label

  let delivered_tags t i = P.delivered_tags (Sgroup.member t.sg i)

  let metrics t i = P.metrics (Sgroup.member t.sg i)

  let wire_bytes t =
    Sgroup.fold (fun acc m -> acc + (P.metrics m).Metrics.wire_bytes) 0 t.sg
end
