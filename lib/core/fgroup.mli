(** Framed group wrappers — causal broadcast over encoded frames.

    The siblings of [Bss.Group], [Group] and [Psync] that put the
    {!Codec} on the delivery path: the sender stamps once and encodes
    once into an immutable frame (pooled scratch, [Wire]); [Net.bcast]
    fans the single frame out to every recipient; recipients decode a
    {e shared} view (first toucher decodes, the rest reuse the memo).
    Per message: one encode + one decode.  Per recipient: a pointer.

    Byte accounting is real on this path: [Net.bytes_sent] advances by
    frame length per copy, and each member's [Metrics.wire_bytes] is
    charged per received copy, so [Metrics.bytes_per_delivery] measures
    the §6.1 stamp overhead on the wire.

    Same-seed equivalence: [Net.bcast] makes exactly the RNG draws
    [Net.broadcast] makes, so a framed group's delivered orders are
    identical to the plain group's for the same seed and workload —
    asserted in [test/test_wire.ml], which keeps the frozen
    [lib/reference] engines as the end oracle.  The delivery engines
    themselves ([Bss.member], [Osend.t]) are reused unchanged; only the
    transport hop differs. *)

module Wire := Causalb_util.Wire
module B := Bss
module O := Osend
module P := Pcbcast

(** Framed Birman–Schiper–Stephenson broadcast (vector stamps). *)
module Bss : sig
  type 'a t

  val create :
    'a B.envelope Codec.framed Causalb_net.Net.t ->
    enc:'a Codec.enc ->
    dec:'a Codec.dec ->
    ?on_deliver:(node:int -> time:float -> 'a B.envelope -> unit) ->
    unit ->
    'a t

  val size : 'a t -> int

  val bcast : 'a t -> src:int -> ?tag:string -> 'a -> unit
  (** Stamp ({!B.next_envelope}), encode once, fan the frame out
      (self copy included, as in [Bss.Group.bcast]). *)

  val member : 'a t -> int -> 'a B.member

  val delivered_tags : 'a t -> int -> string list

  val metrics : 'a t -> int -> Causalb_stackbase.Metrics.t

  val wire_bytes : 'a t -> int
  (** Total encoded bytes received across members. *)
end

(** Framed explicit-dependency broadcast (the [Group]/[Osend] path). *)
module Osend : sig
  type 'a t

  val create :
    'a Message.t Codec.framed Causalb_net.Net.t ->
    enc:'a Codec.enc ->
    dec:'a Codec.dec ->
    ?on_deliver:(node:int -> time:float -> 'a Message.t -> unit) ->
    unit ->
    'a t

  val size : 'a t -> int

  val osend :
    'a t ->
    src:int ->
    ?name:string ->
    dep:Causalb_graph.Dep.t ->
    'a ->
    Causalb_graph.Label.t

  val member : 'a t -> int -> 'a O.t

  val delivered_order : 'a t -> int -> Causalb_graph.Label.t list

  val all_delivered_orders : 'a t -> Causalb_graph.Label.t list list

  val metrics : 'a t -> int -> Causalb_stackbase.Metrics.t

  val wire_bytes : 'a t -> int
end

(** Framed conversation-context broadcast (the [Psync] rule: each send
    depends on the leaves of everything received). *)
module Psync : sig
  type 'a t

  val create :
    'a Message.t Codec.framed Causalb_net.Net.t ->
    enc:'a Codec.enc ->
    dec:'a Codec.dec ->
    ?on_deliver:(node:int -> time:float -> 'a Message.t -> unit) ->
    unit ->
    'a t

  val size : 'a t -> int

  val send :
    'a t -> src:int -> ?name:string -> 'a -> Causalb_graph.Label.t
  (** Local copy processes the in-memory message (as in [Psync.send]);
      remote copies ride one shared frame ([self = false]). *)

  val member : 'a t -> int -> 'a O.t

  val delivered_order : 'a t -> int -> Causalb_graph.Label.t list

  val all_delivered_orders : 'a t -> Causalb_graph.Label.t list list

  val metrics : 'a t -> int -> Causalb_stackbase.Metrics.t

  val wire_bytes : 'a t -> int
end

(** Framed PC-broadcast (constant-size headers, flooding overlay).

    The O(1)-metadata counterpart to {!Bss}: a broadcast encodes once —
    two varints of control header regardless of group size — and every
    hop of the flood re-emits the {e same} physical frame, so recipients
    decode a shared view and charge the control/payload split the sender
    measured ([Metrics.control_bytes_per_delivery] is the §6.1 number
    the scaling bench plots against BSS's O(n) stamps).  Static
    membership only; churn runs on the plain [Pcbcast.Group].  The
    network must be FIFO ([Net.create ~fifo:true]). *)
module Pc : sig
  type 'a t

  val create :
    ?degree:int ->
    'a P.wire Codec.framed Causalb_net.Net.t ->
    enc:'a Codec.enc ->
    dec:'a Codec.dec ->
    ?on_deliver:(node:int -> time:float -> 'a P.envelope -> unit) ->
    unit ->
    'a t
  (** [degree] selects the sparse overlay ({!P.peers_for}); default is
      the full mesh. *)

  val size : 'a t -> int

  val member : 'a t -> int -> 'a P.member

  val graph : 'a t -> Causalb_graph.Depgraph.t
  (** The extracted R(M) shared by all members — what [causalb-check]
      verifies the delivered orders against. *)

  val bcast : 'a t -> src:int -> ?tag:string -> 'a -> Causalb_graph.Label.t
  (** Stamp ({!P.next_envelope}), encode once ({!Codec.encode_pc}),
      flood the shared frame and deliver locally ({!P.publish}). *)

  val delivered_tags : 'a t -> int -> string list

  val metrics : 'a t -> int -> Causalb_stackbase.Metrics.t

  val wire_bytes : 'a t -> int
end
