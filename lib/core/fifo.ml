module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine
module Metrics = Causalb_stackbase.Metrics
module Sgroup = Causalb_stackbase.Sgroup
module Fqueue = Causalb_util.Fqueue

type 'a envelope = { sender : int; seq : int; tag : string; payload : 'a }

type 'a waiter = { env : 'a envelope; arrival : int }

type 'a member = {
  id : int;
  deliver : 'a envelope -> unit;
  next_seq : int array; (* expected next per origin *)
  waiting : (int * int, 'a waiter Fqueue.t) Hashtbl.t;
      (* (origin, seq) -> copies parked until next_seq.(origin) reaches
         seq; the contiguous-sequence bucket replaces the pool rescan *)
  mutable arrivals : int;
  mutable tags_rev : string list;
  metrics : Metrics.t;
}

let member ~id ~group_size ?(deliver = fun _ -> ()) () =
  if group_size <= 0 then invalid_arg "Fifo.member: group_size must be positive";
  {
    id;
    deliver;
    next_seq = Array.make group_size 0;
    waiting = Hashtbl.create 64;
    arrivals = 0;
    tags_rev = [];
    metrics = Metrics.create ~name:"causal:fifo" ();
  }

let deliverable t e = e.seq = t.next_seq.(e.sender)

(* Advancing an origin's cursor to [v] wakes the copies parked on
   (origin, v). *)
let wake t key woken =
  (* empty-index guard: in-order traffic parks nothing, and the
     per-delivery key allocation + lookup would be pure overhead *)
  if Hashtbl.length t.waiting = 0 then ()
  else
    match Hashtbl.find_opt t.waiting key with
    | None -> ()
    | Some bucket ->
    Hashtbl.remove t.waiting key;
    Fqueue.iter (fun w -> woken := w :: !woken) bucket

let do_deliver t woken e =
  if t.next_seq.(e.sender) <> e.seq + 1 then begin
    t.next_seq.(e.sender) <- e.seq + 1;
    wake t (e.sender, e.seq + 1) woken
  end;
  t.tags_rev <- e.tag :: t.tags_rev;
  Metrics.on_deliver t.metrics;
  t.deliver e

(* Generation cascade, bit-identical to the seed's repeated pool sweep:
   readiness is evaluated at generation start (so duplicate copies of the
   expected sequence number all release, as the list-scan did), releases
   follow arrival order, and each release wakes only the bucket of the
   sequence number it exposes. *)
let rec drain t woken =
  match woken with
  | [] -> ()
  | gen ->
    let gen = List.sort (fun a b -> Int.compare a.arrival b.arrival) gen in
    let ready = List.filter (fun w -> deliverable t w.env) gen in
    let next = ref [] in
    List.iter
      (fun w ->
        Metrics.on_unbuffer t.metrics;
        do_deliver t next w.env)
      ready;
    drain t !next

let park t e =
  Metrics.on_buffer t.metrics;
  let arrival = t.arrivals in
  t.arrivals <- arrival + 1;
  let key = (e.sender, e.seq) in
  let bucket =
    match Hashtbl.find_opt t.waiting key with
    | Some q -> q
    | None ->
      let q = Fqueue.create () in
      Hashtbl.add t.waiting key q;
      q
  in
  Fqueue.push bucket { env = e; arrival }

let receive t e =
  Metrics.on_receive t.metrics;
  if e.seq < t.next_seq.(e.sender) then () (* duplicate *)
  else if deliverable t e then begin
    let woken = ref [] in
    do_deliver t woken e;
    drain t !woken
  end
  else park t e

let delivered_tags t = List.rev t.tags_rev

let delivered_count t = t.metrics.Metrics.delivered

let pending_count t = t.metrics.Metrics.buffered

let buffered_ever t = t.metrics.Metrics.forced_waits

let metrics t = t.metrics

module Group = struct
  type 'a t = {
    sg : ('a member, 'a envelope) Sgroup.t;
    seqs : int array;
  }

  let create net ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
    let n = Net.nodes net in
    let engine = Net.engine net in
    let sg =
      Sgroup.create net
        ~member:(fun node ->
          let deliver e = on_deliver ~node ~time:(Engine.now engine) e in
          member ~id:node ~group_size:n ~deliver ())
        ~receive
    in
    { sg; seqs = Array.make n 0 }

  let size t = Sgroup.size t.sg

  let bcast t ~src ?(tag = "") payload =
    let seq = t.seqs.(src) in
    t.seqs.(src) <- seq + 1;
    Net.broadcast (Sgroup.net t.sg) ~src { sender = src; seq; tag; payload }

  let member t i = Sgroup.member t.sg i

  let delivered_tags t i = delivered_tags (member t i)
end

(* Lattice declaration for the static stack verifier. *)
let provides = Causalb_stackbase.Guarantee.Fifo

let requires = Causalb_stackbase.Guarantee.Unordered
