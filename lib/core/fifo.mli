(** Per-sender FIFO broadcast — the under-ordered baseline.

    Delivers each origin's messages in send order but imposes no
    cross-origin constraints at all.  It is cheaper than causal delivery
    and is the "no ordering knowledge" end of the spectrum in experiments
    T1/T6: workloads whose semantic graph has cross-origin edges violate
    their constraints under FIFO, which the checker detects. *)

type 'a envelope = { sender : int; seq : int; tag : string; payload : 'a }

type 'a member

val member : id:int -> group_size:int -> ?deliver:('a envelope -> unit) ->
  unit -> 'a member

val receive : 'a member -> 'a envelope -> unit

val delivered_tags : 'a member -> string list

val delivered_count : 'a member -> int

val pending_count : 'a member -> int

val buffered_ever : 'a member -> int
(** Arrivals that had to wait for an earlier message from the same origin
    — the uniform forced-wait counter of the ordering stack. *)

val metrics : 'a member -> Causalb_stackbase.Metrics.t
(** The member's uniform layer metrics (see {!Causalb_stack.Layer}). *)

val provides : Causalb_stackbase.Guarantee.t
(** [Fifo] — per-sender order, nothing across senders. *)

val requires : Causalb_stackbase.Guarantee.t
(** [Unordered] — the layer reorders raw transport arrivals itself. *)

module Group : sig
  type 'a t

  val create :
    'a envelope Causalb_net.Net.t ->
    ?on_deliver:(node:int -> time:float -> 'a envelope -> unit) ->
    unit ->
    'a t

  val size : 'a t -> int

  val bcast : 'a t -> src:int -> ?tag:string -> 'a -> unit

  val member : 'a t -> int -> 'a member

  val delivered_tags : 'a t -> int -> string list
end
