module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine
module Trace = Causalb_sim.Trace
module Label = Causalb_graph.Label
module Sgroup = Causalb_stackbase.Sgroup

type 'a t = {
  sg : ('a Osend.t, 'a Message.t) Sgroup.t;
  seqs : int array; (* next per-origin sequence number *)
  trace : Trace.t option;
  on_send : time:float -> Label.t -> unit;
  mutable sent : int;
  mutable ancestors : int;
}

let create net ?trace ?(on_send = fun ~time:_ _ -> ())
    ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
  let n = Net.nodes net in
  let engine = Net.engine net in
  let sg =
    Sgroup.create net
      ~member:(fun node ->
        let deliver msg =
          let time = Engine.now engine in
          (match trace with
          | Some tr ->
            Trace.record tr ~time ~node ~kind:Trace.Deliver
              ~tag:(Label.to_string (Message.label msg))
              ()
          | None -> ());
          on_deliver ~node ~time msg
        in
        Osend.create ~id:node ~deliver ())
      ~receive:Osend.receive
  in
  { sg; seqs = Array.make n 0; trace; on_send; sent = 0; ancestors = 0 }

let net t = Sgroup.net t.sg

let size t = Sgroup.size t.sg

let next_label t ~src ?name () =
  let seq = t.seqs.(src) in
  t.seqs.(src) <- seq + 1;
  Label.make ?name ~origin:src ~seq ()

let send_labelled t ~src ~label ~dep payload =
  let msg = Message.make ~label ~sender:src ~dep payload in
  t.sent <- t.sent + 1;
  t.ancestors <- t.ancestors + List.length (Causalb_graph.Dep.ancestors dep);
  let time = Engine.now (Sgroup.engine t.sg) in
  (match t.trace with
  | Some tr ->
    Trace.record tr ~time ~node:src ~kind:Trace.Send
      ~tag:(Label.to_string label) ()
  | None -> ());
  t.on_send ~time label;
  Net.broadcast (net t) ~src msg

let osend t ~src ?name ~dep payload =
  let label = next_label t ~src ?name () in
  send_labelled t ~src ~label ~dep payload;
  label

let member t i = Sgroup.member t.sg i

let delivered_order t i = Osend.delivered_order (member t i)

let all_delivered_orders t =
  Array.to_list (Array.map Osend.delivered_order (Sgroup.members t.sg))

let sent_count t = t.sent

let ancestors_named t = t.ancestors
