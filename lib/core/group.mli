(** A broadcast group of [OSend] members wired over the simulated network.

    This is the communication construct of §3: entities organised as a
    group, every data-access message broadcast to all members together
    with its causal relation.  The group allocates labels (per-origin
    sequence numbers), broadcasts envelopes, and routes arrivals into each
    member's causal delivery engine.

    The delivery callback receives the member id, the envelope and the
    virtual delivery time, which is what the experiment harness measures. *)

type 'a t

val create :
  'a Message.t Causalb_net.Net.t ->
  ?trace:Causalb_sim.Trace.t ->
  ?on_send:(time:float -> Causalb_graph.Label.t -> unit) ->
  ?on_deliver:(node:int -> time:float -> 'a Message.t -> unit) ->
  unit ->
  'a t
(** Installs a handler on every node of the network.  The network must not
    have other handlers on those nodes.  [on_send] fires for every
    broadcast at the moment it is handed to the transport, whoever
    initiated it — the hook latency measurement attaches to. *)

val net : 'a t -> 'a Message.t Causalb_net.Net.t

val size : 'a t -> int

val osend :
  'a t ->
  src:int ->
  ?name:string ->
  dep:Causalb_graph.Dep.t ->
  'a ->
  Causalb_graph.Label.t
(** The [OSend] primitive: allocate the next label for [src], broadcast
    the envelope (including to [src] itself) and return the label so the
    caller can name it in later predicates. *)

val next_label : 'a t -> src:int -> ?name:string -> unit -> Causalb_graph.Label.t
(** Allocate a label without sending — used by layers (e.g. the sequencer)
    that need the label before constructing the payload. *)

val send_labelled :
  'a t -> src:int -> label:Causalb_graph.Label.t ->
  dep:Causalb_graph.Dep.t -> 'a -> unit
(** Broadcast under a pre-allocated label. *)

val member : 'a t -> int -> 'a Osend.t

val delivered_order : 'a t -> int -> Causalb_graph.Label.t list

val all_delivered_orders : 'a t -> Causalb_graph.Label.t list list

val sent_count : 'a t -> int
(** Number of [osend]/[send_labelled] calls so far. *)

val ancestors_named : 'a t -> int
(** Total ancestors named across all predicates sent — the wire size of
    the ordering specification (experiments report it per op). *)
