module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Metrics = Causalb_stackbase.Metrics
module Fqueue = Causalb_util.Fqueue

(* A buffered message plus its wakeup bookkeeping.  [unmet] counts the
   ancestors still undelivered (1 for an [After_any] predicate, which is
   satisfied by whichever alternative fires first); when it reaches zero
   the waiter joins the next delivery generation.  [released] tombstones
   the waiter for bucket entries that fire after it has already been
   released through another alternative. *)
type 'a waiter = {
  wmsg : 'a Message.t;
  arrival : int; (* buffer order: the delivery tie-break *)
  mutable unmet : int;
  mutable released : bool;
}

type 'a t = {
  id : int;
  deliver : 'a Message.t -> unit;
  delivered : unit Label.Tbl.t;
  mutable delivered_rev : Label.t list;
  waiting : 'a waiter Fqueue.t Label.Tbl.t;
      (* reverse index: unmet ancestor label -> waiters parked on it;
         the whole bucket is consumed when the ancestor delivers, so a
         delivery wakes exactly the messages that were waiting on it *)
  parked : 'a waiter Label.Tbl.t; (* pending registry, by message label *)
  mutable arrivals : int;
  graph : Depgraph.t;
  seen : unit Label.Tbl.t; (* every label ever received *)
  metrics : Metrics.t;
}

let create ~id ?(deliver = fun _ -> ()) () =
  {
    id;
    deliver;
    delivered = Label.Tbl.create 64;
    delivered_rev = [];
    waiting = Label.Tbl.create 64;
    parked = Label.Tbl.create 64;
    arrivals = 0;
    graph = Depgraph.create ();
    seen = Label.Tbl.create 64;
    metrics = Metrics.create ~name:"causal:osend" ();
  }

let id t = t.id

let is_delivered t l = Label.Tbl.mem t.delivered l

let deliverable t msg =
  Dep.satisfied ~delivered:(fun l -> is_delivered t l) (Message.dep msg)

(* Consume the bucket of [l]: every waiter parked on it loses one unmet
   ancestor; those reaching zero join [woken] — the candidates for the
   next delivery generation. *)
let wake t l woken =
  (* empty-index guard: on fully-deliverable traffic no one is parked,
     and the per-delivery lookup would be pure overhead *)
  if Label.Tbl.length t.waiting = 0 then ()
  else
    match Label.Tbl.find_opt t.waiting l with
    | None -> ()
    | Some bucket ->
    Label.Tbl.remove t.waiting l;
    Fqueue.iter
      (fun w ->
        if (not w.released) && w.unmet > 0 then begin
          w.unmet <- w.unmet - 1;
          if w.unmet = 0 then woken := w :: !woken
        end)
      bucket

let do_deliver t woken msg =
  Label.Tbl.replace t.delivered (Message.label msg) ();
  t.delivered_rev <- Message.label msg :: t.delivered_rev;
  Metrics.on_deliver t.metrics;
  t.deliver msg;
  wake t (Message.label msg) woken

(* Deliver the wakeup cascade in generations: a generation is every
   waiter unblocked by the previous one, released in arrival order.
   This reproduces the seed engine's repeated pool sweep (ready set
   evaluated at pass start, released in arrival order, repeat) while
   touching only the messages actually waiting on each delivery —
   amortized O(outstanding edges) instead of O(pending) per delivery.
   The list-scan original survives as the test/bench oracle in
   [Causalb_reference]. *)
let rec drain t woken =
  match woken with
  | [] -> ()
  | gen ->
    let gen =
      List.sort (fun a b -> Int.compare a.arrival b.arrival) gen
    in
    (* [unmet = 0] implies the predicate is satisfied (delivered labels
       stay delivered), so every candidate releases. *)
    let ready = List.filter (fun w -> deliverable t w.wmsg) gen in
    let next = ref [] in
    List.iter
      (fun w ->
        w.released <- true;
        Label.Tbl.remove t.parked (Message.label w.wmsg);
        Metrics.on_unbuffer t.metrics;
        do_deliver t next w.wmsg)
      ready;
    drain t !next

let park t msg =
  Metrics.on_buffer t.metrics;
  let arrival = t.arrivals in
  t.arrivals <- arrival + 1;
  let unmet_ancestors =
    List.filter
      (fun a -> not (is_delivered t a))
      (Dep.ancestors (Message.dep msg))
  in
  let unmet =
    match Message.dep msg with
    | Dep.After_any _ -> 1
    | Dep.Null | Dep.After _ | Dep.After_all _ -> List.length unmet_ancestors
  in
  let w = { wmsg = msg; arrival; unmet; released = false } in
  Label.Tbl.replace t.parked (Message.label msg) w;
  List.iter
    (fun a ->
      let bucket =
        match Label.Tbl.find_opt t.waiting a with
        | Some q -> q
        | None ->
          let q = Fqueue.create () in
          Label.Tbl.add t.waiting a q;
          q
      in
      Fqueue.push bucket w)
    unmet_ancestors

let receive t msg =
  let l = Message.label msg in
  Metrics.on_receive t.metrics;
  if not (Label.Tbl.mem t.seen l) then begin
    Label.Tbl.add t.seen l ();
    Depgraph.add t.graph l ~dep:(Message.dep msg);
    if deliverable t msg then begin
      let woken = ref [] in
      do_deliver t woken msg;
      drain t !woken
    end
    else park t msg
  end

let delivered_order t = List.rev t.delivered_rev

let delivered_count t = t.metrics.Metrics.delivered

let waiters_by_arrival t =
  Label.Tbl.fold (fun _ w acc -> w :: acc) t.parked []
  |> List.sort (fun a b -> Int.compare a.arrival b.arrival)

let pending t = List.map (fun w -> w.wmsg) (waiters_by_arrival t)

(* [buffered] is maintained incrementally by on_buffer/on_unbuffer, so
   the count (and the metrics row) no longer walks the pending pool. *)
let pending_count t = t.metrics.Metrics.buffered

let buffered_ever t = t.metrics.Metrics.forced_waits

let metrics t = t.metrics

let graph t = t.graph

let blocked_on t =
  let missing = ref Label.Set.empty in
  Label.Tbl.iter
    (fun _ w ->
      List.iter
        (fun anc ->
          if not (Label.Tbl.mem t.seen anc) then
            missing := Label.Set.add anc !missing)
        (Dep.ancestors (Message.dep w.wmsg)))
    t.parked;
  Label.Set.elements !missing

(* Lattice declaration for the static stack verifier. *)
let provides = Causalb_stackbase.Guarantee.Causal

let requires = Causalb_stackbase.Guarantee.Unordered
