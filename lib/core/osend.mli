(** Per-member causal delivery engine for [OSend] messages (paper §3.3).

    A member receives envelopes in arbitrary transport order and releases
    them to the application as soon as their [Occurs_After] predicate is
    satisfied by the already-delivered set.  Messages whose ancestors are
    still missing are parked under their unmet ancestor labels in a
    reverse index, so delivering a label wakes exactly the messages
    waiting on it — amortized O(outstanding dependency edges) rather than
    a rescan of the whole pending pool per delivery.  A delivery may
    unblock a cascade of pending messages; cascades release in arrival
    order per wakeup generation, bit-identical to the seed list-scan
    engine (kept as the oracle in [Causalb_reference]).

    Properties enforced (and tested):
    {ul
    {- {b causal safety} — a message is never delivered before an ancestor
       named by its predicate;}
    {- {b liveness} — once every ancestor has arrived, the message is
       delivered (in the same [receive] call);}
    {- {b duplicate suppression} — an envelope with an already seen label
       is ignored;}
    {- {b graph extraction} — the member incrementally rebuilds the
       dependency graph of everything it has seen, which equals the graph
       at every other member on the same message set (§3.2).}} *)

type 'a t

val create :
  id:int -> ?deliver:('a Message.t -> unit) -> unit -> 'a t
(** [deliver] is invoked for each message as it is released, in delivery
    order. *)

val id : 'a t -> int

val receive : 'a t -> 'a Message.t -> unit
(** Hand a transport-received envelope to the member. *)

val delivered_order : 'a t -> Causalb_graph.Label.t list
(** Labels in the order the application saw them. *)

val delivered_count : 'a t -> int

val is_delivered : 'a t -> Causalb_graph.Label.t -> bool

val pending : 'a t -> 'a Message.t list
(** Envelopes received but still blocked, in arrival order. *)

val pending_count : 'a t -> int

val buffered_ever : 'a t -> int
(** Messages that were not deliverable on arrival and had to wait for an
    ancestor — the forced-wait counter compared against {!Bss} in
    experiment T6. *)

val metrics : 'a t -> Causalb_stackbase.Metrics.t
(** The member's uniform layer metrics (see {!Causalb_stack.Layer}). *)

val provides : Causalb_stackbase.Guarantee.t
(** [Causal] — explicit [Occurs_After] predicates, exactly [R(M)]. *)

val requires : Causalb_stackbase.Guarantee.t
(** [Unordered] — predicates carry all the ordering the layer needs. *)

val graph : 'a t -> Causalb_graph.Depgraph.t
(** The extracted dependency graph over every message seen (delivered or
    pending).  Do not mutate. *)

val blocked_on : 'a t -> Causalb_graph.Label.t list
(** Ancestor labels that pending messages are waiting for and that have
    not been received at all — the set a recovery protocol would fetch. *)
