(* PC-broadcast: causal delivery from FIFO links with constant-size
   control information (Nédelec, Molli & Mostéfaoui, "Breaking the
   Scalability Barrier of Causal Broadcast for Large and Dynamic
   Systems").

   Where BSS piggybacks an O(n) vector stamp on every message, PC ships
   only (origin, seq) and extracts causal order from the channels
   themselves: every member floods a message to its open out-links on
   first receipt, *before* delivering it, so each link carries messages
   in an order consistent with the forwarder's causal delivery order,
   and per-link FIFO preserves that order to the next hop.

   Two local structures make the receive path O(1) per copy:

   - a per-origin cursor replaces the delivered-set: along any single
     link, copies from one origin arrive in increasing seq (the
     forwarder floods them in its delivery order), so seq < cursor is a
     duplicate and seq = cursor is a first receipt;
   - Fifo's reverse-indexed wakeup queues park the rare future copy
     (possible only when the FIFO-link premise is dented — loss faults,
     a link racing its own establishment) keyed by the exact
     (origin, seq) whose delivery releases it.  Parking only delays
     deliveries, so it degrades availability under faults, never safety.

   Dynamic membership is the π_lock link-establishment protocol: a new
   link must not deliver messages that could causally precede what the
   receiver has not yet seen through its old links.  The opener sends
   [Lock] point-to-point down the new link and broadcasts an [Unlock]
   barrier *causally* through the existing overlay; the receiver buffers
   everything arriving on the new link until it delivers that barrier,
   by which point everything the opener had delivered before opening has
   already arrived the old way.  Joins bootstrap through a contact
   member whose link needs no barrier (the joiner's causal past is a
   prefix of the contact's), and a [Joined] control broadcast triggers
   the remaining links via retro-dissemination.

   Causal safety relies on links being reliable: if loss faults eat
   copies, cross-origin dependencies can be missed without any local
   evidence (that is the price of constant-size headers).  The offline
   oracle therefore checks FIFO unconditionally but causal order only on
   runs whose partition/loss drop counters are zero — departure drops
   are fine, see [Net.dropped_by_departure]. *)

module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine
module Metrics = Causalb_stackbase.Metrics
module Sgroup = Causalb_stackbase.Sgroup
module Fqueue = Causalb_util.Fqueue
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph

type ctrl = Unlock of { target : int } | Joined of { node : int }

type 'a body = App of 'a | Ctrl of ctrl

type 'a envelope = { origin : int; seq : int; tag : string; body : 'a body }

type 'a wire = Env of 'a envelope | Lock

let payload e = match e.body with App p -> Some p | Ctrl _ -> None

let label_of e =
  if e.tag = "" then Label.make ~origin:e.origin ~seq:e.seq ()
  else Label.make ~name:e.tag ~origin:e.origin ~seq:e.seq ()

type 'a waiter = {
  env : 'a envelope;
  arrival : int;
  wsrc : int; (* link the copy arrived on — excluded from its flood *)
  emit : dst:int -> unit; (* resend this exact physical copy *)
}

type 'a pending = { penv : 'a envelope; psrc : int; pemit : dst:int -> unit }

type 'a member = {
  id : int;
  deliver : 'a envelope -> unit; (* App bodies only *)
  on_causal : Label.t -> unit; (* every causal delivery, ctrl included *)
  mutable on_joined : int -> unit; (* set by Group: react to [Joined] *)
  next : (int, int) Hashtbl.t;
      (* per-origin expected seq; an absent origin adopts its first seen
         seq as baseline — how a late joiner accepts contiguous suffixes *)
  waiting : (int * int, 'a waiter Fqueue.t) Hashtbl.t;
  mutable peers : int list; (* open out-links, the flooding fan-out *)
  locked : (int, 'a pending Fqueue.t) Hashtbl.t;
      (* in-links buffered by π_lock until their barrier delivers *)
  unlocked : (int, unit) Hashtbl.t;
      (* openers whose barrier already delivered — a [Lock] arriving
         after its own [Unlock] (links race) must not re-buffer forever *)
  send : dst:int -> 'a wire -> unit;
  mutable own_seq : int;
  mutable arrivals : int;
  mutable tags_rev : string list;
  (* Audit-only causality context, never on the wire: deps of the next
     send are the member's previous send plus everything delivered since.
     The group accumulates these into the extracted R(M) the offline
     checker verifies against. *)
  mutable last_own : Label.t option;
  mutable ctx_rev : Label.t list;
  graph : Depgraph.t;
  metrics : Metrics.t;
}

let member ~id ~send ?(deliver = fun _ -> ()) ?(on_causal = fun _ -> ())
    ?graph () =
  {
    id;
    deliver;
    on_causal;
    on_joined = ignore;
    next = Hashtbl.create 16;
    waiting = Hashtbl.create 16;
    peers = [];
    locked = Hashtbl.create 4;
    unlocked = Hashtbl.create 4;
    send;
    own_seq = 0;
    arrivals = 0;
    tags_rev = [];
    last_own = None;
    ctx_rev = [];
    graph = (match graph with Some g -> g | None -> Depgraph.create ());
    metrics = Metrics.create ~name:"causal:pc" ();
  }

let deliverable t (e : 'a envelope) =
  match Hashtbl.find_opt t.next e.origin with
  | None -> true (* unknown origin: adopt-first baseline *)
  | Some nx -> e.seq = nx

let wake t key woken =
  if Hashtbl.length t.waiting = 0 then ()
  else
    match Hashtbl.find_opt t.waiting key with
    | None -> ()
    | Some bucket ->
      Hashtbl.remove t.waiting key;
      Fqueue.iter (fun w -> woken := w :: !woken) bucket

let rec open_link t ~to_ =
  t.send ~dst:to_ Lock;
  t.peers <- to_ :: t.peers;
  (* The barrier travels causally through the old overlay — it is an
     ordinary broadcast, flooded like any app message.  [to_] buffers
     the new link until it delivers this. *)
  ignore (bcast_body t ~tag:"" (Ctrl (Unlock { target = to_ })))

and next_envelope_body t ?(tag = "") body =
  let seq = t.own_seq in
  t.own_seq <- seq + 1;
  let e = { origin = t.id; seq; tag; body } in
  let label = label_of e in
  (* True potential causality at send time: the previous own message
     (covering older context transitively) plus everything delivered
     since it — into the audit graph, never onto the wire. *)
  let deps =
    match t.last_own with
    | Some l -> l :: List.rev t.ctx_rev
    | None -> List.rev t.ctx_rev
  in
  Depgraph.add t.graph label ~dep:(Dep.after_all deps);
  t.last_own <- Some label;
  t.ctx_rev <- [];
  (e, label)

and bcast_body t ?tag body =
  let e, label = next_envelope_body t ?tag body in
  publish t e ~emit:(fun ~dst -> t.send ~dst (Env e));
  label

(* Flood-then-deliver for a message of our own: the origin is hop zero
   of the flood. *)
and publish t e ~emit =
  List.iter (fun p -> emit ~dst:p) t.peers;
  let woken = ref [] in
  do_deliver t woken e;
  drain t !woken

and do_deliver t woken e =
  Hashtbl.replace t.next e.origin (e.seq + 1);
  wake t (e.origin, e.seq + 1) woken;
  let label = label_of e in
  t.ctx_rev <- label :: t.ctx_rev;
  Metrics.on_deliver t.metrics;
  t.on_causal label;
  match e.body with
  | App _ ->
    t.tags_rev <- e.tag :: t.tags_rev;
    t.deliver e
  | Ctrl (Unlock { target }) -> if target = t.id then unlock t ~opener:e.origin
  | Ctrl (Joined { node }) -> if node <> t.id then t.on_joined node

(* Wakeup cascade.  Unlike [Fifo.drain], readiness is re-checked at
   release time: flooding routinely parks several copies of the same
   (origin, seq) from different links, and only the first may deliver —
   the rest are duplicates the cursor has already passed. *)
and drain t woken =
  match woken with
  | [] -> ()
  | gen ->
    let gen = List.sort (fun a b -> Int.compare a.arrival b.arrival) gen in
    let next = ref [] in
    List.iter
      (fun w ->
        Metrics.on_unbuffer t.metrics;
        if deliverable t w.env then begin
          (* first physical receipt: forward before delivering *)
          List.iter
            (fun p -> if p <> w.wsrc then w.emit ~dst:p)
            t.peers;
          do_deliver t next w.env
        end)
      gen;
    drain t !next

and unlock t ~opener =
  Hashtbl.replace t.unlocked opener ();
  (match Hashtbl.find_opt t.locked opener with
  | None -> ()
  | Some bucket ->
    Hashtbl.remove t.locked opener;
    Fqueue.drain
      (fun p ->
        Metrics.on_unbuffer t.metrics;
        handle_env t ~src:p.psrc ~emit:p.pemit p.penv)
      bucket);
  (* Symmetric establishment: an unlocked in-link grows the reverse
     out-link, with its own barrier protecting the other end. *)
  if not (List.mem opener t.peers) then open_link t ~to_:opener

and park t ~src ~emit e =
  Metrics.on_buffer t.metrics;
  let arrival = t.arrivals in
  t.arrivals <- arrival + 1;
  let key = (e.origin, e.seq) in
  let bucket =
    match Hashtbl.find_opt t.waiting key with
    | Some q -> q
    | None ->
      let q = Fqueue.create () in
      Hashtbl.add t.waiting key q;
      q
  in
  Fqueue.push bucket { env = e; arrival; wsrc = src; emit }

and handle_env t ~src ~emit e =
  match Hashtbl.find_opt t.next e.origin with
  | Some nx when e.seq < nx -> () (* duplicate: another link was first *)
  | Some nx when e.seq > nx -> park t ~src ~emit e
  | _ ->
    (* first receipt (or adopt-first): flood, then deliver *)
    List.iter (fun p -> if p <> src then emit ~dst:p) t.peers;
    let woken = ref [] in
    do_deliver t woken e;
    drain t !woken

let receive t ~src ?emit w =
  Metrics.on_receive t.metrics;
  match w with
  | Lock ->
    if Hashtbl.mem t.unlocked src || Hashtbl.mem t.locked src then ()
    else Hashtbl.replace t.locked src (Fqueue.create ())
  | Env e -> (
    let emit =
      match emit with
      | Some f -> f
      | None -> fun ~dst -> t.send ~dst (Env e)
    in
    match Hashtbl.find_opt t.locked src with
    | Some bucket ->
      Metrics.on_buffer t.metrics;
      Fqueue.push bucket { penv = e; psrc = src; pemit = emit }
    | None -> handle_env t ~src ~emit e)

let bcast_member t ?tag p = bcast_body t ?tag (App p)

let next_envelope t ?tag p = next_envelope_body t ?tag (App p)

let member_id t = t.id

let delivered_tags t = List.rev t.tags_rev

let delivered_count t = t.metrics.Metrics.delivered

let pending_count t = t.metrics.Metrics.buffered

let buffered_ever t = t.metrics.Metrics.forced_waits

let metrics t = t.metrics

(* Deterministic sparse overlay: a bidirectional ring plus power-of-two
   chords, capped at [degree] out-links per node.  Connected for any n,
   diameter O(n / 2^chords); the full mesh is the degree >= n-1 case. *)
let peers_for ~n ~degree i =
  if n <= 1 then []
  else
    match degree with
    | None -> List.init n Fun.id |> List.filter (fun j -> j <> i)
    | Some d when d >= n - 1 ->
      List.init n Fun.id |> List.filter (fun j -> j <> i)
    | Some d ->
      let d = max 2 d in
      let acc = ref [] in
      let add j = if j <> i && not (List.mem j !acc) then acc := j :: !acc in
      add ((i + 1) mod n);
      add ((i + n - 1) mod n);
      let hop = ref 2 in
      while List.length !acc < d && !hop < n do
        add ((i + !hop) mod n);
        hop := !hop * 2
      done;
      List.rev !acc

(* Configure a member of a static group: the deterministic overlay plus
   common-knowledge cursors — every initial origin starts at 0, so
   adopt-first never fires among the founders. *)
let init_static t ~n ~degree =
  t.peers <- peers_for ~n ~degree t.id;
  for o = 0 to n - 1 do
    Hashtbl.replace t.next o 0
  done

module Group = struct
  type 'a t = {
    sg : ('a member, 'a wire) Sgroup.t;
    graph : Depgraph.t;
    mutable alive : bool array; (* indexed by member id, grows on join *)
  }

  let wire_member g net ?on_deliver ?on_causal node =
    let engine = Net.engine net in
    let deliver =
      match on_deliver with
      | None -> fun _ -> ()
      | Some f -> fun e -> f ~node ~time:(Engine.now engine) e
    in
    let on_causal =
      match on_causal with
      | None -> fun _ -> ()
      | Some f -> fun label -> f ~node ~label
    in
    let send ~dst w = Net.send net ~src:node ~dst w in
    let m = member ~id:node ~send ~deliver ~on_causal ~graph:g () in
    m

  let create ?degree net ?on_deliver ?on_causal () =
    let n = Net.nodes net in
    let graph = Depgraph.create () in
    let sg =
      Sgroup.create_routed net
        ~member:(wire_member graph net ?on_deliver ?on_causal)
        ~receive:(fun m ~src w -> receive m ~src w)
    in
    let t = { sg; graph; alive = Array.make n true } in
    Array.iter
      (fun m ->
        init_static m ~n ~degree;
        m.on_joined <-
          (fun node ->
            if t.alive.(node) && not (List.mem node m.peers) then
              open_link m ~to_:node))
      (Sgroup.members sg);
    t

  let net t = Sgroup.net t.sg

  let size t = Sgroup.size t.sg

  let member t i = Sgroup.member t.sg i

  let graph t = t.graph

  let alive t =
    List.filter
      (fun i -> t.alive.(i))
      (List.init (Sgroup.size t.sg) Fun.id)

  let is_alive t i = i < Array.length t.alive && t.alive.(i)

  let bcast t ~src ?tag p =
    if not (is_alive t src) then
      invalid_arg (Printf.sprintf "Pcbcast.bcast: member %d departed" src);
    bcast_member (member t src) ?tag p

  let set_alive t i v =
    let cap = Array.length t.alive in
    if i >= cap then begin
      let grown = Array.make (max (i + 1) (2 * cap)) false in
      Array.blit t.alive 0 grown 0 cap;
      t.alive <- grown
    end;
    t.alive.(i) <- v

  let join t ~contact =
    if not (is_alive t contact) then
      invalid_arg
        (Printf.sprintf "Pcbcast.join: contact %d departed" contact);
    let id = Sgroup.join t.sg in
    set_alive t id true;
    let j = member t id and c = member t contact in
    (* The bootstrap pair needs no π_lock barrier in either direction:
       the joiner's causal past is (and stays) a prefix of what the
       contact forwards it, and everything the joiner ever sends depends
       only on messages the contact already delivered. *)
    j.peers <- [ contact ];
    j.on_joined <-
      (fun node ->
        if is_alive t node && not (List.mem node j.peers) then
          open_link j ~to_:node);
    c.peers <- id :: c.peers;
    (* Retro-dissemination: every member that delivers this opens a
       barriered link to the joiner, and the joiner opens the reverse
       link as each of those barriers passes. *)
    ignore (bcast_body c ~tag:"" (Ctrl (Joined { node = id })));
    id

  let leave t id =
    if is_alive t id then begin
      set_alive t id false;
      Sgroup.leave t.sg id;
      (* Synchronous view change: survivors stop flooding to the dead
         endpoint at once.  In-flight copies to it drop in [Net] as
         departure losses; parked copies *from* it stay parked. *)
      Array.iter
        (fun m ->
          if m.id <> id then begin
            m.peers <- List.filter (fun p -> p <> id) m.peers;
            Hashtbl.remove m.locked id
          end)
        (Sgroup.members t.sg)
    end

  let delivered_tags t i = delivered_tags (member t i)

  let metrics_of t =
    List.filter_map
      (fun m -> if is_alive t m.id then Some m.metrics else None)
      (Array.to_list (Sgroup.members t.sg))
end

(* Lattice declaration for the static stack verifier: PC-broadcast
   *requires* FIFO links — over a bare datagram transport its claim is
   unsound, and [causalb-lint] will say so. *)
let provides = Causalb_stackbase.Guarantee.Causal

let requires = Causalb_stackbase.Guarantee.Fifo
