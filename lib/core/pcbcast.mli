(** PC-broadcast: causal order from FIFO links with constant-size
    headers, plus π_lock link establishment for dynamic membership.

    The engine of the Nédelec–Molli–Mostéfaoui construction ("Breaking
    the Scalability Barrier of Causal Broadcast", PAPERS.md): no
    piggybacked vector clocks — a message carries only its origin id
    and a per-origin sequence number, and causal delivery order is
    inherited from the FIFO channels it floods over.  Every member
    forwards a first-received message to all its open out-links {e
    before} delivering it; per-origin cursors discard the duplicate
    copies the flood produces, and {!Causalb_core.Fifo}-style
    reverse-indexed wakeup queues park the stray out-of-order copy.

    New links are dangerous — they can deliver messages that causally
    follow traffic the receiver has not yet seen through its old links —
    so every link opens under a π_lock barrier: the opener sends {!Lock}
    point-to-point down the new link and broadcasts an {!Unlock}
    causally through the existing overlay; the receiver buffers the new
    link until the barrier delivers.  {!Group.join} bootstraps through a
    contact member (whose link pair needs no barrier) and
    retro-disseminates a {!Joined} control broadcast that triggers the
    remaining links.

    Causal safety assumes reliable links: under injected loss the
    algorithm has no way to detect a missing cross-origin dependency.
    FIFO per origin holds unconditionally (gaps park, they never skip);
    the offline oracle arms the causal checker only on runs with zero
    partition/loss drops — departure drops are harmless to survivors. *)

module Label := Causalb_graph.Label
module Depgraph := Causalb_graph.Depgraph
module Metrics := Causalb_stackbase.Metrics

type ctrl =
  | Unlock of { target : int }
      (** π_lock barrier: when [target] delivers this, the link from the
          broadcast's origin to [target] is safe to un-buffer *)
  | Joined of { node : int }
      (** retro-dissemination: [node] joined; members open barriered
          links to it on delivery *)

type 'a body = App of 'a | Ctrl of ctrl

type 'a envelope = { origin : int; seq : int; tag : string; body : 'a body }
(** The constant-size header is exactly [(origin, seq)] — two varints on
    the wire, whatever the group size. *)

type 'a wire = Env of 'a envelope | Lock
(** What travels on a link: an envelope, or the point-to-point [Lock]
    marker that starts π_lock buffering at the receiver. *)

val payload : 'a envelope -> 'a option
(** The application payload, [None] for control traffic. *)

val label_of : 'a envelope -> Label.t
(** [(origin, seq)] as a label, named by the tag when non-empty — the
    identity under which the message appears in the extracted R(M) and
    the trace. *)

type 'a member

val member :
  id:int ->
  send:(dst:int -> 'a wire -> unit) ->
  ?deliver:('a envelope -> unit) ->
  ?on_causal:(Label.t -> unit) ->
  ?graph:Depgraph.t ->
  unit ->
  'a member
(** A standalone member (no peers, no links) — the unit under test for
    the receive-path microbench and the member-local scaling sweep.
    [deliver] fires for application bodies only; [on_causal] for every
    causal delivery, control barriers included.  [graph] shares an
    audit graph across members ({!Group} passes one). *)

val receive : 'a member -> src:int -> ?emit:(dst:int -> unit) -> 'a wire -> unit
(** Process one copy arriving on the link from [src].  [emit] resends
    this exact physical copy to another link — the framed path passes a
    frame-sharing closure so flooding never re-serializes; when absent
    the decoded value is re-sent. *)

val bcast_member : 'a member -> ?tag:string -> 'a -> Label.t
(** Broadcast from this member: flood to its out-links, deliver locally,
    return the message's label (already inserted into the audit graph
    with its true potential-causality dependencies). *)

val next_envelope : 'a member -> ?tag:string -> 'a -> 'a envelope * Label.t
(** The encode-once seam: assign the next sequence number and record the
    audit dependencies, but do not send — the caller encodes the
    envelope once and then {!publish}es it. *)

val publish : 'a member -> 'a envelope -> emit:(dst:int -> unit) -> unit
(** Flood [emit] to every out-link, then deliver locally.  Pair with
    {!next_envelope}; plain callers use {!bcast_member} instead. *)

val member_id : 'a member -> int

val delivered_tags : 'a member -> string list

val delivered_count : 'a member -> int

val pending_count : 'a member -> int
(** Copies currently parked (seq gaps) or π_lock-buffered. *)

val buffered_ever : 'a member -> int

val metrics : 'a member -> Metrics.t
(** The member's ["causal:pc"] metrics. *)

val peers_for : n:int -> degree:int option -> int -> int list
(** The deterministic static overlay: full mesh when [degree] is [None]
    or >= n-1, else a bidirectional ring plus power-of-two chords capped
    at [degree] out-links.  Exposed for tests and the scaling bench. *)

val init_static : 'a member -> n:int -> degree:int option -> unit
(** Configure a founding member of a static group: overlay links from
    {!peers_for} and per-origin cursors at 0 for all [n] initial origins
    (static membership is common knowledge, so adopt-first never fires
    among founders).  {!Group.create} and the framed group call this. *)

(** Group wrapper: one member per network node, flooding over a static
    overlay, with dynamic join/leave. *)
module Group : sig
  type 'a t

  val create :
    ?degree:int ->
    'a wire Causalb_net.Net.t ->
    ?on_deliver:(node:int -> time:float -> 'a envelope -> unit) ->
    ?on_causal:(node:int -> label:Label.t -> unit) ->
    unit ->
    'a t
  (** One member per current network node.  [degree] selects the sparse
      overlay ({!peers_for}); the default full mesh is right for
      correctness runs, the sparse one for scale.  The network must be
      FIFO ([Net.create ~fifo:true]) — PC-broadcast over a non-FIFO
      transport is unsound, and the stack verifier will flag it. *)

  val net : 'a t -> 'a wire Causalb_net.Net.t

  val size : 'a t -> int
  (** Members ever created, departed ones included. *)

  val member : 'a t -> int -> 'a member

  val graph : 'a t -> Depgraph.t
  (** The extracted R(M): every broadcast's true potential-causality
      dependencies (sender's previous message plus its deliveries since),
      accumulated audit-side, never on the wire.  What [causalb-check]
      verifies delivery order against. *)

  val alive : 'a t -> int list

  val is_alive : 'a t -> int -> bool

  val bcast : 'a t -> src:int -> ?tag:string -> 'a -> Label.t
  (** @raise Invalid_argument if [src] has departed. *)

  val join : 'a t -> contact:int -> int
  (** A fresh member joins through [contact]: new network endpoint,
      unbarriered bootstrap link pair with the contact, and a [Joined]
      retro-dissemination that makes every other member establish a
      π_lock-barriered link pair with the joiner.  Returns the new id.
      @raise Invalid_argument if [contact] has departed. *)

  val leave : 'a t -> int -> unit
  (** Permanent departure: the endpoint is removed from the network
      ({!Causalb_net.Net.remove_node}) and survivors prune it from
      their overlays at once.  Copies in flight to it become departure
      drops.  Idempotent. *)

  val delivered_tags : 'a t -> int -> string list

  val metrics_of : 'a t -> Metrics.t list
  (** Per-member metrics of the still-alive members. *)
end

val provides : Causalb_stackbase.Guarantee.t
(** [Causal]. *)

val requires : Causalb_stackbase.Guarantee.t
(** [Fifo] — the links themselves must be ordered; that is where the
    causal information lives. *)
