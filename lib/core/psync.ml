module Net = Causalb_net.Net
module Engine = Causalb_sim.Engine
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Sgroup = Causalb_stackbase.Sgroup

type 'a member = {
  id : int;
  engine_member : 'a Osend.t;
  mutable leaves : Label.Set.t;
      (* received messages that no received message depends on — the
         context the next send attaches *)
}

type 'a t = {
  sg : ('a member, 'a Message.t) Sgroup.t;
  seqs : int array;
  mutable context_total : int;
}

(* Track leaves from *received* (not merely delivered) messages: context
   is what the process has seen, and the graph keeps it consistent. *)
let note_received m (msg : 'a Message.t) =
  let ancestors = Dep.ancestors (Message.dep msg) in
  m.leaves <-
    Label.Set.add (Message.label msg)
      (List.fold_left (fun acc a -> Label.Set.remove a acc) m.leaves ancestors)

let create net ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) () =
  let n = Net.nodes net in
  let engine = Net.engine net in
  let sg =
    Sgroup.create net
      ~member:(fun id ->
        let deliver msg = on_deliver ~node:id ~time:(Engine.now engine) msg in
        {
          id;
          engine_member = Osend.create ~id ~deliver ();
          leaves = Label.Set.empty;
        })
      ~receive:(fun m msg ->
        note_received m msg;
        Osend.receive m.engine_member msg)
  in
  { sg; seqs = Array.make n 0; context_total = 0 }

let size t = Sgroup.size t.sg

let send t ~src ?name payload =
  let m = Sgroup.member t.sg src in
  let seq = t.seqs.(src) in
  t.seqs.(src) <- seq + 1;
  let label = Label.make ?name ~origin:src ~seq () in
  let context = Label.Set.elements m.leaves in
  t.context_total <- t.context_total + List.length context;
  let msg =
    Message.make ~label ~sender:src ~dep:(Dep.after_all context) payload
  in
  (* local copy: the sender's own message immediately becomes its sole
     leaf *)
  note_received m msg;
  Osend.receive m.engine_member msg;
  Net.broadcast (Sgroup.net t.sg) ~src ~self:false msg;
  label

let member t i = (Sgroup.member t.sg i).engine_member

let leaves_at t i = Label.Set.elements (Sgroup.member t.sg i).leaves

let delivered_order t i = Osend.delivered_order (member t i)

let all_delivered_orders t =
  List.init (size t) (fun i -> delivered_order t i)

let buffered_ever t =
  Sgroup.fold (fun acc m -> acc + Osend.buffered_ever m.engine_member) 0 t.sg

let metrics t i = Osend.metrics (member t i)

let context_size_total t = t.context_total

(* Lattice declaration for the static stack verifier. *)
let provides = Causalb_stackbase.Guarantee.Causal

let requires = Causalb_stackbase.Guarantee.Unordered
