(** Psync-style conversations (paper reference [8], Peterson–Buchholz–
    Schlichting: "Preserving and Using Context Information in Interprocess
    Communication").

    §3.2 lists Psync alongside ISIS CBCAST as a substrate the paper's
    interface layer could sit on.  In Psync, a group maintains a
    {e conversation}: an explicit context graph of messages.  A sender
    does not state application dependencies — each message automatically
    depends on the {e leaves} of the sender's current view of the graph
    (everything it has received and nothing has yet followed).  Receivers
    reconstruct the same graph and deliver in context order.

    This sits exactly between the paper's two poles:
    {ul
    {- like [OSend], dependencies are explicit labels in the message (the
       wire format is a graph, not a vector);}
    {- like BSS vector clocks, the {e relation} captured is potential
       causality — everything the sender had seen — rather than the
       application's semantic order, so it inherits the same false
       dependencies (experiment T6 shows the inflation).}} *)

type 'a t

type 'a member

val create :
  'a Message.t Causalb_net.Net.t ->
  ?on_deliver:(node:int -> time:float -> 'a Message.t -> unit) ->
  unit ->
  'a t

val size : 'a t -> int

val send : 'a t -> src:int -> ?name:string -> 'a -> Causalb_graph.Label.t
(** Broadcast with automatic context: the message [Occurs_After] the
    leaves of the sender's current conversation view. *)

val member : 'a t -> int -> 'a Osend.t

val leaves_at : 'a t -> int -> Causalb_graph.Label.t list
(** The current context leaves at a node (what its next send would
    depend on). *)

val delivered_order : 'a t -> int -> Causalb_graph.Label.t list

val all_delivered_orders : 'a t -> Causalb_graph.Label.t list list

val buffered_ever : 'a t -> int
(** Forced waits across all members (T6 counter). *)

val metrics : 'a t -> int -> Causalb_stackbase.Metrics.t
(** Uniform layer metrics of one member's delivery engine. *)

val provides : Causalb_stackbase.Guarantee.t
(** [Causal] — conversation contexts reconstruct the causal relation. *)

val requires : Causalb_stackbase.Guarantee.t
(** [Unordered] — contexts carry all the ordering the layer needs. *)

val context_size_total : 'a t -> int
(** Total leaves named across all sends (wire cost of the context). *)
