module Rng = Causalb_util.Rng

type violation = {
  class_a : string;
  class_b : string;
  state : string;
  op_a : string;
  op_b : string;
}

type report = {
  spec_name : string;
  pairs_checked : int;
  pairs_skipped : int;
  checks : int;
  violations : violation list;
}

let ok r = r.violations = [] && r.pairs_skipped = 0

let pp_report ppf r =
  Format.fprintf ppf "%-14s %d pairs, %d checks%s: %s" r.spec_name
    r.pairs_checked r.checks
    (if r.pairs_skipped = 0 then ""
     else Printf.sprintf " (%d pairs skipped!)" r.pairs_skipped)
    (match r.violations with
    | [] -> "ok"
    | v :: _ ->
      Printf.sprintf "%d VIOLATIONS, e.g. (%s,%s) at %s: %s vs %s"
        (List.length r.violations) v.class_a v.class_b v.state v.op_a v.op_b)

let check (spec : _ Seq_spec.t) ~gen_op ?(states = 40) ?(walk = 12)
    ?(samples = 8) ~seed () =
  let rng = Rng.create seed in
  (* bucket a generated op pool by class so each declared-commuting pair
     can be sampled directly *)
  let pool = Hashtbl.create 8 in
  for _ = 1 to 64 * List.length spec.Seq_spec.classes do
    let op = gen_op rng in
    let c = spec.Seq_spec.class_of op in
    let prev = Option.value ~default:[] (Hashtbl.find_opt pool c) in
    Hashtbl.replace pool c (op :: prev)
  done;
  let bucket c =
    match Hashtbl.find_opt pool c with
    | Some ops -> Array.of_list ops
    | None -> [||]
  in
  let obligations =
    List.map
      (fun (a, b) -> (a, b, bucket a, bucket b))
      (Seq_spec.class_pairs spec)
  in
  let skipped =
    List.length
      (List.filter (fun (_, _, ba, bb) -> ba = [||] || bb = [||]) obligations)
  in
  let apply = spec.Seq_spec.apply and equal = spec.Seq_spec.equal in
  let str pp v = Format.asprintf "%a" pp v in
  let checks = ref 0 and violations = ref [] in
  for _ = 1 to states do
    let s = ref spec.Seq_spec.init in
    let len = Rng.int rng (walk + 1) in
    for _ = 1 to len do
      let c = Rng.pick_list rng spec.Seq_spec.classes in
      match bucket c with
      | [||] -> ()
      | ops -> s := apply !s (Rng.pick rng ops)
    done;
    List.iter
      (fun (ca, cb, ba, bb) ->
        if ba <> [||] && bb <> [||] then
          for _ = 1 to samples do
            let a = Rng.pick rng ba and b = Rng.pick rng bb in
            incr checks;
            if not (equal (apply (apply !s a) b) (apply (apply !s b) a)) then
              violations :=
                {
                  class_a = ca;
                  class_b = cb;
                  state = str spec.Seq_spec.pp_state !s;
                  op_a = str spec.Seq_spec.pp_op a;
                  op_b = str spec.Seq_spec.pp_op b;
                }
                :: !violations
          done)
      obligations
  done;
  {
    spec_name = spec.Seq_spec.name;
    pairs_checked = List.length obligations - skipped;
    pairs_skipped = skipped;
    checks = !checks;
    violations = List.rev !violations;
  }

(* generators: small domains so same-key / same-element collisions are
   actually exercised *)

let keys = [| "alpha"; "beta"; "gamma" |]

let gen_int_register r : Datatypes.Int_register.op =
  match Rng.int r 8 with
  | 0 | 1 | 2 -> Inc (1 + Rng.int r 9)
  | 3 | 4 | 5 -> Dec (1 + Rng.int r 9)
  | 6 -> Set (Rng.int r 100)
  | _ -> Read

let gen_multi_register ~items r : Datatypes.Multi_register.op =
  let i = Rng.int r items in
  match Rng.int r 8 with
  | 0 | 1 | 2 -> Inc (i, 1 + Rng.int r 9)
  | 3 | 4 | 5 -> Dec (i, 1 + Rng.int r 9)
  | 6 -> Set (i, Rng.int r 100)
  | _ -> Read_all

let gen_kv r : Datatypes.Kv_store.op =
  let k = Rng.pick r keys in
  match Rng.int r 4 with
  | 0 -> Upd (k, Printf.sprintf "v%d" (Rng.int r 20))
  | 1 -> Del k
  | _ -> Qry k

let gen_document ~sections r : Datatypes.Document.op =
  let i = Rng.int r sections in
  match Rng.int r 5 with
  | 0 | 1 | 2 -> Annotate (i, Printf.sprintf "note-%d" (Rng.int r 12))
  | 3 -> Commit (i, Printf.sprintf "body-%d" (Rng.int r 12))
  | _ -> Review

(* a log entry's (author, seq) key uniquely determines its text in any
   real execution — per-author sequence numbers are never reused — so
   the generator derives the text from the key *)
let gen_log r : Datatypes.Log.op =
  match Rng.int r 4 with
  | 0 | 1 | 2 ->
    let author = Rng.int r 3 and seq = Rng.int r 40 in
    Append
      (Datatypes.Log.entry ~author ~seq (Printf.sprintf "m%d.%d" author seq))
  | _ -> Seal

let gen_bank r : Datatypes.Bank_account.op =
  match Rng.int r 7 with
  | 0 | 1 -> Deposit (1 + Rng.int r 30)
  | 2 | 3 -> Withdraw (1 + Rng.int r 30)
  | 4 | 5 -> Withdraw_checked (1 + Rng.int r 30)
  | _ -> Audit

let gen_cards r : Datatypes.Card_table.op =
  match Rng.int r 5 with
  | 4 -> Round_end
  | _ ->
    Play (Rng.int r 4, Rng.pick r [| "A"; "K"; "Q"; "J"; "10"; "9" |])

let gen_counter r : Objects.Counter.op =
  match Rng.int r 5 with 4 -> Value | _ -> Add (Rng.int r 21 - 10)

let gen_gset r : Objects.Gset.op =
  match Rng.int r 5 with 4 -> Elements | _ -> Add (Rng.pick r keys)

let gen_or_set r : Objects.Or_set.op =
  match Rng.int r 6 with
  | 0 | 1 | 2 -> Add (Rng.pick r keys, Rng.int r 1000)
  | 3 | 4 -> Remove (Rng.pick r keys)
  | _ -> Elements

let gen_lww r : Objects.Lww_map.op =
  let key = Rng.pick r keys in
  let ts = Rng.int r 50 and src = Rng.int r 4 in
  match Rng.int r 5 with
  | 0 | 1 | 2 -> Put { key; ts; src; value = Printf.sprintf "v%d" (Rng.int r 20) }
  | 3 -> Remove { key; ts; src }
  | _ -> Get key

(* An RGA id uniquely determines its payload in any real execution (a
   client never reuses an id), so the generator derives the whole insert
   from the id: colliding draws yield identical operations, which is
   exactly the invariant insert/insert commutativity rests on. *)
let gen_rga r : Objects.Rga.op =
  match Rng.int r 6 with
  | 5 -> Read
  | 4 -> Delete (Rng.int r 13, Rng.int r 4)
  | _ ->
    let seq = Rng.int r 97 and src = Rng.int r 5 in
    let after = if seq mod 3 = 0 then None else Some (seq mod 13, src) in
    let ch = String.make 1 (Char.chr (97 + ((seq * 7) + src) mod 26)) in
    Insert { id = (seq, src); after; ch }

let suite ~seed =
  [
    check Datatypes.Int_register.spec ~gen_op:gen_int_register ~seed ();
    check
      (Datatypes.Multi_register.spec ~items:3)
      ~gen_op:(gen_multi_register ~items:3) ~seed ();
    check Datatypes.Kv_store.spec ~gen_op:gen_kv ~seed ();
    check
      (Datatypes.Document.spec ~sections:2)
      ~gen_op:(gen_document ~sections:2) ~seed ();
    check Datatypes.Log.spec ~gen_op:gen_log ~seed ();
    check Datatypes.Bank_account.spec ~gen_op:gen_bank ~seed ();
    check Datatypes.Card_table.spec ~gen_op:gen_cards ~seed ();
    check Objects.Counter.spec ~gen_op:gen_counter ~seed ();
    check Objects.Gset.spec ~gen_op:gen_gset ~seed ();
    check Objects.Or_set.spec ~gen_op:gen_or_set ~seed ();
    check Objects.Lww_map.spec ~gen_op:gen_lww ~seed ();
    check Objects.Rga.spec ~gen_op:gen_rga ~seed ();
  ]
