(** Soundness lint for the {!Seq_spec} commutativity relations.

    Deriving [Cid] from a declared relation is only as safe as the
    relation: a pair of classes declared commuting that is not would let
    the §6.1 protocol deliver genuinely conflicting operations in
    different orders at different members.  This lint discharges exactly
    those proof obligations: for every {e declared-commuting} class pair
    ({!Seq_spec.class_pairs}) it samples operation pairs at states
    reachable by random walks from [init] and checks
    {!State_machine.commute_at}.  (Declared {e non}-commuting pairs need
    no check — demotion to [Ncid] costs concurrency, never safety.)

    Runs inside [causalb-check --self-test]: the suite over the real
    specs must report zero violations, and a deliberately mislabeled
    spec must be caught. *)

type violation = {
  class_a : string;
  class_b : string;
  state : string;  (** pretty-printed witness state *)
  op_a : string;
  op_b : string;
}

type report = {
  spec_name : string;
  pairs_checked : int;  (** declared-commuting pairs with sampled ops *)
  pairs_skipped : int;  (** pairs the generator produced no ops for *)
  checks : int;         (** commute_at evaluations *)
  violations : violation list;
}

val ok : report -> bool
(** No violations and nothing silently skipped. *)

val pp_report : Format.formatter -> report -> unit

val check :
  ('op, 'state) Seq_spec.t ->
  gen_op:(Causalb_util.Rng.t -> 'op) ->
  ?states:int ->
  ?walk:int ->
  ?samples:int ->
  seed:int ->
  unit ->
  report
(** [check spec ~gen_op ~seed ()] explores [states] random walks of
    length up to [walk] (uniform per walk) and, at each reached state,
    tests [samples] operation pairs for every declared-commuting class
    pair.  [gen_op] must cover every class for full coverage; classes it
    never produces are counted in [pairs_skipped].  Deterministic in
    [seed]. *)

val suite : seed:int -> report list
(** The lint over every spec shipped in this library: the seven
    {!Datatypes} and the five {!Objects}. *)
