module Label = Causalb_graph.Label

let snapshots_prefixes ~machine replicas =
  let all = List.map Replica.snapshots replicas in
  let shortest =
    List.fold_left (fun acc l -> min acc (List.length l)) max_int all
  in
  let shortest = if shortest = max_int then 0 else shortest in
  let truncate l = List.filteri (fun i _ -> i < shortest) l in
  (machine, List.map truncate all, shortest)

let first_disagreement ~machine replicas =
  let _, prefixes, len = snapshots_prefixes ~machine replicas in
  match prefixes with
  | [] | [ _ ] -> None
  | first :: rest ->
    let eq = machine.State_machine.equal in
    let rec scan i =
      if i >= len then None
      else begin
        let s0 = List.nth first i in
        if List.for_all (fun l -> eq s0 (List.nth l i)) rest then scan (i + 1)
        else Some i
      end
    in
    scan 0

let agreement_at_stable_points ~machine replicas =
  first_disagreement ~machine replicas = None

let stable_digests_agree ~machine replicas =
  let digests r =
    List.map
      (fun c -> machine.State_machine.digest c.Replica.end_state)
      (Replica.cycles r)
  in
  match List.map digests replicas with
  | [] | [ _ ] -> true
  | first :: rest ->
    let rec agree a b =
      match (a, b) with
      | [], _ | _, [] -> true
      | x :: xs, y :: ys -> x = y && agree xs ys
    in
    List.for_all (agree first) rest

let window_sets_agree replicas =
  let sets r =
    List.map
      (fun c -> Label.Set.of_list (List.map fst c.Replica.window))
      (Replica.cycles r)
  in
  match List.map sets replicas with
  | [] | [ _ ] -> true
  | first :: rest ->
    let agree a b =
      let rec loop a b =
        match (a, b) with
        | [], _ | _, [] -> true
        | x :: xs, y :: ys -> Label.Set.equal x y && loop xs ys
      in
      loop a b
    in
    List.for_all (agree first) rest

let windows_transition_preserving ~machine replica =
  let check_cycle c =
    let ops = List.map snd c.Replica.window in
    let rec pairs = function
      | [] -> true
      | a :: rest ->
        List.for_all (State_machine.commute_at machine c.Replica.start_state a) rest
        && pairs rest
    in
    pairs ops
  in
  List.for_all check_cycle (Replica.cycles replica)

let serial_witness ~machine replica =
  let eq = machine.State_machine.equal in
  let replay (state, ok, acc) c =
    let ops =
      List.map snd c.Replica.window @ [ snd c.Replica.closed_by ]
    in
    let state' = List.fold_left machine.State_machine.apply state ops in
    (state', ok && eq state' c.Replica.end_state, List.rev_append ops acc)
  in
  let _, ok, acc =
    List.fold_left replay (machine.State_machine.init, true, [])
      (Replica.cycles replica)
  in
  if ok then Some (List.rev acc) else None

let divergence_fraction ~machine ~states =
  let eq = machine.State_machine.equal in
  let diverged sample =
    match sample with
    | [] | [ _ ] -> false
    | first :: rest -> not (List.for_all (eq first) rest)
  in
  match states with
  | [] -> 0.0
  | _ ->
    let total = List.length states in
    let bad = List.length (List.filter diverged states) in
    float_of_int bad /. float_of_int total
