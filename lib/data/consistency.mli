(** Replica-consistency verifiers (paper §4–6).

    These predicates give the paper's informal guarantees an executable
    form; the test suite asserts them on simulated runs and the harness
    uses them as run-time sanity checks:

    {ul
    {- {b agreement at stable points}: all replicas pass through the same
       sequence of stable states (§4.1 — stable points are reproducible);}
    {- {b window agreement}: each closed cycle contains the same operation
       set at every replica, though possibly in different orders (§3.2);}
    {- {b transition preservation}: every window's operations pairwise
       commute from the window's start state, so any interleaving reaches
       the same stable state (§4.1, §5.1);}
    {- {b one-copy serializability}: the common stable-state sequence is
       produced by some single serial execution of all operations (§2.2's
       claim that [inc → rd] ordering "also guarantees 1-copy
       serializability").}} *)

val agreement_at_stable_points :
  machine:('op, 'state) State_machine.t ->
  ('op, 'state) Replica.t list ->
  bool
(** Snapshots agree cycle-by-cycle on the common prefix of closed
    cycles. *)

val stable_digests_agree :
  machine:('op, 'state) State_machine.t ->
  ('op, 'state) Replica.t list ->
  bool
(** Cycle-by-cycle agreement of the machine's {e canonical} state
    digests over the common prefix of closed cycles.  Strictly weaker
    than {!agreement_at_stable_points} on the states themselves, but it
    is the form the offline checker can audit from a trace alone — the
    digests are what {!Service} stamps into its stable-point [Mark]
    records — and it additionally exercises the digest's canonicity:
    replicas that applied a window in different orders must still emit
    equal digests whatever internal shape (map balancing, list order)
    their states carry. *)

val first_disagreement :
  machine:('op, 'state) State_machine.t ->
  ('op, 'state) Replica.t list ->
  int option
(** Earliest cycle index at which two replicas' stable states differ. *)

val window_sets_agree : ('op, 'state) Replica.t list -> bool
(** Same label set in every replica's cycle [i], for the common prefix. *)

val windows_transition_preserving :
  machine:('op, 'state) State_machine.t ->
  ('op, 'state) Replica.t ->
  bool
(** For every closed cycle: all pairs of interior operations commute from
    the cycle's start state ([F(mb, F(ma, s)) = F(ma, F(mb, s))]); with
    the closing sync applied last this makes every interleaving reach the
    cycle's [end_state]. *)

val serial_witness :
  machine:('op, 'state) State_machine.t ->
  ('op, 'state) Replica.t ->
  'op list option
(** A single serial schedule (the replica's own applied order) that
    reproduces every stable state — [Some ops] iff replaying the
    replica's cycles sequentially through [machine] reproduces each
    recorded [end_state] (one-copy serializability witness). *)

val divergence_fraction :
  machine:('op, 'state) State_machine.t ->
  states:'state list list ->
  float
(** Given per-sample lists of replica states (e.g. sampled by the harness
    at fixed virtual-time intervals), the fraction of samples in which at
    least two replicas disagreed — the paper's "tolerated transient
    inconsistency between stable points". *)
