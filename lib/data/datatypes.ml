(* Every datatype is a sequential specification: state, transition
   function, a class-level commutativity relation, and (optionally)
   observer classes.  The Cid/Ncid labeling the §6 access protocol needs
   is DERIVED from the relation by Seq_spec.make — no constructor is
   hand-marked, and Commute_lint validates each declared-commuting pair
   against State_machine.commute_at from reachable states. *)

module Int_register = struct
  type op = Inc of int | Dec of int | Set of int | Read

  type state = int

  let apply s = function
    | Inc n -> s + n
    | Dec n -> s - n
    | Set n -> n
    | Read -> s

  let class_of = function
    | Inc _ -> "inc"
    | Dec _ -> "dec"
    | Set _ -> "set"
    | Read -> "read"

  (* inc/dec are additions — they commute among themselves; set conflicts
     with everything including itself; read is the identity (commutes
     with all) but its return value is order-sensitive: observer. *)
  let commutes a b =
    match (a, b) with
    | "set", _ | _, "set" -> false
    | _ -> true

  let pp_op ppf = function
    | Inc n -> Format.fprintf ppf "inc(%d)" n
    | Dec n -> Format.fprintf ppf "dec(%d)" n
    | Set n -> Format.fprintf ppf "set(%d)" n
    | Read -> Format.pp_print_string ppf "rd"

  let spec =
    Seq_spec.make ~name:"int-register" ~init:0 ~apply ~equal:Int.equal
      ~classes:[ "inc"; "dec"; "set"; "read" ]
      ~class_of ~commutes
      ~observer:(String.equal "read")
      ~observe:(fun s op ->
        match op with Read -> Some (string_of_int s) | _ -> None)
      ~pp_state:Format.pp_print_int ~pp_op ()

  let machine = Seq_spec.to_machine spec
end

module Multi_register = struct
  type op = Inc of int * int | Dec of int * int | Set of int * int | Read_all

  type state = int array

  let check_item items i =
    if i < 0 || i >= items then
      invalid_arg (Printf.sprintf "Multi_register: item %d out of range" i)

  let apply items s op =
    let upd i f =
      check_item items i;
      let s' = Array.copy s in
      s'.(i) <- f s'.(i);
      s'
    in
    match op with
    | Inc (i, n) -> upd i (fun v -> v + n)
    | Dec (i, n) -> upd i (fun v -> v - n)
    | Set (i, n) -> upd i (fun _ -> n)
    | Read_all -> s

  let class_of = function
    | Inc _ -> "inc"
    | Dec _ -> "dec"
    | Set _ -> "set"
    | Read_all -> "read-all"

  (* Classes are per constructor, not per item: a set on item i commutes
     with a set on item j ≠ i, but the class-level relation must answer
     for the same-item case too, so "set" conflicts (conservative — the
     per-item Item_frontend recovers the lost concurrency by scoping). *)
  let commutes a b =
    match (a, b) with
    | "set", _ | _, "set" -> false
    | _ -> true

  let pp_op ppf = function
    | Inc (i, n) -> Format.fprintf ppf "inc(x%d,%d)" i n
    | Dec (i, n) -> Format.fprintf ppf "dec(x%d,%d)" i n
    | Set (i, n) -> Format.fprintf ppf "set(x%d,%d)" i n
    | Read_all -> Format.pp_print_string ppf "rd*"

  let pp_state ppf s =
    Format.fprintf ppf "[%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int s)))

  let render s =
    String.concat ";" (Array.to_list (Array.map string_of_int s))

  let spec ~items =
    if items <= 0 then invalid_arg "Multi_register.spec: items <= 0";
    Seq_spec.make ~name:"multi-register" ~init:(Array.make items 0)
      ~apply:(apply items)
      ~equal:(fun a b -> a = b)
      ~classes:[ "inc"; "dec"; "set"; "read-all" ]
      ~class_of ~commutes
      ~observer:(String.equal "read-all")
      ~observe:(fun s op ->
        match op with Read_all -> Some (render s) | _ -> None)
      ~pp_state ~pp_op ()

  let machine ~items = Seq_spec.to_machine (spec ~items)
end

module Kv_store = struct
  module Smap = Map.Make (String)

  type op = Upd of string * string | Del of string | Qry of string

  type state = string Smap.t

  let apply s = function
    | Upd (k, v) -> Smap.add k v s
    | Del k -> Smap.remove k s
    | Qry _ -> s

  let class_of = function
    | Upd _ -> "upd"
    | Del _ -> "del"
    | Qry _ -> "qry"

  (* upd conflicts with itself (last writer wins by order) and with del;
     del/del commute (removals are idempotent unions), and the derivation
     discovers it — del is Cid here where the hand-marked seed said Ncid.
     qry is the identity; the name-service protocol layer adds the
     context check that catches order-sensitive answers, which is why it
     is deliberately NOT an observer (§5.2). *)
  let commutes a b =
    match (a, b) with
    | "upd", ("upd" | "del") | "del", "upd" -> false
    | _ -> true

  let pp_op ppf = function
    | Upd (k, v) -> Format.fprintf ppf "upd(%s=%s)" k v
    | Del k -> Format.fprintf ppf "del(%s)" k
    | Qry k -> Format.fprintf ppf "qry(%s)" k

  let pp_state ppf s =
    Format.fprintf ppf "{%s}"
      (String.concat ","
         (List.map (fun (k, v) -> k ^ "=" ^ v) (Smap.bindings s)))

  let spec =
    Seq_spec.make ~name:"kv-store" ~init:Smap.empty ~apply
      ~equal:(Smap.equal String.equal)
      ~classes:[ "upd"; "del"; "qry" ]
      ~class_of ~commutes
      ~observe:(fun s op ->
        match op with Qry k -> Smap.find_opt k s | _ -> None)
      ~digest:(fun s -> Hashtbl.hash (Smap.bindings s))
      ~pp_state ~pp_op ()

  let machine = Seq_spec.to_machine spec

  let lookup s k = Smap.find_opt k s
end

module Document = struct
  module String_set = Set.Make (String)

  type op = Annotate of int * string | Commit of int * string | Review

  type section = { body : string; annotations : String_set.t }

  type state = section array

  let check_section sections i =
    if i < 0 || i >= sections then
      invalid_arg (Printf.sprintf "Document: section %d out of range" i)

  let apply sections s op =
    let upd i f =
      check_section sections i;
      let s' = Array.copy s in
      s'.(i) <- f s'.(i);
      s'
    in
    match op with
    | Annotate (i, text) ->
      upd i (fun sec ->
          { sec with annotations = String_set.add text sec.annotations })
    | Commit (i, body) ->
      (* A commit folds accepted annotations into the body and clears
         them: it reads the annotation set, so it cannot commute with
         concurrent annotations. *)
      upd i (fun _ -> { body; annotations = String_set.empty })
    | Review -> s

  let class_of = function
    | Annotate _ -> "annotate"
    | Commit _ -> "commit"
    | Review -> "review"

  let commutes a b =
    match (a, b) with
    | "commit", _ | _, "commit" -> false
    | _ -> true

  let equal a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun x y ->
           String.equal x.body y.body
           && String_set.equal x.annotations y.annotations)
         a b

  let pp_op ppf = function
    | Annotate (i, t) -> Format.fprintf ppf "annotate(s%d,%S)" i t
    | Commit (i, b) -> Format.fprintf ppf "commit(s%d,%S)" i b
    | Review -> Format.pp_print_string ppf "review"

  let render s =
    let buf = Buffer.create 256 in
    Array.iteri
      (fun i sec ->
        Buffer.add_string buf (Printf.sprintf "## section %d\n%s\n" i sec.body);
        String_set.iter
          (fun a -> Buffer.add_string buf (Printf.sprintf "  [note] %s\n" a))
          sec.annotations)
      s;
    Buffer.contents buf

  let pp_state ppf s = Format.pp_print_string ppf (render s)

  let spec ~sections =
    if sections <= 0 then invalid_arg "Document.spec: sections <= 0";
    let init =
      Array.init sections (fun _ ->
          { body = ""; annotations = String_set.empty })
    in
    Seq_spec.make ~name:"document" ~init ~apply:(apply sections) ~equal
      ~classes:[ "annotate"; "commit"; "review" ]
      ~class_of ~commutes
      ~observer:(String.equal "review")
      ~observe:(fun s op ->
        match op with Review -> Some (render s) | _ -> None)
      ~digest:(fun s ->
        Hashtbl.hash
          (Array.map
             (fun sec -> (sec.body, String_set.elements sec.annotations))
             s))
      ~pp_state ~pp_op ()

  let machine ~sections = Seq_spec.to_machine (spec ~sections)
end

module Log = struct
  type entry = { author : int; seq : int; text : string }

  type op = Append of entry | Seal

  type state = { sealed : entry list list; open_ : entry list }

  let entry ~author ~seq text = { author; seq; text }

  let cmp_entry a b =
    match Int.compare a.author b.author with
    | 0 -> Int.compare a.seq b.seq
    | c -> c

  let apply s = function
    | Append e ->
      (* canonical order makes concurrent appends commute *)
      { s with open_ = List.sort_uniq cmp_entry (e :: s.open_) }
    | Seal -> { sealed = s.open_ :: s.sealed; open_ = [] }

  let class_of = function Append _ -> "append" | Seal -> "seal"

  (* Sealing reads the whole open set (the rotated segment's contents are
     order-sensitive): observer, hence Ncid. *)
  let commutes a b =
    match (a, b) with
    | "append", "seal" | "seal", "append" -> false
    | _ -> true

  let pp_op ppf = function
    | Append e -> Format.fprintf ppf "append(%d.%d,%S)" e.author e.seq e.text
    | Seal -> Format.pp_print_string ppf "seal"

  let pp_state ppf s =
    Format.fprintf ppf "open=%d sealed-segments=%d" (List.length s.open_)
      (List.length s.sealed)

  let spec =
    Seq_spec.make ~name:"log" ~init:{ sealed = []; open_ = [] } ~apply
      ~equal:(fun a b -> a = b)
      ~classes:[ "append"; "seal" ]
      ~class_of ~commutes
      ~observer:(String.equal "seal")
      ~observe:(fun s op ->
        match op with
        | Seal -> Some (Printf.sprintf "sealed %d entries" (List.length s.open_))
        | _ -> None)
      ~pp_state ~pp_op ()

  let machine = Seq_spec.to_machine spec
end

module Bank_account = struct
  type op = Deposit of int | Withdraw of int | Withdraw_checked of int | Audit

  type state = { balance : int; rejected : int }

  let apply s = function
    | Deposit n -> { s with balance = s.balance + n }
    | Withdraw n -> { s with balance = s.balance - n }
    | Withdraw_checked n ->
      if s.balance >= n then { s with balance = s.balance - n }
      else { s with rejected = s.rejected + 1 }
    | Audit -> s

  let class_of = function
    | Deposit _ -> "deposit"
    | Withdraw _ -> "withdraw"
    | Withdraw_checked _ -> "withdraw-checked"
    | Audit -> "audit"

  (* A checked withdrawal is order-sensitive near the balance boundary —
     against deposits, unconditional withdrawals and other checked
     withdrawals alike. *)
  let commutes a b =
    match (a, b) with
    | "withdraw-checked", _ | _, "withdraw-checked" -> false
    | _ -> true

  let pp_op ppf = function
    | Deposit n -> Format.fprintf ppf "deposit(%d)" n
    | Withdraw n -> Format.fprintf ppf "withdraw(%d)" n
    | Withdraw_checked n -> Format.fprintf ppf "withdraw?(%d)" n
    | Audit -> Format.pp_print_string ppf "audit"

  let pp_state ppf s =
    Format.fprintf ppf "balance=%d rejected=%d" s.balance s.rejected

  let spec =
    Seq_spec.make ~name:"bank-account"
      ~init:{ balance = 0; rejected = 0 }
      ~apply
      ~equal:(fun a b -> a = b)
      ~classes:[ "deposit"; "withdraw"; "withdraw-checked"; "audit" ]
      ~class_of ~commutes
      ~observer:(String.equal "audit")
      ~observe:(fun s op ->
        match op with
        | Audit ->
          Some
            (Printf.sprintf "balance=%d rejected=%d" s.balance s.rejected)
        | _ -> None)
      ~pp_state ~pp_op ()

  let machine = Seq_spec.to_machine spec
end

module Card_table = struct
  type op = Play of int * string | Round_end

  type round = (int * string) list

  type state = { finished : round list; table : round }

  let cmp_play (p1, c1) (p2, c2) =
    match Int.compare p1 p2 with 0 -> String.compare c1 c2 | c -> c

  let apply s = function
    | Play (player, card) ->
      (* Keep the table sorted so concurrent plays commute structurally. *)
      { s with table = List.sort cmp_play ((player, card) :: s.table) }
    | Round_end -> { finished = s.table :: s.finished; table = [] }

  let class_of = function Play _ -> "play" | Round_end -> "round-end"

  (* Ending a round reads the table (the recorded trick is
     order-sensitive): observer. *)
  let commutes a b =
    match (a, b) with
    | "play", "round-end" | "round-end", "play" -> false
    | _ -> true

  let pp_op ppf = function
    | Play (p, c) -> Format.fprintf ppf "play(p%d,%s)" p c
    | Round_end -> Format.pp_print_string ppf "round-end"

  let pp_round ppf r =
    Format.fprintf ppf "[%s]"
      (String.concat " "
         (List.map (fun (p, c) -> Printf.sprintf "p%d:%s" p c) r))

  let pp_state ppf s =
    Format.fprintf ppf "table=%a finished=%d" pp_round s.table
      (List.length s.finished)

  let spec =
    Seq_spec.make ~name:"card-table" ~init:{ finished = []; table = [] }
      ~apply
      ~equal:(fun a b -> a = b)
      ~classes:[ "play"; "round-end" ]
      ~class_of ~commutes
      ~observer:(String.equal "round-end")
      ~observe:(fun s op ->
        match op with
        | Round_end -> Some (Format.asprintf "%a" pp_round s.table)
        | _ -> None)
      ~pp_state ~pp_op ()

  let machine = Seq_spec.to_machine spec
end
