(** The shared-data types used by the paper's examples, packaged as
    sequential specifications.

    Each corresponds to a workload the paper names: the integer with
    inc/dec/read (§2.2, §5.1), multiple independent integer items
    (decomposition of X̄ into items, §5.1), the name-service registry with
    update/query (§5.2), the collaboratively annotated design document
    (§1, §5.2, ref [11]) and the multiplayer card game (§5.1).

    Every module declares a {!Seq_spec.t} — transition function plus a
    class-level commutativity relation — and its [machine] is
    [Seq_spec.to_machine spec]: the [Cid]/[Ncid] labeling is {e derived}
    from the relation, not hand-marked per constructor, and
    {!Commute_lint} checks the relation against
    {!State_machine.commute_at} from reachable states. *)

(** Integer data with commutative increment/decrement and non-commutative
    set/read (the paper's running example). *)
module Int_register : sig
  type op =
    | Inc of int
    | Dec of int
    | Set of int   (** overwrite — does not commute with inc/dec *)
    | Read         (** identity on the state; sync because its return
                       value is order-sensitive (observer class) *)

  type state = int

  val spec : (op, state) Seq_spec.t

  val machine : (op, state) State_machine.t

  val pp_op : Format.formatter -> op -> unit
end

(** A vector of independent integer items: operations on distinct items
    always commute; inc/dec on the same item commute; set/read do not
    (§5.1's "decomposition of X̄ into distinct items").  The class-level
    relation is conservative — "set" conflicts even across items; the
    per-item front-end recovers that concurrency by scoping windows. *)
module Multi_register : sig
  type op =
    | Inc of int * int  (** item, amount *)
    | Dec of int * int
    | Set of int * int
    | Read_all

  type state = int array

  val spec : items:int -> (op, state) Seq_spec.t
  (** @raise Invalid_argument if [items <= 0]. *)

  val machine : items:int -> (op, state) State_machine.t
  (** @raise Invalid_argument if [items <= 0]. *)
end

(** Name-service registry (§5.2): conflicting updates, commutative
    queries.  A query is the identity on the state; the protocol layer
    ({!Causalb_protocols.Name_service}) adds the context check that
    detects order-sensitive query results, which is why "qry" is
    deliberately {e not} an observer class here.  The derivation also
    discovers that deletes commute with each other (removals are
    idempotent), so [Del] lands in [Cid]. *)
module Kv_store : sig
  type op =
    | Upd of string * string
    | Del of string
    | Qry of string

  type state = string Map.Make(String).t

  val spec : (op, state) Seq_spec.t

  val machine : (op, state) State_machine.t

  val lookup : state -> string -> string option
end

(** Collaborative design document (distributed conferencing, refs [11]):
    participants annotate sections concurrently (commutative, set
    semantics); an editor's commit replaces a section body
    (non-commutative). *)
module Document : sig
  module String_set : Set.S with type elt = string

  type op =
    | Annotate of int * string  (** section, annotation text *)
    | Commit of int * string    (** section, new body *)
    | Review                    (** read the whole document — sync *)

  type section = { body : string; annotations : String_set.t }

  type state = section array

  val spec : sections:int -> (op, state) Seq_spec.t

  val machine : sections:int -> (op, state) State_machine.t

  val render : state -> string
end

(** An append-only shared log (chat room, audit journal).  Entries carry
    their author and a per-author sequence number and the log is kept in
    canonical [(author, seq)] order, so concurrent appends commute
    structurally; sealing a segment (rotating the journal) reads the
    whole set and is non-commutative. *)
module Log : sig
  type entry = { author : int; seq : int; text : string }

  type op =
    | Append of entry
    | Seal          (** close the current segment — sync *)

  type state = { sealed : entry list list; open_ : entry list }

  val spec : (op, state) Seq_spec.t

  val machine : (op, state) State_machine.t

  val entry : author:int -> seq:int -> string -> entry
end

(** A bank account replicated across branches — the classic illustration
    of commutativity classes: unconditional deposits/withdrawals commute
    (the balance is a sum), while a checked withdrawal (only succeeds on
    sufficient funds) and an audit are order-sensitive and must sit at
    stable points. *)
module Bank_account : sig
  type op =
    | Deposit of int
    | Withdraw of int          (** unconditional; may overdraw *)
    | Withdraw_checked of int  (** applies only if balance suffices *)
    | Audit                    (** read balance + count — sync *)

  type state = { balance : int; rejected : int }

  val spec : (op, state) Seq_spec.t

  val machine : (op, state) State_machine.t
end

(** Multiplayer card game (§5.1): players' cards within one round are
    concurrent; a round marker closes the trick.  The state records, per
    round, the set of cards on the table. *)
module Card_table : sig
  type op =
    | Play of int * string  (** player, card *)
    | Round_end

  type round = (int * string) list (* sorted by player *)

  type state = { finished : round list; table : round }

  val spec : (op, state) Seq_spec.t

  val machine : (op, state) State_machine.t
end
