module Engine = Causalb_sim.Engine
module Net = Causalb_net.Net
module Vgroup = Causalb_core.Vgroup
module Message = Causalb_core.Message
module Label = Causalb_graph.Label

type ('op, 'state) node_state = {
  mutable data : 'state;
  mutable applied : int;
  (* stable snapshots, keyed by the label of the closing sync message:
     every node that applies that sync must snapshot the same state *)
  mutable snapshots : (Label.t * 'state) list; (* reversed *)
}

type ('op, 'state) t = {
  engine : Engine.t;
  group : ('op, 'state) Vgroup.t;
  machine : ('op, 'state) State_machine.t;
  nodes : ('op, 'state) node_state array;
  (* shared §6.1 front-end manager; label state dies with each view *)
  mutable manager_vid : int;
  win : Window.t;
  mutable parked : (int * 'op) list; (* reversed; submitted mid-change *)
}

let machine_apply t node ~label op =
  node.data <- t.machine.State_machine.apply node.data op;
  node.applied <- node.applied + 1;
  match t.machine.State_machine.kind op with
  | Op.Non_commutative ->
    node.snapshots <- (label, node.data) :: node.snapshots
  | Op.Commutative -> ()

(* An operation may go out only when its source sits exactly at the
   manager's epoch: labels the manager tracks all belong to [manager_vid],
   and a message carrying ancestors from another view's engine would
   block forever.  Anything else is parked and re-tried as views settle;
   a view boundary is itself a stable point, so restarting the window
   bookkeeping there is sound. *)
let rec manager_send t ~src op =
  let at_epoch =
    (not (Vgroup.is_changing t.group src))
    &&
    match Vgroup.view_of t.group src with
    | Some v -> v.Vgroup.vid = t.manager_vid
    | None -> false
  in
  if not at_epoch then t.parked <- (src, op) :: t.parked
  else begin
    let kind = t.machine.State_machine.kind op in
    let after = Window.deps_for t.win ~kind ~fallback:[] in
    match Vgroup.send t.group ~src ~after op with
    | Some label -> Window.note t.win ~kind label
    | None -> t.parked <- (src, op) :: t.parked
  end

and drain_parked t =
  let parked = List.rev t.parked in
  t.parked <- [];
  List.iter
    (fun (src, op) ->
      if Vgroup.is_member t.group src then manager_send t ~src op)
    parked

let on_view t ~node:_ (v : Vgroup.view) =
  if v.Vgroup.vid > t.manager_vid then begin
    (* labels of the old view are dead; the install is a stable point *)
    t.manager_vid <- v.Vgroup.vid;
    Window.reset t.win
  end;
  (* every install may unblock parked submissions from that node *)
  drain_parked t

let create engine ~nodes:n ~initial ~machine ?latency () =
  let net = Net.create engine ~nodes:n ?latency ~fifo:false () in
  let node_states =
    Array.init n (fun _ ->
        { data = machine.State_machine.init; applied = 0; snapshots = [] })
  in
  let t_ref = ref None in
  let group =
    Vgroup.create net ~initial
      ~on_deliver:(fun ~node ~vid:_ ~time:_ msg ->
        match !t_ref with
        | Some t ->
          machine_apply t t.nodes.(node) ~label:(Message.label msg)
            (Message.payload msg)
        | None -> assert false)
      ~on_view:(fun ~node v ->
        match !t_ref with
        | Some t -> on_view t ~node v
        | None -> () (* initial view installs during create *))
      ~get_state:(fun ~node -> node_states.(node).data)
      ~set_state:(fun ~node s -> node_states.(node).data <- s)
      ()
  in
  let t =
    {
      engine;
      group;
      machine;
      nodes = node_states;
      manager_vid = 0;
      win = Window.create ();
      parked = [];
    }
  in
  t_ref := Some t;
  t

let submit t ~src op =
  if not (Vgroup.is_member t.group src) then
    invalid_arg "Dservice.submit: src is not a member";
  manager_send t ~src op

let join t ~node = Vgroup.join t.group ~node

let leave t ~node = Vgroup.leave t.group ~node

let is_member t node = Vgroup.is_member t.group node

let state t node = t.nodes.(node).data

let applied_count t node = t.nodes.(node).applied

let run ?until t = Engine.run ?until t.engine

let survivors t =
  List.filter (is_member t) (List.init (Array.length t.nodes) Fun.id)

let check t =
  let eq = t.machine.State_machine.equal in
  let survivor_states = List.map (state t) (survivors t) in
  let survivors_agree =
    match survivor_states with
    | [] -> true
    | first :: rest -> List.for_all (eq first) rest
  in
  (* stable snapshots: for every (vid, k) present at several nodes, the
     states must be equal *)
  let snap_tbl = Label.Tbl.create 32 in
  Array.iter
    (fun n ->
      List.iter
        (fun (label, s) ->
          let prev =
            Option.value ~default:[] (Label.Tbl.find_opt snap_tbl label)
          in
          Label.Tbl.replace snap_tbl label (s :: prev))
        n.snapshots)
    t.nodes;
  let snapshots_agree =
    Label.Tbl.fold
      (fun _ states acc ->
        acc
        &&
        match states with
        | [] -> true
        | first :: rest -> List.for_all (eq first) rest)
      snap_tbl true
  in
  [
    ("views-agree", Vgroup.check_views_agree t.group);
    ("virtual-synchrony", Vgroup.check_virtual_synchrony t.group);
    ("stable-snapshots-agree", snapshots_agree);
    ("survivor-states-agree", survivors_agree);
  ]
