module Group = Causalb_core.Group
module Dep = Causalb_graph.Dep
module Label = Causalb_graph.Label

type 'op t = {
  group : 'op Group.t;
  kind : 'op -> Op.kind;
  win : Window.t;
  mutable submitted : int;
}

let create group ~kind () =
  { group; kind; win = Window.create (); submitted = 0 }

let submit t ~src ?name op =
  t.submitted <- t.submitted + 1;
  let kind = t.kind op in
  let dep = Dep.after_all (Window.deps_for t.win ~kind ~fallback:[]) in
  let label = Group.osend t.group ~src ?name ~dep op in
  Window.note t.win ~kind label;
  label

let submitted t = t.submitted

let cycles_opened t = Window.syncs t.win

let window_size t = Window.size t.win

let last_sync t = Window.last_sync t.win
