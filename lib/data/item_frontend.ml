module Group = Causalb_core.Group
module Dep = Causalb_graph.Dep
module Label = Causalb_graph.Label

type scope = Item of int | Global

type 'op t = {
  group : 'op Group.t;
  kind : 'op -> Op.kind;
  scope : 'op -> scope;
  items : (int, Window.t) Hashtbl.t;
  mutable last_global : Label.t option;
  mutable submitted : int;
}

let create group ~kind ~scope () =
  {
    group;
    kind;
    scope;
    items = Hashtbl.create 8;
    last_global = None;
    submitted = 0;
  }

let item_window t i =
  match Hashtbl.find_opt t.items i with
  | Some w -> w
  | None ->
    let w = Window.create () in
    Hashtbl.replace t.items i w;
    w

(* The anchor of an item with no history of its own is the last global
   sync: everything after a whole-state operation must follow it. *)
let global_anchor t =
  match t.last_global with Some g -> [ g ] | None -> []

let submit t ~src ?name op =
  t.submitted <- t.submitted + 1;
  match t.scope op with
  | Item i ->
    let w = item_window t i in
    let kind = t.kind op in
    let dep =
      Dep.after_all (Window.deps_for w ~kind ~fallback:(global_anchor t))
    in
    let label = Group.osend t.group ~src ?name ~dep op in
    Window.note w ~kind label;
    label
  | Global ->
    (* follows every item's outstanding traffic, then resets the world *)
    let ancestors =
      Hashtbl.fold
        (fun _ w acc -> Window.outstanding w ~fallback:(global_anchor t) @ acc)
        t.items (global_anchor t)
    in
    let dep = Dep.after_all ancestors in
    let label = Group.osend t.group ~src ?name ~dep op in
    Hashtbl.reset t.items;
    t.last_global <- Some label;
    label

let submitted t = t.submitted

let open_window t ~item =
  match Hashtbl.find_opt t.items item with
  | Some w -> Window.size w
  | None -> 0

let items_tracked t = Hashtbl.length t.items
