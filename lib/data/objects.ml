module Counter = struct
  type op = Add of int | Value

  type state = int

  let apply s = function Add n -> s + n | Value -> s

  let class_of = function Add _ -> "add" | Value -> "value"

  let pp_op ppf = function
    | Add n -> Format.fprintf ppf "add(%d)" n
    | Value -> Format.pp_print_string ppf "value"

  let spec =
    Seq_spec.make ~name:"counter" ~init:0 ~apply ~equal:Int.equal
      ~classes:[ "add"; "value" ]
      ~class_of
      ~commutes:(fun _ _ -> true)
      ~observer:(String.equal "value")
      ~observe:(fun s op ->
        match op with Value -> Some (string_of_int s) | _ -> None)
      ~pp_state:Format.pp_print_int ~pp_op ()

  let machine = Seq_spec.to_machine spec
end

module Gset = struct
  module String_set = Set.Make (String)

  type op = Add of string | Elements

  type state = String_set.t

  let apply s = function Add e -> String_set.add e s | Elements -> s

  let class_of = function Add _ -> "add" | Elements -> "elements"

  let elements = String_set.elements

  let pp_op ppf = function
    | Add e -> Format.fprintf ppf "add(%s)" e
    | Elements -> Format.pp_print_string ppf "elements"

  let spec =
    Seq_spec.make ~name:"gset" ~init:String_set.empty ~apply
      ~equal:String_set.equal
      ~classes:[ "add"; "elements" ]
      ~class_of
      ~commutes:(fun _ _ -> true)
      ~observer:(String.equal "elements")
      ~observe:(fun s op ->
        match op with
        | Elements -> Some (String.concat "," (elements s))
        | _ -> None)
      ~digest:(fun s -> Hashtbl.hash (elements s))
      ~pp_state:(fun ppf s ->
        Format.fprintf ppf "{%s}" (String.concat "," (elements s)))
      ~pp_op ()

  let machine = Seq_spec.to_machine spec
end

module Or_set = struct
  module Tagged = Set.Make (struct
    type t = string * int

    let compare = compare
  end)

  type op = Add of string * int | Remove of string | Elements

  type state = Tagged.t

  let apply s = function
    | Add (e, tag) -> Tagged.add (e, tag) s
    | Remove e -> Tagged.filter (fun (e', _) -> not (String.equal e e')) s
    | Elements -> s

  let class_of = function
    | Add _ -> "add"
    | Remove _ -> "remove"
    | Elements -> "elements"

  (* A remove reads the observed tag set (observer class, hence a sync
     point); it genuinely does not commute with an add of the same
     element, so the relation says so — the lint only has to discharge
     the declared-commuting pairs. *)
  let commutes a b =
    match (a, b) with
    | "add", "remove" | "remove", "add" -> false
    | _ -> true

  let mem s e = Tagged.exists (fun (e', _) -> String.equal e e') s

  let elements s =
    List.sort_uniq String.compare
      (List.map fst (Tagged.elements s))

  let tags s e =
    List.filter_map
      (fun (e', t) -> if String.equal e e' then Some t else None)
      (Tagged.elements s)

  let pp_op ppf = function
    | Add (e, t) -> Format.fprintf ppf "add(%s#%d)" e t
    | Remove e -> Format.fprintf ppf "remove(%s)" e
    | Elements -> Format.pp_print_string ppf "elements"

  let spec =
    Seq_spec.make ~name:"or-set" ~init:Tagged.empty ~apply ~equal:Tagged.equal
      ~classes:[ "add"; "remove"; "elements" ]
      ~class_of ~commutes
      ~observer:(fun c -> c = "remove" || c = "elements")
      ~observe:(fun s op ->
        match op with
        | Elements -> Some (String.concat "," (elements s))
        | _ -> None)
      ~digest:(fun s -> Hashtbl.hash (Tagged.elements s))
      ~pp_state:(fun ppf s ->
        Format.fprintf ppf "{%s}" (String.concat "," (elements s)))
      ~pp_op ()

  let machine = Seq_spec.to_machine spec
end

module Lww_map = struct
  module Smap = Map.Make (String)

  type entry = { ts : int; src : int; value : string option }

  type op =
    | Put of { key : string; ts : int; src : int; value : string }
    | Remove of { key : string; ts : int; src : int }
    | Get of string

  type state = entry Smap.t

  (* per-key max in the total order (ts, src, value): associative,
     commutative and idempotent, so every pair of mutations commutes *)
  let merge_entry key e s =
    Smap.update key
      (function
        | None -> Some e
        | Some prev ->
          if compare (e.ts, e.src, e.value) (prev.ts, prev.src, prev.value) > 0
          then Some e
          else Some prev)
      s

  let apply s = function
    | Put { key; ts; src; value } -> merge_entry key { ts; src; value = Some value } s
    | Remove { key; ts; src } -> merge_entry key { ts; src; value = None } s
    | Get _ -> s

  let class_of = function
    | Put _ -> "put"
    | Remove _ -> "remove"
    | Get _ -> "get"

  let find s k =
    match Smap.find_opt k s with Some { value; _ } -> value | None -> None

  let bindings s =
    Smap.fold
      (fun k e acc -> match e.value with Some v -> (k, v) :: acc | None -> acc)
      s []
    |> List.rev

  let pp_op ppf = function
    | Put { key; ts; src; value } ->
      Format.fprintf ppf "put(%s=%s@%d.%d)" key value ts src
    | Remove { key; ts; src } -> Format.fprintf ppf "rm(%s@%d.%d)" key ts src
    | Get k -> Format.fprintf ppf "get(%s)" k

  let spec =
    Seq_spec.make ~name:"lww-map" ~init:Smap.empty ~apply
      ~equal:(Smap.equal (fun a b -> compare a b = 0))
      ~classes:[ "put"; "remove"; "get" ]
      ~class_of
      ~commutes:(fun _ _ -> true)
      ~observer:(String.equal "get")
      ~observe:(fun s op -> match op with Get k -> find s k | _ -> None)
      ~digest:(fun s -> Hashtbl.hash (Smap.bindings s))
      ~pp_state:(fun ppf s ->
        Format.fprintf ppf "{%s}"
          (String.concat ","
             (List.map (fun (k, v) -> k ^ "=" ^ v) (bindings s))))
      ~pp_op ()

  let machine = Seq_spec.to_machine spec
end

module Rga = struct
  type id = int * int

  module Id_map = Map.Make (struct
    type t = id

    let compare = compare
  end)

  module Id_set = Set.Make (struct
    type t = id

    let compare = compare
  end)

  type node = { ch : string; after : id option }

  type state = { nodes : node Id_map.t; tombs : Id_set.t }

  type op =
    | Insert of { id : id; after : id option; ch : string }
    | Delete of id
    | Read

  (* Both mutators are structural additions under globally unique keys —
     a map add and a tombstone add — so any two commute; the sequence
     order is recovered only when somebody reads. *)
  let apply s = function
    | Insert { id; after; ch } ->
      { s with nodes = Id_map.add id { ch; after } s.nodes }
    | Delete id -> { s with tombs = Id_set.add id s.tombs }
    | Read -> s

  let class_of = function
    | Insert _ -> "insert"
    | Delete _ -> "delete"
    | Read -> "read"

  let to_text s =
    (* children of each anchor in descending id order: Id_map.iter runs
       in ascending key order, so prepending builds descending lists *)
    let children = Hashtbl.create 16 in
    Id_map.iter
      (fun id _ ->
        let anchor = (Id_map.find id s.nodes).after in
        let siblings =
          Option.value ~default:[] (Hashtbl.find_opt children anchor)
        in
        Hashtbl.replace children anchor (id :: siblings))
      s.nodes;
    let buf = Buffer.create 64 in
    let rec visit anchor =
      List.iter
        (fun id ->
          if not (Id_set.mem id s.tombs) then
            Buffer.add_string buf (Id_map.find id s.nodes).ch;
          visit (Some id))
        (Option.value ~default:[] (Hashtbl.find_opt children anchor))
    in
    visit None;
    Buffer.contents buf

  let size s =
    Id_map.fold
      (fun id _ n -> if Id_set.mem id s.tombs then n else n + 1)
      s.nodes 0

  let equal a b =
    Id_map.equal (fun x y -> x = y) a.nodes b.nodes
    && Id_set.equal a.tombs b.tombs

  let pp_op ppf = function
    | Insert { id = s, r; after; ch } ->
      Format.fprintf ppf "ins(%s@%d.%d after %s)" ch s r
        (match after with
        | None -> "^"
        | Some (s', r') -> Printf.sprintf "%d.%d" s' r')
    | Delete (s, r) -> Format.fprintf ppf "del(%d.%d)" s r
    | Read -> Format.pp_print_string ppf "read"

  let spec =
    Seq_spec.make ~name:"rga"
      ~init:{ nodes = Id_map.empty; tombs = Id_set.empty }
      ~apply ~equal
      ~classes:[ "insert"; "delete"; "read" ]
      ~class_of
      ~commutes:(fun _ _ -> true)
      ~observer:(String.equal "read")
      ~observe:(fun s op -> match op with Read -> Some (to_text s) | _ -> None)
      ~digest:(fun s ->
        Hashtbl.hash (Id_map.bindings s.nodes, Id_set.elements s.tombs))
      ~pp_state:(fun ppf s -> Format.fprintf ppf "%S" (to_text s))
      ~pp_op ()

  let machine = Seq_spec.to_machine spec
end
