(** Replicated objects defined purely as sequential specifications.

    These are the classic convergent datatypes, but nothing here is a
    CRDT implementation in the merge-function sense: each is an ordinary
    sequential state machine whose commutativity relation the
    {!Seq_spec} layer turns into a [Cid]/[Ncid] labeling, and the §6
    access protocol supplies exactly the delivery order the relation
    requires.  Operations whose classes always commute ride the causal
    broadcast concurrently; everything order-sensitive is a sync point.

    All states carry canonical digests (independent of map/set internal
    shape), so stable-point digest agreement can be audited offline by
    [causalb-check]. *)

(** An integer counter: concurrent additions commute; reading the total
    is an observer. *)
module Counter : sig
  type op =
    | Add of int   (** negative for decrement *)
    | Value        (** observer — read the total *)

  type state = int

  val spec : (op, state) Seq_spec.t

  val machine : (op, state) State_machine.t
end

(** A grow-only set: adds are idempotent unions and always commute. *)
module Gset : sig
  module String_set : Set.S with type elt = string

  type op =
    | Add of string
    | Elements  (** observer — read the membership *)

  type state = String_set.t

  val spec : (op, state) Seq_spec.t

  val machine : (op, state) State_machine.t

  val elements : state -> string list
end

(** An observed-remove set.  Each add carries a unique tag; a remove
    erases the tags of an element it has {e observed}, so it is an
    observer class (it reads the tag set) and lands at a sync point —
    concurrent adds it did not see survive, which is exactly the
    add-wins semantics, obtained here from the ordering protocol rather
    than from merge metadata. *)
module Or_set : sig
  type op =
    | Add of string * int  (** element, unique tag (e.g. from {!Causalb_graph.Label}) *)
    | Remove of string     (** erase every observed tag of the element *)
    | Elements             (** observer — read the membership *)

  type state

  val spec : (op, state) Seq_spec.t

  val machine : (op, state) State_machine.t

  val mem : state -> string -> bool

  val elements : state -> string list
  (** Distinct elements with at least one surviving tag, sorted. *)

  val tags : state -> string -> int list
  (** Surviving tags of an element, sorted. *)
end

(** A last-writer-wins map.  Every mutation carries a (timestamp, source)
    pair and each key keeps the entry that is largest in the total order
    over [(timestamp, source, value)] — a per-key max, so puts and
    removes {e all} commute with each other and the whole mutation
    surface is [Cid]; only reads are sync points. *)
module Lww_map : sig
  type op =
    | Put of { key : string; ts : int; src : int; value : string }
    | Remove of { key : string; ts : int; src : int }
        (** a tombstone entry: wins like a put, maps the key to nothing *)
    | Get of string  (** observer *)

  type state

  val spec : (op, state) Seq_spec.t

  val machine : (op, state) State_machine.t

  val find : state -> string -> string option

  val bindings : state -> (string * string) list
  (** Live (non-tombstoned) bindings, sorted by key. *)
end

(** An RGA-style collaborative sequence (replicated growable array).
    The state is a grow-only map of element nodes (each anchored after
    another element's id) plus a tombstone set; the linear text is
    computed {e at observation} by the RGA traversal (children of each
    anchor in descending id order).  Because inserts only ever add a
    node under a globally unique id and deletes only ever add a
    tombstone, {e both} mutators commute and ride the concurrent window;
    reading the text is the only sync point. *)
module Rga : sig
  type id = int * int
  (** (sequence number, source) — unique per insert, ordered
      lexicographically; the larger id wins the race for the same
      anchor, i.e. sorts earlier in the text. *)

  type op =
    | Insert of { id : id; after : id option; ch : string }
        (** [after = None] anchors at the document head *)
    | Delete of id
    | Read  (** observer — the linear text *)

  type state

  val spec : (op, state) Seq_spec.t

  val machine : (op, state) State_machine.t

  val to_text : state -> string
  (** The RGA linearisation: depth-first from each anchor, children in
      descending id order, tombstoned elements skipped (their subtrees
      are not). *)

  val size : state -> int
  (** Live (non-tombstoned) elements. *)
end
