type ('op, 'state) t = {
  name : string;
  init : 'state;
  apply : 'state -> 'op -> 'state;
  equal : 'state -> 'state -> bool;
  classes : string list;
  class_of : 'op -> string;
  commutes : string -> string -> bool;
  observer : string -> bool;
  observe : 'state -> 'op -> string option;
  digest : 'state -> int;
  pp_state : Format.formatter -> 'state -> unit;
  pp_op : Format.formatter -> 'op -> unit;
  cid : string list;
}

let default_pp ppf _ = Format.pp_print_string ppf "<opaque>"

(* The derivation: Cid is the largest conflict-free subset of the
   non-observer, self-commuting classes.  Candidates conflicting with a
   remaining candidate are dropped greedily, worst offender first; on a
   tie the later-declared class loses, so the result is deterministic in
   the declaration order.  Dropping (rather than solving max-clique
   exactly) is conservative: a class demoted to Ncid only costs
   concurrency, never safety. *)
let derive_cid ~classes ~commutes ~observer =
  let candidates =
    List.filter (fun c -> (not (observer c)) && commutes c c) classes
  in
  let rec shrink cs =
    let conflicts c =
      List.length (List.filter (fun c' -> not (commutes c c')) cs)
    in
    let worst =
      List.fold_left
        (fun acc c ->
          let k = conflicts c in
          if k = 0 then acc
          else
            match acc with
            | Some (_, k') when k' > k -> acc
            | _ -> Some (c, k))
        None cs
    in
    match worst with
    | None -> cs
    | Some (c, _) -> shrink (List.filter (fun c' -> c' <> c) cs)
  in
  shrink candidates

let make ~name ~init ~apply ~equal ~classes ~class_of ~commutes
    ?(observer = fun _ -> false) ?(observe = fun _ _ -> None)
    ?(digest = Hashtbl.hash) ?(pp_state = default_pp) ?(pp_op = default_pp) ()
    =
  if classes = [] then
    invalid_arg (Printf.sprintf "Seq_spec.make(%s): no classes" name);
  let rec dup = function
    | [] -> None
    | c :: rest -> if List.mem c rest then Some c else dup rest
  in
  (match dup classes with
  | Some c ->
    invalid_arg (Printf.sprintf "Seq_spec.make(%s): duplicate class %S" name c)
  | None -> ());
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if commutes a b <> commutes b a then
            invalid_arg
              (Printf.sprintf
                 "Seq_spec.make(%s): commutes is asymmetric on (%S, %S)" name
                 a b))
        classes)
    classes;
  let cid = derive_cid ~classes ~commutes ~observer in
  {
    name;
    init;
    apply;
    equal;
    classes;
    class_of;
    commutes;
    observer;
    observe;
    digest;
    pp_state;
    pp_op;
    cid;
  }

let cid_classes t = t.cid

let is_cid t op = List.mem (t.class_of op) t.cid

let kind t op = if is_cid t op then Op.Commutative else Op.Non_commutative

let to_machine t =
  State_machine.make ~name:t.name ~init:t.init ~apply:t.apply ~kind:(kind t)
    ~equal:t.equal ~digest:t.digest ~pp_state:t.pp_state ~pp_op:t.pp_op ()

let class_pairs t =
  let rec pairs = function
    | [] -> []
    | a :: rest ->
      List.filter_map
        (fun b -> if t.commutes a b then Some (a, b) else None)
        (a :: rest)
      @ pairs rest
  in
  pairs t.classes
