(** Objects from sequential specifications.

    The paper's §6 access protocol asks the application for exactly one
    bit per operation — [Cid] (commutative, may sit inside a window) or
    [Ncid] (synchronization point).  Mostéfaoui/Perrin/Raynal show the
    principled generalization: {e any} object given by a sequential
    specification — an initial state, a transition function, and a
    commutativity relation over its operations — yields a causally
    consistent replicated object, with the [Cid]/[Ncid] labeling a
    {e derived} quantity rather than a hand-marked one.

    A [Seq_spec.t] is that specification as a first-class record.  The
    operation alphabet is partitioned into finitely many named
    {e classes} ([class_of]); the relation [commutes] is declared
    class-against-class and must under-approximate true state
    commutativity (the lint of {!Causalb_data.Commute_lint} samples
    reachable states and validates the declaration against
    {!State_machine.commute_at}).  An {e observer} class is one whose
    return value is order-sensitive even when its state transition
    commutes — the paper's convention that a [read] closes a cycle.

    From the declaration, {!make} derives the set of [Cid] classes: the
    largest conflict-free subset of non-observer, self-commuting classes
    (computed by a deterministic greedy fixpoint — repeatedly dropping
    the class with the most conflicts, ties resolved against the
    later-declared class).  Everything else is [Ncid].  No constructor
    is ever hand-marked.

    {!to_machine} compiles a spec to the {!State_machine.t} record the
    rest of the data layer (replica, front-ends, service, consistency
    checkers, harness drivers) already runs on, so one replica
    implementation serves every object. *)

type ('op, 'state) t = {
  name : string;
  init : 'state;
  apply : 'state -> 'op -> 'state;  (** the transition function [F] *)
  equal : 'state -> 'state -> bool;
  classes : string list;            (** the finite operation classes, in
                                        declaration order *)
  class_of : 'op -> string;         (** total; must land in [classes] *)
  commutes : string -> string -> bool;
      (** declared class-level commutativity; must be symmetric and a
          sound under-approximation of {!State_machine.commute_at} *)
  observer : string -> bool;
      (** return value order-sensitive — forces [Ncid] even when the
          transition commutes (the paper's [read] convention) *)
  observe : 'state -> 'op -> string option;
      (** pure query result: what an observer returns when it lands on a
          stable point ([None] for pure mutators) *)
  digest : 'state -> int;
      (** canonical state digest: equal states must digest equally
          whatever internal representation (map balancing, list order)
          they carry — this is what stable-point agreement compares
          across replicas *)
  pp_state : Format.formatter -> 'state -> unit;
  pp_op : Format.formatter -> 'op -> unit;
  cid : string list;
      (** derived by {!make}: the classes labeled [Cid]; everything else
          is [Ncid].  Do not populate by hand. *)
}

val make :
  name:string ->
  init:'state ->
  apply:('state -> 'op -> 'state) ->
  equal:('state -> 'state -> bool) ->
  classes:string list ->
  class_of:('op -> string) ->
  commutes:(string -> string -> bool) ->
  ?observer:(string -> bool) ->
  ?observe:('state -> 'op -> string option) ->
  ?digest:('state -> int) ->
  ?pp_state:(Format.formatter -> 'state -> unit) ->
  ?pp_op:(Format.formatter -> 'op -> unit) ->
  unit ->
  ('op, 'state) t
(** Build a spec and derive its [Cid] classes.  [observer] defaults to
    no class; [digest] to [Hashtbl.hash] (override it whenever equal
    states can differ representationally); [observe] to [None].
    @raise Invalid_argument if [classes] is empty, contains duplicates,
    or [commutes] is asymmetric on it. *)

val cid_classes : ('op, 'state) t -> string list
(** The derived [Cid] classes, in declaration order. *)

val kind : ('op, 'state) t -> 'op -> Op.kind
(** The derived labeling: [Commutative] iff [class_of op] is a [Cid]
    class. *)

val is_cid : ('op, 'state) t -> 'op -> bool

val to_machine : ('op, 'state) t -> ('op, 'state) State_machine.t
(** Compile to the data layer's machine record; [kind] is the derived
    labeling, [digest] the spec's canonical digest. *)

val class_pairs : ('op, 'state) t -> (string * string) list
(** Every unordered pair (including reflexive) the spec declares
    commuting — the proof obligations the commutativity lint samples. *)
