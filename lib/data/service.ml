module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Group = Causalb_core.Group
module Osend = Causalb_core.Osend
module Checker = Causalb_core.Checker
module Message = Causalb_core.Message
module Label = Causalb_graph.Label
module Stats = Causalb_util.Stats

type ('op, 'state) t = {
  engine : Engine.t;
  group : 'op Group.t;
  frontend : 'op Frontend.t;
  replicas : ('op, 'state) Replica.t array;
  machine : ('op, 'state) State_machine.t;
  send_times : float Label.Tbl.t;
  primaries : int Label.Tbl.t;
  delivery_latency : Stats.t;
  response_latency : Stats.t;
  stability_latency : Stats.t;
}

let create engine ~replicas:n ~machine ?latency ?fifo ?fault ?trace () =
  if n <= 0 then invalid_arg "Service.create: replicas must be positive";
  let net = Net.create engine ~nodes:n ?latency ?fifo ?fault ?trace () in
  let send_times = Label.Tbl.create 256 in
  let primaries = Label.Tbl.create 256 in
  let delivery_latency = Stats.create () in
  let response_latency = Stats.create () in
  let stability_latency = Stats.create () in
  let replica_cells = Array.make n None in
  let on_deliver ~node ~time msg =
    (match Label.Tbl.find_opt send_times (Message.label msg) with
    | Some t0 ->
      Stats.add delivery_latency (time -. t0);
      if Label.Tbl.find_opt primaries (Message.label msg) = Some node then
        Stats.add response_latency (time -. t0)
    | None -> ());
    match replica_cells.(node) with
    | Some r -> Replica.on_deliver r msg
    | None -> ()
  in
  let group = Group.create net ?trace ~on_deliver () in
  let make_replica id =
    (* When a cycle closes, every op inside it (window + closing sync)
       has just become part of an agreed value: record submit→stable. *)
    let on_stable (cycle : ('op, 'state) Replica.cycle) =
      let now = Engine.now engine in
      let record label =
        match Label.Tbl.find_opt send_times label with
        | Some t0 -> Stats.add stability_latency (now -. t0)
        | None -> ()
      in
      List.iter (fun (l, _) -> record l) cycle.Replica.window;
      record (fst cycle.Replica.closed_by);
      (* Stable-point digest: the window set, the closing sync and the
         agreed state — the quantities §6.1 says every member must agree
         on.  The offline checker compares these Mark records across
         replicas. *)
      match trace with
      | None -> ()
      | Some tr ->
        let window =
          List.sort compare
            (List.map (fun (l, _) -> Label.to_string l) cycle.Replica.window)
        in
        let digest =
          Hashtbl.hash
            ( window,
              Label.to_string (fst cycle.Replica.closed_by),
              machine.State_machine.digest cycle.Replica.end_state )
        in
        Causalb_sim.Trace.record tr ~time:now ~node:id
          ~kind:Causalb_sim.Trace.Mark
          ~tag:(Printf.sprintf "stable:%d" cycle.Replica.index)
          ~info:(Printf.sprintf "digest=%08x" (digest land 0xffffffff))
          ()
    in
    Replica.create ~id ~machine ~on_stable ()
  in
  Array.iteri (fun i _ -> replica_cells.(i) <- Some (make_replica i)) replica_cells;
  let replicas =
    Array.map
      (function Some r -> r | None -> assert false)
      replica_cells
  in
  let frontend = Frontend.create group ~kind:machine.State_machine.kind () in
  {
    engine;
    group;
    frontend;
    replicas;
    machine;
    send_times;
    primaries;
    delivery_latency;
    response_latency;
    stability_latency;
  }

let engine t = t.engine

let group t = t.group

let frontend t = t.frontend

let replica t i = t.replicas.(i)

let replicas t = Array.to_list t.replicas

let size t = Array.length t.replicas

let submit t ~src ?name ?primary op =
  let label = Frontend.submit t.frontend ~src ?name op in
  Label.Tbl.replace t.send_times label (Engine.now t.engine);
  Label.Tbl.replace t.primaries label (Option.value ~default:src primary);
  label

let run ?until t = Engine.run ?until t.engine

let delivery_latency t = t.delivery_latency

let response_latency t = t.response_latency

let stability_latency t = t.stability_latency

let messages_sent t = Net.messages_sent (Group.net t.group)

let check t =
  let reps = replicas t in
  let orders = List.map Replica.applied reps in
  let graphs_ok =
    List.for_all
      (fun i -> Checker.causal_safety (Osend.graph (Group.member t.group i)) (List.nth orders i))
      (List.init (size t) Fun.id)
  in
  [
    ("causal-safety", graphs_ok);
    ("same-delivered-set", Checker.same_set orders);
    ( "stable-point-agreement",
      Consistency.agreement_at_stable_points ~machine:t.machine reps );
    ( "stable-digests-agree",
      Consistency.stable_digests_agree ~machine:t.machine reps );
    ("window-sets-agree", Consistency.window_sets_agree reps);
    ( "windows-transition-preserving",
      List.for_all
        (Consistency.windows_transition_preserving ~machine:t.machine)
        reps );
    ( "one-copy-serializable",
      List.for_all
        (fun r -> Consistency.serial_witness ~machine:t.machine r <> None)
        reps );
  ]
