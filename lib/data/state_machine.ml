type ('op, 'state) t = {
  name : string;
  init : 'state;
  apply : 'state -> 'op -> 'state;
  kind : 'op -> Op.kind;
  equal : 'state -> 'state -> bool;
  digest : 'state -> int;
  pp_state : Format.formatter -> 'state -> unit;
  pp_op : Format.formatter -> 'op -> unit;
}

let default_pp ppf _ = Format.pp_print_string ppf "<opaque>"

let make ~name ~init ~apply ~kind ~equal ?(digest = Hashtbl.hash)
    ?(pp_state = default_pp) ?(pp_op = default_pp) () =
  { name; init; apply; kind; equal; digest; pp_state; pp_op }

let commute_at m s a b =
  m.equal (m.apply (m.apply s a) b) (m.apply (m.apply s b) a)

let run m ops = List.fold_left m.apply m.init ops
