(** Replicated state machines.

    The paper models each member as a state machine driven by the
    transition function [F : M × S → S] (relation (1)); consistency means
    producing the same transitions at every replica as allowed by the
    causal order (§5.1, referencing Schneider's state-machine approach).

    A machine is a first-class record so the datatypes of
    {!Causalb_data.Datatypes} are ordinary values and one replica
    implementation serves them all. *)

type ('op, 'state) t = {
  name : string;
  init : 'state;
  apply : 'state -> 'op -> 'state;  (** the transition function [F] *)
  kind : 'op -> Op.kind;
  equal : 'state -> 'state -> bool;
  digest : 'state -> int;
      (** canonical state digest used for stable-point agreement: equal
          states must digest equally whatever internal representation
          they carry (map balancing, list order, …) *)
  pp_state : Format.formatter -> 'state -> unit;
  pp_op : Format.formatter -> 'op -> unit;
}

val make :
  name:string ->
  init:'state ->
  apply:('state -> 'op -> 'state) ->
  kind:('op -> Op.kind) ->
  equal:('state -> 'state -> bool) ->
  ?digest:('state -> int) ->
  ?pp_state:(Format.formatter -> 'state -> unit) ->
  ?pp_op:(Format.formatter -> 'op -> unit) ->
  unit ->
  ('op, 'state) t
(** [digest] defaults to [Hashtbl.hash] — sufficient for states with one
    canonical representation (ints, tuples of ints); override it for
    states built on maps or sets, whose internal shape depends on the
    operation order. *)

val commute_at :
  ('op, 'state) t -> 'state -> 'op -> 'op -> bool
(** [commute_at m s a b] iff applying [a; b] and [b; a] from [s] reach
    equal states — the paper's concurrency test [F(mb, F(ma, s)) =
    F(ma, F(mb, s))]. *)

val run : ('op, 'state) t -> 'op list -> 'state
(** Fold the transition function over a sequence from [init]. *)
