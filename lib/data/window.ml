module Label = Causalb_graph.Label

type t = {
  mutable last_sync : Label.t option;
  mutable window : Label.t list; (* reversed *)
  mutable syncs : int;
}

let create () = { last_sync = None; window = []; syncs = 0 }

let anchor t ~fallback =
  match t.last_sync with Some l -> [ l ] | None -> fallback

let outstanding t ~fallback =
  match t.window with [] -> anchor t ~fallback | w -> List.rev w

let deps_for t ~kind ~fallback =
  match kind with
  | Op.Commutative -> anchor t ~fallback
  | Op.Non_commutative -> outstanding t ~fallback

let note t ~kind label =
  match kind with
  | Op.Commutative -> t.window <- label :: t.window
  | Op.Non_commutative ->
    t.last_sync <- Some label;
    t.window <- [];
    t.syncs <- t.syncs + 1

let reset t =
  t.last_sync <- None;
  t.window <- []

let last_sync t = t.last_sync

let size t = List.length t.window

let open_labels t = List.rev t.window

let syncs t = t.syncs
