(** The §6.1 window bookkeeping, shared by every front-end.

    One window tracks the labels of the current [{Cid}] set and the last
    [Ncid] sync, and answers the only question the protocol asks: which
    labels must a new operation occur after?

    {ul
    {- a {e commutative} operation occurs after the last sync
       ([Ncid_{r−1}]), or after [fallback] when no sync has happened in
       this window's scope (the per-item front-end anchors fresh items on
       the last {e global} sync this way);}
    {- a {e non-commutative} operation occurs after the whole open window
       ([∧{Cid}_r]), falling back to the last sync / [fallback] when the
       window is empty; noting it resets the window and makes it the new
       [Ncid_r].}}

    {!Frontend}, {!Item_frontend}, {!Dservice} and the harness's stack
    driver all run on this one implementation; it replaces four copies of
    the same Commutative/Non_commutative branching. *)

type t

val create : unit -> t

val deps_for : t -> kind:Op.kind -> fallback:Causalb_graph.Label.t list ->
  Causalb_graph.Label.t list
(** The labels the §6.1 protocol orders an operation of [kind] after.
    The empty result means "no constraint" ([Dep.null] once wrapped by
    [Dep.after_all]). *)

val outstanding : t -> fallback:Causalb_graph.Label.t list ->
  Causalb_graph.Label.t list
(** Everything in flight in this window's scope: the open window if any,
    else the last sync, else [fallback] — what a {e global} sync must
    occur after (per-item decomposition, §5.1). *)

val note : t -> kind:Op.kind -> Causalb_graph.Label.t -> unit
(** Record a submitted operation's label: a commutative label joins the
    window; a non-commutative one becomes the new last sync and resets
    the window. *)

val reset : t -> unit
(** Forget everything (e.g. at a view change, where labels of the old
    view are dead and the install is itself a stable point). *)

val last_sync : t -> Causalb_graph.Label.t option

val size : t -> int
(** Number of labels in the currently open window. *)

val open_labels : t -> Causalb_graph.Label.t list
(** The open window, in submission order. *)

val syncs : t -> int
(** Non-commutative labels noted since creation (cycles opened);
    {!reset} does not clear the count. *)
