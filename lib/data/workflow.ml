module Group = Causalb_core.Group
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph

type 'op step = { name : string; src : int; after : string list; op : 'op }

let step name ~src ?(after = []) op = { name; src; after; op }

module Smap = Map.Make (String)

(* Kahn-style ordering of the steps themselves so each send can name the
   labels of the steps it follows. *)
let topo_order steps =
  let by_name =
    List.fold_left
      (fun acc s ->
        if Smap.mem s.name acc then
          invalid_arg
            (Printf.sprintf "Workflow: duplicate step name %S" s.name)
        else Smap.add s.name s acc)
      Smap.empty steps
  in
  List.iter
    (fun s ->
      List.iter
        (fun a ->
          if not (Smap.mem a by_name) then
            invalid_arg
              (Printf.sprintf "Workflow: step %S occurs after undeclared %S"
                 s.name a))
        s.after)
    steps;
  let indegree =
    List.fold_left
      (fun acc s -> Smap.add s.name (List.length s.after) acc)
      Smap.empty steps
  in
  let dependants =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc a ->
            Smap.update a
              (fun prev -> Some (s.name :: Option.value ~default:[] prev))
              acc)
          acc s.after)
      Smap.empty steps
  in
  let ready =
    List.filter_map
      (fun s -> if Smap.find s.name indegree = 0 then Some s.name else None)
      steps
  in
  let rec loop ready indegree acc =
    match ready with
    | [] ->
      if List.length acc = List.length steps then List.rev acc
      else invalid_arg "Workflow: cyclic ordering"
    | name :: rest ->
      let deps = Option.value ~default:[] (Smap.find_opt name dependants) in
      let indegree, newly =
        List.fold_left
          (fun (ind, newly) d ->
            let k = Smap.find d ind - 1 in
            (Smap.add d k ind, if k = 0 then d :: newly else newly))
          (indegree, []) deps
      in
      loop (rest @ newly) indegree (Smap.find name by_name :: acc)
  in
  loop ready indegree []

let submit group steps =
  let ordered = topo_order steps in
  let labels = ref Smap.empty in
  List.iter
    (fun s ->
      let dep =
        Dep.after_all (List.map (fun a -> Smap.find a !labels) s.after)
      in
      let label = Group.osend group ~src:s.src ~name:s.name ~dep s.op in
      labels := Smap.add s.name label !labels)
    ordered;
  List.map (fun s -> (s.name, Smap.find s.name !labels)) steps

let of_ops ~machine ?(prefix = "op") ~src ops =
  let win = Window.create () in
  (* Window over step names instead of labels: the same §6.1 bookkeeping,
     resolved to labels only at submit time. *)
  let name_of i = Printf.sprintf "%s%d" prefix i in
  List.mapi
    (fun i op ->
      let kind = machine.State_machine.kind op in
      let after = Window.deps_for win ~kind ~fallback:[] in
      Window.note win ~kind (Label.make ~name:(name_of i) ~origin:0 ~seq:i ());
      step (name_of i) ~src:(src i)
        ~after:(List.map Label.name after)
        op)
    ops

let graph_of steps =
  let ordered = topo_order steps in
  let g = Depgraph.create () in
  let labels = ref Smap.empty in
  List.iteri
    (fun i s ->
      let label = Label.make ~name:s.name ~origin:0 ~seq:i () in
      labels := Smap.add s.name label !labels)
    ordered;
  List.iter
    (fun s ->
      let dep =
        Dep.after_all (List.map (fun a -> Smap.find a !labels) s.after)
      in
      Depgraph.add g (Smap.find s.name !labels) ~dep)
    ordered;
  g
