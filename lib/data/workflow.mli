(** Declarative causal activities (paper §4.2).

    The paper lets applications "construct higher level causal activities,
    where a causal activity is described by a set of messages K and an
    ordering relationship R(K)".  This module is the declarative form: a
    workflow names its steps, states which steps each one occurs after,
    and submits the whole DAG at once — the causal broadcast layer then
    enforces exactly R(K) at every member, while the submitting client
    never waits (all sends are immediate; ordering is the delivery
    engine's job).

    Example — the diamond [open → ‖{left, right} → close]:
    {[
      Workflow.submit group ~kind
        [
          step "open"  ~src:0 Read;
          step "left"  ~src:1 (Inc 1) ~after:[ "open" ];
          step "right" ~src:2 (Inc 2) ~after:[ "open" ];
          step "close" ~src:0 Read ~after:[ "left"; "right" ];
        ]
    ]} *)

type 'op step

val step : string -> src:int -> ?after:string list -> 'op -> 'op step
(** A named step broadcast from [src], ordered after the named steps. *)

val submit :
  'op Causalb_core.Group.t ->
  'op step list ->
  (string * Causalb_graph.Label.t) list
(** Broadcast every step with the declared ordering; returns the label
    assigned to each step name.  Steps may be listed in any order.
    @raise Invalid_argument on duplicate step names, references to
    undeclared steps, or cyclic ordering. *)

val of_ops :
  machine:('op, 'state) State_machine.t ->
  ?prefix:string ->
  src:(int -> int) ->
  'op list ->
  'op step list
(** The §6.1 access pattern as a workflow: steps named [prefix]{e i} in
    list order, where each operation the machine derives as [Cid] occurs
    after the last sync and each [Ncid] operation occurs after the whole
    open window (the [Ncid_{r−1} → ‖{Cid}_r → Ncid_{r+1}] chain), with
    [src i] choosing the submitting member of step [i].  Composable with
    {!submit} and {!graph_of}. *)

val graph_of : 'op step list -> Causalb_graph.Depgraph.t
(** The R(K) the workflow declares, over fresh anonymous labels — useful
    for analysis (linearization counts, sync points) before running.
    @raise Invalid_argument under the same conditions as {!submit}. *)
