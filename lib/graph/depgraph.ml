type node = {
  label : Label.t;
  dep : Dep.t;
  mutable children : Label.t list; (* reversed insertion order *)
  mutable indeg : int;
      (* count of *present* ancestors, maintained as edges materialize,
         so roots/in_degrees/topological never recount parents *)
}

type t = {
  nodes : node Label.Tbl.t;
  pending_children : Label.t list Label.Tbl.t;
      (* ancestor not yet added -> children already registered; consumed
         when the ancestor arrives, so edge sets are independent of the
         order in which an observer sees the messages *)
  mutable order : Label.t list; (* reversed insertion order *)
  mutable n : int;
}

let create () =
  {
    nodes = Label.Tbl.create 64;
    pending_children = Label.Tbl.create 16;
    order = [];
    n = 0;
  }

let mem g l = Label.Tbl.mem g.nodes l

let size g = g.n

let labels g = List.rev g.order

let node g l =
  match Label.Tbl.find_opt g.nodes l with
  | Some n -> n
  | None -> raise Not_found

let dep_of g l = (node g l).dep

let parents g l =
  (* Only ancestors actually present in the graph: a predicate may name a
     message the observer has not yet seen. *)
  List.filter (mem g) (Dep.ancestors (node g l).dep)

let children g l = List.rev (node g l).children

let add g l ~dep =
  if mem g l then
    invalid_arg
      (Printf.sprintf "Depgraph.add: duplicate label %s" (Label.to_string l));
  (* Ancestors are messages that already exist (or will be filtered by
     [parents] if the observer adds them later); a label can never name
     itself, and since new nodes only point at older ones the graph is
     acyclic by construction.  We still reject self-loops explicitly. *)
  if List.exists (Label.equal l) (Dep.ancestors dep) then
    invalid_arg "Depgraph.add: self-dependency";
  let pending =
    Option.value ~default:[] (Label.Tbl.find_opt g.pending_children l)
  in
  Label.Tbl.remove g.pending_children l;
  let n = { label = l; dep; children = pending; indeg = 0 } in
  Label.Tbl.add g.nodes l n;
  g.order <- l :: g.order;
  g.n <- g.n + 1;
  (* children that named [l] before it arrived each gain their edge now *)
  List.iter
    (fun c ->
      let cn = Label.Tbl.find g.nodes c in
      cn.indeg <- cn.indeg + 1)
    pending;
  List.iter
    (fun anc ->
      match Label.Tbl.find_opt g.nodes anc with
      | Some a ->
        a.children <- l :: a.children;
        n.indeg <- n.indeg + 1
      | None ->
        let waiting =
          Option.value ~default:[]
            (Label.Tbl.find_opt g.pending_children anc)
        in
        Label.Tbl.replace g.pending_children anc (l :: waiting))
    (Dep.ancestors dep)

let reachable step g l =
  let seen = ref Label.Set.empty in
  let rec visit x =
    List.iter
      (fun y ->
        if not (Label.Set.mem y !seen) then begin
          seen := Label.Set.add y !seen;
          visit y
        end)
      (step g x)
  in
  visit l;
  !seen

let ancestors g l = reachable parents g l

let descendants g l = reachable children g l

let missing_parents g l =
  List.filter (fun a -> not (mem g a)) (Dep.ancestors (dep_of g l))

(* [add] only rejects self-loops: a predicate may name a label added
   later, and a later predicate may point back — the static lint needs to
   find the resulting cycles (they deadlock delivery).  Iterative DFS
   with a grey set; returns one cycle as a label path. *)
let find_cycle g =
  let state = Label.Tbl.create g.n in (* 0 = grey, 1 = black *)
  let cycle = ref None in
  let rec visit path l =
    if !cycle = None then
      match Label.Tbl.find_opt state l with
      | Some 1 -> ()
      | Some _ ->
        (* grey: [l] is on the current path — the cycle is the path
           suffix starting at its previous occurrence *)
        let rec suffix = function
          | [] -> []
          | x :: rest ->
            if Label.equal x l then [ x ] else x :: suffix rest
        in
        cycle := Some (List.rev (l :: suffix path))
      | None ->
        Label.Tbl.replace state l 0;
        List.iter (visit (l :: path)) (parents g l);
        Label.Tbl.replace state l 1
  in
  List.iter (fun l -> if !cycle = None then visit [] l) (labels g);
  !cycle

let shortest_path g a b =
  if not (mem g a && mem g b) then None
  else if Label.equal a b then Some [ a ]
  else begin
    let prev = Label.Tbl.create 16 in
    let queue = Queue.create () in
    Queue.add a queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      List.iter
        (fun c ->
          if (not (Label.Tbl.mem prev c)) && not (Label.equal c a) then begin
            Label.Tbl.replace prev c x;
            if Label.equal c b then found := true else Queue.add c queue
          end)
        (children g x)
    done;
    if not !found then None
    else begin
      let rec build acc x =
        if Label.equal x a then x :: acc
        else build (x :: acc) (Label.Tbl.find prev x)
      in
      Some (build [] b)
    end
  end

let happens_before g a b =
  (not (Label.equal a b)) && Label.Set.mem b (descendants g a)

let concurrent g a b =
  (not (Label.equal a b))
  && (not (happens_before g a b))
  && not (happens_before g b a)

let roots g = List.filter (fun l -> (node g l).indeg = 0) (labels g)

let leaves g = List.filter (fun l -> (node g l).children = []) (labels g)

let in_degrees g =
  let deg = Label.Tbl.create g.n in
  Label.Tbl.iter (fun l n -> Label.Tbl.replace deg l n.indeg) g.nodes;
  deg

let topological g =
  let deg = in_degrees g in
  let ready =
    List.filter (fun l -> Label.Tbl.find deg l = 0) (labels g)
    |> List.sort Label.compare
  in
  let rec loop ready acc =
    match ready with
    | [] -> List.rev acc
    | l :: rest ->
      let newly =
        List.filter
          (fun c ->
            let d = Label.Tbl.find deg c - 1 in
            Label.Tbl.replace deg c d;
            d = 0)
          (children g l)
      in
      loop (List.merge Label.compare rest (List.sort Label.compare newly)) (l :: acc)
  in
  loop ready []

let linearizations ?(limit = 10_000) g =
  let deg = in_degrees g in
  let results = ref [] and count = ref 0 in
  let ready =
    List.filter (fun l -> Label.Tbl.find deg l = 0) (labels g)
  in
  (* Depth-first enumeration of linear extensions: at each step pick each
     currently-ready node in turn. *)
  let rec go ready acc =
    if !count >= limit then ()
    else if List.length acc = g.n then begin
      results := List.rev acc :: !results;
      incr count
    end
    else
      List.iter
        (fun l ->
          if !count < limit then begin
            let newly =
              List.filter
                (fun c ->
                  let d = Label.Tbl.find deg c - 1 in
                  Label.Tbl.replace deg c d;
                  d = 0)
                (children g l)
            in
            let ready' = newly @ List.filter (fun x -> not (Label.equal x l)) ready in
            go ready' (l :: acc);
            (* undo *)
            List.iter
              (fun c -> Label.Tbl.replace deg c (Label.Tbl.find deg c + 1))
              (children g l)
          end)
        ready
  in
  go ready [];
  List.rev !results

let count_linearizations ?(cap = 1_000_000) g =
  let deg = in_degrees g in
  let count = ref 0 in
  let ready = List.filter (fun l -> Label.Tbl.find deg l = 0) (labels g) in
  let rec go ready depth =
    if !count >= cap then ()
    else if depth = g.n then incr count
    else
      List.iter
        (fun l ->
          if !count < cap then begin
            let newly =
              List.filter
                (fun c ->
                  let d = Label.Tbl.find deg c - 1 in
                  Label.Tbl.replace deg c d;
                  d = 0)
                (children g l)
            in
            let ready' = newly @ List.filter (fun x -> not (Label.equal x l)) ready in
            go ready' (depth + 1);
            List.iter
              (fun c -> Label.Tbl.replace deg c (Label.Tbl.find deg c + 1))
              (children g l)
          end)
        ready
  in
  go ready 0;
  !count

let sync_points g =
  let ls = labels g in
  List.filter
    (fun l ->
      List.for_all
        (fun other -> Label.equal l other || not (concurrent g l other))
        ls)
    ls

let restrict g keep =
  let g' = create () in
  List.iter
    (fun l ->
      if Label.Set.mem l keep then begin
        let dep =
          match dep_of g l with
          | Dep.Null -> Dep.Null
          | Dep.After a -> if Label.Set.mem a keep then Dep.After a else Dep.Null
          | Dep.After_all ls ->
            Dep.after_all (List.filter (fun a -> Label.Set.mem a keep) ls)
          | Dep.After_any ls ->
            (* Restriction may remove alternatives; keep the surviving ones. *)
            Dep.after_any (List.filter (fun a -> Label.Set.mem a keep) ls)
        in
        add g' l ~dep
      end)
    (labels g);
  g'

let verify_sequence g seq =
  let included = Label.Set.of_list seq in
  let delivered = ref Label.Set.empty in
  List.for_all
    (fun l ->
      let ok =
        match dep_of g l with
        | Dep.Null -> true
        | Dep.After a ->
          (not (Label.Set.mem a included)) || Label.Set.mem a !delivered
        | Dep.After_all ls ->
          List.for_all
            (fun a ->
              (not (Label.Set.mem a included)) || Label.Set.mem a !delivered)
            ls
        | Dep.After_any ls ->
          let relevant = List.filter (fun a -> Label.Set.mem a included) ls in
          relevant = [] || List.exists (fun a -> Label.Set.mem a !delivered) relevant
      in
      delivered := Label.Set.add l !delivered;
      ok)
    seq

let edges g =
  List.concat_map
    (fun l -> List.map (fun c -> (l, c)) (children g l))
    (labels g)

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun l ->
      Format.fprintf ppf "%a %a@," Label.pp l Dep.pp (dep_of g l))
    (labels g);
  Format.fprintf ppf "@]"

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph deps {\n";
  List.iter
    (fun l ->
      Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" (Label.to_string l)))
    (labels g);
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\";\n" (Label.to_string a)
           (Label.to_string b)))
    (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
