(** Message dependency graphs (paper §3.1–3.2, Fig. 3).

    Nodes are message labels; a directed edge [m → m'] records the causal
    relation "m' occurs after m".  The paper's key observation is that
    this graph is {e stable information}: every group member extracts the
    identical graph from the causally broadcast [Occurs_After] predicates,
    so agreement can be anchored on graph structure (synchronization
    points) rather than on extra protocol messages.

    The structure is imperative — the engines grow it monotonically as
    messages arrive — while queries are pure.  All query functions
    @raise Not_found if a label has not been added. *)

type t

val create : unit -> t

val add : t -> Label.t -> dep:Dep.t -> unit
(** Register a message with its ordering predicate.  [After_any] records
    edges from each alternative (the graph over-approximates; the engine
    handles OR at delivery time).  @raise Invalid_argument if the label is
    already present or if the predicate would introduce a cycle. *)

val mem : t -> Label.t -> bool

val size : t -> int

val labels : t -> Label.t list
(** All labels in insertion order. *)

val dep_of : t -> Label.t -> Dep.t

val parents : t -> Label.t -> Label.t list
(** Direct ancestors (the labels named by the predicate). *)

val children : t -> Label.t -> Label.t list
(** Messages whose predicate names the given label. *)

val ancestors : t -> Label.t -> Label.Set.t
(** Transitive, not including the label itself. *)

val descendants : t -> Label.t -> Label.Set.t

val missing_parents : t -> Label.t -> Label.t list
(** Labels named by the predicate of [l] that are absent from the graph —
    dangling dependencies a static lint flags (a message naming one can
    never be delivered until the missing send appears). *)

val find_cycle : t -> Label.t list option
(** One dependency cycle, as a label path with the first label repeated
    at the end, or [None] when the graph is acyclic.  Cycles can arise
    because {!add} accepts forward references: a predicate may name a
    label that is only added later with a predicate pointing back.  A
    cyclic wait is unsatisfiable — every message on it deadlocks. *)

val shortest_path : t -> Label.t -> Label.t -> Label.t list option
(** Shortest directed dependency chain [a → … → b] including both
    endpoints — the minimal causal chain the checkers attach to a
    violation diagnostic.  [None] when [b] is not a descendant of [a]. *)

val happens_before : t -> Label.t -> Label.t -> bool
(** [happens_before g a b] iff there is a directed path [a → … → b]. *)

val concurrent : t -> Label.t -> Label.t -> bool
(** Neither happens before the other (and they differ). *)

val roots : t -> Label.t list
(** Labels with no parents. *)

val leaves : t -> Label.t list

val topological : t -> Label.t list
(** One linear extension, deterministic (ties broken by {!Label.compare}). *)

val linearizations : ?limit:int -> t -> Label.t list list
(** All event sequences allowed by the partial order — the [EvSeq_i] of
    §4.1 — up to [limit] (default 10_000).  The count is bounded by
    [(r+1)!] as in the paper. *)

val count_linearizations : ?cap:int -> t -> int
(** Number of allowed sequences, counted without materialising them, and
    capped at [cap] (default 1_000_000) to bound the search. *)

val sync_points : t -> Label.t list
(** Labels ordered (before or after) w.r.t. every other label — the
    synchronization points of §3.2: the graph between two consecutive
    sync points is a set of concurrent messages. *)

val restrict : t -> Label.Set.t -> t
(** Sub-graph induced by a label set (edges to labels outside the set are
    dropped) — used to reason about one causal activity [R(K)]. *)

val verify_sequence : t -> Label.t list -> bool
(** Whether a delivery sequence is a linear extension of the graph
    restricted to the labels it contains: no message appears before one
    of its (included) ancestors. *)

val edges : t -> (Label.t * Label.t) list
(** All [(ancestor, descendant)] pairs. *)

val pp : Format.formatter -> t -> unit
(** Adjacency rendering, one node per line — Fig. 3 style. *)

val to_dot : t -> string
(** Graphviz rendering for documentation. *)
