type t = { origin : int; seq : int; display : string option }

let make ?name ~origin ~seq () =
  if origin < 0 then invalid_arg "Label.make: negative origin";
  if seq < 0 then invalid_arg "Label.make: negative seq";
  { origin; seq; display = name }

let origin t = t.origin

let seq t = t.seq

let name t =
  match t.display with
  | Some s -> s
  | None -> Printf.sprintf "m%d.%d" t.origin t.seq

let display t = t.display

let equal a b = a.origin = b.origin && a.seq = b.seq

let compare a b =
  match Int.compare a.origin b.origin with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let hash t = (t.origin * 1000003) lxor t.seq

let pp ppf t = Format.pp_print_string ppf (name t)

let to_string = name

module Key = struct
  type nonrec t = t

  let equal = equal
  let compare = compare
  let hash = hash
end

module Set = Set.Make (Key)
module Map = Map.Make (Key)
module Tbl = Hashtbl.Make (Key)
