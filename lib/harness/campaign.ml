(* Randomized fault campaign: seed × workload-shape × nemesis-schedule
   combinations over the shipped stack compositions, every run audited by
   the offline oracle, failures shrunk to a minimal deterministic repro.

   A case is a pure value; running it is a pure function of the value
   (the simulation draws everything from the case seed), so a failing
   case IS its repro — shrinking just searches for the smallest case
   value that still fails, re-running each candidate. *)

module D = Drivers
module Nemesis = Causalb_net.Nemesis
module Fault = Causalb_net.Fault
module Rng = Causalb_util.Rng
module Json = Causalb_util.Json
module Printer = Causalb_util.Printer
module Diag = Causalb_check.Diag
module Mutate = Causalb_check.Mutate

type case = {
  id : int;
  name : string;        (* "hunt-<id>" — also the pool task name *)
  seed : int;           (* the simulation seed (Pool.seed_for-derived) *)
  spec : D.stack_spec;
  replicas : int;
  workload : D.workload;
  nemesis : Nemesis.t;
}

type verdict = {
  case : case;
  ok : bool;
  lost : int;           (* copies the nemesis removed from the wire *)
  messages : int;
  checks : string list; (* names of the checkers that fired, deduped *)
  violation : string option; (* first diagnostic's summary *)
}

(* --- case generation --- *)

let specs =
  [|
    D.Fifo_only;
    D.Bss_stack;
    D.Psync_stack;
    D.Osend_stack;
    D.Osend_merge;
    D.Osend_counted 4;
    D.Osend_sequencer;
    D.Pc_stack;
  |]

let mix_tag (w : D.workload) =
  match w.mix with
  | D.Random p -> Printf.sprintf "random:%.2f" p
  | D.Fixed_window k -> Printf.sprintf "window:%d" k

(* One fault phase: a timed disturbance plus the event that ends it.
   Partitions split the full membership (every node listed, so the
   duplicate-membership guard in [Net.partition] applies to the whole
   assignment); fault phases swap the loss/dup/jitter profile in and
   back out. *)
let gen_phase rng ~buggify ~replicas ~makespan =
  let start = Rng.float rng (makespan *. 0.8) in
  let stop = start +. 1.0 +. Rng.float rng (makespan *. 0.4) in
  if Rng.bool rng then begin
    (* partition into 2 cells (3 under buggify when the group allows) *)
    let order = Array.init replicas (fun i -> i) in
    Rng.shuffle rng order;
    let nodes = Array.to_list order in
    let three = buggify && replicas >= 3 && Rng.bool rng in
    let cut1 = 1 + Rng.int rng (replicas - 1) in
    let cells =
      if three && cut1 < replicas - 1 then
        let cut2 = cut1 + 1 + Rng.int rng (replicas - 1 - cut1) in
        [
          List.filteri (fun i _ -> i < cut1) nodes;
          List.filteri (fun i _ -> i >= cut1 && i < cut2) nodes;
          List.filteri (fun i _ -> i >= cut2) nodes;
        ]
      else
        [
          List.filteri (fun i _ -> i < cut1) nodes;
          List.filteri (fun i _ -> i >= cut1) nodes;
        ]
    in
    [
      { Nemesis.at = start; action = Nemesis.Partition cells };
      { Nemesis.at = stop; action = Nemesis.Heal };
    ]
  end
  else begin
    let scale = if buggify then 0.5 else 0.25 in
    let fault =
      Fault.make
        ~drop_prob:(Rng.float rng scale)
        ~dup_prob:(Rng.float rng scale)
        ~jitter:(Rng.float rng (if buggify then 8.0 else 4.0))
        ()
    in
    [
      { Nemesis.at = start; action = Nemesis.Set_fault fault };
      { Nemesis.at = stop; action = Nemesis.Set_fault Fault.none };
    ]
  end

(* One membership event for a churn case.  Joins name a founding
   contact ([Drivers.run_pc] re-routes through the oldest survivor if
   that contact already left); leaves name a founder other than node 0,
   matching the guards the driver's leave hook enforces — so every
   subset of a generated schedule stays well-formed, which is what lets
   the shrinker drop churn events freely. *)
let gen_churn_event rng ~replicas ~makespan =
  let at = Rng.float rng (makespan *. 0.9) in
  let action =
    if Rng.bool rng then Nemesis.Join { contact = Rng.int rng replicas }
    else Nemesis.Leave (1 + Rng.int rng (replicas - 1))
  in
  { Nemesis.at; action }

let gen_case ~base_seed ~buggify ~min_phases ~churn id =
  let name = Printf.sprintf "hunt-%d" id in
  let seed = Pool.seed_for ~base:base_seed name in
  let rng = Rng.create seed in
  (* churn campaigns run the one composition with dynamic membership *)
  let spec = if churn then D.Pc_stack else specs.(id mod Array.length specs) in
  let replicas = 3 + Rng.int rng 3 in
  let ops = 20 + Rng.int rng 41 in
  let spacing = [| 0.3; 0.5; 0.8 |].(Rng.int rng 3) in
  let mix =
    if Rng.bool rng then D.Fixed_window (2 + Rng.int rng 5)
    else D.Random (0.6 +. Rng.float rng 0.35)
  in
  (* The count-closed merge only promises agreement when batches align
     with the workload's windows (the §6.2 usage): each member's first
     [k+1] causal deliveries are exactly window plus closing sync, so
     the count must equal the window size + 1 — and the mix must be
     windowed.  A free-running count over a random mix batches
     member-locally different sets, which is not a total order and not a
     bug. *)
  let spec, mix =
    match spec with
    | D.Osend_counted _ ->
      let k = match mix with D.Fixed_window k -> k | D.Random _ -> 4 in
      (D.Osend_counted (k + 1), D.Fixed_window k)
    | s -> (s, mix)
  in
  let workload = { D.ops; spacing; mix } in
  let makespan = float_of_int (ops + 1) *. spacing in
  let phases =
    let cap = if buggify then 4 else 3 in
    Int.max min_phases (Rng.int rng cap)
  in
  let nemesis =
    List.concat
      (List.init phases (fun _ -> gen_phase rng ~buggify ~replicas ~makespan))
    @
    if churn then
      List.init
        (1 + Rng.int rng 3)
        (fun _ -> gen_churn_event rng ~replicas ~makespan)
    else []
  in
  { id; name; seed; spec; replicas; workload; nemesis }

let generate ?(base_seed = 42) ?(buggify = false) ?(min_phases = 0)
    ?(churn = false) ~seeds () =
  List.init seeds (gen_case ~base_seed ~buggify ~min_phases ~churn)

(* --- running one case --- *)

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] xs

(* [plant] re-audits the run with one seeded ordering violation spliced
   into the trace ([Causalb_check.Mutate]) — the self-test that the
   campaign's oracle plumbing actually rejects bad orderings, end to
   end, on the very traces it hunts over.  A case whose trace has no
   mutation site (too few dependent deliveries) passes. *)
let run_case_stack ?(plant = false) (c : case) =
  let r =
    D.run_stack ~seed:c.seed ~check:true ~nemesis:c.nemesis
      ~replicas:c.replicas c.spec c.workload
  in
  let audit =
    match r.D.audit with
    | Some a -> a
    | None -> assert false (* ~check:true always produces an audit *)
  in
  let diags =
    if not plant then audit.D.diagnostics
    else
      let mutate =
        match c.spec with
        (* FIFO/BSS are only held to per-sender order, so the planted
           violation must be one their checker sees. *)
        | D.Fifo_only | D.Bss_stack -> Mutate.reorder_fifo
        | _ -> Mutate.reorder_causal
      in
      match mutate ~graph:audit.D.graph audit.D.trace with
      | None -> audit.D.diagnostics
      | Some (mutated, _, _) ->
        D.recheck c.spec ~lost:r.D.lost { audit with D.trace = mutated }
  in
  {
    case = c;
    ok = r.D.checks_ok && diags = [];
    lost = r.D.lost;
    messages = r.D.messages;
    checks = dedup (List.map (fun d -> d.Diag.check) diags);
    violation =
      (match diags with d :: _ -> Some (Diag.to_string d) | [] -> None);
  }

(* A schedule with membership events runs the PC-broadcast churn driver
   instead, audited by the same gate the driver applies to itself
   ([Drivers.recheck_pc]).  The planted inversion is spliced into the
   founders' view — the portion of the trace the causal pass actually
   audits — so a mutation landing on a joiner can't silently pass.
   [lost] reports departure drops too (they are copies the nemesis
   removed from the wire); the causal gate counts only partition/loss. *)
let run_case_pc ?(plant = false) (c : case) =
  let r =
    D.run_pc ~seed:c.seed ~nemesis:c.nemesis ~replicas:c.replicas c.workload
  in
  let diags =
    if not plant then r.D.pc_diagnostics
    else
      let view = D.founders_view r.D.pc_trace ~founders:c.replicas in
      match Mutate.reorder_causal ~graph:r.D.pc_graph view with
      | None -> r.D.pc_diagnostics
      | Some (mutated, _, _) ->
        D.recheck_pc ~replicas:c.replicas ~lost:r.D.pc_lost
          ~graph:r.D.pc_graph mutated
  in
  {
    case = c;
    ok = r.D.pc_checks_ok && diags = [];
    lost = r.D.pc_lost + r.D.pc_departure_drops;
    messages = r.D.pc_messages;
    checks = dedup (List.map (fun d -> d.Diag.check) diags);
    violation =
      (match diags with d :: _ -> Some (Diag.to_string d) | [] -> None);
  }

(* Dispatch is per-case-value, not per-campaign: a shrinker candidate
   whose churn events were all removed is an ordinary static case and
   runs (validly) through the stack driver. *)
let run_case ?plant (c : case) =
  if Nemesis.has_churn c.nemesis then run_case_pc ?plant c
  else run_case_stack ?plant c

(* --- shrinking --- *)

let fails ?plant count c =
  incr count;
  not (run_case ?plant c).ok

(* Nemesis first: greedy one-event-at-a-time removal, each candidate
   fully re-run (runs are deterministic, so a removal that keeps the
   case failing is safe to commit).  Greedy is ddmin with chunk size 1 —
   schedules are a handful of events, so the quadratic worst case is
   cheap and the result is 1-minimal: no single remaining event can be
   dropped. *)
let shrink_nemesis ?plant count c =
  let rec loop kept = function
    | [] -> kept
    | e :: rest ->
      if fails ?plant count { c with nemesis = kept @ rest } then
        loop kept rest
      else loop (kept @ [ e ]) rest
  in
  { c with nemesis = loop [] c.nemesis }

(* Then workload length: binary search for the smallest failing op
   count.  Invariant: [hi] fails (the input case does); on exit [lo=hi]
   still fails, so the returned case is a verified repro even when
   failure is not monotone in [ops]. *)
let shrink_ops ?plant count c =
  let with_ops n = { c with workload = { c.workload with D.ops = n } } in
  let lo = ref 1 and hi = ref c.workload.D.ops in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fails ?plant count (with_ops mid) then hi := mid else lo := mid + 1
  done;
  with_ops !hi

let shrink ?plant c =
  let count = ref 0 in
  let c = shrink_nemesis ?plant count c in
  let c = shrink_ops ?plant count c in
  (c, !count)

(* --- reporting --- *)

let describe c =
  Printf.sprintf "%s: seed=%d spec=%s replicas=%d ops=%d spacing=%.1f \
                  mix=%s nemesis=[%s]"
    c.name c.seed (D.stack_spec_name c.spec) c.replicas c.workload.D.ops
    c.workload.D.spacing (mix_tag c.workload)
    (Nemesis.to_string c.nemesis)

let verdict_json v =
  Json.Obj
    [
      ("name", Json.Str v.case.name);
      ("seed", Json.Num (float_of_int v.case.seed));
      ("spec", Json.Str (D.stack_spec_name v.case.spec));
      ("replicas", Json.Num (float_of_int v.case.replicas));
      ("ops", Json.Num (float_of_int v.case.workload.D.ops));
      ("mix", Json.Str (mix_tag v.case.workload));
      ("nemesis", Json.Str (Nemesis.to_string v.case.nemesis));
      ("ok", Json.Bool v.ok);
      ("lost", Json.Num (float_of_int v.lost));
      ("messages", Json.Num (float_of_int v.messages));
      ("checks", Json.List (List.map (fun c -> Json.Str c) v.checks));
      ( "violation",
        match v.violation with Some s -> Json.Str s | None -> Json.Null );
    ]

(* The worker side prints only the run-dependent fields; the parent owns
   the case list (generation is deterministic), so it re-attaches the
   case by task order when parsing. *)
let verdict_line v =
  Json.to_string
    (Json.Obj
       [
         ("ok", Json.Bool v.ok);
         ("lost", Json.Num (float_of_int v.lost));
         ("messages", Json.Num (float_of_int v.messages));
         ("checks", Json.List (List.map (fun c -> Json.Str c) v.checks));
         ( "violation",
           match v.violation with Some s -> Json.Str s | None -> Json.Null );
       ])

let verdict_of_line c line =
  let j = Json.of_string line in
  let field name = Option.get (Json.member name j) in
  {
    case = c;
    ok = Json.get_bool (field "ok");
    lost = Json.get_int (field "lost");
    messages = Json.get_int (field "messages");
    checks = List.map Json.get_string (Json.get_list (field "checks"));
    violation =
      (match field "violation" with Json.Null -> None | s -> Some (Json.get_string s));
  }

type repro = {
  original : verdict;
  minimal : case;
  attempts : int; (* candidate re-runs the shrinker spent *)
}

type report = {
  verdicts : verdict list; (* one per case, in generation order *)
  repros : repro list;     (* one per failing case *)
  jobs : int;
  wall_ms : float;
}

let failures r = List.filter (fun v -> not v.ok) r.verdicts

(* --- the parallel sweep --- *)

let run ?(jobs = 1) ?(domains = 0) ?(base_seed = 42) ?(buggify = false)
    ?(plant = false) ?(churn = false) ~seeds () =
  let cases = generate ~base_seed ~buggify ~churn ~seeds () in
  let body c ~seed:_ = Printer.line (verdict_line (run_case ~plant c)) in
  let pool_report =
    if domains > 0 then
      Dpool.run ~domains ~base_seed
        (List.map (fun c -> Dpool.task ~name:c.name (body c)) cases)
    else
      Pool.run ~jobs ~base_seed
        (List.map (fun c -> Pool.task ~name:c.name (body c)) cases)
  in
  let verdicts =
    List.map2
      (fun c (r : Pool.result) ->
        match r.Pool.status with
        | Pool.Done -> verdict_of_line c (String.trim r.Pool.output)
        | Pool.Failed msg ->
          {
            case = c;
            ok = false;
            lost = 0;
            messages = 0;
            checks = [ "task" ];
            violation = Some ("task failed: " ^ msg);
          })
      cases pool_report.Pool.results
  in
  (* Shrinking is sequential, in-process, after the sweep: each failure
     needs many dependent re-runs, and failures are the rare path. *)
  let repros =
    List.filter_map
      (fun v ->
        if v.ok then None
        else if v.checks = [ "task" ] then
          (* a crashed worker has no trace to shrink against *)
          Some { original = v; minimal = v.case; attempts = 0 }
        else
          let minimal, attempts = shrink ~plant v.case in
          Some { original = v; minimal; attempts })
      verdicts
  in
  {
    verdicts;
    repros;
    jobs = pool_report.Pool.jobs;
    wall_ms = pool_report.Pool.wall_ms;
  }

(* --- the planted-bug self-test --- *)

(* End-to-end audit of the hunting machinery itself: plant one known
   ordering violation per case (reusing the checker-audit mutators),
   assert the campaign finds it, shrink the first find, and assert the
   minimal repro (a) still fails, deterministically, and (b) is strictly
   smaller on BOTH axes — fewer nemesis events and fewer ops. *)
let self_test ?(base_seed = 42) ?(log = Printer.line) () =
  let seeds = Array.length specs in
  let cases = generate ~base_seed ~min_phases:1 ~seeds () in
  let verdicts = List.map (run_case ~plant:true) cases in
  let found = List.filter (fun v -> not v.ok) verdicts in
  log
    (Printf.sprintf "self-test: planted %d violations, detected %d"
       (List.length cases) (List.length found));
  if found = [] then begin
    log "self-test: FAILED — no planted violation was detected";
    false
  end
  else begin
    let v = List.hd found in
    let minimal, attempts = shrink ~plant:true v.case in
    let v1 = run_case ~plant:true minimal in
    let v2 = run_case ~plant:true minimal in
    let nemesis_reduced =
      List.length minimal.nemesis < List.length v.case.nemesis
    in
    let ops_reduced = minimal.workload.D.ops < v.case.workload.D.ops in
    let still_fails = (not v1.ok) && (not v2.ok) && v1.checks = v2.checks in
    log
      (Printf.sprintf
         "self-test: shrunk %s — nemesis %d -> %d events, ops %d -> %d \
          (%d candidate runs)"
         v.case.name
         (List.length v.case.nemesis)
         (List.length minimal.nemesis)
         v.case.workload.D.ops minimal.workload.D.ops attempts);
    log (Printf.sprintf "self-test: minimal repro  %s" (describe minimal));
    log
      (Printf.sprintf "self-test: repro fails deterministically: %b (%s)"
         still_fails
         (String.concat "," v1.checks));
    (* the churn path end-to-end: over a small churn campaign, at least
       one clean case must have a plantable site in its founders' view
       and the founders-scoped causal pass must reject the inversion *)
    let churn_cases = generate ~base_seed ~churn:true ~seeds:4 () in
    let churn_found =
      List.exists (fun c -> not (run_case ~plant:true c).ok) churn_cases
    in
    log
      (Printf.sprintf
         "self-test: churn plant detected on %d-case campaign: %b" 4
         churn_found);
    let ok = nemesis_reduced && ops_reduced && still_fails && churn_found in
    log (if ok then "self-test: ok" else "self-test: FAILED");
    ok
  end

(* --- rendering --- *)

let print_report ?(json = false) ?(log = Printer.line) r =
  if json then begin
    List.iter (fun v -> log (Json.to_string (verdict_json v))) r.verdicts;
    let fails = failures r in
    log
      (Json.to_string
         (Json.Obj
            [
              ("summary", Json.Str "campaign");
              ("cases", Json.Num (float_of_int (List.length r.verdicts)));
              ("failures", Json.Num (float_of_int (List.length fails)));
              ( "lossy",
                Json.Num
                  (float_of_int
                     (List.length
                        (List.filter (fun v -> v.lost > 0) r.verdicts))) );
              ("jobs", Json.Num (float_of_int r.jobs));
            ]))
  end
  else begin
    let fails = failures r in
    let lossy = List.filter (fun v -> v.lost > 0) r.verdicts in
    log
      (Printf.sprintf
         "campaign: %d cases, %d with loss on the wire, %d failure(s) \
          (%d job(s))"
         (List.length r.verdicts) (List.length lossy) (List.length fails)
         r.jobs);
    List.iter
      (fun (rep : repro) ->
        log (Printf.sprintf "FAIL %s" (describe rep.original.case));
        (match rep.original.violation with
        | Some s -> log (Printf.sprintf "     %s" s)
        | None -> ());
        log
          (Printf.sprintf "     minimal repro (%d candidate runs): %s"
             rep.attempts (describe rep.minimal)))
      r.repros
  end
