(** Randomized fault-campaign driver: the [causalb hunt] engine.

    A campaign derives [seeds] cases deterministically from a base seed —
    each case a (simulation seed, stack composition, workload shape,
    nemesis schedule) tuple cycling through every shipped composition —
    runs each through {!Drivers.run_stack} with the ordering oracle on,
    and shrinks any failure to a minimal deterministic repro: greedy
    nemesis-event removal first, then binary search for the smallest
    failing op count, every candidate fully re-run.

    Cases are pure values and runs are pure functions of them, so a
    failing case is its own repro; equal arguments replay equal
    campaigns, whatever the job count. *)

type case = {
  id : int;
  name : string;  (** ["hunt-<id>"] — also the pool task name *)
  seed : int;     (** simulation seed, {!Pool.seed_for}-derived *)
  spec : Drivers.stack_spec;
  replicas : int;
  workload : Drivers.workload;
  nemesis : Causalb_net.Nemesis.t;
}

type verdict = {
  case : case;
  ok : bool;
      (** the run's [checks_ok] and an empty diagnostic list — under a
          lossy nemesis the oracle restricts itself to the safety
          properties ({!Drivers.recheck}) *)
  lost : int;      (** copies the nemesis removed from the wire *)
  messages : int;
  checks : string list;
      (** checkers that produced diagnostics, deduped — empty when clean *)
  violation : string option;  (** first diagnostic, rendered *)
}

val generate :
  ?base_seed:int ->
  ?buggify:bool ->
  ?min_phases:int ->
  ?churn:bool ->
  seeds:int ->
  unit ->
  case list
(** The campaign's case list — deterministic in all arguments.  Case [i]
    uses composition [i mod 8] (all eight shipped stacks), a workload of
    20–60 ops in a random mix, and 0–2 fault phases (timed
    partition/heal pairs over the full membership, or loss/dup/jitter
    phases swapped in and back out).  [~buggify] raises fault severity
    and allows a third phase and three-way partitions; [~min_phases]
    forces at least that many phases (the self-test uses [1] so
    shrinking always has a schedule to reduce).  [~churn] makes every
    case a membership case: composition pinned to [Pc_stack] (the one
    stack with dynamic membership) and 1–3 timed join/leave events
    appended after the fault phases — joins name a founding contact,
    leaves a founder other than node 0, so any subset of the schedule
    stays well-formed under {!Drivers.run_pc}'s guards. *)

val run_case : ?plant:bool -> case -> verdict
(** Execute one case.  A schedule with membership events runs
    {!Drivers.run_pc} and is audited by the same gate the driver applies
    to itself ({!Drivers.recheck_pc}: FIFO over everyone, causal over
    the founders' view, disarmed by partition/loss); any other case runs
    {!Drivers.run_stack} with [~check:true].  [~plant:true] additionally
    splices one seeded ordering violation into the run's trace
    ([Causalb_check.Mutate] — a FIFO inversion for the FIFO/BSS
    compositions, a causal inversion for the graph engines and the
    churn path, where it lands inside the founders' view) and re-audits:
    the verdict must come back [ok = false] if the oracle plumbing
    works.  A planted case whose trace has no mutation site passes. *)

val shrink : ?plant:bool -> case -> case * int
(** Minimize a failing case: drop nemesis events one at a time (keeping
    each removal only if the case still fails), then binary-search the
    smallest failing op count.  Returns the minimal case — verified
    failing — and the number of candidate re-runs spent.  [~plant] must
    match the flag the case failed under. *)

type repro = {
  original : verdict;
  minimal : case;
  attempts : int;  (** candidate re-runs the shrinker spent *)
}

type report = {
  verdicts : verdict list;  (** one per case, in generation order *)
  repros : repro list;      (** one per failing case *)
  jobs : int;
  wall_ms : float;
}

val failures : report -> verdict list

val run :
  ?jobs:int ->
  ?domains:int ->
  ?base_seed:int ->
  ?buggify:bool ->
  ?plant:bool ->
  ?churn:bool ->
  seeds:int ->
  unit ->
  report
(** The full campaign: generate, sweep, shrink.  [~jobs] shards cases
    across forked workers ({!Pool}), [~domains] across worker domains
    ({!Dpool}); each worker prints one JSON verdict line through
    [Causalb_util.Printer] and the parent reassembles them in case
    order, so verdicts are identical for every [-j]/[-J].  Failures are
    shrunk sequentially in the parent afterwards. *)

val self_test :
  ?base_seed:int -> ?log:(string -> unit) -> unit -> bool
(** Plant one known violation per shipped composition ([run_case
    ~plant:true] over an 8-case campaign with [min_phases = 1]), assert
    at least one is detected, shrink the first find, and assert the
    minimal repro still fails deterministically (two replays, equal
    checker sets) and shrank on {e both} axes — fewer nemesis events and
    fewer ops.  Then plant over a small churn campaign and assert the
    founders-scoped causal pass rejects at least one inversion there
    too.  [true] iff all of that holds. *)

val describe : case -> string
(** One-line repro description: seed, composition, replicas, workload
    shape, rendered nemesis schedule — everything needed to rebuild the
    case by hand. *)

val verdict_json : verdict -> Causalb_util.Json.t
(** The verdict as a JSON object — the [--json] line schema of
    [causalb hunt] (documented in EXPERIMENTS.md). *)

val print_report : ?json:bool -> ?log:(string -> unit) -> report -> unit
(** Human summary plus one FAIL block per repro, or ([~json]) one JSON
    verdict line per case and a closing summary object.  Prints through
    [~log] ([Causalb_util.Printer.line] by default, so output is
    capturable under both pools). *)
