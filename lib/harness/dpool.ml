(* Domains-based sweep runner: the in-process sibling of [Pool].

   Where [Pool] forks worker processes and captures task output at the
   fd level, [Dpool] spawns worker domains (OCaml 5) and captures output
   through [Printer]'s domain-local sink — fd redirection is
   process-global, so dup2 cannot isolate two domains printing
   concurrently.  The contract is the [Pool] contract: same task type's
   shape, same derived per-task seeds ([Pool.seed_for]), same [result] /
   [report] records, results in task-list order — so [Runner.assemble]
   reproduces the byte stream of a sequential run from a [-J n] sweep
   exactly as it does from a [-j n] one.

   Tasks come in two modes:

   - [Parallel] (deterministic experiment parts): print through
     [Printer], safe to run in any domain, captured by sink.
   - [Sequential] (timing parts: micro/scaling benches): keep their raw
     prints and their exclusive use of the machine.  They run in the
     main domain through [Pool.run_one]'s fd capture, *before* any
     worker domain is spawned, so the dup2 window never overlaps with
     another domain's output and timing is not polluted by concurrent
     mutator work.

   On 4.14 (or [domains <= 1]) the backend degrades to an in-domain
   sequential loop with the same capture discipline — byte-identical
   results, no warning noise, no speedup. *)

type mode = Parallel | Sequential

type task = { name : string; mode : mode; run : seed:int -> unit }

let task ?(mode = Parallel) ~name run = { name; mode; run }

let available = Dpool_backend.available

let recommended_domains = Dpool_backend.recommended

module Printer = Causalb_util.Printer

(* In-domain capture via the Printer sink.  The exception is caught
   *inside* the captured thunk so the buffer's contents survive a
   failing task, mirroring [Pool.with_capture] keeping the temp file's
   bytes when the task raises. *)
let run_one_buffered ~base_seed (t : task) : Pool.result =
  let seed = Pool.seed_for ~base:base_seed t.name in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let output, outcome =
    Printer.capture (fun () ->
        try
          t.run ~seed;
          Pool.Done
        with e -> Pool.Failed (Printexc.to_string e))
  in
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  {
    Pool.name = t.name;
    seed;
    status = outcome;
    wall_ms = (t1 -. t0) *. 1000.0;
    gc_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    gc_major_words = g1.Gc.major_words -. g0.Gc.major_words;
    output;
  }

let run ?(domains = 1) ?(base_seed = 42) (tasks : task list) : Pool.report =
  let t0 = Unix.gettimeofday () in
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let results : Pool.result option array = Array.make n None in
  (* Phase 1: fd-captured timing tasks, main domain only, no worker
     domain live — see the header comment. *)
  Array.iteri
    (fun i t ->
      if t.mode = Sequential then
        results.(i) <-
          Some (Pool.run_one ~base_seed { Pool.name = t.name; run = t.run }))
    arr;
  (* Phase 2: sink-captured deterministic tasks across worker domains. *)
  let par =
    Array.of_list
      (List.filteri (fun i _ -> arr.(i).mode = Parallel)
         (List.init n (fun i -> i)))
  in
  let thunks =
    Array.map (fun i () -> run_one_buffered ~base_seed arr.(i)) par
  in
  (* Mirror the backend's spawn condition: once a worker domain exists,
     Unix.fork is gone for the rest of the process — let Pool degrade
     instead of crash (see [Pool.fork_unavailable]). *)
  if available && domains > 1 && Array.length thunks > 1 then
    Pool.fork_unavailable := true;
  let rs = Dpool_backend.map ~domains thunks in
  Array.iteri (fun k i -> results.(i) <- Some rs.(k)) par;
  let results =
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  in
  let failures =
    List.filter_map
      (fun (r : Pool.result) ->
        match r.status with Pool.Done -> None | Pool.Failed _ -> Some r.name)
      results
  in
  {
    Pool.results;
    failures;
    wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
    jobs = max 1 domains;
  }
