(** Domains-based sweep runner: [Pool]'s in-process sibling.

    [run ~domains tasks] executes the tasks on [domains] worker domains
    (OCaml 5; a dynamically-claimed shared work queue keeps skewed task
    costs from idling domains) and returns a {!Pool.report} with results
    in task-list order — the same record, the same
    {!Pool.seed_for}-derived per-task seeds, so everything downstream of
    [Pool.run] (assembly, artifacts, byte-identity checks) is oblivious
    to which pool ran the sweep.

    Capture: worker domains share one fd table, so output is captured
    through {!Causalb_util.Printer}'s domain-local sink instead of dup2
    — which is why deterministic experiment parts print through
    [Printer].  Tasks marked [Sequential] (timing parts with raw prints
    and wall-clock sensitivity) instead run via {!Pool.run_one}'s fd
    capture in the main domain before any worker domain exists.

    On OCaml 4.14 ([available = false]) or [domains <= 1], tasks run
    sequentially in the calling domain under the identical capture
    discipline: same results, same bytes, no speedup.

    Interaction with the fork pool: the OCaml 5 runtime refuses
    [Unix.fork] once any domain has been spawned, so after the first
    parallel [run] here, {!Pool.run} executes in-process (it checks
    {!Pool.fork_unavailable}).  A process that wants both sweeps must
    fork first, spawn domains second. *)

type mode =
  | Parallel
      (** deterministic part: prints through [Printer], any domain *)
  | Sequential
      (** timing part: raw prints, fd capture, main domain, runs before
          worker domains spawn *)

type task = { name : string; mode : mode; run : seed:int -> unit }

val task : ?mode:mode -> name:string -> (seed:int -> unit) -> task
(** [mode] defaults to [Parallel]. *)

val available : bool
(** Whether this build has real worker domains (OCaml >= 5.0). *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5, [1] on 4.14. *)

val run_one_buffered : base_seed:int -> task -> Pool.result
(** One task under sink capture in the calling domain — exposed for the
    byte-identity tests. *)

val run : ?domains:int -> ?base_seed:int -> task list -> Pool.report
(** Never raises on task failure — inspect [failures].  [report.jobs]
    echoes [domains]. *)
