(* Dpool backend for OCaml 5: real worker domains.

   The work queue is an atomic next-index counter over the thunk array —
   the same static-order/dynamic-claim split the fork pool avoids (it
   shards statically so a dead worker's tasks are identifiable), but
   here workers cannot die independently of the process, and dynamic
   claiming keeps all domains busy when task costs are skewed.

   Each slot of [results] is written by exactly one domain and read by
   the caller only after every [Domain.join], which establishes the
   happens-before edge — no per-slot synchronisation needed.  Thunks
   must not raise: [Dpool] wraps each task so failures come back as
   values (a raise here would surface at [Domain.join] and tear down the
   whole sweep). *)

let available = true

let recommended () = Domain.recommended_domain_count ()

let map ~domains (fs : (unit -> 'a) array) : 'a array =
  let n = Array.length fs in
  let domains = max 1 (min domains n) in
  if domains = 1 then Array.map (fun f -> f ()) fs
  else begin
    let next = Atomic.make 0 in
    let results = Array.make n None in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_ := false
        else results.(i) <- Some (fs.(i) ())
      done
    in
    (* The calling domain is worker number [domains]: spawn one fewer. *)
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map (function Some r -> r | None -> assert false) results
  end
