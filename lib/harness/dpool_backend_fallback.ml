(* Dpool backend for OCaml 4.14, where [Domain]/[Mutex]/[Condition] are
   not in the stdlib (they need the threads library, which this repo
   does not depend on).  [map] runs the thunks sequentially in the
   calling "domain" — same capture discipline, same task order, same
   bytes — so [causalb exp -J n] works everywhere and merely doesn't
   speed up here. *)

let available = false

let recommended () = 1

let map ~domains:_ (fs : (unit -> 'a) array) : 'a array =
  Array.map (fun f -> f ()) fs
