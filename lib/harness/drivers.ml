(* Shared machinery for the experiment harness: three protocol drivers
   (causal stable-point, ASend deterministic merge, ASend sequencer) that
   run the same operation mix and report comparable metrics. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Group = Causalb_core.Group
module Osend = Causalb_core.Osend
module Asend = Causalb_core.Asend
module Message = Causalb_core.Message
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Op = Causalb_data.Op
module Sm = Causalb_data.State_machine
module Dt = Causalb_data.Datatypes
module Service = Causalb_data.Service
module Window = Causalb_data.Window
module Objects = Causalb_data.Objects
module Frontend = Causalb_data.Frontend
module Replica = Causalb_data.Replica
module Stats = Causalb_util.Stats
module Rng = Causalb_util.Rng

let default_latency = Latency.lognormal ~mu:0.5 ~sigma:1.0 ()

(* How commutative and non-commutative operations interleave: [Random p]
   draws each op commutative with probability [p]; [Fixed_window k] emits
   exactly [k] commutative ops then one sync — the §6.1 cycle with f̄=k. *)
type mix = Random of float | Fixed_window of int

type workload = {
  ops : int;       (* total operations *)
  spacing : float; (* ms between submissions *)
  mix : mix;
}

(* The §6.1 operation mix on the integer register: commutative incs,
   non-commutative reads as sync points.  A closing read is appended so
   the final window always closes. *)
let op_sequence rng w =
  let body =
    match w.mix with
    | Random p ->
      List.init w.ops (fun _ ->
          if Rng.bernoulli rng p then Dt.Int_register.Inc 1
          else Dt.Int_register.Read)
    | Fixed_window k ->
      List.init w.ops (fun i ->
          if k > 0 && (i + 1) mod (k + 1) <> 0 then Dt.Int_register.Inc 1
          else Dt.Int_register.Read)
  in
  body @ [ Dt.Int_register.Read ]

type result = {
  delivery : Stats.t;    (* submit -> causal apply / total release, per member *)
  stability : Stats.t;   (* submit -> enclosing stable point (causal only) *)
  messages : int;        (* unicast copies on the wire *)
  cycles : int;          (* stable points / batches at member 0 *)
  buffered : int;        (* forced waits across members *)
  edges : int;           (* ordering-constraint edges in the message graph *)
  checks_ok : bool;
  sim_time : float;      (* virtual makespan *)
}

(* --- driver 1: the paper's stable-point protocol --- *)

let run_causal ?(seed = 42) ?(latency = default_latency) ~replicas w =
  let engine = Engine.create ~seed () in
  let svc =
    Service.create engine ~replicas ~machine:Dt.Int_register.machine ~latency
      ~fifo:false ()
  in
  let rng = Engine.fork_rng engine in
  List.iteri
    (fun i op ->
      Engine.schedule_at engine ~time:(float_of_int i *. w.spacing) (fun () ->
          ignore (Service.submit svc ~src:(i mod replicas) op)))
    (op_sequence rng w);
  Service.run svc;
  let buffered =
    List.init replicas (fun n ->
        Osend.buffered_ever (Group.member (Service.group svc) n))
    |> List.fold_left ( + ) 0
  in
  {
    delivery = Service.delivery_latency svc;
    stability = Service.stability_latency svc;
    messages = Service.messages_sent svc;
    cycles = Replica.cycles_closed (Service.replica svc 0);
    buffered;
    edges =
      List.length
        (Causalb_graph.Depgraph.edges
           (Osend.graph (Group.member (Service.group svc) 0)));
    checks_ok = List.for_all snd (Service.check svc);
    sim_time = Engine.now engine;
  }

(* --- driver 2: ASend deterministic merge on the same causal traffic ---
   Commutative messages are withheld until the closing sync, then released
   in one identical order at every member: per-message latency is the
   price of total ordering without extra messages. *)

let run_merge ?(seed = 42) ?(latency = default_latency) ~replicas w =
  let engine = Engine.create ~seed () in
  let net = Net.create engine ~nodes:replicas ~latency ~fifo:false () in
  let send_times = Label.Tbl.create 256 in
  let release = Stats.create () in
  let is_sync m =
    match Message.payload m with
    | Dt.Int_register.Read | Dt.Int_register.Set _ -> true
    | Dt.Int_register.Inc _ | Dt.Int_register.Dec _ -> false
  in
  let merges =
    Array.init replicas (fun _ ->
        Asend.Merge.create ~is_sync ())
  in
  (* Release latency is measured inside the group callback: anything the
     merge layer newly released gets stamped with the current virtual
     time. *)
  let on_deliver ~node ~time:_ msg =
    let merge = merges.(node) in
    let before = List.length (Asend.Merge.total_order merge) in
    Asend.Merge.on_causal_deliver merge msg;
    let order = Asend.Merge.total_order merge in
    let now = Engine.now engine in
    (* everything newly released gets its latency recorded *)
    List.iteri
      (fun i lbl ->
        if i >= before then
          match Label.Tbl.find_opt send_times lbl with
          | Some t0 -> Stats.add release (now -. t0)
          | None -> ())
      order
  in
  let group = Group.create net ~on_deliver () in
  let frontend =
    Frontend.create group ~kind:Dt.Int_register.machine.Sm.kind ()
  in
  let rng = Engine.fork_rng engine in
  List.iteri
    (fun i op ->
      Engine.schedule_at engine ~time:(float_of_int i *. w.spacing) (fun () ->
          let lbl = Frontend.submit frontend ~src:(i mod replicas) op in
          Label.Tbl.replace send_times lbl (Engine.now engine)))
    (op_sequence rng w);
  Engine.run engine;
  let orders = Array.to_list (Array.map Asend.Merge.total_order merges) in
  let identical = Causalb_core.Checker.identical_orders orders in
  {
    delivery = release;
    stability = release;
    messages = Net.messages_sent net;
    cycles = Asend.Merge.batches merges.(0);
    buffered = 0;
    edges =
      List.length
        (Causalb_graph.Depgraph.edges (Osend.graph (Group.member group 0)));
    checks_ok = identical;
    sim_time = Engine.now engine;
  }

(* --- driver 3: fixed-sequencer total order --- *)

let run_sequencer ?(seed = 42) ?(latency = default_latency) ~replicas w =
  let engine = Engine.create ~seed () in
  let net = Net.create engine ~nodes:replicas ~latency ~fifo:false () in
  let issue_times = Hashtbl.create 256 in
  let lat = Stats.create () in
  let on_deliver ~node:_ ~time msg =
    match Hashtbl.find_opt issue_times (Message.payload msg) with
    | Some t0 -> Stats.add lat (time -. t0)
    | None -> ()
  in
  let group = Group.create net ~on_deliver () in
  let seq = Asend.Sequencer.create group ~submit_latency:latency () in
  let total = w.ops + 1 in
  for i = 0 to total - 1 do
    Engine.schedule_at engine ~time:(float_of_int i *. w.spacing) (fun () ->
        Hashtbl.replace issue_times i (Engine.now engine);
        Asend.Sequencer.asend seq ~src:(i mod replicas) i)
  done;
  Engine.run engine;
  let orders = Group.all_delivered_orders group in
  {
    delivery = lat;
    stability = lat;
    messages = Net.messages_sent net;
    cycles = 0;
    buffered =
      List.init replicas (fun n -> Osend.buffered_ever (Group.member group n))
      |> List.fold_left ( + ) 0;
    edges =
      List.length
        (Causalb_graph.Depgraph.edges (Osend.graph (Group.member group 0)));
    checks_ok = Causalb_core.Checker.identical_orders orders;
    sim_time = Engine.now engine;
  }

(* --- driver 4: decentralised Lamport-timestamp total order --- *)

let run_timestamp ?(seed = 42) ?(latency = default_latency) ~replicas w =
  let engine = Engine.create ~seed () in
  (* the timestamp protocol needs per-link FIFO *)
  let net = Net.create engine ~nodes:replicas ~latency ~fifo:true () in
  let issue_times = Hashtbl.create 256 in
  let lat = Stats.create () in
  let ts =
    Asend.Timestamp.create net
      ~on_deliver:(fun ~node:_ ~time ~tag _ ->
        match Hashtbl.find_opt issue_times tag with
        | Some t0 -> Stats.add lat (time -. t0)
        | None -> ())
      ()
  in
  let total = w.ops + 1 in
  for i = 0 to total - 1 do
    Engine.schedule_at engine ~time:(float_of_int i *. w.spacing) (fun () ->
        let tag = string_of_int i in
        Hashtbl.replace issue_times tag (Engine.now engine);
        Asend.Timestamp.bcast ts ~src:(i mod replicas) ~tag i)
  done;
  Engine.run engine;
  let orders = List.init replicas (Asend.Timestamp.delivered_tags ts) in
  let identical = List.for_all (fun o -> o = List.hd orders) orders in
  {
    delivery = lat;
    stability = lat;
    messages = Net.messages_sent net;
    cycles = 0;
    buffered = 0;
    edges = 0;
    checks_ok = identical;
    sim_time = Engine.now engine;
  }

(* --- driver 5: the composable ordering stack ---
   One §6.1 workload, any composition.  The stack reuses the same engines
   (and the same RNG consumption order), so on equal seeds the delivery
   and forced-wait numbers match the standalone drivers above. *)

module Stack = Causalb_stack.Stack
module Metrics = Causalb_stackbase.Metrics
module Nemesis = Causalb_net.Nemesis
module Pcb = Causalb_core.Pcbcast
module Trace = Causalb_sim.Trace

type stack_spec =
  | Fifo_only
  | Bss_stack
  | Psync_stack
  | Osend_stack
  | Osend_merge
  | Osend_counted of int
  | Osend_sequencer
  | Pc_stack

let stack_spec_name = function
  | Fifo_only -> "fifo"
  | Bss_stack -> "bss"
  | Psync_stack -> "psync"
  | Osend_stack -> "osend"
  | Osend_merge -> "osend+merge"
  | Osend_counted n -> Printf.sprintf "osend+counted(%d)" n
  | Osend_sequencer -> "osend+sequencer"
  | Pc_stack -> "pc"

(* Everything the offline ordering oracle needs to audit one run: the
   trace, the dependency graph the delivery order is checked against
   (extracted from member 0 when the causal layer builds one, else the
   graph the front-end intended), the synchronization points, and the
   verdicts. *)
type stack_audit = {
  trace : Causalb_sim.Trace.t;
  graph : Causalb_graph.Depgraph.t;
  sync : Label.Set.t;
  diagnostics : Causalb_check.Diag.t list;
  lint : Causalb_check.Spec_lint.issue list;
  static : Causalb_check.Diag.t list;
      (* static-verifier issues (guarantee lattice + race lint) *)
}

type stack_result = {
  delivery : Stats.t;   (* submit -> app release *)
  messages : int;
  lost : int;           (* copies dropped by partition + injected loss *)
  buffered : int;       (* causal-layer forced waits across members *)
  layers : Metrics.t list;
  checks_ok : bool;
  sim_time : float;
  refused : bool;       (* static verifier rejected before execution *)
  audit : stack_audit option;  (* present under [~check:true] *)
}

let op_is_sync op =
  match op with
  | Dt.Int_register.Read | Dt.Int_register.Set _ -> true
  | Dt.Int_register.Inc _ | Dt.Int_register.Dec _ -> false

let stack_params spec =
  match spec with
  | Fifo_only -> (Stack.Fifo, Stack.Pass)
  | Bss_stack -> (Stack.Bss, Stack.Pass)
  | Psync_stack -> (Stack.Psync, Stack.Pass)
  | Osend_stack -> (Stack.Osend, Stack.Pass)
  | Osend_merge ->
    (Stack.Osend, Stack.Merge (fun m -> op_is_sync (Message.payload m)))
  | Osend_counted n -> (Stack.Osend, Stack.Counted n)
  | Osend_sequencer -> (Stack.Osend, Stack.Sequencer { node = 0 })
  | Pc_stack -> (Stack.Pc, Stack.Pass)

(* The transport each composition runs over.  The historical drivers all
   run on raw datagram links ([fifo = false]) so the ordering work is
   visible in the causal layer; PC-broadcast is the exception — its
   causal order IS the per-link FIFO order, so it gets (and declares that
   it requires) FIFO links. *)
let transport_fifo_of = function
  | Pc_stack -> true
  | Fifo_only | Bss_stack | Psync_stack | Osend_stack | Osend_merge
  | Osend_counted _ | Osend_sequencer ->
    false

(* --- the static consistency verifier over the stack driver --- *)

module Guarantee = Causalb_stackbase.Guarantee
module Stack_verify = Causalb_analysis.Stack_verify
module Race_lint = Causalb_analysis.Race_lint
module Analysis_workload = Causalb_analysis.Workload

(* What each composition promises the application.  FIFO-only and BSS are
   deliberate under-ordered baselines: the dynamic oracle holds them to
   per-sender order and same-set delivery only, so they claim [Fifo] (BSS
   does enforce *potential* causality, but the harness front-end submits
   on schedule without waiting for delivery, so explicit R(M) edges
   between different senders are not potential causality — see
   [Stack_verify]).  The explicit-graph engines claim [Causal]; the
   total-order tails claim [Causal_total]. *)
let claim_of = function
  | Fifo_only | Bss_stack -> Guarantee.Fifo
  | Psync_stack | Osend_stack | Pc_stack -> Guarantee.Causal
  | Osend_merge | Osend_counted _ | Osend_sequencer -> Guarantee.Causal_total

(* The workload intent the race lint analyses: the same §6.1 Window
   bookkeeping [submit_op] performs below, replayed purely over the op
   list, with the same per-origin label numbering. *)
let intent_of_ops ~replicas ops =
  Analysis_workload.of_ops ~spec:Dt.Int_register.spec
    ~src:(fun i -> i mod replicas)
    ops

type static_report = {
  static_spec : stack_spec;
  claim : Guarantee.t;
  verify : Stack_verify.report;
  races : Race_lint.race list;
  demand : Guarantee.t;
  static_diags : Causalb_check.Diag.t list;
}

let static_ok r = r.static_diags = []

let static_passes ~replicas spec ops =
  let ordering, total = stack_params spec in
  let claim = claim_of spec in
  let verify =
    Stack_verify.verify ~claim
      (Stack_verify.layers_of ~ordering ~total ~fifo:(transport_fifo_of spec))
  in
  let intent = intent_of_ops ~replicas ops in
  (* The race lint holds a composition to what it claims: under-ordered
     baselines (claim < Causal) are exempt — their pairs are audited
     dynamically against the weaker fifo/same-set oracle instead. *)
  let races =
    if Guarantee.leq Guarantee.Causal claim then
      Race_lint.check ~top:verify.Stack_verify.top intent
    else []
  in
  {
    static_spec = spec;
    claim;
    verify;
    races;
    demand = Race_lint.required intent;
    static_diags = Stack_verify.to_diags verify @ Race_lint.to_diags races;
  }

let static_audit ?(seed = 42) ?(latency = default_latency) ~replicas spec w =
  (* Build (but do not run) the exact engine + stack [run_stack] would:
     composition forks the engine RNG, so only an identical prelude makes
     the op-sequence fork draw the same stream under [Random p]. *)
  let engine = Engine.create ~seed () in
  let ordering, total = stack_params spec in
  let (_ : Dt.Int_register.op Stack.t) =
    Stack.compose ~ordering ~total ~latency ~fifo:(transport_fifo_of spec)
      engine ~nodes:replicas ()
  in
  let rng = Engine.fork_rng engine in
  static_passes ~replicas spec (op_sequence rng w)

(* Which offline checkers soundly apply to one audited run.  [lost = 0]
   means every scheduled copy arrived, so completeness-dependent
   properties (same-set windows, strict release agreement) are
   checkable; under loss (partition or injected drops, the campaign's
   nemesis) the oracle is restricted to safety — causal order, FIFO per
   sender over what {e was} delivered, and stable-point digests (a cycle
   only closes at members that saw its whole window, so digests of
   closed cycles must still agree).  Shared by [run_stack] and the
   campaign driver, whose planted-bug self-test re-runs the same
   checkers over a mutated trace. *)
let recheck spec ~lost (a : stack_audit) =
  let module C = Causalb_check.Trace_check in
  let graph = a.graph and tr = a.trace in
  let none = Label.Set.empty in
  let complete = lost = 0 in
  let if_complete diags = if complete then diags () else [] in
  match spec with
  | Fifo_only | Bss_stack ->
    C.fifo ~graph tr
    @ if_complete (fun () -> C.total_order ~graph ~sync:none tr)
  | Pc_stack ->
    (* FIFO per origin holds unconditionally (gaps park, they never
       skip); causal order is only promised over reliable links, so its
       checker arms with the completeness-dependent ones. *)
    C.fifo ~graph tr
    @ if_complete (fun () ->
          C.causal ~graph tr @ C.total_order ~graph ~sync:none tr)
  | Psync_stack ->
    C.causal ~graph tr
    @ if_complete (fun () -> C.total_order ~graph ~sync:none tr)
  | Osend_stack ->
    C.causal ~graph tr
    @ if_complete (fun () -> C.total_order ~graph ~sync:a.sync tr)
    @ C.stable_points tr
  | Osend_merge | Osend_counted _ | Osend_sequencer ->
    C.causal ~graph tr
    @ if_complete (fun () -> C.total_order ~strict:true ~graph ~sync:none tr)
    @ C.stable_points tr

let run_stack ?(seed = 42) ?(latency = default_latency) ?(check = false)
    ?(on_static = `Warn) ?nemesis ~replicas spec w : stack_result =
  let engine = Engine.create ~seed () in
  let ordering, total = stack_params spec in
  (* Submit-to-release latency keyed by op name: names survive even when
     the label is allocated later (sequencer). *)
  let issue = Hashtbl.create 256 in
  let lat = Stats.create () in
  let trace = if check then Some (Causalb_sim.Trace.create ()) else None in
  (* Stable-point trackers, one per member, fed the application release
     sequence: each closed §6.1 cycle leaves a [Mark] record whose digest
     covers the window set and the closing sync, for the offline
     stable-point checker to compare across members.  Only attached where
     the causal layer actually enforces the §6.1 dependency pattern
     (OSend); under FIFO/BSS a sync can overtake its window, so cycles
     are not stable points there. *)
  let track_stable =
    check
    &&
    match spec with
    | Osend_stack | Osend_merge | Osend_counted _ | Osend_sequencer -> true
    | Fifo_only | Bss_stack | Psync_stack | Pc_stack -> false
  in
  let module Sp = Causalb_core.Stable_points in
  let trackers =
    if not track_stable then None
    else
      Some
        (Array.init replicas (fun node ->
             let on_stable (p : Sp.point) =
               match trace with
               | None -> ()
               | Some tr ->
                 let window =
                   List.sort compare (List.map Label.to_string p.Sp.window)
                 in
                 let digest =
                   Hashtbl.hash (window, Label.to_string p.Sp.closed_by)
                 in
                 Causalb_sim.Trace.record tr ~time:(Engine.now engine) ~node
                   ~kind:Causalb_sim.Trace.Mark
                   ~tag:(Printf.sprintf "stable:%d" p.Sp.cycle)
                   ~info:(Printf.sprintf "digest=%08x" (digest land 0xffffffff))
                   ()
             in
             Sp.create
               ~classify:(fun m ->
                 if op_is_sync (Message.payload m) then Sp.Sync
                 else Sp.Concurrent)
               ~on_stable ()))
  in
  let on_deliver ~node ~time msg =
    (match trackers with
    | Some ts -> Sp.on_deliver ts.(node) msg
    | None -> ());
    match Hashtbl.find_opt issue (Label.name (Message.label msg)) with
    | Some t0 -> Stats.add lat (time -. t0)
    | None -> ()
  in
  let stack =
    Stack.compose ~ordering ~total ~latency ~fifo:(transport_fifo_of spec)
      ?trace ~on_deliver engine ~nodes:replicas ()
  in
  (* The §6.1 front-end dependency pattern, driven through the stack:
     commutative ops follow the last sync; a sync AND-closes the window.
     Layers that infer their own ordering ignore the predicate. *)
  let win = Window.create () in
  (* The dependency graph the front-end intends, and its sync points —
     the specification the oracle lints and (for engines that do not
     extract their own graph) audits delivery against. *)
  let intended = Causalb_graph.Depgraph.create () in
  let sync_labels = ref Label.Set.empty in
  let submit_op i op =
    let name = Printf.sprintf "op%d" i in
    let kind = if op_is_sync op then Op.Non_commutative else Op.Commutative in
    let dep = Dep.after_all (Window.deps_for win ~kind ~fallback:[]) in
    Hashtbl.replace issue name (Engine.now engine);
    match Stack.submit stack ~src:(i mod replicas) ~name ~dep op with
    | None -> ()
    | Some label ->
      if check then Causalb_graph.Depgraph.add intended label ~dep;
      if op_is_sync op then
        sync_labels := Label.Set.add label !sync_labels;
      Window.note win ~kind label
  in
  let rng = Engine.fork_rng engine in
  let ops = op_sequence rng w in
  (* Static passes BEFORE execution.  The guarantee-lattice verifier is
     O(layers) and always runs; the causal-race lint replays the intended
     workload (O(ops²) pairs) and is only computed when the oracle is on.
     [`Refuse] rejects an ill-formed configuration without spending the
     simulation budget; [`Warn] (default) runs it anyway and lets
     [checks_ok] report the issues. *)
  let static_diags =
    if check then (static_passes ~replicas spec ops).static_diags
    else
      Stack_verify.to_diags
        (Stack_verify.verify ~claim:(claim_of spec)
           (Stack_verify.layers_of ~ordering ~total
              ~fifo:(transport_fifo_of spec)))
  in
  let refused = on_static = `Refuse && static_diags <> [] in
  if static_diags <> [] && not refused then
    Format.eprintf "@[<v>causalb: static verifier: %d issue(s) in %s:@,%a@]@."
      (List.length static_diags) (stack_spec_name spec)
      Causalb_check.Diag.pp_list static_diags;
  if not refused then begin
    (* Arm the nemesis before the workload: an action and a submission
       scheduled at the same virtual instant fire nemesis-first, so a
       fault phase covers the ops whose times it spans. *)
    (match nemesis with
    | Some schedule -> Stack.install_nemesis stack schedule
    | None -> ());
    List.iteri
      (fun i op ->
        Engine.schedule_at engine ~time:(float_of_int i *. w.spacing)
          (fun () -> submit_op i op))
      ops;
    Stack.run stack
  end;
  let lost = Stack.lost_copies stack in
  let orders = Stack.all_delivered_orders stack in
  (* Agreement properties need complete delivery; when the nemesis
     removed copies from the wire they are vacuous, and the oracle below
     is restricted to safety the same way (see [recheck]). *)
  let checks_ok =
    lost > 0
    ||
    match spec with
    | Osend_merge | Osend_counted _ | Osend_sequencer ->
      Causalb_core.Checker.identical_orders orders
    | Fifo_only | Bss_stack | Psync_stack | Osend_stack | Pc_stack ->
      Causalb_core.Checker.same_set orders
  in
  let layers = Stack.metrics stack in
  let buffered =
    List.fold_left
      (fun acc (m : Metrics.t) ->
        if String.length m.Metrics.name >= 6 && String.sub m.Metrics.name 0 6 = "causal"
        then acc + m.Metrics.forced_waits
        else acc)
      0 layers
  in
  (* The offline oracle: which checkers soundly apply depends on the
     composition.  The front-end submits on schedule without waiting for
     delivery, so only the explicit-graph engines (OSend, Psync) can be
     held to the causal predicate — audited against the graph member 0
     extracted from the messages themselves.  FIFO/BSS answer for
     per-sender order only; the total-order tails answer for identical
     release sequences; OSend compositions also answer for stable-point
     digests. *)
  let audit =
    match trace with
    | None -> None
    | Some tr ->
      let graph =
        match Stack.graph stack with Some g -> g | None -> intended
      in
      let sync = !sync_labels in
      let lint = Causalb_check.Spec_lint.lint intended in
      let a =
        {
          trace = tr;
          graph;
          sync;
          diagnostics = [];
          lint;
          static = static_diags;
        }
      in
      Some { a with diagnostics = recheck spec ~lost a }
  in
  let checks_ok =
    checks_ok && static_diags = []
    &&
    match audit with
    | None -> true
    | Some a -> a.diagnostics = [] && a.lint = []
  in
  {
    delivery = lat;
    messages = Stack.messages_sent stack;
    lost;
    buffered;
    layers;
    checks_ok;
    sim_time = Engine.now engine;
    refused;
    audit;
  }

(* --- the PC-broadcast churn driver ---
   The dynamic-membership path [run_stack] cannot exercise (stacks have
   fixed membership): a Pcbcast.Group over FIFO links, a nemesis that
   may join/leave members mid-run, ops submitted round-robin over
   whoever is alive at fire time, every causal delivery traced, and the
   offline oracle over the extracted R(M). *)

type pc_result = {
  pc_delivered : int;       (* causal deliveries across members ever *)
  pc_messages : int;
  pc_lost : int;            (* partition + injected-loss drops *)
  pc_departure_drops : int; (* harmless to survivors, see Net *)
  pc_joined : int list;     (* ids the nemesis added, join order *)
  pc_left : int list;       (* ids the nemesis removed, leave order *)
  pc_members : int;         (* members ever: founders + joiners *)
  pc_diagnostics : Causalb_check.Diag.t list;
  pc_trace : Trace.t;
  pc_graph : Causalb_graph.Depgraph.t;
  pc_checks_ok : bool;
  pc_sim_time : float;
}

(* The causal checker demands a delivery's R(M) ancestors be delivered
   at the same node first — which joiners legitimately violate: their
   causal past starts at the contact's adopt-first baseline, so pre-join
   history never arrives.  Scope the causal pass to founders by
   rebuilding the trace without joiner records; FIFO (and the joiners'
   per-origin monotonicity it implies) is still checked on everyone. *)
let founders_view trace ~founders =
  let t = Trace.create () in
  Trace.iter trace (fun r ->
      if r.Trace.node < founders then
        Trace.record t ~time:r.Trace.time ~node:r.Trace.node ~kind:r.Trace.kind
          ~tag:r.Trace.tag ~info:r.Trace.info ());
  t

(* The churn oracle as a pure function of (trace, graph, loss) — the
   live driver below and the campaign's planted re-audits share it, so
   the plant path can never drift from the gating the hunt enforces.
   Causal order is only promised over reliable links; departure drops
   don't dent survivor safety, partition/loss drops do. *)
let recheck_pc ~replicas ~lost ~graph trace =
  let module C = Causalb_check.Trace_check in
  C.fifo ~graph trace
  @
  if lost = 0 then C.causal ~graph (founders_view trace ~founders:replicas)
  else []

let run_pc ?(seed = 42) ?(latency = default_latency) ?nemesis ~replicas w =
  let engine = Engine.create ~seed () in
  let trace = Trace.create () in
  (* PC-broadcast is only sound over per-link FIFO *)
  let net = Net.create engine ~nodes:replicas ~latency ~fifo:true ~trace () in
  let g =
    Pcb.Group.create net
      ~on_causal:(fun ~node ~label ->
        (* every causal delivery — π_lock barriers and Joined
           retro-disseminations included — so the offline checkers audit
           the full delivery order, not just the app-visible part *)
        Trace.record trace ~time:(Engine.now engine) ~node
          ~kind:Trace.Deliver ~tag:(Label.to_string label) ())
      ()
  in
  let joined = ref [] and left = ref [] in
  (match nemesis with
  | None -> ()
  | Some schedule ->
    Nemesis.install ~engine
      ~partition:(fun cells -> Net.partition net cells)
      ~heal:(fun () -> Net.heal net)
      ~set_fault:(fun f -> Net.set_fault net f)
      ~join:(fun ~contact ->
        (* a shrunk schedule may name a departed contact; re-route to
           the oldest survivor so the event stays meaningful *)
        let contact =
          if Pcb.Group.is_alive g contact then contact
          else
            match Pcb.Group.alive g with c :: _ -> c | [] -> contact
        in
        if Pcb.Group.is_alive g contact then
          joined := Pcb.Group.join g ~contact :: !joined)
      ~leave:(fun node ->
        (* keep member 0 (the schedule generator's anchor) and at least
           two members alive, and ignore double-leaves — the contract
           Nemesis.Leave documents *)
        if
          node <> 0
          && Pcb.Group.is_alive g node
          && List.length (Pcb.Group.alive g) > 2
        then begin
          Pcb.Group.leave g node;
          left := node :: !left
        end)
      schedule);
  (* Round-robin over whoever is alive at fire time: churn reshapes the
     submission pattern deterministically (nemesis events at the same
     instant fire first — they were armed first). *)
  let total = w.ops + 1 in
  for i = 0 to total - 1 do
    Engine.schedule_at engine ~time:(float_of_int i *. w.spacing) (fun () ->
        match Pcb.Group.alive g with
        | [] -> ()
        | al ->
          let src = List.nth al (i mod List.length al) in
          ignore (Pcb.Group.bcast g ~src ~tag:(Printf.sprintf "op%d" i) i))
  done;
  Engine.run engine;
  let graph = Pcb.Group.graph g in
  let faulty = Net.dropped_by_partition net + Net.dropped_by_loss net in
  let diagnostics = recheck_pc ~replicas ~lost:faulty ~graph trace in
  let delivered =
    List.init (Pcb.Group.size g) (fun i ->
        Pcb.delivered_count (Pcb.Group.member g i))
    |> List.fold_left ( + ) 0
  in
  {
    pc_delivered = delivered;
    pc_messages = Net.messages_sent net;
    pc_lost = faulty;
    pc_departure_drops = Net.dropped_by_departure net;
    pc_joined = List.rev !joined;
    pc_left = List.rev !left;
    pc_members = Pcb.Group.size g;
    pc_diagnostics = diagnostics;
    pc_trace = trace;
    pc_graph = graph;
    pc_checks_ok = diagnostics = [];
    pc_sim_time = Engine.now engine;
  }

(* --- driver 6: spec-derived objects over the stable-point service ---
   One replicated object (any sequential spec), a timed submission
   schedule, and the full evidence chain: Service.check online, plus the
   offline oracle over the trace (causal safety against member 0's
   extracted graph, stable-point digest agreement from the Mark
   records). *)

type object_result = {
  checks : (string * bool) list;     (* Service.check verdicts *)
  diagnostics : Causalb_check.Diag.t list; (* offline oracle violations *)
  trace : Causalb_sim.Trace.t;
  cycles : int;                      (* closed §6.1 cycles at member 0 *)
  stable_marks : int;                (* Mark records across all members *)
  messages : int;
  sim_time : float;
}

let object_ok r =
  List.for_all snd r.checks && r.diagnostics = []

let run_object ?(seed = 42) ?(latency = default_latency) ~replicas ~machine
    submissions =
  let engine = Engine.create ~seed () in
  let trace = Causalb_sim.Trace.create () in
  let svc = Service.create engine ~replicas ~machine ~latency ~fifo:false ~trace () in
  List.iter
    (fun (time, src, op) ->
      Engine.schedule_at engine ~time (fun () ->
          ignore (Service.submit svc ~src op)))
    submissions;
  Service.run svc;
  let graph = Osend.graph (Group.member (Service.group svc) 0) in
  let module C = Causalb_check.Trace_check in
  let diagnostics = C.causal ~graph trace @ C.stable_points trace in
  let stable_marks = ref 0 in
  Causalb_sim.Trace.iter trace (fun r ->
      if r.Causalb_sim.Trace.kind = Causalb_sim.Trace.Mark then
        incr stable_marks);
  {
    checks = Service.check svc;
    diagnostics;
    trace;
    cycles = Replica.cycles_closed (Service.replica svc 0);
    stable_marks = !stable_marks;
    messages = Service.messages_sent svc;
    sim_time = Engine.now engine;
  }

(* Deterministic object workloads, shared by the bench experiments and
   the causalb-check CLI so both audit the very same runs.  Times and
   sources are pure functions of (seed, sizes). *)

let counter_pipeline ?(seed = 11) ~replicas ~rounds ~window () =
  let rng = Rng.create seed in
  let ops = ref [] in
  let t = ref 0.0 in
  let push src op =
    ops := (!t, src, op) :: !ops;
    t := !t +. 1.5
  in
  for _ = 1 to rounds do
    for _ = 1 to window do
      push (Rng.int rng replicas) (Objects.Counter.Add (1 + Rng.int rng 9))
    done;
    push (Rng.int rng replicas) Objects.Counter.Value
  done;
  List.rev !ops

let cart_items = [| "book"; "pen"; "mug"; "lamp"; "cable" |]

let cart_workload ?(seed = 12) ~replicas ~rounds ~window () =
  let rng = Rng.create seed in
  let tag = ref 0 in
  let ops = ref [] in
  let t = ref 0.0 in
  let push src op =
    ops := (!t, src, op) :: !ops;
    t := !t +. 1.5
  in
  for _ = 1 to rounds do
    (* a window of concurrent adds from every shopper … *)
    for _ = 1 to window do
      incr tag;
      push (Rng.int rng replicas)
        (Objects.Or_set.Add (Rng.pick rng cart_items, !tag))
    done;
    (* … closed by an observed-remove (a sync point: it erases exactly
       the tags it has seen) or a checkout read *)
    if Rng.bool rng then
      push (Rng.int rng replicas) (Objects.Or_set.Remove (Rng.pick rng cart_items))
    else push (Rng.int rng replicas) Objects.Or_set.Elements
  done;
  List.rev !ops

let editing_workload ?(seed = 13) ~replicas ~rounds ~window () =
  let rng = Rng.create seed in
  let ops = ref [] in
  let t = ref 0.0 in
  let push src op =
    ops := (!t, src, op) :: !ops;
    t := !t +. 1.5
  in
  (* each author types after its own last character; concurrent authors'
     runs interleave by the RGA order at read time *)
  let cursor = Array.make replicas None in
  let next_seq = ref 0 in
  let live = ref [] in
  for _ = 1 to rounds do
    for _ = 1 to window do
      let src = Rng.int rng replicas in
      if (not (!live = [])) && Rng.int rng 10 = 0 then begin
        (* an occasional deletion — still a Cid op for RGA *)
        let id = Rng.pick_list rng !live in
        live := List.filter (fun i -> i <> id) !live;
        push src (Objects.Rga.Delete id)
      end
      else begin
        incr next_seq;
        let id = (!next_seq, src) in
        let ch = String.make 1 (Char.chr (97 + Rng.int rng 26)) in
        push src (Objects.Rga.Insert { id; after = cursor.(src); ch });
        cursor.(src) <- Some id;
        live := id :: !live
      end
    done;
    push (Rng.int rng replicas) Objects.Rga.Read
  done;
  List.rev !ops

let p50 s = Stats.percentile s 50.0

let p95 s = Stats.percentile s 95.0

let fmt = Causalb_util.Table.fmt_float ~digits:2
