(** Experiment drivers: the four protocol configurations every
    quantitative experiment compares, run over identical §6.1-style
    workloads with comparable metrics.

    Each driver builds a fresh engine/network/group, submits the same
    operation sequence (derived deterministically from the seed) and
    returns a {!result}.  The drivers are deterministic: equal arguments
    produce equal results. *)

(** How commutative and non-commutative operations interleave: [Random p]
    draws each op commutative with probability [p]; [Fixed_window k]
    emits exactly [k] commutative ops then one sync — the §6.1 cycle with
    f̄ = k. *)
type mix = Random of float | Fixed_window of int

type workload = {
  ops : int;       (** total operations (a closing sync is appended) *)
  spacing : float; (** ms between submissions *)
  mix : mix;
}

type result = {
  delivery : Causalb_util.Stats.t;
      (** submit → causal apply (or total-order release), per member *)
  stability : Causalb_util.Stats.t;
      (** submit → enclosing stable point (causal driver only; equals
          [delivery] for the total-order drivers) *)
  messages : int;   (** unicast copies on the wire *)
  cycles : int;     (** stable points / batches at member 0 *)
  buffered : int;   (** forced delivery waits across members *)
  edges : int;      (** ordering-constraint edges in member 0's graph *)
  checks_ok : bool; (** all driver-specific correctness checks passed *)
  sim_time : float; (** virtual makespan *)
}

val default_latency : Causalb_sim.Latency.t

val run_causal :
  ?seed:int -> ?latency:Causalb_sim.Latency.t -> replicas:int -> workload ->
  result
(** The paper's stable-point protocol: {!Causalb_data.Service} over the
    §6.1 front-end. *)

val run_merge :
  ?seed:int -> ?latency:Causalb_sim.Latency.t -> replicas:int -> workload ->
  result
(** ASend deterministic merge on the same causal traffic: commutative
    messages are withheld until their closing sync, then released in one
    identical order at every member. *)

val run_sequencer :
  ?seed:int -> ?latency:Causalb_sim.Latency.t -> replicas:int -> workload ->
  result
(** Fixed-sequencer total order (extra submission hop + causal chain). *)

val run_timestamp :
  ?seed:int -> ?latency:Causalb_sim.Latency.t -> replicas:int -> workload ->
  result
(** Decentralised Lamport-timestamp total order (FIFO links, n² acks). *)

(** {1 The composable ordering stack driver} *)

(** Which pipeline composition to run the workload over. *)
type stack_spec =
  | Fifo_only          (** transport → fifo → app *)
  | Bss_stack          (** transport → bss causal → app *)
  | Psync_stack        (** transport → psync causal → app *)
  | Osend_stack        (** transport → osend causal → app *)
  | Osend_merge        (** … → osend → sync-anchored merge → app *)
  | Osend_counted of int  (** … → osend → count-closed merge → app *)
  | Osend_sequencer    (** … → sequencer chain over osend → app *)
  | Pc_stack
      (** fifo transport → pc causal → app: constant-size headers,
          causal order from the links ([Causalb_core.Pcbcast]) *)

val stack_spec_name : stack_spec -> string

val transport_fifo_of : stack_spec -> bool
(** The transport each composition runs over: [false] (raw datagram
    links) for the historical drivers, [true] for PC-broadcast — its
    causal order {e is} the per-link FIFO order.  Every driver and both
    static passes thread this, so a spec's declared requirement and the
    network it actually gets can never drift apart. *)

(** One run's evidence for the offline ordering oracle
    ([Causalb_check]): the execution trace, the dependency graph the
    delivery order was audited against (member 0's extracted [R(M)] for
    OSend/Psync, the front-end's intended graph otherwise), the
    synchronization points, and the verdicts. *)
type stack_audit = {
  trace : Causalb_sim.Trace.t;
  graph : Causalb_graph.Depgraph.t;
  sync : Causalb_graph.Label.Set.t;
  diagnostics : Causalb_check.Diag.t list;
      (** trace-checker violations; empty = every applicable property held *)
  lint : Causalb_check.Spec_lint.issue list;
      (** static issues in the intended dependency specification *)
  static : Causalb_check.Diag.t list;
      (** static-verifier issues found {e before} execution: guarantee
          lattice ([verify:*]) and causal-race lint ([race:causal]) *)
}

type stack_result = {
  delivery : Causalb_util.Stats.t;  (** submit → application release *)
  messages : int;                   (** unicast copies on the wire *)
  lost : int;
      (** copies the transport dropped before arrival (partition +
          injected loss).  When non-zero, agreement properties are
          vacuous: [checks_ok] and the oracle restrict themselves to
          safety (see {!recheck}) *)
  buffered : int;   (** forced waits in the causal layer, all members *)
  layers : Causalb_stackbase.Metrics.t list;
      (** uniform per-layer metrics, bottom-up *)
  checks_ok : bool;
      (** same-set (causal) / identical-order (total); under [~check:true]
          also requires an empty {!stack_audit.diagnostics} and
          {!stack_audit.lint}; always requires clean static passes *)
  sim_time : float;
  refused : bool;
      (** the static verifier rejected the configuration before execution
          (only under [~on_static:`Refuse]); no operation was submitted *)
  audit : stack_audit option;  (** present iff run with [~check:true] *)
}

val claim_of : stack_spec -> Causalb_stackbase.Guarantee.t
(** The consistency level each shipped composition {e claims}: [Fifo] for
    the deliberate under-ordered baselines (FIFO-only, BSS — the dynamic
    oracle holds them to per-sender order and same-set delivery only),
    [Causal] for the engines that extract a true potential-causality
    graph (Psync, OSend, and PC — whose audit graph records each send's
    actual delivery context), and [Causal_total] for the total-order
    tails.  The static verifier checks the claim against the composed
    top-of-stack guarantee, and the race lint applies to compositions
    claiming at least [Causal]. *)

(** One configuration's static verdict, computed without executing it:
    both passes of the static consistency verifier
    ({!Causalb_analysis.Stack_verify} over the declared layer lattice,
    {!Causalb_analysis.Race_lint} over the §6.1 workload intent). *)
type static_report = {
  static_spec : stack_spec;
  claim : Causalb_stackbase.Guarantee.t;
  verify : Causalb_analysis.Stack_verify.report;
      (** pass 1: bottom-up guarantee composition + claim check *)
  races : Causalb_analysis.Race_lint.race list;
      (** pass 2: non-commuting pairs not covered by [R(M)], a sync
          point, or the top-of-stack guarantee (empty for claims below
          [Causal] — those are audited dynamically instead) *)
  demand : Causalb_stackbase.Guarantee.t;
      (** minimal top-of-stack guarantee making the workload race-free *)
  static_diags : Causalb_check.Diag.t list;
      (** both passes' issues as structured diagnostics *)
}

val static_ok : static_report -> bool

val static_audit :
  ?seed:int ->
  ?latency:Causalb_sim.Latency.t ->
  replicas:int ->
  stack_spec ->
  workload ->
  static_report
(** The static verdict {!run_stack} would compute for the same arguments,
    without running the simulation.  Builds (but does not run) the same
    engine and stack so the op-sequence RNG fork draws the identical
    stream — the audited intent is exactly the workload a real run
    submits. *)

val recheck :
  stack_spec -> lost:int -> stack_audit -> Causalb_check.Diag.t list
(** Run the offline checkers that soundly apply to this composition over
    an audit's trace: causal safety / FIFO / stable-point digests
    always, the completeness-dependent agreement checkers only when
    [lost = 0] (under loss a member legitimately never sees some
    messages).  [run_stack] computes its [audit.diagnostics] with
    exactly this function; the campaign driver re-runs it over mutated
    traces ([Causalb_check.Mutate]) in its planted-bug self-test. *)

val run_stack :
  ?seed:int ->
  ?latency:Causalb_sim.Latency.t ->
  ?check:bool ->
  ?on_static:[ `Warn | `Refuse ] ->
  ?nemesis:Causalb_net.Nemesis.t ->
  replicas:int ->
  stack_spec ->
  workload ->
  stack_result
(** Run the same §6.1-style workload as the standalone drivers over any
    stack composition.  Deterministic in all arguments; on equal seeds
    the delivery counts and forced-wait numbers of each composition match
    the corresponding standalone driver.

    [~check:true] (default false) turns on the ordering oracle: the run
    is traced, the checkers that soundly apply to the composition are run
    over the trace (causal safety for the explicit-graph engines, FIFO
    per sender for FIFO/BSS, window or strict agreement per total layer,
    stable-point digests for OSend compositions), the intended dependency
    spec is linted, and the evidence is returned in [audit].

    The static verifier runs {e before} execution in every mode: the
    guarantee-lattice pass always, the causal-race lint when [~check] is
    on (it replays the full workload intent).  Under [~on_static:`Warn]
    (default) static issues are printed to stderr and fail [checks_ok];
    under [`Refuse] an ill-formed configuration is rejected up front —
    nothing is submitted, [refused] is set, and [checks_ok] is false.

    [?nemesis] arms a timed fault schedule (partitions, heals,
    loss/dup/jitter phases — {!Causalb_net.Nemesis}) on the stack before
    any operation is submitted; an action and a submission at the same
    virtual instant fire nemesis-first.  The run stays deterministic in
    (seed, workload, schedule). *)

(** {1 PC-broadcast under churn}

    The dynamic-membership path the fixed-membership stack cannot
    exercise: a [Causalb_core.Pcbcast.Group] over FIFO links, a nemesis
    schedule that may join/leave members mid-run ([Nemesis.Join]/
    [Nemesis.Leave]), operations submitted round-robin over whoever is
    alive at fire time, and the offline oracle over the extracted
    [R(M)]. *)

type pc_result = {
  pc_delivered : int;  (** causal deliveries summed over members ever *)
  pc_messages : int;
  pc_lost : int;
      (** partition + injected-loss drops — when non-zero the causal
          checker is disarmed (PC cannot detect a lost dependency;
          that is the price of constant-size headers) *)
  pc_departure_drops : int;
      (** copies to/from departed endpoints — harmless to survivors,
          so these do {e not} disarm the causal checker *)
  pc_joined : int list;  (** ids the nemesis added, in join order *)
  pc_left : int list;    (** ids the nemesis removed, in leave order *)
  pc_members : int;      (** members ever: founders + joiners *)
  pc_diagnostics : Causalb_check.Diag.t list;
      (** FIFO per origin over everyone, causal order over the founders
          (joiners legitimately miss pre-join history) *)
  pc_trace : Causalb_sim.Trace.t;
  pc_graph : Causalb_graph.Depgraph.t;
  pc_checks_ok : bool;  (** [pc_diagnostics = []] *)
  pc_sim_time : float;
}

val founders_view :
  Causalb_sim.Trace.t -> founders:int -> Causalb_sim.Trace.t
(** The trace restricted to nodes [< founders] — the view the causal
    pass audits under churn.  Joiners legitimately miss pre-join
    history (their causal past starts at the contact's adopt-first
    baseline), so the "ancestor delivered at this node first" demand
    only holds for founding members; a founder that later departs keeps
    a causally closed prefix and stays in the view. *)

val recheck_pc :
  replicas:int ->
  lost:int ->
  graph:Causalb_graph.Depgraph.t ->
  Causalb_sim.Trace.t ->
  Causalb_check.Diag.t list
(** The churn oracle as a pure function: FIFO over the whole trace
    (adopt-first baselines keep every joiner's per-origin sequence
    increasing), causal over {!founders_view} — and only when [lost = 0]
    partition/loss copies vanished (departure drops don't count; a
    departed member's in-flight copies are harmless to survivors).
    {!run_pc} applies exactly this to its own trace; [Campaign] replays
    it over mutated traces, so the planted-bug path cannot drift from
    the live gating. *)

val run_pc :
  ?seed:int ->
  ?latency:Causalb_sim.Latency.t ->
  ?nemesis:Causalb_net.Nemesis.t ->
  replicas:int ->
  workload ->
  pc_result
(** Deterministic in (seed, workload, schedule).  The nemesis callbacks
    keep shrunk schedules well-formed: a join through a departed contact
    re-routes to the oldest survivor; a leave of member 0, of an
    already-departed member, or one that would drop the group below two
    alive members is ignored. *)

(** {1 Spec-derived objects over the stable-point service}

    One replicated object — any machine obtained from a
    {!Causalb_data.Seq_spec} — run over {!Causalb_data.Service} with
    tracing on, then audited twice: online by [Service.check] (which
    includes canonical stable-digest agreement) and offline by the
    ordering oracle over the trace (causal safety against member 0's
    extracted graph, stable-point digest agreement across members from
    the [Mark] records). *)

type object_result = {
  checks : (string * bool) list;  (** [Service.check] verdicts *)
  diagnostics : Causalb_check.Diag.t list;
      (** offline oracle violations; empty = clean *)
  trace : Causalb_sim.Trace.t;
  cycles : int;        (** closed §6.1 cycles at member 0 *)
  stable_marks : int;  (** stable-point [Mark] records, all members *)
  messages : int;
  sim_time : float;
}

val object_ok : object_result -> bool
(** All online checks passed and the oracle found nothing. *)

val run_object :
  ?seed:int ->
  ?latency:Causalb_sim.Latency.t ->
  replicas:int ->
  machine:('op, 'state) Causalb_data.State_machine.t ->
  (float * int * 'op) list ->
  object_result
(** [run_object ~replicas ~machine submissions] schedules each
    [(time, src, op)] and runs to quiescence.  Deterministic in all
    arguments. *)

(** Deterministic object workloads — pure functions of their arguments —
    shared by the bench experiments (O1) and [causalb-check --objects]
    so both audit the very same runs. *)

val counter_pipeline :
  ?seed:int -> replicas:int -> rounds:int -> window:int -> unit ->
  (float * int * Causalb_data.Objects.Counter.op) list
(** Rounds of [window] concurrent additions closed by a [Value] read. *)

val cart_workload :
  ?seed:int -> replicas:int -> rounds:int -> window:int -> unit ->
  (float * int * Causalb_data.Objects.Or_set.op) list
(** The shopping cart on the observed-remove set: windows of concurrent
    adds closed by an observed-remove or a checkout read. *)

val editing_workload :
  ?seed:int -> replicas:int -> rounds:int -> window:int -> unit ->
  (float * int * Causalb_data.Objects.Rga.op) list
(** Collaborative editing on the RGA sequence: each author types after
    its own cursor (inserts and occasional deletes, all [Cid]), with a
    shared [Read] closing each round. *)

(** {1 Reporting helpers} *)

val p50 : Causalb_util.Stats.t -> float

val p95 : Causalb_util.Stats.t -> float

val fmt : float -> string
(** Two-decimal rendering, ["-"] for NaN. *)
