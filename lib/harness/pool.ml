(* Fork-based worker pool for the experiment harness.

   [run] shards a task list across [jobs] worker processes.  Sharding is
   static round-robin (worker [w] owns tasks [w], [w+jobs], ...), so the
   assignment is a pure function of the task list and the job count —
   reruns are reproducible and a dead worker's unfinished tasks are
   identifiable by name.  Each worker executes its tasks in list order,
   capturing stdout+stderr per task into a temp file, and streams one
   JSON object per finished task back over its pipe; the parent reorders
   results into task-list order, so aggregated output is byte-identical
   whatever the job count.

   Portability: plain [Unix.fork] + pipes + [select], nothing else — the
   same code runs on the 4.14 and 5.1 CI matrix (no domains, no threads,
   no new dependencies).  [jobs = 1] (the default) runs every task in the
   parent process with the same capture discipline, so sequential runs
   produce the same results records as parallel ones.

   Determinism: every task gets a seed derived from the sweep's base
   seed and the task's own name (FNV-1a), never from its position in a
   shard — so the seed a task sees is independent of the job count and
   of which other tasks run. *)

type task = { name : string; run : seed:int -> unit }

type status = Done | Failed of string

type result = {
  name : string;
  seed : int;
  status : status;
  wall_ms : float;
  gc_minor_words : float; (* minor-heap words allocated by the task *)
  gc_major_words : float; (* words promoted to / allocated on the major heap *)
  output : string;        (* captured stdout + stderr, interleaved *)
}

type report = {
  results : result list; (* one per task, in task-list order *)
  failures : string list; (* names of tasks that did not finish cleanly *)
  wall_ms : float;       (* whole-sweep wall clock *)
  jobs : int;
}

let task ~name run = { name; run }

(* The OCaml 5 runtime refuses [Unix.fork] for the rest of the process
   once any domain has been spawned — even after every domain is joined.
   [Dpool] flips this flag when it spawns workers, so a later [run
   ~jobs:n] degrades to the in-process path (same results, same bytes,
   no parallelism) instead of crashing the sweep. *)
let fork_unavailable = ref false

(* FNV-1a over the task name, folded into the base seed.  Stable across
   OCaml versions and process boundaries (pure int arithmetic on 63-bit
   words), unlike [Hashtbl.hash] which we must not depend on here. *)
let seed_for ~base name =
  (* 32-bit FNV-1a constants; arithmetic wraps identically on every
     64-bit OCaml, so the derived seed is stable across the CI matrix. *)
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193)
    name;
  (base lxor (!h land 0x3fffffff)) land 0x3fffffff

let ok r = match r.status with Done -> true | Failed _ -> false

(* --- JSON framing: one object per line on the worker pipe --- *)

module Json = Causalb_util.Json

let json_of_result (r : result) =
  Json.Obj
    [
      ("name", Json.Str r.name);
      ("seed", Json.Num (float_of_int r.seed));
      ("ok", Json.Bool (ok r));
      ( "error",
        match r.status with Done -> Json.Null | Failed m -> Json.Str m );
      ("wall_ms", Json.Num r.wall_ms);
      ("gc_minor_words", Json.Num r.gc_minor_words);
      ("gc_major_words", Json.Num r.gc_major_words);
      ("output", Json.Str r.output);
    ]

let result_of_json j =
  let field k = Json.member k j in
  let str k = match field k with Some v -> Json.get_string v | None -> "" in
  let num k = match field k with Some v -> Json.get_float v | None -> 0.0 in
  let status =
    match field "ok" with
    | Some (Json.Bool true) -> Done
    | _ -> Failed (match field "error" with
        | Some (Json.Str m) -> m
        | _ -> "unknown failure")
  in
  {
    name = str "name";
    seed = int_of_float (num "seed");
    status;
    wall_ms = num "wall_ms";
    gc_minor_words = num "gc_minor_words";
    gc_major_words = num "gc_major_words";
    output = str "output";
  }

(* --- stdout/stderr capture --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Run [f], with fds 1 and 2 redirected into one temp file for the
   duration; returns (outcome, captured bytes).  The dup/dup2 dance works
   identically in the forked worker and in the [jobs = 1] in-process
   path. *)
let with_capture f =
  let path = Filename.temp_file "causalb-pool" ".out" in
  let saved_out = Unix.dup Unix.stdout and saved_err = Unix.dup Unix.stderr in
  flush stdout;
  flush stderr;
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  Unix.dup2 fd Unix.stdout;
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  let restore () =
    flush stdout;
    flush stderr;
    Unix.dup2 saved_out Unix.stdout;
    Unix.dup2 saved_err Unix.stderr;
    Unix.close saved_out;
    Unix.close saved_err
  in
  let outcome =
    try
      f ();
      restore ();
      Done
    with e ->
      let msg = Printexc.to_string e in
      restore ();
      Failed msg
  in
  let out = read_file path in
  (try Sys.remove path with Sys_error _ -> ());
  (outcome, out)

let run_one ~base_seed (t : task) =
  let seed = seed_for ~base:base_seed t.name in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let status, output = with_capture (fun () -> t.run ~seed) in
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  {
    name = t.name;
    seed;
    status;
    wall_ms = (t1 -. t0) *. 1000.0;
    gc_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    gc_major_words = g1.Gc.major_words -. g0.Gc.major_words;
    output;
  }

(* --- the parallel path --- *)

(* Worker [w]'s slice of the task array, with global indices. *)
let shard ~jobs ~w tasks =
  let acc = ref [] in
  Array.iteri (fun i t -> if i mod jobs = w then acc := (i, t) :: !acc) tasks;
  List.rev !acc

let worker_main ~base_seed ~write_fd tasks =
  let oc = Unix.out_channel_of_descr write_fd in
  List.iter
    (fun (i, t) ->
      let r = run_one ~base_seed t in
      output_string oc
        (Printf.sprintf "%d %s\n" i (Json.to_string (json_of_result r)));
      flush oc)
    tasks;
  flush oc

type worker = {
  pid : int;
  fd : Unix.file_descr;
  mutable buf : Buffer.t;
  mutable eof : bool;
  assigned : (int * task) list;   (* global index, task *)
  mutable reported : int list;    (* global indices already streamed back *)
}

let parse_worker_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some sp ->
    let idx = int_of_string_opt (String.sub line 0 sp) in
    let body = String.sub line (sp + 1) (String.length line - sp - 1) in
    (match idx with
    | None -> None
    | Some i ->
      (try Some (i, result_of_json (Json.of_string body))
       with Json.Parse_error _ -> None))

let drain_lines w ~on_result =
  let data = Buffer.contents w.buf in
  let rec go start =
    match String.index_from_opt data start '\n' with
    | None ->
      Buffer.clear w.buf;
      Buffer.add_substring w.buf data start (String.length data - start)
    | Some nl ->
      (match parse_worker_line (String.sub data start (nl - start)) with
      | Some (i, r) ->
        w.reported <- i :: w.reported;
        on_result i r
      | None -> ());
      go (nl + 1)
  in
  go 0

let run_parallel ~jobs ~base_seed tasks =
  let n = Array.length tasks in
  let jobs = min jobs n in
  flush stdout;
  flush stderr;
  let workers =
    Array.init jobs (fun w ->
        let assigned = shard ~jobs ~w tasks in
        let read_fd, write_fd = Unix.pipe () in
        match Unix.fork () with
        | 0 ->
          (* child: own pipe end only; never return to the caller *)
          Unix.close read_fd;
          let code =
            try
              worker_main ~base_seed ~write_fd assigned;
              0
            with _ -> 125
          in
          (try Unix.close write_fd with Unix.Unix_error _ -> ());
          (* _exit: skip at_exit handlers inherited from the parent
             (alcotest, bechamel) and double-flushing shared buffers *)
          Unix._exit code
        | pid ->
          Unix.close write_fd;
          {
            pid;
            fd = read_fd;
            buf = Buffer.create 4096;
            eof = false;
            assigned;
            reported = [];
          })
  in
  let results = Array.make n None in
  let on_result i r = results.(i) <- Some r in
  let chunk = Bytes.create 65536 in
  let live () =
    Array.to_list workers
    |> List.filter_map (fun w -> if w.eof then None else Some w.fd)
  in
  let rec pump () =
    match live () with
    | [] -> ()
    | fds ->
      let ready, _, _ = Unix.select fds [] [] (-1.0) in
      List.iter
        (fun fd ->
          let w =
            Array.to_list workers |> List.find (fun w -> w.fd = fd)
          in
          let k = Unix.read fd chunk 0 (Bytes.length chunk) in
          if k = 0 then begin
            w.eof <- true;
            Unix.close fd
          end
          else Buffer.add_subbytes w.buf chunk 0 k;
          drain_lines w ~on_result)
        ready;
      pump ()
  in
  pump ();
  (* Reap workers; a worker that died before reporting all its tasks
     gets synthetic failure records naming the unfinished tasks. *)
  Array.iter
    (fun w ->
      let _, wstatus = Unix.waitpid [] w.pid in
      let describe =
        match wstatus with
        | Unix.WEXITED 0 -> None
        | Unix.WEXITED c -> Some (Printf.sprintf "worker exited with code %d" c)
        | Unix.WSIGNALED s -> Some (Printf.sprintf "worker killed by signal %d" s)
        | Unix.WSTOPPED s -> Some (Printf.sprintf "worker stopped by signal %d" s)
      in
      let missing =
        List.filter (fun (i, _) -> not (List.mem i w.reported)) w.assigned
      in
      match (describe, missing) with
      | None, [] -> ()
      | _ ->
        let why =
          Option.value describe
            ~default:"worker closed its pipe before finishing"
        in
        List.iteri
          (fun k (i, (t : task)) ->
            (* Quote the task name through the Json escaper, not [%S]:
               these strings land inside the JSON-line stream and the
               artifact, where a name containing a newline (the line
               delimiter) or raw UTF-8 must stay one valid JSON token.
               [%S] would also mangle non-ASCII bytes to decimal
               escapes; Json passes them through. *)
            let quoted = Json.to_string (Json.Str t.name) in
            let detail =
              if k = 0 then Printf.sprintf "%s while running %s" why quoted
              else Printf.sprintf "%s before %s started" why quoted
            in
            results.(i) <-
              Some
                {
                  name = t.name;
                  seed = seed_for ~base:base_seed t.name;
                  status = Failed detail;
                  wall_ms = 0.0;
                  gc_minor_words = 0.0;
                  gc_major_words = 0.0;
                  output = "";
                })
          missing)
    workers;
  Array.to_list results
  |> List.map (function
       | Some r -> r
       | None -> assert false (* every slot is filled above *))

let run ?(jobs = 1) ?(base_seed = 42) tasks =
  let t0 = Unix.gettimeofday () in
  let arr = Array.of_list tasks in
  let results =
    if jobs <= 1 || Array.length arr <= 1 || !fork_unavailable then
      List.map (run_one ~base_seed) tasks
    else run_parallel ~jobs ~base_seed arr
  in
  let failures =
    List.filter_map
      (fun r -> match r.status with Done -> None | Failed _ -> Some r.name)
      results
  in
  {
    results;
    failures;
    wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
    jobs = max 1 jobs;
  }
