(** Fork-based worker pool: the scale-out experiment runner.

    [run ~jobs tasks] shards the task list across [jobs] forked worker
    processes (static round-robin: worker [w] owns tasks [w], [w+jobs],
    …), captures each task's stdout+stderr, and streams one JSON result
    per finished task back over a pipe.  The parent reassembles results
    into task-list order, so the aggregated output of a parallel run is
    byte-identical to a sequential one — asserted in
    [test/test_pool.ml], not just observed.

    [jobs = 1] (the default) runs tasks in the calling process under the
    same capture discipline.  Implementation is plain
    [fork]/[pipe]/[select], portable across the 4.14/5.1 CI matrix with
    no new dependencies; it is not available on platforms without
    [Unix.fork] (Windows), where callers should stay at [jobs = 1]. *)

type task = { name : string; run : seed:int -> unit }

type status =
  | Done
  | Failed of string
      (** the exception the task raised, or — for tasks a dead worker
          never finished — which worker death interrupted them *)

type result = {
  name : string;
  seed : int;         (** the derived per-task seed the task was given *)
  status : status;
  wall_ms : float;
  gc_minor_words : float;
      (** minor-heap words the task allocated (worker-local [Gc] delta) *)
  gc_major_words : float;
  output : string;    (** captured stdout+stderr, interleaved *)
}

type report = {
  results : result list;  (** one per task, in task-list order *)
  failures : string list; (** names of tasks that did not finish cleanly *)
  wall_ms : float;        (** whole-sweep wall clock *)
  jobs : int;
}

val task : name:string -> (seed:int -> unit) -> task

val seed_for : base:int -> string -> int
(** The deterministic per-task seed: FNV-1a of the task name folded into
    the base seed.  A pure function of (base, name) — independent of job
    count, shard, and OCaml version — so a task sees the same seed
    however the sweep is parallelised. *)

val ok : result -> bool

val json_of_result : result -> Causalb_util.Json.t
(** The wire/artifact encoding of one result (the same object the
    workers stream over their pipes). *)

val result_of_json : Causalb_util.Json.t -> result

val fork_unavailable : bool ref
(** The OCaml 5 runtime refuses [Unix.fork] once any domain has ever
    been spawned, even after they are all joined.  {!Dpool} sets this
    when it spawns worker domains; with it set, [run ~jobs:n] executes
    in-process (identical results and bytes, no fork parallelism)
    rather than crashing.  Run fork sweeps before domains sweeps when a
    process needs both. *)

val run_one : base_seed:int -> task -> result
(** Execute a single task in the calling process under the fd-level
    capture discipline — the unit [run ~jobs:1] iterates, exported so
    the domains pool ({!Dpool}) can run its sequential (timing) tasks
    through the exact same capture path. *)

val run : ?jobs:int -> ?base_seed:int -> task list -> report
(** Execute every task; never raises on task failure — inspect
    [failures].  A worker that dies (signal, [exit], crash) yields
    [Failed] results naming the task it was running and the tasks it
    never started. *)
