module Engine = Causalb_sim.Engine

type action = Partition of int list list | Heal | Set_fault of Fault.t

type event = { at : float; action : action }

type t = event list

let lossy schedule =
  List.exists
    (fun e ->
      match e.action with
      | Partition _ -> true
      | Heal -> false
      | Set_fault f -> f.Fault.drop_prob > 0.0)
    schedule

let install ~engine ~partition ~heal ~set_fault schedule =
  let ordered =
    List.stable_sort (fun a b -> Float.compare a.at b.at) schedule
  in
  List.iter
    (fun e ->
      let run () =
        match e.action with
        | Partition cells -> partition cells
        | Heal -> heal ()
        | Set_fault f -> set_fault f
      in
      Engine.schedule_at engine ~time:(Float.max e.at (Engine.now engine)) run)
    ordered

let install_net net schedule =
  install ~engine:(Net.engine net)
    ~partition:(Net.partition net)
    ~heal:(fun () -> Net.heal net)
    ~set_fault:(Net.set_fault net)
    schedule

let pp_action ppf = function
  | Partition cells ->
    Format.fprintf ppf "partition [%s]"
      (String.concat " | "
         (List.map
            (fun cell -> String.concat " " (List.map string_of_int cell))
            cells))
  | Heal -> Format.pp_print_string ppf "heal"
  | Set_fault f ->
    if f = Fault.none then Format.pp_print_string ppf "faults(none)"
    else Fault.pp ppf f

let pp ppf schedule =
  if schedule = [] then Format.pp_print_string ppf "quiet"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
      (fun ppf e -> Format.fprintf ppf "@@%.1f %a" e.at pp_action e.action)
      ppf schedule

let to_string schedule = Format.asprintf "%a" pp schedule
