module Engine = Causalb_sim.Engine

type action =
  | Partition of int list list
  | Heal
  | Set_fault of Fault.t
  | Join of { contact : int }
  | Leave of int

type event = { at : float; action : action }

type t = event list

let lossy schedule =
  List.exists
    (fun e ->
      match e.action with
      | Partition _ -> true
      | Heal -> false
      | Set_fault f -> f.Fault.drop_prob > 0.0
      (* A leave drops every copy still in flight to the departed
         endpoint; a join by itself removes nothing from the wire. *)
      | Join _ -> false
      | Leave _ -> true)
    schedule

let has_churn schedule =
  List.exists
    (fun e -> match e.action with Join _ | Leave _ -> true | _ -> false)
    schedule

let install ~engine ~partition ~heal ~set_fault ?join ?leave schedule =
  (match (join, leave) with
  | Some _, Some _ -> ()
  | _ when has_churn schedule ->
    invalid_arg
      "Nemesis.install: schedule has join/leave actions but no churn \
       callbacks — this target has fixed membership"
  | _ -> ());
  let ordered =
    List.stable_sort (fun a b -> Float.compare a.at b.at) schedule
  in
  List.iter
    (fun e ->
      let run () =
        match e.action with
        | Partition cells -> partition cells
        | Heal -> heal ()
        | Set_fault f -> set_fault f
        | Join { contact } -> (
          match join with Some j -> j ~contact | None -> ())
        | Leave node -> ( match leave with Some l -> l node | None -> ())
      in
      Engine.schedule_at engine ~time:(Float.max e.at (Engine.now engine)) run)
    ordered

let install_net net schedule =
  install ~engine:(Net.engine net)
    ~partition:(Net.partition net)
    ~heal:(fun () -> Net.heal net)
    ~set_fault:(Net.set_fault net)
    schedule

let pp_action ppf = function
  | Partition cells ->
    Format.fprintf ppf "partition [%s]"
      (String.concat " | "
         (List.map
            (fun cell -> String.concat " " (List.map string_of_int cell))
            cells))
  | Heal -> Format.pp_print_string ppf "heal"
  | Set_fault f ->
    if f = Fault.none then Format.pp_print_string ppf "faults(none)"
    else Fault.pp ppf f
  | Join { contact } -> Format.fprintf ppf "join(contact=%d)" contact
  | Leave node -> Format.fprintf ppf "leave(%d)" node

let pp ppf schedule =
  if schedule = [] then Format.pp_print_string ppf "quiet"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
      (fun ppf e -> Format.fprintf ppf "@@%.1f %a" e.at pp_action e.action)
      ppf schedule

let to_string schedule = Format.asprintf "%a" pp schedule
