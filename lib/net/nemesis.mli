(** Timed fault schedules — the nemesis of a randomized campaign.

    A schedule is a list of (virtual time, action) events: install a
    partition, heal it, or swap the injected-fault profile
    (loss/duplication/jitter).  {!install} arms every event on the
    engine up front, so the same schedule replayed on the same seed
    perturbs the run identically — the property the campaign shrinker
    relies on when it re-runs candidate repros.

    The module deliberately knows nothing about workloads or engines:
    campaign generation lives in [Causalb_harness.Campaign]; this is the
    net-layer hook it arms. *)

type action =
  | Partition of int list list
      (** install these cells (see {!Net.partition}; unlisted nodes
          become singletons) *)
  | Heal  (** remove any partition *)
  | Set_fault of Fault.t
      (** replace the injected-fault profile; [Fault.none] ends a
          loss/dup/jitter phase *)

type event = { at : float;  (** virtual ms *) action : action }

type t = event list
(** Events fire in list order when times are equal; [install] sorts by
    time (stable), so a well-formed schedule is non-decreasing in
    [at]. *)

val lossy : t -> bool
(** Whether the schedule can remove copies from the wire: it contains a
    [Partition] or a [Set_fault] with positive [drop_prob].  Lossless
    schedules (dup/jitter only) keep completeness properties checkable;
    lossy ones restrict the oracle to safety. *)

val install :
  engine:Causalb_sim.Engine.t ->
  partition:(int list list -> unit) ->
  heal:(unit -> unit) ->
  set_fault:(Fault.t -> unit) ->
  t ->
  unit
(** Arm every event on the engine ([Engine.schedule_at], so times before
    [now] are clamped forward by the engine).  The closures decouple the
    schedule from what it drives — a raw {!Net.t}, a stack composition,
    or anything else exposing the three operations. *)

val install_net : 'a Net.t -> t -> unit
(** [install] specialised to a raw network. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** One-line rendering, e.g.
    ["@3.0 partition [0 1 | 2 3]; @9.0 heal; @12.0 faults(drop=0.10,...)"].
    Deterministic — shrink logs and JSON reports embed it. *)
