(** Timed fault schedules — the nemesis of a randomized campaign.

    A schedule is a list of (virtual time, action) events: install a
    partition, heal it, or swap the injected-fault profile
    (loss/duplication/jitter).  {!install} arms every event on the
    engine up front, so the same schedule replayed on the same seed
    perturbs the run identically — the property the campaign shrinker
    relies on when it re-runs candidate repros.

    The module deliberately knows nothing about workloads or engines:
    campaign generation lives in [Causalb_harness.Campaign]; this is the
    net-layer hook it arms. *)

type action =
  | Partition of int list list
      (** install these cells (see {!Net.partition}; unlisted nodes
          become singletons) *)
  | Heal  (** remove any partition *)
  | Set_fault of Fault.t
      (** replace the injected-fault profile; [Fault.none] ends a
          loss/dup/jitter phase *)
  | Join of { contact : int }
      (** a fresh member joins through [contact] — the churn nemesis of
          the PC-broadcast campaigns.  Only meaningful on targets with
          dynamic membership; {!install} requires churn callbacks when
          the schedule contains one *)
  | Leave of int
      (** member [node] departs permanently (see {!Net.remove_node}).
          Drivers are expected to ignore a leave that would empty the
          group or target an already-departed node, so shrunk schedules
          stay well-formed *)

type event = { at : float;  (** virtual ms *) action : action }

type t = event list
(** Events fire in list order when times are equal; [install] sorts by
    time (stable), so a well-formed schedule is non-decreasing in
    [at]. *)

val lossy : t -> bool
(** Whether the schedule can remove copies from the wire: it contains a
    [Partition], a [Leave] (in-flight copies to the departed endpoint
    drop), or a [Set_fault] with positive [drop_prob].  Lossless
    schedules (dup/jitter only) keep completeness properties checkable;
    lossy ones restrict the oracle to safety. *)

val has_churn : t -> bool
(** Whether the schedule contains any [Join] or [Leave] event. *)

val install :
  engine:Causalb_sim.Engine.t ->
  partition:(int list list -> unit) ->
  heal:(unit -> unit) ->
  set_fault:(Fault.t -> unit) ->
  ?join:(contact:int -> unit) ->
  ?leave:(int -> unit) ->
  t ->
  unit
(** Arm every event on the engine ([Engine.schedule_at], so times before
    [now] are clamped forward by the engine).  The closures decouple the
    schedule from what it drives — a raw {!Net.t}, a stack composition,
    or anything else exposing the operations.  [join]/[leave] arm the
    churn actions; both must be supplied when the schedule
    {!has_churn}.
    @raise Invalid_argument on a churn schedule without churn
    callbacks — silently skipping membership events would turn a churn
    repro into a quiet run. *)

val install_net : 'a Net.t -> t -> unit
(** [install] specialised to a raw network. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** One-line rendering, e.g.
    ["@3.0 partition [0 1 | 2 3]; @9.0 heal; @12.0 faults(drop=0.10,...)"].
    Deterministic — shrink logs and JSON reports embed it. *)
