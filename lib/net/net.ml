module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Trace = Causalb_sim.Trace
module Rng = Causalb_util.Rng

(* An in-flight copy.  Packets are recycled through a free list so a
   broadcast fan-out allocates no fresh delivery closure per copy: the
   [fire] thunk is built once when the packet is first created and
   captures the packet itself, whose mutable fields are re-filled on
   every reuse.  A packet returns to the pool (payload cleared, so the
   pool never retains application data) before its delivery handler
   runs, making reuse safe under reentrant sends. *)
type 'a packet = {
  mutable psrc : int;
  mutable pdst : int;
  mutable ppayload : 'a option;
  mutable fire : unit -> unit;
}

type 'a t = {
  engine : Engine.t;
  mutable n : int; (* logical node count; arrays may have spare capacity *)
  latency : Latency.t;
  fifo : bool;
  rng : Rng.t;
  trace : Trace.t option;
  mutable handlers : (src:int -> 'a -> unit) option array;
  mutable last_arrival : float array array; (* last_arrival.(src).(dst) *)
  mutable departed : bool array;
      (* endpoints removed by [remove_node]: copies to or from them drop,
         and no membership change — [partition]/[heal] included — ever
         brings them back *)
  mutable fault : Fault.t;
  mutable cell_of : int array option; (* partition cell per node *)
  mutable next_cell : int; (* fresh singleton cell ids for added nodes *)
  mutable sent : int;
  mutable delivered : int;
  (* One counter per drop cause, so campaign reports can attribute loss:
     [messages_dropped] is their sum. *)
  mutable dropped_partition : int;
  mutable dropped_loss : int;
  mutable dropped_no_handler : int;
  mutable dropped_departed : int;
  mutable bytes : int;
  mutable in_flight : int;
  mutable pool : 'a packet array; (* free packets in [0, pool_len) *)
  mutable pool_len : int;
}

let create engine ~nodes ?(latency = Latency.lan) ?(fifo = true)
    ?(fault = Fault.none) ?trace () =
  if nodes <= 0 then invalid_arg "Net.create: nodes must be positive";
  {
    engine;
    n = nodes;
    latency;
    fifo;
    rng = Engine.fork_rng engine;
    trace;
    handlers = Array.make nodes None;
    last_arrival = Array.make_matrix nodes nodes 0.0;
    departed = Array.make nodes false;
    fault;
    cell_of = None;
    next_cell = 0;
    sent = 0;
    delivered = 0;
    dropped_partition = 0;
    dropped_loss = 0;
    dropped_no_handler = 0;
    dropped_departed = 0;
    bytes = 0;
    in_flight = 0;
    pool = [||];
    pool_len = 0;
  }

let engine t = t.engine

let nodes t = t.n

let check_node t who i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Net.%s: node %d out of range" who i)

let set_handler t node f =
  check_node t "set_handler" node;
  t.handlers.(node) <- Some f

(* Tracing is off on the hot benchmarking paths, so info strings must
   never be built eagerly: call sites guard [record] behind [tracing] and
   only then pay the [Printf.sprintf]. *)
let tracing t = t.trace <> None

let record t ~node ~kind ~tag ~info =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.record tr ~time:(Engine.now t.engine) ~node ~kind ~tag ~info ()

(* Dynamic endpoint registration.  Per-node arrays grow geometrically;
   the FIFO floor matrix starts new links at 0.0, which is always ≤ now,
   so a fresh link's first copy is never artificially delayed. *)
let add_node t =
  let id = t.n in
  let cap = Array.length t.handlers in
  if id >= cap then begin
    let cap' = max 8 (2 * cap) in
    let handlers = Array.make cap' None in
    Array.blit t.handlers 0 handlers 0 t.n;
    t.handlers <- handlers;
    let departed = Array.make cap' false in
    Array.blit t.departed 0 departed 0 t.n;
    t.departed <- departed;
    let last = Array.make_matrix cap' cap' 0.0 in
    Array.iteri
      (fun src row -> if src < t.n then Array.blit row 0 last.(src) 0 t.n)
      t.last_arrival;
    t.last_arrival <- last;
    (match t.cell_of with
    | None -> ()
    | Some cells ->
      let cells' = Array.make cap' (-1) in
      Array.blit cells 0 cells' 0 t.n;
      t.cell_of <- Some cells')
  end;
  (match t.cell_of with
  | None -> ()
  | Some cells ->
    (* A node joining under an active partition lands in its own
       singleton cell — it sees nobody until the next heal. *)
    cells.(id) <- t.next_cell;
    t.next_cell <- t.next_cell + 1);
  t.n <- t.n + 1;
  if tracing t then
    record t ~node:id ~kind:Trace.Mark ~tag:"join" ~info:"net:add_node";
  id

let remove_node t node =
  check_node t "remove_node" node;
  t.departed.(node) <- true;
  if tracing t then
    record t ~node ~kind:Trace.Mark ~tag:"leave" ~info:"net:remove_node"

let is_departed t node =
  check_node t "is_departed" node;
  t.departed.(node)

let reachable t src dst =
  match t.cell_of with
  | None -> true
  | Some cells -> cells.(src) = cells.(dst)

let deliver t ~src ~dst payload =
  t.in_flight <- t.in_flight - 1;
  (* A copy can be in flight when its destination departs; it arrives at
     a dead endpoint and drops.  Checked before the handler lookup so a
     departed node's (still installed) handler is never re-entered. *)
  if t.departed.(dst) then begin
    t.dropped_departed <- t.dropped_departed + 1;
    if tracing t then
      record t ~node:dst ~kind:Trace.Drop ~tag:""
        ~info:(Printf.sprintf "departed from=%d" src)
  end
  else
    match t.handlers.(dst) with
    | Some f ->
      t.delivered <- t.delivered + 1;
      if tracing t then
        record t ~node:dst ~kind:Trace.Receive ~tag:""
          ~info:(Printf.sprintf "from=%d" src);
      f ~src payload
    | None -> t.dropped_no_handler <- t.dropped_no_handler + 1

let release_packet t p =
  if t.pool_len = Array.length t.pool then begin
    let cap = max 8 (2 * Array.length t.pool) in
    let pool = Array.make cap p in
    Array.blit t.pool 0 pool 0 t.pool_len;
    t.pool <- pool
  end;
  t.pool.(t.pool_len) <- p;
  t.pool_len <- t.pool_len + 1

let fire_packet t p =
  let src = p.psrc and dst = p.pdst in
  let payload =
    match p.ppayload with Some x -> x | None -> assert false
  in
  p.ppayload <- None;
  (* back on the free list before the handler runs: a handler that sends
     again may reuse this very packet *)
  release_packet t p;
  deliver t ~src ~dst payload

let acquire_packet t ~src ~dst payload =
  let p =
    if t.pool_len > 0 then begin
      t.pool_len <- t.pool_len - 1;
      t.pool.(t.pool_len)
    end
    else begin
      let p = { psrc = 0; pdst = 0; ppayload = None; fire = ignore } in
      p.fire <- (fun () -> fire_packet t p);
      p
    end
  in
  p.psrc <- src;
  p.pdst <- dst;
  p.ppayload <- Some payload;
  p

let schedule_copy t ~src ~dst payload =
  let base = Latency.sample t.rng t.latency in
  let jitter =
    if t.fault.Fault.jitter > 0.0 then Rng.float t.rng t.fault.Fault.jitter
    else 0.0
  in
  let now = Engine.now t.engine in
  let arrival = now +. base +. jitter in
  let arrival =
    if t.fifo then begin
      (* Per-link FIFO: never schedule an arrival before the previous one
         on the same link. *)
      let floor = t.last_arrival.(src).(dst) in
      let a = Float.max arrival floor in
      t.last_arrival.(src).(dst) <- a;
      a
    end
    else arrival
  in
  t.in_flight <- t.in_flight + 1;
  let p = acquire_packet t ~src ~dst payload in
  Engine.schedule_at t.engine ~time:arrival p.fire

let send_copy t ~src ~dst ~size payload =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  (* Departure wins over every other fate, and [reachable] never sees
     departed endpoints — so a heal (which only clears partition cells)
     cannot resurrect a removed node. *)
  if t.departed.(src) || t.departed.(dst) then begin
    t.dropped_departed <- t.dropped_departed + 1;
    if tracing t then
      record t ~node:src ~kind:Trace.Drop ~tag:""
        ~info:(Printf.sprintf "departed dst=%d" dst)
  end
  else if not (reachable t src dst) then begin
    t.dropped_partition <- t.dropped_partition + 1;
    if tracing t then
      record t ~node:src ~kind:Trace.Drop ~tag:""
        ~info:(Printf.sprintf "partition dst=%d" dst)
  end
  else if Rng.bernoulli t.rng t.fault.Fault.drop_prob then begin
    t.dropped_loss <- t.dropped_loss + 1;
    if tracing t then
      record t ~node:src ~kind:Trace.Drop ~tag:""
        ~info:(Printf.sprintf "loss dst=%d" dst)
  end
  else begin
    schedule_copy t ~src ~dst payload;
    if Rng.bernoulli t.rng t.fault.Fault.dup_prob then
      schedule_copy t ~src ~dst payload
  end

let send t ~src ~dst ?(size = 1) payload =
  check_node t "send" src;
  check_node t "send" dst;
  if tracing t then
    record t ~node:src ~kind:Trace.Send ~tag:""
      ~info:(Printf.sprintf "dst=%d" dst);
  send_copy t ~src ~dst ~size payload

let broadcast t ~src ?(self = true) ?(size = 1) payload =
  check_node t "broadcast" src;
  if tracing t then record t ~node:src ~kind:Trace.Send ~tag:"" ~info:"bcast";
  (* Membership-aware fan-out: departed endpoints are not addressed at
     all (no copy, no byte charge) — a real group would have removed
     them from its view.  Point-to-point [send] to one still counts a
     departed drop; that asymmetry is deliberate. *)
  for dst = 0 to t.n - 1 do
    if dst <> src && not t.departed.(dst) then
      send_copy t ~src ~dst ~size payload
  done;
  if self && not t.departed.(src) then begin
    t.sent <- t.sent + 1;
    (* The self copy travels the same wire accounting as a remote copy:
       without the charge, bytes_per_delivery under-reports exactly 1/n
       of the fan-out (the PR 8 wire-metric skew). *)
    t.bytes <- t.bytes + size;
    t.in_flight <- t.in_flight + 1;
    (* Local copy: processed at the same virtual instant, after the
       current callback returns. *)
    let p = acquire_packet t ~src ~dst:src payload in
    Engine.schedule t.engine ~delay:0.0 p.fire
  end

(* Batched fan-out entry point for pre-encoded frames: [payload] is one
   immutable value (typically a [Causalb_util.Wire.frame] or a framed
   record wrapping one) enqueued to every recipient — the fan-out shares
   the pointer, never re-serializes, and reuses pooled packets.  The copy
   loop is [broadcast]'s own, so the RNG draw sequence (drop/latency/
   jitter/dup per copy) is identical to an unframed broadcast of the same
   shape — the property the framed-vs-plain same-seed equivalence tests
   rely on.  [size] is mandatory: the frame's wire length, charged to the
   byte accounting once per copy. *)
let bcast t ~src ?self ~size payload = broadcast t ~src ?self ~size payload

let set_fault t fault = t.fault <- fault

let partition t cells =
  (* Capacity-sized so nodes added mid-partition index safely. *)
  let cell_of = Array.make (Array.length t.handlers) (-1) in
  List.iteri
    (fun idx cell ->
      List.iter
        (fun node ->
          check_node t "partition" node;
          if cell_of.(node) <> -1 then
            invalid_arg
              (Printf.sprintf
                 "Net.partition: node %d listed in more than one cell" node);
          cell_of.(node) <- idx)
        cell)
    cells;
  (* Unlisted nodes become singletons with unique negative-free ids. *)
  let next = ref (List.length cells) in
  for node = 0 to t.n - 1 do
    if cell_of.(node) = -1 then begin
      cell_of.(node) <- !next;
      incr next
    end
  done;
  t.next_cell <- !next;
  t.cell_of <- Some cell_of

let heal t = t.cell_of <- None

let messages_sent t = t.sent

let messages_delivered t = t.delivered

let messages_dropped t =
  t.dropped_partition + t.dropped_loss + t.dropped_no_handler
  + t.dropped_departed

let dropped_by_partition t = t.dropped_partition

let dropped_by_loss t = t.dropped_loss

let dropped_no_handler t = t.dropped_no_handler

let dropped_by_departure t = t.dropped_departed

let lost_copies t =
  t.dropped_partition + t.dropped_loss + t.dropped_departed

let bytes_sent t = t.bytes

let in_flight t = t.in_flight
