(** Simulated message network over a discrete-event engine.

    Nodes are numbered [0 .. nodes-1].  Each unicast copy draws an
    independent delay from the latency model; a broadcast is realised as
    [n] unicasts (plus an immediate self-delivery when [self] is set), so
    different members receive the same broadcast at different times and
    possibly in different relative orders — the reordering the causal
    layer must repair.

    [fifo] mode forces per-link FIFO (arrival times on one (src,dst) link
    are non-decreasing), matching the channel guarantees of ISIS/Psync;
    non-FIFO mode exposes raw datagram behaviour.  Fault injection and
    partitions apply before scheduling a copy. *)

type 'a t

val create :
  Causalb_sim.Engine.t ->
  nodes:int ->
  ?latency:Causalb_sim.Latency.t ->
  ?fifo:bool ->
  ?fault:Fault.t ->
  ?trace:Causalb_sim.Trace.t ->
  unit ->
  'a t
(** Defaults: [latency = Latency.lan], [fifo = true], no faults, no trace.
    @raise Invalid_argument if [nodes <= 0]. *)

val engine : 'a t -> Causalb_sim.Engine.t

val nodes : 'a t -> int

val set_handler : 'a t -> int -> (src:int -> 'a -> unit) -> unit
(** Install the receive callback for a node (replacing any previous one).
    Messages arriving at a node with no handler are counted as dropped. *)

(** {1 Dynamic membership}

    Endpoints can be registered and retired while the simulation runs —
    the substrate for PC-broadcast's join/leave protocol.  Node ids are
    never reused: a removed endpoint's id stays dead forever. *)

val add_node : 'a t -> int
(** Register a fresh endpoint and return its id ([nodes t] before the
    call; {!nodes} grows by one).  The new node has no handler until
    {!set_handler}; under an active {!partition} it joins as a singleton
    cell and sees nobody until the next {!heal}. *)

val remove_node : 'a t -> int -> unit
(** Retire an endpoint.  From this instant every copy addressed to it or
    sent by it is dropped (counted in {!dropped_by_departure}), including
    copies already in flight.  Departure is permanent: neither {!heal}
    nor a new {!partition} brings the endpoint back, and {!broadcast}
    stops addressing it entirely.  Idempotent. *)

val is_departed : 'a t -> int -> bool

val send : 'a t -> src:int -> dst:int -> ?size:int -> 'a -> unit
(** Unicast.  [size] (abstract bytes, default 1) feeds the traffic
    accounting only. *)

val broadcast : 'a t -> src:int -> ?self:bool -> ?size:int -> 'a -> unit
(** One copy to every node; [self] (default [true]) also delivers to the
    sender — immediately, matching local processing of one's own
    message.  The self copy counts in {!messages_sent} {e and}
    {!bytes_sent}, exactly like a remote copy. *)

val bcast : 'a t -> src:int -> ?self:bool -> size:int -> 'a -> unit
(** Batched fan-out for pre-encoded frames: the same copy loop as
    {!broadcast} (identical per-copy RNG draw order, pooled packets, one
    shared payload pointer for all recipients), but [size] is mandatory —
    callers pass the frame's encoded length so {!bytes_sent} counts real
    wire bytes instead of the abstract default.  Serialize once with
    [Causalb_util.Wire], then hand the frame here; recipients decode a
    shared view ([Causalb_core.Codec.view]) rather than re-allocating
    stamps per copy. *)

val set_fault : 'a t -> Fault.t -> unit

val partition : 'a t -> int list list -> unit
(** Installs a partition: messages between nodes in different cells are
    dropped.  Nodes absent from every cell form implicit singletons.
    @raise Invalid_argument if a node is listed in more than one cell
    (including twice in the same cell) — silently letting the last cell
    win would make a mis-specified nemesis schedule unreproducible. *)

val heal : 'a t -> unit
(** Removes any partition. *)

val messages_sent : 'a t -> int
(** Unicast copies handed to the transport (a broadcast counts [n]). *)

val messages_delivered : 'a t -> int

val messages_dropped : 'a t -> int
(** All copies that never reached a handler — the sum of the four
    per-cause counters below. *)

val dropped_by_partition : 'a t -> int
(** Copies dropped because source and destination were in different
    partition cells at send time. *)

val dropped_by_loss : 'a t -> int
(** Copies removed by injected loss ({!Fault.t}[.drop_prob]). *)

val dropped_no_handler : 'a t -> int
(** Copies that arrived at a node with no handler installed. *)

val dropped_by_departure : 'a t -> int
(** Copies dropped because one end had been removed with {!remove_node}.
    Kept separate from partition/loss drops: departure drops do not
    threaten the safety of the surviving members (nothing a survivor
    delivers depended on a copy addressed to a dead endpoint arriving),
    so the causal oracle stays armed under pure churn while
    completeness checks still see the loss. *)

val lost_copies : 'a t -> int
(** Copies that left the wire before arrival: partition + injected loss
    + departure.  [0] means every scheduled copy arrived somewhere, so
    completeness properties (same-set delivery, release agreement) are
    checkable; no-handler drops are excluded — the copy did arrive. *)

val bytes_sent : 'a t -> int

val in_flight : 'a t -> int
(** Copies scheduled but not yet handed to a receiver — the transport
    layer's buffered gauge in the ordering stack. *)
