module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Group = Causalb_core.Group
module Osend = Causalb_core.Osend
module Checker = Causalb_core.Checker
module Message = Causalb_core.Message
module Dep = Causalb_graph.Dep
module Label = Causalb_graph.Label
module Stats = Causalb_util.Stats
module Rng = Causalb_util.Rng
module Card_table = Causalb_data.Datatypes.Card_table

type mode = Strict_turns | Relaxed of (round:int -> player:int -> int)

type play = { round : int; player : int; card : string }

type member_view = {
  mid : int;
  mutable table : Card_table.state;
  cards_seen : (int, (int * Label.t) list) Hashtbl.t; (* round -> plays *)
  mutable rounds_closed : int;
}

type t = {
  engine : Engine.t;
  group : play Group.t;
  players : int;
  mode : mode;
  think : Latency.t;
  think_rng : Rng.t;
  card_rng : Rng.t;
  views : member_view array;
  mutable total_rounds : int;
  round_start : (int, float) Hashtbl.t;
  round_complete_count : (int, int) Hashtbl.t;
  mutable completed : int;
  round_durations : Stats.t;
}

let dependency t ~round ~player =
  if player = 0 then None
  else
    match t.mode with
    | Strict_turns -> Some (player - 1)
    | Relaxed dep ->
      let k = dep ~round ~player in
      if k < 0 || k >= player then
        invalid_arg
          (Printf.sprintf
             "Card_game: dependency %d for player %d must be in [0,%d]" k
             player (player - 1))
      else Some k

let deal_card t =
  let suits = [| "S"; "H"; "D"; "C" |] in
  let rank = 2 + Rng.int t.card_rng 13 in
  Printf.sprintf "%s%d" (Rng.pick t.card_rng suits) rank

let static_schedule ~players ~rounds =
  if players <= 0 then invalid_arg "Card_game.static_schedule: players <= 0";
  (* Group.osend assigns per-origin sequence numbers; player [p] sends
     exactly one card per round, so the runtime label of card (r,p) is
     (origin=p, seq=r) — the schedule reproduces it exactly, display name
     included.  The card itself is drawn at play time and irrelevant to
     the class structure, so a placeholder stands in. *)
  let label ~round ~player =
    Label.make
      ~name:(Printf.sprintf "card.%d.%d" round player)
      ~origin:player ~seq:round ()
  in
  List.concat
    (List.init rounds (fun r ->
         List.init players (fun p ->
             let dep =
               if p > 0 then Dep.after (label ~round:r ~player:(p - 1))
               else if r = 0 then Dep.null
               else
                 Dep.after_all
                   (List.init players (fun q -> label ~round:(r - 1) ~player:q))
             in
             (label ~round:r ~player:p, dep, p, Card_table.Play (p, "S2")))))

let play_card t ~player ~round ~dep =
  if not (Hashtbl.mem t.round_start round) then
    Hashtbl.replace t.round_start round (Engine.now t.engine);
  let card = deal_card t in
  let name = Printf.sprintf "card.%d.%d" round player in
  ignore (Group.osend t.group ~src:player ~name ~dep { round; player; card })

(* A player acts when its dependency card shows up in its own window
   (its delivery stream): think, then play. *)
let maybe_act t view ~round ~played_by ~label =
  for player = 0 to t.players - 1 do
    if player = view.mid then begin
      match dependency t ~round ~player with
      | Some k when k = played_by ->
        let delay = Latency.sample t.think_rng t.think in
        Engine.schedule t.engine ~delay (fun () ->
            play_card t ~player ~round ~dep:(Dep.after label))
      | Some _ | None -> ()
    end
  done

let open_next_round t view ~completed_round =
  let next = completed_round + 1 in
  if next < t.total_rounds && view.mid = 0 then begin
    (* The opener's card waits for every card of the finished round. *)
    let labels = List.map snd (Hashtbl.find view.cards_seen completed_round) in
    let delay = Latency.sample t.think_rng t.think in
    Engine.schedule t.engine ~delay (fun () ->
        play_card t ~player:0 ~round:next ~dep:(Dep.after_all labels))
  end

let round_completed_at t view ~round =
  view.table <-
    Card_table.machine.Causalb_data.State_machine.apply view.table
      Card_table.Round_end;
  view.rounds_closed <- view.rounds_closed + 1;
  let seen =
    1 + Option.value ~default:0 (Hashtbl.find_opt t.round_complete_count round)
  in
  Hashtbl.replace t.round_complete_count round seen;
  if seen = t.players then begin
    t.completed <- t.completed + 1;
    match Hashtbl.find_opt t.round_start round with
    | Some t0 -> Stats.add t.round_durations (Engine.now t.engine -. t0)
    | None -> ()
  end;
  open_next_round t view ~completed_round:round

let on_deliver t ~node ~time:_ msg =
  let view = t.views.(node) in
  let { round; player; card } = Message.payload msg in
  let label = Message.label msg in
  view.table <-
    Card_table.machine.Causalb_data.State_machine.apply view.table
      (Card_table.Play (player, card));
  let prev =
    Option.value ~default:[] (Hashtbl.find_opt view.cards_seen round)
  in
  Hashtbl.replace view.cards_seen round ((player, label) :: prev);
  maybe_act t view ~round ~played_by:player ~label;
  if List.length prev + 1 = t.players then round_completed_at t view ~round

let create engine ~players ~mode ?(latency = Latency.lan)
    ?(think = Latency.exponential ~mean:2.0 ()) () =
  if players <= 0 then invalid_arg "Card_game.create: players <= 0";
  let net = Net.create engine ~nodes:players ~latency () in
  let views =
    Array.init players (fun mid ->
        {
          mid;
          table = Card_table.machine.Causalb_data.State_machine.init;
          cards_seen = Hashtbl.create 16;
          rounds_closed = 0;
        })
  in
  let t_ref = ref None in
  let group =
    Group.create net
      ~on_deliver:(fun ~node ~time msg ->
        match !t_ref with
        | Some t -> on_deliver t ~node ~time msg
        | None -> assert false)
      ()
  in
  let t =
    {
      engine;
      group;
      players;
      mode;
      think;
      think_rng = Engine.fork_rng engine;
      card_rng = Engine.fork_rng engine;
      views;
      total_rounds = 0;
      round_start = Hashtbl.create 16;
      round_complete_count = Hashtbl.create 16;
      completed = 0;
      round_durations = Stats.create ();
    }
  in
  t_ref := Some t;
  t

let start t ~rounds =
  if rounds <= 0 then invalid_arg "Card_game.start: rounds <= 0";
  t.total_rounds <- rounds;
  play_card t ~player:0 ~round:0 ~dep:Dep.null

let rounds_completed t = t.completed

let round_durations t = t.round_durations

let check_causal_order t =
  Array.for_all
    (fun view ->
      let member = Group.member t.group view.mid in
      Checker.causal_safety (Osend.graph member) (Osend.delivered_order member))
    t.views

let check_tables_agree t =
  match Array.to_list t.views with
  | [] -> true
  | first :: rest ->
    let finished v = v.table.Card_table.finished in
    List.for_all (fun v -> finished v = finished first) rest

let messages_sent t = Net.messages_sent (Group.net t.group)
