(** Multiplayer card game with relaxed causal turn order (paper §5.1).

    [r] players share a table in a window system and play in rounds.  In
    the paper's scenario the [l]-th player's action does not depend on the
    immediately preceding player but on some earlier player [k < l−1]:
    [card_k → card_l] with [‖{card_l, card_j}] for the players in
    between — a weaker ordering that lets several players think and play
    concurrently.

    Two modes:
    {ul
    {- [Strict_turns]: player [l] waits for player [l−1] — the fully
       serial baseline;}
    {- [Relaxed dep]: player [l] waits for player [dep ~round ~player:l]
       (must be [< l]; player 0 opens the round).}}

    The round opener's card [Occurs_After] every card of the previous
    round (the AND-dependency of relation (3)), so rounds are causal
    activities and the table contents at each round boundary is a stable
    point.  Each member maintains a {!Causalb_data.Datatypes.Card_table}
    replica; since plays commute, per-round tables agree at every member
    even though delivery orders differ — checked by
    {!check_tables_agree}. *)

type mode =
  | Strict_turns
  | Relaxed of (round:int -> player:int -> int)
      (** dependency player for each non-opener; must be in [\[0, l-1\]] *)

type t

val create :
  Causalb_sim.Engine.t ->
  players:int ->
  mode:mode ->
  ?latency:Causalb_sim.Latency.t ->
  ?think:Causalb_sim.Latency.t ->
  unit ->
  t
(** [think] (default exponential, mean 2 ms) samples the delay between a
    player seeing its dependency card and playing its own.
    @raise Invalid_argument if [players <= 0]. *)

val start : t -> rounds:int -> unit
(** Opens round 0; later rounds self-trigger.  Run the engine after. *)

val static_schedule :
  players:int ->
  rounds:int ->
  (Causalb_graph.Label.t
  * Causalb_graph.Dep.t
  * int
  * Causalb_data.Datatypes.Card_table.op)
  list
(** The {!Strict_turns} submission intent as [(label, dep, player, op)]
    rows in play order: player [p]'s card occurs after player [p-1]'s in
    the same round, and a new round's opener occurs after {e every} card
    of the finished round.  Labels match the runtime ones exactly
    ([Group.osend] gives player [p]'s round-[r] card identity
    [(origin=p, seq=r)]); the card value is a placeholder — only the
    class structure matters to the lint.  [causalb-lint] replays this
    schedule purely: plays commute structurally (the table is kept
    sorted), so the chain serves turn-taking, not consistency, and the
    static demand is [unordered].

    @raise Invalid_argument if [players <= 0]. *)

val rounds_completed : t -> int
(** Rounds whose full card set reached every member. *)

val round_durations : t -> Causalb_util.Stats.t
(** Opener broadcast to global completion, per round. *)

val check_causal_order : t -> bool
(** Every member's delivery order respects the declared dependencies. *)

val check_tables_agree : t -> bool
(** All members' card tables went through the same per-round contents. *)

val messages_sent : t -> int
