module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Rng = Causalb_util.Rng
module Service = Causalb_data.Service
module Replica = Causalb_data.Replica
module Document = Causalb_data.Datatypes.Document

type t = {
  engine : Engine.t;
  service : (Document.op, Document.state) Service.t;
  participants : int;
  sections : int;
  rng : Rng.t;
  mutable annotations : int;
  mutable commits : int;
}

let create engine ~participants ~sections ?latency () =
  if participants <= 0 then invalid_arg "Conference.create: participants <= 0";
  let machine = Document.machine ~sections in
  let service =
    Service.create engine ~replicas:participants ~machine ?latency ()
  in
  {
    engine;
    service;
    participants;
    sections;
    rng = Engine.fork_rng engine;
    annotations = 0;
    commits = 0;
  }

let service t = t.service

let check_participant t who p =
  if p < 0 || p >= t.participants then
    invalid_arg (Printf.sprintf "Conference.%s: participant %d out of range" who p)

let annotate t ~participant ~section text =
  check_participant t "annotate" participant;
  t.annotations <- t.annotations + 1;
  ignore
    (Service.submit t.service ~src:participant
       (Document.Annotate (section, text)))

let commit t ~moderator ~section ~body =
  check_participant t "commit" moderator;
  t.commits <- t.commits + 1;
  ignore
    (Service.submit t.service ~src:moderator (Document.Commit (section, body)))

let request_view t ~participant k =
  check_participant t "request_view" participant;
  Replica.read_deferred (Service.replica t.service participant) k

let session_schedule ~participants ~sections ~annotations ~commit_every
    ?(spacing = 1.0) rng =
  if commit_every <= 0 then
    invalid_arg "Conference.session_schedule: commit_every <= 0";
  let busiest = Array.make sections 0 in
  let rows = ref [] in
  for i = 0 to annotations - 1 do
    let participant = i mod participants in
    let section = Rng.int rng sections in
    let when_ = float_of_int i *. spacing in
    busiest.(section) <- busiest.(section) + 1;
    rows :=
      ( when_,
        participant,
        Document.Annotate (section, Printf.sprintf "note-%d by p%d" i participant)
      )
      :: !rows;
    if (i + 1) mod commit_every = 0 then begin
      let sec = ref 0 in
      Array.iteri (fun j c -> if c > busiest.(!sec) then sec := j) busiest;
      rows :=
        ( when_,
          0,
          Document.Commit
            (!sec, Printf.sprintf "body v%d of s%d" ((i + 1) / commit_every) !sec)
        )
        :: !rows
    end
  done;
  List.rev !rows

let run_session t ~annotations ~commit_every ?(spacing = 1.0) () =
  let rows =
    session_schedule ~participants:t.participants ~sections:t.sections
      ~annotations ~commit_every ~spacing t.rng
  in
  (* One event per row; the engine breaks time ties by insertion order, so
     a commit lands right after the annotation that triggered it, exactly
     as when both were submitted from a single callback. *)
  List.iter
    (fun (when_, src, op) ->
      Engine.schedule_at t.engine ~time:when_ (fun () ->
          match (op : Document.op) with
          | Document.Annotate (section, text) ->
            annotate t ~participant:src ~section text
          | Document.Commit (section, body) ->
            commit t ~moderator:src ~section ~body
          | Document.Review -> ignore (Service.submit t.service ~src op)))
    rows;
  Service.run t.service

let annotations_sent t = t.annotations

let commits_sent t = t.commits

let check t = Service.check t.service
