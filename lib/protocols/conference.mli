(** Distributed conferencing on a shared design document
    (paper §1, §5.2; ref [11]).

    Participants at different workstations collaboratively annotate a
    document; annotations on any section are commutative and flow through
    the §6.1 front-end manager, so replicas may apply them in different
    orders between stable points.  A moderator periodically {e commits} a
    section (non-commutative — it folds the annotation discussion into
    the body), closing the cycle; every member's window then agrees and
    the committed document is a stable point.

    Reads are the paper's deferred reads: a participant asking to see the
    document gets the state at the next stable point, identical at every
    workstation. *)

type t

val create :
  Causalb_sim.Engine.t ->
  participants:int ->
  sections:int ->
  ?latency:Causalb_sim.Latency.t ->
  unit ->
  t

val service :
  t ->
  ( Causalb_data.Datatypes.Document.op,
    Causalb_data.Datatypes.Document.state )
  Causalb_data.Service.t

val annotate : t -> participant:int -> section:int -> string -> unit

val commit : t -> moderator:int -> section:int -> body:string -> unit

val request_view :
  t -> participant:int -> (Causalb_data.Datatypes.Document.state -> unit) ->
  unit
(** Deferred read at the participant's replica: the continuation fires at
    the next stable point with the agreed document. *)

val session_schedule :
  participants:int ->
  sections:int ->
  annotations:int ->
  commit_every:int ->
  ?spacing:float ->
  Causalb_util.Rng.t ->
  (float * int * Causalb_data.Datatypes.Document.op) list
(** The scripted session as a pure submission schedule [(time,
    participant, op)], in submission order: [annotations] annotations
    spread [spacing] ms apart (default 1.0) from round-robin participants
    on [rng]-chosen sections; after every [commit_every] annotations the
    moderator (participant 0) commits the busiest section so far.
    {!run_session} dispatches exactly this schedule; [causalb-lint]
    replays it purely to verify the shipped workload statically.

    @raise Invalid_argument if [commit_every <= 0]. *)

val run_session :
  t ->
  annotations:int ->
  commit_every:int ->
  ?spacing:float ->
  unit ->
  unit
(** Dispatch {!session_schedule} (drawing sections from the protocol's
    own RNG) and run the engine to completion. *)

val annotations_sent : t -> int

val commits_sent : t -> int

val check : t -> (string * bool) list
(** The full {!Causalb_data.Service.check} battery. *)
