module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Stack = Causalb_stack.Stack
module Message = Causalb_core.Message
module Dep = Causalb_graph.Dep
module Label = Causalb_graph.Label
module Stats = Causalb_util.Stats
module Rng = Causalb_util.Rng

type msg =
  | Lock of { member : int; cycle : int }
  | Tfr of { position : int; cycle : int }

type grant = {
  cycle : int;
  holder : int;
  grant_time : float;
  release_time : float;
}

(* Per-member protocol view: everything a member has learned from its own
   causal delivery sequence.  Members never peek at each other's views —
   agreement between the views is a *checked* property, not an input. *)
type view = {
  vid : int;
  locks : (int, (int * Label.t) list) Hashtbl.t; (* cycle -> (member,label) *)
  tfrs : (int, (int * Label.t) list) Hashtbl.t;  (* cycle -> (position,label) *)
  mutable orders : (int * int list) list;        (* cycle -> holder sequence *)
}

type t = {
  engine : Engine.t;
  stack : msg Stack.t;
  members : int;
  hold : Latency.t;
  hold_rng : Rng.t;
  requesters : cycle:int -> int list;
  views : view array;
  mutable total_cycles : int;
  mutable grants_rev : grant list;
  request_times : (int * int, float) Hashtbl.t; (* (cycle, member) -> time *)
  cycle_start : (int, float) Hashtbl.t;
  mutable completed : int;
  final_tfr_seen : (int, int) Hashtbl.t; (* cycle -> members done *)
  cycle_durations : Stats.t;
  wait_times : Stats.t;
}

let pp_msg ppf = function
  | Lock { member; cycle } -> Format.fprintf ppf "LOCK(%d,%d)" member cycle
  | Tfr { position; cycle } -> Format.fprintf ppf "TFR(%d,%d)" position cycle

let checked_requesters t ~cycle =
  let rs = List.sort_uniq Int.compare (t.requesters ~cycle) in
  if rs = [] then
    invalid_arg (Printf.sprintf "Lock_service: no requesters for cycle %d" cycle);
  List.iter
    (fun r ->
      if r < 0 || r >= t.members then
        invalid_arg (Printf.sprintf "Lock_service: requester %d out of range" r))
    rs;
  rs

(* Deterministic, fair arbiter: sorted requesters rotated by the cycle
   number.  Any deterministic function of (requesters, cycle) works; all
   members compute it on the same inputs. *)
let holder_sequence requesters ~cycle =
  let arr = Array.of_list requesters in
  let n = Array.length arr in
  List.init n (fun i -> arr.((i + cycle) mod n))

let table_add tbl key entry =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (entry :: prev)

let broadcast_lock t member ~cycle ~dep =
  let now = Engine.now t.engine in
  Hashtbl.replace t.request_times (cycle, member) now;
  if not (Hashtbl.mem t.cycle_start cycle) then
    Hashtbl.replace t.cycle_start cycle now;
  let name = Printf.sprintf "LOCK.%d.%d" member cycle in
  ignore
    (Stack.submit t.stack ~src:member ~name ~dep (Lock { member; cycle }))

let broadcast_tfr t member ~position ~cycle ~dep =
  let name = Printf.sprintf "TFR.%d.%d" position cycle in
  ignore
    (Stack.submit t.stack ~src:member ~name ~dep (Tfr { position; cycle }))

(* The member at [position] in the holder sequence acquires now, holds for
   a sampled duration, then broadcasts its transfer. *)
let acquire t view ~position ~cycle ~dep =
  let grant_time = Engine.now t.engine in
  let hold_for = Latency.sample t.hold_rng t.hold in
  let release_time = grant_time +. hold_for in
  t.grants_rev <-
    { cycle; holder = view.vid; grant_time; release_time } :: t.grants_rev;
  (match Hashtbl.find_opt t.request_times (cycle, view.vid) with
  | Some t0 -> Stats.add t.wait_times (grant_time -. t0)
  | None -> ());
  Engine.schedule t.engine ~delay:hold_for (fun () ->
      broadcast_tfr t view.vid ~position ~cycle ~dep)

let on_lock t view ~label ~member ~cycle =
  table_add view.locks cycle (member, label);
  let requesters = checked_requesters t ~cycle in
  let seen = Hashtbl.find view.locks cycle in
  if List.length seen = List.length requesters then begin
    (* Predetermined count reached: run the arbitration algorithm. *)
    let order = holder_sequence requesters ~cycle in
    view.orders <- (cycle, order) :: view.orders;
    match order with
    | first :: _ when first = view.vid ->
      let dep = Dep.after_all (List.map snd seen) in
      acquire t view ~position:0 ~cycle ~dep
    | _ -> ()
  end

let cycle_done t view ~cycle =
  let seen =
    1 + Option.value ~default:0 (Hashtbl.find_opt t.final_tfr_seen cycle)
  in
  Hashtbl.replace t.final_tfr_seen cycle seen;
  if seen = t.members then begin
    t.completed <- t.completed + 1;
    (match Hashtbl.find_opt t.cycle_start cycle with
    | Some t0 -> Stats.add t.cycle_durations (Engine.now t.engine -. t0)
    | None -> ())
  end;
  (* Kick off the next arbitration cycle from this member if it wants the
     lock next round.  Each requester sends exactly once (when *it*
     delivers the final transfer). *)
  let next = cycle + 1 in
  if next < t.total_cycles then begin
    let next_requesters = checked_requesters t ~cycle:next in
    if List.mem view.vid next_requesters then begin
      let tfr_labels = List.map snd (Hashtbl.find view.tfrs cycle) in
      broadcast_lock t view.vid ~cycle:next ~dep:(Dep.after_all tfr_labels)
    end
  end

let on_tfr t view ~label ~position ~cycle =
  table_add view.tfrs cycle (position, label);
  let order =
    (* Causal order guarantees the TFR arrives after all LOCKs of its
       cycle, so the arbitration order is already computed locally. *)
    match List.assoc_opt cycle view.orders with
    | Some o -> o
    | None -> assert false
  in
  let last = List.length order - 1 in
  if position < last && List.nth order (position + 1) = view.vid then
    acquire t view ~position:(position + 1) ~cycle ~dep:(Dep.after label);
  if position = last then cycle_done t view ~cycle

let on_deliver t ~node ~time:_ msg =
  let view = t.views.(node) in
  let label = Message.label msg in
  match Message.payload msg with
  | Lock { member; cycle } -> on_lock t view ~label ~member ~cycle
  | Tfr { position; cycle } -> on_tfr t view ~label ~position ~cycle

let create engine ~members ?(latency = Latency.lan)
    ?(hold = Latency.constant 1.0)
    ?(requesters = fun ~cycle:_ -> []) ?trace () =
  if members <= 0 then invalid_arg "Lock_service.create: members <= 0";
  let requesters =
    (* Default: every member requests every cycle. *)
    let default ~cycle:_ = List.init members Fun.id in
    fun ~cycle ->
      match requesters ~cycle with [] -> default ~cycle | rs -> rs
  in
  let views =
    Array.init members (fun vid ->
        { vid; locks = Hashtbl.create 16; tfrs = Hashtbl.create 16; orders = [] })
  in
  (* The stack's delivery callback needs [t], which needs the stack: tie
     the knot through a forward reference (deliveries only begin once the
     engine runs, well after [create] returns). *)
  let t_ref = ref None in
  let stack =
    Stack.compose ~ordering:Stack.Osend ~latency ?trace
      ~on_deliver:(fun ~node ~time msg ->
        match !t_ref with
        | Some t -> on_deliver t ~node ~time msg
        | None -> assert false)
      engine ~nodes:members ()
  in
  let t =
    {
      engine;
      stack;
      members;
      hold;
      hold_rng = Engine.fork_rng engine;
      requesters;
      views;
      total_cycles = 0;
      grants_rev = [];
      request_times = Hashtbl.create 64;
      cycle_start = Hashtbl.create 16;
      completed = 0;
      final_tfr_seen = Hashtbl.create 16;
      cycle_durations = Stats.create ();
      wait_times = Stats.create ();
    }
  in
  t_ref := Some t;
  t

let start t ~cycles =
  if cycles <= 0 then invalid_arg "Lock_service.start: cycles <= 0";
  t.total_cycles <- cycles;
  let requesters = checked_requesters t ~cycle:0 in
  List.iter (fun r -> broadcast_lock t r ~cycle:0 ~dep:Dep.null) requesters

let grants t =
  List.sort (fun a b -> Float.compare a.grant_time b.grant_time)
    (List.rev t.grants_rev)

let cycles_completed t = t.completed

let arbitration_orders t node =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) t.views.(node).orders

let check_mutual_exclusion t =
  let rec disjoint = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a.release_time <= b.grant_time && disjoint rest
  in
  disjoint (grants t)

let check_agreement t =
  match Array.to_list t.views with
  | [] -> true
  | first :: rest ->
    let orders v =
      List.sort (fun (a, _) (b, _) -> Int.compare a b) v.orders
    in
    List.for_all (fun v -> orders v = orders first) rest

let check_liveness t ~expected_cycles =
  let granted_in cycle =
    List.filter (fun g -> g.cycle = cycle) (grants t)
    |> List.map (fun g -> g.holder)
    |> List.sort Int.compare
  in
  List.for_all
    (fun cycle -> granted_in cycle = checked_requesters t ~cycle)
    (List.init expected_cycles Fun.id)

let cycle_durations t = t.cycle_durations

let wait_times t = t.wait_times

let messages_sent t = Stack.messages_sent t.stack

let layer_metrics t = Stack.metrics t.stack
