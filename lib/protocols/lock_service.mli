(** Decentralized lock arbitration over totally ordered messages
    (paper §6.2, Fig. 5).

    Members needing the lock broadcast [LOCK(i, S)] requests for
    arbitration cycle [S]; these are spontaneous, so the paper totally
    orders them — here through the causal dependency structure itself:
    every [LOCK] of cycle [S] [Occurs_After] all [TFR] (transfer)
    messages of cycle [S−1], and once a member has delivered the
    {e predetermined number} of [LOCK] messages it runs a deterministic
    arbitration algorithm.  All members therefore compute the identical
    holder sequence with {e no} extra agreement messages.

    The holder sequence for a cycle is the sorted requester list rotated
    by [S] (a fair deterministic arbiter).  Each holder uses the resource
    for a sampled hold time, then broadcasts [TFR(pos, S)]
    [Occurs_After] the previous transfer; the last [TFR] of a cycle
    unblocks the next cycle's [LOCK]s.

    Verified properties: mutual exclusion of usage intervals, identical
    arbitration order at every member, and lock liveness (every request
    eventually granted). *)

type msg =
  | Lock of { member : int; cycle : int }
  | Tfr of { position : int; cycle : int }
      (** transfer by the holder at [position] in the cycle's sequence *)

type grant = {
  cycle : int;
  holder : int;
  grant_time : float;   (** holder's local grant instant *)
  release_time : float;
}

type t

val create :
  Causalb_sim.Engine.t ->
  members:int ->
  ?latency:Causalb_sim.Latency.t ->
  ?hold:Causalb_sim.Latency.t ->
  ?requesters:(cycle:int -> int list) ->
  ?trace:Causalb_sim.Trace.t ->
  unit ->
  t
(** [hold] (default constant 1 ms) samples resource-usage durations.
    [requesters ~cycle] (default: every member) must be non-empty for
    every cycle that runs.  @raise Invalid_argument if [members <= 0]. *)

val start : t -> cycles:int -> unit
(** Inject cycle 0's requests; subsequent cycles self-trigger until
    [cycles] have completed.  Call {!Causalb_sim.Engine.run} afterwards. *)

val grants : t -> grant list
(** All granted usages, in grant order. *)

val cycles_completed : t -> int

val arbitration_orders : t -> int -> (int * int list) list
(** Per member: [(cycle, holder sequence)] as computed locally. *)

val check_mutual_exclusion : t -> bool
(** No two usage intervals overlap. *)

val check_agreement : t -> bool
(** Every member computed the same holder sequence for every cycle. *)

val check_liveness : t -> expected_cycles:int -> bool
(** Every requester of every completed cycle was granted exactly once. *)

val cycle_durations : t -> Causalb_util.Stats.t
(** Wall-clock (virtual) duration of each completed cycle. *)

val wait_times : t -> Causalb_util.Stats.t
(** Per grant: request broadcast to grant. *)

val messages_sent : t -> int

val layer_metrics : t -> Causalb_stackbase.Metrics.t list
(** Uniform per-layer metrics of the underlying ordering stack. *)

val pp_msg : Format.formatter -> msg -> unit
