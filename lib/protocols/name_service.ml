module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Stack = Causalb_stack.Stack
module Message = Causalb_core.Message
module Dep = Causalb_graph.Dep
module Label = Causalb_graph.Label
module Stats = Causalb_util.Stats
module Smap = Map.Make (String)
module Seq_spec = Causalb_data.Seq_spec
module Kv = Causalb_data.Datatypes.Kv_store

type mode = App_check | Total_order

type op =
  | Upd of { uid : int; key : string; value : string }
  | Qry of { uid : int; key : string; context : Label.t option }

type answer = {
  qry_uid : int;
  server : int;
  value : string option;
  valid : bool;
  time : float;
}

type server = {
  sid : int;
  mutable registry : Kv.state;
      (* registry transitions run through the Kv_store sequential spec;
         the context check below stays protocol-level — it is the reason
         the spec leaves "qry" a plain (non-observer) commutative class *)
  mutable last_upd : Label.t Smap.t; (* key -> label of last applied upd *)
}

type t = {
  engine : Engine.t;
  stack : op Stack.t;
  mode : mode;
  servers : server array;
  mutable next_uid : int;
  issue_times : (int, float) Hashtbl.t;
  mutable answers_rev : answer list;
  mutable updates : int;
  mutable queries : int;
  answer_latency : Stats.t;
}

let apply_at t server ~label ~time = function
  | Upd { key; value; _ } ->
    server.registry <- Kv.spec.Seq_spec.apply server.registry (Kv.Upd (key, value));
    server.last_upd <- Smap.add key label server.last_upd
  | Qry { uid; key; context } ->
    let value = Kv.lookup (Kv.spec.Seq_spec.apply server.registry (Kv.Qry key)) key in
    let valid =
      match t.mode with
      | Total_order -> true
      | App_check ->
        (* Context check: answer only from the same "last update" the
           issuer saw; otherwise the result may differ across servers. *)
        let mine = Smap.find_opt key server.last_upd in
        (match (mine, context) with
        | None, None -> true
        | Some a, Some b -> Label.equal a b
        | None, Some _ | Some _, None -> false)
    in
    t.answers_rev <-
      { qry_uid = uid; server = server.sid; value; valid; time }
      :: t.answers_rev;
    if valid then begin
      match Hashtbl.find_opt t.issue_times uid with
      | Some t0 -> Stats.add t.answer_latency (time -. t0)
      | None -> ()
    end

let create engine ~servers:n ~mode ?(latency = Latency.lan) () =
  if n <= 0 then invalid_arg "Name_service.create: servers <= 0";
  (* the protocol is built for the derived labeling: updates are sync
     points, queries ride the window under the context check *)
  assert (not (Seq_spec.is_cid Kv.spec (Kv.Upd ("", ""))));
  assert (Seq_spec.is_cid Kv.spec (Kv.Qry ""));
  let servers =
    Array.init n (fun sid ->
        { sid; registry = Kv.spec.Seq_spec.init; last_upd = Smap.empty })
  in
  let t_ref = ref None in
  (* Fig. 4's two boxes are two stack compositions: bare causal broadcast
     under the application's context check, or the same causal layer with
     the sequencer interposed. *)
  let total =
    match mode with
    | App_check -> Stack.Pass
    | Total_order -> Stack.Sequencer { node = 0 }
  in
  let stack =
    Stack.compose ~ordering:Stack.Osend ~total ~latency
      ~on_deliver:(fun ~node ~time msg ->
        match !t_ref with
        | Some t ->
          apply_at t t.servers.(node) ~label:(Message.label msg) ~time
            (Message.payload msg)
        | None -> assert false)
      engine ~nodes:n ()
  in
  let t =
    {
      engine;
      stack;
      mode;
      servers;
      next_uid = 0;
      issue_times = Hashtbl.create 256;
      answers_rev = [];
      updates = 0;
      queries = 0;
      answer_latency = Stats.create ();
    }
  in
  t_ref := Some t;
  t

let fresh_uid t =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  Hashtbl.replace t.issue_times uid (Engine.now t.engine);
  uid

let dispatch t ~src op =
  (* Spontaneous: no causal relationship to anything (§5.2).  Under
     [Total_order] the stack routes through its sequencer. *)
  ignore (Stack.submit t.stack ~src ~dep:Dep.null op)

let static_schedule ~front_ends ~keys ~ops =
  if front_ends <= 0 then
    invalid_arg "Name_service.static_schedule: front_ends <= 0";
  if keys <= 0 then invalid_arg "Name_service.static_schedule: keys <= 0";
  List.init ops (fun i ->
      let key = Printf.sprintf "k%d" (i mod keys) in
      let op =
        if i mod 3 = 0 then Kv.Upd (key, Printf.sprintf "v%d" i)
        else Kv.Qry key
      in
      (i mod front_ends, op))

let update t ~src ~key value =
  let uid = fresh_uid t in
  t.updates <- t.updates + 1;
  dispatch t ~src (Upd { uid; key; value })

let query t ~src ~key =
  let uid = fresh_uid t in
  t.queries <- t.queries + 1;
  let context = Smap.find_opt key t.servers.(src).last_upd in
  dispatch t ~src (Qry { uid; key; context })

let updates_issued t = t.updates

let queries_issued t = t.queries

let answers t = List.rev t.answers_rev

let answers_discarded t =
  List.length (List.filter (fun a -> not a.valid) (answers t))

let discard_fraction t =
  let all = answers t in
  if all = [] then 0.0
  else
    float_of_int (answers_discarded t) /. float_of_int (List.length all)

let by_query t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun a ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl a.qry_uid) in
      Hashtbl.replace tbl a.qry_uid (a :: prev))
    (answers t);
  tbl

let queries_clean t =
  let tbl = by_query t in
  Hashtbl.fold
    (fun _ answers acc ->
      let all_valid = List.for_all (fun a -> a.valid) answers in
      let values = List.map (fun a -> a.value) answers in
      let agree =
        match values with [] -> true | v :: rest -> List.for_all (( = ) v) rest
      in
      if all_valid && agree && List.length answers = Array.length t.servers
      then acc + 1
      else acc)
    tbl 0

let valid_answers_agree t =
  let tbl = by_query t in
  Hashtbl.fold
    (fun _ answers acc ->
      let valid = List.filter (fun a -> a.valid) answers in
      let agree =
        match valid with
        | [] -> true
        | v :: rest -> List.for_all (fun a -> a.value = v.value) rest
      in
      acc && agree)
    tbl true

let answer_latency t = t.answer_latency

let final_states_agree t =
  match Array.to_list t.servers with
  | [] -> true
  | first :: rest ->
    List.for_all
      (fun s -> Kv.spec.Seq_spec.equal s.registry first.registry)
      rest

let messages_sent t = Stack.messages_sent t.stack

let layer_metrics t = Stack.metrics t.stack
