(** Distributed name service (paper §5.2).

    Registrations ([upd]) and resolutions ([qry]) are generated
    {e spontaneously} — no causal relationships among them — which is the
    case the paper's stable-point machinery cannot cover.  Two execution
    supports are provided, matching Fig. 4's two boxes:

    {ul
    {- {b App_check}: messages go out unordered ([Occurs_After NULL]).
       Each query carries context information — the label of the last
       update for the key as seen by the issuer.  A server answers a
       query only when its own last update for the key matches the
       query's context; otherwise it {e discards} the answer (the paper's
       "the application should discard qry2 since it leads to incorrect
       result").  Answers that survive the check are mutually consistent;
       the price is the discard rate, which grows with the update rate.}
    {- {b Total_order}: every message is funnelled through the [ASend]
       sequencer; all servers process the identical sequence, no checks
       or discards, at the cost of an extra hop and serialisation.}}

    Experiment T4 sweeps the query:update mix across both modes. *)

type mode = App_check | Total_order

type op =
  | Upd of { uid : int; key : string; value : string }
  | Qry of {
      uid : int;
      key : string;
      context : Causalb_graph.Label.t option;
          (** issuer's last-seen update label for [key] *)
    }

(** One server's response to one query. *)
type answer = {
  qry_uid : int;
  server : int;
  value : string option;   (** resolution result ([None] = unbound) *)
  valid : bool;            (** survived the context check *)
  time : float;
}

type t

val create :
  Causalb_sim.Engine.t ->
  servers:int ->
  mode:mode ->
  ?latency:Causalb_sim.Latency.t ->
  unit ->
  t

val update : t -> src:int -> key:string -> string -> unit

val query : t -> src:int -> key:string -> unit

val static_schedule :
  front_ends:int ->
  keys:int ->
  ops:int ->
  (int * Causalb_data.Datatypes.Kv_store.op) list
(** The protocol's submission intent as [(front_end, op)] rows in issue
    order: a deterministic T4-style mix (one [Upd] per two [Qry]s) on
    [keys] keys, round-robin across [front_ends].  Every row is submitted
    spontaneously — [Occurs_After NULL], no sync points — which is what
    makes §5.2 the case the stable-point machinery cannot cover.
    [causalb-lint] replays this schedule purely: its demand is
    [causal-total], met by the {!Total_order} sequencer box of Fig. 4,
    while under {!App_check} the gap is closed by the application's
    context check rather than the broadcast layer.

    @raise Invalid_argument if [front_ends <= 0] or [keys <= 0]. *)

val updates_issued : t -> int

val queries_issued : t -> int

val answers : t -> answer list

val answers_discarded : t -> int

val discard_fraction : t -> float
(** Discarded answers / total answers; 0 when no answers. *)

val queries_clean : t -> int
(** Queries for which every server produced a valid answer and all the
    valid answers agree. *)

val valid_answers_agree : t -> bool
(** No two valid answers for the same query differ — the soundness of the
    context check. *)

val answer_latency : t -> Causalb_util.Stats.t
(** Issue time to each server's answer (valid answers only). *)

val final_states_agree : t -> bool
(** Whether all servers hold the same registry after the run.  Expected
    [true] under [Total_order]; may be [false] under [App_check] (the
    residual inconsistency the application must tolerate). *)

val messages_sent : t -> int

val layer_metrics : t -> Causalb_stackbase.Metrics.t list
(** Uniform per-layer metrics of the underlying ordering stack. *)
