module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Net = Causalb_net.Net
module Group = Causalb_core.Group
module Message = Causalb_core.Message
module Dep = Causalb_graph.Dep
module Label = Causalb_graph.Label
module Rng = Causalb_util.Rng
module Seq_spec = Causalb_data.Seq_spec

type page = { version : int; data : string; writer : int }

type msg =
  | Lock of { member : int; cycle : int }
  | Tfr of { position : int; cycle : int; page : page }

type view = {
  vid : int;
  mutable page : page;
  mutable applied_rev : page list;
  locks : (int, (int * Label.t) list) Hashtbl.t;
  tfrs : (int, (int * Label.t) list) Hashtbl.t;
  mutable orders : (int * int list) list;
}

type t = {
  engine : Engine.t;
  group : msg Group.t;
  members : int;
  mutate : member:int -> page:page -> string;
  hold : Latency.t;
  hold_rng : Rng.t;
  requesters : cycle:int -> int list;
  views : view array;
  mutable total_cycles : int;
}

let initial_page = { version = 0; data = ""; writer = -1 }

(* The replicated page as a sequential spec: one "install" class whose
   transition keeps the maximum page in the total order (version, writer,
   data).  Installs therefore always commute — the spec derives the class
   as [Cid] — and because the token protocol hands out strictly
   increasing versions, keep-max coincides with install-in-delivery-order
   (check_versions_monotone audits exactly that). *)
let page_spec =
  Seq_spec.make ~name:"page-register" ~init:initial_page
    ~apply:(fun s p ->
      if (p.version, p.writer, p.data) > (s.version, s.writer, s.data) then p
      else s)
    ~equal:(fun a b -> a = b)
    ~classes:[ "install" ]
    ~class_of:(fun _ -> "install")
    ~commutes:(fun _ _ -> true)
    ~pp_op:(fun ppf p -> Format.fprintf ppf "v%d by %d" p.version p.writer)
    ()

let checked_requesters t ~cycle =
  let rs = List.sort_uniq Int.compare (t.requesters ~cycle) in
  if rs = [] then
    invalid_arg (Printf.sprintf "Page_service: no requesters for cycle %d" cycle);
  rs

let holder_sequence requesters ~cycle =
  let arr = Array.of_list requesters in
  let n = Array.length arr in
  List.init n (fun i -> arr.((i + cycle) mod n))

let table_add tbl key entry =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (entry :: prev)

let broadcast_lock t member ~cycle ~dep =
  ignore
    (Group.osend t.group ~src:member
       ~name:(Printf.sprintf "LOCK.%d.%d" member cycle)
       ~dep
       (Lock { member; cycle }))

(* The holder works on its local copy, then ships the new page with its
   transfer: release and write propagation are the same broadcast. *)
let acquire t view ~position ~cycle ~dep =
  let hold_for = Latency.sample t.hold_rng t.hold in
  Engine.schedule t.engine ~delay:hold_for (fun () ->
      let base = view.page in
      let page =
        {
          version = base.version + 1;
          data = t.mutate ~member:view.vid ~page:base;
          writer = view.vid;
        }
      in
      ignore
        (Group.osend t.group ~src:view.vid
           ~name:(Printf.sprintf "TFR.%d.%d" position cycle)
           ~dep
           (Tfr { position; cycle; page })))

let on_lock t view ~label ~member ~cycle =
  table_add view.locks cycle (member, label);
  let requesters = checked_requesters t ~cycle in
  let seen = Hashtbl.find view.locks cycle in
  if List.length seen = List.length requesters then begin
    let order = holder_sequence requesters ~cycle in
    view.orders <- (cycle, order) :: view.orders;
    match order with
    | first :: _ when first = view.vid ->
      acquire t view ~position:0 ~cycle
        ~dep:(Dep.after_all (List.map snd seen))
    | _ -> ()
  end

let on_tfr t view ~label ~position ~cycle ~page =
  table_add view.tfrs cycle (position, label);
  (* install the holder's write through the spec *)
  view.page <- page_spec.Seq_spec.apply view.page page;
  view.applied_rev <- page :: view.applied_rev;
  let order =
    match List.assoc_opt cycle view.orders with
    | Some o -> o
    | None -> assert false
  in
  let last = List.length order - 1 in
  if position < last && List.nth order (position + 1) = view.vid then
    acquire t view ~position:(position + 1) ~cycle ~dep:(Dep.after label);
  if position = last then begin
    let next = cycle + 1 in
    if next < t.total_cycles then begin
      let next_requesters = checked_requesters t ~cycle:next in
      if List.mem view.vid next_requesters then begin
        let tfr_labels = List.map snd (Hashtbl.find view.tfrs cycle) in
        broadcast_lock t view.vid ~cycle:next
          ~dep:(Dep.after_all tfr_labels)
      end
    end
  end

let on_deliver t ~node ~time:_ msg =
  let view = t.views.(node) in
  let label = Message.label msg in
  match Message.payload msg with
  | Lock { member; cycle } -> on_lock t view ~label ~member ~cycle
  | Tfr { position; cycle; page } -> on_tfr t view ~label ~position ~cycle ~page

let create engine ~members ~mutate ?(latency = Latency.lan)
    ?(hold = Latency.constant 1.0)
    ?(requesters = fun ~cycle:_ -> []) () =
  if members <= 0 then invalid_arg "Page_service.create: members <= 0";
  let requesters =
    let default = List.init members Fun.id in
    fun ~cycle ->
      match requesters ~cycle with [] -> default | rs -> rs
  in
  let net = Net.create engine ~nodes:members ~latency () in
  let views =
    Array.init members (fun vid ->
        {
          vid;
          page = initial_page;
          applied_rev = [];
          locks = Hashtbl.create 16;
          tfrs = Hashtbl.create 16;
          orders = [];
        })
  in
  let t_ref = ref None in
  let group =
    Group.create net
      ~on_deliver:(fun ~node ~time msg ->
        match !t_ref with
        | Some t -> on_deliver t ~node ~time msg
        | None -> assert false)
      ()
  in
  let t =
    {
      engine;
      group;
      members;
      mutate;
      hold;
      hold_rng = Engine.fork_rng engine;
      requesters;
      views;
      total_cycles = 0;
    }
  in
  t_ref := Some t;
  t

let start t ~cycles =
  if cycles <= 0 then invalid_arg "Page_service.start: cycles <= 0";
  t.total_cycles <- cycles;
  List.iter
    (fun r -> broadcast_lock t r ~cycle:0 ~dep:Dep.null)
    (checked_requesters t ~cycle:0)

let page_at t node = t.views.(node).page

let applied t node = List.rev t.views.(node).applied_rev

let versions_applied t node = List.map (fun p -> p.version) (applied t node)

let writes t = List.map (fun p -> (p.version, p.writer)) (applied t 0)

let check_no_lost_updates t ~expected_writes =
  versions_applied t 0 = List.init expected_writes (fun i -> i + 1)

let check_copies_converge t =
  let pages = Array.to_list (Array.map (fun v -> v.page) t.views) in
  match pages with
  | [] -> true
  | first :: rest -> List.for_all (( = ) first) rest

let check_versions_monotone t =
  Array.for_all
    (fun view ->
      let rec mono = function
        | a :: (b :: _ as rest) -> a < b && mono rest
        | [ _ ] | [] -> true
      in
      mono (versions_applied t view.vid))
    t.views

let messages_sent t = Net.messages_sent (Group.net t.group)
