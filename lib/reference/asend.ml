(* Seed list-sorting Merge/Counted total-order layers, kept as ordering
   oracles for the heap-backed versions in [Causalb_core.Asend].  Both
   rely on [List.sort] being stable over the arrival-ordered buffer; the
   heap reproduces that order with an arrival-sequence tie-break. *)

module Label = Causalb_graph.Label
module Metrics = Causalb_stackbase.Metrics
module Message = Causalb_core.Message

let default_compare a b = Label.compare (Message.label a) (Message.label b)

module Merge = struct
  type 'a t = {
    is_sync : 'a Message.t -> bool;
    compare : 'a Message.t -> 'a Message.t -> int;
    deliver : 'a Message.t -> unit;
    mutable buffer : 'a Message.t list;
    mutable order_rev : Label.t list;
    mutable batches : int;
    metrics : Metrics.t;
  }

  let create ~is_sync ?(compare = default_compare) ?(deliver = fun _ -> ()) ()
      =
    {
      is_sync;
      compare;
      deliver;
      buffer = [];
      order_rev = [];
      batches = 0;
      metrics = Metrics.create ~name:"total:merge" ();
    }

  let release t msg =
    t.order_rev <- Message.label msg :: t.order_rev;
    Metrics.on_deliver t.metrics;
    t.deliver msg

  let on_causal_deliver t msg =
    Metrics.on_receive t.metrics;
    if t.is_sync msg then begin
      let batch = List.sort t.compare (List.rev t.buffer) in
      t.buffer <- [];
      t.batches <- t.batches + 1;
      List.iter
        (fun m ->
          Metrics.on_unbuffer t.metrics;
          release t m)
        batch;
      release t msg
    end
    else begin
      Metrics.on_buffer t.metrics;
      t.buffer <- msg :: t.buffer
    end

  let total_order t = List.rev t.order_rev

  let buffered t = List.length t.buffer

  let batches t = t.batches

  let metrics t =
    t.metrics.Metrics.buffered <- List.length t.buffer;
    t.metrics
end

module Counted = struct
  type 'a t = {
    batch_size : int;
    compare : 'a Message.t -> 'a Message.t -> int;
    deliver : 'a Message.t -> unit;
    mutable buffer : 'a Message.t list;
    mutable order_rev : Label.t list;
    mutable batches : int;
    metrics : Metrics.t;
  }

  let create ~batch_size ?(compare = default_compare)
      ?(deliver = fun _ -> ()) () =
    if batch_size <= 0 then
      invalid_arg "Asend.Counted.create: batch_size must be positive";
    {
      batch_size;
      compare;
      deliver;
      buffer = [];
      order_rev = [];
      batches = 0;
      metrics = Metrics.create ~name:"total:counted" ();
    }

  let release t msg =
    t.order_rev <- Message.label msg :: t.order_rev;
    Metrics.on_deliver t.metrics;
    t.deliver msg

  let on_causal_deliver t msg =
    Metrics.on_receive t.metrics;
    if List.length t.buffer + 1 = t.batch_size then begin
      let batch = List.sort t.compare (List.rev (msg :: t.buffer)) in
      List.iter (fun _ -> Metrics.on_unbuffer t.metrics) t.buffer;
      t.buffer <- [];
      t.batches <- t.batches + 1;
      List.iter (release t) batch
    end
    else begin
      Metrics.on_buffer t.metrics;
      t.buffer <- msg :: t.buffer
    end

  let total_order t = List.rev t.order_rev

  let buffered t = List.length t.buffer

  let batches t = t.batches

  let metrics t =
    t.metrics.Metrics.buffered <- List.length t.buffer;
    t.metrics
end
