(* Seed list-scan BSS member, kept as the ordering oracle for
   [Causalb_core.Bss].  The envelope type is shared with the core engine
   so equivalence tests can feed the same values to both. *)

module Vc = Causalb_clock.Vector_clock
module Metrics = Causalb_stackbase.Metrics

type 'a envelope = 'a Causalb_core.Bss.envelope = {
  sender : int;
  stamp : Vc.t;
  tag : string;
  payload : 'a;
}

type 'a member = {
  id : int;
  n : int;
  deliver : 'a envelope -> unit;
  mutable delivered : int array; (* per-origin delivered count *)
  mutable own_sends : int;
  mutable pending : 'a envelope list; (* arrival order, reversed *)
  mutable tags_rev : string list;
  metrics : Metrics.t;
}

let member ~id ~group_size ?(deliver = fun _ -> ()) () =
  if group_size <= 0 then invalid_arg "Bss.member: group_size must be positive";
  {
    id;
    n = group_size;
    deliver;
    delivered = Array.make group_size 0;
    own_sends = 0;
    pending = [];
    tags_rev = [];
    metrics = Metrics.create ~name:"causal:bss" ();
  }

let deliverable t (e : 'a envelope) =
  let ok = ref (Vc.get e.stamp e.sender = t.delivered.(e.sender) + 1) in
  for k = 0 to t.n - 1 do
    if k <> e.sender && Vc.get e.stamp k > t.delivered.(k) then ok := false
  done;
  !ok

let do_deliver t e =
  t.delivered.(e.sender) <- t.delivered.(e.sender) + 1;
  t.tags_rev <- e.tag :: t.tags_rev;
  Metrics.on_deliver t.metrics;
  t.deliver e

let rec drain t =
  let pending = List.rev t.pending in
  let ready, blocked = List.partition (deliverable t) pending in
  if ready <> [] then begin
    t.pending <- List.rev blocked;
    List.iter
      (fun e ->
        Metrics.on_unbuffer t.metrics;
        do_deliver t e)
      ready;
    drain t
  end

let receive t e =
  Metrics.on_receive t.metrics;
  if Vc.get e.stamp e.sender <= t.delivered.(e.sender) then ()
  else if deliverable t e then begin
    do_deliver t e;
    drain t
  end
  else begin
    Metrics.on_buffer t.metrics;
    t.pending <- e :: t.pending
  end

let delivered_tags t = List.rev t.tags_rev

let delivered_count t = t.metrics.Metrics.delivered

let pending_count t = List.length t.pending

let buffered_ever t = t.metrics.Metrics.forced_waits

let metrics t =
  t.metrics.Metrics.buffered <- List.length t.pending;
  t.metrics

let clock t =
  let v = Array.copy t.delivered in
  v.(t.id) <- t.own_sends;
  Vc.of_array v
