(* Seed list-scan FIFO member, kept as the ordering oracle for
   [Causalb_core.Fifo].  Note [do_deliver] *assigns* the next-sequence
   cursor rather than incrementing it: duplicate copies released in the
   same sweep leave the cursor unchanged, and the indexed engine
   replicates exactly that. *)

module Metrics = Causalb_stackbase.Metrics

type 'a envelope = 'a Causalb_core.Fifo.envelope = {
  sender : int;
  seq : int;
  tag : string;
  payload : 'a;
}

type 'a member = {
  id : int;
  deliver : 'a envelope -> unit;
  next_seq : int array; (* expected next per origin *)
  mutable pending : 'a envelope list;
  mutable tags_rev : string list;
  metrics : Metrics.t;
}

let member ~id ~group_size ?(deliver = fun _ -> ()) () =
  if group_size <= 0 then invalid_arg "Fifo.member: group_size must be positive";
  {
    id;
    deliver;
    next_seq = Array.make group_size 0;
    pending = [];
    tags_rev = [];
    metrics = Metrics.create ~name:"causal:fifo" ();
  }

let deliverable t e = e.seq = t.next_seq.(e.sender)

let do_deliver t e =
  t.next_seq.(e.sender) <- e.seq + 1;
  t.tags_rev <- e.tag :: t.tags_rev;
  Metrics.on_deliver t.metrics;
  t.deliver e

let rec drain t =
  let pending = List.rev t.pending in
  let ready, blocked = List.partition (deliverable t) pending in
  if ready <> [] then begin
    t.pending <- List.rev blocked;
    List.iter
      (fun e ->
        Metrics.on_unbuffer t.metrics;
        do_deliver t e)
      ready;
    drain t
  end

let receive t e =
  Metrics.on_receive t.metrics;
  if e.seq < t.next_seq.(e.sender) then () (* duplicate *)
  else if deliverable t e then begin
    do_deliver t e;
    drain t
  end
  else begin
    Metrics.on_buffer t.metrics;
    t.pending <- e :: t.pending
  end

let delivered_tags t = List.rev t.tags_rev

let delivered_count t = t.metrics.Metrics.delivered

let pending_count t = List.length t.pending

let buffered_ever t = t.metrics.Metrics.forced_waits

let metrics t =
  t.metrics.Metrics.buffered <- List.length t.pending;
  t.metrics
