(* Frozen PR 3 transport: the eager-allocation hot path kept as the
   "before" side of the allocation benchmarks.  Trace info strings are
   built with [Printf.sprintf] whether or not a trace sink is attached,
   and every scheduled copy allocates a fresh delivery closure.  The
   live transport in [Causalb_net.Net] builds info strings only under an
   attached sink and recycles delivery packets through a preallocated
   free list; [bench/scaling.ml]'s [net.bcast] shape drives both on
   identical workloads and reports ns and minor-heap words per delivered
   message. *)

module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Trace = Causalb_sim.Trace
module Rng = Causalb_util.Rng
module Fault = Causalb_net.Fault

type 'a t = {
  engine : Engine.t;
  n : int;
  latency : Latency.t;
  fifo : bool;
  rng : Rng.t;
  trace : Trace.t option;
  handlers : (src:int -> 'a -> unit) option array;
  last_arrival : float array array; (* last_arrival.(src).(dst) *)
  mutable fault : Fault.t;
  mutable cell_of : int array option; (* partition cell per node *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  mutable in_flight : int;
}

let create engine ~nodes ?(latency = Latency.lan) ?(fifo = true)
    ?(fault = Fault.none) ?trace () =
  if nodes <= 0 then invalid_arg "Net.create: nodes must be positive";
  {
    engine;
    n = nodes;
    latency;
    fifo;
    rng = Engine.fork_rng engine;
    trace;
    handlers = Array.make nodes None;
    last_arrival = Array.make_matrix nodes nodes 0.0;
    fault;
    cell_of = None;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes = 0;
    in_flight = 0;
  }

let engine t = t.engine

let nodes t = t.n

let check_node t who i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Net.%s: node %d out of range" who i)

let set_handler t node f =
  check_node t "set_handler" node;
  t.handlers.(node) <- Some f

let trace t ~node ~kind ~tag ~info =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.record tr ~time:(Engine.now t.engine) ~node ~kind ~tag ~info ()

let reachable t src dst =
  match t.cell_of with
  | None -> true
  | Some cells -> cells.(src) = cells.(dst)

let deliver t ~src ~dst payload =
  t.in_flight <- t.in_flight - 1;
  match t.handlers.(dst) with
  | Some f ->
    t.delivered <- t.delivered + 1;
    trace t ~node:dst ~kind:Trace.Receive ~tag:"" ~info:(Printf.sprintf "from=%d" src);
    f ~src payload
  | None -> t.dropped <- t.dropped + 1

let schedule_copy t ~src ~dst payload =
  let base = Latency.sample t.rng t.latency in
  let jitter =
    if t.fault.Fault.jitter > 0.0 then Rng.float t.rng t.fault.Fault.jitter
    else 0.0
  in
  let now = Engine.now t.engine in
  let arrival = now +. base +. jitter in
  let arrival =
    if t.fifo then begin
      (* Per-link FIFO: never schedule an arrival before the previous one
         on the same link. *)
      let floor = t.last_arrival.(src).(dst) in
      let a = Float.max arrival floor in
      t.last_arrival.(src).(dst) <- a;
      a
    end
    else arrival
  in
  t.in_flight <- t.in_flight + 1;
  Engine.schedule_at t.engine ~time:arrival (fun () ->
      deliver t ~src ~dst payload)

let send_copy t ~src ~dst ~size payload =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  if not (reachable t src dst) then begin
    t.dropped <- t.dropped + 1;
    trace t ~node:src ~kind:Trace.Drop ~tag:"" ~info:(Printf.sprintf "partition dst=%d" dst)
  end
  else if Rng.bernoulli t.rng t.fault.Fault.drop_prob then begin
    t.dropped <- t.dropped + 1;
    trace t ~node:src ~kind:Trace.Drop ~tag:"" ~info:(Printf.sprintf "loss dst=%d" dst)
  end
  else begin
    schedule_copy t ~src ~dst payload;
    if Rng.bernoulli t.rng t.fault.Fault.dup_prob then
      schedule_copy t ~src ~dst payload
  end

let send t ~src ~dst ?(size = 1) payload =
  check_node t "send" src;
  check_node t "send" dst;
  trace t ~node:src ~kind:Trace.Send ~tag:"" ~info:(Printf.sprintf "dst=%d" dst);
  send_copy t ~src ~dst ~size payload

let broadcast t ~src ?(self = true) ?(size = 1) payload =
  check_node t "broadcast" src;
  trace t ~node:src ~kind:Trace.Send ~tag:"" ~info:"bcast";
  for dst = 0 to t.n - 1 do
    if dst <> src then send_copy t ~src ~dst ~size payload
  done;
  if self then begin
    t.sent <- t.sent + 1;
    t.in_flight <- t.in_flight + 1;
    (* Local copy: processed at the same virtual instant, after the
       current callback returns. *)
    Engine.schedule t.engine ~delay:0.0 (fun () -> deliver t ~src ~dst:src payload)
  end

let set_fault t fault = t.fault <- fault

let partition t cells =
  let cell_of = Array.make t.n (-1) in
  List.iteri
    (fun idx cell ->
      List.iter
        (fun node ->
          check_node t "partition" node;
          cell_of.(node) <- idx)
        cell)
    cells;
  (* Unlisted nodes become singletons with unique negative-free ids. *)
  let next = ref (List.length cells) in
  Array.iteri
    (fun node c ->
      if c = -1 then begin
        cell_of.(node) <- !next;
        incr next
      end)
    cell_of;
  t.cell_of <- Some cell_of

let heal t = t.cell_of <- None

let messages_sent t = t.sent

let messages_delivered t = t.delivered

let messages_dropped t = t.dropped

let bytes_sent t = t.bytes

let in_flight t = t.in_flight
