(* Seed list-scan OSend engine, kept verbatim as the ordering oracle.
   Every delivery rescans the whole pending pool (the O(P)-per-delivery
   behaviour the reverse index in [Causalb_core.Osend] replaces); the
   delivered order it produces is the specification the indexed engine
   must reproduce bit for bit. *)

module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Depgraph = Causalb_graph.Depgraph
module Metrics = Causalb_stackbase.Metrics
module Message = Causalb_core.Message

type 'a t = {
  id : int;
  deliver : 'a Message.t -> unit;
  mutable delivered : Label.Set.t;
  mutable delivered_rev : Label.t list;
  mutable pending_rev : 'a Message.t list;
  graph : Depgraph.t;
  seen : unit Label.Tbl.t; (* every label ever received *)
  metrics : Metrics.t;
}

let create ~id ?(deliver = fun _ -> ()) () =
  {
    id;
    deliver;
    delivered = Label.Set.empty;
    delivered_rev = [];
    pending_rev = [];
    graph = Depgraph.create ();
    seen = Label.Tbl.create 64;
    metrics = Metrics.create ~name:"causal:osend" ();
  }

let id t = t.id

let is_delivered t l = Label.Set.mem l t.delivered

let deliverable t msg =
  Dep.satisfied ~delivered:(fun l -> is_delivered t l) (Message.dep msg)

let do_deliver t msg =
  t.delivered <- Label.Set.add (Message.label msg) t.delivered;
  t.delivered_rev <- Message.label msg :: t.delivered_rev;
  Metrics.on_deliver t.metrics;
  t.deliver msg

(* After a delivery, repeatedly sweep the pending pool: releasing one
   message may satisfy the predicates of others.  The sweep preserves
   arrival order among simultaneously unblocked messages, which keeps the
   engine deterministic given a deterministic transport. *)
let rec drain_pending t =
  let pending = List.rev t.pending_rev in
  let ready, blocked = List.partition (deliverable t) pending in
  if ready <> [] then begin
    t.pending_rev <- List.rev blocked;
    List.iter
      (fun msg ->
        Metrics.on_unbuffer t.metrics;
        do_deliver t msg)
      ready;
    drain_pending t
  end

let receive t msg =
  let l = Message.label msg in
  Metrics.on_receive t.metrics;
  if not (Label.Tbl.mem t.seen l) then begin
    Label.Tbl.add t.seen l ();
    Depgraph.add t.graph l ~dep:(Message.dep msg);
    if deliverable t msg then begin
      do_deliver t msg;
      drain_pending t
    end
    else begin
      Metrics.on_buffer t.metrics;
      t.pending_rev <- msg :: t.pending_rev
    end
  end

let delivered_order t = List.rev t.delivered_rev

let delivered_count t = t.metrics.Metrics.delivered

let pending t = List.rev t.pending_rev

let pending_count t = List.length t.pending_rev

let buffered_ever t = t.metrics.Metrics.forced_waits

let metrics t =
  t.metrics.Metrics.buffered <- List.length t.pending_rev;
  t.metrics

let graph t = t.graph

let blocked_on t =
  let missing = ref Label.Set.empty in
  List.iter
    (fun msg ->
      List.iter
        (fun anc ->
          if not (Label.Tbl.mem t.seen anc) then
            missing := Label.Set.add anc !missing)
        (Dep.ancestors (Message.dep msg)))
    (pending t);
  Label.Set.elements !missing
