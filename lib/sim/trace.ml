type kind = Send | Receive | Deliver | Release | Drop | Mark

type record = {
  time : float;
  node : int;
  kind : kind;
  tag : string;
  info : string;
}

type t = { mutable items : record list; mutable n : int }

let create ?capacity:_ () = { items = []; n = 0 }

let record t ~time ~node ~kind ~tag ?(info = "") () =
  t.items <- { time; node; kind; tag; info } :: t.items;
  t.n <- t.n + 1

let length t = t.n

let events t = List.rev t.items

let filter t p = List.filter p (events t)

let deliveries_at t node =
  filter t (fun r -> r.node = node && r.kind = Deliver)
  |> List.map (fun r -> (r.time, r.tag))

let delivery_order t node = List.map snd (deliveries_at t node)

let find_delivery t ~node ~tag =
  List.find_map
    (fun (time, tg) -> if String.equal tg tag then Some time else None)
    (deliveries_at t node)

let kind_to_string = function
  | Send -> "send"
  | Receive -> "recv"
  | Deliver -> "dlvr"
  | Release -> "rlse"
  | Drop -> "drop"
  | Mark -> "mark"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%10.3f n%d %s %s%s@," r.time r.node
        (kind_to_string r.kind) r.tag
        (if r.info = "" then "" else " " ^ r.info))
    (events t);
  Format.fprintf ppf "@]"
