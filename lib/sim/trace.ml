type kind = Send | Receive | Deliver | Release | Drop | Mark

type record = {
  time : float;
  node : int;
  kind : kind;
  tag : string;
  info : string;
}

(* Records live in a growable array so that scanning a large trace (the
   offline checkers walk every record, often several times) allocates
   nothing: the old reversed-list representation forced a full List.rev
   on every [events] call. *)
type t = { mutable items : record array; mutable n : int }

let dummy = { time = 0.0; node = -1; kind = Send; tag = ""; info = "" }

let create ?(capacity = 64) () =
  { items = Array.make (max 1 capacity) dummy; n = 0 }

let record t ~time ~node ~kind ~tag ?(info = "") () =
  if t.n = Array.length t.items then begin
    let bigger = Array.make (2 * Array.length t.items) dummy in
    Array.blit t.items 0 bigger 0 t.n;
    t.items <- bigger
  end;
  t.items.(t.n) <- { time; node; kind; tag; info };
  t.n <- t.n + 1

let length t = t.n

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Trace.get: index out of range";
  t.items.(i)

let iter t f =
  for i = 0 to t.n - 1 do
    f t.items.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.n - 1 do
    acc := f !acc t.items.(i)
  done;
  !acc

let events t = List.init t.n (fun i -> t.items.(i))

let filter t p =
  List.rev (fold t ~init:[] ~f:(fun acc r -> if p r then r :: acc else acc))

(* Both [Deliver] (causal layer) and [Release] (a total-order layer
   releasing a buffered message, or the stack's application hand-off)
   mark a message reaching the node's application path; surfacing both
   gives checkers and metrics the release->deliver pairing. *)
let deliveries_at t node =
  List.rev
    (fold t ~init:[] ~f:(fun acc r ->
         if r.node = node && (r.kind = Deliver || r.kind = Release) then
           (r.time, r.tag) :: acc
         else acc))

let tags_of_kind t node kind =
  List.rev
    (fold t ~init:[] ~f:(fun acc r ->
         if r.node = node && r.kind = kind then r.tag :: acc else acc))

let delivery_order t node =
  (* The application-visible order: when a total-order layer released
     messages at this node, its [Release] sequence is what the app saw;
     otherwise fall back to the causal [Deliver] sequence. *)
  match tags_of_kind t node Release with
  | [] -> tags_of_kind t node Deliver
  | releases -> releases

let find_delivery t ~node ~tag =
  List.find_map
    (fun (time, tg) -> if String.equal tg tag then Some time else None)
    (deliveries_at t node)

let kind_to_string = function
  | Send -> "send"
  | Receive -> "recv"
  | Deliver -> "dlvr"
  | Release -> "rlse"
  | Drop -> "drop"
  | Mark -> "mark"

let pp_record ppf r =
  Format.fprintf ppf "%10.3f n%d %s %s%s" r.time r.node
    (kind_to_string r.kind) r.tag
    (if r.info = "" then "" else " " ^ r.info)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter t (fun r -> Format.fprintf ppf "%a@," pp_record r);
  Format.fprintf ppf "@]"
