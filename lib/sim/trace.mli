(** Execution traces.

    Engines and protocols append timestamped records; verifiers and the
    experiment harness read them back.  A trace is append-only and cheap
    enough to leave enabled in benchmarks (it is the measurement source,
    not an afterthought).  Records are stored in a growable array, so the
    scan functions ({!iter}, {!fold}) allocate nothing per record — the
    offline checkers of [Causalb_check] walk full bench traces with
    them. *)

type kind =
  | Send        (** message handed to the transport *)
  | Receive     (** message arrived at a node, pre-ordering *)
  | Deliver     (** message released by the causal layer *)
  | Release     (** a total-order layer (or the stack's application
                    hand-off) released a buffered message *)
  | Drop        (** fault injection removed the message *)
  | Mark        (** free-form protocol milestone (stable point, lock grant …) *)

type record = {
  time : float;
  node : int;      (** acting node; [-1] for global events *)
  kind : kind;
  tag : string;    (** message label or milestone name *)
  info : string;   (** free-form detail *)
}

type t

val create : ?capacity:int -> unit -> t

val record : t -> time:float -> node:int -> kind:kind -> tag:string ->
  ?info:string -> unit -> unit

val length : t -> int

val get : t -> int -> record
(** The [i]-th record in recording order.
    @raise Invalid_argument when out of range. *)

val iter : t -> (record -> unit) -> unit
(** Apply to every record in recording order, without materialising the
    record list. *)

val fold : t -> init:'acc -> f:('acc -> record -> 'acc) -> 'acc
(** Fold over records in recording order, without materialising the
    record list. *)

val events : t -> record list
(** In recording order (which equals virtual-time order when produced by
    one engine). *)

val filter : t -> (record -> bool) -> record list

val deliveries_at : t -> int -> (float * string) list
(** [(time, tag)] of every [Deliver] {e and} [Release] at the given node,
    in order.  Total-order layers release buffered messages with a
    separate [Release] record, so a message that passed through one
    appears twice: once when the causal layer delivered it and once when
    the total-order layer released it — the pairing the checkers and the
    layer metrics need. *)

val delivery_order : t -> int -> string list
(** Tags in the order the application saw them at the node: the [Release]
    sequence when the node recorded any (a total-order layer or the stack
    released messages there), otherwise the causal [Deliver] sequence. *)

val find_delivery : t -> node:int -> tag:string -> float option
(** Virtual time at which the node first delivered/released the tagged
    message. *)

val kind_to_string : kind -> string

val pp_record : Format.formatter -> record -> unit

val pp : Format.formatter -> t -> unit
