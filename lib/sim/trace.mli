(** Execution traces.

    Engines and protocols append timestamped records; verifiers and the
    experiment harness read them back.  A trace is append-only and cheap
    enough to leave enabled in benchmarks (it is the measurement source,
    not an afterthought). *)

type kind =
  | Send        (** message handed to the transport *)
  | Receive     (** message arrived at a node, pre-ordering *)
  | Deliver     (** message released to the application *)
  | Release     (** a total-order layer released a buffered message *)
  | Drop        (** fault injection removed the message *)
  | Mark        (** free-form protocol milestone (stable point, lock grant …) *)

type record = {
  time : float;
  node : int;      (** acting node; [-1] for global events *)
  kind : kind;
  tag : string;    (** message label or milestone name *)
  info : string;   (** free-form detail *)
}

type t

val create : ?capacity:int -> unit -> t

val record : t -> time:float -> node:int -> kind:kind -> tag:string ->
  ?info:string -> unit -> unit

val length : t -> int

val events : t -> record list
(** In recording order (which equals virtual-time order when produced by
    one engine). *)

val filter : t -> (record -> bool) -> record list

val deliveries_at : t -> int -> (float * string) list
(** [(time, tag)] of every [Deliver] at the given node, in order. *)

val delivery_order : t -> int -> string list

val find_delivery : t -> node:int -> tag:string -> float option
(** Virtual time at which the node delivered the tagged message. *)

val kind_to_string : kind -> string

val pp : Format.formatter -> t -> unit
