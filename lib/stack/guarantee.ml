(* The ordering-guarantee chain. Rank encodes the lattice order; keep the
   constructors in ascending rank so [compare] and [leq] agree. *)

type t = Unordered | Fifo | Causal | Causal_total

let rank = function
  | Unordered -> 0
  | Fifo -> 1
  | Causal -> 2
  | Causal_total -> 3

let leq a b = rank a <= rank b

let join a b = if rank a >= rank b then a else b

let meet a b = if rank a <= rank b then a else b

let bot = Unordered

let top = Causal_total

let compare a b = Int.compare (rank a) (rank b)

let equal a b = rank a = rank b

let to_string = function
  | Unordered -> "unordered"
  | Fifo -> "fifo"
  | Causal -> "causal"
  | Causal_total -> "causal-total"

let of_string s =
  match String.lowercase_ascii s with
  | "unordered" -> Some Unordered
  | "fifo" -> Some Fifo
  | "causal" -> Some Causal
  | "causal-total" | "causal_total" | "total" -> Some Causal_total
  | _ -> None

let pp ppf g = Format.pp_print_string ppf (to_string g)
