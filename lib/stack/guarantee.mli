(** The ordering-guarantee lattice.

    Every delivery pipeline the stack can compose sits somewhere on one
    axis: how much of the causal order of §3 it promises the application.
    The four points form a chain

    {v Unordered ⊑ Fifo ⊑ Causal ⊑ Causal_total v}

    — each guarantee subsumes the ones below it (a causally ordered
    delivery is in particular per-sender FIFO; a causal {e total} order
    is in particular causal).  Layers declare what they {!require} from
    the composition below and what they {e provide} above
    ({!Causalb_stack.Layer.S}), and the static verifier
    ([causalb.analysis]) folds a pipeline bottom-up through this
    lattice: a layer whose requirement is not met by the guarantee
    available below it is a composition bug caught before any message is
    sent.

    The chain is also how workload demands are expressed: the causal-race
    lint computes the {e minimal} guarantee under which a workload's
    non-commuting operation pairs are all arbitrated identically at every
    member, and that demand is compared against the top of the stack. *)

type t =
  | Unordered     (** bare transport: no ordering promise at all *)
  | Fifo          (** per-sender FIFO: one sender's messages arrive in
                      send order, senders mutually unordered *)
  | Causal        (** causal order: every delivery respects the message
                      dependency relation [R(M)] (vector-clock potential
                      causality for BSS, explicit [Occurs_After]
                      predicates for OSend/Psync) *)
  | Causal_total  (** causal {e and} identical total order at every
                      member (merge / counted batch / sequencer) *)

val leq : t -> t -> bool
(** [leq a b] iff [a ⊑ b]: every delivery satisfying [b] also satisfies
    [a].  A total order on this lattice (it is a chain). *)

val join : t -> t -> t
(** Least upper bound — the guarantee of a pipeline stage that enforces
    both arguments. *)

val meet : t -> t -> t
(** Greatest lower bound — what survives when either ordering may be the
    one that applies. *)

val bot : t
(** [Unordered], the lattice bottom. *)

val top : t
(** [Causal_total], the lattice top. *)

val compare : t -> t -> int
(** The chain order; consistent with {!leq}. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Stable machine-readable name: ["unordered"], ["fifo"], ["causal"],
    ["causal-total"]. *)

val of_string : string -> t option
(** Inverse of {!to_string} (case-insensitive); [None] on anything else. *)

val pp : Format.formatter -> t -> unit
