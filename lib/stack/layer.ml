module Metrics = Causalb_stackbase.Metrics

module Guarantee = Causalb_stackbase.Guarantee

module type S = sig
  type t

  type below

  type above

  val receive : t -> below -> unit

  val metrics : t -> Metrics.t

  val provides : Guarantee.t

  val requires : Guarantee.t
end

module type PAYLOAD = sig
  type t
end

module Fifo_layer (P : PAYLOAD) = struct
  module Fifo = Causalb_core.Fifo

  type t = P.t Fifo.member

  type below = P.t Fifo.envelope

  type above = P.t Fifo.envelope

  let receive = Fifo.receive

  let metrics = Fifo.metrics

  let provides = Fifo.provides

  let requires = Fifo.requires
end

module Bss_layer (P : PAYLOAD) = struct
  module Bss = Causalb_core.Bss

  type t = P.t Bss.member

  type below = P.t Bss.envelope

  type above = P.t Bss.envelope

  let receive = Bss.receive

  let metrics = Bss.metrics

  let provides = Bss.provides

  let requires = Bss.requires
end

module Osend_layer (P : PAYLOAD) = struct
  module Osend = Causalb_core.Osend

  type t = P.t Osend.t

  type below = P.t Causalb_core.Message.t

  type above = P.t Causalb_core.Message.t

  let receive = Osend.receive

  let metrics = Osend.metrics

  let provides = Osend.provides

  let requires = Osend.requires
end

module Merge_layer (P : PAYLOAD) = struct
  module Asend = Causalb_core.Asend

  type t = P.t Asend.Merge.t

  type below = P.t Causalb_core.Message.t

  type above = P.t Causalb_core.Message.t

  let receive = Asend.Merge.on_causal_deliver

  let metrics = Asend.Merge.metrics

  let provides = Asend.Merge.provides

  let requires = Asend.Merge.requires
end

module Counted_layer (P : PAYLOAD) = struct
  module Asend = Causalb_core.Asend

  type t = P.t Asend.Counted.t

  type below = P.t Causalb_core.Message.t

  type above = P.t Causalb_core.Message.t

  let receive = Asend.Counted.on_causal_deliver

  let metrics = Asend.Counted.metrics

  let provides = Asend.Counted.provides

  let requires = Asend.Counted.requires
end
