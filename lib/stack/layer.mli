(** The common shape of an ordering-stack layer.

    Every stage of a composed delivery pipeline — per-sender FIFO, a
    causal broadcast engine, an interposed total-order function — is the
    same kind of object: it {e receives} envelopes from the layer below in
    whatever order they arrive, holds back the ones whose ordering
    constraint is not yet satisfied, and {e delivers} the rest to the
    layer above.  {!S} names that shape once, so the engines in
    [Causalb_core] are interchangeable parts rather than five bespoke
    state machines.

    Delivery-to-above is a callback fixed at construction time (each
    engine's [create] takes a [deliver] function); it cannot be part of
    {!S} because construction arguments differ per engine (group size,
    batch size, sync predicate …).  What {e is} uniform:

    {ul
    {- [receive] — hand the layer one envelope from below;}
    {- [metrics] — the uniform {!Metrics.t} counters every layer keeps
       (received / delivered / forced waits / currently buffered).}}

    Trace integration is uniform too, but lives above the engines: the
    stack records a {!Causalb_sim.Trace.Release} event each time the top
    layer hands a message to the application, and the transport records
    [Send]/[Receive]/[Drop] — so a trace shows one line per layer
    crossing without the engines knowing about traces.

    The functors below prove, by ascription, that each core engine
    implements the signature.  [Stack.compose] does not go through them —
    it wires the concrete engines directly so the standalone APIs keep
    working — but they are the contract new layers must meet. *)

module Metrics := Causalb_stackbase.Metrics
module Guarantee := Causalb_stackbase.Guarantee

module type S = sig
  type t

  type below
  (** What arrives from the layer below. *)

  type above
  (** What this layer releases to the layer above. *)

  val receive : t -> below -> unit
  (** Receive-from-below.  May synchronously deliver any number of
      messages (including previously buffered ones) to the layer above
      via the construction-time callback. *)

  val metrics : t -> Metrics.t
  (** The layer's uniform counters.  Gauges are refreshed on read. *)

  val provides : Guarantee.t
  (** The ordering guarantee this layer's releases satisfy, given that
      its requirement below is met. *)

  val requires : Guarantee.t
  (** The minimum guarantee the composition below must already provide
      for [provides] to hold.  The static verifier
      ([Causalb_analysis.Stack_verify]) folds a pipeline bottom-up and
      rejects any layer whose requirement exceeds what is available
      beneath it. *)
end

module type PAYLOAD = sig
  type t
end

(** Per-sender FIFO ordering over raw transport. *)
module Fifo_layer (P : PAYLOAD) :
  S
    with type t = P.t Causalb_core.Fifo.member
     and type below = P.t Causalb_core.Fifo.envelope
     and type above = P.t Causalb_core.Fifo.envelope

(** Vector-clock (BSS) causal ordering. *)
module Bss_layer (P : PAYLOAD) :
  S
    with type t = P.t Causalb_core.Bss.member
     and type below = P.t Causalb_core.Bss.envelope
     and type above = P.t Causalb_core.Bss.envelope

(** Explicit-dependency (OSend) causal ordering; also the engine under
    Psync conversations. *)
module Osend_layer (P : PAYLOAD) :
  S
    with type t = P.t Causalb_core.Osend.t
     and type below = P.t Causalb_core.Message.t
     and type above = P.t Causalb_core.Message.t

(** Sync-anchored deterministic merge (ASend, §5.2) over causal
    deliveries. *)
module Merge_layer (P : PAYLOAD) :
  S
    with type t = P.t Causalb_core.Asend.Merge.t
     and type below = P.t Causalb_core.Message.t
     and type above = P.t Causalb_core.Message.t

(** Count-closed deterministic merge over causal deliveries. *)
module Counted_layer (P : PAYLOAD) :
  S
    with type t = P.t Causalb_core.Asend.Counted.t
     and type below = P.t Causalb_core.Message.t
     and type above = P.t Causalb_core.Message.t
