module Stats = Causalb_util.Stats

type t = {
  name : string;
  mutable received : int;
  mutable delivered : int;
  mutable forced_waits : int;
  mutable buffered : int;
  mutable wire_bytes : int;
  mutable control_bytes : int;
  mutable payload_bytes : int;
  latency : Stats.t;
}

let create ?(name = "layer") () =
  {
    name;
    received = 0;
    delivered = 0;
    forced_waits = 0;
    buffered = 0;
    wire_bytes = 0;
    control_bytes = 0;
    payload_bytes = 0;
    latency = Stats.create ();
  }

let on_receive t = t.received <- t.received + 1

let on_deliver ?dt t =
  t.delivered <- t.delivered + 1;
  match dt with Some dt -> Stats.add t.latency dt | None -> ()

let on_buffer t =
  t.forced_waits <- t.forced_waits + 1;
  t.buffered <- t.buffered + 1

let on_unbuffer t = t.buffered <- t.buffered - 1

let on_wire t n = t.wire_bytes <- t.wire_bytes + n

(* The split charge keeps [wire_bytes] as the sum, so a consumer that
   only knows the v3 field reconciles: wire = control + payload + any
   unsplit [on_wire] charges. *)
let on_wire_split t ~control ~payload =
  t.control_bytes <- t.control_bytes + control;
  t.payload_bytes <- t.payload_bytes + payload;
  t.wire_bytes <- t.wire_bytes + control + payload

let per_delivery t bytes =
  if t.delivered = 0 then Float.nan
  else float_of_int bytes /. float_of_int t.delivered

let bytes_per_delivery t = per_delivery t t.wire_bytes

let control_bytes_per_delivery t = per_delivery t t.control_bytes

let payload_bytes_per_delivery t = per_delivery t t.payload_bytes

let snapshot ~name ?(received = 0) ?(delivered = 0) ?(forced_waits = 0)
    ?(buffered = 0) ?(wire_bytes = 0) ?(control_bytes = 0)
    ?(payload_bytes = 0) ?latency () =
  {
    name;
    received;
    delivered;
    forced_waits;
    buffered;
    wire_bytes;
    control_bytes;
    payload_bytes;
    latency = (match latency with Some s -> s | None -> Stats.create ());
  }

let combine ?latency ~name parts =
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 parts in
  let latency =
    match latency with
    | Some s -> s
    | None ->
      List.fold_left
        (fun acc p -> Stats.merge acc p.latency)
        (Stats.create ()) parts
  in
  {
    name;
    received = sum (fun p -> p.received);
    delivered = sum (fun p -> p.delivered);
    forced_waits = sum (fun p -> p.forced_waits);
    buffered = sum (fun p -> p.buffered);
    wire_bytes = sum (fun p -> p.wire_bytes);
    control_bytes = sum (fun p -> p.control_bytes);
    payload_bytes = sum (fun p -> p.payload_bytes);
    latency;
  }

let columns = [ "layer"; "recv"; "dlvr"; "waits"; "held"; "p50"; "p95" ]

let fmt_latency v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v

let row t =
  [
    t.name;
    string_of_int t.received;
    string_of_int t.delivered;
    string_of_int t.forced_waits;
    string_of_int t.buffered;
    fmt_latency (Stats.percentile t.latency 50.0);
    fmt_latency (Stats.percentile t.latency 95.0);
  ]

let pp ppf t =
  Format.fprintf ppf
    "@[<h>%s: recv=%d dlvr=%d waits=%d held=%d p50=%s p95=%s@]" t.name
    t.received t.delivered t.forced_waits t.buffered
    (fmt_latency (Stats.percentile t.latency 50.0))
    (fmt_latency (Stats.percentile t.latency 95.0))
