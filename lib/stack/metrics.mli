(** Uniform per-layer delivery metrics for the ordering stack.

    Every layer of a composed pipeline — transport, causal broadcast,
    interposed total-order layer — exposes one {!t}, so an experiment can
    report the same four columns for any composition: how much the layer
    received from below, how much it released above, how often an arrival
    was forced to wait, and how long messages spent between entering the
    pipeline and leaving the layer.

    The counter fields are updated by the delivery engines themselves
    (they are the source of truth for forced waits); the [latency]
    accumulator is fed by whichever component knows the virtual clock —
    standalone engines leave it empty, {!Causalb_stack.Stack} fills it. *)

module Stats := Causalb_util.Stats

type t = {
  name : string;  (** layer name, e.g. ["causal:bss"] *)
  mutable received : int;
      (** messages handed to the layer from the layer below *)
  mutable delivered : int;
      (** messages released to the layer above (or the application) *)
  mutable forced_waits : int;
      (** arrivals that could not be released immediately and had to
          buffer — the T6 counter, uniform across engines *)
  mutable buffered : int;  (** currently held by the layer *)
  mutable wire_bytes : int;
      (** encoded bytes this layer moved over the wire — fed by the
          framed delivery path ({!Causalb_core.Fgroup}); zero for
          in-memory groups, which never serialize.  Always the sum of
          {!field-control_bytes}, {!field-payload_bytes}, and any
          unsplit {!on_wire} charges, so pre-split consumers reconcile *)
  mutable control_bytes : int;
      (** the metadata share of [wire_bytes]: headers, stamps, causal
          barriers — O(n) per copy for vector-clock engines, O(1) for
          PC-broadcast.  The headline axis of the scaling bench *)
  mutable payload_bytes : int;
      (** the application-data share of [wire_bytes] *)
  latency : Stats.t;
      (** per-message time from pipeline entry to release by this layer *)
}

val create : ?name:string -> unit -> t

val on_receive : t -> unit

val on_deliver : ?dt:float -> t -> unit
(** Count a release; [dt], when known, is added to {!field-latency}. *)

val on_buffer : t -> unit
(** Count a forced wait and raise the buffered gauge. *)

val on_unbuffer : t -> unit
(** Lower the buffered gauge when a parked message is released. *)

val on_wire : t -> int -> unit
(** Charge [n] encoded bytes to the layer (one frame length per
    delivered copy on the framed path).  Unsplit: the bytes land in
    [wire_bytes] only.  Prefer {!on_wire_split} where the frame layout
    is known. *)

val on_wire_split : t -> control:int -> payload:int -> unit
(** Charge one copy's bytes split into metadata and application data.
    [wire_bytes] receives the sum, so v3 consumers of the lumped
    counter keep reconciling. *)

val bytes_per_delivery : t -> float
(** [wire_bytes / delivered] — the metadata-cost-per-delivery figure of
    the scaling bench; NaN before the first delivery. *)

val control_bytes_per_delivery : t -> float
(** [control_bytes / delivered]: the O(n)-vs-O(1) scaling axis — what
    BENCH schema v4 plots per member count.  NaN before the first
    delivery. *)

val payload_bytes_per_delivery : t -> float
(** [payload_bytes / delivered]; NaN before the first delivery. *)

val snapshot :
  name:string ->
  ?received:int ->
  ?delivered:int ->
  ?forced_waits:int ->
  ?buffered:int ->
  ?wire_bytes:int ->
  ?control_bytes:int ->
  ?payload_bytes:int ->
  ?latency:Stats.t ->
  unit ->
  t
(** A free-standing view built from externally maintained counters (used
    for the transport layer, whose counters live in [Net]). *)

val combine : ?latency:Stats.t -> name:string -> t list -> t
(** Sum the counters of several per-member metrics into one per-layer
    view.  Latency samples of the inputs are pooled unless a pre-pooled
    [latency] accumulator is supplied. *)

val row : t -> string list
(** [name; received; delivered; forced_waits; buffered; p50; p95] cells
    for table rendering. *)

val columns : string list
(** Header matching {!row}. *)

val pp : Format.formatter -> t -> unit
