module Net = Causalb_net.Net

type ('m, 'w) t = { net : 'w Net.t; members : 'm array }

let create net ~member ~receive =
  let members = Array.init (Net.nodes net) member in
  Array.iteri
    (fun node m -> Net.set_handler net node (fun ~src:_ w -> receive m w))
    members;
  { net; members }

let net t = t.net

let engine t = Net.engine t.net

let size t = Array.length t.members

let member t i = t.members.(i)

let members t = t.members

let fold f acc t = Array.fold_left f acc t.members

let mapi f t = List.init (size t) (fun i -> f i t.members.(i))
