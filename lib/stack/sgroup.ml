module Net = Causalb_net.Net

type ('m, 'w) t = {
  net : 'w Net.t;
  mutable members : 'm array;
  make : int -> 'm;
  install : ('m, 'w) t -> int -> unit;
}

let install_plain receive t node =
  Net.set_handler t.net node (fun ~src:_ w -> receive t.members.(node) w)

let install_routed receive t node =
  Net.set_handler t.net node (fun ~src w -> receive t.members.(node) ~src w)

let build net ~member ~install =
  let t = { net; members = [||]; make = member; install } in
  t.members <- Array.init (Net.nodes net) member;
  Array.iteri (fun node _ -> install t node) t.members;
  t

let create net ~member ~receive = build net ~member ~install:(install_plain receive)

let create_routed net ~member ~receive =
  build net ~member ~install:(install_routed receive)

let join t =
  let id = Net.add_node t.net in
  let m = t.make id in
  let members = Array.make (id + 1) m in
  Array.blit t.members 0 members 0 (Array.length t.members);
  t.members <- members;
  t.install t id;
  id

let leave t node = Net.remove_node t.net node

let net t = t.net

let engine t = Net.engine t.net

let size t = Array.length t.members

let member t i = t.members.(i)

let members t = t.members

let fold f acc t = Array.fold_left f acc t.members

let mapi f t = List.init (size t) (fun i -> f i t.members.(i))
