(** Generic group wiring over the simulated network.

    Every ordering engine in this repository used to repeat the same
    dance: make one member per network node, close its delivery callback
    over the node id and the virtual clock, and install a [Net] handler
    routing arrivals into that member.  [Sgroup] is that dance, written
    once, polymorphic in both the per-member state ['m] and the wire
    envelope ['w].  The per-protocol [Group] wrappers in
    [Causalb_core.{Fifo,Bss,Group,Psync}] and the pipeline builder in
    [Causalb_stack.Stack] all delegate here. *)

module Net := Causalb_net.Net

type ('m, 'w) t

val create :
  'w Net.t -> member:(int -> 'm) -> receive:('m -> 'w -> unit) -> ('m, 'w) t
(** [create net ~member ~receive] builds one member per node with
    [member node] and installs [receive] as that node's network handler.
    The network must not have other handlers on those nodes. *)

val create_routed :
  'w Net.t ->
  member:(int -> 'm) ->
  receive:('m -> src:int -> 'w -> unit) ->
  ('m, 'w) t
(** Like {!create} but the handler keeps the sender id.  Link-oriented
    engines (PC-broadcast) need it: which link a copy arrived on decides
    flooding fan-out and π_lock buffering. *)

val join : ('m, 'w) t -> int
(** Register a fresh network endpoint ({!Net.add_node}), build its
    member with the factory [create] captured, install its handler, and
    return the new node id.  {!size} grows by one. *)

val leave : ('m, 'w) t -> int -> unit
(** Retire a member's endpoint ({!Net.remove_node}).  The member value
    stays in {!members} with its state frozen — departed ids are never
    reused, so accessors keep working for post-mortem inspection. *)

val net : ('m, 'w) t -> 'w Net.t

val engine : ('m, 'w) t -> Causalb_sim.Engine.t

val size : ('m, 'w) t -> int

val member : ('m, 'w) t -> int -> 'm

val members : ('m, 'w) t -> 'm array
(** The underlying array — do not mutate. *)

val fold : ('acc -> 'm -> 'acc) -> 'acc -> ('m, 'w) t -> 'acc

val mapi : (int -> 'm -> 'b) -> ('m, 'w) t -> 'b list
