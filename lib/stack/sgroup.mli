(** Generic group wiring over the simulated network.

    Every ordering engine in this repository used to repeat the same
    dance: make one member per network node, close its delivery callback
    over the node id and the virtual clock, and install a [Net] handler
    routing arrivals into that member.  [Sgroup] is that dance, written
    once, polymorphic in both the per-member state ['m] and the wire
    envelope ['w].  The per-protocol [Group] wrappers in
    [Causalb_core.{Fifo,Bss,Group,Psync}] and the pipeline builder in
    [Causalb_stack.Stack] all delegate here. *)

module Net := Causalb_net.Net

type ('m, 'w) t

val create :
  'w Net.t -> member:(int -> 'm) -> receive:('m -> 'w -> unit) -> ('m, 'w) t
(** [create net ~member ~receive] builds one member per node with
    [member node] and installs [receive] as that node's network handler.
    The network must not have other handlers on those nodes. *)

val net : ('m, 'w) t -> 'w Net.t

val engine : ('m, 'w) t -> Causalb_sim.Engine.t

val size : ('m, 'w) t -> int

val member : ('m, 'w) t -> int -> 'm

val members : ('m, 'w) t -> 'm array
(** The underlying array — do not mutate. *)

val fold : ('acc -> 'm -> 'acc) -> 'acc -> ('m, 'w) t -> 'acc

val mapi : (int -> 'm -> 'b) -> ('m, 'w) t -> 'b list
