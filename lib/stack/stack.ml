module Engine = Causalb_sim.Engine
module Latency = Causalb_sim.Latency
module Trace = Causalb_sim.Trace
module Net = Causalb_net.Net
module Label = Causalb_graph.Label
module Dep = Causalb_graph.Dep
module Vc = Causalb_clock.Vector_clock
module Stats = Causalb_util.Stats
module Fifo = Causalb_core.Fifo
module Bss = Causalb_core.Bss
module Psync = Causalb_core.Psync
module Osend = Causalb_core.Osend
module Ogroup = Causalb_core.Group
module Asend = Causalb_core.Asend
module Message = Causalb_core.Message
module Pcbcast = Causalb_core.Pcbcast

module Metrics = Causalb_stackbase.Metrics

(* The one generic group wrapper the per-engine [Group] modules now share. *)
module Group = Causalb_stackbase.Sgroup

type ordering = Fifo | Bss | Psync | Osend | Pc

type 'a total =
  | Pass
  | Merge of ('a Message.t -> bool)
  | Counted of int
  | Sequencer of { node : int }

type 'a total_member =
  | T_pass
  | T_merge of 'a Asend.Merge.t
  | T_counted of 'a Asend.Counted.t

type 'a impl =
  | I_fifo of 'a Fifo.Group.t
  | I_bss of 'a Bss.Group.t
  | I_psync of 'a Psync.t
  | I_osend of {
      group : 'a Ogroup.t;
      sequencer : 'a Asend.Sequencer.t option;
    }
  | I_pc of 'a Pcbcast.Group.t

type 'a t = {
  engine : Engine.t;
  nodes : int;
  transport_fifo : bool;
  impl : 'a impl;
  totals : 'a total_member array;
  total_name : string option; (* merge/counted row name; None when absent *)
  send_time : float Label.Tbl.t;
  causal_latency : Stats.t; (* submit/broadcast -> causal delivery *)
  total_latency : Stats.t;  (* submit/broadcast -> total-order release *)
  app_rev : Label.t list array; (* release order per node, reversed *)
  app_count : int array; (* length of app_rev, maintained on release *)
  on_deliver : node:int -> time:float -> 'a Message.t -> unit;
  trace : Trace.t option;
  seqs : int array; (* label mirror for engines with internal counters *)
  net_stats : unit -> int * int * int; (* sent, delivered, in_flight *)
  do_partition : int list list -> unit;
  do_heal : unit -> unit;
  do_set_fault : Causalb_net.Fault.t -> unit;
  do_lost : unit -> int; (* copies dropped by partition + injected loss *)
}

let ordering_name = function
  | Fifo -> "causal:fifo"
  | Bss -> "causal:bss"
  | Psync -> "causal:psync"
  | Osend -> "causal:osend"
  | Pc -> "causal:pc"

(* --- delivery path ------------------------------------------------- *)

let record_latency tbl stats ~time label =
  match Label.Tbl.find_opt tbl label with
  | Some t0 -> Stats.add stats (time -. t0)
  | None -> ()

let release t ~node ~time msg =
  let label = Message.label msg in
  t.app_rev.(node) <- label :: t.app_rev.(node);
  t.app_count.(node) <- t.app_count.(node) + 1;
  (match t.trace with
  | Some tr ->
    Trace.record tr ~time ~node ~kind:Trace.Release
      ~tag:(Label.to_string label) ()
  | None -> ());
  t.on_deliver ~node ~time msg

let causal_deliver t ~node ~time msg =
  record_latency t.send_time t.causal_latency ~time (Message.label msg);
  (* The OSend group records its own [Deliver] events; the other causal
     layers do not, so the stack records them here — every composition
     then produces the same trace shape for the offline checkers. *)
  (match (t.trace, t.impl) with
  | Some tr, (I_fifo _ | I_bss _ | I_psync _ | I_pc _) ->
    Trace.record tr ~time ~node ~kind:Trace.Deliver
      ~tag:(Label.to_string (Message.label msg)) ()
  | _ -> ());
  match t.totals.(node) with
  | T_pass -> release t ~node ~time msg
  | T_merge m -> Asend.Merge.on_causal_deliver m msg
  | T_counted c -> Asend.Counted.on_causal_deliver c msg

(* --- construction --------------------------------------------------- *)

let compose ?(ordering = Osend) ?(total = Pass) ?(latency = Latency.lan)
    ?(fifo = true) ?fault ?trace
    ?(on_deliver = fun ~node:_ ~time:_ _ -> ()) engine ~nodes () =
  (match (total, ordering) with
  | Sequencer _, (Fifo | Bss | Psync | Pc) ->
    invalid_arg
      "Stack.compose: a sequencer needs the explicit-dependency causal \
       layer (ordering = Osend)"
  | Sequencer { node }, Osend when node < 0 || node >= nodes ->
    invalid_arg "Stack.compose: sequencer node out of range"
  | _ -> ());
  (* Knot: engine callbacks close over the stack record via this cell.
     Nothing fires before [compose] returns — network events only run
     inside [Engine.run], and submissions come later. *)
  let self = ref None in
  let this () =
    match !self with Some t -> t | None -> assert false
  in
  let dispatch ~node ~time msg = causal_deliver (this ()) ~node ~time msg in
  let total_release node msg =
    let t = this () in
    let time = Engine.now t.engine in
    record_latency t.send_time t.total_latency ~time (Message.label msg);
    release t ~node ~time msg
  in
  let totals =
    Array.init nodes (fun node ->
        match total with
        | Pass | Sequencer _ -> T_pass
        | Merge is_sync ->
          T_merge
            (Asend.Merge.create ~is_sync ~deliver:(total_release node) ())
        | Counted batch_size ->
          T_counted
            (Asend.Counted.create ~batch_size ~deliver:(total_release node)
               ()))
  in
  let total_name =
    match total with
    | Pass -> None
    | Merge _ -> Some "total:merge"
    | Counted _ -> Some "total:counted"
    | Sequencer _ -> Some "total:sequencer"
  in
  let send_time = Label.Tbl.create 256 in
  let make_net () = Net.create engine ~nodes ~latency ~fifo ?fault ?trace () in
  let net_closures net =
    ( (fun () ->
        (Net.messages_sent net, Net.messages_delivered net, Net.in_flight net)),
      (fun cells -> Net.partition net cells),
      (fun () -> Net.heal net),
      (fun f -> Net.set_fault net f),
      fun () -> Net.lost_copies net )
  in
  (* Keep creation order identical to the standalone drivers — net first
     (forks the engine RNG), then the group, then an optional sequencer
     (forks again) — so a stack run consumes the same random stream as the
     pre-stack code on the same seed. *)
  let impl, (net_stats, do_partition, do_heal, do_set_fault, do_lost) =
    match ordering with
    | Fifo ->
      let net = make_net () in
      let g =
        Fifo.Group.create net
          ~on_deliver:(fun ~node ~time (e : _ Fifo.envelope) ->
            let name = if e.Fifo.tag = "" then None else Some e.Fifo.tag in
            let label =
              Label.make ?name ~origin:e.Fifo.sender ~seq:e.Fifo.seq ()
            in
            dispatch ~node ~time
              (Message.make ~label ~sender:e.Fifo.sender ~dep:Dep.null
                 e.Fifo.payload))
          ()
      in
      (I_fifo g, net_closures net)
    | Bss ->
      let net = make_net () in
      let g =
        Bss.Group.create net
          ~on_deliver:(fun ~node ~time (e : _ Bss.envelope) ->
            let name = if e.Bss.tag = "" then None else Some e.Bss.tag in
            (* the sender's own stamp component counts its sends, so the
               0-based sequence number is one below it *)
            let seq = Vc.get e.Bss.stamp e.Bss.sender - 1 in
            let label = Label.make ?name ~origin:e.Bss.sender ~seq () in
            dispatch ~node ~time
              (Message.make ~label ~sender:e.Bss.sender ~dep:Dep.null
                 e.Bss.payload))
          ()
      in
      (I_bss g, net_closures net)
    | Psync ->
      let net = make_net () in
      let p = Psync.create net ~on_deliver:dispatch () in
      (I_psync p, net_closures net)
    | Osend ->
      let net = make_net () in
      let group =
        Ogroup.create net ?trace
          ~on_send:(fun ~time label -> Label.Tbl.replace send_time label time)
          ~on_deliver:dispatch ()
      in
      let sequencer =
        match total with
        | Sequencer { node } ->
          Some (Asend.Sequencer.create group ~node ~submit_latency:latency ())
        | _ -> None
      in
      (I_osend { group; sequencer }, net_closures net)
    | Pc ->
      let net = make_net () in
      let g =
        Pcbcast.Group.create net
          ~on_deliver:(fun ~node ~time (e : _ Pcbcast.envelope) ->
            (* fires for App bodies only; static stacks never carry
               control traffic, so this covers every causal delivery *)
            match e.Pcbcast.body with
            | Pcbcast.Ctrl _ -> ()
            | Pcbcast.App payload ->
              let name =
                if e.Pcbcast.tag = "" then None else Some e.Pcbcast.tag
              in
              let label =
                Label.make ?name ~origin:e.Pcbcast.origin ~seq:e.Pcbcast.seq
                  ()
              in
              dispatch ~node ~time
                (Message.make ~label ~sender:e.Pcbcast.origin ~dep:Dep.null
                   payload))
          ()
      in
      (I_pc g, net_closures net)
  in
  let t =
    {
      engine;
      nodes;
      transport_fifo = fifo;
      impl;
      totals;
      total_name;
      send_time;
      causal_latency = Stats.create ();
      total_latency = Stats.create ();
      app_rev = Array.make nodes [];
      app_count = Array.make nodes 0;
      on_deliver;
      trace;
      seqs = Array.make nodes 0;
      net_stats;
      do_partition;
      do_heal;
      do_set_fault;
      do_lost;
    }
  in
  self := Some t;
  t

(* --- sending -------------------------------------------------------- *)

let submit t ~src ?name ?(dep = Dep.null) payload =
  if src < 0 || src >= t.nodes then
    invalid_arg "Stack.submit: src out of range";
  let now = Engine.now t.engine in
  let fresh_label () =
    let seq = t.seqs.(src) in
    t.seqs.(src) <- seq + 1;
    Label.make ?name ~origin:src ~seq ()
  in
  match t.impl with
  | I_fifo g ->
    (* FIFO and BSS infer ordering themselves; an explicit [dep] is
       ignored, as for any layer that does not read predicates. *)
    let label = fresh_label () in
    Label.Tbl.replace t.send_time label now;
    Fifo.Group.bcast g ~src ?tag:name payload;
    Some label
  | I_bss g ->
    let label = fresh_label () in
    Label.Tbl.replace t.send_time label now;
    Bss.Group.bcast g ~src ?tag:name payload;
    Some label
  | I_pc g ->
    let label = fresh_label () in
    Label.Tbl.replace t.send_time label now;
    (* the group's internal counter mirrors [t.seqs]: both 0-based,
       both bumped once per submit, so its label equals [label] *)
    ignore (Pcbcast.Group.bcast g ~src ?tag:name payload);
    Some label
  | I_psync p ->
    let label = Psync.send p ~src ?name payload in
    Label.Tbl.replace t.send_time label now;
    Some label
  | I_osend { group; sequencer = None } ->
    Some (Ogroup.osend group ~src ?name ~dep payload)
  | I_osend { sequencer = Some s; _ } ->
    (* The label is allocated by the sequencer when it broadcasts, after
       the submission hop; delivery reports it via [on_deliver]. *)
    Asend.Sequencer.asend s ~src ?name payload;
    None

let run t = Engine.run t.engine

(* --- inspection ----------------------------------------------------- *)

let engine t = t.engine

let size t = t.nodes

let delivered_order t node = List.rev t.app_rev.(node)

let all_delivered_orders t =
  List.init t.nodes (fun node -> delivered_order t node)

let delivered_count t node = t.app_count.(node)

let messages_sent t =
  let sent, _, _ = t.net_stats () in
  sent

let blocked_on t node =
  match t.impl with
  | I_fifo _ | I_bss _ | I_pc _ -> []
  | I_psync p -> Osend.blocked_on (Psync.member p node)
  | I_osend { group; _ } -> Osend.blocked_on (Ogroup.member group node)

let osend_group t =
  match t.impl with
  | I_osend { group; _ } -> Some group
  | I_fifo _ | I_bss _ | I_psync _ | I_pc _ -> None

let graph t =
  match t.impl with
  | I_psync p -> Some (Osend.graph (Psync.member p 0))
  | I_osend { group; _ } -> Some (Osend.graph (Ogroup.member group 0))
  | I_pc g -> Some (Pcbcast.Group.graph g)
  | I_fifo _ | I_bss _ -> None

let partition t cells = t.do_partition cells

let heal t = t.do_heal ()

let set_fault t fault = t.do_set_fault fault

let lost_copies t = t.do_lost ()

let install_nemesis t schedule =
  Causalb_net.Nemesis.install ~engine:t.engine ~partition:t.do_partition
    ~heal:t.do_heal ~set_fault:t.do_set_fault schedule

let metrics t =
  let sent, delivered, in_flight = t.net_stats () in
  let transport =
    Metrics.snapshot ~name:"transport" ~received:sent ~delivered
      ~buffered:in_flight ()
  in
  let per_member f = List.init t.nodes f in
  let causal =
    match t.impl with
    | I_fifo g ->
      Metrics.combine ~latency:t.causal_latency ~name:"causal:fifo"
        (per_member (fun i -> Fifo.metrics (Fifo.Group.member g i)))
    | I_bss g ->
      Metrics.combine ~latency:t.causal_latency ~name:"causal:bss"
        (per_member (fun i -> Bss.metrics (Bss.Group.member g i)))
    | I_psync p ->
      Metrics.combine ~latency:t.causal_latency ~name:"causal:psync"
        (per_member (fun i -> Psync.metrics p i))
    | I_osend { group; _ } ->
      Metrics.combine ~latency:t.causal_latency ~name:"causal:osend"
        (per_member (fun i -> Osend.metrics (Ogroup.member group i)))
    | I_pc g ->
      Metrics.combine ~latency:t.causal_latency ~name:"causal:pc"
        (per_member (fun i -> Pcbcast.metrics (Pcbcast.Group.member g i)))
  in
  let total =
    match t.impl with
    | I_osend { sequencer = Some s; _ } -> [ Asend.Sequencer.metrics s ]
    | _ -> (
      let parts =
        Array.to_list t.totals
        |> List.filter_map (function
             | T_pass -> None
             | T_merge m -> Some (Asend.Merge.metrics m)
             | T_counted c -> Some (Asend.Counted.metrics c))
      in
      match (parts, t.total_name) with
      | [], _ | _, None -> []
      | parts, Some name ->
        [ Metrics.combine ~latency:t.total_latency ~name parts ])
  in
  (transport :: causal :: total)

(* --- guarantee lattice ---------------------------------------------- *)

module Guarantee = Causalb_stackbase.Guarantee

(* The bottom-up [(layer, requires, provides)] descriptors the static
   verifier folds.  Per-link FIFO transport delivers each sender's copies
   in send order at each receiver, which for broadcast is exactly the
   per-sender FIFO guarantee. *)
let layer_guarantees ~ordering ~total ~fifo =
  let transport =
    ( "transport",
      Guarantee.Unordered,
      if fifo then Guarantee.Fifo else Guarantee.Unordered )
  in
  let causal =
    match ordering with
    | Fifo -> ("causal:fifo", Fifo.requires, Fifo.provides)
    | Bss -> ("causal:bss", Bss.requires, Bss.provides)
    | Psync -> ("causal:psync", Psync.requires, Psync.provides)
    | Osend -> ("causal:osend", Osend.requires, Osend.provides)
    | Pc -> ("causal:pc", Pcbcast.requires, Pcbcast.provides)
  in
  let tail =
    match total with
    | Pass -> []
    | Merge _ ->
      [ ("total:merge", Asend.Merge.requires, Asend.Merge.provides) ]
    | Counted _ ->
      [ ("total:counted", Asend.Counted.requires, Asend.Counted.provides) ]
    | Sequencer _ ->
      [
        ( "total:sequencer",
          Asend.Sequencer.requires,
          Asend.Sequencer.provides );
      ]
  in
  transport :: causal :: tail

let guarantee t =
  let causal =
    match t.impl with
    | I_fifo _ -> Fifo.provides
    | I_bss _ -> Bss.provides
    | I_psync _ -> Psync.provides
    | I_osend _ -> Osend.provides
    | I_pc _ -> Pcbcast.provides
  in
  let transport =
    if t.transport_fifo then Guarantee.Fifo else Guarantee.Unordered
  in
  let total =
    match t.total_name with
    | None -> Guarantee.bot
    | Some _ -> Guarantee.Causal_total
  in
  Guarantee.join transport (Guarantee.join causal total)

let describe t =
  let causal = ordering_name (match t.impl with
    | I_fifo _ -> Fifo
    | I_bss _ -> Bss
    | I_psync _ -> Psync
    | I_osend _ -> Osend
    | I_pc _ -> Pc)
  in
  let total = match t.total_name with None -> "" | Some n -> " -> " ^ n in
  Printf.sprintf "transport -> %s%s -> app" causal total

let pp_metrics ppf t =
  Format.fprintf ppf "@[<v>%s@," (describe t);
  List.iter (fun m -> Format.fprintf ppf "%a@," Metrics.pp m) (metrics t);
  Format.fprintf ppf "@]"
